/**
 * @file
 * FPGA area model reproducing Table 1 of the paper: hierarchical
 * LUT/FF/BRAM descriptors for the platform's hardware components,
 * with the leaf numbers taken from the paper's synthesis results and
 * aggregates computed from the hierarchy.
 *
 * The model also answers the paper's derived claims: the vDTU's size
 * relative to the BOOM/Rocket cores (10.6% / 32.6% of LUTs) and the
 * cost of virtualization (the privileged interface adds ~6% logic to
 * the DTU).
 */

#ifndef M3VSIM_AREA_AREA_H_
#define M3VSIM_AREA_AREA_H_

#include <memory>
#include <string>
#include <vector>

namespace m3v::area {

/** LUTs (thousands), flip-flops (thousands), 36 kbit BRAMs. */
struct AreaNumbers
{
    double lutsK = 0;
    double ffsK = 0;
    double brams = 0;

    AreaNumbers
    operator+(const AreaNumbers &o) const
    {
        return {lutsK + o.lutsK, ffsK + o.ffsK, brams + o.brams};
    }
};

/** A hardware component with optional subcomponents. */
class Component
{
  public:
    Component(std::string name, AreaNumbers own = {})
        : name_(std::move(name)), own_(own)
    {
    }

    const std::string &name() const { return name_; }

    /** Leaf resources owned directly by this component. */
    const AreaNumbers &own() const { return own_; }

    Component &addChild(std::string name, AreaNumbers own = {});

    const std::vector<std::unique_ptr<Component>> &children() const
    {
        return children_;
    }

    /** Find a descendant by name (depth-first), or nullptr. */
    const Component *find(const std::string &name) const;

    /** Own resources plus all descendants. */
    AreaNumbers total() const;

  private:
    std::string name_;
    AreaNumbers own_;
    std::vector<std::unique_ptr<Component>> children_;
};

/** BOOM core (Table 1 row 1). */
Component boomCore();

/** Rocket core (Table 1 row 2). */
Component rocketCore();

/** NoC router (Table 1 row 3). */
Component nocRouter();

/**
 * The vDTU with the full feature set (Table 1 rows 4-12); leaf
 * numbers from the paper, aggregates computed. @p virtualized false
 * drops the privileged interface (the plain DTU of the controller
 * and accelerator tiles, Figure 5's dashed blocks).
 */
Component dtu(bool virtualized);

/**
 * Logic (LUT) overhead of virtualization: privileged-interface LUTs
 * relative to the non-virtualized DTU (the paper reports ~6%).
 */
double virtualizationOverheadPct();

/** vDTU LUTs as a percentage of the given core's LUTs. */
double vdtuVsCorePct(const Component &core);

} // namespace m3v::area

#endif // M3VSIM_AREA_AREA_H_
