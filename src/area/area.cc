#include "area/area.h"

namespace m3v::area {

Component &
Component::addChild(std::string name, AreaNumbers own)
{
    children_.push_back(
        std::make_unique<Component>(std::move(name), own));
    return *children_.back();
}

const Component *
Component::find(const std::string &name) const
{
    if (name_ == name)
        return this;
    for (const auto &c : children_) {
        if (const Component *hit = c->find(name))
            return hit;
    }
    return nullptr;
}

AreaNumbers
Component::total() const
{
    AreaNumbers sum = own_;
    for (const auto &c : children_)
        sum = sum + c->total();
    return sum;
}

Component
boomCore()
{
    return Component("BOOM", {143.8, 71.8, 159});
}

Component
rocketCore()
{
    return Component("Rocket", {46.6, 22.0, 152});
}

Component
nocRouter()
{
    return Component("NoC router", {3.4, 2.2, 0});
}

Component
dtu(bool virtualized)
{
    // Leaf numbers from Table 1. The control unit splits into the
    // NoC controller and the command controller; the command
    // controller splits into the unprivileged and (for the vDTU)
    // privileged interfaces. Aggregates are computed, which exposes
    // a small inconsistency in the paper's Table 1: the control
    // unit's FF count is printed as 3.3k although its children sum
    // to 1.5k + 2.8k = 4.3k (and only 4.3k makes the vDTU total of
    // 5.8k FFs add up). We report the consistent value.
    Component d(virtualized ? "vDTU" : "DTU");
    Component &cu = d.addChild("Control Unit");
    cu.addChild("NoC CTRL", {3.2, 1.5, 0});
    Component &cmd = cu.addChild("CMD CTRL", {0, 0, 0.5});
    cmd.addChild("Unpriv. IF", {6.2, 2.5, 0});
    if (virtualized)
        cmd.addChild("Priv. IF", {0.9, 0.3, 0});
    d.addChild("Register file", {2.0, 1.0, 0});
    d.addChild("Memory mapper + PMP", {0.6, 0.2, 0});
    d.addChild("I/O FIFOs", {2.3, 0.3, 0});
    return d;
}

double
virtualizationOverheadPct()
{
    double with = dtu(true).total().lutsK;
    double without = dtu(false).total().lutsK;
    return (with - without) / without * 100.0;
}

double
vdtuVsCorePct(const Component &core)
{
    return dtu(true).total().lutsK / core.total().lutsK * 100.0;
}

} // namespace m3v::area
