/**
 * @file
 * WireData pooling and fault-injection payload damage.
 *
 * The message path builds one WireData header per packet. With plain
 * `new` that is a per-message heap allocation — the pool below
 * recycles headers through a global freelist instead, so a warmed-up
 * send/receive cycle touches the allocator zero times (asserted by
 * tests/dtu/msgpath_test.cc).
 */

#include "dtu/wire.h"

#include <mutex>
#include <vector>

namespace m3v::dtu {

namespace {

/**
 * Global freelist of raw WireData-sized blocks. Shared by all
 * platforms/lanes in the process; guarded by one mutex (the critical
 * section is a pointer swap, far cheaper than malloc).
 */
struct WirePool
{
    std::mutex mu;
    std::vector<void *> free;

    ~WirePool()
    {
        for (void *p : free)
            ::operator delete(p);
    }
};

WirePool &
pool()
{
    static WirePool p;
    return p;
}

} // namespace

void *
WireData::operator new(std::size_t sz)
{
    if (sz != sizeof(WireData))
        return ::operator new(sz);
    WirePool &p = pool();
    {
        std::lock_guard<std::mutex> lock(p.mu);
        if (!p.free.empty()) {
            void *blk = p.free.back();
            p.free.pop_back();
            return blk;
        }
    }
    return ::operator new(sz);
}

void
WireData::operator delete(void *ptr, std::size_t sz) noexcept
{
    if (ptr == nullptr)
        return;
    if (sz != sizeof(WireData)) {
        ::operator delete(ptr);
        return;
    }
    WirePool &p = pool();
    std::lock_guard<std::mutex> lock(p.mu);
    p.free.push_back(ptr);
}

std::size_t
WireData::pooledFree()
{
    WirePool &p = pool();
    std::lock_guard<std::mutex> lock(p.mu);
    return p.free.size();
}

void
WireData::corruptPayload()
{
    // Damage whichever payload this packet carries. mutableBytes() is
    // copy-on-write: a retx buffer sharing the extent keeps the clean
    // original; only this packet's view sees the flipped bits.
    sim::PayloadRef *target = nullptr;
    switch (kind) {
      case WireKind::MsgXfer:
        target = &msg.payload;
        break;
      case WireKind::MemReadResp:
      case WireKind::MemWriteReq:
        target = &data;
        break;
      default:
        break;
    }
    if (target == nullptr || !target->valid() || target->empty())
        return;
    auto &bytes = target->mutableBytes();
    for (std::size_t i = 0; i < bytes.size(); i += 64)
        bytes[i] ^= 0xA5;
}

} // namespace m3v::dtu
