/**
 * @file
 * The data transfer unit (DTU): the per-tile hardware component for
 * cross-tile messaging and memory access (paper section 2.1).
 *
 * This class implements the plain (non-virtualized) DTU of M3/M3x:
 *  - the *unprivileged interface*: SEND/REPLY/READ/WRITE commands
 *    (an FSM that serializes one command at a time) plus the
 *    register-level FETCH/ACK operations;
 *  - the *external interface*: endpoint configuration by the
 *    controller, locally or over the NoC (ExtReq packets), including
 *    the ReadEps/WriteEps bulk operations M3x uses to save/restore
 *    DTU state on remote context switches;
 *  - credit-based flow control between send and receive endpoints,
 *    with credits returned on acknowledgement;
 *  - one-shot reply permissions stored with each received message.
 *
 * The vDTU of M3v (src/core/vdtu.h) subclasses this and adds the
 * privileged interface: activity-tagged endpoint protection, the
 * CUR_ACT register, a software-loaded TLB, PMP, and core requests.
 *
 * Addresses passed to commands are *buffer* addresses used only for
 * protection checks and timing; payload bytes travel alongside
 * (content and timing are decoupled, see DESIGN.md).
 *
 * Zero-copy message path (DESIGN.md section 4g): payloads are
 * reference-counted extents in the platform's slab pool
 * (sim/slab_pool.h). A SEND hands its extent to the wire packet, the
 * packet hands it to the receive-ring slot, and the retransmission
 * engine keeps the message alive by holding a second reference — no
 * intermediate memcpy anywhere. Because the command FSM is fully
 * serialized (one command owns the engine from enqueue to completion
 * callback), all per-command state lives in a single member struct
 * and the stage closures capture nothing but `this`, which keeps the
 * steady-state send path free of heap allocation (asserted by
 * tests/dtu/msgpath_test.cc). setCopyBaseline(true) restores the
 * deep-copying behaviour at every hand-off point — simulated timing
 * is identical, only host work changes — as the A/B for
 * bench/fanin.
 */

#ifndef M3VSIM_DTU_DTU_H_
#define M3VSIM_DTU_DTU_H_

#include <unordered_map>
#include <vector>

#include "dtu/ep.h"
#include "dtu/message.h"
#include "dtu/types.h"
#include "dtu/wire.h"
#include "noc/noc.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/ring_deque.h"
#include "sim/sim_object.h"
#include "sim/slab_pool.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace m3v::dtu {

/** DTU-internal timing parameters (cycles at the tile clock). */
struct DtuTiming
{
    /** Command decode and EP checks. */
    sim::Cycles cmdDecode = 30;

    /** TLB lookup (vDTU only; checked once per command). */
    sim::Cycles tlbLookup = 2;

    /** Fixed cost of a DMA access to the core's cache/memory. */
    sim::Cycles localMemFixed = 18;

    /** DMA bandwidth to the core's cache. */
    std::size_t localMemBytesPerCycle = 16;

    /** Receive-side packet processing. */
    sim::Cycles rxProcess = 24;

    /** Applying an external (controller) request, per endpoint. */
    sim::Cycles extPerEp = 12;

    /** Internal loopback latency for tile-local delivery. */
    sim::Cycles loopback = 16;

    /**
     * Reliable mode only: initial retransmission timeout in DTU
     * cycles. Doubles per attempt (bounded exponential backoff).
     */
    sim::Cycles retxTimeoutCycles = 2000;

    /** Reliable mode only: attempts before Error::Timeout. */
    unsigned retxMaxAttempts = 8;
};

/** The per-tile data transfer unit. */
class Dtu : public sim::SimObject, public noc::HopTarget
{
  public:
    using CmdCallback = sim::UniqueFunction<void(Error)>;
    using ReadCallback =
        sim::UniqueFunction<void(Error, std::vector<std::uint8_t>)>;
    using ExtCallback =
        sim::UniqueFunction<void(Error, std::vector<Endpoint>)>;

    Dtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
        noc::TileId tile, std::uint64_t freq_hz,
        DtuTiming timing = {});

    noc::TileId tileId() const { return tile_; }
    const DtuTiming &timing() const { return timing_; }
    const sim::Clock &clock() const { return clk_; }

    /** The platform's shared payload-extent pool (owned by the NoC). */
    sim::SlabPool &payloadPool() { return noc_.payloadPool(); }
    const sim::SlabPool &payloadPool() const
    {
        return noc_.payloadPool();
    }

    /**
     * A/B switch for bench/fanin: when on, the message path performs
     * a deep payload copy at every ownership hand-off (wire creation,
     * receive-slot store, retransmission save) the way a copying
     * implementation would. Simulated timing is unchanged — wire
     * sizes and DMA costs depend only on payload length — so digests
     * stay identical; only host-side work differs.
     */
    void setCopyBaseline(bool on) { copyBaseline_ = on; }
    bool copyBaseline() const { return copyBaseline_; }

    //
    // External interface (controller side).
    //

    /** Install an endpoint locally (controller tile / tests). */
    void configEp(EpId id, Endpoint ep);

    /** Invalidate an endpoint locally. */
    void invalidateEp(EpId id);

    /** Inspect an endpoint (simulation-level access). */
    const Endpoint &ep(EpId id) const;

    /**
     * Send an external request to the DTU of @p dst over the NoC and
     * invoke @p cb with the response. Used by the controller to
     * manage remote endpoints and by M3x to save/restore DTU state.
     */
    void extRequest(noc::TileId dst, ExtOp op, EpId ep_start,
                    std::vector<Endpoint> eps, std::uint16_t count,
                    ExtCallback cb);

    //
    // Unprivileged interface: commands (serialized FSM).
    //

    /**
     * SEND: transfer @p payload from buffer @p buf through send
     * endpoint @p ep_id; replies (if any) arrive at @p reply_ep.
     * @p nonce is stamped into the message and echoed back by the
     * receiver's REPLY (see Message::nonce); 0 means "unused".
     *
     * The byte-vector overload adopts the buffer into the payload
     * pool (a move, not a copy). cmdSendRef takes a pooled extent
     * directly — the allocation-free path (pool().make() + fill, or
     * forwarding a received payload).
     */
    void cmdSend(ActId act, EpId ep_id, VirtAddr buf,
                 std::vector<std::uint8_t> payload, EpId reply_ep,
                 CmdCallback cb, std::uint64_t nonce = 0);
    void cmdSendRef(ActId act, EpId ep_id, VirtAddr buf,
                    sim::PayloadRef payload, EpId reply_ep,
                    CmdCallback cb, std::uint64_t nonce = 0);

    /**
     * REPLY: consume the one-shot reply permission of the message in
     * @p slot of receive endpoint @p rep_id, acknowledging the slot.
     */
    void cmdReply(ActId act, EpId rep_id, int slot, VirtAddr buf,
                  std::vector<std::uint8_t> payload, CmdCallback cb);
    void cmdReplyRef(ActId act, EpId rep_id, int slot, VirtAddr buf,
                     sim::PayloadRef payload, CmdCallback cb);

    /** READ: DMA @p size bytes at @p offset within memory EP. */
    void cmdRead(ActId act, EpId mep_id, std::uint64_t offset,
                 std::size_t size, VirtAddr buf, ReadCallback cb);

    /** WRITE: DMA @p data to @p offset within memory EP. */
    void cmdWrite(ActId act, EpId mep_id, std::uint64_t offset,
                  std::vector<std::uint8_t> data, VirtAddr buf,
                  CmdCallback cb);

    //
    // Unprivileged interface: register-level operations (no FSM).
    //

    /**
     * FETCH: pop the oldest unread message of @p rep_id. Returns the
     * slot index or -1. Marks it read.
     */
    int fetch(ActId act, EpId rep_id);

    /** Number of unread messages in a receive endpoint. */
    std::size_t unread(ActId act, EpId rep_id) const;

    /** Access a fetched message (slot must be occupied). */
    const Message &slotMsg(EpId rep_id, int slot) const;

    /** ACK: free the slot and return a credit to the sender. */
    void ack(ActId act, EpId rep_id, int slot);

    /**
     * Privileged cleanup (controller reaping a dead activity): drop
     * every message held in receive endpoint @p rep_id, returning the
     * flow-control credit of each to its sender so surviving clients
     * are not wedged. Returns the number of credits reclaimed.
     */
    std::size_t reclaimCredits(EpId rep_id);

    /**
     * Device-originated local message delivery: a tile-local device
     * (e.g. the NIC) DMAs a frame into a driver mailbox and signals
     * it. Modelled as a direct store into @p rep (the usual counters,
     * core requests and notifications fire). Returns false when no
     * slot is free — the device drops the frame (ring overflow).
     */
    bool deviceMessage(EpId rep, std::vector<std::uint8_t> payload,
                       std::uint64_t label = 0);

    /** True while the command FSM (or its queue) is busy. */
    bool cmdBusy() const { return cmdBusy_ || !cmdQueue_.empty(); }

    /**
     * True when nothing is in motion: no queued commands, no packets
     * waiting for the NoC, no requests awaiting a response, and no
     * reliable packet in retransmission. Holds for every DTU once the
     * simulation drains (a quiescence invariant, see
     * registerDtuInvariants()).
     */
    bool engineQuiescent() const
    {
        return txQueue_.empty() && inflight_.empty() &&
               retx_.empty() && !cmdBusy();
    }

    /**
     * Reliable mode: times a send through @p ep hit Error::Timeout
     * with the credit restored locally even though the message may
     * have been delivered (the ack was lost). Each such restore can
     * leave the channel holding one credit above its cap until the
     * receiver's slot is acknowledged — the upward slack in the
     * conservation law.
     */
    std::uint64_t timeoutCreditRestores(EpId ep) const
    {
        auto it = timeoutRestores_.find(ep);
        return it == timeoutRestores_.end() ? 0 : it->second;
    }

    /**
     * Reliable mode: CreditReturns from this DTU to send endpoint
     * @p ep on tile @p dst that exhausted retransmission — the credit
     * is permanently lost until the controller reclaims it (the
     * downward slack in the conservation law).
     */
    std::uint64_t lostCreditReturns(noc::TileId dst, EpId ep) const
    {
        auto it = lostCreditReturns_.find(
            (static_cast<std::uint64_t>(dst) << 32) | ep);
        return it == lostCreditReturns_.end() ? 0 : it->second;
    }

    /**
     * Install a notification hook invoked after every stored message
     * with (endpoint, owning activity). Software layers use it to
     * wake threads that poll the DTU for new messages.
     *
     * Doorbell batching: the first notification per (endpoint,
     * activity) in a burst window (one tick) rings through
     * immediately; further stores to the same destination within the
     * window are coalesced into a single deferred wakeup delivered by
     * an end-of-window flush event. With at most one store per
     * destination per tick — the common case — behaviour is
     * bit-identical to unbatched delivery (no extra events at all).
     */
    void
    setMsgNotify(sim::UniqueFunction<void(EpId, ActId)> cb)
    {
        msgNotify_ = std::move(cb);
    }

    /** Doorbells coalesced into a batched wakeup (stats). */
    std::uint64_t doorbellsCoalesced() const
    {
        return doorbellsCoalesced_->value();
    }

    /**
     * The doorbell flush law: a coalesced (deferred) doorbell always
     * has a flush event scheduled within the current tick, so no
     * wakeup can leak past a lane barrier (the flush runs before the
     * lane advances). Checked at every invariant boundary.
     */
    bool doorbellFlushLawOk() const
    {
        for (const Doorbell &d : doorbellPending_)
            if (d.deferred && !doorbellFlushScheduled_)
                return false;
        return true;
    }

    /** No flush pending at all (the quiescent doorbell state). */
    bool doorbellIdle() const { return !doorbellFlushScheduled_; }

    // noc::HopTarget
    bool acceptPacket(noc::Packet &pkt,
                      sim::UniqueFunction<void()> on_space) override;

    /**
     * True when the attached NoC carries a fault plan: the wire
     * protocol then runs with sequence numbers, retransmission, and
     * duplicate suppression. Decided once at construction so the
     * fault-free fast path stays branch-identical.
     */
    bool reliable() const { return reliable_; }

    // Statistics (registry-backed, under "<name>.*").
    std::uint64_t msgsSent() const { return msgsSent_->value(); }
    std::uint64_t msgsReceived() const { return msgsRecv_->value(); }
    std::uint64_t nacksReceived() const { return nacks_->value(); }
    std::uint64_t retransmits() const
    {
        return retransmits_->value();
    }
    std::uint64_t timeouts() const { return timeouts_->value(); }
    std::uint64_t duplicatesDropped() const
    {
        return duplicates_->value();
    }
    std::uint64_t corruptDropped() const
    {
        return corruptDropped_->value();
    }
    std::uint64_t straysDropped() const
    {
        return straysDropped_->value();
    }
    std::uint64_t creditsReclaimed() const
    {
        return creditsReclaimed_->value();
    }

  protected:
    /**
     * Ownership / visibility check for an endpoint access by @p act.
     * The plain DTU ignores the activity (M3/M3x semantics: only the
     * current activity's endpoints are installed at all).
     */
    virtual Error checkEpAccess(ActId act, const Endpoint &ep) const;

    /**
     * Translate a buffer address for a command of @p act. The plain
     * DTU uses physical addresses (identity). @p write is the access
     * direction. Returns Error::TlbMiss / PmpFault on failure.
     */
    virtual Error translate(ActId act, VirtAddr buf, bool write,
                            PhysAddr &phys);

    /** Hook: a message was stored into @p ep_id for @p owner. */
    virtual void onMessageStored(EpId ep_id, ActId owner);

    /** Hook: a message was fetched from @p ep_id by @p owner. */
    virtual void onMessageFetched(EpId ep_id, ActId owner);

    /**
     * Hook: may the incoming message for @p ep be stored? The plain
     * DTU accepts any valid receive EP (M3x installs only the current
     * activity's EPs, so "EP invalid" already means "not running").
     */
    virtual Error checkIncoming(EpId ep_id, const Endpoint &ep,
                                const WireData &wire) const;

    Endpoint &epMut(EpId id);

    sim::Clock clk_;

  private:
    /**
     * All state of the command currently owning the FSM. Because the
     * engine is strictly serialized (cmdBusy_ held from enqueue to
     * completion callback), one member instance suffices and every
     * stage closure captures only `this` — small enough for the
     * UniqueFunction inline buffer, so command dispatch never touches
     * the heap.
     */
    struct CmdState
    {
        enum class Kind : std::uint8_t
        {
            None,
            Send,
            Reply,
            Read,
            Write,
        };

        Kind kind = Kind::None;
        ActId act = kInvalidAct;
        EpId ep = kInvalidEp;        ///< command's endpoint
        int slot = -1;               ///< reply: acked recv slot
        VirtAddr buf = 0;
        sim::PayloadRef payload;     ///< send/reply payload, write data
        EpId replyEp = kInvalidEp;   ///< send
        std::uint64_t nonce = 0;     ///< send
        std::uint64_t offset = 0;    ///< read/write
        std::size_t size = 0;        ///< read
        CmdCallback cb;              ///< send/reply/write completion
        ReadCallback rcb;            ///< read completion
        Error err = Error::None;     ///< read: staged response error
        std::vector<std::uint8_t> readData; ///< read: staged bytes
    };

    void enqueueCmd(CmdState st);
    void dispatchCmd();
    void cmdFinished();
    /** Invoke the current command's callback with @p e and advance. */
    void completeCmd(Error e);

    void doSend();
    void sendChecks();
    void sendLaunch();
    void doReply();
    void replyChecks();
    void replyLaunch();
    void doRead();
    void readChecks();
    void doWrite();
    void writeChecks();
    void writeLaunch();

    void sendPacket(noc::TileId dst, std::unique_ptr<WireData> wd);
    void handlePacket(WireData &wd, noc::TileId src);
    void handleMsgXfer(WireData &wd, noc::TileId src);
    void deliverLocal(std::unique_ptr<WireData> wd);
    void respond(noc::TileId dst, std::unique_ptr<WireData> wd);
    void sendCreditReturn(noc::TileId dst, EpId credit_ep);
    void addCredit(EpId credit_ep);

    /** Ring or coalesce the doorbell for a stored message. */
    void notifyMsg(EpId ep, ActId act);
    /** Deliver the deferred doorbells of the closing burst window. */
    void flushDoorbells();

    //
    // Reliable wire protocol (active iff the NoC has a fault plan).
    //
    static bool isRetxKind(WireKind k);
    void armRetxTimer(std::uint64_t seq);
    void retxTimeout(std::uint64_t seq);
    void retxComplete(std::uint64_t seq);
    /** Deep-copy the payload of @p wd (copy-baseline mode only). */
    void deepCopyPayload(WireData &wd);
    /** Record the outcome of request @p seq from @p src for dedup. */
    void rememberOutcome(noc::TileId src, std::uint64_t seq, Error e);
    /** Outcome of an already-seen request, or nullptr if fresh. */
    const Error *findOutcome(noc::TileId src, std::uint64_t seq) const;

    noc::Noc &noc_;
    noc::TileId tile_;
    DtuTiming timing_;
    std::vector<Endpoint> eps_;

    bool cmdBusy_ = false;
    CmdState curCmd_;
    sim::RingDeque<CmdState> cmdQueue_;

    std::uint64_t nextReqId_ = 1;
    std::uint64_t nextSeq_ = 1;

    bool copyBaseline_ = false;

    /**
     * An issued request awaiting its response. The FSM serialization
     * means the heavy per-command state (callbacks, staged data)
     * lives in curCmd_; an in-flight entry only records how to route
     * the response — small enough for a flat vector with linear scan
     * (at most one command plus a few ext requests outstanding).
     */
    struct Inflight
    {
        enum class Kind : std::uint8_t
        {
            CmdSend,  ///< completes curCmd_ (credit restore on error)
            CmdReply, ///< completes curCmd_
            CmdRead,  ///< completes curCmd_ (stages data + DMA-in)
            CmdWrite, ///< completes curCmd_
            Ext,      ///< standalone: invokes extCb
        };

        std::uint64_t reqId = 0;
        Kind kind = Kind::CmdSend;
        EpId creditEp = kInvalidEp; ///< CmdSend: credit restore target
        ExtCallback extCb;          ///< Ext only
    };
    std::vector<Inflight> inflight_;

    void addInflight(std::uint64_t req_id, Inflight::Kind kind,
                     EpId credit_ep = kInvalidEp,
                     ExtCallback ext_cb = {});
    bool takeInflight(std::uint64_t req_id, Inflight &out);
    /** Route a response/timeout into the waiting command or extCb. */
    void completeInflight(Inflight inf, Error e, WireData *resp);

    /** Packets waiting to be injected into the NoC. */
    sim::RingDeque<noc::Packet> txQueue_;
    void pumpTx();

    /** Reliable mode: is the wire protocol running with retx? */
    bool reliable_ = false;

    /** Per-DTU wire sequence counter (reliable mode). */
    std::uint64_t wireSeq_ = 1;

    /**
     * An unacknowledged reliable packet awaiting retransmission. The
     * saved WireData shares the payload extent with the transmitted
     * packet (a refcount, not a deep copy); a retransmission bumps it
     * again. Flat vector: few packets are ever outstanding, and
     * steady-state operation must not churn the heap.
     */
    struct Retx
    {
        std::uint64_t seq = 0;
        noc::TileId dst = 0;
        WireData wd;
        unsigned attempts = 0;
        sim::EventHandle timer;
    };
    std::vector<Retx> retx_;

    Retx *findRetx(std::uint64_t seq);
    void eraseRetx(std::uint64_t seq);

    /** Credit-conservation slack bookkeeping (reliable mode only;
     *  see timeoutCreditRestores() / lostCreditReturns()). */
    std::unordered_map<EpId, std::uint64_t> timeoutRestores_;
    std::unordered_map<std::uint64_t, std::uint64_t>
        lostCreditReturns_;

    /** Receiver-side duplicate-suppression window, per source tile. */
    struct SeenEntry
    {
        std::uint64_t seq = 0;
        Error outcome = Error::None;
    };
    static constexpr std::size_t kSeenWindow = 128;
    std::unordered_map<noc::TileId, sim::RingDeque<SeenEntry>> seen_;

    /** One pending doorbell of the current burst window. */
    struct Doorbell
    {
        EpId ep = kInvalidEp;
        ActId act = kInvalidAct;
        /** Coalesced: delivery owed to the end-of-window flush. */
        bool deferred = false;
    };
    std::vector<Doorbell> doorbellPending_;
    std::vector<Doorbell> doorbellScratch_;
    bool doorbellFlushScheduled_ = false;
    sim::Tick doorbellTick_ = 0;

    sim::Counter *msgsSent_;
    sim::Counter *msgsRecv_;
    sim::Counter *nacks_;
    sim::Counter *retransmits_;
    sim::Counter *timeouts_;
    sim::Counter *duplicates_;
    sim::Counter *corruptDropped_;
    sim::Counter *straysDropped_;
    sim::Counter *creditsReclaimed_;
    sim::Counter *doorbellsCoalesced_;
    sim::Counter *doorbellFlushes_;
    sim::UniqueFunction<void(EpId, ActId)> msgNotify_;

  protected:
    /** Timeline tracer (category-gated; off by default). */
    sim::Tracer *trc_;
};

/**
 * Register the DTU-layer conservation laws over @p dtus with @p inv
 * (tests only):
 *  - per send endpoint, credits never exceed the configured maximum,
 *    and per receive slot, unread implies occupied (every boundary);
 *  - the payload pool's slot accounting balances (allocated ==
 *    live + free) and no stale release was ever observed (every
 *    boundary), and at quiescence every live extent is accounted for
 *    by an occupied receive slot — no extent leaked by the zero-copy
 *    hand-off chain;
 *  - the doorbell flush law (every boundary) and doorbell idleness
 *    (quiescence): a coalesced wakeup never outlives its burst
 *    window, so none can leak past a lane barrier;
 *  - at quiescence every engine has drained (no queued command, tx
 *    packet, in-flight request, or retransmission);
 *  - at quiescence every non-reply send endpoint's credits are
 *    conserved across the system: available + held-in-remote-slots
 *    equals the maximum, with explicit slack for credits lost to
 *    retransmission exhaustion and restored on a timed-out-but-
 *    delivered send (both zero in fault-free runs).
 * All DTUs that exchange traffic must be in @p dtus or the
 * attribution scans under-count held credits and live extents.
 */
void registerDtuInvariants(sim::Invariants &inv,
                           std::vector<const Dtu *> dtus);

} // namespace m3v::dtu

#endif // M3VSIM_DTU_DTU_H_
