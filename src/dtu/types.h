/**
 * @file
 * Common DTU types: endpoint/activity identifiers, errors, and the
 * platform constants of the paper's prototype (128 endpoints, first
 * four reserved as PMP memory endpoints, single-page transfers).
 */

#ifndef M3VSIM_DTU_TYPES_H_
#define M3VSIM_DTU_TYPES_H_

#include <cstdint>

namespace m3v::dtu {

/** Endpoint index within a DTU. */
using EpId = std::uint16_t;

/** Activity id, unique per tile. */
using ActId = std::uint16_t;

/** Virtual / physical addresses in the simulated machine. */
using VirtAddr = std::uint64_t;
using PhysAddr = std::uint64_t;

/** Marker for "no activity" / invalid ids. */
constexpr ActId kInvalidAct = 0xffff;
constexpr EpId kInvalidEp = 0xffff;

/** Activity id used by TileMux itself (paper section 4.2). */
constexpr ActId kTileMuxAct = 0xfffe;

/** Number of endpoints per DTU (paper section 4.1: 128). */
constexpr EpId kNumEps = 128;

/** First four endpoints serve as PMP memory endpoints. */
constexpr EpId kNumPmpEps = 4;

/** Page size; DTU transfers are restricted to a single page. */
constexpr std::size_t kPageSize = 4096;
constexpr unsigned kPageBits = 12;

/** Result codes of DTU commands. */
enum class Error : std::uint8_t
{
    None = 0,
    /** Endpoint invalid or of the wrong type. */
    InvalidEp,
    /**
     * Endpoint owned by another activity. Reported as "unknown
     * endpoint" to avoid leaking information (paper section 3.5).
     */
    ForeignEp,
    /** Send endpoint out of credits. */
    NoCredits,
    /** vDTU TLB lookup failed; software must insert a translation. */
    TlbMiss,
    /** Transfer crosses a page boundary or exceeds the EP's window. */
    OutOfBounds,
    /** Receiver endpoint gone (M3x: recipient not running). */
    RecvGone,
    /** No reply permission for this message slot. */
    NoReplyAllowed,
    /** Physical memory protection rejected the access. */
    PmpFault,
    /** Message larger than the receive endpoint's slot size. */
    MsgTooBig,
    /** Command aborted (activity switch). */
    Aborted,
    /** Retransmissions exhausted without an acknowledgement. */
    Timeout,
    /**
     * Receiver shed the request before executing it (admission
     * control): the server was overloaded and rejected early rather
     * than queueing forever. Always safe to retry — the request had
     * no effect — but retries must be budgeted.
     */
    Overloaded,
};

/** Number of Error enumerators (keep in sync with the enum). */
constexpr std::size_t kNumErrors =
    static_cast<std::size_t>(Error::Overloaded) + 1;

/** Human-readable error name (for logs and tests). */
const char *errorName(Error e);

/** Access permissions. */
enum Perm : std::uint8_t
{
    kPermR = 1,
    kPermW = 2,
    kPermRW = 3,
};

} // namespace m3v::dtu

#endif // M3VSIM_DTU_TYPES_H_
