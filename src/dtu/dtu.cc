#include "dtu/dtu.h"

#include <algorithm>
#include <utility>

#include "sim/invariants.h"
#include "sim/log.h"

namespace m3v::dtu {

const char *
errorName(Error e)
{
    switch (e) {
      case Error::None: return "None";
      case Error::InvalidEp: return "InvalidEp";
      case Error::ForeignEp: return "ForeignEp";
      case Error::NoCredits: return "NoCredits";
      case Error::TlbMiss: return "TlbMiss";
      case Error::OutOfBounds: return "OutOfBounds";
      case Error::RecvGone: return "RecvGone";
      case Error::NoReplyAllowed: return "NoReplyAllowed";
      case Error::PmpFault: return "PmpFault";
      case Error::MsgTooBig: return "MsgTooBig";
      case Error::Aborted: return "Aborted";
      case Error::Timeout: return "Timeout";
      case Error::Overloaded: return "Overloaded";
    }
    return "Unknown";
}

Dtu::Dtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
         noc::TileId tile, std::uint64_t freq_hz, DtuTiming timing)
    : SimObject(eq, std::move(name)), clk_(freq_hz), noc_(noc),
      tile_(tile), timing_(timing), eps_(kNumEps),
      reliable_(noc.params().faults != nullptr)
{
    noc_.attachTile(tile, this);
    msgsSent_ = statCounter("msgs_sent");
    msgsRecv_ = statCounter("msgs_recv");
    nacks_ = statCounter("nacks");
    retransmits_ = statCounter("retransmits");
    timeouts_ = statCounter("timeouts");
    duplicates_ = statCounter("duplicates");
    corruptDropped_ = statCounter("corrupt_dropped");
    straysDropped_ = statCounter("strays_dropped");
    creditsReclaimed_ = statCounter("credits_reclaimed");
    trc_ = &eq.tracer();
}

//
// External interface.
//

void
Dtu::configEp(EpId id, Endpoint ep)
{
    if (id >= eps_.size())
        sim::panic("%s: configEp %u out of range", name().c_str(), id);
    eps_[id] = std::move(ep);
}

void
Dtu::invalidateEp(EpId id)
{
    if (id >= eps_.size())
        sim::panic("%s: invalidateEp %u out of range",
                   name().c_str(), id);
    eps_[id] = Endpoint();
}

const Endpoint &
Dtu::ep(EpId id) const
{
    if (id >= eps_.size())
        sim::panic("%s: ep %u out of range", name().c_str(), id);
    return eps_[id];
}

Endpoint &
Dtu::epMut(EpId id)
{
    if (id >= eps_.size())
        sim::panic("%s: ep %u out of range", name().c_str(), id);
    return eps_[id];
}

void
Dtu::extRequest(noc::TileId dst, ExtOp op, EpId ep_start,
                std::vector<Endpoint> eps, std::uint16_t count,
                ExtCallback cb)
{
    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::ExtReq;
    wd->reqId = nextReqId_++;
    wd->extOp = op;
    wd->epStart = ep_start;
    wd->epCount = count;
    wd->eps = std::move(eps);
    Inflight inf;
    inf.extCb = std::move(cb);
    inflight_.emplace(wd->reqId, std::move(inf));
    if (dst == tile_) {
        deliverLocal(std::move(wd));
    } else {
        sendPacket(dst, std::move(wd));
    }
}

//
// Command engine.
//

void
Dtu::enqueueCmd(sim::UniqueFunction<void()> run)
{
    if (cmdBusy_) {
        cmdQueue_.push_back(PendingCmd{std::move(run)});
        return;
    }
    cmdBusy_ = true;
    run();
}

void
Dtu::cmdFinished()
{
    if (!cmdBusy_)
        sim::panic("%s: cmdFinished while idle", name().c_str());
    trc_->end(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu);
    if (cmdQueue_.empty()) {
        cmdBusy_ = false;
        return;
    }
    auto next = std::move(cmdQueue_.front());
    cmdQueue_.pop_front();
    next.run();
}

void
Dtu::cmdSend(ActId act, EpId ep_id, VirtAddr buf,
             std::vector<std::uint8_t> payload, EpId reply_ep,
             CmdCallback cb, std::uint64_t nonce)
{
    enqueueCmd([this, act, ep_id, buf, payload = std::move(payload),
                reply_ep, cb = std::move(cb), nonce]() mutable {
        doSend(act, ep_id, buf, std::move(payload), reply_ep,
               std::move(cb), nonce);
    });
}

void
Dtu::doSend(ActId act, EpId ep_id, VirtAddr buf,
            std::vector<std::uint8_t> payload, EpId reply_ep,
            CmdCallback cb, std::uint64_t nonce)
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu, "SEND");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this, act, ep_id, buf,
                      payload = std::move(payload), reply_ep,
                      cb = std::move(cb), nonce]() mutable {
        auto fail = [&](Error e) {
            cb(e);
            cmdFinished();
        };
        if (ep_id >= eps_.size())
            return fail(Error::InvalidEp);
        Endpoint &sep = eps_[ep_id];
        if (sep.kind != EpKind::Send)
            return fail(Error::InvalidEp);
        if (Error e = checkEpAccess(act, sep); e != Error::None)
            return fail(e);
        if (payload.size() > sep.send.maxMsgSize)
            return fail(Error::MsgTooBig);
        if (sep.send.credits == 0)
            return fail(Error::NoCredits);
        PhysAddr phys = 0;
        if (Error e = translate(act, buf, false, phys);
            e != Error::None)
            return fail(e);

        // DMA the message out of the core's cache.
        sim::Cycles dma =
            timing_.localMemFixed +
            payload.size() / timing_.localMemBytesPerCycle;
        eq_.schedule(clk_.cyclesToTicks(dma), [this, act, ep_id,
                                               payload =
                                                   std::move(payload),
                                               reply_ep,
                                               cb = std::move(cb),
                                               nonce]() mutable {
            Endpoint &sep2 = eps_[ep_id];
            sep2.send.credits--;

            auto wd = std::make_unique<WireData>();
            wd->kind = WireKind::MsgXfer;
            wd->reqId = nextReqId_++;
            wd->dstEp = sep2.send.destEp;
            wd->dstAct = sep2.send.destAct;
            wd->isReply = sep2.send.isReply;
            wd->msg.nonce = nonce;
            wd->msg.label = sep2.send.label;
            wd->msg.srcTile = tile_;
            wd->msg.srcAct = act;
            wd->msg.replyEp = reply_ep;
            wd->msg.creditEp = ep_id;
            wd->msg.canReply = reply_ep != kInvalidEp;
            wd->msg.payload = std::move(payload);

            noc::TileId dst = sep2.send.destTile;
            Inflight inf;
            inf.cmdCb = [this, ep_id, cb = std::move(cb)](Error e) mutable {
                if (e != Error::None) {
                    // Restore the credit on failed delivery.
                    Endpoint &s = eps_[ep_id];
                    if (s.kind == EpKind::Send &&
                        s.send.credits < s.send.maxCredits) {
                        s.send.credits++;
                        if (e == Error::Timeout) {
                            // A timed-out message may still have been
                            // delivered (only the ack was lost) —
                            // record the restore as conservation
                            // slack.
                            timeoutRestores_[ep_id]++;
                        }
                    }
                    nacks_->inc();
                } else {
                    msgsSent_->inc();
                }
                cb(e);
                cmdFinished();
            };
            inflight_.emplace(wd->reqId, std::move(inf));
            if (dst == tile_) {
                deliverLocal(std::move(wd));
            } else {
                sendPacket(dst, std::move(wd));
            }
        });
    });
}

void
Dtu::cmdReply(ActId act, EpId rep_id, int slot, VirtAddr buf,
              std::vector<std::uint8_t> payload, CmdCallback cb)
{
    enqueueCmd([this, act, rep_id, slot, buf,
                payload = std::move(payload), cb = std::move(cb)]()
                   mutable {
        doReply(act, rep_id, slot, buf, std::move(payload),
                std::move(cb));
    });
}

void
Dtu::doReply(ActId act, EpId rep_id, int slot, VirtAddr buf,
             std::vector<std::uint8_t> payload, CmdCallback cb)
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                "REPLY");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this, act, rep_id, slot, buf,
                      payload = std::move(payload),
                      cb = std::move(cb)]() mutable {
        auto fail = [&](Error e) {
            cb(e);
            cmdFinished();
        };
        if (rep_id >= eps_.size())
            return fail(Error::InvalidEp);
        Endpoint &rep = eps_[rep_id];
        if (rep.kind != EpKind::Receive)
            return fail(Error::InvalidEp);
        if (Error e = checkEpAccess(act, rep); e != Error::None)
            return fail(e);
        if (slot < 0 ||
            static_cast<std::size_t>(slot) >= rep.recv.slots.size())
            return fail(Error::InvalidEp);
        RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
        if (!rs.occupied || !rs.msg.canReply)
            return fail(Error::NoReplyAllowed);
        PhysAddr phys = 0;
        if (Error e = translate(act, buf, false, phys);
            e != Error::None)
            return fail(e);

        sim::Cycles dma =
            timing_.localMemFixed +
            payload.size() / timing_.localMemBytesPerCycle;
        eq_.schedule(clk_.cyclesToTicks(dma), [this, act, rep_id, slot,
                                               payload =
                                                   std::move(payload),
                                               cb = std::move(cb)]()
                                                  mutable {
            Endpoint &rep2 = eps_[rep_id];
            RecvSlot &rs2 =
                rep2.recv.slots[static_cast<std::size_t>(slot)];
            noc::TileId dst = rs2.msg.srcTile;
            EpId dst_ep = rs2.msg.replyEp;
            EpId credit_ep = rs2.msg.creditEp;

            auto wd = std::make_unique<WireData>();
            wd->kind = WireKind::MsgXfer;
            wd->reqId = nextReqId_++;
            wd->dstEp = dst_ep;
            wd->isReply = true;
            wd->msg.nonce = rs2.msg.nonce;
            wd->msg.label = rs2.msg.label;
            wd->msg.srcTile = tile_;
            wd->msg.srcAct = act;
            wd->msg.replyEp = kInvalidEp;
            wd->msg.creditEp = kInvalidEp;
            wd->msg.canReply = false;
            wd->msg.payload = std::move(payload);

            // Replying acknowledges the original message: free the
            // slot and return the credit to the sender.
            rs2.occupied = false;
            rs2.unread = false;
            sendCreditReturn(dst, credit_ep);

            Inflight inf;
            inf.cmdCb = [this, cb = std::move(cb)](Error e) mutable {
                if (e == Error::None)
                    msgsSent_->inc();
                else
                    nacks_->inc();
                cb(e);
                cmdFinished();
            };
            inflight_.emplace(wd->reqId, std::move(inf));
            if (dst == tile_) {
                deliverLocal(std::move(wd));
            } else {
                sendPacket(dst, std::move(wd));
            }
        });
    });
}

void
Dtu::cmdRead(ActId act, EpId mep_id, std::uint64_t offset,
             std::size_t size, VirtAddr buf, ReadCallback cb)
{
    enqueueCmd([this, act, mep_id, offset, size, buf,
                cb = std::move(cb)]() mutable {
        doRead(act, mep_id, offset, size, buf, std::move(cb));
    });
}

void
Dtu::doRead(ActId act, EpId mep_id, std::uint64_t offset,
            std::size_t size, VirtAddr buf, ReadCallback cb)
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu, "READ");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this, act, mep_id, offset, size, buf,
                      cb = std::move(cb)]() mutable {
        auto fail = [&](Error e) {
            cb(e, {});
            cmdFinished();
        };
        if (mep_id >= eps_.size())
            return fail(Error::InvalidEp);
        Endpoint &mep = eps_[mep_id];
        if (mep.kind != EpKind::Memory)
            return fail(Error::InvalidEp);
        if (Error e = checkEpAccess(act, mep); e != Error::None)
            return fail(e);
        if (!(mep.mem.perms & kPermR))
            return fail(Error::PmpFault);
        if (offset + size > mep.mem.size)
            return fail(Error::OutOfBounds);
        if (size > kPageSize)
            return fail(Error::OutOfBounds);
        PhysAddr phys = 0;
        if (Error e = translate(act, buf, true, phys);
            e != Error::None)
            return fail(e);

        auto wd = std::make_unique<WireData>();
        wd->kind = WireKind::MemReadReq;
        wd->reqId = nextReqId_++;
        wd->addr = mep.mem.addr + offset;
        wd->size = size;

        Inflight inf;
        inf.readCb = [this, cb = std::move(cb)](
                         Error e,
                         std::vector<std::uint8_t> data) mutable {
            // DMA the data into the core's cache, then complete.
            sim::Cycles dma =
                timing_.localMemFixed +
                data.size() / timing_.localMemBytesPerCycle;
            eq_.schedule(clk_.cyclesToTicks(dma),
                         [this, e, data = std::move(data),
                          cb = std::move(cb)]() mutable {
                             cb(e, std::move(data));
                             cmdFinished();
                         });
        };
        inflight_.emplace(wd->reqId, std::move(inf));
        noc::TileId dst = mep.mem.destTile;
        if (dst == tile_) {
            deliverLocal(std::move(wd));
        } else {
            sendPacket(dst, std::move(wd));
        }
    });
}

void
Dtu::cmdWrite(ActId act, EpId mep_id, std::uint64_t offset,
              std::vector<std::uint8_t> data, VirtAddr buf,
              CmdCallback cb)
{
    enqueueCmd([this, act, mep_id, offset, data = std::move(data), buf,
                cb = std::move(cb)]() mutable {
        doWrite(act, mep_id, offset, std::move(data), buf,
                std::move(cb));
    });
}

void
Dtu::doWrite(ActId act, EpId mep_id, std::uint64_t offset,
             std::vector<std::uint8_t> data, VirtAddr buf,
             CmdCallback cb)
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                "WRITE");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this, act, mep_id, offset,
                      data = std::move(data), buf,
                      cb = std::move(cb)]() mutable {
        auto fail = [&](Error e) {
            cb(e);
            cmdFinished();
        };
        if (mep_id >= eps_.size())
            return fail(Error::InvalidEp);
        Endpoint &mep = eps_[mep_id];
        if (mep.kind != EpKind::Memory)
            return fail(Error::InvalidEp);
        if (Error e = checkEpAccess(act, mep); e != Error::None)
            return fail(e);
        if (!(mep.mem.perms & kPermW))
            return fail(Error::PmpFault);
        if (offset + data.size() > mep.mem.size)
            return fail(Error::OutOfBounds);
        if (data.size() > kPageSize)
            return fail(Error::OutOfBounds);
        PhysAddr phys = 0;
        if (Error e = translate(act, buf, false, phys);
            e != Error::None)
            return fail(e);

        sim::Cycles dma =
            timing_.localMemFixed +
            data.size() / timing_.localMemBytesPerCycle;
        eq_.schedule(clk_.cyclesToTicks(dma),
                     [this, mep_id, offset, data = std::move(data),
                      cb = std::move(cb)]() mutable {
            Endpoint &mep2 = eps_[mep_id];
            auto wd = std::make_unique<WireData>();
            wd->kind = WireKind::MemWriteReq;
            wd->reqId = nextReqId_++;
            wd->addr = mep2.mem.addr + offset;
            wd->size = data.size();
            wd->data = std::move(data);

            Inflight inf;
            inf.cmdCb = [this, cb = std::move(cb)](Error e) mutable {
                cb(e);
                cmdFinished();
            };
            inflight_.emplace(wd->reqId, std::move(inf));
            noc::TileId dst = mep2.mem.destTile;
            if (dst == tile_) {
                deliverLocal(std::move(wd));
            } else {
                sendPacket(dst, std::move(wd));
            }
        });
    });
}

//
// Register-level operations.
//

int
Dtu::fetch(ActId act, EpId rep_id)
{
    if (rep_id >= eps_.size())
        return -1;
    Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return -1;
    if (checkEpAccess(act, rep) != Error::None)
        return -1;
    int slot = rep.recv.firstUnread();
    if (slot < 0)
        return -1;
    rep.recv.slots[static_cast<std::size_t>(slot)].unread = false;
    onMessageFetched(rep_id, rep.act);
    return slot;
}

std::size_t
Dtu::unread(ActId act, EpId rep_id) const
{
    if (rep_id >= eps_.size())
        return 0;
    const Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return 0;
    if (checkEpAccess(act, rep) != Error::None)
        return 0;
    return rep.recv.unreadCount();
}

const Message &
Dtu::slotMsg(EpId rep_id, int slot) const
{
    const Endpoint &rep = ep(rep_id);
    if (rep.kind != EpKind::Receive || slot < 0 ||
        static_cast<std::size_t>(slot) >= rep.recv.slots.size())
        sim::panic("%s: slotMsg(%u, %d) invalid", name().c_str(),
                   rep_id, slot);
    const RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    if (!rs.occupied)
        sim::panic("%s: slotMsg on free slot", name().c_str());
    return rs.msg;
}

void
Dtu::ack(ActId act, EpId rep_id, int slot)
{
    Endpoint &rep = epMut(rep_id);
    if (rep.kind != EpKind::Receive ||
        checkEpAccess(act, rep) != Error::None)
        return;
    if (slot < 0 ||
        static_cast<std::size_t>(slot) >= rep.recv.slots.size())
        return;
    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    if (!rs.occupied)
        return;
    noc::TileId dst = rs.msg.srcTile;
    EpId credit_ep = rs.msg.creditEp;
    rs.occupied = false;
    rs.unread = false;
    if (credit_ep == kInvalidEp)
        return; // replies carry no credits
    sendCreditReturn(dst, credit_ep);
}

void
Dtu::sendCreditReturn(noc::TileId dst, EpId credit_ep)
{
    auto cr = std::make_unique<WireData>();
    cr->kind = WireKind::CreditReturn;
    cr->creditEp = credit_ep;
    respond(dst, std::move(cr));
}

std::size_t
Dtu::reclaimCredits(EpId rep_id)
{
    if (rep_id >= eps_.size())
        return 0;
    Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return 0;
    std::size_t n = 0;
    for (auto &rs : rep.recv.slots) {
        if (!rs.occupied)
            continue;
        if (rs.msg.creditEp != kInvalidEp) {
            sendCreditReturn(rs.msg.srcTile, rs.msg.creditEp);
            creditsReclaimed_->inc();
            n++;
        }
        rs = RecvSlot{};
    }
    return n;
}

bool
Dtu::deviceMessage(EpId rep, std::vector<std::uint8_t> payload,
                   std::uint64_t label)
{
    Endpoint &ep = epMut(rep);
    if (ep.kind != EpKind::Receive)
        sim::panic("%s: deviceMessage to non-recv EP %u",
                   name().c_str(), rep);
    if (payload.size() > ep.recv.slotSize)
        return false;
    int slot = ep.recv.freeSlot();
    if (slot < 0)
        return false;
    RecvSlot &rs = ep.recv.slots[static_cast<std::size_t>(slot)];
    rs.occupied = true;
    rs.unread = true;
    rs.msg = Message{};
    rs.msg.label = label;
    rs.msg.srcTile = tile_;
    rs.msg.payload = std::move(payload);
    rs.msg.seq = nextSeq_++;
    rs.msg.arrival = eq_.now();
    msgsRecv_->inc();
    onMessageStored(rep, ep.act);
    if (msgNotify_)
        msgNotify_(rep, ep.act);
    return true;
}

//
// NoC interface.
//

bool
Dtu::acceptPacket(noc::Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    (void)on_space;
    if (pkt.corrupted) {
        // The link CRC failed: discard the packet. In reliable mode
        // the sender's retransmission recovers it.
        corruptDropped_->inc();
        noc::Packet consumed = std::move(pkt);
        return true;
    }
    auto *wd = dynamic_cast<WireData *>(pkt.data.get());
    if (!wd)
        sim::panic("%s: foreign packet payload", name().c_str());
    noc::TileId src = pkt.src;
    // Take ownership; process after the rx pipeline delay.
    auto owned = std::unique_ptr<WireData>(
        static_cast<WireData *>(pkt.data.release()));
    noc::Packet consumed = std::move(pkt);
    eq_.schedule(clk_.cyclesToTicks(timing_.rxProcess),
                 [this, src, owned = std::move(owned)]() mutable {
                     handlePacket(*owned, src);
                 });
    return true;
}

void
Dtu::deliverLocal(std::unique_ptr<WireData> wd)
{
    eq_.schedule(clk_.cyclesToTicks(timing_.loopback),
                 [this, wd = std::move(wd)]() mutable {
                     handlePacket(*wd, tile_);
                 });
}

void
Dtu::sendPacket(noc::TileId dst, std::unique_ptr<WireData> wd)
{
    if (reliable_ && isRetxKind(wd->kind) && wd->seq == 0) {
        // First transmission of a reliable request: stamp the wire
        // sequence number, keep a copy, and arm the retx timer.
        wd->seq = wireSeq_++;
        Retx r;
        r.dst = dst;
        r.wd = *wd;
        retx_.emplace(wd->seq, std::move(r));
        armRetxTimer(wd->seq);
    }
    noc::Packet pkt;
    pkt.src = tile_;
    pkt.dst = dst;
    pkt.bytes = wd->wireBytes();
    pkt.data = std::move(wd);
    txQueue_.push_back(std::move(pkt));
    pumpTx();
}

bool
Dtu::isRetxKind(WireKind k)
{
    switch (k) {
      case WireKind::MsgXfer:
      case WireKind::CreditReturn:
      case WireKind::MemReadReq:
      case WireKind::MemWriteReq:
      case WireKind::ExtReq:
        return true;
      default:
        return false;
    }
}

void
Dtu::armRetxTimer(std::uint64_t seq)
{
    auto it = retx_.find(seq);
    if (it == retx_.end())
        return;
    sim::Cycles to = timing_.retxTimeoutCycles << it->second.attempts;
    it->second.timer = eq_.schedule(
        clk_.cyclesToTicks(to), [this, seq]() { retxTimeout(seq); });
}

void
Dtu::retxTimeout(std::uint64_t seq)
{
    auto it = retx_.find(seq);
    if (it == retx_.end())
        return;
    Retx &r = it->second;
    if (r.attempts + 1 >= timing_.retxMaxAttempts) {
        // Give up: surface Error::Timeout to whoever is waiting. For
        // MsgXfer the inflight callback restores the send credit; a
        // lost CreditReturn has no waiter (the credit is gone until
        // the controller reclaims it).
        std::uint64_t req_id = r.wd.reqId;
        WireKind kind = r.wd.kind;
        if (kind == WireKind::CreditReturn) {
            lostCreditReturns_[(static_cast<std::uint64_t>(r.dst)
                                << 32) |
                               r.wd.creditEp]++;
        }
        retx_.erase(it);
        timeouts_->inc();
        trc_->instant(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                      "retx_timeout");
        if (kind == WireKind::CreditReturn)
            return;
        auto inf = inflight_.find(req_id);
        if (inf == inflight_.end())
            return;
        Inflight cbs = std::move(inf->second);
        inflight_.erase(inf);
        if (cbs.cmdCb)
            cbs.cmdCb(Error::Timeout);
        else if (cbs.readCb)
            cbs.readCb(Error::Timeout, {});
        else if (cbs.extCb)
            cbs.extCb(Error::Timeout, {});
        return;
    }
    r.attempts++;
    retransmits_->inc();
    trc_->instant(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                  "retransmit");
    auto copy = std::make_unique<WireData>(r.wd);
    noc::Packet pkt;
    pkt.src = tile_;
    pkt.dst = r.dst;
    pkt.bytes = copy->wireBytes();
    pkt.data = std::move(copy);
    txQueue_.push_back(std::move(pkt));
    pumpTx();
    armRetxTimer(seq);
}

void
Dtu::retxComplete(std::uint64_t seq)
{
    if (!reliable_ || seq == 0)
        return;
    auto it = retx_.find(seq);
    if (it == retx_.end())
        return;
    it->second.timer.cancel();
    retx_.erase(it);
}

void
Dtu::rememberOutcome(noc::TileId src, std::uint64_t seq, Error e)
{
    auto &window = seen_[src];
    window.push_back(SeenEntry{seq, e});
    if (window.size() > kSeenWindow)
        window.pop_front();
}

const Error *
Dtu::findOutcome(noc::TileId src, std::uint64_t seq) const
{
    auto it = seen_.find(src);
    if (it == seen_.end())
        return nullptr;
    for (const auto &entry : it->second)
        if (entry.seq == seq)
            return &entry.outcome;
    return nullptr;
}

void
Dtu::pumpTx()
{
    while (!txQueue_.empty()) {
        noc::Packet &head = txQueue_.front();
        if (!noc_.inject(head, [this]() { pumpTx(); }))
            return;
        txQueue_.pop_front();
    }
}

void
Dtu::respond(noc::TileId dst, std::unique_ptr<WireData> wd)
{
    if (dst == tile_) {
        deliverLocal(std::move(wd));
    } else {
        sendPacket(dst, std::move(wd));
    }
}

void
Dtu::handlePacket(WireData &wd, noc::TileId src)
{
    switch (wd.kind) {
      case WireKind::MsgXfer:
        handleMsgXfer(wd, src);
        break;

      case WireKind::MsgDelivered:
      case WireKind::MsgNack: {
        retxComplete(wd.seq);
        auto it = inflight_.find(wd.reqId);
        if (it == inflight_.end()) {
            // Duplicate response (the request was retransmitted but
            // the first response got through) or a late response
            // after retx exhaustion. Only legal in reliable mode.
            if (!reliable_)
                sim::panic("%s: stray delivery ack", name().c_str());
            straysDropped_->inc();
            break;
        }
        auto cb = std::move(it->second.cmdCb);
        inflight_.erase(it);
        cb(wd.kind == WireKind::MsgNack ? wd.error : Error::None);
        break;
      }

      case WireKind::CreditReturn: {
        if (reliable_ && wd.seq != 0) {
            if (findOutcome(src, wd.seq)) {
                duplicates_->inc();
            } else {
                rememberOutcome(src, wd.seq, Error::None);
                addCredit(wd.creditEp);
            }
            // Always (re-)acknowledge so the sender stops resending.
            auto ca = std::make_unique<WireData>();
            ca->kind = WireKind::CreditAck;
            ca->reqId = wd.reqId;
            ca->seq = wd.seq;
            respond(src, std::move(ca));
        } else {
            addCredit(wd.creditEp);
        }
        break;
      }

      case WireKind::CreditAck:
        retxComplete(wd.seq);
        break;

      case WireKind::MemReadReq: {
        // Core tiles do not serve memory requests (memory tiles do,
        // see MemoryTile); report a fault to the requester.
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MemReadResp;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = Error::PmpFault;
        respond(src, std::move(resp));
        break;
      }

      case WireKind::MemWriteReq: {
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MemWriteAck;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = Error::PmpFault;
        respond(src, std::move(resp));
        break;
      }

      case WireKind::MemReadResp: {
        retxComplete(wd.seq);
        auto it = inflight_.find(wd.reqId);
        if (it == inflight_.end()) {
            if (!reliable_)
                sim::panic("%s: stray read response", name().c_str());
            straysDropped_->inc();
            break;
        }
        auto cb = std::move(it->second.readCb);
        inflight_.erase(it);
        cb(wd.error, std::move(wd.data));
        break;
      }

      case WireKind::MemWriteAck: {
        retxComplete(wd.seq);
        auto it = inflight_.find(wd.reqId);
        if (it == inflight_.end()) {
            if (!reliable_)
                sim::panic("%s: stray write ack", name().c_str());
            straysDropped_->inc();
            break;
        }
        auto cb = std::move(it->second.cmdCb);
        inflight_.erase(it);
        cb(wd.error);
        break;
      }

      case WireKind::ExtReq: {
        sim::Cycles cost =
            timing_.extPerEp * std::max<std::uint16_t>(1, wd.epCount);
        // Copy the fields we need; wd dies with the caller's frame.
        auto req = std::make_unique<WireData>(std::move(wd));
        eq_.schedule(clk_.cyclesToTicks(cost),
                     [this, src, req = std::move(req)]() mutable {
            auto resp = std::make_unique<WireData>();
            resp->kind = WireKind::ExtResp;
            resp->reqId = req->reqId;
            resp->seq = req->seq;
            switch (req->extOp) {
              case ExtOp::SetEp:
                configEp(req->epStart, std::move(req->eps.at(0)));
                break;
              case ExtOp::InvEp:
                invalidateEp(req->epStart);
                break;
              case ExtOp::ReadEps:
                for (EpId i = 0; i < req->epCount; i++)
                    resp->eps.push_back(
                        eps_.at(req->epStart + i));
                break;
              case ExtOp::WriteEps:
                for (EpId i = 0;
                     i < req->epCount && i < req->eps.size(); i++)
                    eps_.at(req->epStart + i) =
                        std::move(req->eps[i]);
                break;
            }
            respond(src, std::move(resp));
        });
        break;
      }

      case WireKind::ExtResp: {
        retxComplete(wd.seq);
        auto it = inflight_.find(wd.reqId);
        if (it == inflight_.end()) {
            if (!reliable_)
                sim::panic("%s: stray ext response", name().c_str());
            straysDropped_->inc();
            break;
        }
        auto cb = std::move(it->second.extCb);
        inflight_.erase(it);
        cb(wd.error, std::move(wd.eps));
        break;
      }
    }
}

void
Dtu::addCredit(EpId credit_ep)
{
    if (credit_ep >= eps_.size())
        return;
    Endpoint &sep = eps_[credit_ep];
    if (sep.kind == EpKind::Send &&
        sep.send.credits < sep.send.maxCredits)
        sep.send.credits++;
}

void
Dtu::handleMsgXfer(WireData &wd, noc::TileId src)
{
    if (reliable_ && wd.seq != 0) {
        if (const Error *out = findOutcome(src, wd.seq)) {
            // Retransmitted copy of a message we already processed:
            // do not store it again, just re-send the old response.
            duplicates_->inc();
            auto resp = std::make_unique<WireData>();
            resp->kind = *out == Error::None ? WireKind::MsgDelivered
                                             : WireKind::MsgNack;
            resp->reqId = wd.reqId;
            resp->seq = wd.seq;
            resp->error = *out;
            respond(src, std::move(resp));
            return;
        }
    }

    auto nack = [&](Error e) {
        if (reliable_ && wd.seq != 0)
            rememberOutcome(src, wd.seq, e);
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MsgNack;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = e;
        respond(src, std::move(resp));
    };

    if (wd.dstEp >= eps_.size())
        return nack(Error::RecvGone);
    Endpoint &rep = eps_[wd.dstEp];
    if (rep.kind != EpKind::Receive)
        return nack(Error::RecvGone);
    if (Error e = checkIncoming(wd.dstEp, rep, wd); e != Error::None)
        return nack(e);
    if (wd.msg.payload.size() > rep.recv.slotSize)
        return nack(Error::MsgTooBig);
    int slot = rep.recv.freeSlot();
    if (slot < 0)
        return nack(Error::RecvGone);

    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    rs.occupied = true;
    rs.unread = true;
    rs.msg = std::move(wd.msg);
    rs.msg.seq = nextSeq_++;
    rs.msg.arrival = eq_.now();
    msgsRecv_->inc();

    if (reliable_ && wd.seq != 0)
        rememberOutcome(src, wd.seq, Error::None);
    auto resp = std::make_unique<WireData>();
    resp->kind = WireKind::MsgDelivered;
    resp->reqId = wd.reqId;
    resp->seq = wd.seq;
    respond(src, std::move(resp));

    onMessageStored(wd.dstEp, rep.act);
    if (msgNotify_)
        msgNotify_(wd.dstEp, rep.act);
}

//
// Default (non-virtualized) policy hooks.
//

Error
Dtu::checkEpAccess(ActId, const Endpoint &) const
{
    return Error::None;
}

Error
Dtu::translate(ActId, VirtAddr buf, bool, PhysAddr &phys)
{
    phys = buf;
    return Error::None;
}

void
Dtu::onMessageStored(EpId, ActId)
{
}

void
Dtu::onMessageFetched(EpId, ActId)
{
}

Error
Dtu::checkIncoming(EpId, const Endpoint &, const WireData &) const
{
    return Error::None;
}

//
// Invariant registration (tests only).
//

void
registerDtuInvariants(sim::Invariants &inv,
                      std::vector<const Dtu *> dtus)
{
    inv.addCheck("dtu.local_laws", [dtus](sim::Invariants &v) {
        for (const Dtu *d : dtus) {
            for (EpId i = 0; i < kNumEps; i++) {
                const Endpoint &e = d->ep(i);
                if (e.kind == EpKind::Send) {
                    if (e.send.credits > e.send.maxCredits)
                        v.fail("%s: send ep %u holds %u credits, max "
                               "%u",
                               d->name().c_str(), i, e.send.credits,
                               e.send.maxCredits);
                } else if (e.kind == EpKind::Receive) {
                    for (std::size_t s = 0; s < e.recv.slots.size();
                         s++) {
                        const RecvSlot &rs = e.recv.slots[s];
                        if (rs.unread && !rs.occupied)
                            v.fail("%s: recv ep %u slot %zu unread "
                                   "but not occupied",
                                   d->name().c_str(), i, s);
                    }
                }
            }
        }
    });

    inv.addCheck(
        "dtu.engines_drained",
        [dtus](sim::Invariants &v) {
            for (const Dtu *d : dtus)
                if (!d->engineQuiescent())
                    v.fail("%s: tx/inflight/retx/cmd engine busy at "
                           "quiescence",
                           d->name().c_str());
        },
        sim::Invariants::When::QuiescentOnly);

    inv.addCheck(
        "dtu.credit_conservation",
        [dtus](sim::Invariants &v) {
            for (const Dtu *d : dtus) {
                for (EpId i = 0; i < kNumEps; i++) {
                    const Endpoint &e = d->ep(i);
                    if (e.kind != EpKind::Send || e.send.isReply ||
                        e.send.maxCredits == 0)
                        continue;
                    // Credits held by this channel's undelivered
                    // (unacknowledged) messages: occupied remote
                    // slots attributed by (srcTile, creditEp).
                    std::uint64_t held = 0;
                    std::uint64_t lost = 0;
                    for (const Dtu *r : dtus) {
                        for (EpId j = 0; j < kNumEps; j++) {
                            const Endpoint &re = r->ep(j);
                            if (re.kind != EpKind::Receive)
                                continue;
                            for (const RecvSlot &rs : re.recv.slots)
                                if (rs.occupied &&
                                    rs.msg.srcTile == d->tileId() &&
                                    rs.msg.creditEp == i)
                                    held++;
                        }
                        lost += r->lostCreditReturns(d->tileId(), i);
                    }
                    std::uint64_t avail = e.send.credits;
                    std::uint64_t slack =
                        d->timeoutCreditRestores(i);
                    std::uint64_t max = e.send.maxCredits;
                    if (avail + held > max + slack ||
                        avail + held + lost < max)
                        v.fail("%s: send ep %u credit imbalance: "
                               "avail %llu + held %llu vs max %llu "
                               "(lost %llu, timeout restores %llu)",
                               d->name().c_str(), i,
                               static_cast<unsigned long long>(avail),
                               static_cast<unsigned long long>(held),
                               static_cast<unsigned long long>(max),
                               static_cast<unsigned long long>(lost),
                               static_cast<unsigned long long>(
                                   slack));
                }
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

} // namespace m3v::dtu
