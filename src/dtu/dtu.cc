#include "dtu/dtu.h"

#include <algorithm>
#include <utility>

#include "sim/invariants.h"
#include "sim/log.h"

namespace m3v::dtu {

const char *
errorName(Error e)
{
    switch (e) {
      case Error::None: return "None";
      case Error::InvalidEp: return "InvalidEp";
      case Error::ForeignEp: return "ForeignEp";
      case Error::NoCredits: return "NoCredits";
      case Error::TlbMiss: return "TlbMiss";
      case Error::OutOfBounds: return "OutOfBounds";
      case Error::RecvGone: return "RecvGone";
      case Error::NoReplyAllowed: return "NoReplyAllowed";
      case Error::PmpFault: return "PmpFault";
      case Error::MsgTooBig: return "MsgTooBig";
      case Error::Aborted: return "Aborted";
      case Error::Timeout: return "Timeout";
      case Error::Overloaded: return "Overloaded";
    }
    return "Unknown";
}

Dtu::Dtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
         noc::TileId tile, std::uint64_t freq_hz, DtuTiming timing)
    : SimObject(eq, std::move(name)), clk_(freq_hz), noc_(noc),
      tile_(tile), timing_(timing), eps_(kNumEps),
      reliable_(noc.params().faults != nullptr)
{
    noc_.attachTile(tile, this);
    msgsSent_ = statCounter("msgs_sent");
    msgsRecv_ = statCounter("msgs_recv");
    nacks_ = statCounter("nacks");
    retransmits_ = statCounter("retransmits");
    timeouts_ = statCounter("timeouts");
    duplicates_ = statCounter("duplicates");
    corruptDropped_ = statCounter("corrupt_dropped");
    straysDropped_ = statCounter("strays_dropped");
    creditsReclaimed_ = statCounter("credits_reclaimed");
    doorbellsCoalesced_ = statCounter("doorbells_coalesced");
    doorbellFlushes_ = statCounter("doorbell_flushes");
    trc_ = &eq.tracer();
}

//
// External interface.
//

void
Dtu::configEp(EpId id, Endpoint ep)
{
    if (id >= eps_.size())
        sim::panic("%s: configEp %u out of range", name().c_str(), id);
    eps_[id] = std::move(ep);
}

void
Dtu::invalidateEp(EpId id)
{
    if (id >= eps_.size())
        sim::panic("%s: invalidateEp %u out of range",
                   name().c_str(), id);
    eps_[id] = Endpoint();
}

const Endpoint &
Dtu::ep(EpId id) const
{
    if (id >= eps_.size())
        sim::panic("%s: ep %u out of range", name().c_str(), id);
    return eps_[id];
}

Endpoint &
Dtu::epMut(EpId id)
{
    if (id >= eps_.size())
        sim::panic("%s: ep %u out of range", name().c_str(), id);
    return eps_[id];
}

void
Dtu::extRequest(noc::TileId dst, ExtOp op, EpId ep_start,
                std::vector<Endpoint> eps, std::uint16_t count,
                ExtCallback cb)
{
    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::ExtReq;
    wd->reqId = nextReqId_++;
    wd->extOp = op;
    wd->epStart = ep_start;
    wd->epCount = count;
    wd->eps = std::move(eps);
    addInflight(wd->reqId, Inflight::Kind::Ext, kInvalidEp,
                std::move(cb));
    respond(dst, std::move(wd));
}

//
// In-flight request table.
//

void
Dtu::addInflight(std::uint64_t req_id, Inflight::Kind kind,
                 EpId credit_ep, ExtCallback ext_cb)
{
    Inflight inf;
    inf.reqId = req_id;
    inf.kind = kind;
    inf.creditEp = credit_ep;
    inf.extCb = std::move(ext_cb);
    inflight_.push_back(std::move(inf));
}

bool
Dtu::takeInflight(std::uint64_t req_id, Inflight &out)
{
    for (std::size_t i = 0; i < inflight_.size(); i++) {
        if (inflight_[i].reqId != req_id)
            continue;
        out = std::move(inflight_[i]);
        if (i + 1 != inflight_.size())
            inflight_[i] = std::move(inflight_.back());
        inflight_.pop_back();
        return true;
    }
    return false;
}

void
Dtu::completeInflight(Inflight inf, Error e, WireData *resp)
{
    auto expect = [this](CmdState::Kind k) {
        if (curCmd_.kind != k)
            sim::panic("%s: inflight response for wrong command",
                       name().c_str());
    };
    switch (inf.kind) {
      case Inflight::Kind::CmdSend:
        expect(CmdState::Kind::Send);
        if (e != Error::None) {
            // Restore the credit on failed delivery.
            if (inf.creditEp < eps_.size()) {
                Endpoint &s = eps_[inf.creditEp];
                if (s.kind == EpKind::Send &&
                    s.send.credits < s.send.maxCredits) {
                    s.send.credits++;
                    if (e == Error::Timeout) {
                        // A timed-out message may still have been
                        // delivered (only the ack was lost) — record
                        // the restore as conservation slack.
                        timeoutRestores_[inf.creditEp]++;
                    }
                }
            }
            nacks_->inc();
        } else {
            msgsSent_->inc();
        }
        completeCmd(e);
        break;

      case Inflight::Kind::CmdReply:
        expect(CmdState::Kind::Reply);
        if (e == Error::None)
            msgsSent_->inc();
        else
            nacks_->inc();
        completeCmd(e);
        break;

      case Inflight::Kind::CmdWrite:
        expect(CmdState::Kind::Write);
        completeCmd(e);
        break;

      case Inflight::Kind::CmdRead: {
        expect(CmdState::Kind::Read);
        // Stage the response, then DMA the data into the core's
        // cache (the vector copy below models exactly that DMA; the
        // zero-copy discipline ends at the software boundary).
        curCmd_.err = e;
        curCmd_.readData.clear();
        if (resp != nullptr && !resp->data.empty()) {
            const auto &bytes = resp->data.bytes();
            curCmd_.readData.assign(bytes.begin(), bytes.end());
        }
        sim::Cycles dma =
            timing_.localMemFixed +
            curCmd_.readData.size() / timing_.localMemBytesPerCycle;
        eq_.schedule(clk_.cyclesToTicks(dma),
                     [this]() { completeCmd(curCmd_.err); });
        break;
      }

      case Inflight::Kind::Ext:
        inf.extCb(e, resp != nullptr ? std::move(resp->eps)
                                     : std::vector<Endpoint>{});
        break;
    }
}

//
// Command engine.
//

void
Dtu::enqueueCmd(CmdState st)
{
    if (cmdBusy_) {
        cmdQueue_.push_back(std::move(st));
        return;
    }
    cmdBusy_ = true;
    curCmd_ = std::move(st);
    dispatchCmd();
}

void
Dtu::dispatchCmd()
{
    switch (curCmd_.kind) {
      case CmdState::Kind::Send: doSend(); break;
      case CmdState::Kind::Reply: doReply(); break;
      case CmdState::Kind::Read: doRead(); break;
      case CmdState::Kind::Write: doWrite(); break;
      case CmdState::Kind::None:
        sim::panic("%s: dispatch of empty command", name().c_str());
    }
}

void
Dtu::cmdFinished()
{
    if (!cmdBusy_)
        sim::panic("%s: cmdFinished while idle", name().c_str());
    trc_->end(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu);
    if (cmdQueue_.empty()) {
        cmdBusy_ = false;
        return;
    }
    curCmd_ = std::move(cmdQueue_.front());
    cmdQueue_.pop_front();
    dispatchCmd();
}

void
Dtu::completeCmd(Error e)
{
    // Move the callback out and reset the command state before
    // invoking it: the callback may enqueue the next command.
    if (curCmd_.kind == CmdState::Kind::Read) {
        ReadCallback rcb = std::move(curCmd_.rcb);
        std::vector<std::uint8_t> data = std::move(curCmd_.readData);
        curCmd_ = CmdState{};
        rcb(e, std::move(data));
    } else {
        CmdCallback cb = std::move(curCmd_.cb);
        curCmd_ = CmdState{};
        cb(e);
    }
    cmdFinished();
}

void
Dtu::cmdSend(ActId act, EpId ep_id, VirtAddr buf,
             std::vector<std::uint8_t> payload, EpId reply_ep,
             CmdCallback cb, std::uint64_t nonce)
{
    cmdSendRef(act, ep_id, buf,
               noc_.payloadPool().adopt(std::move(payload)), reply_ep,
               std::move(cb), nonce);
}

void
Dtu::cmdSendRef(ActId act, EpId ep_id, VirtAddr buf,
                sim::PayloadRef payload, EpId reply_ep,
                CmdCallback cb, std::uint64_t nonce)
{
    CmdState st;
    st.kind = CmdState::Kind::Send;
    st.act = act;
    st.ep = ep_id;
    st.buf = buf;
    st.payload = std::move(payload);
    st.replyEp = reply_ep;
    st.nonce = nonce;
    st.cb = std::move(cb);
    enqueueCmd(std::move(st));
}

void
Dtu::doSend()
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu, "SEND");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this]() { sendChecks(); });
}

void
Dtu::sendChecks()
{
    CmdState &c = curCmd_;
    if (c.ep >= eps_.size())
        return completeCmd(Error::InvalidEp);
    Endpoint &sep = eps_[c.ep];
    if (sep.kind != EpKind::Send)
        return completeCmd(Error::InvalidEp);
    if (Error e = checkEpAccess(c.act, sep); e != Error::None)
        return completeCmd(e);
    if (c.payload.size() > sep.send.maxMsgSize)
        return completeCmd(Error::MsgTooBig);
    if (sep.send.credits == 0)
        return completeCmd(Error::NoCredits);
    PhysAddr phys = 0;
    if (Error e = translate(c.act, c.buf, false, phys);
        e != Error::None)
        return completeCmd(e);

    // DMA the message out of the core's cache.
    sim::Cycles dma =
        timing_.localMemFixed +
        c.payload.size() / timing_.localMemBytesPerCycle;
    eq_.schedule(clk_.cyclesToTicks(dma),
                 [this]() { sendLaunch(); });
}

void
Dtu::sendLaunch()
{
    CmdState &c = curCmd_;
    Endpoint &sep = eps_[c.ep];
    sep.send.credits--;

    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::MsgXfer;
    wd->reqId = nextReqId_++;
    wd->dstEp = sep.send.destEp;
    wd->dstAct = sep.send.destAct;
    wd->isReply = sep.send.isReply;
    wd->msg.nonce = c.nonce;
    wd->msg.label = sep.send.label;
    wd->msg.srcTile = tile_;
    wd->msg.srcAct = c.act;
    wd->msg.replyEp = c.replyEp;
    wd->msg.creditEp = c.ep;
    wd->msg.canReply = c.replyEp != kInvalidEp;
    // Zero-copy hand-off: the command's extent becomes the wire's.
    if (copyBaseline_)
        wd->msg.payload = noc_.payloadPool().copy(c.payload.data(),
                                                  c.payload.size());
    else
        wd->msg.payload = std::move(c.payload);

    noc::TileId dst = sep.send.destTile;
    addInflight(wd->reqId, Inflight::Kind::CmdSend, c.ep);
    respond(dst, std::move(wd));
}

void
Dtu::cmdReply(ActId act, EpId rep_id, int slot, VirtAddr buf,
              std::vector<std::uint8_t> payload, CmdCallback cb)
{
    cmdReplyRef(act, rep_id, slot, buf,
                noc_.payloadPool().adopt(std::move(payload)),
                std::move(cb));
}

void
Dtu::cmdReplyRef(ActId act, EpId rep_id, int slot, VirtAddr buf,
                 sim::PayloadRef payload, CmdCallback cb)
{
    CmdState st;
    st.kind = CmdState::Kind::Reply;
    st.act = act;
    st.ep = rep_id;
    st.slot = slot;
    st.buf = buf;
    st.payload = std::move(payload);
    st.cb = std::move(cb);
    enqueueCmd(std::move(st));
}

void
Dtu::doReply()
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                "REPLY");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this]() { replyChecks(); });
}

void
Dtu::replyChecks()
{
    CmdState &c = curCmd_;
    if (c.ep >= eps_.size())
        return completeCmd(Error::InvalidEp);
    Endpoint &rep = eps_[c.ep];
    if (rep.kind != EpKind::Receive)
        return completeCmd(Error::InvalidEp);
    if (Error e = checkEpAccess(c.act, rep); e != Error::None)
        return completeCmd(e);
    if (c.slot < 0 ||
        static_cast<std::size_t>(c.slot) >= rep.recv.slots.size())
        return completeCmd(Error::InvalidEp);
    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(c.slot)];
    if (!rs.occupied || !rs.msg.canReply)
        return completeCmd(Error::NoReplyAllowed);
    PhysAddr phys = 0;
    if (Error e = translate(c.act, c.buf, false, phys);
        e != Error::None)
        return completeCmd(e);

    sim::Cycles dma =
        timing_.localMemFixed +
        c.payload.size() / timing_.localMemBytesPerCycle;
    eq_.schedule(clk_.cyclesToTicks(dma),
                 [this]() { replyLaunch(); });
}

void
Dtu::replyLaunch()
{
    CmdState &c = curCmd_;
    Endpoint &rep = eps_[c.ep];
    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(c.slot)];
    noc::TileId dst = rs.msg.srcTile;
    EpId dst_ep = rs.msg.replyEp;
    EpId credit_ep = rs.msg.creditEp;

    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::MsgXfer;
    wd->reqId = nextReqId_++;
    wd->dstEp = dst_ep;
    wd->isReply = true;
    wd->msg.nonce = rs.msg.nonce;
    wd->msg.label = rs.msg.label;
    wd->msg.srcTile = tile_;
    wd->msg.srcAct = c.act;
    wd->msg.replyEp = kInvalidEp;
    wd->msg.creditEp = kInvalidEp;
    wd->msg.canReply = false;
    if (copyBaseline_)
        wd->msg.payload = noc_.payloadPool().copy(c.payload.data(),
                                                  c.payload.size());
    else
        wd->msg.payload = std::move(c.payload);

    // Replying acknowledges the original message: free the slot —
    // dropping its payload reference so the extent recycles — and
    // return the credit to the sender.
    rs.occupied = false;
    rs.unread = false;
    rs.msg.payload.reset();
    sendCreditReturn(dst, credit_ep);

    addInflight(wd->reqId, Inflight::Kind::CmdReply);
    respond(dst, std::move(wd));
}

void
Dtu::cmdRead(ActId act, EpId mep_id, std::uint64_t offset,
             std::size_t size, VirtAddr buf, ReadCallback cb)
{
    CmdState st;
    st.kind = CmdState::Kind::Read;
    st.act = act;
    st.ep = mep_id;
    st.offset = offset;
    st.size = size;
    st.buf = buf;
    st.rcb = std::move(cb);
    enqueueCmd(std::move(st));
}

void
Dtu::doRead()
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu, "READ");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this]() { readChecks(); });
}

void
Dtu::readChecks()
{
    CmdState &c = curCmd_;
    if (c.ep >= eps_.size())
        return completeCmd(Error::InvalidEp);
    Endpoint &mep = eps_[c.ep];
    if (mep.kind != EpKind::Memory)
        return completeCmd(Error::InvalidEp);
    if (Error e = checkEpAccess(c.act, mep); e != Error::None)
        return completeCmd(e);
    if (!(mep.mem.perms & kPermR))
        return completeCmd(Error::PmpFault);
    if (c.offset + c.size > mep.mem.size)
        return completeCmd(Error::OutOfBounds);
    if (c.size > kPageSize)
        return completeCmd(Error::OutOfBounds);
    PhysAddr phys = 0;
    if (Error e = translate(c.act, c.buf, true, phys);
        e != Error::None)
        return completeCmd(e);

    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::MemReadReq;
    wd->reqId = nextReqId_++;
    wd->addr = mep.mem.addr + c.offset;
    wd->size = c.size;

    addInflight(wd->reqId, Inflight::Kind::CmdRead);
    respond(mep.mem.destTile, std::move(wd));
}

void
Dtu::cmdWrite(ActId act, EpId mep_id, std::uint64_t offset,
              std::vector<std::uint8_t> data, VirtAddr buf,
              CmdCallback cb)
{
    CmdState st;
    st.kind = CmdState::Kind::Write;
    st.act = act;
    st.ep = mep_id;
    st.offset = offset;
    st.payload = noc_.payloadPool().adopt(std::move(data));
    st.buf = buf;
    st.cb = std::move(cb);
    enqueueCmd(std::move(st));
}

void
Dtu::doWrite()
{
    trc_->begin(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                "WRITE");
    sim::Tick t0 =
        clk_.cyclesToTicks(timing_.cmdDecode + timing_.tlbLookup);
    eq_.schedule(t0, [this]() { writeChecks(); });
}

void
Dtu::writeChecks()
{
    CmdState &c = curCmd_;
    if (c.ep >= eps_.size())
        return completeCmd(Error::InvalidEp);
    Endpoint &mep = eps_[c.ep];
    if (mep.kind != EpKind::Memory)
        return completeCmd(Error::InvalidEp);
    if (Error e = checkEpAccess(c.act, mep); e != Error::None)
        return completeCmd(e);
    if (!(mep.mem.perms & kPermW))
        return completeCmd(Error::PmpFault);
    if (c.offset + c.payload.size() > mep.mem.size)
        return completeCmd(Error::OutOfBounds);
    if (c.payload.size() > kPageSize)
        return completeCmd(Error::OutOfBounds);
    PhysAddr phys = 0;
    if (Error e = translate(c.act, c.buf, false, phys);
        e != Error::None)
        return completeCmd(e);

    sim::Cycles dma =
        timing_.localMemFixed +
        c.payload.size() / timing_.localMemBytesPerCycle;
    eq_.schedule(clk_.cyclesToTicks(dma),
                 [this]() { writeLaunch(); });
}

void
Dtu::writeLaunch()
{
    CmdState &c = curCmd_;
    Endpoint &mep = eps_[c.ep];
    auto wd = std::make_unique<WireData>();
    wd->kind = WireKind::MemWriteReq;
    wd->reqId = nextReqId_++;
    wd->addr = mep.mem.addr + c.offset;
    wd->size = c.payload.size();
    if (copyBaseline_)
        wd->data = noc_.payloadPool().copy(c.payload.data(),
                                           c.payload.size());
    else
        wd->data = std::move(c.payload);

    addInflight(wd->reqId, Inflight::Kind::CmdWrite);
    respond(mep.mem.destTile, std::move(wd));
}

//
// Register-level operations.
//

int
Dtu::fetch(ActId act, EpId rep_id)
{
    if (rep_id >= eps_.size())
        return -1;
    Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return -1;
    if (checkEpAccess(act, rep) != Error::None)
        return -1;
    int slot = rep.recv.firstUnread();
    if (slot < 0)
        return -1;
    rep.recv.slots[static_cast<std::size_t>(slot)].unread = false;
    onMessageFetched(rep_id, rep.act);
    return slot;
}

std::size_t
Dtu::unread(ActId act, EpId rep_id) const
{
    if (rep_id >= eps_.size())
        return 0;
    const Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return 0;
    if (checkEpAccess(act, rep) != Error::None)
        return 0;
    return rep.recv.unreadCount();
}

const Message &
Dtu::slotMsg(EpId rep_id, int slot) const
{
    const Endpoint &rep = ep(rep_id);
    if (rep.kind != EpKind::Receive || slot < 0 ||
        static_cast<std::size_t>(slot) >= rep.recv.slots.size())
        sim::panic("%s: slotMsg(%u, %d) invalid", name().c_str(),
                   rep_id, slot);
    const RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    if (!rs.occupied)
        sim::panic("%s: slotMsg on free slot", name().c_str());
    return rs.msg;
}

void
Dtu::ack(ActId act, EpId rep_id, int slot)
{
    Endpoint &rep = epMut(rep_id);
    if (rep.kind != EpKind::Receive ||
        checkEpAccess(act, rep) != Error::None)
        return;
    if (slot < 0 ||
        static_cast<std::size_t>(slot) >= rep.recv.slots.size())
        return;
    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    if (!rs.occupied)
        return;
    noc::TileId dst = rs.msg.srcTile;
    EpId credit_ep = rs.msg.creditEp;
    rs.occupied = false;
    rs.unread = false;
    // The receiver is done with the payload: drop the slot's extent
    // reference so it recycles (the slab conservation law counts
    // only occupied slots as legitimate holders).
    rs.msg.payload.reset();
    if (credit_ep == kInvalidEp)
        return; // replies carry no credits
    sendCreditReturn(dst, credit_ep);
}

void
Dtu::sendCreditReturn(noc::TileId dst, EpId credit_ep)
{
    auto cr = std::make_unique<WireData>();
    cr->kind = WireKind::CreditReturn;
    cr->creditEp = credit_ep;
    respond(dst, std::move(cr));
}

std::size_t
Dtu::reclaimCredits(EpId rep_id)
{
    if (rep_id >= eps_.size())
        return 0;
    Endpoint &rep = eps_[rep_id];
    if (rep.kind != EpKind::Receive)
        return 0;
    std::size_t n = 0;
    for (auto &rs : rep.recv.slots) {
        if (!rs.occupied)
            continue;
        if (rs.msg.creditEp != kInvalidEp) {
            sendCreditReturn(rs.msg.srcTile, rs.msg.creditEp);
            creditsReclaimed_->inc();
            n++;
        }
        rs = RecvSlot{};
    }
    return n;
}

bool
Dtu::deviceMessage(EpId rep, std::vector<std::uint8_t> payload,
                   std::uint64_t label)
{
    Endpoint &ep = epMut(rep);
    if (ep.kind != EpKind::Receive)
        sim::panic("%s: deviceMessage to non-recv EP %u",
                   name().c_str(), rep);
    if (payload.size() > ep.recv.slotSize)
        return false;
    int slot = ep.recv.freeSlot();
    if (slot < 0)
        return false;
    RecvSlot &rs = ep.recv.slots[static_cast<std::size_t>(slot)];
    rs.occupied = true;
    rs.unread = true;
    rs.msg = Message{};
    rs.msg.label = label;
    rs.msg.srcTile = tile_;
    rs.msg.payload = noc_.payloadPool().adopt(std::move(payload));
    rs.msg.seq = nextSeq_++;
    rs.msg.arrival = eq_.now();
    msgsRecv_->inc();
    onMessageStored(rep, ep.act);
    notifyMsg(rep, ep.act);
    return true;
}

//
// Doorbell batching.
//

void
Dtu::notifyMsg(EpId ep, ActId act)
{
    if (!msgNotify_)
        return;
    sim::Tick now = eq_.now();
    if (!doorbellFlushScheduled_ && doorbellTick_ != now) {
        // A new burst window with nothing deferred from the last one:
        // forget the old window's dedup records.
        doorbellPending_.clear();
    }
    doorbellTick_ = now;
    for (Doorbell &d : doorbellPending_) {
        if (d.ep != ep || d.act != act)
            continue;
        // Same destination rung again within the burst window:
        // coalesce. One deferred wakeup — delivered by the
        // end-of-window flush — stands in for any number of
        // duplicates.
        doorbellsCoalesced_->inc();
        if (!d.deferred) {
            d.deferred = true;
            if (!doorbellFlushScheduled_) {
                doorbellFlushScheduled_ = true;
                eq_.schedule(0, [this]() { flushDoorbells(); });
            }
        }
        return;
    }
    // First doorbell for this destination in the window: ring through
    // immediately (keeps single-message latency and, with no
    // duplicates, makes batching a strict no-op).
    doorbellPending_.push_back(Doorbell{ep, act, false});
    msgNotify_(ep, act);
}

void
Dtu::flushDoorbells()
{
    doorbellFlushScheduled_ = false;
    doorbellFlushes_->inc();
    // Swap into a scratch buffer (both keep their capacity, so the
    // steady state allocates nothing) — the callbacks may ring new
    // doorbells, which then open a fresh window.
    doorbellScratch_.clear();
    doorbellScratch_.swap(doorbellPending_);
    for (const Doorbell &d : doorbellScratch_)
        if (d.deferred)
            msgNotify_(d.ep, d.act);
}

//
// NoC interface.
//

bool
Dtu::acceptPacket(noc::Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    (void)on_space;
    if (pkt.corrupted) {
        // The link CRC failed: discard the packet. In reliable mode
        // the sender's retransmission recovers it.
        corruptDropped_->inc();
        noc::Packet consumed = std::move(pkt);
        return true;
    }
    auto *wd = dynamic_cast<WireData *>(pkt.data.get());
    if (!wd)
        sim::panic("%s: foreign packet payload", name().c_str());
    noc::TileId src = pkt.src;
    // Take ownership; process after the rx pipeline delay.
    auto owned = std::unique_ptr<WireData>(
        static_cast<WireData *>(pkt.data.release()));
    noc::Packet consumed = std::move(pkt);
    eq_.schedule(clk_.cyclesToTicks(timing_.rxProcess),
                 [this, src, owned = std::move(owned)]() mutable {
                     handlePacket(*owned, src);
                 });
    return true;
}

void
Dtu::deliverLocal(std::unique_ptr<WireData> wd)
{
    eq_.schedule(clk_.cyclesToTicks(timing_.loopback),
                 [this, wd = std::move(wd)]() mutable {
                     handlePacket(*wd, tile_);
                 });
}

void
Dtu::deepCopyPayload(WireData &wd)
{
    sim::SlabPool &pool = noc_.payloadPool();
    if (wd.msg.payload.valid())
        wd.msg.payload =
            pool.copy(wd.msg.payload.data(), wd.msg.payload.size());
    if (wd.data.valid())
        wd.data = pool.copy(wd.data.data(), wd.data.size());
}

void
Dtu::sendPacket(noc::TileId dst, std::unique_ptr<WireData> wd)
{
    if (reliable_ && isRetxKind(wd->kind) && wd->seq == 0) {
        // First transmission of a reliable request: stamp the wire
        // sequence number, keep a reference-holding copy, and arm the
        // retx timer. The saved WireData shares the payload extent
        // with the transmitted packet — corruption on the wire
        // mutates a COW view, so this original stays clean.
        wd->seq = wireSeq_++;
        Retx r;
        r.seq = wd->seq;
        r.dst = dst;
        r.wd = *wd;
        if (copyBaseline_)
            deepCopyPayload(r.wd);
        retx_.push_back(std::move(r));
        armRetxTimer(wd->seq);
    }
    noc::Packet pkt;
    pkt.src = tile_;
    pkt.dst = dst;
    pkt.bytes = wd->wireBytes();
    pkt.data = std::move(wd);
    txQueue_.push_back(std::move(pkt));
    pumpTx();
}

bool
Dtu::isRetxKind(WireKind k)
{
    switch (k) {
      case WireKind::MsgXfer:
      case WireKind::CreditReturn:
      case WireKind::MemReadReq:
      case WireKind::MemWriteReq:
      case WireKind::ExtReq:
        return true;
      default:
        return false;
    }
}

Dtu::Retx *
Dtu::findRetx(std::uint64_t seq)
{
    for (Retx &r : retx_)
        if (r.seq == seq)
            return &r;
    return nullptr;
}

void
Dtu::eraseRetx(std::uint64_t seq)
{
    for (std::size_t i = 0; i < retx_.size(); i++) {
        if (retx_[i].seq != seq)
            continue;
        if (i + 1 != retx_.size())
            retx_[i] = std::move(retx_.back());
        retx_.pop_back();
        return;
    }
}

void
Dtu::armRetxTimer(std::uint64_t seq)
{
    Retx *r = findRetx(seq);
    if (r == nullptr)
        return;
    sim::Cycles to = timing_.retxTimeoutCycles << r->attempts;
    r->timer = eq_.schedule(clk_.cyclesToTicks(to),
                            [this, seq]() { retxTimeout(seq); });
}

void
Dtu::retxTimeout(std::uint64_t seq)
{
    Retx *r = findRetx(seq);
    if (r == nullptr)
        return;
    if (r->attempts + 1 >= timing_.retxMaxAttempts) {
        // Give up: surface Error::Timeout to whoever is waiting. For
        // MsgXfer the inflight completion restores the send credit; a
        // lost CreditReturn has no waiter (the credit is gone until
        // the controller reclaims it).
        std::uint64_t req_id = r->wd.reqId;
        WireKind kind = r->wd.kind;
        if (kind == WireKind::CreditReturn) {
            lostCreditReturns_[(static_cast<std::uint64_t>(r->dst)
                                << 32) |
                               r->wd.creditEp]++;
        }
        eraseRetx(seq);
        timeouts_->inc();
        trc_->instant(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                      "retx_timeout");
        if (kind == WireKind::CreditReturn)
            return;
        Inflight inf;
        if (!takeInflight(req_id, inf))
            return;
        completeInflight(std::move(inf), Error::Timeout, nullptr);
        return;
    }
    r->attempts++;
    retransmits_->inc();
    trc_->instant(sim::TraceCat::Dtu, tile_, sim::kTraceTidDtu,
                  "retransmit");
    // The retransmitted packet is a fresh header sharing the saved
    // payload extent (a refcount bump, not a byte copy).
    auto copy = std::make_unique<WireData>(r->wd);
    if (copyBaseline_)
        deepCopyPayload(*copy);
    noc::Packet pkt;
    pkt.src = tile_;
    pkt.dst = r->dst;
    pkt.bytes = copy->wireBytes();
    pkt.data = std::move(copy);
    txQueue_.push_back(std::move(pkt));
    pumpTx();
    armRetxTimer(seq);
}

void
Dtu::retxComplete(std::uint64_t seq)
{
    if (!reliable_ || seq == 0)
        return;
    Retx *r = findRetx(seq);
    if (r == nullptr)
        return;
    r->timer.cancel();
    eraseRetx(seq);
}

void
Dtu::rememberOutcome(noc::TileId src, std::uint64_t seq, Error e)
{
    auto &window = seen_[src];
    window.push_back(SeenEntry{seq, e});
    if (window.size() > kSeenWindow)
        window.pop_front();
}

const Error *
Dtu::findOutcome(noc::TileId src, std::uint64_t seq) const
{
    auto it = seen_.find(src);
    if (it == seen_.end())
        return nullptr;
    const auto &window = it->second;
    for (std::size_t i = 0; i < window.size(); i++)
        if (window[i].seq == seq)
            return &window[i].outcome;
    return nullptr;
}

void
Dtu::pumpTx()
{
    while (!txQueue_.empty()) {
        noc::Packet &head = txQueue_.front();
        if (!noc_.inject(head, [this]() { pumpTx(); }))
            return;
        txQueue_.pop_front();
    }
}

void
Dtu::respond(noc::TileId dst, std::unique_ptr<WireData> wd)
{
    if (dst == tile_) {
        deliverLocal(std::move(wd));
    } else {
        sendPacket(dst, std::move(wd));
    }
}

void
Dtu::handlePacket(WireData &wd, noc::TileId src)
{
    switch (wd.kind) {
      case WireKind::MsgXfer:
        handleMsgXfer(wd, src);
        break;

      case WireKind::MsgDelivered:
      case WireKind::MsgNack: {
        retxComplete(wd.seq);
        Inflight inf;
        if (!takeInflight(wd.reqId, inf)) {
            // Duplicate response (the request was retransmitted but
            // the first response got through) or a late response
            // after retx exhaustion. Only legal in reliable mode.
            if (!reliable_)
                sim::panic("%s: stray delivery ack", name().c_str());
            straysDropped_->inc();
            break;
        }
        completeInflight(std::move(inf),
                         wd.kind == WireKind::MsgNack ? wd.error
                                                      : Error::None,
                         &wd);
        break;
      }

      case WireKind::CreditReturn: {
        if (reliable_ && wd.seq != 0) {
            if (findOutcome(src, wd.seq)) {
                duplicates_->inc();
            } else {
                rememberOutcome(src, wd.seq, Error::None);
                addCredit(wd.creditEp);
            }
            // Always (re-)acknowledge so the sender stops resending.
            auto ca = std::make_unique<WireData>();
            ca->kind = WireKind::CreditAck;
            ca->reqId = wd.reqId;
            ca->seq = wd.seq;
            respond(src, std::move(ca));
        } else {
            addCredit(wd.creditEp);
        }
        break;
      }

      case WireKind::CreditAck:
        retxComplete(wd.seq);
        break;

      case WireKind::MemReadReq: {
        // Core tiles do not serve memory requests (memory tiles do,
        // see MemoryTile); report a fault to the requester.
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MemReadResp;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = Error::PmpFault;
        respond(src, std::move(resp));
        break;
      }

      case WireKind::MemWriteReq: {
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MemWriteAck;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = Error::PmpFault;
        respond(src, std::move(resp));
        break;
      }

      case WireKind::MemReadResp:
      case WireKind::MemWriteAck:
      case WireKind::ExtResp: {
        retxComplete(wd.seq);
        Inflight inf;
        if (!takeInflight(wd.reqId, inf)) {
            if (!reliable_)
                sim::panic("%s: stray response", name().c_str());
            straysDropped_->inc();
            break;
        }
        completeInflight(std::move(inf), wd.error, &wd);
        break;
      }

      case WireKind::ExtReq: {
        sim::Cycles cost =
            timing_.extPerEp * std::max<std::uint16_t>(1, wd.epCount);
        // Copy the fields we need; wd dies with the caller's frame.
        auto req = std::make_unique<WireData>(std::move(wd));
        eq_.schedule(clk_.cyclesToTicks(cost),
                     [this, src, req = std::move(req)]() mutable {
            auto resp = std::make_unique<WireData>();
            resp->kind = WireKind::ExtResp;
            resp->reqId = req->reqId;
            resp->seq = req->seq;
            switch (req->extOp) {
              case ExtOp::SetEp:
                configEp(req->epStart, std::move(req->eps.at(0)));
                break;
              case ExtOp::InvEp:
                invalidateEp(req->epStart);
                break;
              case ExtOp::ReadEps:
                for (EpId i = 0; i < req->epCount; i++)
                    resp->eps.push_back(
                        eps_.at(req->epStart + i));
                break;
              case ExtOp::WriteEps:
                for (EpId i = 0;
                     i < req->epCount && i < req->eps.size(); i++)
                    eps_.at(req->epStart + i) =
                        std::move(req->eps[i]);
                break;
            }
            respond(src, std::move(resp));
        });
        break;
      }
    }
}

void
Dtu::addCredit(EpId credit_ep)
{
    if (credit_ep >= eps_.size())
        return;
    Endpoint &sep = eps_[credit_ep];
    if (sep.kind == EpKind::Send &&
        sep.send.credits < sep.send.maxCredits)
        sep.send.credits++;
}

void
Dtu::handleMsgXfer(WireData &wd, noc::TileId src)
{
    if (reliable_ && wd.seq != 0) {
        if (const Error *out = findOutcome(src, wd.seq)) {
            // Retransmitted copy of a message we already processed:
            // do not store it again, just re-send the old response.
            duplicates_->inc();
            auto resp = std::make_unique<WireData>();
            resp->kind = *out == Error::None ? WireKind::MsgDelivered
                                             : WireKind::MsgNack;
            resp->reqId = wd.reqId;
            resp->seq = wd.seq;
            resp->error = *out;
            respond(src, std::move(resp));
            return;
        }
    }

    auto nack = [&](Error e) {
        if (reliable_ && wd.seq != 0)
            rememberOutcome(src, wd.seq, e);
        auto resp = std::make_unique<WireData>();
        resp->kind = WireKind::MsgNack;
        resp->reqId = wd.reqId;
        resp->seq = wd.seq;
        resp->error = e;
        respond(src, std::move(resp));
    };

    if (wd.dstEp >= eps_.size())
        return nack(Error::RecvGone);
    Endpoint &rep = eps_[wd.dstEp];
    if (rep.kind != EpKind::Receive)
        return nack(Error::RecvGone);
    if (Error e = checkIncoming(wd.dstEp, rep, wd); e != Error::None)
        return nack(e);
    if (wd.msg.payload.size() > rep.recv.slotSize)
        return nack(Error::MsgTooBig);
    int slot = rep.recv.freeSlot();
    if (slot < 0)
        return nack(Error::RecvGone);

    RecvSlot &rs = rep.recv.slots[static_cast<std::size_t>(slot)];
    rs.occupied = true;
    rs.unread = true;
    // Zero-copy hand-off: the wire's extent becomes the slot's.
    rs.msg = std::move(wd.msg);
    if (copyBaseline_ && rs.msg.payload.valid())
        rs.msg.payload = noc_.payloadPool().copy(
            rs.msg.payload.data(), rs.msg.payload.size());
    rs.msg.seq = nextSeq_++;
    rs.msg.arrival = eq_.now();
    msgsRecv_->inc();

    if (reliable_ && wd.seq != 0)
        rememberOutcome(src, wd.seq, Error::None);
    auto resp = std::make_unique<WireData>();
    resp->kind = WireKind::MsgDelivered;
    resp->reqId = wd.reqId;
    resp->seq = wd.seq;
    respond(src, std::move(resp));

    onMessageStored(wd.dstEp, rep.act);
    notifyMsg(wd.dstEp, rep.act);
}

//
// Default (non-virtualized) policy hooks.
//

Error
Dtu::checkEpAccess(ActId, const Endpoint &) const
{
    return Error::None;
}

Error
Dtu::translate(ActId, VirtAddr buf, bool, PhysAddr &phys)
{
    phys = buf;
    return Error::None;
}

void
Dtu::onMessageStored(EpId, ActId)
{
}

void
Dtu::onMessageFetched(EpId, ActId)
{
}

Error
Dtu::checkIncoming(EpId, const Endpoint &, const WireData &) const
{
    return Error::None;
}

//
// Invariant registration (tests only).
//

void
registerDtuInvariants(sim::Invariants &inv,
                      std::vector<const Dtu *> dtus)
{
    inv.addCheck("dtu.local_laws", [dtus](sim::Invariants &v) {
        for (const Dtu *d : dtus) {
            for (EpId i = 0; i < kNumEps; i++) {
                const Endpoint &e = d->ep(i);
                if (e.kind == EpKind::Send) {
                    if (e.send.credits > e.send.maxCredits)
                        v.fail("%s: send ep %u holds %u credits, max "
                               "%u",
                               d->name().c_str(), i, e.send.credits,
                               e.send.maxCredits);
                } else if (e.kind == EpKind::Receive) {
                    for (std::size_t s = 0; s < e.recv.slots.size();
                         s++) {
                        const RecvSlot &rs = e.recv.slots[s];
                        if (rs.unread && !rs.occupied)
                            v.fail("%s: recv ep %u slot %zu unread "
                                   "but not occupied",
                                   d->name().c_str(), i, s);
                    }
                }
            }
        }
    });

    inv.addCheck("dtu.slab_conservation", [dtus](sim::Invariants &v) {
        // Distinct pools (a differential rig runs two platforms).
        std::vector<const sim::SlabPool *> pools;
        for (const Dtu *d : dtus) {
            const sim::SlabPool *p = &d->payloadPool();
            if (std::find(pools.begin(), pools.end(), p) ==
                pools.end())
                pools.push_back(p);
        }
        for (const sim::SlabPool *p : pools) {
            sim::SlabPool::Stats s = p->stats();
            if (s.allocated != s.live + s.free)
                v.fail("slab pool accounting broken: allocated %zu "
                       "!= live %zu + free %zu",
                       s.allocated, s.live, s.free);
            if (s.staleReleases != 0)
                v.fail("slab pool saw %llu stale releases "
                       "(double-release or use-after-free handle)",
                       static_cast<unsigned long long>(
                           s.staleReleases));
        }
    });

    inv.addCheck("dtu.doorbell_flush_law",
                 [dtus](sim::Invariants &v) {
                     for (const Dtu *d : dtus)
                         if (!d->doorbellFlushLawOk())
                             v.fail("%s: coalesced doorbell without a "
                                    "scheduled flush",
                                    d->name().c_str());
                 });

    inv.addCheck(
        "dtu.doorbell_drained",
        [dtus](sim::Invariants &v) {
            for (const Dtu *d : dtus)
                if (!d->doorbellIdle())
                    v.fail("%s: doorbell flush pending at quiescence",
                           d->name().c_str());
        },
        sim::Invariants::When::QuiescentOnly);

    inv.addCheck(
        "dtu.slab_no_leak",
        [dtus](sim::Invariants &v) {
            // At quiescence the only legitimate extent holders are
            // occupied receive slots (engines drained, no packets in
            // flight, retx empty): live extents must match exactly.
            std::vector<const sim::SlabPool *> pools;
            for (const Dtu *d : dtus) {
                const sim::SlabPool *p = &d->payloadPool();
                if (std::find(pools.begin(), pools.end(), p) ==
                    pools.end())
                    pools.push_back(p);
            }
            for (const sim::SlabPool *p : pools) {
                std::size_t held = 0;
                for (const Dtu *d : dtus) {
                    if (&d->payloadPool() != p)
                        continue;
                    for (EpId i = 0; i < kNumEps; i++) {
                        const Endpoint &e = d->ep(i);
                        if (e.kind != EpKind::Receive)
                            continue;
                        for (const RecvSlot &rs : e.recv.slots)
                            if (rs.occupied &&
                                rs.msg.payload.valid())
                                held++;
                    }
                }
                sim::SlabPool::Stats s = p->stats();
                if (s.live != held)
                    v.fail("slab pool leaked extents: %zu live but "
                           "only %zu held by receive slots",
                           s.live, held);
            }
        },
        sim::Invariants::When::QuiescentOnly);

    inv.addCheck(
        "dtu.engines_drained",
        [dtus](sim::Invariants &v) {
            for (const Dtu *d : dtus)
                if (!d->engineQuiescent())
                    v.fail("%s: tx/inflight/retx/cmd engine busy at "
                           "quiescence",
                           d->name().c_str());
        },
        sim::Invariants::When::QuiescentOnly);

    inv.addCheck(
        "dtu.credit_conservation",
        [dtus](sim::Invariants &v) {
            for (const Dtu *d : dtus) {
                for (EpId i = 0; i < kNumEps; i++) {
                    const Endpoint &e = d->ep(i);
                    if (e.kind != EpKind::Send || e.send.isReply ||
                        e.send.maxCredits == 0)
                        continue;
                    // Credits held by this channel's undelivered
                    // (unacknowledged) messages: occupied remote
                    // slots attributed by (srcTile, creditEp).
                    std::uint64_t held = 0;
                    std::uint64_t lost = 0;
                    for (const Dtu *r : dtus) {
                        for (EpId j = 0; j < kNumEps; j++) {
                            const Endpoint &re = r->ep(j);
                            if (re.kind != EpKind::Receive)
                                continue;
                            for (const RecvSlot &rs : re.recv.slots)
                                if (rs.occupied &&
                                    rs.msg.srcTile == d->tileId() &&
                                    rs.msg.creditEp == i)
                                    held++;
                        }
                        lost += r->lostCreditReturns(d->tileId(), i);
                    }
                    std::uint64_t avail = e.send.credits;
                    std::uint64_t slack =
                        d->timeoutCreditRestores(i);
                    std::uint64_t max = e.send.maxCredits;
                    if (avail + held > max + slack ||
                        avail + held + lost < max)
                        v.fail("%s: send ep %u credit imbalance: "
                               "avail %llu + held %llu vs max %llu "
                               "(lost %llu, timeout restores %llu)",
                               d->name().c_str(), i,
                               static_cast<unsigned long long>(avail),
                               static_cast<unsigned long long>(held),
                               static_cast<unsigned long long>(max),
                               static_cast<unsigned long long>(lost),
                               static_cast<unsigned long long>(
                                   slack));
                }
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

} // namespace m3v::dtu
