#include "dtu/memory_tile.h"

#include <utility>

#include "sim/log.h"

namespace m3v::dtu {

MemoryTile::MemoryTile(sim::EventQueue &eq, std::string name,
                       noc::Noc &noc, noc::TileId tile,
                       tile::DramParams params)
    : SimObject(eq, name), noc_(noc), tile_(tile),
      dram_(eq, name + ".dram", params)
{
    noc_.attachTile(tile, this);
}

PhysAddr
MemoryTile::alloc(std::size_t size, std::size_t align)
{
    PhysAddr base = (allocNext_ + align - 1) & ~(align - 1);
    if (base + size > dram_.capacity())
        sim::fatal("%s: out of memory (%zu requested)",
                   name().c_str(), size);
    allocNext_ = base + size;
    return base;
}

std::size_t
MemoryTile::available() const
{
    return dram_.capacity() - allocNext_;
}

bool
MemoryTile::acceptPacket(noc::Packet &pkt, sim::UniqueFunction<void()>)
{
    if (pkt.corrupted) {
        // Link CRC failure: drop; the requester retransmits.
        noc::Packet consumed = std::move(pkt);
        return true;
    }
    auto *wd = dynamic_cast<WireData *>(pkt.data.get());
    if (!wd)
        sim::panic("%s: foreign packet payload", name().c_str());
    noc::TileId src = pkt.src;
    auto owned = std::unique_ptr<WireData>(
        static_cast<WireData *>(pkt.data.release()));
    noc::Packet consumed = std::move(pkt);

    switch (owned->kind) {
      case WireKind::MemReadReq: {
        PhysAddr addr = owned->addr;
        std::size_t size = owned->size;
        std::uint64_t req_id = owned->reqId;
        std::uint64_t seq = owned->seq;
        dram_.access(addr, size,
                     [this, src, addr, size, req_id, seq]() {
            auto resp = std::make_unique<WireData>();
            resp->kind = WireKind::MemReadResp;
            resp->reqId = req_id;
            resp->seq = seq;
            resp->data = noc_.payloadPool().make(size);
            if (size > 0)
                dram_.read(addr, resp->data.mutableBytes().data(),
                           size);
            sendResp(src, std::move(resp));
        });
        break;
      }
      case WireKind::MemWriteReq: {
        PhysAddr addr = owned->addr;
        std::uint64_t req_id = owned->reqId;
        auto *raw = owned.release();
        dram_.access(addr, raw->data.size(),
                     [this, src, addr, req_id, raw]() {
            std::unique_ptr<WireData> req(raw);
            dram_.write(addr, req->data.data(), req->data.size());
            auto resp = std::make_unique<WireData>();
            resp->kind = WireKind::MemWriteAck;
            resp->reqId = req_id;
            resp->seq = req->seq;
            sendResp(src, std::move(resp));
        });
        break;
      }
      default:
        sim::panic("%s: unexpected packet kind %d", name().c_str(),
                   static_cast<int>(owned->kind));
    }
    return true;
}

void
MemoryTile::sendResp(noc::TileId dst, std::unique_ptr<WireData> wd)
{
    noc::Packet pkt;
    pkt.src = tile_;
    pkt.dst = dst;
    pkt.bytes = wd->wireBytes();
    pkt.data = std::move(wd);
    txQueue_.push_back(std::move(pkt));
    pumpTx();
}

void
MemoryTile::pumpTx()
{
    while (!txQueue_.empty()) {
        noc::Packet &head = txQueue_.front();
        if (!noc_.inject(head, [this]() { pumpTx(); }))
            return;
        txQueue_.pop_front();
    }
}

} // namespace m3v::dtu
