/**
 * @file
 * A memory tile: DDR4 DRAM behind a stripped-down DTU (Figure 5:
 * memory-tile DTUs omit all the dashed components). It serves
 * MemReadReq/MemWriteReq packets arriving over the NoC against its
 * DRAM, with DRAM queueing/latency/bandwidth modelled by tile::Dram.
 *
 * It also provides a simple region allocator that the controller uses
 * to hand out physical memory (PMP regions, receive buffers, file
 * system storage).
 */

#ifndef M3VSIM_DTU_MEMORY_TILE_H_
#define M3VSIM_DTU_MEMORY_TILE_H_

#include <memory>

#include "dtu/wire.h"
#include "noc/noc.h"
#include "sim/ring_deque.h"
#include "sim/sim_object.h"
#include "tile/dram.h"

namespace m3v::dtu {

/** A DRAM tile attached to the NoC. */
class MemoryTile : public sim::SimObject, public noc::HopTarget
{
  public:
    MemoryTile(sim::EventQueue &eq, std::string name, noc::Noc &noc,
               noc::TileId tile, tile::DramParams params = {});

    noc::TileId tileId() const { return tile_; }
    tile::Dram &dram() { return dram_; }

    /**
     * Allocate a region of physical memory (bump allocator; regions
     * are never freed — the controller partitions memory statically,
     * like the per-tile regions of paper section 4.3).
     */
    PhysAddr alloc(std::size_t size, std::size_t align = 64);

    /** Bytes still available for allocation. */
    std::size_t available() const;

    // noc::HopTarget
    bool acceptPacket(noc::Packet &pkt,
                      sim::UniqueFunction<void()> on_space) override;

  private:
    void sendResp(noc::TileId dst, std::unique_ptr<WireData> wd);
    void pumpTx();

    noc::Noc &noc_;
    noc::TileId tile_;
    tile::Dram dram_;
    PhysAddr allocNext_ = 0;
    sim::RingDeque<noc::Packet> txQueue_;
};

} // namespace m3v::dtu

#endif // M3VSIM_DTU_MEMORY_TILE_H_
