/**
 * @file
 * Messages exchanged between send and receive endpoints.
 */

#ifndef M3VSIM_DTU_MESSAGE_H_
#define M3VSIM_DTU_MESSAGE_H_

#include <cstdint>

#include "dtu/types.h"
#include "noc/packet.h"
#include "sim/slab_pool.h"

namespace m3v::dtu {

/** A message as stored in a receive-buffer slot. */
struct Message
{
    /** Channel label from the send endpoint. */
    std::uint64_t label = 0;

    /** Origin. */
    noc::TileId srcTile = 0;
    ActId srcAct = kInvalidAct;

    /**
     * Reply routing: the receive endpoint on the sender's tile that
     * accepts the (single) reply to this message, or kInvalidEp.
     */
    EpId replyEp = kInvalidEp;

    /** Send endpoint to return credits to on acknowledgement. */
    EpId creditEp = kInvalidEp;

    /** Whether the one-shot reply permission is still available. */
    bool canReply = false;

    /** Arrival sequence number (FIFO fetch order). */
    std::uint64_t seq = 0;

    /**
     * Call-correlation nonce: chosen by the sender per SEND command
     * (0 when unused) and echoed verbatim into the reply by REPLY.
     * Timed RPC callers use it to tell their own reply apart from
     * the late reply of an earlier, timed-out call on the same
     * receive endpoint. Fits in the 16-byte wire header alongside
     * @ref seq, so it does not change wireBytes().
     */
    std::uint64_t nonce = 0;

    /**
     * Tick at which the message was stored into the receive ring.
     * Hardware metadata like @ref seq (not wire payload): receivers
     * use it for deadline-aware admission control — the age of a
     * fetched request is the time it waited in the bounded ring.
     */
    std::uint64_t arrival = 0;

    /**
     * Payload bytes: a shared reference into the platform's payload
     * pool (sim/slab_pool.h). The sender's DTU allocates the extent
     * once; packets, retransmission buffers and the receive-ring slot
     * all share it. Reads convert implicitly to a byte vector, so
     * software treats it as plain bytes.
     */
    sim::PayloadRef payload;
};

} // namespace m3v::dtu

#endif // M3VSIM_DTU_MESSAGE_H_
