/**
 * @file
 * DTU endpoints: the hardware representation of communication
 * channels (paper section 2.1). A send endpoint targets exactly one
 * receive endpoint and carries credits; a receive endpoint owns a
 * slotted buffer; a memory endpoint grants access to a window of
 * tile-external memory. Every endpoint is tagged with the owning
 * activity (the vDTU enforces the tag, the plain DTU ignores it).
 */

#ifndef M3VSIM_DTU_EP_H_
#define M3VSIM_DTU_EP_H_

#include <cstdint>
#include <vector>

#include "dtu/message.h"
#include "dtu/types.h"
#include "noc/packet.h"

namespace m3v::dtu {

/** Endpoint kinds. */
enum class EpKind : std::uint8_t
{
    Invalid = 0,
    Send,
    Receive,
    Memory,
};

/** Send endpoint state. */
struct SendEp
{
    noc::TileId destTile = 0;
    EpId destEp = kInvalidEp;
    /** Destination activity (M3x: the DTU NACKs messages whose
     *  target is not the currently installed activity). */
    ActId destAct = kInvalidAct;
    /** Label delivered with every message (identifies the channel). */
    std::uint64_t label = 0;
    std::uint32_t credits = 0;
    std::uint32_t maxCredits = 0;
    std::size_t maxMsgSize = kPageSize;
    /** One-shot reply endpoint (created by the DTU for replies). */
    bool isReply = false;
};

/** One receive-buffer slot. */
struct RecvSlot
{
    bool occupied = false;
    bool unread = false;
    Message msg;
};

/** Receive endpoint state. */
struct RecvEp
{
    std::size_t slotSize = 256;
    std::vector<RecvSlot> slots;

    explicit RecvEp(std::size_t slot_size = 256,
                    std::size_t num_slots = 8)
        : slotSize(slot_size), slots(num_slots)
    {
    }

    /** Index of a free slot or -1. */
    int
    freeSlot() const
    {
        for (std::size_t i = 0; i < slots.size(); i++)
            if (!slots[i].occupied)
                return static_cast<int>(i);
        return -1;
    }

    /** Index of the oldest unread slot or -1. */
    int
    firstUnread() const
    {
        // Slots are reused round-robin via arrivalSeq ordering.
        int best = -1;
        std::uint64_t best_seq = ~0ULL;
        for (std::size_t i = 0; i < slots.size(); i++) {
            if (slots[i].unread && slots[i].msg.seq < best_seq) {
                best = static_cast<int>(i);
                best_seq = slots[i].msg.seq;
            }
        }
        return best;
    }

    std::size_t
    unreadCount() const
    {
        std::size_t n = 0;
        for (const auto &s : slots)
            n += s.unread ? 1 : 0;
        return n;
    }
};

/** Memory endpoint state (also used for PMP). */
struct MemEp
{
    noc::TileId destTile = 0;
    PhysAddr addr = 0;
    std::size_t size = 0;
    std::uint8_t perms = 0;
};

/** An endpoint register: kind + owner + kind-specific state. */
struct Endpoint
{
    EpKind kind = EpKind::Invalid;
    /** Owning activity (enforced by the vDTU only). */
    ActId act = kInvalidAct;

    SendEp send;
    RecvEp recv;
    MemEp mem;

    static Endpoint
    makeSend(ActId act, noc::TileId dest_tile, EpId dest_ep,
             std::uint64_t label, std::uint32_t credits,
             std::size_t max_msg = 512)
    {
        Endpoint ep;
        ep.kind = EpKind::Send;
        ep.act = act;
        ep.send.destTile = dest_tile;
        ep.send.destEp = dest_ep;
        ep.send.label = label;
        ep.send.credits = credits;
        ep.send.maxCredits = credits;
        ep.send.maxMsgSize = max_msg;
        return ep;
    }

    static Endpoint
    makeRecv(ActId act, std::size_t slot_size, std::size_t slots)
    {
        Endpoint ep;
        ep.kind = EpKind::Receive;
        ep.act = act;
        ep.recv = RecvEp(slot_size, slots);
        return ep;
    }

    static Endpoint
    makeMem(ActId act, noc::TileId dest_tile, PhysAddr addr,
            std::size_t size, std::uint8_t perms)
    {
        Endpoint ep;
        ep.kind = EpKind::Memory;
        ep.act = act;
        ep.mem.destTile = dest_tile;
        ep.mem.addr = addr;
        ep.mem.size = size;
        ep.mem.perms = perms;
        return ep;
    }
};

} // namespace m3v::dtu

#endif // M3VSIM_DTU_EP_H_
