/**
 * @file
 * The DTU wire protocol: every NoC packet a DTU sends or receives.
 *
 * A single struct with a kind tag keeps the simulator simple; only the
 * fields relevant to a kind are populated. Sizes on the wire are
 * derived from the semantic content so NoC timing stays realistic.
 */

#ifndef M3VSIM_DTU_WIRE_H_
#define M3VSIM_DTU_WIRE_H_

#include <cstdint>
#include <new>
#include <vector>

#include "dtu/ep.h"
#include "dtu/message.h"
#include "dtu/types.h"
#include "noc/packet.h"
#include "sim/slab_pool.h"

namespace m3v::dtu {

/** External-interface operations (controller -> DTU). */
enum class ExtOp : std::uint8_t
{
    SetEp,    ///< install an endpoint
    InvEp,    ///< invalidate an endpoint
    ReadEps,  ///< read a range of endpoints (M3x state save)
    WriteEps, ///< write a range of endpoints (M3x state restore)
};

/** All DTU-level NoC packet kinds. */
enum class WireKind : std::uint8_t
{
    MsgXfer,      ///< message transfer (send/reply)
    MsgDelivered, ///< receiver stored the message (flow-control ack)
    MsgNack,      ///< receiver could not store it (error code inside)
    CreditReturn, ///< receiver acknowledged: return one credit
    CreditAck,    ///< reliable mode: CreditReturn acknowledgement
    MemReadReq,   ///< DMA read request to a memory/remote tile
    MemReadResp,  ///< data response
    MemWriteReq,  ///< DMA write request (carries data)
    MemWriteAck,  ///< write completion
    ExtReq,       ///< controller external request
    ExtResp,      ///< external response
};

/** The DTU packet payload carried opaquely through the NoC. */
struct WireData : noc::PacketData
{
    /**
     * WireData headers are pooled: the message path creates and
     * destroys one per packet in steady state, and a global freelist
     * (wire.cc) recycles them so the hot path performs no heap
     * allocation. Thread-safe (one mutex) because packets are created
     * and destroyed on different lanes.
     */
    static void *operator new(std::size_t sz);
    static void operator delete(void *p, std::size_t sz) noexcept;

    /** Pooled headers currently on the freelist (tests). */
    static std::size_t pooledFree();

    /**
     * Fault injection flipped this packet's CRC: damage the payload
     * bytes through a copy-on-write view, so a retransmission buffer
     * sharing the extent keeps the clean original (wire.cc).
     */
    void corruptPayload() override;

    WireKind kind = WireKind::MsgXfer;

    /** Correlates requests and responses. */
    std::uint64_t reqId = 0;

    /**
     * Wire-level sequence number, stamped per sending DTU in reliable
     * mode (0 otherwise). Retransmissions reuse the original seq; the
     * receiver keeps a per-source window of recently seen seqs to
     * suppress duplicates. Fits in the 16-byte header, so it does not
     * change wireBytes().
     */
    std::uint64_t seq = 0;

    // --- MsgXfer / MsgNack ---
    EpId dstEp = kInvalidEp;
    /** Target activity tag from the send EP (kInvalidAct: none). */
    ActId dstAct = kInvalidAct;
    Message msg;
    /** True for replies: no credits are consumed at the receiver. */
    bool isReply = false;
    Error error = Error::None;

    // --- CreditReturn ---
    EpId creditEp = kInvalidEp;

    // --- Mem* ---
    PhysAddr addr = 0;
    std::size_t size = 0;
    /** DMA payload (MemReadResp/MemWriteReq): pooled like msg. */
    sim::PayloadRef data;

    // --- Ext* ---
    ExtOp extOp = ExtOp::SetEp;
    EpId epStart = 0;
    std::uint16_t epCount = 0;
    std::vector<Endpoint> eps;

    /** Approximate wire size for NoC timing. */
    std::size_t
    wireBytes() const
    {
        switch (kind) {
          case WireKind::MsgXfer:
            return 32 + msg.payload.size();
          case WireKind::MemReadResp:
          case WireKind::MemWriteReq:
            return 24 + data.size();
          case WireKind::ExtReq:
          case WireKind::ExtResp:
            return 24 + eps.size() * 64;
          default:
            return 16;
        }
    }
};

} // namespace m3v::dtu

#endif // M3VSIM_DTU_WIRE_H_
