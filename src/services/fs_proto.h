/**
 * @file
 * The m3fs client protocol: POSIX-like operations carried as DTU
 * messages. Data never moves through these messages — NextIn/NextOut
 * grant the client direct DTU access to a whole extent (the key to
 * Figure 7's throughput): the file system derives a memory capability
 * for the extent and activates it into the client's file endpoint.
 */

#ifndef M3VSIM_SERVICES_FS_PROTO_H_
#define M3VSIM_SERVICES_FS_PROTO_H_

#include <cstdint>

#include "dtu/types.h"

namespace m3v::services {

/** Open flags. */
enum FsOpenFlags : std::uint32_t
{
    kOpenR = 1,
    kOpenW = 2,
    kOpenCreate = 4,
    kOpenTrunc = 8,
};

/** Request message. */
struct FsReq
{
    enum class Op : std::uint32_t
    {
        Open,
        NextIn,  ///< grant access to the next extent for reading
        NextOut, ///< allocate + grant the next extent for writing
        Commit,  ///< commit bytes written into the current extent
        Close,
        Stat,
        Readdir, ///< batch of entries per call (arg = start index)
        Unlink,
        Mkdir,
        ReadAt,  ///< inline data read (M3x RPC file protocol only)
        WriteAt, ///< inline data write (M3x RPC file protocol only)
    };

    Op op = Op::Open;
    std::uint32_t fd = 0;
    std::uint32_t flags = 0;
    std::uint64_t arg = 0;
    /** ReadAt/WriteAt: transfer size in bytes. */
    std::uint32_t size = 0;
    char path[64] = {};
};

/** Response message. */
struct FsResp
{
    dtu::Error err = dtu::Error::None;
    std::uint32_t fd = 0;
    std::uint64_t size = 0;
    /** File offset of the granted extent window. */
    std::uint64_t extOff = 0;
    /** Length of the granted extent window (0 = EOF). */
    std::uint64_t extLen = 0;
    std::uint32_t ino = 0;
    std::uint8_t isDir = 0;
    std::uint8_t more = 0;
    /** Readdir: number of names packed into name[]. */
    std::uint8_t count = 0;
    /** Stat/open name echo or NUL-separated readdir batch. */
    char name[85] = {};
};

/** Entries returned per Readdir request. */
constexpr unsigned kReaddirBatch = 8;

} // namespace m3v::services

#endif // M3VSIM_SERVICES_FS_PROTO_H_
