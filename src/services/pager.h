/**
 * @file
 * The pager service (paper section 4.3): an OS service activity that
 * manages other activities' address-space layouts. Clients ask it to
 * back fresh virtual ranges; the pager picks physical pages and asks
 * the controller (MapFor syscall) to forward the mapping to the
 * responsible TileMux as a sidecall — the controller itself never
 * touches page tables.
 */

#ifndef M3VSIM_SERVICES_PAGER_H_
#define M3VSIM_SERVICES_PAGER_H_

#include <map>

#include "os/system.h"
#include "sim/overload.h"

namespace m3v::services {

/** Pager request. */
struct PagerReq
{
    enum class Op : std::uint32_t
    {
        AllocMap, ///< back [va, va + pages) with fresh memory
    };

    Op op = Op::AllocMap;
    std::uint32_t pages = 0;
    std::uint64_t va = 0;
};

/** Pager response. */
struct PagerResp
{
    dtu::Error err = dtu::Error::None;
};

/** The pager service. */
class PagerService
{
  public:
    /** Boot wiring of one client. */
    struct Client
    {
        std::uint64_t id = 0;
        dtu::EpId sgateEp = dtu::kInvalidEp;
        dtu::EpId replyEp = dtu::kInvalidEp;
    };

    PagerService(os::System &sys, unsigned tile_idx,
                 std::size_t footprint = 6 * 1024,
                 sim::AdmissionParams admission = {},
                 std::size_t req_slots = 8);

    os::System::App *app() { return app_; }

    Client addClient(os::System::App *client);
    void startService();

    std::uint64_t requests() const { return requests_; }
    std::uint64_t pagesMapped() const { return pagesMapped_; }

    /** Admission decision state (shed/admit counters). */
    const sim::Admission &admission() const { return admission_; }

  private:
    struct ClientState
    {
        os::CapSel actCap = os::kInvalidSel;
        unsigned tileIdx = 0;
    };

    sim::Task body(os::MuxEnv &env);

    os::System &sys_;
    os::System::App *app_;
    os::System::RgateHandle rgate_;
    std::map<std::uint64_t, ClientState> clients_;
    std::uint64_t nextClient_ = 1;
    std::uint64_t requests_ = 0;
    std::uint64_t pagesMapped_ = 0;
    sim::Admission admission_;
};

/**
 * Client helper: allocate @p pages of virtual address space in the
 * caller's activity and have the pager back and map them.
 */
sim::Task pagerAllocMap(os::MuxEnv &env, const PagerService::Client &c,
                        std::size_t pages, dtu::VirtAddr *va,
                        dtu::Error *err);

} // namespace m3v::services

#endif // M3VSIM_SERVICES_PAGER_H_
