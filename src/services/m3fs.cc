#include "services/m3fs.h"

#include <cstring>
#include <utility>

#include "sim/log.h"

namespace m3v::services {

using dtu::Error;
using os::Bytes;
using os::SyscallReq;
using os::SyscallResp;

M3fs::M3fs(os::System &sys, unsigned tile_idx, M3fsParams params)
    : sys_(sys), params_(params), admission_(params.admission)
{
    app_ = sys.createApp(tile_idx, "m3fs", params.footprint);
    storage_ = sys.makeMgate(app_, params.storageBytes,
                             dtu::kPermRW);
    rgate_ = sys.makeRgate(app_, params.slotSize, params.slots);
    img_ = std::make_unique<FsImage>(
        params.storageBytes / dtu::kPageSize, dtu::kPageSize,
        params.maxExtentBlocks);
}

M3fs::Client
M3fs::addClient(os::System::App *client)
{
    Client c;
    c.id = nextClient_++;
    auto sg = sys_.makeSgate(client, app_, rgate_.ep, c.id, 2);
    c.sgateEp = sg.ep;
    auto rep = sys_.makeRgate(client, 128, 2);
    c.replyEp = rep.ep;
    for (unsigned i = 0; i < kFileEpPool; i++)
        c.fileEps.push_back(sys_.allocEp(client->tileIdx));

    ClientState cs;
    cs.actCap = sys_.grantActCap(app_, client);
    clients_.emplace(c.id, std::move(cs));
    return c;
}

void
M3fs::startService()
{
    sys_.start(app_, [this](os::MuxEnv &env) -> sim::Task {
        co_await body(env);
    });
}

sim::Task
M3fs::body(os::MuxEnv &env)
{
    for (;;) {
        int slot = -1;
        co_await env.recvOn(rgate_.ep, &slot);
        dtu::Message msg = env.msgAt(rgate_.ep, slot);
        requests_++;

        auto it = clients_.find(msg.label);
        if (it == clients_.end())
            sim::panic("m3fs: request from unknown client %llu",
                       static_cast<unsigned long long>(msg.label));

        // Admission control: the fixed-slot ring is the (bounded)
        // request queue; shed aged or over-occupancy requests with a
        // cheap typed rejection instead of executing them.
        if (admission_.enabled()) {
            std::size_t occ =
                env.dtu().unread(env.actId(), rgate_.ep) + 1;
            if (!admission_.admit(env.dtu().now(), msg.arrival,
                                  occ)) {
                co_await env.thread().compute(
                    admission_.params().shedCost);
                FsResp shed;
                shed.err = Error::Overloaded;
                Error serr = Error::None;
                co_await env.reply(rgate_.ep, slot,
                                   os::podBytes(shed), &serr);
                continue;
            }
        }

        FsReq req = os::podFrom<FsReq>(msg.payload);
        FsResp resp;
        co_await env.thread().compute(params_.opBaseCost);
        co_await handle(env, it->second, req, &resp);
        co_await env.thread().compute(img_->takeOpCost());

        Error rerr = Error::None;
        co_await env.reply(rgate_.ep, slot, os::podBytes(resp),
                           &rerr);
        if (rerr != Error::None)
            sim::warn("m3fs: reply failed: %s", dtu::errorName(rerr));
    }
}

sim::Task
M3fs::grantExtent(os::MuxEnv &env, ClientState &cs, OpenFile &file,
                  const Extent &ext, std::uint8_t perms, Error *err)
{
    // Derive a capability for the extent's byte range...
    SyscallReq sc;
    SyscallResp sr;
    sc.op = SyscallReq::Op::DeriveMem;
    sc.arg0 = storage_.sel;
    sc.arg1 = static_cast<std::uint64_t>(ext.start) *
              img_->blockSize();
    sc.arg2 = static_cast<std::uint64_t>(ext.count) *
              img_->blockSize();
    sc.arg3 = perms;
    co_await env.syscall(sc, &sr);
    if (sr.err != Error::None) {
        *err = sr.err;
        co_return;
    }
    auto extent_cap = static_cast<os::CapSel>(sr.val);

    // ...and activate it into the client's file endpoint.
    sc = SyscallReq{};
    sc.op = SyscallReq::Op::ActivateFor;
    sc.arg0 = cs.actCap;
    sc.arg1 = file.fileEp;
    sc.arg2 = extent_cap;
    co_await env.syscall(sc, &sr);
    if (sr.err != Error::None) {
        *err = sr.err;
        co_return;
    }
    file.grantedCaps.push_back(extent_cap);
    *err = Error::None;
}

sim::Task
M3fs::zeroExtent(os::MuxEnv &env, const Extent &ext)
{
    // Clear freshly allocated blocks through our own memory gate,
    // one page-sized DTU write at a time (commands are single-page,
    // section 3.6). This is what makes writes slower than reads.
    Bytes zeros(img_->blockSize(), 0);
    for (std::uint32_t b = 0; b < ext.count; b++) {
        Error werr = Error::None;
        co_await env.writeMem(
            storage_.ep,
            static_cast<std::uint64_t>(ext.start + b) *
                img_->blockSize(),
            zeros, &werr);
        if (werr != Error::None)
            sim::panic("m3fs: zeroing failed: %s",
                       dtu::errorName(werr));
    }
}

sim::Task
M3fs::handle(os::MuxEnv &env, ClientState &cs, FsReq req,
             FsResp *resp)
{
    req.path[sizeof(req.path) - 1] = '\0';
    std::string path(req.path);

    switch (req.op) {
      case FsReq::Op::Open: {
        Ino ino = img_->lookup(path);
        if (ino == kNoIno && (req.flags & kOpenCreate))
            ino = img_->create(path, false);
        if (ino == kNoIno) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        Inode *node = img_->inode(ino);
        if (node->dir) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        if (req.flags & kOpenTrunc)
            img_->truncate(ino);
        OpenFile f;
        f.ino = ino;
        f.write = (req.flags & kOpenW) != 0;
        f.fileEp = static_cast<dtu::EpId>(req.arg);
        std::uint32_t fd = cs.nextFd++;
        cs.files.emplace(fd, std::move(f));
        resp->fd = fd;
        resp->size = node->size;
        resp->ino = ino;
        co_return;
      }

      case FsReq::Op::NextIn: {
        // arg = requested file offset: find the extent containing it
        // (supports sequential and random access).
        auto it = cs.files.find(req.fd);
        if (it == cs.files.end()) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        OpenFile &f = it->second;
        Inode *node = img_->inode(f.ino);
        std::uint64_t want = req.arg;
        if (want >= node->size) {
            resp->extLen = 0; // EOF
            co_return;
        }
        std::uint64_t off = 0;
        const Extent *ext = nullptr;
        for (const Extent &e : node->extents) {
            std::uint64_t bytes =
                static_cast<std::uint64_t>(e.count) *
                img_->blockSize();
            if (want < off + bytes) {
                ext = &e;
                break;
            }
            off += bytes;
        }
        if (!ext) {
            resp->extLen = 0;
            co_return;
        }
        Error gerr = Error::None;
        co_await grantExtent(env, cs, f, *ext, dtu::kPermR, &gerr);
        if (gerr != Error::None) {
            resp->err = gerr;
            co_return;
        }
        std::uint64_t ext_bytes =
            static_cast<std::uint64_t>(ext->count) *
            img_->blockSize();
        resp->extOff = off;
        // The last extent may extend past the file size.
        resp->extLen =
            std::min<std::uint64_t>(ext_bytes, node->size - off);
        co_return;
      }

      case FsReq::Op::NextOut: {
        auto it = cs.files.find(req.fd);
        if (it == cs.files.end() || !it->second.write) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        OpenFile &f = it->second;
        Extent ext;
        auto hint = static_cast<std::uint32_t>(req.arg);
        if (!img_->appendExtent(f.ino, &ext,
                                hint ? hint : ~0u)) {
            resp->err = Error::OutOfBounds; // no space
            co_return;
        }
        co_await zeroExtent(env, ext);
        Error gerr = Error::None;
        co_await grantExtent(env, cs, f, ext, dtu::kPermRW, &gerr);
        if (gerr != Error::None) {
            resp->err = gerr;
            co_return;
        }
        resp->extOff = f.winOff;
        resp->extLen =
            static_cast<std::uint64_t>(ext.count) * img_->blockSize();
        f.winOff += resp->extLen;
        f.extIdx++;
        co_return;
      }

      case FsReq::Op::Commit: {
        auto it = cs.files.find(req.fd);
        if (it == cs.files.end()) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        OpenFile &f = it->second;
        Inode *node = img_->inode(f.ino);
        // arg = file offset after the last written byte.
        node->size = std::max(node->size, req.arg);
        resp->size = node->size;
        co_return;
      }

      case FsReq::Op::Close: {
        auto it = cs.files.find(req.fd);
        if (it == cs.files.end()) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        // Revoke every extent capability granted for this fd.
        for (os::CapSel sel : it->second.grantedCaps) {
            SyscallReq sc;
            SyscallResp sr;
            sc.op = SyscallReq::Op::Revoke;
            sc.arg0 = sel;
            co_await env.syscall(sc, &sr);
        }
        cs.files.erase(it);
        co_return;
      }

      case FsReq::Op::Stat: {
        Ino ino = img_->lookup(path);
        if (ino == kNoIno) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        Inode *node = img_->inode(ino);
        resp->size = node->size;
        resp->ino = ino;
        resp->isDir = node->dir ? 1 : 0;
        co_return;
      }

      case FsReq::Op::Readdir: {
        Ino dir = img_->lookup(path);
        if (dir == kNoIno) {
            resp->err = Error::InvalidEp;
            co_return;
        }
        // Pack up to kReaddirBatch NUL-separated names (getdents
        // style: one RPC covers many entries).
        std::size_t off = 0;
        std::uint64_t idx = req.arg;
        resp->count = 0;
        while (resp->count < kReaddirBatch) {
            std::string name;
            Ino child = kNoIno;
            if (!img_->entryAt(dir, idx, &name, &child))
                break;
            if (off + name.size() + 1 > sizeof(resp->name))
                break;
            std::memcpy(resp->name + off, name.c_str(),
                        name.size() + 1);
            off += name.size() + 1;
            resp->count++;
            idx++;
        }
        resp->more = idx < img_->entryCount(dir) ? 1 : 0;
        co_return;
      }

      case FsReq::Op::Unlink:
        resp->err =
            img_->unlink(path) ? Error::None : Error::InvalidEp;
        co_return;

      case FsReq::Op::Mkdir:
        resp->err = img_->create(path, true) != kNoIno
                        ? Error::None
                        : Error::InvalidEp;
        co_return;

      case FsReq::Op::ReadAt:
      case FsReq::Op::WriteAt:
        // m3fs moves data through extent capabilities, never inline
        // (these ops exist for the M3x RPC file protocol).
        resp->err = Error::InvalidEp;
        co_return;
    }
    resp->err = Error::InvalidEp;
    co_return;
}

} // namespace m3v::services
