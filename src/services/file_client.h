/**
 * @file
 * Client-side file sessions over the m3fs protocol — the GenericFile
 * equivalent of the M3v libraries. A session holds an extent window:
 * after one NextIn/NextOut RPC, all reads/writes within the window go
 * straight through the DTU memory endpoint without involving the
 * file system again (paper section 6.3).
 */

#ifndef M3VSIM_SERVICES_FILE_CLIENT_H_
#define M3VSIM_SERVICES_FILE_CLIENT_H_

#include <string>
#include <vector>

#include "os/env.h"
#include "services/fs_proto.h"
#include "services/m3fs.h"
#include "sim/overload.h"

namespace m3v::services {

/** One open file on a client. */
class FileSession
{
  public:
    /**
     * @param env    the client's environment
     * @param client the boot wiring to the FS service
     * @param ep_idx which EP of the client's file-EP pool to bind
     * @param guard  optional per-destination overload discipline
     *               (retry budget, circuit breaker, jittered backoff,
     *               reply deadline). Null keeps the legacy fixed
     *               timeout-retry policy and its exact timing.
     */
    FileSession(os::Env &env, const M3fs::Client &client,
                unsigned ep_idx = 0,
                sim::OverloadGuard *guard = nullptr);

    bool isOpen() const { return fd_ != 0; }
    std::uint64_t size() const { return size_; }
    std::uint64_t offset() const { return off_; }

    /** Open @p path with FsOpenFlags. */
    sim::Task open(const std::string &path, std::uint32_t flags,
                   dtu::Error *err);

    /** Set the file offset for the next read. */
    void seek(std::uint64_t off) { off_ = off; }

    /**
     * Read up to @p want bytes (at most one page per call) at the
     * current offset. Empty result at EOF.
     */
    sim::Task read(std::size_t want, os::Bytes *out, dtu::Error *err);

    /** Append @p data (at most one page per call). */
    sim::Task write(os::Bytes data, dtu::Error *err);

    /** Commit the size and release extent capabilities. */
    sim::Task close(dtu::Error *err);

    //
    // Path operations (stateless).
    //

    sim::Task stat(const std::string &path, FsResp *out);

    /** Fetch a batch of up to kReaddirBatch entries from @p idx. */
    sim::Task readdir(const std::string &path, std::uint64_t idx,
                      FsResp *out);

    /** Unpack a readdir response's names. */
    static std::vector<std::string> readdirNames(const FsResp &resp);
    sim::Task mkdir(const std::string &path, dtu::Error *err);
    sim::Task unlink(const std::string &path, dtu::Error *err);

    /** Number of NextIn/NextOut RPCs performed (extent switches). */
    std::uint64_t extentRpcs() const { return extentRpcs_; }

    /** RPCs re-sent after a timeout or server shed. */
    std::uint64_t rpcRetries() const { return rpcRetries_; }

    /** Server-side Error::Overloaded rejections observed. */
    std::uint64_t rpcOverloaded() const { return rpcOverloaded_; }

  private:
    /**
     * Issue one m3fs RPC. A transport timeout (the reliable DTU layer
     * exhausted its retransmissions) is retried with exponential
     * backoff for idempotent operations; otherwise — and for any
     * other transport error — the error is surfaced in resp->err so
     * callers see a typed failure instead of a panic.
     */
    sim::Task rpc(FsReq req, FsResp *resp);

    os::Env &env_;
    dtu::EpId sgate_;
    dtu::EpId reply_;
    dtu::EpId fileEp_;
    sim::OverloadGuard *guard_;

    std::uint32_t fd_ = 0;
    bool write_ = false;
    std::uint64_t size_ = 0;
    std::uint64_t off_ = 0;
    /** Current extent window [winOff_, winOff_+winLen_). */
    std::uint64_t winOff_ = 0;
    std::uint64_t winLen_ = 0;
    bool winValid_ = false;
    std::uint64_t extentRpcs_ = 0;
    std::uint64_t rpcRetries_ = 0;
    std::uint64_t rpcOverloaded_ = 0;
    /** Next NextOut allocation hint in blocks. */
    std::uint32_t nextHint_ = 4;
};

} // namespace m3v::services

#endif // M3VSIM_SERVICES_FILE_CLIENT_H_
