#include "services/file_client.h"

#include <cstring>

#include "sim/log.h"

namespace m3v::services {

using dtu::Error;
using os::Bytes;

namespace {

/** Client-side retry policy for timed-out RPCs. */
constexpr unsigned kRpcAttempts = 4;
constexpr sim::Cycles kRpcBackoff = 4096;

/**
 * Operations the server may execute twice without changing the
 * client-visible outcome, so a timed-out RPC (where the request or
 * its reply may have been lost *after* the server acted) can simply
 * be re-sent. NextOut allocates a fresh extent and Mkdir/Unlink
 * mutate the namespace, so their timeouts surface to the caller.
 */
bool
isIdempotent(FsReq::Op op)
{
    switch (op) {
      case FsReq::Op::Open:
      case FsReq::Op::NextIn:
      case FsReq::Op::Commit:
      case FsReq::Op::Close:
      case FsReq::Op::Stat:
      case FsReq::Op::Readdir:
        return true;
      default:
        return false;
    }
}

} // namespace

FileSession::FileSession(os::Env &env, const M3fs::Client &client,
                         unsigned ep_idx, sim::OverloadGuard *guard)
    : env_(env), sgate_(client.sgateEp), reply_(client.replyEp),
      fileEp_(client.fileEps.at(ep_idx)), guard_(guard)
{
}

sim::Task
FileSession::rpc(FsReq req, FsResp *resp)
{
    sim::Cycles backoff = kRpcBackoff;
    for (unsigned attempt = 0;; attempt++) {
        bool sent = false;
        Error err = Error::Overloaded;
        if (guard_ == nullptr ||
            guard_->breaker().allow(env_.dtu().now())) {
            sent = true;
            Bytes respb;
            err = Error::Aborted;
            sim::Tick deadline =
                guard_ ? guard_->replyDeadline() : 0;
            if (deadline == 0)
                co_await env_.call(sgate_, reply_,
                                   os::podBytes(req), &respb, &err);
            else
                co_await env_.callTimed(sgate_, reply_,
                                        os::podBytes(req), &respb,
                                        &err, deadline);
            if (err == Error::None) {
                *resp = os::podFrom<FsResp>(respb);
                if (resp->err != Error::Overloaded) {
                    // A delivered outcome — success or a typed
                    // server error — proves the channel healthy.
                    if (guard_) {
                        guard_->breaker().recordSuccess(
                            env_.dtu().now());
                        guard_->budget().recordSuccess();
                        guard_->backoff().reset();
                    }
                    co_return;
                }
                // Server shed before executing: always retryable,
                // but only within the budget.
                rpcOverloaded_++;
                err = Error::Overloaded;
            }
        }
        // err: Timeout, Overloaded, or another transport failure.
        if (sent && guard_)
            guard_->breaker().recordFailure(env_.dtu().now());
        bool retryable =
            err == Error::Overloaded ||
            (err == Error::Timeout && isIdempotent(req.op));
        // Breaker-denied attempts (sent == false) never reached the
        // wire: they retry within the attempt cap without spending a
        // retry token, which is reserved for actual retry traffic.
        if (!retryable || attempt + 1 >= kRpcAttempts ||
            (sent && guard_ && !guard_->budget().tryAcquire())) {
            *resp = FsResp{};
            resp->err = err;
            co_return;
        }
        rpcRetries_++;
        co_await env_.thread().compute(
            guard_ ? guard_->backoff().next() : backoff);
        backoff *= 2;
    }
}

sim::Task
FileSession::open(const std::string &path, std::uint32_t flags,
                  Error *err)
{
    FsReq req;
    req.op = FsReq::Op::Open;
    req.flags = flags;
    req.arg = fileEp_;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    FsResp resp;
    co_await rpc(req, &resp);
    if (resp.err == Error::None) {
        fd_ = resp.fd;
        size_ = resp.size;
        write_ = (flags & kOpenW) != 0;
        off_ = 0;
        winValid_ = false;
    }
    *err = resp.err;
}

sim::Task
FileSession::read(std::size_t want, Bytes *out, Error *err)
{
    out->clear();
    if (off_ >= size_) {
        *err = Error::None; // EOF
        co_return;
    }
    if (!winValid_ || off_ < winOff_ || off_ >= winOff_ + winLen_) {
        FsReq req;
        req.op = FsReq::Op::NextIn;
        req.fd = fd_;
        req.arg = off_;
        FsResp resp;
        extentRpcs_++;
        co_await rpc(req, &resp);
        if (resp.err != Error::None) {
            *err = resp.err;
            co_return;
        }
        if (resp.extLen == 0) {
            *err = Error::None; // EOF
            co_return;
        }
        winOff_ = resp.extOff;
        winLen_ = resp.extLen;
        winValid_ = true;
    }
    std::size_t in_window = static_cast<std::size_t>(
        winOff_ + winLen_ - off_);
    std::size_t n = std::min(want, in_window);
    n = std::min(n, static_cast<std::size_t>(dtu::kPageSize));
    co_await env_.readMem(fileEp_, off_ - winOff_, n, out, err);
    if (*err == Error::None)
        off_ += n;
}

sim::Task
FileSession::write(Bytes data, Error *err)
{
    if (!write_) {
        *err = Error::PmpFault;
        co_return;
    }
    if (data.size() > dtu::kPageSize)
        sim::panic("FileSession: write larger than a page");
    if (!winValid_ || off_ < winOff_ ||
        off_ + data.size() > winOff_ + winLen_) {
        FsReq req;
        req.op = FsReq::Op::NextOut;
        req.fd = fd_;
        // Growing allocation hint (like LevelDB-style doubling):
        // small files stay small, streams converge to full extents.
        req.arg = nextHint_;
        nextHint_ = std::min<std::uint32_t>(nextHint_ * 4, 64);
        FsResp resp;
        extentRpcs_++;
        co_await rpc(req, &resp);
        if (resp.err != Error::None) {
            *err = resp.err;
            co_return;
        }
        winOff_ = resp.extOff;
        winLen_ = resp.extLen;
        winValid_ = true;
        off_ = winOff_;
    }
    std::size_t n = data.size();
    co_await env_.writeMem(fileEp_, off_ - winOff_, std::move(data),
                           err);
    if (*err == Error::None) {
        off_ += n;
        size_ = std::max(size_, off_);
    }
}

sim::Task
FileSession::close(Error *err)
{
    if (fd_ == 0) {
        *err = Error::None;
        co_return;
    }
    if (write_) {
        FsReq creq;
        creq.op = FsReq::Op::Commit;
        creq.fd = fd_;
        creq.arg = size_;
        FsResp cresp;
        co_await rpc(creq, &cresp);
    }
    FsReq req;
    req.op = FsReq::Op::Close;
    req.fd = fd_;
    FsResp resp;
    co_await rpc(req, &resp);
    *err = resp.err;
    fd_ = 0;
    winValid_ = false;
}

sim::Task
FileSession::stat(const std::string &path, FsResp *out)
{
    FsReq req;
    req.op = FsReq::Op::Stat;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    co_await rpc(req, out);
}

sim::Task
FileSession::readdir(const std::string &path, std::uint64_t idx,
                     FsResp *out)
{
    FsReq req;
    req.op = FsReq::Op::Readdir;
    req.arg = idx;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    co_await rpc(req, out);
}

std::vector<std::string>
FileSession::readdirNames(const FsResp &resp)
{
    std::vector<std::string> names;
    std::size_t off = 0;
    for (unsigned i = 0; i < resp.count; i++) {
        const char *base = resp.name + off;
        std::size_t len = std::strlen(base);
        names.emplace_back(base, len);
        off += len + 1;
    }
    return names;
}

sim::Task
FileSession::mkdir(const std::string &path, Error *err)
{
    FsReq req;
    req.op = FsReq::Op::Mkdir;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    FsResp resp;
    co_await rpc(req, &resp);
    *err = resp.err;
}

sim::Task
FileSession::unlink(const std::string &path, Error *err)
{
    FsReq req;
    req.op = FsReq::Op::Unlink;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    FsResp resp;
    co_await rpc(req, &resp);
    *err = resp.err;
}

} // namespace m3v::services
