#include "services/nic.h"

#include <algorithm>
#include <cstring>

#include "sim/log.h"

namespace m3v::services {

os::Bytes
makeFrame(const UdpFrameHdr &hdr, const os::Bytes &payload)
{
    UdpFrameHdr h = hdr;
    h.len = static_cast<std::uint16_t>(payload.size());
    os::Bytes frame(sizeof(UdpFrameHdr) + payload.size());
    std::memcpy(frame.data(), &h, sizeof(h));
    std::memcpy(frame.data() + sizeof(h), payload.data(),
                payload.size());
    return frame;
}

UdpFrameHdr
parseFrame(const os::Bytes &frame, os::Bytes *payload)
{
    if (frame.size() < sizeof(UdpFrameHdr))
        sim::panic("parseFrame: truncated frame (%zu bytes)",
                   frame.size());
    UdpFrameHdr hdr;
    std::memcpy(&hdr, frame.data(), sizeof(hdr));
    if (payload) {
        payload->assign(frame.begin() +
                            static_cast<long>(sizeof(hdr)),
                        frame.end());
    }
    return hdr;
}

Nic::Nic(sim::EventQueue &eq, std::string name, NicParams params)
    : SimObject(eq, std::move(name)), params_(params)
{
    tx_ = statCounter("tx_frames");
    rx_ = statCounter("rx_frames");
}

sim::Tick
Nic::serTime(std::size_t bytes) const
{
    // bits / bps, in picoseconds.
    return (bytes + kWireOverhead) * 8 * sim::kTicksPerSec /
           params_.linkBps;
}

void
Nic::transmit(os::Bytes frame)
{
    if (!host_)
        sim::panic("%s: transmit with no connected host",
                   name().c_str());
    tx_->inc();
    sim::Tick start =
        std::max(now() + params_.dmaLatency, txBusyUntil_);
    sim::Tick ser = serTime(frame.size());
    txBusyUntil_ = start + ser;
    sim::Tick arrival = txBusyUntil_ + params_.propagation - now();
    eq_.schedule(arrival, [this, frame = std::move(frame)]() mutable {
        host_->onFrame(std::move(frame));
    });
}

void
Nic::setRxHandler(std::function<void(os::Bytes)> h)
{
    rxHandler_ = std::move(h);
}

void
Nic::hostDeliver(os::Bytes frame)
{
    sim::Tick ser = serTime(frame.size());
    eq_.schedule(params_.propagation + ser + params_.dmaLatency,
                 [this, frame = std::move(frame)]() mutable {
                     rx_->inc();
                     if (rxHandler_)
                         rxHandler_(std::move(frame));
                 });
}

ExtHost::ExtHost(sim::EventQueue &eq, std::string name, Mode mode,
                 ExtHostParams params)
    : SimObject(eq, std::move(name)), mode_(mode), params_(params)
{
    frames_ = statCounter("frames");
    bytes_ = statCounter("bytes");
}

void
ExtHost::onFrame(os::Bytes frame)
{
    frames_->inc();
    bytes_->inc(frame.size());
    if (mode_ != Mode::Echo)
        return;
    if (!nic_)
        sim::panic("%s: echo with no connected NIC", name().c_str());
    os::Bytes payload;
    UdpFrameHdr hdr = parseFrame(frame, &payload);
    UdpFrameHdr back;
    back.srcIp = hdr.dstIp;
    back.dstIp = hdr.srcIp;
    back.srcPort = hdr.dstPort;
    back.dstPort = hdr.srcPort;
    os::Bytes reply = makeFrame(back, payload);
    eq_.schedule(params_.turnaround,
                 [this, reply = std::move(reply)]() mutable {
                     nic_->hostDeliver(std::move(reply));
                 });
}

} // namespace m3v::services
