#include "services/fs_image.h"

#include <algorithm>

#include "sim/log.h"

namespace m3v::services {

namespace {

/** Cost constants (cycles) for the metadata model. */
constexpr sim::Cycles kPerPathComponent = 40;
constexpr sim::Cycles kPerDirEntryScan = 6;
constexpr sim::Cycles kPerBitmapWord = 2;
constexpr sim::Cycles kInodeTouch = 30;

} // namespace

FsImage::FsImage(std::size_t total_blocks, std::size_t block_size,
                 std::uint32_t max_extent_blocks)
    : blockSize_(block_size), maxExtent_(max_extent_blocks),
      bitmap_(total_blocks, false), free_(total_blocks)
{
    // Root directory.
    Inode root;
    root.ino = 0;
    root.dir = true;
    inodes_.emplace(0, root);
    dirs_.emplace(0, std::map<std::string, Ino>());
}

std::vector<std::string>
FsImage::splitPath(const std::string &path) const
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

Ino
FsImage::lookupIn(Ino dir, const std::string &name)
{
    auto dit = dirs_.find(dir);
    if (dit == dirs_.end())
        return kNoIno;
    opCost_ += kPerDirEntryScan * (dit->second.size() / 2 + 1);
    auto it = dit->second.find(name);
    return it == dit->second.end() ? kNoIno : it->second;
}

Ino
FsImage::lookup(const std::string &path)
{
    Ino cur = 0;
    for (const auto &part : splitPath(path)) {
        opCost_ += kPerPathComponent;
        cur = lookupIn(cur, part);
        if (cur == kNoIno)
            return kNoIno;
    }
    opCost_ += kInodeTouch;
    return cur;
}

Ino
FsImage::create(const std::string &path, bool dir)
{
    auto parts = splitPath(path);
    if (parts.empty())
        return kNoIno;
    std::string leaf = parts.back();
    parts.pop_back();
    Ino parent = 0;
    for (const auto &part : parts) {
        opCost_ += kPerPathComponent;
        parent = lookupIn(parent, part);
        if (parent == kNoIno)
            return kNoIno;
    }
    if (lookupIn(parent, leaf) != kNoIno)
        return kNoIno; // exists
    Ino ino = nextIno_++;
    Inode node;
    node.ino = ino;
    node.dir = dir;
    inodes_.emplace(ino, node);
    if (dir)
        dirs_.emplace(ino, std::map<std::string, Ino>());
    dirs_[parent][leaf] = ino;
    opCost_ += kInodeTouch * 2;
    return ino;
}

bool
FsImage::unlink(const std::string &path)
{
    auto parts = splitPath(path);
    if (parts.empty())
        return false;
    std::string leaf = parts.back();
    parts.pop_back();
    Ino parent = 0;
    for (const auto &part : parts) {
        parent = lookupIn(parent, part);
        if (parent == kNoIno)
            return false;
    }
    Ino victim = lookupIn(parent, leaf);
    if (victim == kNoIno)
        return false;
    Inode *node = inode(victim);
    if (node->dir && !dirs_[victim].empty())
        return false;
    truncate(victim);
    dirs_[parent].erase(leaf);
    dirs_.erase(victim);
    inodes_.erase(victim);
    opCost_ += kInodeTouch * 2;
    return true;
}

Inode *
FsImage::inode(Ino ino)
{
    auto it = inodes_.find(ino);
    return it == inodes_.end() ? nullptr : &it->second;
}

bool
FsImage::entryAt(Ino dir, std::size_t idx, std::string *name,
                 Ino *child)
{
    auto dit = dirs_.find(dir);
    if (dit == dirs_.end())
        return false;
    opCost_ += kPerDirEntryScan * (idx + 1);
    if (idx >= dit->second.size())
        return false;
    auto it = dit->second.begin();
    std::advance(it, static_cast<long>(idx));
    *name = it->first;
    *child = it->second;
    return true;
}

std::size_t
FsImage::entryCount(Ino dir) const
{
    auto dit = dirs_.find(dir);
    return dit == dirs_.end() ? 0 : dit->second.size();
}

bool
FsImage::allocRun(std::uint32_t want, Extent *out)
{
    std::size_t n = bitmap_.size();
    std::size_t scanned = 0;
    std::size_t pos = scanHint_;
    while (scanned < n) {
        // Find the start of a free run.
        while (scanned < n && bitmap_[pos]) {
            pos = (pos + 1) % n;
            scanned++;
        }
        if (scanned >= n)
            break;
        std::size_t run_start = pos;
        std::uint32_t run = 0;
        while (run < want && pos < n && !bitmap_[pos]) {
            run++;
            pos++;
            scanned++;
        }
        opCost_ += kPerBitmapWord * (scanned / 64 + 1);
        if (run > 0) {
            for (std::size_t b = run_start; b < run_start + run; b++)
                bitmap_[b] = true;
            free_ -= run;
            scanHint_ = pos % n;
            out->start = static_cast<std::uint32_t>(run_start);
            out->count = run;
            return true;
        }
        pos = pos % n;
    }
    return false;
}

bool
FsImage::appendExtent(Ino ino, Extent *out, std::uint32_t want_blocks)
{
    Inode *node = inode(ino);
    if (!node || node->dir)
        return false;
    if (free_ == 0)
        return false;
    std::uint32_t want = std::min<std::uint32_t>(
        maxExtent_, static_cast<std::uint32_t>(free_));
    want = std::min(want, std::max<std::uint32_t>(1, want_blocks));
    if (!allocRun(want, out))
        return false;
    node->extents.push_back(*out);
    opCost_ += kInodeTouch;
    return true;
}

void
FsImage::truncate(Ino ino)
{
    Inode *node = inode(ino);
    if (!node)
        return;
    for (const Extent &e : node->extents) {
        for (std::uint32_t b = e.start; b < e.start + e.count; b++)
            bitmap_[b] = false;
        free_ += e.count;
    }
    opCost_ += kInodeTouch +
               kPerBitmapWord * node->extents.size();
    node->extents.clear();
    node->size = 0;
}

sim::Cycles
FsImage::takeOpCost()
{
    sim::Cycles c = opCost_;
    opCost_ = 0;
    return c;
}

} // namespace m3v::services
