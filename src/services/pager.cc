#include "services/pager.h"

#include "sim/log.h"

namespace m3v::services {

using dtu::Error;
using os::Bytes;

PagerService::PagerService(os::System &sys, unsigned tile_idx,
                           std::size_t footprint,
                           sim::AdmissionParams admission,
                           std::size_t req_slots)
    : sys_(sys), admission_(admission)
{
    app_ = sys.createApp(tile_idx, "pager", footprint);
    rgate_ = sys.makeRgate(app_, 64, req_slots);
}

PagerService::Client
PagerService::addClient(os::System::App *client)
{
    Client c;
    c.id = nextClient_++;
    auto sg = sys_.makeSgate(client, app_, rgate_.ep, c.id, 2);
    c.sgateEp = sg.ep;
    auto rep = sys_.makeRgate(client, 64, 2);
    c.replyEp = rep.ep;

    ClientState cs;
    cs.actCap = sys_.grantActCap(app_, client);
    cs.tileIdx = client->tileIdx;
    clients_.emplace(c.id, cs);
    return c;
}

void
PagerService::startService()
{
    sys_.start(app_, [this](os::MuxEnv &env) -> sim::Task {
        co_await body(env);
    });
}

sim::Task
PagerService::body(os::MuxEnv &env)
{
    for (;;) {
        int slot = -1;
        co_await env.recvOn(rgate_.ep, &slot);
        dtu::Message msg = env.msgAt(rgate_.ep, slot);
        requests_++;

        auto it = clients_.find(msg.label);
        if (it == clients_.end())
            sim::panic("pager: unknown client %llu",
                       static_cast<unsigned long long>(msg.label));
        ClientState &cs = it->second;

        // Admission control over the bounded request ring.
        if (admission_.enabled()) {
            std::size_t occ =
                env.dtu().unread(env.actId(), rgate_.ep) + 1;
            if (!admission_.admit(env.dtu().now(), msg.arrival,
                                  occ)) {
                co_await env.thread().compute(
                    admission_.params().shedCost);
                PagerResp shed;
                shed.err = Error::Overloaded;
                Error serr = Error::None;
                co_await env.reply(rgate_.ep, slot,
                                   os::podBytes(shed), &serr);
                continue;
            }
        }

        PagerReq req = os::podFrom<PagerReq>(msg.payload);
        PagerResp resp;

        // Policy decision: pick physical pages (modelled cost).
        co_await env.thread().compute(120 + 30 * req.pages);

        for (std::uint32_t i = 0;
             i < req.pages && resp.err == Error::None; i++) {
            dtu::PhysAddr pa = sys_.allocTilePhys(cs.tileIdx, 1);
            os::SyscallReq sc;
            os::SyscallResp sr;
            sc.op = os::SyscallReq::Op::MapFor;
            sc.arg0 = cs.actCap;
            sc.arg1 = req.va + i * dtu::kPageSize;
            sc.arg2 = pa;
            sc.arg3 = dtu::kPermRW;
            co_await env.syscall(sc, &sr);
            resp.err = sr.err;
            if (sr.err == Error::None)
                pagesMapped_++;
        }

        Error rerr = Error::None;
        co_await env.reply(rgate_.ep, slot, os::podBytes(resp),
                           &rerr);
        if (rerr != Error::None)
            sim::warn("pager: reply failed: %s", dtu::errorName(rerr));
    }
}

sim::Task
pagerAllocMap(os::MuxEnv &env, const PagerService::Client &c,
              std::size_t pages, dtu::VirtAddr *va, Error *err)
{
    *va = env.activity().addrSpace().allocPages(pages);
    PagerReq req;
    req.op = PagerReq::Op::AllocMap;
    req.pages = static_cast<std::uint32_t>(pages);
    req.va = *va;
    Bytes respb;
    Error cerr = Error::Aborted;
    co_await env.call(c.sgateEp, c.replyEp, os::podBytes(req), &respb,
                      &cerr);
    if (cerr != Error::None) {
        *err = cerr;
        co_return;
    }
    *err = os::podFrom<PagerResp>(respb).err;
}

} // namespace m3v::services
