#include "services/net.h"

#include <cstring>

#include "sim/log.h"

namespace m3v::services {

using dtu::Error;
using os::Bytes;

namespace {

/**
 * Cap on Overloaded-shed retries of a single UDP rpc (mirrors the
 * file client's kRpcAttempts) so one rpc terminates after a bounded
 * number of shed/backoff cycles even under sustained overload.
 */
constexpr unsigned kUdpRpcAttempts = 4;

/** Concatenate a POD header and payload bytes. */
template <typename T>
Bytes
withPayload(const T &hdr, const Bytes &payload)
{
    Bytes b(sizeof(T) + payload.size());
    std::memcpy(b.data(), &hdr, sizeof(T));
    if (!payload.empty())
        std::memcpy(b.data() + sizeof(T), payload.data(),
                    payload.size());
    return b;
}

template <typename T>
T
splitPayload(const Bytes &msg, Bytes *payload)
{
    if (msg.size() < sizeof(T))
        sim::panic("net: truncated message (%zu bytes)", msg.size());
    T hdr;
    std::memcpy(&hdr, msg.data(), sizeof(T));
    if (payload)
        payload->assign(msg.begin() + static_cast<long>(sizeof(T)),
                        msg.end());
    return hdr;
}

} // namespace

NetService::NetService(os::System &sys, unsigned tile_idx, Nic &nic,
                       NetParams params)
    : sys_(sys), params_(params), nic_(nic),
      admission_(params.admission)
{
    app_ = sys.createApp(tile_idx, "net", params.footprint);
    rgate_ = sys.makeRgate(app_, 1600, params.reqSlots);

    // Driver mailbox: the NIC DMAs received frames here and signals
    // the driver (deviceMessage models the MSI path).
    rxEp_ = sys.allocEp(tile_idx);
    sys.vdtu(tile_idx).configEp(
        rxEp_,
        dtu::Endpoint::makeRecv(app_->act->id(), 1600, 16));
    core::VDtu *vd = &sys.vdtu(tile_idx);
    dtu::EpId rx = rxEp_;
    std::uint64_t *dropped = &rxDropped_;
    nic_.setRxHandler([vd, rx, dropped](Bytes frame) {
        if (!vd->deviceMessage(rx, std::move(frame)))
            (*dropped)++;
    });
}

NetService::Client
NetService::addClient(os::System::App *client)
{
    Client c;
    c.id = nextClient_++;
    auto sg = sys_.makeSgate(client, app_, rgate_.ep, c.id, 4, 1500);
    c.sgateEp = sg.ep;
    auto rep = sys_.makeRgate(client, 128, 2);
    c.replyEp = rep.ep;
    auto data = sys_.makeRgate(client, 1600, 8);
    c.dataRep = data.ep;
    auto dsg = sys_.makeSgate(app_, client, data.ep, c.id, 8, 1500);
    dataSgates_[c.id] = dsg.ep;
    return c;
}

void
NetService::startService()
{
    sys_.start(app_, [this](os::MuxEnv &env) -> sim::Task {
        co_await body(env);
    });
}

sim::Task
NetService::body(os::MuxEnv &env)
{
    // GCC is picky about initializer lists living across suspension
    // points: build the workloop EP set up front.
    std::vector<dtu::EpId> reps;
    reps.push_back(rgate_.ep);
    reps.push_back(rxEp_);
    for (;;) {
        dtu::EpId which = dtu::kInvalidEp;
        int slot = -1;
        co_await env.recvAny(reps, &which, &slot);

        if (which == rxEp_) {
            // Frame from the wire.
            dtu::Message msg = env.msgAt(rxEp_, slot);
            Bytes frame = msg.payload;
            co_await env.ackMsg(rxEp_, slot);
            pktRx_++;
            co_await env.thread().compute(
                params_.perPacketCost +
                frame.size() / params_.bytesPerCycle);

            Bytes payload;
            UdpFrameHdr hdr = parseFrame(frame, &payload);
            auto pit = ports_.find(hdr.dstPort);
            if (pit == ports_.end()) {
                rxDropped_++;
                continue;
            }
            Socket &sock = sockets_[pit->second];
            NetDataHdr dh;
            dh.sock = pit->second;
            dh.srcIp = hdr.srcIp;
            dh.srcPort = hdr.srcPort;
            dh.len = hdr.len;
            Error serr = Error::None;
            co_await env.send(dataSgates_[sock.client],
                              withPayload(dh, payload),
                              dtu::kInvalidEp, &serr);
            if (serr != Error::None)
                rxDropped_++;
            continue;
        }

        // Client request.
        dtu::Message msg = env.msgAt(rgate_.ep, slot);

        // Admission control over the bounded request ring: reject
        // aged or over-occupancy requests early and typed.
        if (admission_.enabled()) {
            std::size_t occ =
                env.dtu().unread(env.actId(), rgate_.ep) + 1;
            if (!admission_.admit(env.dtu().now(), msg.arrival,
                                  occ)) {
                co_await env.thread().compute(
                    admission_.params().shedCost);
                NetRespHdr shed;
                shed.err = Error::Overloaded;
                Error serr = Error::None;
                co_await env.reply(rgate_.ep, slot,
                                   os::podBytes(shed), &serr);
                continue;
            }
        }

        Bytes payload;
        NetReqHdr req = splitPayload<NetReqHdr>(msg.payload,
                                                &payload);
        NetRespHdr resp;
        co_await env.thread().compute(params_.perPacketCost);

        switch (req.op) {
          case NetReqHdr::Op::Create: {
            std::uint32_t id = nextSock_++;
            sockets_[id] = Socket{msg.label, req.localPort};
            if (req.localPort)
                ports_[req.localPort] = id;
            resp.sock = id;
            break;
          }
          case NetReqHdr::Op::SendTo: {
            auto sit = sockets_.find(req.sock);
            if (sit == sockets_.end()) {
                resp.err = Error::InvalidEp;
                break;
            }
            co_await env.thread().compute(
                payload.size() / params_.bytesPerCycle);
            UdpFrameHdr fh;
            fh.srcIp = params_.localIp;
            fh.dstIp = req.dstIp;
            fh.srcPort = sit->second.port;
            fh.dstPort = req.dstPort;
            nic_.transmit(makeFrame(fh, payload));
            pktTx_++;
            break;
          }
          case NetReqHdr::Op::Close: {
            auto sit = sockets_.find(req.sock);
            if (sit != sockets_.end()) {
                ports_.erase(sit->second.port);
                sockets_.erase(sit);
            }
            break;
          }
        }

        Error rerr = Error::None;
        co_await env.reply(rgate_.ep, slot, os::podBytes(resp),
                           &rerr);
        if (rerr != Error::None)
            sim::warn("net: reply failed: %s", dtu::errorName(rerr));
    }
}

UdpSocket::UdpSocket(os::Env &env, const NetService::Client &client,
                     sim::OverloadGuard *guard)
    : env_(env), wiring_(client), guard_(guard)
{
}

sim::Task
UdpSocket::rpc(NetReqHdr hdr, Bytes payload, NetRespHdr *resp)
{
    // UDP semantics: a timed-out request is a lost datagram and is
    // never re-sent; only a server shed (Error::Overloaded — the
    // request provably had no effect) is retried, within the budget
    // and a bounded number of attempts (so a single rpc terminates
    // under sustained overload even while successes on the shared
    // guard keep refilling the token bucket).
    for (unsigned attempt = 0;; attempt++) {
        bool sent = false;
        Error err = Error::Overloaded;
        if (guard_ == nullptr ||
            guard_->breaker().allow(env_.dtu().now())) {
            sent = true;
            Bytes respb;
            err = Error::Aborted;
            sim::Tick deadline =
                guard_ ? guard_->replyDeadline() : 0;
            if (deadline == 0)
                co_await env_.call(wiring_.sgateEp, wiring_.replyEp,
                                   withPayload(hdr, payload), &respb,
                                   &err);
            else
                co_await env_.callTimed(
                    wiring_.sgateEp, wiring_.replyEp,
                    withPayload(hdr, payload), &respb, &err,
                    deadline);
            if (err == Error::None) {
                *resp = os::podFrom<NetRespHdr>(respb);
                if (resp->err != Error::Overloaded) {
                    if (guard_) {
                        guard_->breaker().recordSuccess(
                            env_.dtu().now());
                        guard_->budget().recordSuccess();
                        guard_->backoff().reset();
                    }
                    co_return;
                }
                rpcOverloaded_++;
                err = Error::Overloaded;
            }
        }
        if (sent && guard_)
            guard_->breaker().recordFailure(env_.dtu().now());
        // Breaker-denied attempts (sent == false) never reached the
        // wire: they retry within the attempt cap without spending a
        // retry token, which is reserved for actual retry traffic.
        if (err != Error::Overloaded || guard_ == nullptr ||
            attempt + 1 >= kUdpRpcAttempts ||
            (sent && !guard_->budget().tryAcquire())) {
            *resp = NetRespHdr{};
            resp->err = err;
            co_return;
        }
        rpcRetries_++;
        co_await env_.thread().compute(guard_->backoff().next());
    }
}

sim::Task
UdpSocket::create(std::uint16_t local_port, Error *err)
{
    NetReqHdr req;
    req.op = NetReqHdr::Op::Create;
    req.localPort = local_port;
    NetRespHdr resp;
    co_await rpc(req, {}, &resp);
    if (resp.err == Error::None)
        sock_ = resp.sock;
    *err = resp.err;
}

sim::Task
UdpSocket::sendTo(std::uint32_t dst_ip, std::uint16_t dst_port,
                  Bytes payload, Error *err)
{
    NetReqHdr req;
    req.op = NetReqHdr::Op::SendTo;
    req.sock = sock_;
    req.dstIp = dst_ip;
    req.dstPort = dst_port;
    req.len = static_cast<std::uint32_t>(payload.size());
    NetRespHdr resp;
    co_await rpc(req, std::move(payload), &resp);
    *err = resp.err;
}

sim::Task
UdpSocket::close(Error *err)
{
    NetReqHdr req;
    req.op = NetReqHdr::Op::Close;
    req.sock = sock_;
    NetRespHdr resp;
    co_await rpc(req, {}, &resp);
    if (resp.err == Error::None)
        sock_ = 0;
    *err = resp.err;
}

sim::Task
UdpSocket::recv(Bytes *payload, Error *err)
{
    int slot = -1;
    co_await env_.recvOn(wiring_.dataRep, &slot);
    const dtu::Message &m = env_.msgAt(wiring_.dataRep, slot);
    co_await env_.thread().compute(m.payload.size() / 8 + 2);
    splitPayload<NetDataHdr>(m.payload, payload);
    co_await env_.ackMsg(wiring_.dataRep, slot);
    *err = Error::None;
}

} // namespace m3v::services
