/**
 * @file
 * The net service (paper section 4.4): a smoltcp-like UDP stack run
 * as an activity on the NIC-attached tile. Clients get POSIX-like
 * sockets; packets travel between client and service as vDTU
 * messages over per-socket channels; the service drives the NIC.
 */

#ifndef M3VSIM_SERVICES_NET_H_
#define M3VSIM_SERVICES_NET_H_

#include <map>

#include "os/system.h"
#include "services/nic.h"
#include "sim/overload.h"

namespace m3v::services {

/** Client request header (payload bytes may follow). */
struct NetReqHdr
{
    enum class Op : std::uint32_t
    {
        Create, ///< create a socket bound to localPort
        SendTo, ///< send the trailing payload
        Close,
    };

    Op op = Op::Create;
    std::uint32_t sock = 0;
    std::uint16_t localPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t dstIp = 0;
    std::uint32_t len = 0;
};

/** Service response. */
struct NetRespHdr
{
    dtu::Error err = dtu::Error::None;
    std::uint32_t sock = 0;
};

/** Header of data messages delivered to a client. */
struct NetDataHdr
{
    std::uint32_t sock = 0;
    std::uint32_t srcIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t pad = 0;
    std::uint32_t len = 0;
};

/** Net service cost parameters. */
struct NetParams
{
    /** Fixed per-packet stack cost (headers, socket lookup). */
    sim::Cycles perPacketCost = 3200;

    /** Per-byte cost (checksums, copies) in bytes per cycle. */
    std::size_t bytesPerCycle = 3;

    /** Service instruction footprint. */
    std::size_t footprint = 12 * 1024;

    /** Our IP address (cosmetic). */
    std::uint32_t localIp = 0x0a000002;

    /** Client-request ring slots (the bounded admission queue). */
    std::size_t reqSlots = 8;

    /** Admission control over the client-request ring (default off). */
    sim::AdmissionParams admission;
};

/** The net service. */
class NetService
{
  public:
    /** Boot wiring of one client. */
    struct Client
    {
        std::uint64_t id = 0;
        dtu::EpId sgateEp = dtu::kInvalidEp;
        dtu::EpId replyEp = dtu::kInvalidEp;
        /** Client-side EP where socket data arrives. */
        dtu::EpId dataRep = dtu::kInvalidEp;
    };

    NetService(os::System &sys, unsigned tile_idx, Nic &nic,
               NetParams params = {});

    os::System::App *app() { return app_; }

    Client addClient(os::System::App *client);
    void startService();

    std::uint64_t packetsTx() const { return pktTx_; }
    std::uint64_t packetsRx() const { return pktRx_; }
    std::uint64_t rxDropped() const { return rxDropped_; }

    /** Admission decision state (shed/admit counters). */
    const sim::Admission &admission() const { return admission_; }

  private:
    struct Socket
    {
        std::uint64_t client = 0;
        std::uint16_t port = 0;
    };

    sim::Task body(os::MuxEnv &env);

    os::System &sys_;
    NetParams params_;
    Nic &nic_;
    os::System::App *app_;
    os::System::RgateHandle rgate_;
    dtu::EpId rxEp_ = dtu::kInvalidEp;

    /** Net-side send EP towards each client's data EP. */
    std::map<std::uint64_t, dtu::EpId> dataSgates_;
    std::map<std::uint32_t, Socket> sockets_;
    std::map<std::uint16_t, std::uint32_t> ports_;
    std::uint32_t nextSock_ = 1;
    std::uint64_t nextClient_ = 1;

    std::uint64_t pktTx_ = 0;
    std::uint64_t pktRx_ = 0;
    std::uint64_t rxDropped_ = 0;
    sim::Admission admission_;
};

/** Client-side UDP socket over a net-service channel. */
class UdpSocket
{
  public:
    /**
     * @param guard optional per-destination overload discipline; null
     *              keeps the legacy single-shot RPC behaviour.
     */
    UdpSocket(os::Env &env, const NetService::Client &client,
              sim::OverloadGuard *guard = nullptr);

    sim::Task create(std::uint16_t local_port, dtu::Error *err);
    sim::Task sendTo(std::uint32_t dst_ip, std::uint16_t dst_port,
                     os::Bytes payload, dtu::Error *err);

    /** Close the socket (for connection-churn workloads). */
    sim::Task close(dtu::Error *err);

    /** Receive the next datagram for this socket. */
    sim::Task recv(os::Bytes *payload, dtu::Error *err);

    /** RPCs re-sent after a server shed. */
    std::uint64_t rpcRetries() const { return rpcRetries_; }

    /** Server-side Error::Overloaded rejections observed. */
    std::uint64_t rpcOverloaded() const { return rpcOverloaded_; }

  private:
    sim::Task rpc(NetReqHdr hdr, os::Bytes payload,
                  NetRespHdr *resp);

    os::Env &env_;
    NetService::Client wiring_;
    sim::OverloadGuard *guard_;
    std::uint32_t sock_ = 0;
    std::uint64_t rpcRetries_ = 0;
    std::uint64_t rpcOverloaded_ = 0;
};

} // namespace m3v::services

#endif // M3VSIM_SERVICES_NET_H_
