/**
 * @file
 * The m3fs on-storage metadata model: an extent-based in-memory file
 * system (paper section 6.3). Files are sequences of extents —
 * contiguous block runs of up to maxExtentBlocks blocks (the paper's
 * benchmarks cap extents at 64 blocks). Directories map names to
 * inodes. A bitmap allocator hands out contiguous runs.
 *
 * Every metadata operation reports a modelled cycle cost (directory
 * scans, bitmap scans) that the service charges to its core.
 */

#ifndef M3VSIM_SERVICES_FS_IMAGE_H_
#define M3VSIM_SERVICES_FS_IMAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.h"

namespace m3v::services {

/** Inode number. */
using Ino = std::uint32_t;
constexpr Ino kNoIno = ~0u;

/** A contiguous run of blocks. */
struct Extent
{
    std::uint32_t start = 0;
    std::uint32_t count = 0;
};

/** An inode: directory flag, size, extent list. */
struct Inode
{
    Ino ino = kNoIno;
    bool dir = false;
    std::uint64_t size = 0;
    std::vector<Extent> extents;
};

/** The file-system image (metadata; file content lives in DRAM). */
class FsImage
{
  public:
    FsImage(std::size_t total_blocks, std::size_t block_size = 4096,
            std::uint32_t max_extent_blocks = 64);

    std::size_t blockSize() const { return blockSize_; }
    std::size_t totalBlocks() const { return bitmap_.size(); }
    std::size_t freeBlocks() const { return free_; }
    std::uint32_t maxExtentBlocks() const { return maxExtent_; }

    /** Resolve an absolute path ("/a/b"); kNoIno if missing. */
    Ino lookup(const std::string &path);

    /** Create a file or directory; parent must exist. */
    Ino create(const std::string &path, bool dir);

    /** Remove a file (or empty directory). */
    bool unlink(const std::string &path);

    Inode *inode(Ino ino);

    /** Directory entry at @p idx (name-sorted); false past the end. */
    bool entryAt(Ino dir, std::size_t idx, std::string *name,
                 Ino *child);

    std::size_t entryCount(Ino dir) const;

    /**
     * Allocate a fresh extent of up to @p want_blocks (capped by
     * maxExtentBlocks, at least one block) and append it to the
     * inode. Returns false when full.
     */
    bool appendExtent(Ino ino, Extent *out,
                      std::uint32_t want_blocks = ~0u);

    /** Free all blocks of a file and reset its size. */
    void truncate(Ino ino);

    /**
     * Modelled cycle cost of operations performed since the last
     * call (directory walks, bitmap scans). The service charges this
     * to its core and the counter resets.
     */
    sim::Cycles takeOpCost();

  private:
    std::vector<std::string> splitPath(const std::string &path) const;
    Ino lookupIn(Ino dir, const std::string &name);
    bool allocRun(std::uint32_t want, Extent *out);

    std::size_t blockSize_;
    std::uint32_t maxExtent_;
    std::vector<bool> bitmap_;
    std::size_t free_;
    std::size_t scanHint_ = 0;

    Ino nextIno_ = 1;
    std::map<Ino, Inode> inodes_;
    std::map<Ino, std::map<std::string, Ino>> dirs_;

    sim::Cycles opCost_ = 0;
};

} // namespace m3v::services

#endif // M3VSIM_SERVICES_FS_IMAGE_H_
