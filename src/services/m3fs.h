/**
 * @file
 * The m3fs service: the extent-based in-memory file system of M3v,
 * run as an ordinary activity (an "OS service on a user tile",
 * Figure 3). File content lives in a DRAM storage region owned by
 * the service; clients get *direct* DTU access to whole extents via
 * derived memory capabilities, so the service (and the controller)
 * are only involved once per extent, not once per read/write —
 * the design the paper credits for Figure 7's results.
 */

#ifndef M3VSIM_SERVICES_M3FS_H_
#define M3VSIM_SERVICES_M3FS_H_

#include <map>
#include <memory>
#include <vector>

#include "os/system.h"
#include "services/fs_image.h"
#include "services/fs_proto.h"
#include "sim/overload.h"

namespace m3v::services {

/** m3fs configuration. */
struct M3fsParams
{
    /** DRAM storage region size. */
    std::size_t storageBytes = 32 << 20;

    /** Extent size cap in blocks (the paper's benchmarks use 64). */
    std::uint32_t maxExtentBlocks = 64;

    /** Fixed request handling cost (decode, fd table). */
    sim::Cycles opBaseCost = 500;

    /** Service instruction footprint (cache competition model). */
    std::size_t footprint = 10 * 1024;

    std::size_t slotSize = 128;
    std::size_t slots = 16;

    /**
     * Admission control over the request ring (default off): shed
     * aged or over-occupancy requests with Error::Overloaded instead
     * of executing them.
     */
    sim::AdmissionParams admission;
};

/** The m3fs service instance. */
class M3fs
{
  public:
    /** Boot wiring of one client. */
    struct Client
    {
        std::uint64_t id = 0;
        /** Client-side EPs: request send gate and reply EP. */
        dtu::EpId sgateEp = dtu::kInvalidEp;
        dtu::EpId replyEp = dtu::kInvalidEp;
        /** Pool of file EPs; each open file binds one (Open.arg). */
        std::vector<dtu::EpId> fileEps;
    };

    M3fs(os::System &sys, unsigned tile_idx, M3fsParams params = {});

    os::System::App *app() { return app_; }
    FsImage &image() { return *img_; }

    /** Wire up a client app (boot time). */
    Client addClient(os::System::App *client);

    /** Start the service loop. */
    void startService();

    std::uint64_t requests() const { return requests_; }

    /** Admission decision state (shed/admit counters). */
    const sim::Admission &admission() const { return admission_; }

  private:
    struct OpenFile
    {
        Ino ino = kNoIno;
        bool write = false;
        /** Client endpoint extents are activated into. */
        dtu::EpId fileEp = dtu::kInvalidEp;
        /** Next extent index to hand out. */
        std::uint32_t extIdx = 0;
        /** File offset where the current window starts. */
        std::uint64_t winOff = 0;
        /** Capabilities granted for this fd (revoked on close). */
        std::vector<os::CapSel> grantedCaps;
    };

    struct ClientState
    {
        os::CapSel actCap = os::kInvalidSel;
        std::uint32_t nextFd = 3;
        std::map<std::uint32_t, OpenFile> files;
    };

    sim::Task body(os::MuxEnv &env);
    sim::Task handle(os::MuxEnv &env, ClientState &cs, FsReq req,
                     FsResp *resp);
    sim::Task grantExtent(os::MuxEnv &env, ClientState &cs,
                          OpenFile &file, const Extent &ext,
                          std::uint8_t perms, dtu::Error *err);
  public:
    /** Number of file EPs in each client's pool. */
    static constexpr unsigned kFileEpPool = 8;

  private:
    sim::Task zeroExtent(os::MuxEnv &env, const Extent &ext);

    os::System &sys_;
    M3fsParams params_;
    os::System::App *app_;
    os::System::MgateHandle storage_;
    os::System::RgateHandle rgate_;
    std::unique_ptr<FsImage> img_;
    std::map<std::uint64_t, ClientState> clients_;
    std::uint64_t nextClient_ = 1;
    std::uint64_t requests_ = 0;
    sim::Admission admission_;
};

} // namespace m3v::services

#endif // M3VSIM_SERVICES_M3FS_H_
