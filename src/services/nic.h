/**
 * @file
 * The tile-local NIC device and the external peer host.
 *
 * The paper's platform attaches an AXI-Ethernet NIC to one processing
 * tile's core (section 4.1); the net service runs on that core and
 * drives it. Frames travel over a Gbit Ethernet wire to an external
 * machine (an AMD Ryzen in the paper's benchmarks), modelled by
 * ExtHost with a configurable turnaround behaviour (UDP echo or
 * sink).
 *
 * Frames are simplified UDP-over-Ethernet: a POD header plus payload;
 * the real Ethernet+IP+UDP header overhead (42 bytes) is charged on
 * the wire.
 */

#ifndef M3VSIM_SERVICES_NIC_H_
#define M3VSIM_SERVICES_NIC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "os/proto.h"
#include "sim/sim_object.h"
#include "sim/stats.h"

namespace m3v::services {

/** Simplified UDP/IP frame header. */
struct UdpFrameHdr
{
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t len = 0;
};

/** Build a frame (header + payload). */
os::Bytes makeFrame(const UdpFrameHdr &hdr, const os::Bytes &payload);

/** Split a frame into header + payload. */
UdpFrameHdr parseFrame(const os::Bytes &frame, os::Bytes *payload);

/** Ethernet + IP + UDP header overhead on the wire. */
constexpr std::size_t kWireOverhead = 42;

class ExtHost;

/** NIC timing parameters. */
struct NicParams
{
    /** Link speed. */
    std::uint64_t linkBps = 1'000'000'000;

    /** One-way wire propagation (cabling + PHYs + switch). */
    sim::Tick propagation = 5 * sim::kTicksPerUs;

    /** DMA latency between NIC and the core's memory. */
    sim::Tick dmaLatency = 2 * sim::kTicksPerUs;
};

/** The tile-local Ethernet NIC. */
class Nic : public sim::SimObject
{
  public:
    Nic(sim::EventQueue &eq, std::string name, NicParams params = {});

    void connect(ExtHost *host) { host_ = host; }

    /**
     * Driver-side transmit: DMA from memory, serialize on the wire,
     * deliver to the peer host. TX is serialized (one frame at a
     * time on the link).
     */
    void transmit(os::Bytes frame);

    /**
     * Install the RX handler: called (after DMA latency) for every
     * frame arriving from the wire. The net service wires this to a
     * driver-mailbox message (Dtu::deviceMessage).
     */
    void setRxHandler(std::function<void(os::Bytes)> h);

    /** Host-side delivery towards this NIC. */
    void hostDeliver(os::Bytes frame);

    std::uint64_t txFrames() const { return tx_->value(); }
    std::uint64_t rxFrames() const { return rx_->value(); }

  private:
    sim::Tick serTime(std::size_t bytes) const;

    NicParams params_;
    ExtHost *host_ = nullptr;
    std::function<void(os::Bytes)> rxHandler_;
    sim::Tick txBusyUntil_ = 0;
    sim::Counter *tx_;
    sim::Counter *rx_;
};

/** ExtHost behaviour parameters. */
struct ExtHostParams
{
    /** Application turnaround on the host (fast x86 box). */
    sim::Tick turnaround = 120 * sim::kTicksPerUs;
};

/** The external peer machine. */
class ExtHost : public sim::SimObject
{
  public:
    enum class Mode
    {
        Echo, ///< swap addresses and send the payload back
        Sink, ///< count and discard
    };

    ExtHost(sim::EventQueue &eq, std::string name, Mode mode,
            ExtHostParams params = {});

    void connect(Nic *nic) { nic_ = nic; }

    /** A frame arrived from the NIC's wire. */
    void onFrame(os::Bytes frame);

    std::uint64_t framesReceived() const { return frames_->value(); }
    std::uint64_t bytesReceived() const { return bytes_->value(); }

  private:
    Mode mode_;
    ExtHostParams params_;
    Nic *nic_ = nullptr;
    sim::Counter *frames_;
    sim::Counter *bytes_;
};

} // namespace m3v::services

#endif // M3VSIM_SERVICES_NIC_H_
