/**
 * @file
 * The M3x baseline (ATC '19, paper section 2.2): tile multiplexing
 * implemented *remotely* by the single-threaded kernel on the
 * controller tile.
 *
 * Differences from M3v that this module reproduces faithfully:
 *  - The plain DTU holds only the *current* activity's endpoints;
 *    there is no activity tagging and no CUR_ACT register.
 *  - A context switch is a kernel-driven remote transaction: suspend
 *    the tile (stub message), read the old activity's endpoints over
 *    the NoC, write the new activity's endpoints, resume the tile —
 *    four round trips plus kernel bookkeeping, all serialized in one
 *    kernel (the scalability bottleneck of Figure 9).
 *  - Sending to a non-running activity fails ("RecvGone"); the sender
 *    falls back to the *slow path*: it forwards the message to the
 *    kernel, which first schedules the recipient and then delivers
 *    the message (section 2.2).
 *
 * Each tile runs a minimal dispatcher stub (RCTMux in the original
 * system) that saves/restores activities on kernel request and
 * notifies the kernel when the current activity blocks.
 */

#ifndef M3VSIM_M3X_SYSTEM_H_
#define M3VSIM_M3X_SYSTEM_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtu/dtu.h"
#include "dtu/memory_tile.h"
#include "noc/noc.h"
#include "os/proto.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "tile/core.h"

namespace m3v::m3x {

using os::Bytes;

/** Kernel/stub cost parameters (cycles on the respective cores). */
struct M3xParams
{
    unsigned userTiles = 12;
    tile::CoreModel coreModel = tile::CoreModel::x86Ooo();
    noc::NocParams noc{};
    tile::DramParams dram{};

    /** Kernel: decode + bookkeeping per request. */
    sim::Cycles kernelHandlerCost = 500;

    /** Kernel: scheduling decision per context switch. */
    sim::Cycles kernelSwitchCost = 800;

    /** Stub: save the activity's core state. */
    sim::Cycles stubSaveCost = 600;

    /** Stub: restore core state and return to user. */
    sim::Cycles stubRestoreCost = 600;

    /** Stub handler prologue. */
    sim::Cycles stubEntryCost = 250;

    /** Endpoints saved/restored per activity on a switch. */
    dtu::EpId epsPerAct = 8;
};

/** Header embedded in every RPC payload (direct or forwarded). */
struct MsgHdr
{
    /** Where the reply should go. */
    noc::TileId replyTile = 0;
    dtu::ActId replyAct = dtu::kInvalidAct;
    dtu::EpId replyEp = dtu::kInvalidEp;
    std::uint64_t label = 0;
};

class M3xSystem;

/** An M3x activity. */
class M3xAct
{
  public:
    enum class State
    {
        Ready,   ///< runnable (kernel's view)
        Current, ///< installed on its tile
        Blocked, ///< waiting for messages
        Dead,
    };

    M3xAct(M3xSystem &sys, tile::Core &core, dtu::ActId id,
           unsigned tile_idx, std::string name);

    dtu::ActId id() const { return id_; }
    unsigned tileIdx() const { return tileIdx_; }
    const std::string &name() const { return name_; }
    tile::Thread &thread() { return thread_; }
    State state() const { return state_; }

    std::function<void()> onExit;

  private:
    friend class M3xSystem;

    M3xSystem &sys_;
    dtu::ActId id_;
    unsigned tileIdx_;
    std::string name_;
    tile::Thread thread_;
    State state_ = State::Ready;

    /** Endpoint image installed while Current (ids 8..8+epsPerAct). */
    std::vector<dtu::Endpoint> savedEps_;
    dtu::EpId nextEp_;

    /** Messages awaiting delivery (kernel side). */
    struct PendingMsg
    {
        dtu::EpId ep;
        Bytes payload;
    };
    std::deque<PendingMsg> pending_;

    /** Flow-control counters for stale Blocked detection. */
    std::uint64_t fetched_ = 0;   // activity side
    std::uint64_t delivered_ = 0; // kernel side
};

/** A communication channel (receive endpoint of a server/reply). */
struct M3xChan
{
    M3xAct *owner = nullptr;
    dtu::EpId rep = dtu::kInvalidEp;
};

/** The assembled M3x platform. */
class M3xSystem
{
  public:
    explicit M3xSystem(sim::EventQueue &eq, M3xParams params = {});
    ~M3xSystem();

    M3xSystem(const M3xSystem &) = delete;
    M3xSystem &operator=(const M3xSystem &) = delete;

    const M3xParams &params() const { return params_; }
    sim::EventQueue &eventQueue() { return eq_; }
    noc::TileId kernelTile() const { return params_.userTiles; }

    //
    // Boot-time setup.
    //

    M3xAct *createAct(unsigned tile_idx, const std::string &name);

    /** Create a receive endpoint owned by @p owner. */
    M3xChan makeChannel(M3xAct *owner, std::size_t slot_size = 256,
                        std::size_t slots = 8);

    /** Give @p sender a send endpoint towards @p chan. */
    dtu::EpId addSender(const M3xChan &chan, M3xAct *sender,
                        std::uint32_t credits = 4);

    /** Start an activity body. */
    void start(M3xAct *act, sim::Task body);

    //
    // Activity-side operations (awaited from bodies).
    //

    /**
     * RPC: send @p req to @p chan (fast path if possible, slow path
     * through the kernel otherwise) and await the reply on this
     * activity's reply endpoint.
     */
    sim::Task rpc(M3xAct &self, const M3xChan &chan,
                  dtu::EpId direct_sep, Bytes req, Bytes *resp);

    /** Server: wait for the next request on @p chan. */
    sim::Task serveNext(M3xAct &self, const M3xChan &chan, Bytes *req,
                        MsgHdr *reply_to);

    /** Server: reply to a previously received request. */
    sim::Task replyTo(M3xAct &self, const MsgHdr &reply_to,
                      Bytes resp);

    /** Voluntary exit. */
    sim::Task exit(M3xAct &self);

    // Statistics for the evaluation (registry-backed).
    std::uint64_t slowPaths() const { return slowPaths_->value(); }
    std::uint64_t fastPaths() const { return fastPaths_->value(); }
    std::uint64_t switches() const { return switches_->value(); }
    sim::Tick kernelBusyTicks() const { return kernelBusy_; }

  private:
    class M3xTileDtu;

    struct TileState
    {
        std::unique_ptr<tile::Core> core;
        std::unique_ptr<dtu::Dtu> dtu;
        std::vector<std::unique_ptr<M3xAct>> acts;
        M3xAct *current = nullptr;
        /** Stub state: activity parked by a Save request. */
        bool suspended = false;
    };

    /** Kernel request kinds (syscall messages). */
    struct KernelReq
    {
        enum class Op : std::uint32_t
        {
            Forward, ///< slow-path message delivery
            Blocked, ///< current activity waits for messages
            Exited,  ///< activity terminated
        };
        Op op = Op::Forward;
        dtu::ActId srcAct = dtu::kInvalidAct;
        dtu::ActId dstAct = dtu::kInvalidAct;
        dtu::EpId dstEp = dtu::kInvalidEp;
        std::uint64_t fetched = 0;
        std::uint32_t len = 0;
    };

    /** Stub request (kernel -> tile). */
    struct StubReq
    {
        enum class Op : std::uint32_t
        {
            Save,
            Restore,
        };
        Op op = Op::Save;
        dtu::ActId act = dtu::kInvalidAct;
    };

    // Kernel implementation (runs as the kernel tile's thread).
    sim::Task kernelMain();
    sim::Task handleForward(const KernelReq &req, Bytes payload);
    sim::Task handleBlocked(const KernelReq &req);
    sim::Task switchTile(TileState &ts, M3xAct *next);
    sim::Task stubRequest(TileState &ts, StubReq req);
    sim::Task extEps(TileState &ts, bool write, M3xAct *act);
    sim::Task deliverPending(M3xAct *act);
    sim::Task kernelSend(noc::TileId tile, dtu::EpId ep,
                         Bytes payload, dtu::Error *err);
    M3xAct *pickNext(TileState &ts);
    sim::Task maybeResched(TileState &ts);

    // Tile-stub implementation.
    void stubIrq(unsigned tile_idx);
    void installActEps(unsigned tile_idx, M3xAct *act);

    // Activity helpers.
    sim::Task actSend(M3xAct &self, dtu::EpId sep, Bytes payload,
                      dtu::Error *err);
    sim::Task actWaitMsg(M3xAct &self, dtu::EpId rep, int *slot);
    M3xAct *actById(dtu::ActId id);

    sim::EventQueue &eq_;
    M3xParams params_;
    std::unique_ptr<noc::Noc> noc_;
    std::vector<TileState> tiles_;
    std::unique_ptr<dtu::MemoryTile> mem_;

    std::unique_ptr<tile::Core> kernCore_;
    std::unique_ptr<dtu::Dtu> kernDtu_;
    std::unique_ptr<tile::Thread> kernThread_;
    bool kernWaiting_ = false;
    std::map<dtu::ActId, M3xAct *> actIndex_;
    dtu::ActId nextAct_ = 1;

    sim::Counter *slowPaths_;
    sim::Counter *fastPaths_;
    sim::Counter *switches_;
    sim::Tracer *trc_;
    sim::Tick kernelBusy_ = 0;
};

} // namespace m3v::m3x

#endif // M3VSIM_M3X_SYSTEM_H_
