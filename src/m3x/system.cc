#include "m3x/system.h"

#include <algorithm>
#include <cstring>

#include "sim/log.h"

namespace m3v::m3x {

using dtu::Endpoint;
using dtu::EpId;
using dtu::Error;

namespace {

/** Tile-persistent endpoints. */
constexpr EpId kStubRep = 4;  // kernel -> stub requests
constexpr EpId kKernSep = 6;  // acts/stub -> kernel requests
/** Per-activity endpoint window. */
constexpr EpId kActEpBase = 8;
constexpr EpId kReplyRep = 8; // each activity's reply endpoint
/** Kernel-side endpoints. */
constexpr EpId kKernSyscallRep = 4;
constexpr EpId kKernStubReplyRep = 5;
constexpr EpId kKernFirstStubSep = 8;
constexpr EpId kKernTmpSep = 100;

template <typename T>
Bytes
withPayload(const T &hdr, const Bytes &payload)
{
    Bytes b(sizeof(T) + payload.size());
    std::memcpy(b.data(), &hdr, sizeof(T));
    std::memcpy(b.data() + sizeof(T), payload.data(), payload.size());
    return b;
}

template <typename T>
T
splitPayload(const Bytes &msg, Bytes *payload)
{
    if (msg.size() < sizeof(T))
        sim::panic("m3x: truncated message (%zu bytes)", msg.size());
    T hdr;
    std::memcpy(&hdr, msg.data(), sizeof(T));
    if (payload)
        payload->assign(msg.begin() + static_cast<long>(sizeof(T)),
                        msg.end());
    return hdr;
}

} // namespace

/**
 * An M3x tile's DTU: holds only the current activity's endpoints and
 * rejects messages tagged for any other activity (the check that
 * forces co-located communication onto the slow path).
 */
class M3xSystem::M3xTileDtu : public dtu::Dtu
{
  public:
    M3xTileDtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
               noc::TileId tile, std::uint64_t freq_hz,
               std::function<dtu::ActId()> current)
        : Dtu(eq, std::move(name), noc, tile, freq_hz),
          current_(std::move(current))
    {
    }

  protected:
    Error
    checkIncoming(EpId, const dtu::Endpoint &,
                  const dtu::WireData &wire) const override
    {
        if (wire.dstAct != dtu::kInvalidAct &&
            wire.dstAct != current_())
            return Error::RecvGone;
        return Error::None;
    }

  private:
    std::function<dtu::ActId()> current_;
};

M3xAct::M3xAct(M3xSystem &sys, tile::Core &core, dtu::ActId id,
               unsigned tile_idx, std::string name)
    : sys_(sys), id_(id), tileIdx_(tile_idx), name_(std::move(name)),
      thread_(core, name_ + ".thread", id), nextEp_(kReplyRep + 1)
{
    savedEps_.resize(8);
    savedEps_[0] = Endpoint::makeRecv(0, 4096, 8); // reply endpoint
}

M3xSystem::M3xSystem(sim::EventQueue &eq, M3xParams params)
    : eq_(eq), params_(std::move(params))
{
    slowPaths_ = eq.metrics().counter("m3x.kernel.slowpaths");
    fastPaths_ = eq.metrics().counter("m3x.kernel.fastpaths");
    switches_ = eq.metrics().counter("m3x.kernel.switches");
    trc_ = &eq.tracer();
    if (trc_->anyEnabled()) {
        trc_->setProcessName(kernelTile(), "m3x.kernel");
        trc_->setThreadName(kernelTile(), sim::kTraceTidMux,
                            "kernel");
    }
    noc_ = std::make_unique<noc::Noc>(eq, params_.noc);
    tiles_.resize(params_.userTiles);
    for (unsigned i = 0; i < params_.userTiles; i++) {
        auto tname = "m3x.tile" + std::to_string(i);
        tiles_[i].core = std::make_unique<tile::Core>(
            eq, tname + ".core", params_.coreModel, i);
        tiles_[i].dtu = std::make_unique<M3xTileDtu>(
            eq, tname + ".dtu", *noc_, i, params_.coreModel.freqHz,
            [this, i]() {
                const TileState &ts = tiles_[i];
                return ts.current && !ts.suspended
                           ? ts.current->id()
                           : dtu::kInvalidAct;
            });
    }
    kernCore_ = std::make_unique<tile::Core>(
        eq, "m3x.kern.core", params_.coreModel, kernelTile());
    kernDtu_ = std::make_unique<dtu::Dtu>(eq, "m3x.kern.dtu", *noc_,
                                          kernelTile(),
                                          params_.coreModel.freqHz);
    mem_ = std::make_unique<dtu::MemoryTile>(
        eq, "m3x.mem", *noc_, kernelTile() + 1, params_.dram);
    noc_->finalize();

    // Kernel endpoints.
    kernDtu_->configEp(kKernSyscallRep,
                       Endpoint::makeRecv(0, 4600, 64));
    kernDtu_->configEp(kKernStubReplyRep,
                       Endpoint::makeRecv(0, 64, 8));
    for (unsigned i = 0; i < params_.userTiles; i++) {
        kernDtu_->configEp(
            static_cast<EpId>(kKernFirstStubSep + i),
            Endpoint::makeSend(0, i, kStubRep, i, 2));
    }
    kernDtu_->setMsgNotify([this](EpId, dtu::ActId) {
        if (kernWaiting_) {
            kernWaiting_ = false;
            kernThread_->wake();
        }
    });

    // Tile-persistent endpoints + stub wiring.
    for (unsigned i = 0; i < params_.userTiles; i++) {
        TileState &ts = tiles_[i];
        ts.dtu->configEp(kStubRep, Endpoint::makeRecv(0, 64, 4));
        ts.dtu->configEp(
            kKernSep, Endpoint::makeSend(0, kernelTile(),
                                         kKernSyscallRep, i, 16,
                                         4600));
        ts.core->setIrqHandler(
            [this, i](tile::IrqKind) { stubIrq(i); });
        ts.dtu->setMsgNotify([this, i](EpId ep, dtu::ActId) {
            TileState &t = tiles_[i];
            if (ep == kStubRep) {
                t.core->raiseIrq(tile::IrqKind::CoreRequest);
                return;
            }
            if (t.current && !t.suspended &&
                t.current->state() != M3xAct::State::Dead)
                t.current->thread_.wake();
        });
    }

    // The kernel main loop.
    kernThread_ = std::make_unique<tile::Thread>(*kernCore_,
                                                 "m3x.kern.thread", 0);
    kernThread_->start(kernelMain());
    kernCore_->dispatch(kernThread_.get());
}

M3xSystem::~M3xSystem() = default;

M3xAct *
M3xSystem::createAct(unsigned tile_idx, const std::string &name)
{
    TileState &ts = tiles_.at(tile_idx);
    auto act = std::make_unique<M3xAct>(*this, *ts.core, nextAct_++,
                                        tile_idx, name);
    if (params_.epsPerAct > act->savedEps_.size())
        act->savedEps_.resize(params_.epsPerAct);
    M3xAct *ptr = act.get();
    ts.acts.push_back(std::move(act));
    actIndex_[ptr->id()] = ptr;
    return ptr;
}

M3xChan
M3xSystem::makeChannel(M3xAct *owner, std::size_t slot_size,
                       std::size_t slots)
{
    EpId rep = owner->nextEp_++;
    if (rep >= kActEpBase + params_.epsPerAct)
        sim::fatal("m3x: activity %s out of endpoints",
                   owner->name().c_str());
    owner->savedEps_.at(rep - kActEpBase) =
        Endpoint::makeRecv(0, slot_size, slots);
    return M3xChan{owner, rep};
}

EpId
M3xSystem::addSender(const M3xChan &chan, M3xAct *sender,
                     std::uint32_t credits)
{
    EpId sep = sender->nextEp_++;
    if (sep >= kActEpBase + params_.epsPerAct)
        sim::fatal("m3x: activity %s out of endpoints",
                   sender->name().c_str());
    const dtu::Endpoint &rep_ep =
        chan.owner->savedEps_.at(chan.rep - kActEpBase);
    dtu::Endpoint ep = Endpoint::makeSend(
        0, chan.owner->tileIdx(), chan.rep, sender->id(), credits,
        rep_ep.recv.slotSize);
    ep.send.destAct = chan.owner->id();
    sender->savedEps_.at(sep - kActEpBase) = ep;
    return sep;
}

void
M3xSystem::installActEps(unsigned tile_idx, M3xAct *act)
{
    TileState &ts = tiles_[tile_idx];
    for (EpId j = 0; j < params_.epsPerAct; j++)
        ts.dtu->configEp(kActEpBase + j, act->savedEps_[j]);
}

void
M3xSystem::start(M3xAct *act, sim::Task body)
{
    act->thread_.start(std::move(body));
    TileState &ts = tiles_[act->tileIdx()];
    if (!ts.current) {
        // Boot: the first activity per tile starts installed.
        ts.current = act;
        act->state_ = M3xAct::State::Current;
        installActEps(act->tileIdx(), act);
        ts.core->dispatch(&act->thread_);
    } else {
        act->state_ = M3xAct::State::Ready;
    }
}

//
// Tile stub.
//

void
M3xSystem::stubIrq(unsigned tile_idx)
{
    TileState &ts = tiles_[tile_idx];
    tile::Core &core = *ts.core;
    core.kernelWork(params_.stubEntryCost, [this, &ts, &core]() {
        int slot = ts.dtu->fetch(0, kStubRep);
        if (slot < 0) {
            // Spurious (e.g. raced with an earlier handler).
            if (ts.current && !ts.suspended &&
                ts.current->state() != M3xAct::State::Dead) {
                core.kernelExitTo(&ts.current->thread_);
            } else {
                core.kernelExitIdle();
            }
            return;
        }
        StubReq req = splitPayload<StubReq>(
            ts.dtu->slotMsg(kStubRep, slot).payload, nullptr);
        switch (req.op) {
          case StubReq::Op::Save: {
            ts.suspended = true;
            core.kernelWork(params_.stubSaveCost, [this, &ts, &core,
                                                   slot]() {
                ts.dtu->cmdReply(0, kStubRep, slot, 0, Bytes{1},
                                 [](Error) {});
                core.kernelExitIdle();
            });
            break;
          }
          case StubReq::Op::Restore: {
            M3xAct *act = actById(req.act);
            core.kernelWork(params_.stubRestoreCost,
                            [this, &ts, &core, act, slot]() {
                ts.dtu->cmdReply(0, kStubRep, slot, 0, Bytes{1},
                                 [](Error) {});
                ts.current = act;
                ts.suspended = false;
                act->state_ = M3xAct::State::Current;
                core.kernelExitTo(&act->thread_);
            });
            break;
          }
        }
    });
}

//
// Activity-side operations.
//

M3xAct *
M3xSystem::actById(dtu::ActId id)
{
    auto it = actIndex_.find(id);
    return it == actIndex_.end() ? nullptr : it->second;
}

sim::Task
M3xSystem::actSend(M3xAct &self, EpId sep, Bytes payload, Error *err)
{
    auto &t = self.thread_;
    const auto &m = t.core().model();
    co_await t.compute(4 * m.mmioWriteCycles + m.mmioReadCycles);
    Error e = Error::Aborted;
    bool done = false;
    t.clearWake();
    tiles_[self.tileIdx()].dtu->cmdSend(0, sep, 0, std::move(payload),
                                        dtu::kInvalidEp,
                                        [&](Error res) {
                                            e = res;
                                            done = true;
                                            t.wake();
                                        });
    while (!done)
        co_await t.externalWait();
    *err = e;
}

sim::Task
M3xSystem::actWaitMsg(M3xAct &self, EpId rep, int *slot)
{
    auto &t = self.thread_;
    const auto &m = t.core().model();
    dtu::Dtu &d = *tiles_[self.tileIdx()].dtu;
    bool notified = false;
    for (;;) {
        co_await t.compute(m.mmioWriteCycles + m.mmioReadCycles);
        int s = d.fetch(0, rep);
        if (s >= 0) {
            if (d.slotMsg(rep, s).srcTile == kernelTile())
                self.fetched_++;
            *slot = s;
            co_return;
        }
        if (!notified) {
            // Nothing here: notify the kernel that we block. The
            // send consumes wake latches, so loop back and re-fetch
            // before actually sleeping (a delivery may race with the
            // notification; the kernel spots the stale Blocked via
            // the fetch counters).
            notified = true;
            KernelReq req;
            req.op = KernelReq::Op::Blocked;
            req.srcAct = self.id();
            req.fetched = self.fetched_;
            Error err = Error::None;
            co_await actSend(self, kKernSep, os::podBytes(req),
                             &err);
            continue;
        }
        notified = false;
        co_await t.externalWait();
    }
}

sim::Task
M3xSystem::rpc(M3xAct &self, const M3xChan &chan, EpId direct_sep,
               Bytes req, Bytes *resp)
{
    MsgHdr hdr;
    hdr.replyTile = self.tileIdx();
    hdr.replyAct = self.id();
    hdr.replyEp = kReplyRep;
    hdr.label = self.id();
    Bytes payload = withPayload(hdr, req);

    // Fast path first: works iff the recipient is currently running.
    Error err = Error::Aborted;
    co_await actSend(self, direct_sep, payload, &err);
    if (err == Error::None) {
        fastPaths_->inc();
        trc_->instant(sim::TraceCat::M3x, kernelTile(),
                      sim::kTraceTidMux, "fast_path");
    } else if (err == Error::RecvGone || err == Error::NoCredits) {
        // Slow path: forward through the kernel (section 2.2).
        slowPaths_->inc();
        trc_->instant(sim::TraceCat::M3x, kernelTile(),
                      sim::kTraceTidMux, "slow_path");
        KernelReq kr;
        kr.op = KernelReq::Op::Forward;
        kr.srcAct = self.id();
        kr.dstAct = chan.owner->id();
        kr.dstEp = chan.rep;
        kr.len = static_cast<std::uint32_t>(payload.size());
        co_await actSend(self, kKernSep, withPayload(kr, payload),
                         &err);
        if (err != Error::None)
            sim::panic("m3x: forward to kernel failed: %s",
                       dtu::errorName(err));
    } else {
        sim::panic("m3x: send failed: %s", dtu::errorName(err));
    }

    // Await the reply on our reply endpoint.
    int slot = -1;
    co_await actWaitMsg(self, kReplyRep, &slot);
    dtu::Dtu &d = *tiles_[self.tileIdx()].dtu;
    const dtu::Message &m = d.slotMsg(kReplyRep, slot);
    co_await self.thread_.compute(m.payload.size() / 8 + 2);
    splitPayload<MsgHdr>(m.payload, resp);
    co_await self.thread_.compute(
        self.thread_.core().model().mmioWriteCycles);
    d.ack(0, kReplyRep, slot);
}

sim::Task
M3xSystem::serveNext(M3xAct &self, const M3xChan &chan, Bytes *req,
                     MsgHdr *reply_to)
{
    int slot = -1;
    co_await actWaitMsg(self, chan.rep, &slot);
    dtu::Dtu &d = *tiles_[self.tileIdx()].dtu;
    const dtu::Message &m = d.slotMsg(chan.rep, slot);
    co_await self.thread_.compute(m.payload.size() / 8 + 2);
    *reply_to = splitPayload<MsgHdr>(m.payload, req);
    co_await self.thread_.compute(
        self.thread_.core().model().mmioWriteCycles);
    d.ack(0, chan.rep, slot);
}

sim::Task
M3xSystem::replyTo(M3xAct &self, const MsgHdr &reply_to, Bytes resp)
{
    // Replies carry an empty header (no further replies expected).
    Bytes payload = withPayload(MsgHdr{}, resp);

    // A direct reply would need the requester to still be running;
    // on a shared tile it never is, so go through the kernel.
    // (Direct delivery is attempted by the kernel if possible.)
    slowPaths_->inc();
    KernelReq kr;
    kr.op = KernelReq::Op::Forward;
    kr.srcAct = self.id();
    kr.dstAct = reply_to.replyAct;
    kr.dstEp = reply_to.replyEp;
    kr.len = static_cast<std::uint32_t>(payload.size());
    Error err = Error::None;
    co_await actSend(self, kKernSep, withPayload(kr, payload), &err);
    if (err != Error::None)
        sim::panic("m3x: reply forward failed: %s",
                   dtu::errorName(err));
}

sim::Task
M3xSystem::exit(M3xAct &self)
{
    KernelReq kr;
    kr.op = KernelReq::Op::Exited;
    kr.srcAct = self.id();
    Error err = Error::None;
    co_await actSend(self, kKernSep, os::podBytes(kr), &err);
    self.state_ = M3xAct::State::Dead;
    if (self.onExit)
        eq_.schedule(0, [&self]() { self.onExit(); });
    co_await self.thread_.externalWait(); // never resumed
    sim::panic("m3x: exited activity resumed");
}

//
// Kernel.
//

sim::Task
M3xSystem::kernelMain()
{
    auto &t = *kernThread_;
    const auto &m = kernCore_->model();
    for (;;) {
        co_await t.compute(m.mmioWriteCycles + m.mmioReadCycles);
        int slot = kernDtu_->fetch(0, kKernSyscallRep);
        if (slot < 0) {
            kernWaiting_ = true;
            co_await t.externalWait();
            continue;
        }
        sim::Tick t0 = eq_.now();
        dtu::Message msg = kernDtu_->slotMsg(kKernSyscallRep, slot);
        co_await t.compute(m.mmioWriteCycles);
        kernDtu_->ack(0, kKernSyscallRep, slot);

        Bytes payload;
        KernelReq req = splitPayload<KernelReq>(msg.payload,
                                                &payload);
        co_await t.compute(params_.kernelHandlerCost);

        switch (req.op) {
          case KernelReq::Op::Forward:
            co_await handleForward(req, std::move(payload));
            break;
          case KernelReq::Op::Blocked:
            co_await handleBlocked(req);
            break;
          case KernelReq::Op::Exited: {
            M3xAct *act = actById(req.srcAct);
            if (act) {
                TileState &ts = tiles_[act->tileIdx()];
                if (ts.current == act)
                    ts.current = nullptr;
                co_await maybeResched(ts);
            }
            break;
          }
        }
        kernelBusy_ += eq_.now() - t0;
    }
}

sim::Task
M3xSystem::handleForward(const KernelReq &req, Bytes payload)
{
    M3xAct *dst = actById(req.dstAct);
    if (!dst || dst->state_ == M3xAct::State::Dead)
        co_return;
    dst->pending_.push_back(
        M3xAct::PendingMsg{req.dstEp, std::move(payload)});
    if (dst->state_ == M3xAct::State::Blocked)
        dst->state_ = M3xAct::State::Ready;

    TileState &ts = tiles_[dst->tileIdx()];
    if (ts.current != dst)
        co_await switchTile(ts, dst);
    co_await deliverPending(dst);
}

sim::Task
M3xSystem::handleBlocked(const KernelReq &req)
{
    M3xAct *act = actById(req.srcAct);
    if (!act)
        co_return;
    // Stale notification: messages were delivered after the activity
    // sampled its fetch counter; it has (or will get) work.
    if (act->delivered_ > req.fetched)
        co_return;
    act->state_ = M3xAct::State::Blocked;
    TileState &ts = tiles_[act->tileIdx()];
    if (ts.current == act)
        co_await maybeResched(ts);
}

M3xAct *
M3xSystem::pickNext(TileState &ts)
{
    for (auto &a : ts.acts) {
        if (a.get() == ts.current)
            continue;
        if (a->state_ == M3xAct::State::Ready ||
            (!a->pending_.empty() &&
             a->state_ != M3xAct::State::Dead))
            return a.get();
    }
    return nullptr;
}

sim::Task
M3xSystem::maybeResched(TileState &ts)
{
    M3xAct *next = pickNext(ts);
    if (!next)
        co_return;
    co_await switchTile(ts, next);
    co_await deliverPending(next);
}

sim::Task
M3xSystem::switchTile(TileState &ts, M3xAct *next)
{
    if (ts.current == next)
        co_return;
    switches_->inc();
    trc_->begin(sim::TraceCat::M3x, kernelTile(), sim::kTraceTidMux,
                "remote_switch");
    co_await kernThread_->compute(params_.kernelSwitchCost);

    if (ts.current) {
        M3xAct *old = ts.current;
        // 1. Ask the stub to suspend the current activity.
        StubReq sr;
        sr.op = StubReq::Op::Save;
        co_await stubRequest(ts, sr);
        // 2. Save its endpoint state over the NoC.
        co_await extEps(ts, false, old);
        if (old->state_ == M3xAct::State::Current)
            old->state_ = M3xAct::State::Ready;
        ts.current = nullptr;
    }

    // 3. Restore the next activity's endpoints.
    co_await extEps(ts, true, next);
    // 4. Resume the tile with the next activity.
    StubReq sr;
    sr.op = StubReq::Op::Restore;
    sr.act = next->id();
    co_await stubRequest(ts, sr);
    // (ts.current / state are updated by the stub at restore time.)
    trc_->end(sim::TraceCat::M3x, kernelTile(), sim::kTraceTidMux);
}

sim::Task
M3xSystem::stubRequest(TileState &ts, StubReq req)
{
    auto &t = *kernThread_;
    const auto &m = kernCore_->model();
    co_await t.compute(4 * m.mmioWriteCycles + m.mmioReadCycles);
    unsigned tile_idx =
        static_cast<unsigned>(ts.core->tileId());
    Error err = Error::Aborted;
    bool done = false;
    t.clearWake();
    kernDtu_->cmdSend(
        0, static_cast<EpId>(kKernFirstStubSep + tile_idx), 0,
        withPayload(req, {}), kKernStubReplyRep, [&](Error e) {
            err = e;
            done = true;
            t.wake();
        });
    while (!done)
        co_await t.externalWait();
    if (err != Error::None)
        sim::panic("m3x: stub request failed: %s",
                   dtu::errorName(err));

    // Await the stub's completion reply.
    for (;;) {
        co_await t.compute(m.mmioWriteCycles + m.mmioReadCycles);
        int slot = kernDtu_->fetch(0, kKernStubReplyRep);
        if (slot >= 0) {
            co_await t.compute(m.mmioWriteCycles);
            kernDtu_->ack(0, kKernStubReplyRep, slot);
            co_return;
        }
        kernWaiting_ = true;
        co_await t.externalWait();
    }
}

sim::Task
M3xSystem::extEps(TileState &ts, bool write, M3xAct *act)
{
    auto &t = *kernThread_;
    const auto &m = kernCore_->model();
    co_await t.compute(2 * m.mmioWriteCycles);
    Error err = Error::Aborted;
    bool done = false;
    t.clearWake();
    noc::TileId tile = ts.core->tileId();
    if (write) {
        kernDtu_->extRequest(
            tile, dtu::ExtOp::WriteEps, kActEpBase, act->savedEps_,
            params_.epsPerAct,
            [&](Error e, std::vector<Endpoint>) {
                err = e;
                done = true;
                t.wake();
            });
    } else {
        kernDtu_->extRequest(
            tile, dtu::ExtOp::ReadEps, kActEpBase, {},
            params_.epsPerAct,
            [&](Error e, std::vector<Endpoint> eps) {
                err = e;
                act->savedEps_ = std::move(eps);
                done = true;
                t.wake();
            });
    }
    while (!done)
        co_await t.externalWait();
    if (err != Error::None)
        sim::panic("m3x: EP save/restore failed: %s",
                   dtu::errorName(err));
}

sim::Task
M3xSystem::deliverPending(M3xAct *act)
{
    while (!act->pending_.empty()) {
        auto msg = std::move(act->pending_.front());
        act->pending_.pop_front();
        Error err = Error::Aborted;
        co_await kernelSend(act->tileIdx(), msg.ep,
                            std::move(msg.payload), &err);
        if (err != Error::None)
            sim::warn("m3x: delivery to %s failed: %s",
                      act->name().c_str(), dtu::errorName(err));
        act->delivered_++;
    }
}

sim::Task
M3xSystem::kernelSend(noc::TileId tile, EpId ep, Bytes payload,
                      Error *err)
{
    auto &t = *kernThread_;
    const auto &m = kernCore_->model();
    co_await t.compute(6 * m.mmioWriteCycles + m.mmioReadCycles);
    kernDtu_->configEp(kKernTmpSep,
                       Endpoint::makeSend(0, tile, ep, 0, 1, 4600));
    Error e = Error::Aborted;
    bool done = false;
    t.clearWake();
    kernDtu_->cmdSend(0, kKernTmpSep, 0, std::move(payload),
                      dtu::kInvalidEp, [&](Error res) {
                          e = res;
                          done = true;
                          t.wake();
                      });
    while (!done)
        co_await t.externalWait();
    *err = e;
}

} // namespace m3v::m3x
