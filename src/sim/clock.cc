#include "sim/clock.h"

#include "sim/log.h"

namespace m3v::sim {

Clock::Clock(std::uint64_t freq_hz)
    : freqHz_(freq_hz)
{
    if (freq_hz == 0)
        panic("Clock: zero frequency");
}

Tick
Clock::cyclesToTicks(Cycles c) const
{
    using U128 = unsigned __int128;
    U128 t = static_cast<U128>(c) * kTicksPerSec;
    return static_cast<Tick>(t / freqHz_);
}

Cycles
Clock::ticksToCycles(Tick t) const
{
    using U128 = unsigned __int128;
    U128 c = static_cast<U128>(t) * freqHz_;
    return static_cast<Cycles>(c / kTicksPerSec);
}

Tick
Clock::period() const
{
    return (kTicksPerSec + freqHz_ / 2) / freqHz_;
}

} // namespace m3v::sim
