/**
 * @file
 * The discrete-event simulation core: a single global-order event queue.
 *
 * Events scheduled for the same tick fire in scheduling order (stable
 * FIFO via a sequence number), which keeps simulations deterministic.
 * schedule() returns a handle that can cancel the event (used e.g. when
 * a compute phase is preempted by an interrupt).
 *
 * The implementation is allocation-free in steady state:
 *
 *  - Event closures live in a slab-pooled event record; the closure
 *    itself is stored inline in the record via UniqueFunction's small
 *    buffer (captures up to 48 bytes — which covers the simulator's
 *    dominant [this]/[h]-style handlers). Freed records are recycled
 *    through an intrusive freelist.
 *
 *  - EventHandle addresses its record by {slot index, generation}.
 *    cancel()/pending() are two loads and a compare; a handle whose
 *    record was recycled (fired, cancelled, or reused) sees a
 *    generation mismatch and is inert. Handles must not outlive their
 *    EventQueue.
 *
 *  - Ordering uses a two-level calendar queue: a near-future wheel of
 *    kNumBuckets buckets, each kTicksPerBucket ticks wide, over a
 *    sorted binary heap for events beyond the wheel horizon (~1 µs).
 *    Same-tick schedules go to a dedicated FIFO ring, so the common
 *    schedule(0, ...) pattern (task resumptions, channel wakeups)
 *    never touches the wheel at all. Buckets are append-only and
 *    sorted lazily when the wheel reaches them. Cancelled events
 *    leave a tombstone entry that is discarded when encountered.
 *
 * Pop order is exactly (tick, seq) — bit-identical to the previous
 * single binary-heap implementation.
 */

#ifndef M3VSIM_SIM_EVENT_QUEUE_H_
#define M3VSIM_SIM_EVENT_QUEUE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.h"
#include "sim/unique_function.h"

namespace m3v::sim {

class EventQueue;
class Invariants;
class MetricsRegistry;
class Tracer;

/**
 * Cancellation handle for a scheduled event. Default-constructed
 * handles are inert. Cancelling an already-fired or already-cancelled
 * event is a no-op. Handles are cheap to copy (pointer + slot +
 * generation) and must not be used after their EventQueue is gone.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent the event from firing. Returns true if it was pending. */
    bool cancel();

    /** True if the event is still pending (not fired, not cancelled). */
    bool pending() const;

  private:
    friend class EventQueue;

    EventHandle(EventQueue *q, std::uint32_t slot, std::uint32_t gen)
        : queue_(q), slot_(slot), gen_(gen)
    {
    }

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/** The simulation's event queue and clock. */
class EventQueue
{
  public:
    /** log2 of the tick width of one wheel bucket (~2 ns). */
    static constexpr unsigned kBucketTickShift = 11;
    /** Number of wheel buckets; horizon = buckets * width ~= 1.05 us.
     *  Kept small enough that constructing a queue stays cheap. */
    static constexpr std::size_t kNumBuckets = 512;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * The queue currently executing an event on this thread, or
     * nullptr. Used by coroutine machinery to defer resumptions out
     * of deep resume stacks (see sim::Task's final awaiter).
     */
    static EventQueue *running();

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle schedule(Tick delay, UniqueFunction<void()> fn);

    /** Schedule @p fn at absolute tick @p when (>= now). */
    EventHandle scheduleAt(Tick when, UniqueFunction<void()> fn);

    /** True if no live (non-cancelled) events are pending. */
    bool empty() const { return livePending_ == 0; }

    /**
     * Number of live pending events. Cancelled events are removed
     * from this count immediately at cancel() time.
     */
    std::size_t pending() const { return livePending_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run the next event. Returns false if no live event is pending.
     * Advances now() to the event's tick.
     */
    bool runOne();

    /** Run until the queue is empty. */
    void run();

    /**
     * Run events with tick <= @p when, then advance now() to @p when.
     * Events scheduled exactly at @p when do fire. Cancelled events
     * sitting at the queue front are discarded lazily and never delay
     * the fast-forward of now().
     */
    void runUntil(Tick when);

    /**
     * Run until the queue drains or @p max_events have executed.
     * Returns true if no live events remain.
     */
    bool runCapped(std::uint64_t max_events);

    /**
     * Run events with tick strictly below @p limit, leaving now() at
     * the last executed event. The conservative-window primitive of
     * the parallel scheduler (sim::LaneScheduler): a lane executes
     * one window [W, W + lookahead) per round.
     */
    void runBefore(Tick limit);

    /**
     * Tick of the next live event without consuming it (tombstones
     * of cancelled events are discarded on the way). Returns false
     * if the queue is empty.
     */
    bool peekNextTick(Tick *out);

    /**
     * This simulation's metrics registry (lazily created). Components
     * register instruments here at construction and keep the handles;
     * the scheduling hot path never touches the registry.
     */
    MetricsRegistry &metrics();

    /**
     * This simulation's tracer (lazily created, all categories off by
     * default). Components cache the pointer at construction.
     */
    Tracer &tracer();

    /**
     * Attach a runtime invariant checker (tests only; see
     * sim/invariants.h): after every @p stride executed events its
     * EveryBoundary checks run, and the event-record pool reports
     * double frees to it instead of aborting. nullptr detaches. An
     * unattached queue pays one null test per event.
     */
    void setInvariants(Invariants *inv, std::uint64_t stride = 1);

  private:
    friend class EventHandle;

    static constexpr std::size_t kBucketMask = kNumBuckets - 1;
    static constexpr std::size_t kBitmapWords = kNumBuckets / 64;
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
    /** Records per slab (power of two). */
    static constexpr std::size_t kSlabShift = 8;
    static constexpr std::size_t kSlabSize = std::size_t{1}
                                             << kSlabShift;

    /**
     * A queue position referencing a pooled record. If the record's
     * generation no longer matches, the entry is a tombstone of a
     * cancelled (or already recycled) event and is skipped.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /**
     * One wheel bucket: entries appended in schedule order, sorted by
     * (when, seq) on first drain, consumed via a head cursor.
     */
    struct Bucket
    {
        std::vector<Entry> items;
        std::uint32_t head = 0;
        bool sorted = true;
    };

    /** A pooled event record; the closure is stored inline via
     *  UniqueFunction's small buffer whenever it fits. */
    struct Record
    {
        UniqueFunction<void()> fn;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = kNoSlot;
        /** On the freelist (fresh records start pooled). Guards the
         *  pool against double frees — see freeRecord(). */
        bool pooled = true;
    };

    /** Where the current pop candidate lives. */
    enum class Src
    {
        NowFifo,
        Wheel,
        Overflow,
    };

    Record &recordAt(std::uint32_t slot);
    const Record &recordAt(std::uint32_t slot) const;
    std::uint32_t allocRecord(UniqueFunction<void()> fn);
    void freeRecord(std::uint32_t slot);
    void reportDoubleFree(std::uint32_t slot);
    void addSlab();

    bool cancelSlot(std::uint32_t slot, std::uint32_t gen);
    bool isLive(std::uint32_t slot, std::uint32_t gen) const;

    void insertEntry(const Entry &e);
    void wheelPush(const Entry &e);
    void overflowPush(const Entry &e);
    Entry overflowPop();
    void rebase(std::uint64_t new_slot);
    void prepareBucket(Bucket &b);
    void markBucket(std::size_t idx);
    void clearBucketBit(std::size_t idx);
    std::size_t findMarkedFrom(std::size_t start) const;

    /**
     * Locate the next entry in (when, seq) order, structurally
     * discarding tombstones on the way. With @p consume the live
     * entry is removed from its container as well. Returns false if
     * nothing live remains.
     */
    bool nextLive(Entry &out, bool consume);
    void consumeFrom(Src src, std::size_t bucket_idx);

    bool popAndRun();

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t livePending_ = 0;

    /** Wheel base in bucket space (now_ >> kBucketTickShift, lazily
     *  advanced). Bucket index of slot s is s & kBucketMask. */
    std::uint64_t baseSlot_ = 0;
    /** Structural entries (incl. tombstones) in the wheel. */
    std::size_t wheelCount_ = 0;
    std::array<Bucket, kNumBuckets> wheel_;
    /** Bit per bucket: set iff the bucket has unconsumed entries. */
    std::array<std::uint64_t, kBitmapWords> bitmap_{};

    /** FIFO of events scheduled exactly at now_. */
    std::vector<Entry> nowFifo_;
    std::size_t nowHead_ = 0;

    /** Min-heap on (when, seq) for events beyond the wheel horizon. */
    std::vector<Entry> overflow_;

    /** Slab-pooled event records with an intrusive freelist. */
    std::vector<std::unique_ptr<Record[]>> slabs_;
    std::uint32_t freeHead_ = kNoSlot;

    /** Observability (lazy: never allocated by pure event-core use). */
    std::unique_ptr<MetricsRegistry> metrics_;
    std::unique_ptr<Tracer> tracer_;

    /** Invariant checker (tests only; nullptr in production). */
    Invariants *inv_ = nullptr;
    std::uint64_t invStride_ = 1;
    std::uint64_t invCountdown_ = 1;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_EVENT_QUEUE_H_
