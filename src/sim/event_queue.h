/**
 * @file
 * The discrete-event simulation core: a single global-order event queue.
 *
 * Events scheduled for the same tick fire in scheduling order (stable
 * FIFO via a sequence number), which keeps simulations deterministic.
 * schedule() returns a handle that can cancel the event (used e.g. when
 * a compute phase is preempted by an interrupt).
 */

#ifndef M3VSIM_SIM_EVENT_QUEUE_H_
#define M3VSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.h"
#include "sim/unique_function.h"

namespace m3v::sim {

class EventQueue;

/**
 * Cancellation handle for a scheduled event. Default-constructed
 * handles are inert. Cancelling an already-fired or already-cancelled
 * event is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent the event from firing. Returns true if it was pending. */
    bool cancel();

    /** True if the event is still pending (not fired, not cancelled). */
    bool pending() const;

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool fired = false;
    };

    explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}

    std::shared_ptr<State> state_;
};

/** The simulation's event queue and clock. */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * The queue currently executing an event on this thread, or
     * nullptr. Used by coroutine machinery to defer resumptions out
     * of deep resume stacks (see sim::Task's final awaiter).
     */
    static EventQueue *running();

    /** Schedule @p fn to run @p delay ticks from now. */
    EventHandle schedule(Tick delay, UniqueFunction<void()> fn);

    /** Schedule @p fn at absolute tick @p when (>= now). */
    EventHandle scheduleAt(Tick when, UniqueFunction<void()> fn);

    /** True if no events are pending. */
    bool empty() const;

    /**
     * Number of pending events. Cancelled events still sitting in the
     * heap are counted until they are discarded during execution.
     */
    std::size_t pending() const { return livePending_; }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run the next event. Returns false if the queue is empty.
     * Advances now() to the event's tick.
     */
    bool runOne();

    /** Run until the queue is empty. */
    void run();

    /**
     * Run events with tick <= @p when, then advance now() to @p when.
     * Events scheduled exactly at @p when do fire.
     */
    void runUntil(Tick when);

    /**
     * Run until the queue drains or @p max_events have executed.
     * Returns true if the queue drained.
     */
    bool runCapped(std::uint64_t max_events);

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        UniqueFunction<void()> fn;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool popAndRun();
    Item popTop();

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    mutable std::size_t livePending_ = 0;
    /** Min-heap on (when, seq), managed with std::push_heap/pop_heap
     *  because items hold move-only closures. */
    std::vector<Item> queue_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_EVENT_QUEUE_H_
