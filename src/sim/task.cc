#include "sim/task.h"

namespace m3v::sim {

TaskPool::~TaskPool()
{
    for (auto &[id, entry] : tasks_) {
        if (entry.handle)
            entry.handle.destroy();
    }
    tasks_.clear();
}

void
TaskPool::spawn(Task t, std::string name)
{
    if (!t.valid())
        panic("TaskPool::spawn: invalid task '%s'", name.c_str());

    std::uint64_t id = nextId_++;
    Task::Handle h = t.release();
    tasks_.emplace(id, Entry{h, std::move(name)});

    // Defer frame destruction to a fresh event so we never destroy a
    // coroutine while unwinding out of its own final suspend point.
    h.promise().onDone = [this, id]() {
        eq_.schedule(0, [this, id]() {
            auto it = tasks_.find(id);
            if (it == tasks_.end())
                return;
            it->second.handle.destroy();
            tasks_.erase(it);
        });
    };

    h.resume();
}

} // namespace m3v::sim
