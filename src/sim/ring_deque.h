/**
 * @file
 * A growable power-of-two ring used as a FIFO deque.
 *
 * std::deque allocates and frees fixed-size chunks as elements cross
 * chunk boundaries, so even a bounded steady-state producer/consumer
 * pair churns the heap. RingDeque keeps one contiguous slot array
 * that only grows (doubling, never shrinking), so a warmed-up queue
 * performs zero allocations regardless of how many elements pass
 * through it — the property the zero-alloc message-path assertions
 * rely on (see tests/dtu/msgpath_test.cc).
 *
 * Single-threaded; the elements only need to be movable.
 */

#ifndef M3VSIM_SIM_RING_DEQUE_H_
#define M3VSIM_SIM_RING_DEQUE_H_

#include <cstddef>
#include <memory>
#include <utility>

namespace m3v::sim {

/** Bounded-churn FIFO: push_back/pop_front with amortized growth. */
template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    RingDeque(RingDeque &&o) noexcept
        : slots_(std::move(o.slots_)), mask_(o.mask_),
          head_(o.head_), size_(o.size_)
    {
        o.mask_ = 0;
        o.head_ = 0;
        o.size_ = 0;
    }

    RingDeque &
    operator=(RingDeque &&o) noexcept
    {
        slots_ = std::move(o.slots_);
        mask_ = o.mask_;
        head_ = o.head_;
        size_ = o.size_;
        o.mask_ = 0;
        o.head_ = 0;
        o.size_ = 0;
        return *this;
    }

    RingDeque(const RingDeque &) = delete;
    RingDeque &operator=(const RingDeque &) = delete;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Slots currently reserved (for tests). */
    std::size_t capacity() const { return slots_ ? mask_ + 1 : 0; }

    void
    push_back(T &&v)
    {
        if (!slots_ || size_ == mask_ + 1)
            grow();
        slots_[(head_ + size_) & mask_] = std::move(v);
        size_++;
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }

    T &back() { return slots_[(head_ + size_ - 1) & mask_]; }
    const T &back() const
    {
        return slots_[(head_ + size_ - 1) & mask_];
    }

    /** Element @p i counting from the front (0 = front()). */
    T &operator[](std::size_t i)
    {
        return slots_[(head_ + i) & mask_];
    }
    const T &operator[](std::size_t i) const
    {
        return slots_[(head_ + i) & mask_];
    }

    void
    pop_front()
    {
        slots_[head_] = T();
        head_ = (head_ + 1) & mask_;
        size_--;
    }

    void
    clear()
    {
        while (size_)
            pop_front();
    }

  private:
    void
    grow()
    {
        std::size_t cap = slots_ ? (mask_ + 1) * 2 : kInitialSlots;
        auto next = std::make_unique<T[]>(cap);
        for (std::size_t i = 0; i < size_; i++)
            next[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(next);
        mask_ = cap - 1;
        head_ = 0;
    }

    static constexpr std::size_t kInitialSlots = 8;

    std::unique_ptr<T[]> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_RING_DEQUE_H_
