/**
 * @file
 * A bounded multi-producer single-consumer ring (Vyukov's bounded
 * MPMC queue, used with one consumer).
 *
 * The lane scheduler's fan-in aggregation: instead of one SPSC
 * mailbox per (src, dst) lane pair — n² rings, each drained at every
 * barrier — every destination lane owns a single combining ring that
 * all source lanes push into concurrently. Producers claim cells with
 * one fetch_add on the enqueue cursor; the per-cell sequence number
 * tells each side when its cell is ready, so pushes from different
 * producers never wait on each other. The consumer (the barrier
 * thread) drains in cell order.
 *
 * Note the ring's pop order interleaves producers arbitrarily; the
 * scheduler restores the canonical (due, srcLane, dstLane, seq) order
 * by sorting at the barrier, exactly as it did for SPSC mailboxes, so
 * determinism is unaffected.
 */

#ifndef M3VSIM_SIM_MPSC_H_
#define M3VSIM_SIM_MPSC_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

namespace m3v::sim {

/** Bounded MPSC ring. tryPush is lock-free; tryPop is consumer-only. */
template <typename T>
class MpscRing
{
  public:
    explicit MpscRing(std::size_t capacity)
        : mask_(std::bit_ceil(capacity < 2 ? 2 : capacity) - 1),
          cells_(std::make_unique<Cell[]>(mask_ + 1))
    {
        for (std::size_t i = 0; i <= mask_; i++)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Usable capacity (requested, rounded up to a power of two). */
    std::size_t capacity() const { return mask_ + 1; }

    /** Any-producer enqueue; false when the ring is full. */
    bool
    tryPush(T &&v)
    {
        std::size_t pos = enq_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &c = cells_[pos & mask_];
            std::size_t seq = c.seq.load(std::memory_order_acquire);
            std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                if (enq_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    c.val = std::move(v);
                    c.seq.store(pos + 1,
                                std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = enq_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Single-consumer dequeue; false when empty. */
    bool
    tryPop(T &out)
    {
        Cell &c = cells_[deq_ & mask_];
        std::size_t seq = c.seq.load(std::memory_order_acquire);
        if (static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(deq_ + 1) <
            0)
            return false;
        out = std::move(c.val);
        c.val = T();
        c.seq.store(deq_ + mask_ + 1, std::memory_order_release);
        deq_++;
        return true;
    }

    /** Consumer-side emptiness check. */
    bool
    empty() const
    {
        const Cell &c = cells_[deq_ & mask_];
        std::size_t seq = c.seq.load(std::memory_order_acquire);
        return static_cast<std::intptr_t>(seq) -
                   static_cast<std::intptr_t>(deq_ + 1) <
               0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T val{};
    };

    std::size_t mask_;
    std::unique_ptr<Cell[]> cells_;
    alignas(64) std::atomic<std::size_t> enq_{0};
    /** Consumer cursor: touched only by the draining thread. */
    alignas(64) std::size_t deq_ = 0;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_MPSC_H_
