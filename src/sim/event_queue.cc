#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/invariants.h"
#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace m3v::sim {

namespace {

thread_local EventQueue *gRunning = nullptr;

/** Min-heap comparator on (when, seq) for the overflow heap. */
struct Later
{
    bool
    operator()(const auto &a, const auto &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

EventQueue *
EventQueue::running()
{
    return gRunning;
}

bool
EventHandle::cancel()
{
    return queue_ && queue_->cancelSlot(slot_, gen_);
}

bool
EventHandle::pending() const
{
    return queue_ && queue_->isLive(slot_, gen_);
}

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() = default;

MetricsRegistry &
EventQueue::metrics()
{
    if (!metrics_)
        metrics_ = std::make_unique<MetricsRegistry>();
    return *metrics_;
}

Tracer &
EventQueue::tracer()
{
    if (!tracer_)
        tracer_ = std::make_unique<Tracer>(*this);
    return *tracer_;
}

EventQueue::Record &
EventQueue::recordAt(std::uint32_t slot)
{
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
}

const EventQueue::Record &
EventQueue::recordAt(std::uint32_t slot) const
{
    return slabs_[slot >> kSlabShift][slot & (kSlabSize - 1)];
}

void
EventQueue::addSlab()
{
    std::size_t base = slabs_.size() << kSlabShift;
    // for_overwrite: run the default constructors (gen/nextFree/empty
    // fn) but skip zero-filling the inline closure buffers.
    slabs_.push_back(
        std::make_unique_for_overwrite<Record[]>(kSlabSize));
    Record *slab = slabs_.back().get();
    // Link in reverse so slots are handed out in ascending order.
    for (std::size_t i = kSlabSize; i-- > 0;) {
        slab[i].nextFree = freeHead_;
        freeHead_ = static_cast<std::uint32_t>(base + i);
    }
}

std::uint32_t
EventQueue::allocRecord(UniqueFunction<void()> fn)
{
    if (freeHead_ == kNoSlot)
        addSlab();
    std::uint32_t slot = freeHead_;
    Record &r = recordAt(slot);
    freeHead_ = r.nextFree;
    r.nextFree = kNoSlot;
    r.pooled = false;
    r.fn = std::move(fn);
    return slot;
}

void
EventQueue::freeRecord(std::uint32_t slot)
{
    Record &r = recordAt(slot);
    if (r.pooled) {
        // Already on the freelist: relinking it would cycle the list
        // and hand the same slot out twice.
        reportDoubleFree(slot);
        return;
    }
    r.pooled = true;
    r.fn = {};
    // The generation bump makes every outstanding handle and every
    // queue entry referencing this slot inert.
    r.gen++;
    r.nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::reportDoubleFree(std::uint32_t slot)
{
    if (inv_) {
        inv_->fail("event_queue: double free of pooled record %u",
                   static_cast<unsigned>(slot));
        return;
    }
    panic("EventQueue: double free of pooled record %u",
          static_cast<unsigned>(slot));
}

bool
EventQueue::cancelSlot(std::uint32_t slot, std::uint32_t gen)
{
    Record &r = recordAt(slot);
    if (r.gen != gen)
        return false;
    freeRecord(slot);
    livePending_--;
    return true;
}

bool
EventQueue::isLive(std::uint32_t slot, std::uint32_t gen) const
{
    return recordAt(slot).gen == gen;
}

EventHandle
EventQueue::schedule(Tick delay, UniqueFunction<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle
EventQueue::scheduleAt(Tick when, UniqueFunction<void()> fn)
{
    if (when < now_)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    std::uint32_t slot = allocRecord(std::move(fn));
    std::uint32_t gen = recordAt(slot).gen;
    insertEntry(Entry{when, seq_++, slot, gen});
    livePending_++;
    return EventHandle(this, slot, gen);
}

void
EventQueue::insertEntry(const Entry &e)
{
    if (e.when == now_) {
        nowFifo_.push_back(e);
        return;
    }
    std::uint64_t slot = e.when >> kBucketTickShift;
    if (slot < baseSlot_ + kNumBuckets)
        wheelPush(e);
    else
        overflowPush(e);
}

void
EventQueue::wheelPush(const Entry &e)
{
    std::size_t idx =
        static_cast<std::size_t>(e.when >> kBucketTickShift) &
        kBucketMask;
    Bucket &b = wheel_[idx];
    // Appends in non-decreasing tick order (the common case, and all
    // overflow migrations) keep the bucket sorted: equal ticks are
    // already ordered because seq increases monotonically.
    if (b.sorted && !b.items.empty() && e.when < b.items.back().when)
        b.sorted = false;
    b.items.push_back(e);
    markBucket(idx);
    wheelCount_++;
}

void
EventQueue::overflowPush(const Entry &e)
{
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), Later());
}

EventQueue::Entry
EventQueue::overflowPop()
{
    std::pop_heap(overflow_.begin(), overflow_.end(), Later());
    Entry e = overflow_.back();
    overflow_.pop_back();
    return e;
}

void
EventQueue::rebase(std::uint64_t new_slot)
{
    if (new_slot <= baseSlot_)
        return;
    baseSlot_ = new_slot;
    // Overflow events that fell inside the wheel horizon migrate into
    // their bucket. Heap pops come out in (when, seq) order, so the
    // per-bucket append order stays sorted.
    while (!overflow_.empty() &&
           (overflow_.front().when >> kBucketTickShift) <
               baseSlot_ + kNumBuckets) {
        wheelPush(overflowPop());
    }
}

void
EventQueue::prepareBucket(Bucket &b)
{
    if (b.sorted)
        return;
    if (b.head > 0) {
        b.items.erase(b.items.begin(),
                      b.items.begin() +
                          static_cast<std::ptrdiff_t>(b.head));
        b.head = 0;
    }
    std::sort(b.items.begin(), b.items.end(),
              [](const Entry &a, const Entry &c) {
                  if (a.when != c.when)
                      return a.when < c.when;
                  return a.seq < c.seq;
              });
    b.sorted = true;
}

void
EventQueue::markBucket(std::size_t idx)
{
    bitmap_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

void
EventQueue::clearBucketBit(std::size_t idx)
{
    bitmap_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

std::size_t
EventQueue::findMarkedFrom(std::size_t start) const
{
    std::size_t w0 = start >> 6;
    std::uint64_t m = bitmap_[w0] & (~std::uint64_t{0} << (start & 63));
    if (m)
        return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(m));
    for (std::size_t k = 1; k <= kBitmapWords; k++) {
        std::size_t wi = (w0 + k) & (kBitmapWords - 1);
        if (bitmap_[wi])
            return (wi << 6) +
                   static_cast<std::size_t>(std::countr_zero(bitmap_[wi]));
    }
    return SIZE_MAX;
}

void
EventQueue::consumeFrom(Src src, std::size_t bucket_idx)
{
    switch (src) {
    case Src::NowFifo:
        nowHead_++;
        if (nowHead_ == nowFifo_.size()) {
            nowFifo_.clear();
            nowHead_ = 0;
        }
        break;
    case Src::Wheel: {
        Bucket &b = wheel_[bucket_idx];
        b.head++;
        wheelCount_--;
        if (b.head == b.items.size()) {
            b.items.clear();
            b.head = 0;
            b.sorted = true;
            clearBucketBit(bucket_idx);
        }
        break;
    }
    case Src::Overflow:
        overflowPop();
        break;
    }
}

bool
EventQueue::nextLive(Entry &out, bool consume)
{
    rebase(now_ >> kBucketTickShift);
    for (;;) {
        std::size_t cur_idx =
            static_cast<std::size_t>(baseSlot_) & kBucketMask;
        Bucket &cb = wheel_[cur_idx];
        prepareBucket(cb);
        bool have_cb = cb.head < cb.items.size();
        bool have_now = nowHead_ < nowFifo_.size();

        Src src;
        std::size_t idx = cur_idx;
        Entry e;
        if (have_cb && cb.items[cb.head].when <= now_) {
            // Current-tick (or tombstoned past) entries in the current
            // bucket precede the now-FIFO: they carry older seqs.
            src = Src::Wheel;
            e = cb.items[cb.head];
        } else if (have_now) {
            src = Src::NowFifo;
            e = nowFifo_[nowHead_];
        } else if (have_cb) {
            src = Src::Wheel;
            e = cb.items[cb.head];
        } else if (wheelCount_ > 0) {
            idx = findMarkedFrom(cur_idx);
            Bucket &b = wheel_[idx];
            prepareBucket(b);
            src = Src::Wheel;
            e = b.items[b.head];
        } else if (!overflow_.empty()) {
            src = Src::Overflow;
            e = overflow_.front();
        } else {
            return false;
        }

        bool live = isLive(e.slot, e.gen);
        if (!live || consume)
            consumeFrom(src, idx);
        if (live) {
            out = e;
            return true;
        }
    }
}

bool
EventQueue::popAndRun()
{
    Entry e;
    if (!nextLive(e, true))
        return false;
    now_ = e.when;
    Record &r = recordAt(e.slot);
    UniqueFunction<void()> fn = std::move(r.fn);
    freeRecord(e.slot);
    livePending_--;
    executed_++;
    EventQueue *prev = gRunning;
    gRunning = this;
    fn();
    gRunning = prev;
    if (inv_ && --invCountdown_ == 0) {
        invCountdown_ = invStride_;
        inv_->runBoundary();
    }
    return true;
}

void
EventQueue::setInvariants(Invariants *inv, std::uint64_t stride)
{
    inv_ = inv;
    invStride_ = stride > 0 ? stride : 1;
    invCountdown_ = invStride_;
}

bool
EventQueue::runOne()
{
    return popAndRun();
}

void
EventQueue::run()
{
    while (popAndRun()) {
    }
}

void
EventQueue::runUntil(Tick when)
{
    while (livePending_ > 0) {
        Entry e;
        if (!nextLive(e, false))
            break;
        if (e.when > when)
            break;
        popAndRun();
    }
    if (when > now_)
        now_ = when;
}

void
EventQueue::runBefore(Tick limit)
{
    while (livePending_ > 0) {
        Entry e;
        if (!nextLive(e, false))
            break;
        if (e.when >= limit)
            break;
        popAndRun();
    }
}

bool
EventQueue::peekNextTick(Tick *out)
{
    Entry e;
    if (!nextLive(e, false))
        return false;
    *out = e.when;
    return true;
}

bool
EventQueue::runCapped(std::uint64_t max_events)
{
    for (std::uint64_t i = 0; i < max_events; i++) {
        if (!popAndRun())
            return true;
    }
    return livePending_ == 0;
}

} // namespace m3v::sim
