#include "sim/event_queue.h"

#include <algorithm>

#include <utility>

#include "sim/log.h"

namespace m3v::sim {

namespace {
thread_local EventQueue *gRunning = nullptr;
} // namespace

EventQueue *
EventQueue::running()
{
    return gRunning;
}

bool
EventHandle::cancel()
{
    if (!state_ || state_->cancelled || state_->fired)
        return false;
    state_->cancelled = true;
    return true;
}

bool
EventHandle::pending() const
{
    return state_ && !state_->cancelled && !state_->fired;
}

EventHandle
EventQueue::schedule(Tick delay, UniqueFunction<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventHandle
EventQueue::scheduleAt(Tick when, UniqueFunction<void()> fn)
{
    if (when < now_)
        panic("EventQueue: scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    auto state = std::make_shared<EventHandle::State>();
    queue_.push_back(Item{when, seq_++, std::move(fn), state});
    std::push_heap(queue_.begin(), queue_.end(), Later());
    livePending_++;
    return EventHandle(state);
}

bool
EventQueue::empty() const
{
    return livePending_ == 0;
}

EventQueue::Item
EventQueue::popTop()
{
    std::pop_heap(queue_.begin(), queue_.end(), Later());
    Item item = std::move(queue_.back());
    queue_.pop_back();
    return item;
}

bool
EventQueue::popAndRun()
{
    while (!queue_.empty()) {
        Item item = popTop();
        if (item.state->cancelled) {
            livePending_--;
            continue;
        }
        now_ = item.when;
        item.state->fired = true;
        livePending_--;
        executed_++;
        EventQueue *prev = gRunning;
        gRunning = this;
        item.fn();
        gRunning = prev;
        return true;
    }
    return false;
}

bool
EventQueue::runOne()
{
    return popAndRun();
}

void
EventQueue::run()
{
    while (popAndRun()) {
    }
}

void
EventQueue::runUntil(Tick when)
{
    while (!queue_.empty()) {
        if (queue_.front().when > when)
            break;
        popAndRun();
    }
    if (when > now_)
        now_ = when;
}

bool
EventQueue::runCapped(std::uint64_t max_events)
{
    for (std::uint64_t i = 0; i < max_events; i++) {
        if (!popAndRun())
            return true;
    }
    return queue_.empty();
}

} // namespace m3v::sim
