/**
 * @file
 * C++20 coroutine tasks for modelling software inside the simulator.
 *
 * Applications, OS services and benchmark drivers are written as
 * coroutines returning sim::Task. They co_await:
 *   - sub-tasks (structured composition),
 *   - Delay (simulated time passes),
 *   - Wait / Channel (blocking on events raised elsewhere).
 *
 * All resumptions are funnelled through the EventQueue (never inline)
 * so stack depth stays bounded and same-tick ordering is deterministic.
 *
 * Top-level tasks are owned by a TaskPool, which keeps frames alive
 * until completion and lets tests assert that every task finished.
 */

#ifndef M3VSIM_SIM_TASK_H_
#define M3VSIM_SIM_TASK_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/types.h"

namespace m3v::sim {

/**
 * A lazily-started coroutine task with void result. Awaiting a Task
 * resumes it and suspends the awaiter until the task completes.
 */
class [[nodiscard]] Task
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto &p = h.promise();
            p.done = true;
            // Save the continuation before running the completion hook:
            // the hook may destroy this frame (TaskPool cleanup).
            std::coroutine_handle<> cont = p.continuation;
            if (p.onDone) {
                auto hook = std::move(p.onDone);
                hook();
            }
            // Symmetric transfer to the awaiter. The continuation
            // typically owns this Task as a temporary and destroys
            // it right after resuming — which is why destroy()
            // defers the actual frame deallocation (see below):
            // GCC's symmetric transfer is not a guaranteed tail
            // call, so this frame's resume() may still be on the
            // stack at that point.
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        std::coroutine_handle<> continuation{};
        bool done = false;
        UniqueFunction<void()> onDone{};

        Task
        get_return_object()
        {
            return Task(Handle::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            panic("unhandled exception escaped a sim::Task");
        }
    };

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept : handle_(other.handle_)
    {
        other.handle_ = {};
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = other.handle_;
            other.handle_ = {};
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.promise().done; }

    /**
     * Install a completion hook. Used by owners (e.g. tile::Thread)
     * that keep the Task alive and need to observe its completion.
     */
    void
    setOnDone(UniqueFunction<void()> cb)
    {
        if (!handle_)
            panic("Task::setOnDone on invalid task");
        handle_.promise().onDone = std::move(cb);
    }

    /** Start (or continue) the coroutine. Owner-driven alternative to
     *  co_await for lazily-started tasks. */
    void
    kick()
    {
        if (!handle_ || handle_.promise().done)
            panic("Task::kick on invalid or finished task");
        handle_.resume();
    }

    /** Awaiting a task starts it and waits for completion. */
    auto
    operator co_await() && noexcept
    {
        struct Awaiter
        {
            Handle handle;

            bool
            await_ready() const noexcept
            {
                return !handle || handle.promise().done;
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                handle.promise().continuation = cont;
                return handle;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{handle_};
    }

  private:
    friend class TaskPool;

    void
    destroy()
    {
        if (!handle_)
            return;
        Handle h = handle_;
        handle_ = {};
        // Inside event execution, defer the deallocation until the
        // current event's stack has unwound: the frame's own
        // resume() may still be live below us (non-tail symmetric
        // transfer). The frame is suspended, so a later destroy is
        // safe; all of its resume paths are guarded by owner state.
        if (EventQueue *q = EventQueue::running()) {
            q->schedule(0, [h]() { h.destroy(); });
        } else {
            h.destroy();
        }
    }

    Handle release()
    {
        Handle h = handle_;
        handle_ = {};
        return h;
    }

    Handle handle_{};
};

/**
 * Run a callable that returns a Task, keeping the callable (and its
 * captures) alive for the coroutine's whole lifetime. Immediately
 * invoking a capturing lambda coroutine is undefined behaviour (the
 * closure dies at the end of the full expression); route such bodies
 * through invoke() instead.
 */
namespace detail {

inline Task
invokeImpl(UniqueFunction<Task()> fn)
{
    // fn lives in this coroutine's frame, so the inner coroutine's
    // references into the closure stay valid.
    co_await fn();
}

} // namespace detail

inline Task
invoke(UniqueFunction<Task()> f)
{
    return detail::invokeImpl(std::move(f));
}

/** co_await Delay{eq, ticks}: resume after simulated time passes. */
struct Delay
{
    EventQueue &eq;
    Tick ticks;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.schedule(ticks, [h]() { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/**
 * One-shot edge-triggered wait point with memory: signalling before the
 * await completes immediately. A single waiter is supported; reset()
 * re-arms it. Resumption goes through the event queue.
 */
class Wait
{
  public:
    explicit Wait(EventQueue &eq) : eq_(eq) {}

    Wait(const Wait &) = delete;
    Wait &operator=(const Wait &) = delete;

    /** Wake the waiter (or remember the signal if none waits yet). */
    void
    signal()
    {
        if (waiter_) {
            auto h = waiter_;
            waiter_ = {};
            eq_.schedule(0, [h]() { h.resume(); });
        } else {
            signaled_ = true;
        }
    }

    /** Re-arm after a completed wait (clears a pending signal too). */
    void
    reset()
    {
        signaled_ = false;
    }

    bool signaled() const { return signaled_; }

    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            Wait &w;

            bool
            await_ready() const noexcept
            {
                return w.signaled_;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (w.waiter_)
                    panic("sim::Wait: second waiter");
                w.waiter_ = h;
            }

            void
            await_resume() const noexcept
            {
                w.signaled_ = false;
            }
        };
        return Awaiter{*this};
    }

  private:
    EventQueue &eq_;
    std::coroutine_handle<> waiter_{};
    bool signaled_ = false;
};

/**
 * Unbounded FIFO channel of T with a single consumer. Producers push
 * from event context; the consumer co_awaits receive().
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(EventQueue &eq) : eq_(eq) {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Enqueue an item and wake the consumer if it is waiting. */
    void
    push(T item)
    {
        items_.push_back(std::move(item));
        if (waiter_) {
            auto h = waiter_;
            waiter_ = {};
            eq_.schedule(0, [h]() { h.resume(); });
        }
    }

    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }

    /** Awaitable that yields the next item (blocking if empty). */
    auto
    receive()
    {
        struct Awaiter
        {
            Channel &ch;

            bool
            await_ready() const noexcept
            {
                return !ch.items_.empty();
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (ch.waiter_)
                    panic("sim::Channel: second consumer");
                ch.waiter_ = h;
            }

            T
            await_resume()
            {
                if (ch.items_.empty())
                    panic("sim::Channel: resumed with no item");
                T item = std::move(ch.items_.front());
                ch.items_.pop_front();
                return item;
            }
        };
        return Awaiter{*this};
    }

    /** Non-blocking pop; returns false if empty. */
    bool
    tryReceive(T &out)
    {
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

  private:
    EventQueue &eq_;
    std::deque<T> items_;
    std::coroutine_handle<> waiter_{};
};

/**
 * Owner of top-level (detached) tasks. Keeps coroutine frames alive
 * until they complete; destruction of unfinished frames happens in the
 * pool destructor (e.g., when a benchmark tears down mid-run).
 */
class TaskPool
{
  public:
    explicit TaskPool(EventQueue &eq) : eq_(eq) {}

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    ~TaskPool();

    /**
     * Take ownership of @p t and start it immediately. The name is
     * used in diagnostics for tasks that never finish.
     */
    void spawn(Task t, std::string name = "task");

    /** Number of spawned-but-unfinished tasks. */
    std::size_t active() const { return tasks_.size(); }

  private:
    struct Entry
    {
        Task::Handle handle;
        std::string name;
    };

    EventQueue &eq_;
    std::uint64_t nextId_ = 0;
    std::unordered_map<std::uint64_t, Entry> tasks_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_TASK_H_
