/**
 * @file
 * Runtime invariant checking for tests: a registry of named
 * conservation laws evaluated at event boundaries.
 *
 * Components register checks (closures over their own state) under a
 * name; the harness attaches the registry to an EventQueue, which then
 * calls back after every executed event (or every Nth, see the stride
 * argument). A check reports problems through Invariants::fail(), which
 * records a formatted violation string; the harness asserts ok() /
 * prints report() when a run ends.
 *
 * Two evaluation classes:
 *  - When::EveryBoundary — laws that hold after *every* event
 *    (e.g. CUR_ACT's message count equals the queued unread messages).
 *  - When::QuiescentOnly — laws that only hold once the simulation has
 *    drained (e.g. every core request was consumed, all DTU engines
 *    idle, credits conserved across tiles). These run only from
 *    runAll(true), which the harness calls after run() returns.
 *
 * The checker is opt-in: production paths never construct one, and an
 * unattached EventQueue pays a single null-pointer test per event.
 *
 * Thread-safety: checks read model state directly, so in lane mode
 * (sim::LaneScheduler) a registry attached to a lane's EventQueue must
 * only contain checks over that lane's own components; cross-lane laws
 * belong in a separate registry evaluated after LaneScheduler::run()
 * returns (single-threaded quiescence).
 */

#ifndef M3VSIM_SIM_INVARIANTS_H_
#define M3VSIM_SIM_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace m3v::sim {

class EventQueue;

/** Named invariant checks evaluated at event boundaries. */
class Invariants
{
  public:
    enum class When : std::uint8_t
    {
        EveryBoundary, ///< holds after every executed event
        QuiescentOnly, ///< holds only once the simulation drained
    };

    using CheckFn = std::function<void(Invariants &)>;

    /** Register @p fn under @p name. */
    void addCheck(std::string name, CheckFn fn,
                  When when = When::EveryBoundary);

    /**
     * Attach to @p eq: after every @p stride executed events the
     * EveryBoundary checks run. Detaches any previous registry;
     * stride > 1 trades coverage for speed on long fuzz runs.
     */
    void attach(EventQueue &eq, std::uint64_t stride = 1);

    /**
     * Report a violation from inside a check (printf-style). The
     * message is prefixed with the running check's name. Recording is
     * capped; past the cap violations are counted but not stored.
     */
    void fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * Run checks now: the EveryBoundary set, plus the QuiescentOnly
     * set when @p quiescent. The harness calls runAll(true) once the
     * event queue(s) drained.
     */
    void runAll(bool quiescent);

    bool ok() const { return total_ == 0; }
    std::uint64_t violationCount() const { return total_; }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** All recorded violations, one per line (empty when ok()). */
    std::string report() const;

    void clear();

    /** Abort the process on the first violation (debugging aid). */
    void setPanicOnViolation(bool on) { panic_ = on; }

  private:
    friend class EventQueue;

    /** EventQueue's per-event hook (EveryBoundary checks only). */
    void runBoundary() { runAll(false); }

    struct Check
    {
        std::string name;
        CheckFn fn;
        When when;
    };

    static constexpr std::size_t kMaxRecorded = 64;

    std::vector<Check> checks_;
    std::vector<std::string> violations_;
    std::uint64_t total_ = 0;
    const Check *running_ = nullptr;
    bool panic_ = false;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_INVARIANTS_H_
