#include "sim/lane.h"

#include <algorithm>
#include <atomic>

#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace m3v::sim {

LaneScheduler::LaneScheduler(unsigned lanes, unsigned jobs,
                             Tick lookahead,
                             std::size_t mailbox_capacity)
    : n_(lanes), jobs_(jobs ? jobs : 1), lookahead_(lookahead)
{
    if (lanes == 0)
        panic("LaneScheduler: zero lanes");
    if (lookahead == 0)
        panic("LaneScheduler: zero lookahead");
    lanes_.reserve(n_);
    for (std::size_t i = 0; i < n_; i++)
        lanes_.push_back(std::make_unique<EventQueue>());
    rings_.reserve(n_);
    for (std::size_t i = 0; i < n_; i++)
        rings_.push_back(
            std::make_unique<MpscRing<Msg>>(mailbox_capacity * n_));
    seqs_.assign(n_ * n_, 0);
    if (jobs_ > 1) {
        workers_.reserve(jobs_);
        for (unsigned w = 0; w < jobs_; w++)
            workers_.emplace_back(
                [this, w]() { workerLoop(w); });
    }
}

LaneScheduler::~LaneScheduler()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvWork_.notify_all();
        for (auto &t : workers_)
            t.join();
    }
}

bool
LaneScheduler::tryPost(unsigned src, unsigned dst, Tick due,
                       UniqueFunction<void()> fn)
{
    if (src >= n_ || dst >= n_)
        panic("LaneScheduler: post %u->%u outside %zu lanes", src,
              dst, n_);
    if (running_ && due < lanes_[src]->now() + lookahead_)
        panic("LaneScheduler: post due %llu violates lookahead "
              "(now %llu + %llu)",
              static_cast<unsigned long long>(due),
              static_cast<unsigned long long>(lanes_[src]->now()),
              static_cast<unsigned long long>(lookahead_));
    std::uint64_t &seq = seqs_[src * n_ + dst];
    Msg m;
    m.due = due;
    m.seq = seq;
    m.srcLane = src;
    m.dstLane = dst;
    m.fn = std::move(fn);
    if (!rings_[dst]->tryPush(std::move(m)))
        return false;
    seq++;
    return true;
}

void
LaneScheduler::addBarrierHook(UniqueFunction<void()> fn)
{
    barrierHooks_.push_back(std::move(fn));
}

void
LaneScheduler::post(unsigned src, unsigned dst, Tick due,
                    UniqueFunction<void()> fn)
{
    if (!tryPost(src, dst, due, std::move(fn)))
        panic("LaneScheduler: mailbox %u->%u overflow", src, dst);
}

void
LaneScheduler::mergeMailboxes()
{
    scratch_.clear();
    for (auto &r : rings_) {
        Msg m;
        while (r->tryPop(m))
            scratch_.push_back(std::move(m));
    }
    if (scratch_.empty())
        return;
    // Canonical cross-lane order: messages are applied to their
    // destination lanes sorted by (due, srcLane, dstLane, seq), so
    // the lane-local sequence numbers they receive — and therefore
    // all same-tick FIFO ordering downstream — are independent of
    // which worker thread produced them first.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.due != b.due)
                      return a.due < b.due;
                  if (a.srcLane != b.srcLane)
                      return a.srcLane < b.srcLane;
                  if (a.dstLane != b.dstLane)
                      return a.dstLane < b.dstLane;
                  return a.seq < b.seq;
              });
    for (Msg &m : scratch_) {
        lanes_[m.dstLane]->scheduleAt(m.due, std::move(m.fn));
        merged_++;
    }
    scratch_.clear();
}

bool
LaneScheduler::nextTick(Tick *out)
{
    bool have = false;
    Tick best = 0;
    for (auto &l : lanes_) {
        Tick t;
        if (!l->peekNextTick(&t))
            continue;
        if (!have || t < best) {
            best = t;
            have = true;
        }
    }
    if (have)
        *out = best;
    return have;
}

void
LaneScheduler::workerLoop(unsigned)
{
    std::uint64_t seen_round = 0;
    for (;;) {
        unsigned lane_idx;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [&]() {
                return shutdown_ ||
                       (roundId_ != seen_round && next_ < active_.size());
            });
            if (shutdown_)
                return;
            lane_idx = active_[next_++];
            if (next_ == active_.size())
                seen_round = roundId_;
        }
        lanes_[lane_idx]->runBefore(roundLimit_);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pendingLanes_ == 0)
                cvDone_.notify_one();
        }
    }
}

void
LaneScheduler::runRoundOnWorkers(Tick limit)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        roundLimit_ = limit;
        next_ = 0;
        pendingLanes_ = active_.size();
        roundId_++;
    }
    cvWork_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [&]() { return pendingLanes_ == 0; });
}

void
LaneScheduler::run()
{
    running_ = true;
    for (;;) {
        // Barrier phase: single-threaded merge of everything the
        // previous window produced (and, on the first round, of the
        // posts made during model construction).
        mergeMailboxes();
        for (auto &hook : barrierHooks_)
            hook();
        Tick w;
        if (!nextTick(&w))
            break;
        Tick limit = w + lookahead_;
        {
            // Parked workers read active_ inside their wait
            // predicate (under mu_), so refilling it between rounds
            // must hold the lock too.
            std::lock_guard<std::mutex> lock(mu_);
            active_.clear();
            for (unsigned i = 0; i < n_; i++) {
                Tick t;
                if (lanes_[i]->peekNextTick(&t) && t < limit)
                    active_.push_back(i);
            }
        }
        rounds_++;
        if (workers_.empty() || active_.size() == 1) {
            for (unsigned i : active_)
                lanes_[i]->runBefore(limit);
        } else {
            runRoundOnWorkers(limit);
        }
    }
    running_ = false;
}

std::uint64_t
LaneScheduler::executed() const
{
    std::uint64_t sum = 0;
    for (const auto &l : lanes_)
        sum += l->executed();
    return sum;
}

void
LaneScheduler::mergeMetrics(MetricsRegistry &out)
{
    for (auto &l : lanes_)
        out.absorb(l->metrics());
}

void
LaneScheduler::enableAllTracing()
{
    for (auto &l : lanes_)
        l->tracer().enableAll();
}

void
LaneScheduler::mergeTrace(Tracer &out)
{
    for (auto &l : lanes_)
        out.absorb(l->tracer());
}

void
runCells(unsigned jobs, std::vector<UniqueFunction<void()>> cells)
{
    if (jobs <= 1 || cells.size() <= 1) {
        for (auto &c : cells)
            c();
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            cells[i]();
        }
    };
    std::size_t nthreads =
        std::min<std::size_t>(jobs, cells.size());
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (std::size_t i = 0; i < nthreads; i++)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
}

} // namespace m3v::sim
