#include "sim/lane.h"

#include <algorithm>
#include <atomic>

#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace m3v::sim {

namespace {

constexpr Tick kNever = LaneScheduler::kNoCrossing;

/** a + b with saturation at kNever (infinity). */
inline Tick
satAdd(Tick a, Tick b)
{
    if (a == kNever || b == kNever)
        return kNever;
    Tick s = a + b;
    return s < a ? kNever : s;
}

} // namespace

LaneScheduler::LaneScheduler(unsigned lanes, unsigned jobs,
                             Tick lookahead,
                             std::size_t mailbox_capacity)
    : n_(lanes), jobs_(jobs ? jobs : 1)
{
    if (lanes == 0)
        panic("LaneScheduler: zero lanes");
    if (lookahead == 0)
        panic("LaneScheduler: zero lookahead");
    pairL_.assign(n_ * n_, lookahead);
    minPairL_ = lookahead;
    lanes_.reserve(n_);
    for (std::size_t i = 0; i < n_; i++)
        lanes_.push_back(std::make_unique<EventQueue>());
    rings_.reserve(n_);
    for (std::size_t i = 0; i < n_; i++)
        rings_.push_back(
            std::make_unique<MpscRing<Msg>>(mailbox_capacity * n_));
    seqs_.assign(n_ * n_, 0);
    if (jobs_ > 1) {
        workers_.reserve(jobs_);
        for (unsigned w = 0; w < jobs_; w++)
            workers_.emplace_back(
                [this, w]() { workerLoop(w); });
    }
}

LaneScheduler::~LaneScheduler()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvWork_.notify_all();
        for (auto &t : workers_)
            t.join();
    }
}

Tick
LaneScheduler::pairLookahead(unsigned src, unsigned dst) const
{
    if (src >= n_ || dst >= n_)
        panic("LaneScheduler: pairLookahead %u->%u outside %zu lanes",
              src, dst, n_);
    return pairL_[src * n_ + dst];
}

void
LaneScheduler::setPairLookahead(unsigned src, unsigned dst, Tick l)
{
    if (running_)
        panic("LaneScheduler: setPairLookahead while running");
    if (src >= n_ || dst >= n_)
        panic("LaneScheduler: setPairLookahead %u->%u outside %zu "
              "lanes",
              src, dst, n_);
    if (l == 0)
        panic("LaneScheduler: zero pair lookahead %u->%u", src, dst);
    pairL_[src * n_ + dst] = l;
    distDirty_ = true;
}

void
LaneScheduler::fillPairLookaheads(Tick l)
{
    if (running_)
        panic("LaneScheduler: fillPairLookaheads while running");
    if (l == 0)
        panic("LaneScheduler: zero pair lookahead");
    std::fill(pairL_.begin(), pairL_.end(), l);
    distDirty_ = true;
}

bool
LaneScheduler::tryPost(unsigned src, unsigned dst, Tick due,
                       UniqueFunction<void()> fn)
{
    if (src >= n_ || dst >= n_)
        panic("LaneScheduler: post %u->%u outside %zu lanes", src,
              dst, n_);
    if (running_) {
        Tick l = pairL_[src * n_ + dst];
        if (l == kNoCrossing)
            panic("LaneScheduler: post %u->%u on a pair with no "
                  "declared lookahead (kNoCrossing)",
                  src, dst);
        if (due < lanes_[src]->now() + l)
            panic("LaneScheduler: post due %llu violates lookahead "
                  "(now %llu + %llu)",
                  static_cast<unsigned long long>(due),
                  static_cast<unsigned long long>(lanes_[src]->now()),
                  static_cast<unsigned long long>(l));
    }
    std::uint64_t &seq = seqs_[src * n_ + dst];
    Msg m;
    m.due = due;
    m.seq = seq;
    m.srcLane = src;
    m.dstLane = dst;
    m.fn = std::move(fn);
    if (!rings_[dst]->tryPush(std::move(m)))
        return false;
    seq++;
    return true;
}

void
LaneScheduler::addBarrierHook(UniqueFunction<void()> fn)
{
    barrierHooks_.push_back(std::move(fn));
}

void
LaneScheduler::post(unsigned src, unsigned dst, Tick due,
                    UniqueFunction<void()> fn)
{
    if (!tryPost(src, dst, due, std::move(fn)))
        panic("LaneScheduler: mailbox %u->%u overflow", src, dst);
}

void
LaneScheduler::mergeMailboxes()
{
    scratch_.clear();
    for (auto &r : rings_) {
        Msg m;
        while (r->tryPop(m))
            scratch_.push_back(std::move(m));
    }
    if (scratch_.empty())
        return;
    // Canonical cross-lane order: messages are applied to their
    // destination lanes sorted by (due, srcLane, dstLane, seq), so
    // the lane-local sequence numbers they receive — and therefore
    // all same-tick FIFO ordering downstream — are independent of
    // which worker thread produced them first.
    std::sort(scratch_.begin(), scratch_.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.due != b.due)
                      return a.due < b.due;
                  if (a.srcLane != b.srcLane)
                      return a.srcLane < b.srcLane;
                  if (a.dstLane != b.dstLane)
                      return a.dstLane < b.dstLane;
                  return a.seq < b.seq;
              });
    for (Msg &m : scratch_) {
        lanes_[m.dstLane]->scheduleAt(m.due, std::move(m.fn));
        merged_++;
    }
    scratch_.clear();
}

void
LaneScheduler::recomputeDistances()
{
    minPairL_ = kNever;
    uniform_ = true;
    Tick first = pairL_.empty() ? kNever : pairL_[0];
    for (std::size_t i = 0; i < n_; i++) {
        for (std::size_t j = 0; j < n_; j++) {
            Tick l = pairL_[i * n_ + j];
            if (l != first)
                uniform_ = false;
            if (i != j && l < minPairL_)
                minPairL_ = l;
        }
    }
    if (uniform_) {
        // The global-window fast path never reads dist_.
        dist_.clear();
        distDirty_ = false;
        return;
    }
    // Floyd-Warshall closure with saturating adds: D(i, j) is the
    // cheapest chain of declared crossings from lane i to lane j —
    // the earliest any event in lane i can influence lane j. The
    // diagonal is deliberately NOT zeroed: D(i, i) relaxes to lane
    // i's cheapest round trip through other lanes, which is exactly
    // how far lane i may run ahead before a reply triggered by its
    // own posts could come back (crossing weights are positive, so
    // leaving the diagonal free never corrupts the off-diagonal
    // shortest paths).
    dist_ = pairL_;
    for (std::size_t k = 0; k < n_; k++) {
        for (std::size_t i = 0; i < n_; i++) {
            Tick dik = dist_[i * n_ + k];
            if (dik == kNever)
                continue;
            for (std::size_t j = 0; j < n_; j++) {
                Tick cand = satAdd(dik, dist_[k * n_ + j]);
                if (cand < dist_[i * n_ + j])
                    dist_[i * n_ + j] = cand;
            }
        }
    }
    distDirty_ = false;
}

void
LaneScheduler::computeLimits()
{
    limits_.assign(n_, kNever);
    if (uniform_) {
        // All pairs share one lookahead: the classic global window.
        // W = min next tick; every lane may run to W + lookahead.
        Tick w = kNever;
        for (std::size_t i = 0; i < n_; i++)
            if (nts_[i] < w)
                w = nts_[i];
        Tick limit = satAdd(w, minPairL_);
        std::fill(limits_.begin(), limits_.end(), limit);
        return;
    }
    // Per-lane windows from the distance matrix: lane i may run
    // until the earliest tick any lane's pending work could reach it
    // — including its own, whose influence can return through the
    // cheapest round trip D(i, i). Empty lanes contribute nothing:
    // any influence routed through one originates at a non-empty
    // lane, and D's path closure already bounds that chain. Lanes no
    // path leads to run unbounded.
    for (std::size_t j = 0; j < n_; j++) {
        Tick ntj = nts_[j];
        if (ntj == kNever)
            continue;
        const Tick *dj = &dist_[j * n_];
        for (std::size_t i = 0; i < n_; i++) {
            Tick reach = satAdd(ntj, dj[i]);
            if (reach < limits_[i])
                limits_[i] = reach;
        }
    }
}

void
LaneScheduler::workerLoop(unsigned)
{
    std::uint64_t seen_round = 0;
    for (;;) {
        ActiveLane a;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock, [&]() {
                return shutdown_ ||
                       (roundId_ != seen_round && next_ < active_.size());
            });
            if (shutdown_)
                return;
            a = active_[next_++];
            if (next_ == active_.size())
                seen_round = roundId_;
        }
        lanes_[a.lane]->runBefore(a.limit);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pendingLanes_ == 0)
                cvDone_.notify_one();
        }
    }
}

void
LaneScheduler::runRoundOnWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        next_ = 0;
        pendingLanes_ = active_.size();
        roundId_++;
    }
    cvWork_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [&]() { return pendingLanes_ == 0; });
}

void
LaneScheduler::run()
{
    if (distDirty_)
        recomputeDistances();
    running_ = true;
    for (;;) {
        // Barrier phase: single-threaded merge of everything the
        // previous window produced (and, on the first round, of the
        // posts made during model construction).
        mergeMailboxes();
        for (auto &hook : barrierHooks_)
            hook();
        nts_.assign(n_, kNever);
        bool any = false;
        for (std::size_t i = 0; i < n_; i++) {
            Tick t;
            if (lanes_[i]->peekNextTick(&t)) {
                nts_[i] = t;
                any = true;
            }
        }
        if (!any)
            break;
        computeLimits();
        {
            // Parked workers read active_ inside their wait
            // predicate (under mu_), so refilling it between rounds
            // must hold the lock too.
            std::lock_guard<std::mutex> lock(mu_);
            active_.clear();
            for (unsigned i = 0; i < n_; i++)
                if (nts_[i] != kNever && nts_[i] < limits_[i])
                    active_.push_back({i, limits_[i]});
            // Longest-pending lanes first, so a straggler lane is
            // claimed early and the short lanes pack behind it
            // (whole-lane stealing keeps per-lane order intact).
            // pending() is deterministic at the barrier, so the
            // claim order — though irrelevant to results — is too.
            std::sort(active_.begin(), active_.end(),
                      [this](const ActiveLane &a, const ActiveLane &b) {
                          std::size_t pa = lanes_[a.lane]->pending();
                          std::size_t pb = lanes_[b.lane]->pending();
                          if (pa != pb)
                              return pa > pb;
                          return a.lane < b.lane;
                      });
        }
        rounds_++;
        if (workers_.empty() || active_.size() == 1) {
            for (const ActiveLane &a : active_)
                lanes_[a.lane]->runBefore(a.limit);
        } else {
            runRoundOnWorkers();
        }
    }
    running_ = false;
}

std::uint64_t
LaneScheduler::executed() const
{
    std::uint64_t sum = 0;
    for (const auto &l : lanes_)
        sum += l->executed();
    return sum;
}

void
LaneScheduler::mergeMetrics(MetricsRegistry &out)
{
    for (auto &l : lanes_)
        out.absorb(l->metrics());
}

void
LaneScheduler::enableAllTracing()
{
    for (auto &l : lanes_)
        l->tracer().enableAll();
}

void
LaneScheduler::mergeTrace(Tracer &out)
{
    for (auto &l : lanes_)
        out.absorb(l->tracer());
}

void
runCells(unsigned jobs, std::vector<UniqueFunction<void()>> cells)
{
    if (jobs <= 1 || cells.size() <= 1) {
        for (auto &c : cells)
            c();
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            cells[i]();
        }
    };
    std::size_t nthreads =
        std::min<std::size_t>(jobs, cells.size());
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (std::size_t i = 0; i < nthreads; i++)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
}

} // namespace m3v::sim
