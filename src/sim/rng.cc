#include "sim/rng.h"

namespace m3v::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    // Avoid the all-zero state, which is a fixed point.
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t t0 = s0_;
    std::uint64_t t1 = s1_;
    const std::uint64_t result = rotl(t0 + t1, 17) + t0;

    t1 ^= t0;
    s0_ = rotl(t0, 49) ^ t1 ^ (t1 << 21);
    s1_ = rotl(t1, 28);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace m3v::sim
