/**
 * @file
 * A slab pool of reference-counted payload extents.
 *
 * The zero-copy message path threads one payload buffer from the
 * sender's SEND command through the NoC packet, the lane mailbox and
 * the receiver's recv-ring slot without ever copying the bytes: every
 * hop holds a PayloadRef, a {slot, generation} handle into this pool
 * (the same discipline as the event core's pooled records, see
 * sim/event_queue.h). The retransmission engine keeps a message alive
 * by holding a second reference instead of a deep copy, and
 * fault-injected corruption mutates a copy-on-write clone so the
 * retx-held original stays clean.
 *
 * Extents recycle their byte buffers: a released extent keeps its
 * vector's capacity, so a warmed-up pool serves make() without heap
 * allocation. Handles are validated by generation — releasing a stale
 * handle (slot already recycled) is detected and counted instead of
 * corrupting the freelist.
 *
 * Thread safety: one pool is shared by every tile of a platform, and
 * in lane mode tiles run on different worker threads. All slot-state
 * transitions (allocate, addRef, release, COW) take the pool mutex;
 * the bytes themselves are only touched by the current owner, with
 * the lane-mailbox handover providing the happens-before edge.
 */

#ifndef M3VSIM_SIM_SLAB_POOL_H_
#define M3VSIM_SIM_SLAB_POOL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/log.h"

namespace m3v::sim {

class SlabPool;

/**
 * A shared reference to one pooled payload extent. Copying bumps the
 * refcount; destruction releases it. An empty (default) ref reads as
 * a zero-length byte vector, so it converts seamlessly wherever a
 * `const std::vector<uint8_t> &` is expected.
 */
class PayloadRef
{
  public:
    using Bytes = std::vector<std::uint8_t>;

    PayloadRef() = default;
    PayloadRef(const PayloadRef &o);
    PayloadRef &operator=(const PayloadRef &o);

    PayloadRef(PayloadRef &&o) noexcept
        : pool_(o.pool_), slot_(o.slot_), gen_(o.gen_)
    {
        o.pool_ = nullptr;
    }

    PayloadRef &
    operator=(PayloadRef &&o) noexcept
    {
        if (this != &o) {
            reset();
            pool_ = o.pool_;
            slot_ = o.slot_;
            gen_ = o.gen_;
            o.pool_ = nullptr;
        }
        return *this;
    }

    ~PayloadRef() { reset(); }

    /** The referenced bytes (a shared static empty vector if null). */
    const Bytes &bytes() const;

    /** Read anywhere a byte vector is expected (read-only). */
    operator const Bytes &() const { return bytes(); }

    const std::uint8_t *data() const { return bytes().data(); }
    std::size_t size() const { return bytes().size(); }
    bool empty() const { return size() == 0; }
    auto begin() const { return bytes().begin(); }
    auto end() const { return bytes().end(); }
    std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }

    /**
     * Copy-on-write mutable access: with a single holder this is the
     * extent's buffer itself; with the extent shared, the bytes are
     * cloned into a fresh extent first and this ref is repointed, so
     * other holders keep the unmodified original.
     */
    Bytes &mutableBytes();

    /** Holds an extent (empty refs do not). */
    bool valid() const { return pool_ != nullptr; }

    /** Drop the reference (extent freed when the last ref drops). */
    void reset();

    // Handle internals, exposed for the lifetime tests.
    std::uint32_t debugSlot() const { return slot_; }
    std::uint32_t debugGen() const { return gen_; }

  private:
    friend class SlabPool;

    PayloadRef(SlabPool *pool, std::uint32_t slot, std::uint32_t gen)
        : pool_(pool), slot_(slot), gen_(gen)
    {
    }

    SlabPool *pool_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/** The pool. One per platform (owned by the NoC facade). */
class SlabPool
{
  public:
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

    SlabPool() = default;
    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    /** A fresh extent of @p n zeroed bytes (n == 0 -> empty ref). */
    PayloadRef
    make(std::size_t n)
    {
        if (n == 0)
            return PayloadRef();
        std::lock_guard<std::mutex> lock(mu_);
        std::uint32_t slot = allocSlotLocked();
        Extent &e = slot_ref(slot);
        e.bytes.assign(n, 0);
        return PayloadRef(this, slot, e.gen);
    }

    /** A fresh extent holding a copy of @p n bytes at @p p. */
    PayloadRef
    copy(const std::uint8_t *p, std::size_t n)
    {
        if (n == 0)
            return PayloadRef();
        std::lock_guard<std::mutex> lock(mu_);
        std::uint32_t slot = allocSlotLocked();
        Extent &e = slot_ref(slot);
        e.bytes.resize(n);
        std::memcpy(e.bytes.data(), p, n);
        byteCopies_++;
        copiedBytes_ += n;
        return PayloadRef(this, slot, e.gen);
    }

    /**
     * Move @p v into a fresh extent (no byte copy). The extent's
     * recycled capacity is replaced by the adopted buffer, so prefer
     * make() + fill on paths that must stay allocation-free.
     */
    PayloadRef
    adopt(std::vector<std::uint8_t> &&v)
    {
        if (v.empty())
            return PayloadRef();
        std::lock_guard<std::mutex> lock(mu_);
        std::uint32_t slot = allocSlotLocked();
        Extent &e = slot_ref(slot);
        e.bytes = std::move(v);
        return PayloadRef(this, slot, e.gen);
    }

    /** Snapshot of the conservation counters (one consistent view). */
    struct Stats
    {
        /** Extent slots ever created (== live + free, always). */
        std::size_t allocated = 0;
        /** Slots currently referenced. */
        std::size_t live = 0;
        /** Slots on the freelist. */
        std::size_t free = 0;
        /** Releases rejected by the generation check. */
        std::uint64_t staleReleases = 0;
        /** Byte-copy operations performed (copy() calls + COW). */
        std::uint64_t byteCopies = 0;
        /** Total bytes those operations copied. */
        std::uint64_t copiedBytes = 0;
        /** COW clones (a shared extent was mutated). */
        std::uint64_t cowClones = 0;
    };

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        Stats s;
        s.allocated = allocated_;
        s.live = live_;
        s.free = free_;
        s.staleReleases = staleReleases_;
        s.byteCopies = byteCopies_;
        s.copiedBytes = copiedBytes_;
        s.cowClones = cowClones_;
        return s;
    }

    /**
     * Release a raw handle (test hook for the double-release check):
     * returns false — and counts a stale release — when @p gen does
     * not match the slot's current generation, i.e. the handle was
     * already released and the slot possibly recycled.
     */
    bool
    releaseHandle(std::uint32_t slot, std::uint32_t gen)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return releaseLocked(slot, gen);
    }

  private:
    friend class PayloadRef;

    struct Extent
    {
        std::vector<std::uint8_t> bytes;
        std::uint32_t refs = 0;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = kNoSlot;
    };

    static constexpr std::size_t kSlabExtents = 64;

    /**
     * The slab table is a fixed array of slab pointers (not a
     * vector): readers dereference it without the pool mutex, and a
     * vector reallocation during growth would move the pointers under
     * them. A published handle orders the slab's construction before
     * any unlocked read (lane-mailbox handover), so the plain loads
     * are race-free.
     */
    static constexpr std::size_t kMaxSlabs = 8192;

    Extent &
    slot_ref(std::uint32_t slot)
    {
        return slabs_[slot / kSlabExtents][slot % kSlabExtents];
    }

    /** Pop the freelist or grow a slab. Pool mutex held. */
    std::uint32_t
    allocSlotLocked()
    {
        if (freeHead_ == kNoSlot) {
            if (numSlabs_ == kMaxSlabs)
                panic("SlabPool: out of extent slots (%zu slabs)",
                      numSlabs_);
            slabs_[numSlabs_] =
                std::make_unique<Extent[]>(kSlabExtents);
            std::uint32_t base = static_cast<std::uint32_t>(
                numSlabs_ * kSlabExtents);
            for (std::size_t i = kSlabExtents; i-- > 0;) {
                Extent &e = slabs_[numSlabs_][i];
                e.nextFree = freeHead_;
                freeHead_ = base + static_cast<std::uint32_t>(i);
            }
            numSlabs_++;
            allocated_ += kSlabExtents;
            free_ += kSlabExtents;
        }
        std::uint32_t slot = freeHead_;
        Extent &e = slot_ref(slot);
        freeHead_ = e.nextFree;
        e.nextFree = kNoSlot;
        e.refs = 1;
        free_--;
        live_++;
        return slot;
    }

    void
    addRef(std::uint32_t slot, std::uint32_t gen)
    {
        std::lock_guard<std::mutex> lock(mu_);
        Extent &e = slot_ref(slot);
        if (e.gen != gen || e.refs == 0)
            panic("SlabPool: addRef on stale handle (slot %u gen %u, "
                  "extent gen %u refs %u)",
                  slot, gen, e.gen, e.refs);
        e.refs++;
    }

    /** Pool mutex held. */
    bool
    releaseLocked(std::uint32_t slot, std::uint32_t gen)
    {
        if (slot / kSlabExtents >= numSlabs_) {
            staleReleases_++;
            return false;
        }
        Extent &e = slot_ref(slot);
        if (e.gen != gen || e.refs == 0) {
            staleReleases_++;
            return false;
        }
        if (--e.refs == 0) {
            // Recycle: bump the generation so stale handles are
            // detectable, keep the buffer's capacity for reuse.
            e.gen++;
            e.bytes.clear();
            e.nextFree = freeHead_;
            freeHead_ = slot;
            live_--;
            free_++;
        }
        return true;
    }

    void
    release(std::uint32_t slot, std::uint32_t gen)
    {
        std::lock_guard<std::mutex> lock(mu_);
        releaseLocked(slot, gen);
    }

    const std::vector<std::uint8_t> &
    bytesOf(std::uint32_t slot) const
    {
        return slabs_[slot / kSlabExtents][slot % kSlabExtents].bytes;
    }

    /**
     * COW support: returns the extent's buffer if @p slot is solely
     * owned; otherwise clones the bytes into a fresh extent, drops
     * one ref from the original, and updates @p slot / @p gen.
     */
    std::vector<std::uint8_t> &
    mutableBytesOf(std::uint32_t &slot, std::uint32_t &gen)
    {
        std::lock_guard<std::mutex> lock(mu_);
        Extent &e = slot_ref(slot);
        if (e.gen != gen || e.refs == 0)
            panic("SlabPool: mutable access through stale handle");
        if (e.refs == 1)
            return e.bytes;
        std::uint32_t fresh = allocSlotLocked();
        Extent &f = slot_ref(fresh);
        // allocSlotLocked may have grown a slab; re-resolve e.
        Extent &orig = slot_ref(slot);
        f.bytes.resize(orig.bytes.size());
        std::memcpy(f.bytes.data(), orig.bytes.data(),
                    orig.bytes.size());
        byteCopies_++;
        copiedBytes_ += orig.bytes.size();
        cowClones_++;
        orig.refs--;
        slot = fresh;
        gen = f.gen;
        return f.bytes;
    }

    mutable std::mutex mu_;
    std::unique_ptr<Extent[]> slabs_[kMaxSlabs];
    std::size_t numSlabs_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    std::size_t allocated_ = 0;
    std::size_t live_ = 0;
    std::size_t free_ = 0;
    std::uint64_t staleReleases_ = 0;
    std::uint64_t byteCopies_ = 0;
    std::uint64_t copiedBytes_ = 0;
    std::uint64_t cowClones_ = 0;
};

inline PayloadRef::PayloadRef(const PayloadRef &o)
    : pool_(o.pool_), slot_(o.slot_), gen_(o.gen_)
{
    if (pool_)
        pool_->addRef(slot_, gen_);
}

inline PayloadRef &
PayloadRef::operator=(const PayloadRef &o)
{
    if (this != &o) {
        if (o.pool_)
            o.pool_->addRef(o.slot_, o.gen_);
        reset();
        pool_ = o.pool_;
        slot_ = o.slot_;
        gen_ = o.gen_;
    }
    return *this;
}

inline const PayloadRef::Bytes &
PayloadRef::bytes() const
{
    static const Bytes kEmpty;
    if (!pool_)
        return kEmpty;
    return pool_->bytesOf(slot_);
}

inline PayloadRef::Bytes &
PayloadRef::mutableBytes()
{
    if (!pool_)
        panic("PayloadRef: mutableBytes on an empty ref");
    return pool_->mutableBytesOf(slot_, gen_);
}

inline void
PayloadRef::reset()
{
    if (pool_) {
        pool_->release(slot_, gen_);
        pool_ = nullptr;
    }
}

} // namespace m3v::sim

#endif // M3VSIM_SIM_SLAB_POOL_H_
