/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan describes *when* and *where* faults happen: a list of
 * fault windows, each matching a set of sites (by name prefix), a
 * fault kind, a time interval, and a probability. Components that can
 * misbehave ask the plan for a FaultSite at construction time; every
 * site draws from its own split() of the plan's root Rng, so the
 * decision sequence at one site is independent of traffic at every
 * other site and two runs with the same seed inject exactly the same
 * faults.
 *
 * The plan also owns the counters for everything it injected, so a
 * benchmark or test can report drop/corrupt/delay rates alongside the
 * recovery counters kept by the affected components. Counters are
 * kept per site (the plan hands every site its own block and sums on
 * read), so sites living on different event lanes of a parallel run
 * never write shared state.
 *
 * Components keep a null FaultPlan pointer by default; all fault
 * hooks are single null/active checks on that path, so a build with
 * faults disabled is behavior- and timing-identical to one without
 * the framework.
 */

#ifndef M3VSIM_SIM_FAULT_H_
#define M3VSIM_SIM_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace m3v::sim {

class FaultPlan;

/** What goes wrong. */
enum class FaultKind : std::uint8_t
{
    DropPacket,    ///< the packet silently disappears on the link
    CorruptPacket, ///< the packet arrives with its CRC-failed flag set
    DelayPacket,   ///< the packet is held back for extra link cycles
};

/**
 * One scheduled fault window: between [start, end) ticks, every event
 * at a site whose name starts with @ref site is hit with probability
 * @ref probability. An empty site prefix matches every site.
 */
struct FaultWindow
{
    std::string site;
    FaultKind kind = FaultKind::DropPacket;
    Tick start = 0;
    Tick end = ~static_cast<Tick>(0);
    double probability = 0.0;
    /** For DelayPacket: extra cycles of the site's clock domain. */
    Cycles delayCycles = 0;
};

/**
 * A component's handle into the plan. Default-constructed sites are
 * inert (never fault) and cost one branch per query; active sites
 * look up matching windows and draw one Bernoulli trial per match.
 */
class FaultSite
{
  public:
    FaultSite() = default;

    bool active() const { return plan_ != nullptr; }
    const std::string &name() const { return name_; }

    /** Should the packet passing through now be dropped? */
    bool shouldDrop(Tick now);

    /** Should the packet passing through now be corrupted? */
    bool shouldCorrupt(Tick now);

    /** Extra delay (in site-clock cycles) for the packet, usually 0. */
    Cycles delayCycles(Tick now);

  private:
    friend class FaultPlan;

    /** Injection counters of one site, owned by the plan. */
    struct Counters
    {
        Counter drops;
        Counter corrupts;
        Counter delays;
    };

    FaultSite(FaultPlan *plan, std::string name, Rng rng,
              Counters *counters);

    FaultPlan *plan_ = nullptr;
    std::string name_;
    Rng rng_{0};
    Counters *counters_ = nullptr;
};

/**
 * The full fault schedule for a run, plus injection counters. Build
 * one, add windows, and hand it (by pointer) to the components that
 * should misbehave — see noc::NocParams::faults.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed);

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    void addWindow(FaultWindow w);

    /** Convenience: drop packets at sites matching @p site_prefix. */
    void addDrop(std::string site_prefix, double probability,
                 Tick start = 0, Tick end = ~static_cast<Tick>(0));

    /** Convenience: corrupt packets at matching sites. */
    void addCorrupt(std::string site_prefix, double probability,
                    Tick start = 0, Tick end = ~static_cast<Tick>(0));

    /** Convenience: delay packets at matching sites. */
    void addDelay(std::string site_prefix, double probability,
                  Cycles delay_cycles, Tick start = 0,
                  Tick end = ~static_cast<Tick>(0));

    /**
     * Create the site named @p name. Seeded by splitting the root
     * Rng, so call order must be deterministic (it is: components
     * create sites in construction order).
     */
    FaultSite makeSite(std::string name);

    std::uint64_t seed() const { return seed_; }

    /**
     * Packets dropped by the plan (summed over all sites at call
     * time; returned by value so a parallel run reads it only after
     * the lanes have quiesced).
     */
    Counter drops() const;
    /** Packets marked corrupt by the plan. */
    Counter corrupts() const;
    /** Packets delayed by the plan. */
    Counter delays() const;

  private:
    friend class FaultSite;

    std::uint64_t seed_;
    Rng root_;
    std::vector<FaultWindow> windows_;
    /** One counter block per makeSite() call (pointer-stable). */
    std::vector<std::unique_ptr<FaultSite::Counters>> siteCounters_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_FAULT_H_
