#include "sim/fault.h"

#include <utility>

namespace m3v::sim {

namespace {

bool
matches(const FaultWindow &w, FaultKind kind, const std::string &site,
        Tick now)
{
    if (w.kind != kind)
        return false;
    if (now < w.start || now >= w.end)
        return false;
    return site.compare(0, w.site.size(), w.site) == 0;
}

} // namespace

FaultSite::FaultSite(FaultPlan *plan, std::string name, Rng rng,
                     Counters *counters)
    : plan_(plan), name_(std::move(name)), rng_(rng),
      counters_(counters)
{
}

bool
FaultSite::shouldDrop(Tick now)
{
    if (!plan_)
        return false;
    for (const auto &w : plan_->windows_) {
        if (!matches(w, FaultKind::DropPacket, name_, now))
            continue;
        if (rng_.nextBool(w.probability)) {
            counters_->drops.inc();
            return true;
        }
    }
    return false;
}

bool
FaultSite::shouldCorrupt(Tick now)
{
    if (!plan_)
        return false;
    for (const auto &w : plan_->windows_) {
        if (!matches(w, FaultKind::CorruptPacket, name_, now))
            continue;
        if (rng_.nextBool(w.probability)) {
            counters_->corrupts.inc();
            return true;
        }
    }
    return false;
}

Cycles
FaultSite::delayCycles(Tick now)
{
    if (!plan_)
        return 0;
    Cycles total = 0;
    for (const auto &w : plan_->windows_) {
        if (!matches(w, FaultKind::DelayPacket, name_, now))
            continue;
        if (rng_.nextBool(w.probability)) {
            counters_->delays.inc();
            total += w.delayCycles;
        }
    }
    return total;
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed), root_(seed)
{
}

void
FaultPlan::addWindow(FaultWindow w)
{
    windows_.push_back(std::move(w));
}

void
FaultPlan::addDrop(std::string site_prefix, double probability,
                   Tick start, Tick end)
{
    FaultWindow w;
    w.site = std::move(site_prefix);
    w.kind = FaultKind::DropPacket;
    w.start = start;
    w.end = end;
    w.probability = probability;
    addWindow(std::move(w));
}

void
FaultPlan::addCorrupt(std::string site_prefix, double probability,
                      Tick start, Tick end)
{
    FaultWindow w;
    w.site = std::move(site_prefix);
    w.kind = FaultKind::CorruptPacket;
    w.start = start;
    w.end = end;
    w.probability = probability;
    addWindow(std::move(w));
}

void
FaultPlan::addDelay(std::string site_prefix, double probability,
                    Cycles delay_cycles, Tick start, Tick end)
{
    FaultWindow w;
    w.site = std::move(site_prefix);
    w.kind = FaultKind::DelayPacket;
    w.start = start;
    w.end = end;
    w.probability = probability;
    w.delayCycles = delay_cycles;
    addWindow(std::move(w));
}

FaultSite
FaultPlan::makeSite(std::string name)
{
    siteCounters_.push_back(std::make_unique<FaultSite::Counters>());
    return FaultSite(this, std::move(name), root_.split(),
                     siteCounters_.back().get());
}

Counter
FaultPlan::drops() const
{
    Counter sum;
    for (const auto &c : siteCounters_)
        sum.absorb(c->drops);
    return sum;
}

Counter
FaultPlan::corrupts() const
{
    Counter sum;
    for (const auto &c : siteCounters_)
        sum.absorb(c->corrupts);
    return sum;
}

Counter
FaultPlan::delays() const
{
    Counter sum;
    for (const auto &c : siteCounters_)
        sum.absorb(c->delays);
    return sum;
}

} // namespace m3v::sim
