/**
 * @file
 * A fixed-capacity single-producer single-consumer ring.
 *
 * Used as the cross-lane mailbox of the parallel event core: the
 * producer is the worker thread executing the source lane's window,
 * the consumer is the thread draining mailboxes at the window
 * barrier. Producer and consumer run concurrently in the general
 * case, so head/tail are atomics with acquire/release ordering; the
 * payload slots themselves are only touched by the side that owns
 * them at that moment (classic Lamport queue).
 *
 * Capacity is rounded up to a power of two; one slot is never used so
 * full/empty are distinguishable without a counter.
 */

#ifndef M3VSIM_SIM_SPSC_H_
#define M3VSIM_SIM_SPSC_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

namespace m3v::sim {

/** Bounded SPSC ring. tryPush/tryPop never block or allocate. */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : mask_(std::bit_ceil(capacity + 1) - 1),
          slots_(std::make_unique<T[]>(mask_ + 1))
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Usable capacity (requested, rounded up to 2^k - 1). */
    std::size_t capacity() const { return mask_; }

    /** Producer side: enqueue, or return false when full. */
    bool
    tryPush(T &&v)
    {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t next = (tail + 1) & mask_;
        if (next == head_.load(std::memory_order_acquire))
            return false;
        slots_[tail] = std::move(v);
        tail_.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer side: dequeue, or return false when empty. */
    bool
    tryPop(T &out)
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return false;
        out = std::move(slots_[head]);
        head_.store((head + 1) & mask_, std::memory_order_release);
        return true;
    }

    /** Consumer-side emptiness check (exact for the consumer). */
    bool
    empty() const
    {
        return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire);
    }

  private:
    std::size_t mask_;
    std::unique_ptr<T[]> slots_;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_SPSC_H_
