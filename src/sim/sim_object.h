/**
 * @file
 * Base class for named simulation components.
 */

#ifndef M3VSIM_SIM_SIM_OBJECT_H_
#define M3VSIM_SIM_SIM_OBJECT_H_

#include <string>
#include <utility>

#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace m3v::sim {

/**
 * A named component bound to the simulation's event queue. Components
 * form a loose hierarchy through dotted names ("tile3.vdtu").
 */
class SimObject
{
  public:
    SimObject(EventQueue &eq, std::string name)
        : eq_(eq), name_(std::move(name))
    {
    }

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;
    virtual ~SimObject() = default;

    const std::string &name() const { return name_; }
    EventQueue &eventQueue() const { return eq_; }
    Tick now() const { return eq_.now(); }

  protected:
    /** Register (or look up) this object's counter "<name>.<leaf>". */
    Counter *
    statCounter(const char *leaf)
    {
        return eq_.metrics().counter(name_ + "." + leaf);
    }

    /** Register (or look up) this object's sampler "<name>.<leaf>". */
    Sampler *
    statSampler(const char *leaf)
    {
        return eq_.metrics().sampler(name_ + "." + leaf);
    }

    EventQueue &eq_;

  private:
    std::string name_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_SIM_OBJECT_H_
