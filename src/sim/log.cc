#include "sim/log.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace m3v::sim {

namespace {

LogLevel gLogLevel = LogLevel::Warn;

void
emit(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

LogLevel
logLevel()
{
    return gLogLevel;
}

void
setLogLevel(LogLevel lvl)
{
    gLogLevel = lvl;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

void
traceLog(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Trace)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("trace", fmt, ap);
    va_end(ap);
}

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return {};
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace m3v::sim
