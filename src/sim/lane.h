/**
 * @file
 * Sharded parallel event execution: per-lane event queues under
 * conservative window synchronization.
 *
 * A LaneScheduler owns N event lanes (each a full EventQueue with its
 * own calendar machinery, metrics registry, and tracer) and executes
 * them round by round on a pool of worker threads:
 *
 *   1. Barrier (single-threaded): drain every destination lane's
 *      fan-in ring, merge the messages in canonical
 *      (due, srcLane, dstLane, seq) order, schedule each into its
 *      destination lane at its due tick, and run the registered
 *      barrier hooks (e.g. the doorbell-batch flush law check).
 *   2. Window: W = min over lanes of the next pending tick. Every
 *      lane with work below W + lookahead executes all its events
 *      with tick < W + lookahead, each lane on one worker.
 *   3. Repeat until all lanes are empty and no messages are in
 *      flight.
 *
 * Safety: a cross-lane message posted at sender time t is due no
 * earlier than t + lookahead, so everything due inside the window
 * currently executing was already merged at the barrier before it —
 * lanes never observe a message "from the past". Lanes share no other
 * state, so any interleaving of same-window events in different lanes
 * yields the same result, and the canonical merge order makes the
 * destination lane's (tick, seq) order independent of thread count
 * and scheduling. Results are bit-identical for any jobs >= 1.
 *
 * Cross-lane posts land in one MPSC combining ring per *destination*
 * lane (sim/mpsc.h) rather than one SPSC mailbox per (src, dst) pair:
 * a high-fan-in lane (the NoC lane, a controller tile) is drained
 * with one ring walk instead of n, and capacity is pooled across
 * sources instead of fragmented per pair. Each (src, dst) pair still
 * stamps its own sender-order sequence, so the canonical sort — and
 * therefore bit-identical determinism — is unchanged.
 *
 * The lookahead comes from the model: it is the minimum latency of
 * any lane-crossing interaction (for the NoC boundary, the minimum
 * link traversal time derived from NocParams — see
 * noc::Noc::minLinkLatency()).
 *
 * jobs = 1 runs every window on the calling thread; a model built on
 * a single lane degenerates to exactly the sequential event loop.
 */

#ifndef M3VSIM_SIM_LANE_H_
#define M3VSIM_SIM_LANE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/mpsc.h"
#include "sim/types.h"
#include "sim/unique_function.h"

namespace m3v::sim {

/** Conservative-window scheduler over N event lanes. */
class LaneScheduler
{
  public:
    /**
     * @param lanes     Number of event lanes (model shards).
     * @param jobs      Worker threads executing lane windows. 1 means
     *                  everything runs on the calling thread.
     * @param lookahead Conservative window width in ticks; every
     *                  cross-lane post must be due at least this far
     *                  after the sender's current time. Must be > 0.
     * @param mailbox_capacity  Cross-lane slots per (src,dst) pair;
     *                  each destination's fan-in ring holds
     *                  lanes * mailbox_capacity entries, so the
     *                  aggregate bound matches the per-pair budget.
     */
    LaneScheduler(unsigned lanes, unsigned jobs, Tick lookahead,
                  std::size_t mailbox_capacity = 4096);
    ~LaneScheduler();

    LaneScheduler(const LaneScheduler &) = delete;
    LaneScheduler &operator=(const LaneScheduler &) = delete;

    unsigned lanes() const { return static_cast<unsigned>(n_); }
    unsigned jobs() const { return jobs_; }
    Tick lookahead() const { return lookahead_; }

    /** Lane @p i's event queue. Components of shard i are
     *  constructed against this queue and schedule only here. */
    EventQueue &lane(unsigned i) { return *lanes_[i]; }
    const EventQueue &lane(unsigned i) const { return *lanes_[i]; }

    /**
     * Post a closure from lane @p src into lane @p dst, to run at
     * absolute tick @p due. Must be called from src's window (or
     * before run(), during model construction). While running, due
     * must be >= lane(src).now() + lookahead(); posting closer than
     * the lookahead is a model bug and panics. Returns false when
     * dst's fan-in ring is full — the caller owns backpressure
     * (e.g. retry from a later local event). @p fn runs on dst's
     * thread at tick due; it must touch only dst-lane state.
     */
    bool tryPost(unsigned src, unsigned dst, Tick due,
                 UniqueFunction<void()> fn);

    /** tryPost that panics on mailbox overflow. For protocols whose
     *  in-flight count is bounded (credits) below the capacity. */
    void post(unsigned src, unsigned dst, Tick due,
              UniqueFunction<void()> fn);

    /**
     * Register a hook that runs single-threaded at every barrier,
     * right after the mailbox merge (and once more when the last
     * window drains). No lane window is executing while hooks run, so
     * a hook may inspect any lane's components — the place to assert
     * cross-lane flush laws such as "no doorbell batch is still
     * pending when a barrier is crossed" (see dtu::Dtu).
     */
    void addBarrierHook(UniqueFunction<void()> fn);

    /** Run until every lane drains and no message is in flight. */
    void run();

    /** Synchronization rounds executed by run() so far. */
    std::uint64_t rounds() const { return rounds_; }

    /** Cross-lane messages merged so far. */
    std::uint64_t messagesMerged() const { return merged_; }

    /** Total events executed across all lanes. */
    std::uint64_t executed() const;

    /**
     * Merge every lane's metrics registry into @p out (counters add,
     * histograms add bucket-wise, samplers combine) in lane order, so
     * the merged dump of a sharded model carries the same keys and
     * values as the same model built on one lane.
     */
    void mergeMetrics(MetricsRegistry &out);

    /** Enable all trace categories on every lane's tracer. */
    void enableAllTracing();

    /** Merge every lane's trace into @p out, in lane order. */
    void mergeTrace(Tracer &out);

  private:
    struct Msg
    {
        Tick due = 0;
        std::uint64_t seq = 0;
        std::uint32_t srcLane = 0;
        std::uint32_t dstLane = 0;
        UniqueFunction<void()> fn;
    };

    /** Drain all fan-in rings and schedule the messages canonically. */
    void mergeMailboxes();

    /** Next pending tick over all lanes; false if all empty. */
    bool nextTick(Tick *out);

    void workerLoop(unsigned worker);
    void runRoundOnWorkers(Tick limit);

    std::size_t n_;
    unsigned jobs_;
    Tick lookahead_;
    bool running_ = false;
    std::uint64_t rounds_ = 0;
    std::uint64_t merged_ = 0;

    std::vector<std::unique_ptr<EventQueue>> lanes_;
    /** One MPSC combining ring per destination lane. */
    std::vector<std::unique_ptr<MpscRing<Msg>>> rings_;
    /**
     * Sender-order sequence per (src, dst) pair, indexed
     * src * n_ + dst. Element (s, d) is touched only by lane s's
     * worker thread; successive windows of a lane are ordered by the
     * barrier, so no element is ever written concurrently.
     */
    std::vector<std::uint64_t> seqs_;
    std::vector<Msg> scratch_;
    std::vector<UniqueFunction<void()>> barrierHooks_;

    //
    // Worker pool (created once; parked between rounds).
    //
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    /** Lanes active this round; workers claim indices from next_. */
    std::vector<unsigned> active_;
    std::size_t next_ = 0;
    std::size_t pendingLanes_ = 0;
    Tick roundLimit_ = 0;
    std::uint64_t roundId_ = 0;
    bool shutdown_ = false;
};

/**
 * Run independent work items on @p jobs threads. Each cell is a
 * self-contained closure (its own EventQueue, its own result slot);
 * cells are claimed in index order and joined before returning, so
 * with deterministic cells the overall result is independent of jobs.
 * jobs <= 1 runs the cells inline, in order. Used by the benchmark
 * harness (--jobs) to run sweep cells concurrently.
 */
void runCells(unsigned jobs,
              std::vector<UniqueFunction<void()>> cells);

} // namespace m3v::sim

#endif // M3VSIM_SIM_LANE_H_
