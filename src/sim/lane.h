/**
 * @file
 * Sharded parallel event execution: per-lane event queues under
 * conservative window synchronization.
 *
 * A LaneScheduler owns N event lanes (each a full EventQueue with its
 * own calendar machinery, metrics registry, and tracer) and executes
 * them round by round on a pool of worker threads:
 *
 *   1. Barrier (single-threaded): drain every destination lane's
 *      fan-in ring, merge the messages in canonical
 *      (due, srcLane, dstLane, seq) order, schedule each into its
 *      destination lane at its due tick, and run the registered
 *      barrier hooks (e.g. the doorbell-batch flush law check).
 *   2. Window: every lane i gets its own limit
 *        limit_i = min over non-empty lanes j of (nextTick_j + D(j, i))
 *      where D is the all-pairs minimum crossing latency (see below;
 *      D(i, i) is lane i's cheapest round trip through other lanes,
 *      bounding self-influence via replies). Every lane with work
 *      below its limit executes all its events with tick < limit_i,
 *      one whole lane per worker.
 *   3. Repeat until all lanes are empty and no messages are in
 *      flight.
 *
 * Lookahead is per lane pair. The model declares, for each (src, dst)
 * pair that ever posts, the minimum latency L(src, dst) of a crossing
 * in that direction (setPairLookahead); pairs that never post carry
 * the kNoCrossing sentinel and panic on post. From the direct matrix
 * the scheduler derives the all-pairs distance matrix D by
 * shortest-path closure (Floyd-Warshall with saturating adds), so a
 * lane that is h hops away contributes a window allowance of h link
 * latencies, not one. The scalar constructor fills the matrix
 * uniformly, which degenerates to the classic single-lookahead
 * windows: W = min next tick, limit = W + lookahead for every lane.
 *
 * Safety: a message posted by lane j during a round is due no earlier
 * than NT_j + L(j, k) >= NT_j + D(j, k) >= limit_k, where NT_j was
 * lane j's next pending tick when the limits were computed — no
 * matter how far lane j itself runs inside the round. Influence
 * through intermediate lanes is covered because D is closed under
 * path composition (D(j,k) <= D(j,m) + D(m,k)), and because messages
 * posted during a round are not executable until the next barrier has
 * merged them. A lane's influence on itself (a reply provoked by its
 * own posts) is bounded the same way by the diagonal round-trip term
 * D(i, i). Lanes share no other state, so any interleaving of
 * same-round events in different lanes yields the same result, and
 * the canonical merge order makes the destination lane's (tick, seq)
 * order independent of thread count and scheduling. Results are
 * bit-identical for any jobs >= 1. Progress: the lane holding the
 * globally minimal next tick always satisfies NT < limit (every
 * addend is positive), so each round executes at least one event.
 *
 * Work distribution inside a round is whole-lane work stealing: the
 * active lanes are published as a shared claim list sorted by
 * descending pending-event count (longest processing time first) and
 * idle workers pull the next unclaimed lane. A lane's FIFO is never
 * split across workers — lane-local event order, and therefore
 * determinism, is untouched by who executes the lane.
 *
 * Cross-lane posts land in one MPSC combining ring per *destination*
 * lane (sim/mpsc.h) rather than one SPSC mailbox per (src, dst) pair:
 * a high-fan-in lane (the NoC lane, a controller tile) is drained
 * with one ring walk instead of n, and capacity is pooled across
 * sources instead of fragmented per pair. Each (src, dst) pair still
 * stamps its own sender-order sequence, so the canonical sort — and
 * therefore bit-identical determinism — is unchanged.
 *
 * The lookahead values come from the model: for the NoC boundary, the
 * minimum link traversal time derived from NocParams (see
 * noc::Noc::minLinkLatency()), and for a mesh of router lanes the
 * per-link latencies declared by Noc::setRouterLanePlan().
 *
 * jobs = 1 runs every window on the calling thread; a model built on
 * a single lane degenerates to exactly the sequential event loop.
 */

#ifndef M3VSIM_SIM_LANE_H_
#define M3VSIM_SIM_LANE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/mpsc.h"
#include "sim/types.h"
#include "sim/unique_function.h"

namespace m3v::sim {

/** Conservative-window scheduler over N event lanes. */
class LaneScheduler
{
  public:
    /**
     * Pair-lookahead sentinel: no crossing is ever allowed between
     * the two lanes. Posts on such a pair panic; the pair contributes
     * nothing to any window limit.
     */
    static constexpr Tick kNoCrossing = ~Tick{0};

    /**
     * @param lanes     Number of event lanes (model shards).
     * @param jobs      Worker threads executing lane windows. 1 means
     *                  everything runs on the calling thread.
     * @param lookahead Uniform conservative lookahead in ticks: every
     *                  pair (src, dst) starts at this value, so every
     *                  cross-lane post must be due at least this far
     *                  after the sender's current time. Must be > 0.
     *                  Refine per pair with setPairLookahead().
     * @param mailbox_capacity  Cross-lane slots per (src,dst) pair;
     *                  each destination's fan-in ring holds
     *                  lanes * mailbox_capacity entries, so the
     *                  aggregate bound matches the per-pair budget.
     *                  Large-lane-count models whose in-flight count
     *                  is credit-bounded should pass a small value —
     *                  the rings are preallocated.
     */
    LaneScheduler(unsigned lanes, unsigned jobs, Tick lookahead,
                  std::size_t mailbox_capacity = 4096);
    ~LaneScheduler();

    LaneScheduler(const LaneScheduler &) = delete;
    LaneScheduler &operator=(const LaneScheduler &) = delete;

    unsigned lanes() const { return static_cast<unsigned>(n_); }
    unsigned jobs() const { return jobs_; }

    /** Minimum finite pair lookahead — the tightest crossing any
     *  pair allows. Uniform models: the constructor value. */
    Tick lookahead() const { return minPairL_; }

    /** Declared direct lookahead for (src, dst); kNoCrossing if the
     *  pair may never post. */
    Tick pairLookahead(unsigned src, unsigned dst) const;

    /**
     * Declare the minimum latency of a direct (src, dst) crossing.
     * Posts from src to dst must be due >= lane(src).now() + l; the
     * window limits are derived from the shortest-path closure of
     * these declarations. Must not be called while run() is active;
     * l must be > 0 (or kNoCrossing to forbid the pair).
     */
    void setPairLookahead(unsigned src, unsigned dst, Tick l);

    /** Set every (src, dst) entry — including the diagonal — to
     *  @p l. Typical mesh setup: fill with kNoCrossing, then declare
     *  the adjacent pairs. Must not be called while run() is active. */
    void fillPairLookaheads(Tick l);

    /** Lane @p i's event queue. Components of shard i are
     *  constructed against this queue and schedule only here. */
    EventQueue &lane(unsigned i) { return *lanes_[i]; }
    const EventQueue &lane(unsigned i) const { return *lanes_[i]; }

    /**
     * Post a closure from lane @p src into lane @p dst, to run at
     * absolute tick @p due. Must be called from src's window (or
     * before run(), during model construction). While running, due
     * must be >= lane(src).now() + pairLookahead(src, dst); the
     * boundary is inclusive — posting exactly at it is legal at any
     * tick, including across a calendar-horizon rollover. Posting
     * closer, or on a kNoCrossing pair, is a model bug and panics.
     * Returns false when dst's fan-in ring is full — the caller owns
     * backpressure (e.g. retry from a later local event). @p fn runs
     * on dst's thread at tick due; it must touch only dst-lane state.
     */
    bool tryPost(unsigned src, unsigned dst, Tick due,
                 UniqueFunction<void()> fn);

    /** tryPost that panics on mailbox overflow. For protocols whose
     *  in-flight count is bounded (credits) below the capacity. */
    void post(unsigned src, unsigned dst, Tick due,
              UniqueFunction<void()> fn);

    /**
     * Register a hook that runs single-threaded at every barrier,
     * right after the mailbox merge (and once more when the last
     * window drains). No lane window is executing while hooks run, so
     * a hook may inspect any lane's components — the place to assert
     * cross-lane flush laws such as "no doorbell batch is still
     * pending when a barrier is crossed" (see dtu::Dtu).
     */
    void addBarrierHook(UniqueFunction<void()> fn);

    /** Run until every lane drains and no message is in flight. */
    void run();

    /** Synchronization rounds executed by run() so far. */
    std::uint64_t rounds() const { return rounds_; }

    /** Cross-lane messages merged so far. */
    std::uint64_t messagesMerged() const { return merged_; }

    /** Total events executed across all lanes. */
    std::uint64_t executed() const;

    /**
     * Merge every lane's metrics registry into @p out (counters add,
     * histograms add bucket-wise, samplers combine) in lane order, so
     * the merged dump of a sharded model carries the same keys and
     * values as the same model built on one lane.
     */
    void mergeMetrics(MetricsRegistry &out);

    /** Enable all trace categories on every lane's tracer. */
    void enableAllTracing();

    /** Merge every lane's trace into @p out, in lane order. */
    void mergeTrace(Tracer &out);

  private:
    struct Msg
    {
        Tick due = 0;
        std::uint64_t seq = 0;
        std::uint32_t srcLane = 0;
        std::uint32_t dstLane = 0;
        UniqueFunction<void()> fn;
    };

    /** One claimable unit of round work: a whole lane and the
     *  window limit it may run up to (exclusive). */
    struct ActiveLane
    {
        unsigned lane = 0;
        Tick limit = 0;
    };

    /** Drain all fan-in rings and schedule the messages canonically. */
    void mergeMailboxes();

    /** Shortest-path closure of pairL_ into dist_; refreshes
     *  minPairL_ and the uniform fast-path flag. */
    void recomputeDistances();

    /** Fill limits_ from nts_ (per-lane next ticks). */
    void computeLimits();

    void workerLoop(unsigned worker);
    void runRoundOnWorkers();

    std::size_t n_;
    unsigned jobs_;
    /** Direct pair lookahead, src * n_ + dst. */
    std::vector<Tick> pairL_;
    /** Shortest-path crossing latency, src * n_ + dst. */
    std::vector<Tick> dist_;
    Tick minPairL_ = 0;
    /** All off-diagonal pairs equal: use the O(n) global window. */
    bool uniform_ = true;
    bool distDirty_ = true;
    bool running_ = false;
    std::uint64_t rounds_ = 0;
    std::uint64_t merged_ = 0;

    std::vector<std::unique_ptr<EventQueue>> lanes_;
    /** One MPSC combining ring per destination lane. */
    std::vector<std::unique_ptr<MpscRing<Msg>>> rings_;
    /**
     * Sender-order sequence per (src, dst) pair, indexed
     * src * n_ + dst. Element (s, d) is touched only by lane s's
     * worker thread; successive windows of a lane are ordered by the
     * barrier, so no element is ever written concurrently.
     */
    std::vector<std::uint64_t> seqs_;
    std::vector<Msg> scratch_;
    std::vector<UniqueFunction<void()>> barrierHooks_;
    /** Per-round scratch: next pending tick per lane (kNoCrossing =
     *  lane empty) and the derived per-lane window limits. */
    std::vector<Tick> nts_;
    std::vector<Tick> limits_;

    //
    // Worker pool (created once; parked between rounds).
    //
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    /** Lanes active this round, longest-pending first; idle workers
     *  steal whole entries by advancing next_. */
    std::vector<ActiveLane> active_;
    std::size_t next_ = 0;
    std::size_t pendingLanes_ = 0;
    std::uint64_t roundId_ = 0;
    bool shutdown_ = false;
};

/**
 * Run independent work items on @p jobs threads. Each cell is a
 * self-contained closure (its own EventQueue, its own result slot);
 * cells are claimed in index order and joined before returning, so
 * with deterministic cells the overall result is independent of jobs.
 * jobs <= 1 runs the cells inline, in order. Used by the benchmark
 * harness (--jobs) to run sweep cells concurrently.
 */
void runCells(unsigned jobs,
              std::vector<UniqueFunction<void()>> cells);

} // namespace m3v::sim

#endif // M3VSIM_SIM_LANE_H_
