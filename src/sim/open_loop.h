/**
 * @file
 * Open-loop arrival generator: a Poisson process whose rate is
 * modulated by a diurnal wave and explicit burst windows. Open-loop
 * means arrivals are scheduled by the clock, not by completions —
 * when the system slows down, work keeps arriving and queues grow,
 * which is the regime where admission control earns its keep (and
 * what closed-loop harnesses can never show).
 *
 * Fully deterministic: arrivals are a pure function of the seed and
 * the configured rate profile.
 */

#ifndef M3VSIM_SIM_OPEN_LOOP_H_
#define M3VSIM_SIM_OPEN_LOOP_H_

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace m3v::sim {

/** One open-loop arrival schedule. */
class OpenLoopSource
{
  public:
    /**
     * @param seed          arrival-jitter seed
     * @param rate_per_sec  base arrival rate (events per simulated s)
     * @param start         tick of the first possible arrival
     */
    OpenLoopSource(std::uint64_t seed, double rate_per_sec,
                   Tick start = 0)
        : rng_(seed), rate_(rate_per_sec), now_(start)
    {
    }

    /** Multiply the rate by @p multiplier within [start, end). */
    void
    addBurst(Tick start, Tick end, double multiplier)
    {
        bursts_.push_back(Burst{start, end, multiplier});
    }

    /**
     * Diurnal modulation: rate *= 1 + amplitude * sin(2*pi*t/period).
     * Compresses a day's load curve into @p period of simulated time.
     */
    void
    setDiurnal(double amplitude, Tick period)
    {
        diurnalAmp_ = amplitude;
        diurnalPeriod_ = period;
    }

    /** Instantaneous rate at @p t (events per simulated second). */
    double
    rateAt(Tick t) const
    {
        double r = rate_;
        if (diurnalPeriod_ > 0) {
            double phase = 2.0 * 3.14159265358979323846 *
                           (static_cast<double>(t % diurnalPeriod_) /
                            static_cast<double>(diurnalPeriod_));
            r *= 1.0 + diurnalAmp_ * std::sin(phase);
        }
        for (const Burst &b : bursts_)
            if (t >= b.start && t < b.end)
                r *= b.multiplier;
        return r > 0.0 ? r : 0.0;
    }

    /**
     * Tick of the next arrival (strictly advancing). Exponential
     * inter-arrivals at the instantaneous rate — a piecewise
     * approximation of the non-homogeneous Poisson process that is
     * exact within each constant-rate window.
     */
    Tick
    next()
    {
        double r = rateAt(now_);
        if (r <= 0.0)
            r = 1e-9;
        // Inverse-CDF draw; clamp u away from 0 so log() is finite.
        double u = rng_.nextDouble();
        if (u < 1e-12)
            u = 1e-12;
        double gap_sec = -std::log(u) / r;
        auto gap = static_cast<Tick>(
            gap_sec * static_cast<double>(kTicksPerSec));
        now_ += gap > 0 ? gap : 1;
        return now_;
    }

    Tick now() const { return now_; }

  private:
    struct Burst
    {
        Tick start = 0;
        Tick end = 0;
        double multiplier = 1.0;
    };

    Rng rng_;
    double rate_;
    Tick now_;
    double diurnalAmp_ = 0.0;
    Tick diurnalPeriod_ = 0;
    std::vector<Burst> bursts_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_OPEN_LOOP_H_
