/**
 * @file
 * The metrics registry: a per-EventQueue catalogue of named counters,
 * samplers, and histograms under hierarchical dotted paths
 * ("tile3.vdtu.tlb.misses", "noc.r2.port1.forwarded").
 *
 * Components register their instruments once at construction and keep
 * the returned handle; the hot path is then a plain pointer bump —
 * identical to the previous private-member counters, with no map
 * lookup. Registration is idempotent: asking for an existing path
 * returns the same handle (two components may share an instrument),
 * but asking for the same path with a different instrument kind is a
 * simulator bug and panics.
 *
 * The registry can enumerate everything it holds in sorted path order
 * and render it as a flat JSON object, which the bench binaries dump
 * via --metrics-out and ci/bench_smoke.sh sanity-checks.
 */

#ifndef M3VSIM_SIM_METRICS_H_
#define M3VSIM_SIM_METRICS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace m3v::sim {

/** Catalogue of named instruments. Handles stay valid for the
 *  registry's lifetime (instruments are heap-allocated; the index
 *  never moves them). */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get-or-create the counter at @p path. */
    Counter *counter(const std::string &path);

    /** Get-or-create the sampler at @p path. */
    Sampler *sampler(const std::string &path);

    /**
     * Get-or-create the histogram at @p path. The range arguments are
     * used only on first registration; later calls return the
     * existing instrument unchanged.
     */
    Histogram *histogram(const std::string &path, double lo, double hi,
                         std::size_t buckets);

    /** All registered paths in sorted order. */
    std::vector<std::string> paths() const;

    /** Number of registered instruments. */
    std::size_t size() const { return entries_.size(); }

    /** The counter at @p path, or nullptr (not created, any kind). */
    const Counter *findCounter(const std::string &path) const;

    /**
     * Render the registry as one flat JSON object, sorted by path.
     * Counters map to integers; samplers and histograms map to small
     * objects ({"count":..,"mean":..} / {"total":..,"p50":..}).
     */
    std::string toJson() const;

    /** Write toJson() to @p file (panics on I/O failure). */
    void writeJsonFile(const std::string &file) const;

    /**
     * Fold @p other into this registry: instruments at the same path
     * are combined (counters add, samplers merge their running
     * statistics, histograms add bucket-wise), unknown paths are
     * created. Kind or histogram-config mismatches panic. Used to
     * merge per-lane metric shards into one dump — absorbing N shards
     * of a sharded model yields the same JSON as the unsharded model.
     */
    void absorb(const MetricsRegistry &other);

  private:
    enum class Kind
    {
        Counter,
        Sampler,
        Histogram,
    };

    struct Entry
    {
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Sampler> s;
        std::unique_ptr<Histogram> h;
    };

    Entry &entryFor(const std::string &path, Kind kind);

    std::map<std::string, Entry> entries_;
};

/** JSON string escaping for paths/names (quotes, backslash, ctrl). */
std::string jsonEscape(const std::string &s);

} // namespace m3v::sim

#endif // M3VSIM_SIM_METRICS_H_
