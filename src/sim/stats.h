/**
 * @file
 * Lightweight statistics collection: counters, samplers (running
 * mean/stddev/min/max), histograms, and a table formatter used by the
 * benchmark harnesses to print paper-style result rows.
 */

#ifndef M3VSIM_SIM_STATS_H_
#define M3VSIM_SIM_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m3v::sim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    /** Fold another counter in (shard merging at dump time). */
    void absorb(const Counter &o) { value_ += o.value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running sample statistics using Welford's online algorithm, which is
 * numerically stable for long runs.
 */
class Sampler
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Population variance (0 for fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /**
     * Fold another sampler in (Chan et al. parallel combination of
     * Welford states). Exact for count/sum/min/max; mean/variance
     * combine within floating-point error.
     */
    void absorb(const Sampler &o);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** A fixed-bucket histogram over [lo, hi) with uniform bucket width. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    void reset();

    std::uint64_t total() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** Value below which the given fraction (0..1) of samples fall. */
    double percentile(double frac) const;

    /** Fold another histogram in; the bucket configuration must be
     *  identical (it is for shards of the same instrument). */
    void absorb(const Histogram &o);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Plain-text table printer. Columns are right-aligned except the first;
 * used by bench binaries to print the rows/series of the paper's tables
 * and figures.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render the table to a string (with a header separator line). */
    std::string str() const;

    /** Render and print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

} // namespace m3v::sim

#endif // M3VSIM_SIM_STATS_H_
