#include "sim/invariants.h"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "sim/event_queue.h"
#include "sim/log.h"

namespace m3v::sim {

void
Invariants::addCheck(std::string name, CheckFn fn, When when)
{
    checks_.push_back(Check{std::move(name), std::move(fn), when});
}

void
Invariants::attach(EventQueue &eq, std::uint64_t stride)
{
    eq.setInvariants(this, stride);
}

void
Invariants::fail(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::string msg = running_ ? running_->name + ": " + buf
                               : std::string(buf);
    if (panic_)
        sim::panic("invariant violated: %s", msg.c_str());
    total_++;
    if (violations_.size() < kMaxRecorded)
        violations_.push_back(std::move(msg));
}

void
Invariants::runAll(bool quiescent)
{
    for (const Check &c : checks_) {
        if (c.when == When::QuiescentOnly && !quiescent)
            continue;
        running_ = &c;
        c.fn(*this);
    }
    running_ = nullptr;
}

std::string
Invariants::report() const
{
    std::string out;
    for (const std::string &v : violations_) {
        out += v;
        out += '\n';
    }
    if (total_ > violations_.size()) {
        out += "... and " +
               std::to_string(total_ - violations_.size()) +
               " more violations (recording capped)\n";
    }
    return out;
}

void
Invariants::clear()
{
    violations_.clear();
    total_ = 0;
}

} // namespace m3v::sim
