#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/log.h"

namespace m3v::sim {

void
Sampler::add(double x)
{
    n_++;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Sampler::reset()
{
    *this = Sampler();
}

double
Sampler::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Sampler::stddev() const
{
    return std::sqrt(variance());
}

void
Sampler::absorb(const Sampler &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(o.n_);
    double delta = o.mean_ - mean_;
    double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_(0)
{
    // Validate before deriving anything: with buckets == 0 the width
    // computation divides by zero, so it must not run first.
    if (buckets == 0 || hi <= lo)
        panic("Histogram: invalid range [%f, %f) x %zu", lo, hi, buckets);
    width_ = (hi - lo) / static_cast<double>(buckets);
    counts_.assign(buckets, 0);
}

void
Histogram::add(double x)
{
    total_++;
    if (x < lo_) {
        underflow_++;
        return;
    }
    if (x >= hi_) {
        overflow_++;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    counts_[idx]++;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

void
Histogram::absorb(const Histogram &o)
{
    if (o.lo_ != lo_ || o.hi_ != hi_ ||
        o.counts_.size() != counts_.size())
        panic("Histogram: absorbing mismatched config "
              "[%f, %f) x %zu into [%f, %f) x %zu",
              o.lo_, o.hi_, o.counts_.size(), lo_, hi_,
              counts_.size());
    for (std::size_t i = 0; i < counts_.size(); i++)
        counts_[i] += o.counts_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::percentile(double frac) const
{
    if (total_ == 0)
        return lo_;
    auto target = static_cast<std::uint64_t>(
        frac * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); i++) {
        seen += counts_[i];
        if (seen > target)
            return bucketLo(i) + width_;
    }
    return hi_;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("TablePrinter: row has %zu cells, expected %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::str() const
{
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); c++)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); c++)
            width[c] = std::max(width[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); c++) {
            std::size_t pad = width[c] - row[c].size();
            if (c == 0) {
                line += row[c] + std::string(pad, ' ');
            } else {
                line += std::string(pad, ' ') + row[c];
            }
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); c++)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
fmtDouble(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

} // namespace m3v::sim
