/**
 * @file
 * Logging and error reporting for the simulator.
 *
 * Follows the gem5 convention: panic() flags simulator bugs (invariant
 * violations) and aborts; fatal() flags user/configuration errors and
 * exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef M3VSIM_SIM_LOG_H_
#define M3VSIM_SIM_LOG_H_

#include <cstdarg>
#include <string>

namespace m3v::sim {

/** Verbosity levels for trace logging. */
enum class LogLevel : int {
    None = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Global log verbosity; defaults to Warn. */
LogLevel logLevel();

/** Set the global log verbosity. */
void setLogLevel(LogLevel lvl);

/**
 * Report a simulator bug (an invariant that should never fail regardless
 * of configuration) and abort. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug-level trace line if the log level permits. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a trace-level line if the log level permits. */
void traceLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

} // namespace m3v::sim

#endif // M3VSIM_SIM_LOG_H_
