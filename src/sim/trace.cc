#include "sim/trace.h"

#include <cstdio>

#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/metrics.h"

namespace m3v::sim {

namespace {

const char *
catName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched: return "sched";
      case TraceCat::TmCall: return "tmcall";
      case TraceCat::Irq: return "irq";
      case TraceCat::Dtu: return "dtu";
      case TraceCat::Noc: return "noc";
      case TraceCat::Fault: return "fault";
      case TraceCat::M3x: return "m3x";
    }
    return "?";
}

/** Ticks (1 ps) to the trace format's microseconds. */
double
tsUs(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

} // namespace

void
Tracer::begin(TraceCat cat, std::uint32_t pid, std::uint32_t tid,
              const char *name)
{
    if (!enabled(cat))
        return;
    events_.push_back(Event{eq_.now(), pid, tid, 'B', cat, name});
    open_[trackKey(pid, tid)].push_back(name);
}

void
Tracer::end(TraceCat cat, std::uint32_t pid, std::uint32_t tid)
{
    if (!enabled(cat))
        return;
    auto it = open_.find(trackKey(pid, tid));
    if (it == open_.end() || it->second.empty()) {
        droppedEnds_++;
        return;
    }
    const char *name = it->second.back();
    it->second.pop_back();
    events_.push_back(Event{eq_.now(), pid, tid, 'E', cat, name});
}

void
Tracer::instant(TraceCat cat, std::uint32_t pid, std::uint32_t tid,
                const char *name)
{
    if (!enabled(cat))
        return;
    events_.push_back(Event{eq_.now(), pid, tid, 'i', cat, name});
}

void
Tracer::setProcessName(std::uint32_t pid, std::string name)
{
    processNames_[pid] = std::move(name);
}

void
Tracer::setThreadName(std::uint32_t pid, std::uint32_t tid,
                      std::string name)
{
    threadNames_[trackKey(pid, tid)] = std::move(name);
}

std::size_t
Tracer::openSpans(std::uint32_t pid, std::uint32_t tid) const
{
    auto it = open_.find(trackKey(pid, tid));
    return it == open_.end() ? 0 : it->second.size();
}

void
Tracer::closeOpenSpans()
{
    for (auto &[key, stack] : open_) {
        auto pid = static_cast<std::uint32_t>(key >> 32);
        auto tid = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
        while (!stack.empty()) {
            events_.push_back(Event{eq_.now(), pid, tid, 'E',
                                    TraceCat::Sched, stack.back()});
            stack.pop_back();
        }
    }
}

void
Tracer::absorb(Tracer &other)
{
    other.closeOpenSpans();
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
    for (const auto &[pid, name] : other.processNames_)
        processNames_.emplace(pid, name);
    for (const auto &[key, name] : other.threadNames_)
        threadNames_.emplace(key, name);
    droppedEnds_ += other.droppedEnds_;
}

std::string
Tracer::toJson()
{
    closeOpenSpans();

    std::string out = "{\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &ev) {
        if (!first)
            out += ",";
        first = false;
        out += "\n " + ev;
    };

    for (const auto &[pid, name] : processNames_) {
        emit(strprintf("{\"ph\": \"M\", \"pid\": %u, \"tid\": 0, "
                       "\"name\": \"process_name\", \"args\": "
                       "{\"name\": \"%s\"}}",
                       pid, jsonEscape(name).c_str()));
    }
    for (const auto &[key, name] : threadNames_) {
        emit(strprintf("{\"ph\": \"M\", \"pid\": %u, \"tid\": %u, "
                       "\"name\": \"thread_name\", \"args\": "
                       "{\"name\": \"%s\"}}",
                       static_cast<std::uint32_t>(key >> 32),
                       static_cast<std::uint32_t>(key & 0xFFFFFFFFu),
                       jsonEscape(name).c_str()));
    }

    for (const Event &e : events_) {
        if (e.ph == 'i') {
            emit(strprintf("{\"ph\": \"i\", \"ts\": %.6f, "
                           "\"pid\": %u, \"tid\": %u, \"cat\": "
                           "\"%s\", \"name\": \"%s\", \"s\": \"t\"}",
                           tsUs(e.ts), e.pid, e.tid, catName(e.cat),
                           jsonEscape(e.name).c_str()));
        } else {
            emit(strprintf("{\"ph\": \"%c\", \"ts\": %.6f, "
                           "\"pid\": %u, \"tid\": %u, \"cat\": "
                           "\"%s\", \"name\": \"%s\"}",
                           e.ph, tsUs(e.ts), e.pid, e.tid,
                           catName(e.cat),
                           jsonEscape(e.name).c_str()));
        }
    }
    out += "\n]}\n";
    return out;
}

void
Tracer::writeJsonFile(const std::string &file)
{
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f)
        fatal("Tracer: cannot write '%s'", file.c_str());
    std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

} // namespace m3v::sim
