/**
 * @file
 * Timeline tracing in Chrome trace-event format (loadable in Perfetto
 * / chrome://tracing): scoped spans ("B"/"E" duration events) and
 * instant events ("i"), grouped into tracks by (pid, tid).
 *
 * Conventions used by the simulator:
 *  - pid = tile id; tid = activity id for activity-level events
 *    (TMCall spans, switch instants);
 *  - tid = kTraceTidDtu for the tile's DTU engine track (command
 *    spans, retransmission instants);
 *  - tid = kTraceTidMux for the TileMux kernel track (IRQ instants,
 *    switches, watchdog kills);
 *  - pid = kTracePidNoc with tid = router id for NoC hop instants;
 *  - timestamps are the event queue's ticks (1 tick = 1 ps) converted
 *    to the format's microseconds.
 *
 * Tracing is off by default and gated per category at runtime:
 * every emit site is `if (trc->enabled(cat)) trc->begin(...)`, so a
 * disabled tracer costs one load+branch and never allocates (event
 * names must be string literals / static storage).
 *
 * Span nesting: ends are matched to begins per (pid, tid) stack, so
 * the emitted B/E pairs always nest properly; an end() without an
 * open span is dropped (and counted), and spans still open when the
 * trace is rendered are auto-closed at the current time, keeping the
 * output loadable no matter when the simulation stopped.
 */

#ifndef M3VSIM_SIM_TRACE_H_
#define M3VSIM_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.h"

namespace m3v::sim {

class EventQueue;

/** Trace categories (bitmask). */
enum class TraceCat : std::uint32_t
{
    Sched = 1u << 0,  ///< activity switches, scheduling
    TmCall = 1u << 1, ///< TMCall enter/exit spans
    Irq = 1u << 2,    ///< timer / core-request interrupts
    Dtu = 1u << 3,    ///< DTU command lifetime, retransmissions
    Noc = 1u << 4,    ///< NoC hops
    Fault = 1u << 5,  ///< fault injection, watchdog, crashes
    M3x = 1u << 6,    ///< M3x baseline kernel events
};

/** All categories enabled. */
constexpr std::uint32_t kTraceAll = 0x7f;

/** tid of the per-tile DTU engine track. */
constexpr std::uint32_t kTraceTidDtu = 0xFFFF;

/** tid of the per-tile TileMux kernel track. */
constexpr std::uint32_t kTraceTidMux = 0xFFFE;

/** pid of the NoC fabric (tid = router id). */
constexpr std::uint32_t kTracePidNoc = 0xFFFF0000;

/** Collects trace events for one EventQueue. */
class Tracer
{
  public:
    explicit Tracer(const EventQueue &eq) : eq_(eq) {}
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** One-branch gate used by every emit site. */
    bool
    enabled(TraceCat cat) const
    {
        return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
    }

    /** Any category enabled? */
    bool anyEnabled() const { return mask_ != 0; }

    /** Replace the category mask (bitwise OR of TraceCat). */
    void setMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t mask() const { return mask_; }

    void enableAll() { mask_ = kTraceAll; }
    void disableAll() { mask_ = 0; }

    /**
     * Open a span. @p name must have static storage duration (a
     * string literal); the tracer stores the pointer.
     */
    void begin(TraceCat cat, std::uint32_t pid, std::uint32_t tid,
               const char *name);

    /** Close the innermost open span of (pid, tid). */
    void end(TraceCat cat, std::uint32_t pid, std::uint32_t tid);

    /** Emit an instant event. Same lifetime rule for @p name. */
    void instant(TraceCat cat, std::uint32_t pid, std::uint32_t tid,
                 const char *name);

    /** Name the (pid) process track (metadata event). */
    void setProcessName(std::uint32_t pid, std::string name);

    /** Name the (pid, tid) thread track (metadata event). */
    void setThreadName(std::uint32_t pid, std::uint32_t tid,
                       std::string name);

    /** Recorded events so far (metadata not included). */
    std::size_t events() const { return events_.size(); }

    /** end() calls that found no open span (likely a bug). */
    std::uint64_t droppedEnds() const { return droppedEnds_; }

    /** Spans currently open on (pid, tid). */
    std::size_t openSpans(std::uint32_t pid, std::uint32_t tid) const;

    /**
     * Render the Chrome trace JSON ({"traceEvents": [...]}). Spans
     * still open are closed at the current simulated time first, so
     * the result is always properly nested.
     */
    std::string toJson();

    /** Write toJson() to @p file (panics on I/O failure). */
    void writeJsonFile(const std::string &file);

    /**
     * Fold @p other's events into this tracer: other's still-open
     * spans are closed at its own current time first, then its events
     * and track names are appended. Tracks are disjoint across lanes
     * (pid = tile id), so simple concatenation in lane order keeps
     * every per-track B/E sequence intact and the merged trace
     * deterministic. @p other keeps its events (it is only closed).
     */
    void absorb(Tracer &other);

  private:
    struct Event
    {
        Tick ts = 0;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        char ph = 'i';
        TraceCat cat = TraceCat::Sched;
        const char *name = nullptr;
    };

    static std::uint64_t
    trackKey(std::uint32_t pid, std::uint32_t tid)
    {
        return (static_cast<std::uint64_t>(pid) << 32) | tid;
    }

    void closeOpenSpans();

    const EventQueue &eq_;
    std::uint32_t mask_ = 0;
    std::vector<Event> events_;
    /** Open-span name stacks per (pid, tid). */
    std::map<std::uint64_t, std::vector<const char *>> open_;
    std::uint64_t droppedEnds_ = 0;
    std::map<std::uint32_t, std::string> processNames_;
    std::map<std::uint64_t, std::string> threadNames_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_TRACE_H_
