/**
 * @file
 * Overload-resilience state machines: server-side admission control
 * (bounded-queue shedding) and client-side retry discipline (retry
 * budgets, jittered backoff, circuit breakers).
 *
 * All of them are pure, deterministic state machines: transitions
 * depend only on the inputs fed to them (ticks come from the caller's
 * EventQueue, randomness from a seeded Rng), so services on different
 * event lanes and the jobs=1-vs-4 differential fuzzer reproduce the
 * same decisions bit for bit.
 *
 * The server side deliberately has no queue of its own: the DTU
 * receive ring *is* the admission queue. It is bounded by
 * construction (fixed slots; a full ring nacks the sender at the
 * wire), so Admission only decides, per fetched request, whether to
 * execute it or to shed it with Error::Overloaded — rejecting early
 * is cheap, queueing forever is not.
 */

#ifndef M3VSIM_SIM_OVERLOAD_H_
#define M3VSIM_SIM_OVERLOAD_H_

#include <algorithm>
#include <cstdint>

#include "sim/rng.h"
#include "sim/types.h"

namespace m3v::sim {

/** Server-side admission policy knobs (all zero = admit everything). */
struct AdmissionParams
{
    /**
     * Shed a request that already waited longer than this in the
     * receive ring (its deadline is blown; executing it only delays
     * the requests behind it). 0 disables the age check.
     */
    Tick maxQueueDelay = 0;

    /**
     * Shed while the ring occupancy (unread requests including the
     * one being decided) is at or above this mark — the per-endpoint
     * concurrency limit. 0 disables the occupancy check.
     */
    std::size_t highWater = 0;

    /** Modelled cost of shedding (decode + reject reply). */
    Cycles shedCost = 80;

    bool enabled() const { return maxQueueDelay > 0 || highWater > 0; }
};

/** Per-endpoint admission decision state. */
class Admission
{
  public:
    Admission() = default;
    explicit Admission(AdmissionParams p) : params_(p) {}

    const AdmissionParams &params() const { return params_; }
    bool enabled() const { return params_.enabled(); }

    /**
     * Decide the fetched request that arrived at @p arrival, with
     * @p occupancy unread requests in the ring (including this one).
     * Returns true to execute, false to shed.
     */
    bool
    admit(Tick now, Tick arrival, std::size_t occupancy)
    {
        if (params_.maxQueueDelay > 0 &&
            now - arrival > params_.maxQueueDelay) {
            shedByAge_++;
            return false;
        }
        if (params_.highWater > 0 &&
            occupancy >= params_.highWater) {
            shedByOccupancy_++;
            return false;
        }
        admitted_++;
        return true;
    }

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t shedByAge() const { return shedByAge_; }
    std::uint64_t shedByOccupancy() const { return shedByOccupancy_; }
    std::uint64_t shed() const { return shedByAge_ + shedByOccupancy_; }

    /** Fold the decision state into an FNV-1a style digest. */
    std::uint64_t
    digest(std::uint64_t h) const
    {
        for (std::uint64_t v : {admitted_, shedByAge_,
                                shedByOccupancy_}) {
            h ^= v;
            h *= 0x100000001b3ull;
        }
        return h;
    }

  private:
    AdmissionParams params_;
    std::uint64_t admitted_ = 0;
    std::uint64_t shedByAge_ = 0;
    std::uint64_t shedByOccupancy_ = 0;
};

/** Retry-budget (token bucket) knobs. */
struct RetryBudgetParams
{
    /** Tokens available before any successes accrue. */
    std::uint32_t initial = 8;
    /** Token cap. */
    std::uint32_t cap = 16;
    /** Successful calls needed to earn one token back. */
    std::uint32_t successesPerToken = 8;
};

/**
 * A retry budget: every retry spends a token, tokens accrue from
 * successes. Under a persistent outage the budget drains and retries
 * stop — the fleet's aggregate retry traffic stays proportional to
 * its success rate instead of amplifying the overload.
 */
class RetryBudget
{
  public:
    RetryBudget() : RetryBudget(RetryBudgetParams{}) {}
    explicit RetryBudget(RetryBudgetParams p)
        : params_(p), tokens_(p.initial)
    {
    }

    /** Spend a token for one retry; false = budget exhausted. */
    bool
    tryAcquire()
    {
        if (tokens_ == 0) {
            denied_++;
            return false;
        }
        tokens_--;
        spent_++;
        return true;
    }

    /** Record a successful call (accrues towards a token). */
    void
    recordSuccess()
    {
        if (++successes_ >= params_.successesPerToken) {
            successes_ = 0;
            tokens_ = std::min(tokens_ + 1, params_.cap);
        }
    }

    std::uint32_t tokens() const { return tokens_; }
    std::uint64_t spent() const { return spent_; }
    std::uint64_t denied() const { return denied_; }

    std::uint64_t
    digest(std::uint64_t h) const
    {
        for (std::uint64_t v : {static_cast<std::uint64_t>(tokens_),
                                spent_, denied_}) {
            h ^= v;
            h *= 0x100000001b3ull;
        }
        return h;
    }

  private:
    RetryBudgetParams params_;
    std::uint32_t tokens_ = 0;
    std::uint32_t successes_ = 0;
    std::uint64_t spent_ = 0;
    std::uint64_t denied_ = 0;
};

/** Circuit-breaker knobs. */
struct CircuitBreakerParams
{
    /** Consecutive failures that trip the breaker open. */
    std::uint32_t failureThreshold = 5;
    /** How long to stay open before probing (half-open). */
    Tick openInterval = 500 * kTicksPerUs;
    /** Consecutive half-open successes that close it again. */
    std::uint32_t halfOpenSuccesses = 2;
};

/**
 * A per-destination circuit breaker: Closed -> (failures) -> Open ->
 * (openInterval elapses) -> HalfOpen -> (successes) -> Closed, or
 * back to Open on a half-open failure. While open, allow() denies
 * calls outright so a dead or saturated destination sees no traffic
 * at all until the probe interval elapses.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker() : CircuitBreaker(CircuitBreakerParams{}) {}
    explicit CircuitBreaker(CircuitBreakerParams p) : params_(p) {}

    /** May a call be attempted at @p now? */
    bool
    allow(Tick now)
    {
        if (state_ == State::Open) {
            if (now < reopenAt_) {
                shortCircuits_++;
                return false;
            }
            state_ = State::HalfOpen;
            halfOpenOk_ = 0;
        }
        return true;
    }

    void
    recordSuccess(Tick)
    {
        failures_ = 0;
        if (state_ == State::HalfOpen &&
            ++halfOpenOk_ >= params_.halfOpenSuccesses) {
            state_ = State::Closed;
            resets_++;
        }
    }

    void
    recordFailure(Tick now)
    {
        if (state_ == State::HalfOpen ||
            (state_ == State::Closed &&
             ++failures_ >= params_.failureThreshold)) {
            state_ = State::Open;
            reopenAt_ = now + params_.openInterval;
            failures_ = 0;
            trips_++;
        }
    }

    State state() const { return state_; }
    std::uint64_t trips() const { return trips_; }
    std::uint64_t resets() const { return resets_; }
    std::uint64_t shortCircuits() const { return shortCircuits_; }

    std::uint64_t
    digest(std::uint64_t h) const
    {
        for (std::uint64_t v : {static_cast<std::uint64_t>(state_),
                                trips_, resets_, shortCircuits_}) {
            h ^= v;
            h *= 0x100000001b3ull;
        }
        return h;
    }

  private:
    CircuitBreakerParams params_;
    State state_ = State::Closed;
    std::uint32_t failures_ = 0;
    std::uint32_t halfOpenOk_ = 0;
    Tick reopenAt_ = 0;
    std::uint64_t trips_ = 0;
    std::uint64_t resets_ = 0;
    std::uint64_t shortCircuits_ = 0;
};

/** Jittered-backoff knobs. */
struct BackoffParams
{
    Cycles base = 4096;
    Cycles cap = 1 << 17;
};

/**
 * Exponential backoff with full jitter: attempt n waits a uniformly
 * random number of cycles in [base, min(cap, base * 2^(n+1))), drawn
 * from a seeded Rng, so a burst of clients that failed together does
 * not retry together — including on the very first (and most common)
 * retry, which draws from [base, 2*base).
 */
class JitterBackoff
{
  public:
    JitterBackoff(BackoffParams p, std::uint64_t seed)
        : params_(p), rng_(seed)
    {
    }

    /** Backoff for the next attempt (advances the attempt count). */
    Cycles
    next()
    {
        Cycles hi =
            params_.base << std::min<unsigned>(attempt_ + 1, 16);
        hi = std::min(hi, params_.cap);
        attempt_++;
        if (hi <= params_.base)
            return params_.base;
        return params_.base +
               rng_.nextBounded(hi - params_.base);
    }

    void reset() { attempt_ = 0; }

  private:
    BackoffParams params_;
    Rng rng_;
    unsigned attempt_ = 0;
};

/**
 * Per-destination client discipline bundle: one breaker and one retry
 * budget per destination (shared by all sessions talking to it), plus
 * the backoff jitter source. A reply deadline of 0 keeps the legacy
 * wait-forever RPC path (and its exact timing); fleet-style clients
 * set it so a lost reply surfaces as a typed, retryable Timeout.
 */
class OverloadGuard
{
  public:
    struct Params
    {
        RetryBudgetParams budget;
        CircuitBreakerParams breaker;
        BackoffParams backoff;
        /** Reply-wait deadline for RPCs (0 = wait forever). */
        Tick replyDeadline = 0;
    };

    explicit OverloadGuard(std::uint64_t seed)
        : OverloadGuard(seed, Params())
    {
    }

    OverloadGuard(std::uint64_t seed, Params p)
        : params_(p), budget_(p.budget), breaker_(p.breaker),
          backoff_(p.backoff, seed)
    {
    }

    const Params &params() const { return params_; }
    Tick replyDeadline() const { return params_.replyDeadline; }

    RetryBudget &budget() { return budget_; }
    const RetryBudget &budget() const { return budget_; }
    CircuitBreaker &breaker() { return breaker_; }
    const CircuitBreaker &breaker() const { return breaker_; }
    JitterBackoff &backoff() { return backoff_; }

  private:
    Params params_;
    RetryBudget budget_;
    CircuitBreaker breaker_;
    JitterBackoff backoff_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_OVERLOAD_H_
