/**
 * @file
 * Clock domains: conversion between a component's clock cycles and
 * global simulation ticks (picoseconds).
 */

#ifndef M3VSIM_SIM_CLOCK_H_
#define M3VSIM_SIM_CLOCK_H_

#include <cstdint>

#include "sim/types.h"

namespace m3v::sim {

/** A fixed-frequency clock domain. */
class Clock
{
  public:
    /** Construct a clock running at @p freq_hz. */
    explicit Clock(std::uint64_t freq_hz);

    std::uint64_t freqHz() const { return freqHz_; }

    /**
     * Convert cycles to ticks. Computed as cycles * 1e12 / freq using
     * 128-bit arithmetic so rounding error does not accumulate per
     * cycle (important for non-integral periods such as 3 GHz).
     */
    Tick cyclesToTicks(Cycles c) const;

    /** Convert ticks to whole cycles (rounding down). */
    Cycles ticksToCycles(Tick t) const;

    /** Ticks per single cycle (rounded to nearest). */
    Tick period() const;

  private:
    std::uint64_t freqHz_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_CLOCK_H_
