/**
 * @file
 * A move-only type-erased callable (C++20 stand-in for C++23's
 * std::move_only_function). Event handlers frequently capture
 * unique_ptr payloads, which std::function cannot hold.
 */

#ifndef M3VSIM_SIM_UNIQUE_FUNCTION_H_
#define M3VSIM_SIM_UNIQUE_FUNCTION_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace m3v::sim {

template <typename Sig>
class UniqueFunction;

/** Move-only callable wrapper. */
template <typename R, typename... Args>
class UniqueFunction<R(Args...)>
{
  public:
    UniqueFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    UniqueFunction(F &&f)
        : impl_(std::make_unique<Impl<std::decay_t<F>>>(
              std::forward<F>(f)))
    {
    }

    UniqueFunction(UniqueFunction &&) noexcept = default;
    UniqueFunction &operator=(UniqueFunction &&) noexcept = default;
    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    explicit operator bool() const { return impl_ != nullptr; }

    R
    operator()(Args... args)
    {
        return impl_->call(std::forward<Args>(args)...);
    }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual R call(Args... args) = 0;
    };

    template <typename F>
    struct Impl final : Base
    {
        explicit Impl(F f) : fn(std::move(f)) {}

        R
        call(Args... args) override
        {
            return fn(std::forward<Args>(args)...);
        }

        F fn;
    };

    std::unique_ptr<Base> impl_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_UNIQUE_FUNCTION_H_
