/**
 * @file
 * A move-only type-erased callable (C++20 stand-in for C++23's
 * std::move_only_function). Event handlers frequently capture
 * unique_ptr payloads, which std::function cannot hold.
 *
 * Small closures (up to kInlineSize bytes, suitably aligned and
 * nothrow-move-constructible) are stored inline in the wrapper itself
 * — no heap allocation. This is the foundation of the allocation-free
 * event hot path: the simulator's dominant closures ([this], [h],
 * [this, id]-style captures) all fit. Larger or over-aligned callables
 * fall back to a single heap allocation, same as before.
 *
 * Type erasure uses a static ops table (three function pointers)
 * instead of a virtual base, so the inline path needs no vtable-bearing
 * object and moving is a memcpy-sized operation.
 */

#ifndef M3VSIM_SIM_UNIQUE_FUNCTION_H_
#define M3VSIM_SIM_UNIQUE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace m3v::sim {

template <typename Sig>
class UniqueFunction;

/** Move-only callable wrapper with small-buffer optimization. */
template <typename R, typename... Args>
class UniqueFunction<R(Args...)>
{
  public:
    /** Closures up to this size (and max_align_t alignment) are
     *  stored inline; sized so an event record stays one cache-line
     *  pair and typical multi-capture lambdas still fit. */
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    /** True if a callable of type F is stored inline (no heap). */
    template <typename F>
    static constexpr bool storedInline =
        sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
        std::is_nothrow_move_constructible_v<F>;

    UniqueFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    UniqueFunction(F &&f)
    {
        using DF = std::decay_t<F>;
        if constexpr (storedInline<DF>) {
            ::new (static_cast<void *>(buf_)) DF(std::forward<F>(f));
            ops_ = &InlineOps<DF>::ops;
        } else {
            ::new (static_cast<void *>(buf_))
                DF *(new DF(std::forward<F>(f)));
            ops_ = &HeapOps<DF>::ops;
        }
    }

    UniqueFunction(UniqueFunction &&other) noexcept
    {
        moveFrom(other);
    }

    UniqueFunction &
    operator=(UniqueFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    ~UniqueFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->call(buf_, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*call)(void *, Args...);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename F>
    struct InlineOps
    {
        static R
        call(void *p, Args... args)
        {
            return (*static_cast<F *>(p))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *src, void *dst) noexcept
        {
            F *f = static_cast<F *>(src);
            ::new (dst) F(std::move(*f));
            f->~F();
        }

        static void
        destroy(void *p) noexcept
        {
            static_cast<F *>(p)->~F();
        }

        static constexpr Ops ops{&call, &relocate, &destroy};
    };

    template <typename F>
    struct HeapOps
    {
        static F *&ptr(void *p) { return *static_cast<F **>(p); }

        static R
        call(void *p, Args... args)
        {
            return (*ptr(p))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *src, void *dst) noexcept
        {
            ::new (dst) F *(ptr(src));
        }

        static void
        destroy(void *p) noexcept
        {
            delete ptr(p);
        }

        static constexpr Ops ops{&call, &relocate, &destroy};
    };

    void
    moveFrom(UniqueFunction &other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(other.buf_, buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(kInlineAlign) unsigned char buf_[kInlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_UNIQUE_FUNCTION_H_
