#include "sim/metrics.h"

#include <cstdio>

#include "sim/log.h"

namespace m3v::sim {

namespace {

const char *
kindName(int k)
{
    switch (k) {
      case 0: return "counter";
      case 1: return "sampler";
      case 2: return "histogram";
    }
    return "?";
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += strprintf("\\u%04x", ch);
            else
                out += ch;
        }
    }
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::entryFor(const std::string &path, Kind kind)
{
    if (path.empty())
        panic("MetricsRegistry: empty path");
    auto it = entries_.find(path);
    if (it != entries_.end()) {
        if (it->second.kind != kind)
            panic("MetricsRegistry: '%s' registered as %s, requested "
                  "as %s",
                  path.c_str(),
                  kindName(static_cast<int>(it->second.kind)),
                  kindName(static_cast<int>(kind)));
        return it->second;
    }
    Entry e;
    e.kind = kind;
    return entries_.emplace(path, std::move(e)).first->second;
}

Counter *
MetricsRegistry::counter(const std::string &path)
{
    Entry &e = entryFor(path, Kind::Counter);
    if (!e.c)
        e.c = std::make_unique<Counter>();
    return e.c.get();
}

Sampler *
MetricsRegistry::sampler(const std::string &path)
{
    Entry &e = entryFor(path, Kind::Sampler);
    if (!e.s)
        e.s = std::make_unique<Sampler>();
    return e.s.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &path, double lo,
                           double hi, std::size_t buckets)
{
    Entry &e = entryFor(path, Kind::Histogram);
    if (!e.h)
        e.h = std::make_unique<Histogram>(lo, hi, buckets);
    return e.h.get();
}

std::vector<std::string>
MetricsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[path, entry] : entries_)
        out.push_back(path);
    return out;
}

const Counter *
MetricsRegistry::findCounter(const std::string &path) const
{
    auto it = entries_.find(path);
    if (it == entries_.end() || it->second.kind != Kind::Counter)
        return nullptr;
    return it->second.c.get();
}

void
MetricsRegistry::absorb(const MetricsRegistry &other)
{
    for (const auto &[path, oe] : other.entries_) {
        switch (oe.kind) {
          case Kind::Counter:
            if (oe.c)
                counter(path)->absorb(*oe.c);
            break;
          case Kind::Sampler:
            if (oe.s)
                sampler(path)->absorb(*oe.s);
            break;
          case Kind::Histogram:
            if (oe.h)
                histogram(path, oe.h->lo(), oe.h->hi(),
                          oe.h->buckets())
                    ->absorb(*oe.h);
            break;
        }
    }
}

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[path, e] : entries_) {
        if (!first)
            out += ",";
        first = false;
        out += "\n  \"" + jsonEscape(path) + "\": ";
        switch (e.kind) {
          case Kind::Counter:
            out += strprintf("%llu",
                             static_cast<unsigned long long>(
                                 e.c->value()));
            break;
          case Kind::Sampler:
            out += strprintf(
                "{\"count\": %llu, \"mean\": %g, \"stddev\": %g, "
                "\"min\": %g, \"max\": %g}",
                static_cast<unsigned long long>(e.s->count()),
                e.s->mean(), e.s->stddev(), e.s->min(), e.s->max());
            break;
          case Kind::Histogram:
            out += strprintf(
                "{\"total\": %llu, \"underflow\": %llu, "
                "\"overflow\": %llu, \"p50\": %g, \"p90\": %g, "
                "\"p99\": %g}",
                static_cast<unsigned long long>(e.h->total()),
                static_cast<unsigned long long>(e.h->underflow()),
                static_cast<unsigned long long>(e.h->overflow()),
                e.h->percentile(0.50), e.h->percentile(0.90),
                e.h->percentile(0.99));
            break;
        }
    }
    out += "\n}\n";
    return out;
}

void
MetricsRegistry::writeJsonFile(const std::string &file) const
{
    std::FILE *f = std::fopen(file.c_str(), "w");
    if (!f)
        fatal("MetricsRegistry: cannot write '%s'", file.c_str());
    std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
}

} // namespace m3v::sim
