/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator flows from seeded Xoroshiro128++
 * instances so runs are reproducible bit-for-bit across platforms
 * (std::mt19937 distributions are not portable across standard
 * libraries, hence the hand-rolled distributions here).
 */

#ifndef M3VSIM_SIM_RNG_H_
#define M3VSIM_SIM_RNG_H_

#include <cstdint>

namespace m3v::sim {

/**
 * Xoroshiro128++ generator (Blackman & Vigna). Small, fast, and good
 * enough for workload generation; not for cryptography.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Split off an independent stream. The child is seeded from this
     * generator's output, so sub-components get decorrelated streams
     * while the whole run still derives from one root seed.
     */
    Rng split();

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace m3v::sim

#endif // M3VSIM_SIM_RNG_H_
