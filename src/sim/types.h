/**
 * @file
 * Fundamental simulation types: simulated time (ticks) and cycle counts.
 *
 * A Tick is one picosecond of simulated time. Components convert between
 * their local clock cycles and ticks through sim::Clock.
 */

#ifndef M3VSIM_SIM_TYPES_H_
#define M3VSIM_SIM_TYPES_H_

#include <cstdint>

namespace m3v::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles of some (context-dependent) clock domain. */
using Cycles = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert ticks to (fractional) microseconds for reporting. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to (fractional) milliseconds for reporting. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert ticks to (fractional) seconds for reporting. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

} // namespace m3v::sim

#endif // M3VSIM_SIM_TYPES_H_
