/**
 * @file
 * The cross-lane boundary of the sharded NoC: a HopTarget that
 * forwards packets from one event lane into a component on another
 * lane with a fixed latency (the fabric's minimum link traversal
 * time, which is exactly the LaneScheduler's lookahead).
 *
 * Used together with OutPort::setLaunchEarly(latency): the port hands
 * its head packet to the LaneLink `latency` ticks before the drain
 * would complete, the link posts it across lanes due `latency` ticks
 * later, so the packet reaches the real target at the same tick as a
 * direct in-lane handover. On the destination lane a small relay
 * queue feeds the target and owns the retry loop when the target
 * refuses (backpressure stays lane-local); flow control back to the
 * sending port uses credits returned cross-lane, so the transmit side
 * never overruns the relay. Uncongested, credits never run out and
 * the timing is identical to the single-queue build; under congestion
 * the retry timing may differ from the sequential interleaving (but
 * stays deterministic and independent of worker count).
 */

#ifndef M3VSIM_NOC_LANE_LINK_H_
#define M3VSIM_NOC_LANE_LINK_H_

#include <vector>

#include "noc/packet.h"
#include "sim/lane.h"
#include "sim/ring_deque.h"

namespace m3v::noc {

/** One direction of a lane-crossing link. */
class LaneLink : public HopTarget
{
  public:
    /**
     * @param latency  Cross-lane delivery latency in ticks; must be
     *                 >= the scheduler's lookahead (the Noc passes
     *                 exactly minLinkLatency() for both).
     * @param credits  Packets in flight (posted or queued in the
     *                 relay) before the tx side reports "full".
     */
    LaneLink(sim::LaneScheduler &sched, unsigned src_lane,
             unsigned dst_lane, sim::Tick latency, HopTarget *target,
             std::size_t credits);

    /** Tx side; runs on the source lane. */
    bool acceptPacket(Packet &pkt,
                      sim::UniqueFunction<void()> on_space) override;

  private:
    void rxArrive(Packet pkt);
    void pumpRx();
    void returnCredit();

    sim::LaneScheduler &sched_;
    unsigned srcLane_;
    unsigned dstLane_;
    sim::Tick latency_;
    HopTarget *target_;

    // Source-lane state.
    std::size_t credits_;
    std::vector<sim::UniqueFunction<void()>> waiters_;

    // Destination-lane state.
    sim::RingDeque<Packet> rxQueue_;
    bool rxStalled_ = false;
};

} // namespace m3v::noc

#endif // M3VSIM_NOC_LANE_LINK_H_
