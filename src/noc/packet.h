/**
 * @file
 * Network-on-chip packets and the hop-target interface.
 *
 * The NoC is a pure transport: it needs the destination for routing and
 * the size for timing. Higher layers (the DTUs) attach their semantic
 * payload as an opaque PacketData subclass, keeping the layering clean
 * (noc does not depend on dtu).
 */

#ifndef M3VSIM_NOC_PACKET_H_
#define M3VSIM_NOC_PACKET_H_

#include <cstdint>
#include <memory>

#include "sim/unique_function.h"

namespace m3v::noc {

/** Chip-global tile identifier. */
using TileId = std::uint32_t;

/** Base class for opaque packet payloads defined by higher layers. */
struct PacketData
{
    PacketData() = default;
    PacketData(const PacketData &) = default;
    PacketData(PacketData &&) = default;
    PacketData &operator=(const PacketData &) = default;
    PacketData &operator=(PacketData &&) = default;
    virtual ~PacketData() = default;

    /**
     * A faulty link flipped bits in this packet's payload. Called by
     * the output port that decides the corruption, alongside setting
     * Packet::corrupted. Implementations must mutate only their own
     * copy of any shared payload (copy-on-write): other holders of
     * the same bytes — notably a sender's retransmission buffer —
     * must keep the clean original. Default: no payload to damage.
     */
    virtual void corruptPayload() {}
};

/** A packet in flight on the NoC. */
struct Packet
{
    TileId src = 0;
    TileId dst = 0;

    /** Wire size in bytes (payload only; header is added per hop). */
    std::size_t bytes = 0;

    /**
     * Set by a faulty link (sim::FaultPlan): the payload failed its
     * CRC. Receivers discard such packets; reliable senders recover
     * via retransmission.
     */
    bool corrupted = false;

    /** Opaque payload interpreted by the receiving component. */
    std::unique_ptr<PacketData> data;
};

/**
 * Receiver side of a hop: the next router, or the component attached
 * to a tile (DTU, memory controller, device).
 */
class HopTarget
{
  public:
    virtual ~HopTarget() = default;

    /**
     * Try to hand over a packet. On success the packet is moved from
     * and true is returned; @p on_space is dropped. On backpressure
     * the packet is left untouched, @p on_space is registered to fire
     * exactly once when space frees, and false is returned.
     */
    virtual bool acceptPacket(Packet &pkt,
                              sim::UniqueFunction<void()> on_space) = 0;
};

} // namespace m3v::noc

#endif // M3VSIM_NOC_PACKET_H_
