#include "noc/router.h"

#include <utility>

#include "sim/log.h"

namespace m3v::noc {

NocParams
NocParams::forTiles(unsigned totalTiles)
{
    NocParams p;
    unsigned routers_needed = (totalTiles + 3) / 4;
    unsigned side = 2;
    while (side * side < routers_needed)
        side++;
    p.meshCols = side;
    p.meshRows = side;
    return p;
}

OutPort::OutPort(sim::EventQueue &eq, const sim::Clock &clk,
                 const NocParams &params, std::string name)
    : eq_(eq), clk_(clk), params_(params), name_(std::move(name))
{
    forwarded_ = eq.metrics().counter(name_ + ".forwarded");
    dropped_ = eq.metrics().counter(name_ + ".dropped");
    stalled_ = eq.metrics().counter(name_ + ".stalls");
    trc_ = &eq.tracer();
    if (params_.faults)
        faultSite_ = params_.faults->makeSite(name_);
}

bool
OutPort::hasSpace() const
{
    return queue_.size() < params_.portQueuePackets;
}

void
OutPort::enqueue(Packet &&pkt)
{
    if (!hasSpace())
        sim::panic("%s: enqueue on full port", name_.c_str());
    queue_.push_back(std::move(pkt));
    if (!draining_)
        startDrain();
}

void
OutPort::waitForSpace(sim::UniqueFunction<void()> cb)
{
    stalled_->inc();
    spaceWaiters_.push_back(std::move(cb));
}

void
OutPort::startDrain()
{
    // The head packet occupies the port for the router pipeline plus
    // its serialization time on the outgoing link.
    draining_ = true;
    Packet &head = queue_.front();
    std::size_t wire_bytes = head.bytes + params_.headerBytes;
    sim::Cycles ser =
        (wire_bytes + params_.linkBytesPerCycle - 1) /
        params_.linkBytesPerCycle;
    if (faultSite_.active()) {
        // The fault decision for this packet is taken once, when it
        // reaches the head of the queue. A dropped packet still
        // occupies the link for its serialization time (the flits
        // leave; they just never arrive).
        sim::Tick now = eq_.now();
        dropHead_ = faultSite_.shouldDrop(now);
        if (!dropHead_ && !head.corrupted &&
            faultSite_.shouldCorrupt(now)) {
            head.corrupted = true;
            // Actually damage the payload bytes (on the packet's own
            // copy-on-write view; a retransmission buffer sharing the
            // extent keeps the clean original).
            if (head.data)
                head.data->corruptPayload();
        }
        ser += faultSite_.delayCycles(now);
    }
    sim::Tick delay =
        clk_.cyclesToTicks(params_.pipelineCycles + ser);
    if (delay < launchEarly_)
        sim::panic("%s: drain %llu shorter than lane latency %llu",
                   name_.c_str(),
                   static_cast<unsigned long long>(delay),
                   static_cast<unsigned long long>(launchEarly_));
    eq_.schedule(delay - launchEarly_, [this]() { tryHandOver(); });
}

void
OutPort::tryHandOver()
{
    if (queue_.empty())
        sim::panic("%s: drain with empty queue", name_.c_str());
    if (dropHead_) {
        dropHead_ = false;
        if (launchEarly_ == 0)
            completeDrop();
        else
            eq_.schedule(launchEarly_, [this]() { completeDrop(); });
        return;
    }
    Packet &head = queue_.front();
    bool ok = target_->acceptPacket(head, [this]() { tryHandOver(); });
    if (!ok) {
        // Downstream is full: stay stalled; retry fires via callback.
        return;
    }
    if (launchEarly_ == 0)
        completeForward();
    else
        eq_.schedule(launchEarly_, [this]() { completeForward(); });
}

void
OutPort::completeDrop()
{
    queue_.pop_front();
    dropped_->inc();
    trc_->instant(sim::TraceCat::Fault, sim::kTracePidNoc, 0,
                  "pkt_drop");
    finishHead();
}

void
OutPort::completeForward()
{
    queue_.pop_front();
    forwarded_->inc();
    finishHead();
}

void
OutPort::finishHead()
{
    notifySpaceWaiters();
    if (!queue_.empty()) {
        startDrain();
    } else {
        draining_ = false;
    }
}

void
OutPort::notifySpaceWaiters()
{
    if (spaceWaiters_.empty())
        return;
    auto waiters = std::move(spaceWaiters_);
    spaceWaiters_.clear();
    for (auto &cb : waiters)
        cb();
}

Router::Router(sim::EventQueue &eq, const sim::Clock &clk,
               const NocParams &params, unsigned id, std::string name)
    : SimObject(eq, std::move(name)), clk_(clk), params_(params), id_(id)
{
    routed_ = statCounter("routed");
    trc_ = &eq.tracer();
    if (trc_->anyEnabled())
        trc_->setThreadName(sim::kTracePidNoc, id_,
                            "r" + std::to_string(id_));
}

std::size_t
Router::addPort()
{
    ports_.push_back(std::make_unique<OutPort>(
        eq_, clk_, params_,
        name() + ".port" + std::to_string(ports_.size())));
    return ports_.size() - 1;
}

void
Router::setRoute(TileId dst, std::size_t port_idx)
{
    if (dst >= routeTable_.size())
        routeTable_.resize(dst + 1, SIZE_MAX);
    routeTable_[dst] = port_idx;
}

bool
Router::acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    if (pkt.dst >= routeTable_.size() ||
        routeTable_[pkt.dst] == SIZE_MAX) {
        sim::panic("%s: no route for tile %u", name().c_str(), pkt.dst);
    }
    OutPort &out = *ports_[routeTable_[pkt.dst]];
    if (!out.hasSpace()) {
        out.waitForSpace(std::move(on_space));
        return false;
    }
    out.enqueue(std::move(pkt));
    routed_->inc();
    trc_->instant(sim::TraceCat::Noc, sim::kTracePidNoc, id_, "hop");
    return true;
}

} // namespace m3v::noc
