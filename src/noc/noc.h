/**
 * @file
 * The NoC facade: builds the star-mesh topology of the M3v platform
 * (a ColsxRows router mesh with tiles star-attached to routers, XY
 * routing between routers) and offers per-tile injection ports.
 *
 * The paper's FPGA platform uses a 2x2 star-mesh connecting eleven
 * tiles (Figure 4); this builder generalizes to any mesh size and tile
 * count so the gem5-style scalability runs (Figure 9, up to 12 user
 * tiles) use the same fabric.
 */

#ifndef M3VSIM_NOC_NOC_H_
#define M3VSIM_NOC_NOC_H_

#include <memory>
#include <vector>

#include "noc/packet.h"
#include "noc/router.h"
#include "sim/clock.h"
#include "sim/sim_object.h"
#include "sim/slab_pool.h"

namespace m3v::sim {
class Invariants;
class LaneScheduler;
}

namespace m3v::noc {

/** The network-on-chip fabric. */
class Noc : public sim::SimObject
{
  public:
    Noc(sim::EventQueue &eq, NocParams params);
    ~Noc() override;

    const NocParams &params() const { return params_; }
    const sim::Clock &clock() const { return clk_; }

    /**
     * The platform's payload-extent pool (sim/slab_pool.h). Owned by
     * the fabric because every tile of one platform shares it — a
     * PayloadRef allocated by a sender DTU travels through packets
     * and lane mailboxes and is released wherever the last holder
     * lives — while separate platforms (e.g. sweep cells under
     * --jobs) stay fully isolated.
     */
    sim::SlabPool &payloadPool() { return payloadPool_; }
    const sim::SlabPool &payloadPool() const { return payloadPool_; }

    /**
     * Switch the fabric into sharded (parallel) mode. Must be called
     * before any attachTile(). Tile @p id's sink and injection port
     * then live on lane @p lane_of_tile[id]; routers and mesh links
     * live on @p noc_lane, which must be the lane this Noc was
     * constructed against. Tile<->router handovers cross lanes
     * through LaneLinks with latency minLinkLatency() — exactly the
     * minimum time any packet occupies a link, so uncongested
     * handover timing is identical to the single-queue build, and
     * minLinkLatency() is a valid lookahead for @p sched.
     */
    void setLanePlan(sim::LaneScheduler &sched,
                     std::vector<unsigned> lane_of_tile,
                     unsigned noc_lane);

    /**
     * Minimum time any packet occupies a link: router pipeline plus
     * the serialization of an empty (header-only) packet. The
     * conservative lookahead of lane mode. The static overload lets
     * callers size a LaneScheduler before constructing the Noc
     * against one of its lanes.
     */
    sim::Tick minLinkLatency() const;
    static sim::Tick minLinkLatency(const NocParams &params);

    /**
     * Attach a component to the fabric. Tiles are assigned to routers
     * round-robin. Must precede finalize().
     */
    void attachTile(TileId id, HopTarget *sink);

    /** Build mesh links and routing tables. Call once after attach. */
    void finalize();

    /**
     * Inject a packet at its source tile's injection port. Same
     * semantics as HopTarget::acceptPacket: false means the injection
     * queue is full and @p on_space fires when it drains.
     */
    bool inject(Packet &pkt, sim::UniqueFunction<void()> on_space);

    /** Number of router-to-router hops between two tiles. */
    unsigned hopCount(TileId src, TileId dst) const;

    /** Total packets delivered to tile sinks (in lane mode, summed
     *  over the per-tile counters; read after the lanes quiesce). */
    std::uint64_t delivered() const;

    /** Total payload bytes delivered. */
    std::uint64_t deliveredBytes() const;

    /**
     * Register the fabric's drain law with @p inv (tests only,
     * quiescent-only): once the simulation drains, every router
     * output port and every tile injection port must be idle — no
     * queued packet, no drain in progress, no backpressure waiter
     * still parked. A violation means a packet or a flow-control
     * wake-up was lost in the fabric. In lane mode the ports live on
     * several lanes, so evaluate the registry only after
     * LaneScheduler::run() returns (see sim/invariants.h).
     */
    void registerInvariants(sim::Invariants &inv);

  private:
    struct TileAttachment;

    unsigned routerOf(TileId id) const;
    unsigned routerX(unsigned r) const { return r % params_.meshCols; }
    unsigned routerY(unsigned r) const { return r / params_.meshCols; }

    NocParams params_;
    sim::Clock clk_;
    sim::SlabPool payloadPool_;
    bool finalized_ = false;
    std::vector<std::unique_ptr<Router>> routers_;
    /** meshPort_[r][n]: port index on router r toward router n. */
    std::vector<std::vector<std::size_t>> meshPort_;
    std::vector<std::unique_ptr<TileAttachment>> tiles_;
    sim::Counter *delivered_;
    sim::Counter *deliveredBytes_;

    /** Lane mode (null = classic single-queue fabric). */
    sim::LaneScheduler *laneSched_ = nullptr;
    std::vector<unsigned> laneOfTile_;
    unsigned nocLane_ = 0;
    sim::Tick laneLatency_ = 0;
};

} // namespace m3v::noc

#endif // M3VSIM_NOC_NOC_H_
