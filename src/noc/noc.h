/**
 * @file
 * The NoC facade: builds the star-mesh topology of the M3v platform
 * (a ColsxRows router mesh with tiles star-attached to routers, XY
 * routing between routers) and offers per-tile injection ports.
 *
 * The paper's FPGA platform uses a 2x2 star-mesh connecting eleven
 * tiles (Figure 4); this builder generalizes to any k-ary 2D mesh
 * (optionally wrapped into a torus) and tile count, so the gem5-style
 * scalability runs (Figure 9) use the same fabric from 2 tiles up to
 * 1024-tile platforms (NocParams::forTiles()).
 */

#ifndef M3VSIM_NOC_NOC_H_
#define M3VSIM_NOC_NOC_H_

#include <memory>
#include <vector>

#include "noc/packet.h"
#include "noc/router.h"
#include "sim/clock.h"
#include "sim/sim_object.h"
#include "sim/slab_pool.h"

namespace m3v::sim {
class Invariants;
class LaneScheduler;
}

namespace m3v::noc {

class LaneLink;

/**
 * Typed configuration errors reported by Noc::validate(). finalize()
 * refuses to build a fabric whose validation fails, so a silently
 * degraded topology (e.g. 256 tiles crowding a 2x2 mesh past its
 * per-router credit accounting) can never reach simulation.
 */
enum class NocConfigError
{
    None,
    /** Tiles outnumber routers * maxTilesPerRouter. */
    TooManyTilesPerRouter,
    /** The same TileId was attached twice. */
    DuplicateTile,
};

/** Stable name for a NocConfigError (for messages and tests). */
const char *nocConfigErrorName(NocConfigError e);

/** The network-on-chip fabric. */
class Noc : public sim::SimObject
{
  public:
    Noc(sim::EventQueue &eq, NocParams params);
    ~Noc() override;

    const NocParams &params() const { return params_; }
    const sim::Clock &clock() const { return clk_; }

    /**
     * The platform's payload-extent pool (sim/slab_pool.h). Owned by
     * the fabric because every tile of one platform shares it — a
     * PayloadRef allocated by a sender DTU travels through packets
     * and lane mailboxes and is released wherever the last holder
     * lives — while separate platforms (e.g. sweep cells under
     * --jobs) stay fully isolated.
     */
    sim::SlabPool &payloadPool() { return payloadPool_; }
    const sim::SlabPool &payloadPool() const { return payloadPool_; }

    /**
     * Switch the fabric into sharded (parallel) mode. Must be called
     * before any attachTile(). Tile @p id's sink and injection port
     * then live on lane @p lane_of_tile[id]; routers and mesh links
     * live on @p noc_lane, which must be the lane this Noc was
     * constructed against. Tile<->router handovers cross lanes
     * through LaneLinks with latency minLinkLatency() — exactly the
     * minimum time any packet occupies a link, so uncongested
     * handover timing is identical to the single-queue build, and
     * minLinkLatency() is a valid lookahead for @p sched.
     */
    void setLanePlan(sim::LaneScheduler &sched,
                     std::vector<unsigned> lane_of_tile,
                     unsigned noc_lane);

    /**
     * Shard the fabric by *router* instead of funnelling every hop
     * through one NoC lane: router r, its tile exits, and its tiles'
     * injection ports live on lane @p lane_of_router[r]. Mesh links
     * between routers on different lanes cross through LaneLinks
     * launched minLinkLatency() early, so uncongested hop timing is
     * identical to the single-queue fabric. finalize() declares the
     * per-lane-pair lookaheads for every adjacent link on @p sched
     * (both directions — packets and credit returns); non-adjacent
     * lane pairs are left as declared by the caller, so the usual
     * setup is sched.fillPairLookaheads(LaneScheduler::kNoCrossing)
     * first, letting the scheduler derive distant-pair windows from
     * the mesh distance matrix. Tile sinks must be built on their
     * home router's lane (tiles are assigned round-robin; attachTile
     * returns the router). Must be called before any attachTile();
     * this Noc must have been constructed against one of @p sched's
     * lanes.
     */
    void setRouterLanePlan(sim::LaneScheduler &sched,
                           std::vector<unsigned> lane_of_router);

    /** Lane carrying router @p r under setRouterLanePlan(). */
    unsigned laneOfRouter(unsigned r) const;

    /** Router that the next attachTile() will assign (round-robin). */
    unsigned nextRouter() const;

    /**
     * Minimum time any packet occupies a link: router pipeline plus
     * the serialization of an empty (header-only) packet. The
     * conservative lookahead of lane mode. The static overload lets
     * callers size a LaneScheduler before constructing the Noc
     * against one of its lanes.
     */
    sim::Tick minLinkLatency() const;
    static sim::Tick minLinkLatency(const NocParams &params);

    /**
     * Attach a component to the fabric. Tiles are assigned to routers
     * round-robin. Must precede finalize(). Returns the router the
     * tile was assigned to.
     */
    unsigned attachTile(TileId id, HopTarget *sink);

    /**
     * Check the attached topology against the parameters without
     * building it: the typed-error form of the checks finalize()
     * enforces. Callable any time after the attach phase.
     */
    NocConfigError validate() const;

    /** Build mesh links and routing tables. Call once after attach;
     *  panics (with the typed error's name) if validate() fails. */
    void finalize();

    /**
     * Inject a packet at its source tile's injection port. Same
     * semantics as HopTarget::acceptPacket: false means the injection
     * queue is full and @p on_space fires when it drains.
     */
    bool inject(Packet &pkt, sim::UniqueFunction<void()> on_space);

    /** Number of router-to-router hops between two tiles (shortest
     *  path; wraparound-aware on a torus). */
    unsigned hopCount(TileId src, TileId dst) const;

    /**
     * Walk one step of the *installed* routing tables: the router a
     * packet for @p dst standing at @p router is forwarded to, or
     * @p router itself when the route is the tile's exit port there.
     * Only valid after finalize(); lets tests enumerate full routes
     * and check them against hopCount() without injecting traffic.
     */
    unsigned routeStep(unsigned router, TileId dst) const;

    /** Total packets delivered to tile sinks (in lane mode, summed
     *  over the per-tile counters; read after the lanes quiesce). */
    std::uint64_t delivered() const;

    /** Total payload bytes delivered. */
    std::uint64_t deliveredBytes() const;

    /** Backpressure stalls summed over every router output port —
     *  per-hop credit exhaustion events (see OutPort::stalls()). */
    std::uint64_t portStalls() const;

    /**
     * Register the fabric's drain law with @p inv (tests only,
     * quiescent-only): once the simulation drains, every router
     * output port and every tile injection port must be idle — no
     * queued packet, no drain in progress, no backpressure waiter
     * still parked. A violation means a packet or a flow-control
     * wake-up was lost in the fabric. In lane mode the ports live on
     * several lanes, so evaluate the registry only after
     * LaneScheduler::run() returns (see sim/invariants.h).
     */
    void registerInvariants(sim::Invariants &inv);

  private:
    struct TileAttachment;

    unsigned routerOf(TileId id) const;
    const TileAttachment &attachmentOf(TileId id) const;
    unsigned routerX(unsigned r) const { return r % params_.meshCols; }
    unsigned routerY(unsigned r) const { return r / params_.meshCols; }
    /** Step from router @p r one hop toward coordinate delta
     *  (+1/-1) in dimension x (horizontal = true) with wrap. */
    unsigned stepRouter(unsigned r, bool horizontal, int dir) const;
    /** Signed direction (+1/-1) to travel in a dimension of @p size
     *  from @p from to @p to; shorter way around on a torus. */
    int travelDir(unsigned from, unsigned to, unsigned size) const;
    /** Hops needed in one dimension (wraparound-aware). */
    unsigned dimHops(unsigned a, unsigned b, unsigned size) const;
    bool wrapsDim(unsigned size) const
    {
        return params_.wraparound && size > 2;
    }

    NocParams params_;
    sim::Clock clk_;
    sim::SlabPool payloadPool_;
    bool finalized_ = false;
    std::vector<std::unique_ptr<Router>> routers_;
    /** meshPort_[r][n]: port index on router r toward router n. */
    std::vector<std::vector<std::size_t>> meshPort_;
    std::vector<std::unique_ptr<TileAttachment>> tiles_;
    /** TileId -> index into tiles_ (SIZE_MAX = not attached). */
    std::vector<std::size_t> tileIndexOf_;
    sim::Counter *delivered_;
    sim::Counter *deliveredBytes_;

    /** Lane mode (null = classic single-queue fabric). */
    sim::LaneScheduler *laneSched_ = nullptr;
    std::vector<unsigned> laneOfTile_;
    unsigned nocLane_ = 0;
    sim::Tick laneLatency_ = 0;
    /** Router-sharded lane mode (setRouterLanePlan). */
    bool routerPlan_ = false;
    std::vector<unsigned> laneOfRouter_;
    /** Lane-crossing mesh links (router plan only). */
    std::vector<std::unique_ptr<LaneLink>> meshLinks_;
};

} // namespace m3v::noc

#endif // M3VSIM_NOC_NOC_H_
