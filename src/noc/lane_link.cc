#include "noc/lane_link.h"

#include <utility>

#include "sim/log.h"

namespace m3v::noc {

LaneLink::LaneLink(sim::LaneScheduler &sched, unsigned src_lane,
                   unsigned dst_lane, sim::Tick latency,
                   HopTarget *target, std::size_t credits)
    : sched_(sched), srcLane_(src_lane), dstLane_(dst_lane),
      latency_(latency), target_(target), credits_(credits)
{
    // Both directions post at this latency: packets src -> dst,
    // credit returns dst -> src. Each must satisfy its pair's
    // declared lookahead.
    for (auto [a, b] : {std::pair{src_lane, dst_lane},
                        std::pair{dst_lane, src_lane}}) {
        sim::Tick l = sched_.pairLookahead(a, b);
        if (l == sim::LaneScheduler::kNoCrossing)
            sim::panic("LaneLink: lanes %u->%u have no declared "
                       "lookahead",
                       a, b);
        if (latency_ < l)
            sim::panic("LaneLink: latency %llu below %u->%u "
                       "lookahead %llu",
                       static_cast<unsigned long long>(latency_), a,
                       b, static_cast<unsigned long long>(l));
    }
    if (credits_ == 0)
        sim::panic("LaneLink: zero credits");
}

bool
LaneLink::acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    if (credits_ == 0) {
        waiters_.push_back(std::move(on_space));
        return false;
    }
    credits_--;
    sim::Tick due = sched_.lane(srcLane_).now() + latency_;
    sched_.post(srcLane_, dstLane_, due,
                [this, p = std::move(pkt)]() mutable {
                    rxArrive(std::move(p));
                });
    return true;
}

void
LaneLink::rxArrive(Packet pkt)
{
    rxQueue_.push_back(std::move(pkt));
    if (!rxStalled_)
        pumpRx();
}

void
LaneLink::pumpRx()
{
    rxStalled_ = false;
    while (!rxQueue_.empty()) {
        Packet &head = rxQueue_.front();
        if (!target_->acceptPacket(head, [this]() { pumpRx(); })) {
            // Target full: its on_space fires pumpRx again; arrivals
            // in the meantime only queue.
            rxStalled_ = true;
            return;
        }
        rxQueue_.pop_front();
        sim::Tick due = sched_.lane(dstLane_).now() + latency_;
        sched_.post(dstLane_, srcLane_, due,
                    [this]() { returnCredit(); });
    }
}

void
LaneLink::returnCredit()
{
    credits_++;
    if (waiters_.empty())
        return;
    auto w = std::move(waiters_);
    waiters_.clear();
    for (auto &cb : w)
        cb();
}

} // namespace m3v::noc
