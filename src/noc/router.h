/**
 * @file
 * NoC router with per-output-port queues, store-and-forward timing,
 * and packet-level backpressure between hops.
 *
 * Each output port owns a bounded queue and drains one packet at a
 * time: a packet occupies the port for pipelineCycles plus its
 * serialization time (bytes / linkBytesPerCycle). If the downstream
 * element (next router or tile sink) cannot accept the packet, the
 * port stalls (head-of-line blocking) until space is signalled.
 */

#ifndef M3VSIM_NOC_ROUTER_H_
#define M3VSIM_NOC_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "noc/packet.h"
#include "sim/clock.h"
#include "sim/fault.h"
#include "sim/ring_deque.h"
#include "sim/sim_object.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace m3v::noc {

class Router;

/** Timing and sizing parameters of the NoC fabric. */
struct NocParams
{
    /** NoC clock (all routers and links). */
    std::uint64_t freqHz = 100'000'000;

    /** Link width: bytes serialized per NoC cycle. */
    std::size_t linkBytesPerCycle = 16;

    /** Router pipeline depth in cycles (route + arbitrate + xbar). */
    sim::Cycles pipelineCycles = 3;

    /** Output-port queue capacity in packets. */
    std::size_t portQueuePackets = 4;

    /** Per-packet wire header bytes (flit header overhead). */
    std::size_t headerBytes = 16;

    /** Mesh dimensions (routers). The paper's platform is 2x2. */
    unsigned meshCols = 2;
    unsigned meshRows = 2;

    /**
     * Wrap the mesh into a torus: each row and column closes into a
     * ring (only in dimensions with more than two routers — a 2-ring
     * would duplicate the direct link). Routing picks the shorter
     * direction per dimension, still XY-ordered. Off by default: the
     * paper's platform is a plain mesh.
     */
    bool wraparound = false;

    /**
     * Upper bound on tiles star-attached to one router. attachTile
     * distributes tiles round-robin; when the tile count exceeds
     * routers * maxTilesPerRouter the per-router credit accounting
     * degrades silently, so Noc::validate() reports
     * NocConfigError::TooManyTilesPerRouter instead (and finalize()
     * refuses the build). The paper's platform puts at most three
     * tiles on a router; 16 leaves headroom for dense configs while
     * still catching a 256-tile platform on a 2x2 mesh.
     */
    std::size_t maxTilesPerRouter = 16;

    /**
     * Mesh dimensions for a platform of @p totalTiles tiles: the
     * smallest square mesh (min 2x2) averaging at most ~4 tiles per
     * router, matching the paper's star-mesh density (eleven tiles
     * on four routers). 64 tiles -> 4x4, 256 -> 8x8, 1024 -> 16x16.
     * All other parameters keep their defaults.
     */
    static NocParams forTiles(unsigned totalTiles);

    /**
     * Optional fault plan. When set, every output port becomes a
     * fault site (named after the port) that can drop, corrupt, or
     * delay the packets it drains, and the DTUs attached to the
     * fabric switch their wire protocol into reliable mode
     * (retransmission + duplicate suppression). Null by default: the
     * fast path is then byte-identical to a fault-free build.
     */
    sim::FaultPlan *faults = nullptr;
};

/**
 * One output port: bounded queue + serializing drain to a HopTarget.
 */
class OutPort
{
  public:
    OutPort(sim::EventQueue &eq, const sim::Clock &clk,
            const NocParams &params, std::string name);

    /** Connect the port to its downstream element. */
    void connect(HopTarget *target) { target_ = target; }

    /** True if the queue has room for one more packet. */
    bool hasSpace() const;

    /** Enqueue a packet; caller must have checked hasSpace(). */
    void enqueue(Packet &&pkt);

    /** Register a one-shot waiter for queue space. */
    void waitForSpace(sim::UniqueFunction<void()> cb);

    /**
     * Lane-boundary mode: hand the head packet over @p t ticks before
     * its drain completes. The downstream element is then a LaneLink
     * that delivers cross-lane with exactly @p t latency, so the
     * packet still arrives at the original drain-end tick; the port
     * itself frees its queue slot (and starts the next drain) at the
     * unchanged drain-end tick as well. Every drain lasts at least
     * minLinkLatency() >= @p t, so the early handover never reaches
     * into the past. 0 (the default) restores the direct in-lane
     * handover at drain end.
     */
    void setLaunchEarly(sim::Tick t) { launchEarly_ = t; }

    std::uint64_t forwarded() const { return forwarded_->value(); }

    /** Packets this port dropped under a fault plan. */
    std::uint64_t dropped() const { return dropped_->value(); }

    /** Backpressure events: upstream found the queue full and parked
     *  a space waiter (per-hop credit exhaustion). */
    std::uint64_t stalls() const { return stalled_->value(); }

    /** Fully drained: nothing queued, in drain, or waiting for
     *  space (the quiescent state; see Noc::registerInvariants). */
    bool
    idle() const
    {
        return queue_.empty() && !draining_ && spaceWaiters_.empty();
    }

  private:
    void startDrain();
    void tryHandOver();
    void completeDrop();
    void completeForward();
    void finishHead();
    void notifySpaceWaiters();

    sim::EventQueue &eq_;
    const sim::Clock &clk_;
    const NocParams &params_;
    std::string name_;
    HopTarget *target_ = nullptr;
    /** RingDeque: steady-state forwarding must not churn the heap. */
    sim::RingDeque<Packet> queue_;
    bool draining_ = false;
    sim::Tick launchEarly_ = 0;
    /** Fault decision for the head packet, taken at drain start. */
    bool dropHead_ = false;
    std::vector<sim::UniqueFunction<void()>> spaceWaiters_;
    sim::Counter *forwarded_;
    sim::Counter *dropped_;
    sim::Counter *stalled_;
    sim::Tracer *trc_;
    sim::FaultSite faultSite_;
};

/**
 * A router in the mesh. Ports attach either neighbouring routers or
 * tiles (star topology per router).
 */
class Router : public sim::SimObject, public HopTarget
{
  public:
    Router(sim::EventQueue &eq, const sim::Clock &clk,
           const NocParams &params, unsigned id, std::string name);

    unsigned id() const { return id_; }

    /** Create a new output port; returns its index. */
    std::size_t addPort();

    OutPort &port(std::size_t idx) { return *ports_[idx]; }
    std::size_t numPorts() const { return ports_.size(); }

    /**
     * Install the routing decision: which output port a packet for
     * @p dst tile takes.
     */
    void setRoute(TileId dst, std::size_t port_idx);

    /** Installed route for @p dst (SIZE_MAX = none). */
    std::size_t
    route(TileId dst) const
    {
        return dst < routeTable_.size() ? routeTable_[dst] : SIZE_MAX;
    }

    // HopTarget: upstream elements push packets into the router, which
    // immediately places them on the routed output port's queue.
    bool acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space)
        override;

    std::uint64_t routed() const { return routed_->value(); }

  private:
    const sim::Clock &clk_;
    const NocParams &params_;
    unsigned id_;
    std::vector<std::unique_ptr<OutPort>> ports_;
    std::vector<std::size_t> routeTable_;
    sim::Counter *routed_;
    sim::Tracer *trc_;
};

} // namespace m3v::noc

#endif // M3VSIM_NOC_ROUTER_H_
