#include "noc/noc.h"

#include <cstdlib>
#include <utility>

#include "sim/log.h"

namespace m3v::noc {

/**
 * Per-tile plumbing: an injection port (tile -> router) and an exit
 * adapter (router -> tile sink) that counts deliveries.
 */
struct Noc::TileAttachment
{
    struct ExitAdapter : HopTarget
    {
        HopTarget *sink = nullptr;
        Noc *noc = nullptr;

        bool
        acceptPacket(Packet &pkt, std::function<void()> on_space)
            override
        {
            std::size_t payload = pkt.bytes;
            if (!sink->acceptPacket(pkt, std::move(on_space)))
                return false;
            noc->delivered_->inc();
            noc->deliveredBytes_->inc(payload);
            return true;
        }
    };

    TileId id = 0;
    unsigned router = 0;
    /** Tile-side injection port, drains into the router. */
    std::unique_ptr<OutPort> injectPort;
    /** Router-side port index toward the tile. */
    std::size_t exitPortIdx = 0;
    ExitAdapter exit;
};

Noc::Noc(sim::EventQueue &eq, NocParams params)
    : SimObject(eq, "noc"), params_(params), clk_(params.freqHz)
{
    delivered_ = statCounter("delivered");
    deliveredBytes_ = statCounter("delivered_bytes");
    if (eq.tracer().anyEnabled())
        eq.tracer().setProcessName(sim::kTracePidNoc, "noc");
    unsigned n = params_.meshCols * params_.meshRows;
    if (n == 0)
        sim::fatal("Noc: empty mesh");
    for (unsigned r = 0; r < n; r++) {
        routers_.push_back(std::make_unique<Router>(
            eq_, clk_, params_, r, "noc.r" + std::to_string(r)));
    }
    meshPort_.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
}

Noc::~Noc() = default;

unsigned
Noc::routerOf(TileId id) const
{
    for (const auto &t : tiles_)
        if (t->id == id)
            return t->router;
    sim::panic("Noc: unknown tile %u", id);
}

void
Noc::attachTile(TileId id, HopTarget *sink)
{
    if (finalized_)
        sim::panic("Noc: attach after finalize");
    auto att = std::make_unique<TileAttachment>();
    att->id = id;
    // Distribute tiles over routers round-robin, like the platform in
    // Figure 4 spreads its eleven tiles over four routers.
    att->router = static_cast<unsigned>(tiles_.size()) %
                  static_cast<unsigned>(routers_.size());
    att->exit.sink = sink;
    att->exit.noc = this;

    Router &r = *routers_[att->router];
    att->exitPortIdx = r.addPort();
    r.port(att->exitPortIdx).connect(&att->exit);

    att->injectPort = std::make_unique<OutPort>(
        eq_, clk_, params_, "noc.tile" + std::to_string(id) + ".inj");
    att->injectPort->connect(&r);

    tiles_.push_back(std::move(att));
}

void
Noc::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    unsigned cols = params_.meshCols;
    unsigned rows = params_.meshRows;
    unsigned n = cols * rows;

    // Create mesh links between orthogonal neighbours.
    for (unsigned r = 0; r < n; r++) {
        unsigned x = routerX(r), y = routerY(r);
        auto link_to = [&](unsigned other) {
            std::size_t p = routers_[r]->addPort();
            routers_[r]->port(p).connect(routers_[other].get());
            meshPort_[r][other] = p;
        };
        if (x + 1 < cols)
            link_to(r + 1);
        if (x > 0)
            link_to(r - 1);
        if (y + 1 < rows)
            link_to(r + cols);
        if (y > 0)
            link_to(r - cols);
    }

    // Routing: XY dimension-ordered between routers, then the tile's
    // exit port at its home router.
    for (const auto &t : tiles_) {
        for (unsigned r = 0; r < n; r++) {
            if (r == t->router) {
                routers_[r]->setRoute(t->id, t->exitPortIdx);
                continue;
            }
            unsigned x = routerX(r), y = routerY(r);
            unsigned tx = routerX(t->router), ty = routerY(t->router);
            unsigned next;
            if (x != tx) {
                next = (x < tx) ? r + 1 : r - 1;
            } else {
                next = (y < ty) ? r + cols : r - cols;
            }
            if (meshPort_[r][next] == SIZE_MAX)
                sim::panic("Noc: missing mesh link %u->%u", r, next);
            routers_[r]->setRoute(t->id, meshPort_[r][next]);
        }
    }
}

bool
Noc::inject(Packet &pkt, std::function<void()> on_space)
{
    if (!finalized_)
        sim::panic("Noc: inject before finalize");
    for (auto &t : tiles_) {
        if (t->id == pkt.src) {
            if (!t->injectPort->hasSpace()) {
                t->injectPort->waitForSpace(std::move(on_space));
                return false;
            }
            t->injectPort->enqueue(std::move(pkt));
            return true;
        }
    }
    sim::panic("Noc: inject from unknown tile %u", pkt.src);
}

unsigned
Noc::hopCount(TileId src, TileId dst) const
{
    unsigned rs = routerOf(src), rd = routerOf(dst);
    int dx = std::abs(static_cast<int>(routerX(rs)) -
                      static_cast<int>(routerX(rd)));
    int dy = std::abs(static_cast<int>(routerY(rs)) -
                      static_cast<int>(routerY(rd)));
    return static_cast<unsigned>(dx + dy);
}

} // namespace m3v::noc
