#include "noc/noc.h"

#include <cstdlib>
#include <utility>

#include "noc/lane_link.h"
#include "sim/invariants.h"
#include "sim/lane.h"
#include "sim/log.h"

namespace m3v::noc {

/**
 * Per-tile plumbing: an injection port (tile -> router) and an exit
 * adapter (router -> tile sink) that counts deliveries. In lane mode
 * the adapter runs on the tile's lane and counts into that lane's
 * registry, and both directions cross lanes through LaneLinks.
 */
struct Noc::TileAttachment
{
    struct ExitAdapter : HopTarget
    {
        HopTarget *sink = nullptr;
        sim::Counter *delivered = nullptr;
        sim::Counter *deliveredBytes = nullptr;

        bool
        acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space)
            override
        {
            std::size_t payload = pkt.bytes;
            if (!sink->acceptPacket(pkt, std::move(on_space)))
                return false;
            delivered->inc();
            deliveredBytes->inc(payload);
            return true;
        }
    };

    TileId id = 0;
    unsigned router = 0;
    /** Tile-side injection port, drains into the router. */
    std::unique_ptr<OutPort> injectPort;
    /** Router-side port index toward the tile. */
    std::size_t exitPortIdx = 0;
    ExitAdapter exit;
    /** Lane mode only: the two lane-crossing directions. */
    std::unique_ptr<LaneLink> injectLink;
    std::unique_ptr<LaneLink> exitLink;
};

Noc::Noc(sim::EventQueue &eq, NocParams params)
    : SimObject(eq, "noc"), params_(params), clk_(params.freqHz)
{
    delivered_ = statCounter("delivered");
    deliveredBytes_ = statCounter("delivered_bytes");
    if (eq.tracer().anyEnabled())
        eq.tracer().setProcessName(sim::kTracePidNoc, "noc");
    unsigned n = params_.meshCols * params_.meshRows;
    if (n == 0)
        sim::fatal("Noc: empty mesh");
    for (unsigned r = 0; r < n; r++) {
        routers_.push_back(std::make_unique<Router>(
            eq_, clk_, params_, r, "noc.r" + std::to_string(r)));
    }
    meshPort_.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
}

Noc::~Noc() = default;

sim::Tick
Noc::minLinkLatency(const NocParams &params)
{
    sim::Clock clk(params.freqHz);
    sim::Cycles header_ser =
        (params.headerBytes + params.linkBytesPerCycle - 1) /
        params.linkBytesPerCycle;
    return clk.cyclesToTicks(params.pipelineCycles + header_ser);
}

sim::Tick
Noc::minLinkLatency() const
{
    return minLinkLatency(params_);
}

void
Noc::setLanePlan(sim::LaneScheduler &sched,
                 std::vector<unsigned> lane_of_tile, unsigned noc_lane)
{
    if (!tiles_.empty() || finalized_)
        sim::panic("Noc: setLanePlan after attach/finalize");
    if (&sched.lane(noc_lane) != &eq_)
        sim::panic("Noc: noc_lane %u is not this Noc's event queue",
                   noc_lane);
    laneLatency_ = minLinkLatency();
    if (laneLatency_ < sched.lookahead())
        sim::panic("Noc: min link latency %llu below scheduler "
                   "lookahead %llu",
                   static_cast<unsigned long long>(laneLatency_),
                   static_cast<unsigned long long>(sched.lookahead()));
    laneSched_ = &sched;
    laneOfTile_ = std::move(lane_of_tile);
    nocLane_ = noc_lane;
}

unsigned
Noc::routerOf(TileId id) const
{
    for (const auto &t : tiles_)
        if (t->id == id)
            return t->router;
    sim::panic("Noc: unknown tile %u", id);
}

void
Noc::attachTile(TileId id, HopTarget *sink)
{
    if (finalized_)
        sim::panic("Noc: attach after finalize");
    auto att = std::make_unique<TileAttachment>();
    att->id = id;
    // Distribute tiles over routers round-robin, like the platform in
    // Figure 4 spreads its eleven tiles over four routers.
    att->router = static_cast<unsigned>(tiles_.size()) %
                  static_cast<unsigned>(routers_.size());
    att->exit.sink = sink;

    Router &r = *routers_[att->router];
    att->exitPortIdx = r.addPort();

    std::string inj_name = "noc.tile" + std::to_string(id) + ".inj";
    if (!laneSched_) {
        att->exit.delivered = delivered_;
        att->exit.deliveredBytes = deliveredBytes_;
        r.port(att->exitPortIdx).connect(&att->exit);
        att->injectPort = std::make_unique<OutPort>(eq_, clk_,
                                                    params_, inj_name);
        att->injectPort->connect(&r);
        tiles_.push_back(std::move(att));
        return;
    }

    // Lane mode: the injection port and the exit adapter live on the
    // tile's lane; both handover directions cross through LaneLinks
    // launched minLinkLatency() early, so arrival ticks match the
    // single-queue fabric.
    if (id >= laneOfTile_.size())
        sim::panic("Noc: no lane for tile %u", id);
    unsigned lt = laneOfTile_[id];
    sim::EventQueue &teq = laneSched_->lane(lt);
    std::string base = "noc.tile" + std::to_string(id);
    att->exit.delivered = teq.metrics().counter(base + ".delivered");
    att->exit.deliveredBytes =
        teq.metrics().counter(base + ".delivered_bytes");

    // Enough credits that the uncongested steady state (at most two
    // packets between launch and credit return) never stalls, plus
    // headroom for the congested case.
    std::size_t credits = params_.portQueuePackets + 2;

    att->exitLink = std::make_unique<LaneLink>(
        *laneSched_, nocLane_, lt, laneLatency_, &att->exit, credits);
    r.port(att->exitPortIdx).connect(att->exitLink.get());
    r.port(att->exitPortIdx).setLaunchEarly(laneLatency_);

    att->injectPort =
        std::make_unique<OutPort>(teq, clk_, params_, inj_name);
    att->injectLink = std::make_unique<LaneLink>(
        *laneSched_, lt, nocLane_, laneLatency_, &r, credits);
    att->injectPort->connect(att->injectLink.get());
    att->injectPort->setLaunchEarly(laneLatency_);

    tiles_.push_back(std::move(att));
}

void
Noc::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    unsigned cols = params_.meshCols;
    unsigned rows = params_.meshRows;
    unsigned n = cols * rows;

    // Create mesh links between orthogonal neighbours.
    for (unsigned r = 0; r < n; r++) {
        unsigned x = routerX(r), y = routerY(r);
        auto link_to = [&](unsigned other) {
            std::size_t p = routers_[r]->addPort();
            routers_[r]->port(p).connect(routers_[other].get());
            meshPort_[r][other] = p;
        };
        if (x + 1 < cols)
            link_to(r + 1);
        if (x > 0)
            link_to(r - 1);
        if (y + 1 < rows)
            link_to(r + cols);
        if (y > 0)
            link_to(r - cols);
    }

    // Routing: XY dimension-ordered between routers, then the tile's
    // exit port at its home router.
    for (const auto &t : tiles_) {
        for (unsigned r = 0; r < n; r++) {
            if (r == t->router) {
                routers_[r]->setRoute(t->id, t->exitPortIdx);
                continue;
            }
            unsigned x = routerX(r), y = routerY(r);
            unsigned tx = routerX(t->router), ty = routerY(t->router);
            unsigned next;
            if (x != tx) {
                next = (x < tx) ? r + 1 : r - 1;
            } else {
                next = (y < ty) ? r + cols : r - cols;
            }
            if (meshPort_[r][next] == SIZE_MAX)
                sim::panic("Noc: missing mesh link %u->%u", r, next);
            routers_[r]->setRoute(t->id, meshPort_[r][next]);
        }
    }
}

bool
Noc::inject(Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    if (!finalized_)
        sim::panic("Noc: inject before finalize");
    for (auto &t : tiles_) {
        if (t->id == pkt.src) {
            if (!t->injectPort->hasSpace()) {
                t->injectPort->waitForSpace(std::move(on_space));
                return false;
            }
            t->injectPort->enqueue(std::move(pkt));
            return true;
        }
    }
    sim::panic("Noc: inject from unknown tile %u", pkt.src);
}

std::uint64_t
Noc::delivered() const
{
    if (!laneSched_)
        return delivered_->value();
    std::uint64_t sum = 0;
    for (const auto &t : tiles_)
        sum += t->exit.delivered->value();
    return sum;
}

std::uint64_t
Noc::deliveredBytes() const
{
    if (!laneSched_)
        return deliveredBytes_->value();
    std::uint64_t sum = 0;
    for (const auto &t : tiles_)
        sum += t->exit.deliveredBytes->value();
    return sum;
}

void
Noc::registerInvariants(sim::Invariants &inv)
{
    inv.addCheck(
        name() + ".drained",
        [this](sim::Invariants &i) {
            for (const auto &r : routers_) {
                for (std::size_t p = 0; p < r->numPorts(); p++) {
                    if (!r->port(p).idle())
                        i.fail("%s port %zu not drained at "
                               "quiescence",
                               r->name().c_str(), p);
                }
            }
            for (const auto &t : tiles_) {
                if (t->injectPort && !t->injectPort->idle())
                    i.fail("tile %u inject port not drained at "
                           "quiescence",
                           t->id);
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

unsigned
Noc::hopCount(TileId src, TileId dst) const
{
    unsigned rs = routerOf(src), rd = routerOf(dst);
    int dx = std::abs(static_cast<int>(routerX(rs)) -
                      static_cast<int>(routerX(rd)));
    int dy = std::abs(static_cast<int>(routerY(rs)) -
                      static_cast<int>(routerY(rd)));
    return static_cast<unsigned>(dx + dy);
}

} // namespace m3v::noc
