#include "noc/noc.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "noc/lane_link.h"
#include "sim/invariants.h"
#include "sim/lane.h"
#include "sim/log.h"

namespace m3v::noc {

const char *
nocConfigErrorName(NocConfigError e)
{
    switch (e) {
    case NocConfigError::None:
        return "none";
    case NocConfigError::TooManyTilesPerRouter:
        return "too many tiles per router";
    case NocConfigError::DuplicateTile:
        return "duplicate tile id";
    }
    return "unknown";
}

/**
 * Per-tile plumbing: an injection port (tile -> router) and an exit
 * adapter (router -> tile sink) that counts deliveries. In lane mode
 * the adapter runs on the tile's lane and counts into that lane's
 * registry, and both directions cross lanes through LaneLinks; in
 * router-plan mode everything lives on the home router's lane and the
 * handover is direct.
 */
struct Noc::TileAttachment
{
    struct ExitAdapter : HopTarget
    {
        HopTarget *sink = nullptr;
        sim::Counter *delivered = nullptr;
        sim::Counter *deliveredBytes = nullptr;

        bool
        acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space)
            override
        {
            std::size_t payload = pkt.bytes;
            if (!sink->acceptPacket(pkt, std::move(on_space)))
                return false;
            delivered->inc();
            deliveredBytes->inc(payload);
            return true;
        }
    };

    TileId id = 0;
    unsigned router = 0;
    /** Tile-side injection port, drains into the router. */
    std::unique_ptr<OutPort> injectPort;
    /** Router-side port index toward the tile. */
    std::size_t exitPortIdx = 0;
    ExitAdapter exit;
    /** Tile-plan lane mode only: the two lane-crossing directions. */
    std::unique_ptr<LaneLink> injectLink;
    std::unique_ptr<LaneLink> exitLink;
};

Noc::Noc(sim::EventQueue &eq, NocParams params)
    : SimObject(eq, "noc"), params_(params), clk_(params.freqHz)
{
    delivered_ = statCounter("delivered");
    deliveredBytes_ = statCounter("delivered_bytes");
    if (eq.tracer().anyEnabled())
        eq.tracer().setProcessName(sim::kTracePidNoc, "noc");
    unsigned n = params_.meshCols * params_.meshRows;
    if (n == 0)
        sim::fatal("Noc: empty mesh");
    for (unsigned r = 0; r < n; r++) {
        routers_.push_back(std::make_unique<Router>(
            eq_, clk_, params_, r, "noc.r" + std::to_string(r)));
    }
    meshPort_.assign(n, std::vector<std::size_t>(n, SIZE_MAX));
}

Noc::~Noc() = default;

sim::Tick
Noc::minLinkLatency(const NocParams &params)
{
    sim::Clock clk(params.freqHz);
    sim::Cycles header_ser =
        (params.headerBytes + params.linkBytesPerCycle - 1) /
        params.linkBytesPerCycle;
    return clk.cyclesToTicks(params.pipelineCycles + header_ser);
}

sim::Tick
Noc::minLinkLatency() const
{
    return minLinkLatency(params_);
}

void
Noc::setLanePlan(sim::LaneScheduler &sched,
                 std::vector<unsigned> lane_of_tile, unsigned noc_lane)
{
    if (!tiles_.empty() || finalized_)
        sim::panic("Noc: setLanePlan after attach/finalize");
    if (laneSched_)
        sim::panic("Noc: lane plan already set");
    if (&sched.lane(noc_lane) != &eq_)
        sim::panic("Noc: noc_lane %u is not this Noc's event queue",
                   noc_lane);
    laneLatency_ = minLinkLatency();
    if (laneLatency_ < sched.lookahead())
        sim::panic("Noc: min link latency %llu below scheduler "
                   "lookahead %llu",
                   static_cast<unsigned long long>(laneLatency_),
                   static_cast<unsigned long long>(sched.lookahead()));
    laneSched_ = &sched;
    laneOfTile_ = std::move(lane_of_tile);
    nocLane_ = noc_lane;
}

void
Noc::setRouterLanePlan(sim::LaneScheduler &sched,
                       std::vector<unsigned> lane_of_router)
{
    if (!tiles_.empty() || finalized_)
        sim::panic("Noc: setRouterLanePlan after attach/finalize");
    if (laneSched_)
        sim::panic("Noc: lane plan already set");
    if (lane_of_router.size() != routers_.size())
        sim::panic("Noc: %zu router lanes for %zu routers",
                   lane_of_router.size(), routers_.size());
    for (unsigned l : lane_of_router)
        if (l >= sched.lanes())
            sim::panic("Noc: router lane %u outside %u lanes", l,
                       sched.lanes());
    laneLatency_ = minLinkLatency();
    laneSched_ = &sched;
    routerPlan_ = true;
    laneOfRouter_ = std::move(lane_of_router);
    // Rebuild the routers against their lanes' event queues: each
    // router's ports, metrics, and tracer become lane-local, so a
    // whole router (and its star of tiles) is one shard.
    for (unsigned r = 0; r < routers_.size(); r++) {
        routers_[r] = std::make_unique<Router>(
            sched.lane(laneOfRouter_[r]), clk_, params_, r,
            "noc.r" + std::to_string(r));
    }
}

unsigned
Noc::laneOfRouter(unsigned r) const
{
    if (!routerPlan_)
        sim::panic("Noc: laneOfRouter without a router lane plan");
    if (r >= laneOfRouter_.size())
        sim::panic("Noc: router %u outside mesh", r);
    return laneOfRouter_[r];
}

unsigned
Noc::nextRouter() const
{
    return static_cast<unsigned>(tiles_.size() % routers_.size());
}

unsigned
Noc::routerOf(TileId id) const
{
    return attachmentOf(id).router;
}

const Noc::TileAttachment &
Noc::attachmentOf(TileId id) const
{
    std::size_t idx =
        id < tileIndexOf_.size() ? tileIndexOf_[id] : SIZE_MAX;
    if (idx == SIZE_MAX)
        sim::panic("Noc: unknown tile %u", id);
    return *tiles_[idx];
}

unsigned
Noc::attachTile(TileId id, HopTarget *sink)
{
    if (finalized_)
        sim::panic("Noc: attach after finalize");
    auto att = std::make_unique<TileAttachment>();
    att->id = id;
    // Distribute tiles over routers round-robin, like the platform in
    // Figure 4 spreads its eleven tiles over four routers.
    att->router = nextRouter();
    att->exit.sink = sink;

    // O(1) id -> attachment lookup (inject() runs per packet). A
    // re-attached id keeps its first mapping; validate() reports the
    // duplicate before finalize() would build routes for it.
    if (id >= tileIndexOf_.size())
        tileIndexOf_.resize(id + 1, SIZE_MAX);
    if (tileIndexOf_[id] == SIZE_MAX)
        tileIndexOf_[id] = tiles_.size();

    Router &r = *routers_[att->router];
    att->exitPortIdx = r.addPort();
    unsigned assigned = att->router;

    std::string inj_name = "noc.tile" + std::to_string(id) + ".inj";
    if (!laneSched_) {
        att->exit.delivered = delivered_;
        att->exit.deliveredBytes = deliveredBytes_;
        r.port(att->exitPortIdx).connect(&att->exit);
        att->injectPort = std::make_unique<OutPort>(eq_, clk_,
                                                    params_, inj_name);
        att->injectPort->connect(&r);
        tiles_.push_back(std::move(att));
        return assigned;
    }

    std::string base = "noc.tile" + std::to_string(id);
    if (routerPlan_) {
        // Router-sharded mode: the tile lives on its home router's
        // lane, so both handover directions stay lane-local. Only the
        // mesh links between routers cross lanes (see finalize()).
        sim::EventQueue &req = laneSched_->lane(laneOfRouter_[att->router]);
        att->exit.delivered = req.metrics().counter(base + ".delivered");
        att->exit.deliveredBytes =
            req.metrics().counter(base + ".delivered_bytes");
        r.port(att->exitPortIdx).connect(&att->exit);
        att->injectPort =
            std::make_unique<OutPort>(req, clk_, params_, inj_name);
        att->injectPort->connect(&r);
        tiles_.push_back(std::move(att));
        return assigned;
    }

    // Lane mode: the injection port and the exit adapter live on the
    // tile's lane; both handover directions cross through LaneLinks
    // launched minLinkLatency() early, so arrival ticks match the
    // single-queue fabric.
    if (id >= laneOfTile_.size())
        sim::panic("Noc: no lane for tile %u", id);
    unsigned lt = laneOfTile_[id];
    sim::EventQueue &teq = laneSched_->lane(lt);
    att->exit.delivered = teq.metrics().counter(base + ".delivered");
    att->exit.deliveredBytes =
        teq.metrics().counter(base + ".delivered_bytes");

    // Enough credits that the uncongested steady state (at most two
    // packets between launch and credit return) never stalls, plus
    // headroom for the congested case.
    std::size_t credits = params_.portQueuePackets + 2;

    att->exitLink = std::make_unique<LaneLink>(
        *laneSched_, nocLane_, lt, laneLatency_, &att->exit, credits);
    r.port(att->exitPortIdx).connect(att->exitLink.get());
    r.port(att->exitPortIdx).setLaunchEarly(laneLatency_);

    att->injectPort =
        std::make_unique<OutPort>(teq, clk_, params_, inj_name);
    att->injectLink = std::make_unique<LaneLink>(
        *laneSched_, lt, nocLane_, laneLatency_, &r, credits);
    att->injectPort->connect(att->injectLink.get());
    att->injectPort->setLaunchEarly(laneLatency_);

    tiles_.push_back(std::move(att));
    return assigned;
}

NocConfigError
Noc::validate() const
{
    std::size_t mapped = 0;
    for (std::size_t idx : tileIndexOf_)
        if (idx != SIZE_MAX)
            mapped++;
    if (mapped != tiles_.size())
        return NocConfigError::DuplicateTile;
    std::vector<std::size_t> per_router(routers_.size(), 0);
    for (const auto &t : tiles_)
        per_router[t->router]++;
    for (std::size_t c : per_router)
        if (c > params_.maxTilesPerRouter)
            return NocConfigError::TooManyTilesPerRouter;
    return NocConfigError::None;
}

int
Noc::travelDir(unsigned from, unsigned to, unsigned size) const
{
    if (!wrapsDim(size))
        return to > from ? +1 : -1;
    unsigned fwd = (to + size - from) % size;
    unsigned back = (from + size - to) % size;
    return fwd <= back ? +1 : -1;
}

unsigned
Noc::stepRouter(unsigned r, bool horizontal, int dir) const
{
    unsigned cols = params_.meshCols, rows = params_.meshRows;
    if (horizontal) {
        unsigned x = routerX(r);
        unsigned nx = dir > 0 ? (x + 1 == cols ? 0 : x + 1)
                              : (x == 0 ? cols - 1 : x - 1);
        return routerY(r) * cols + nx;
    }
    unsigned y = routerY(r);
    unsigned ny = dir > 0 ? (y + 1 == rows ? 0 : y + 1)
                          : (y == 0 ? rows - 1 : y - 1);
    return ny * cols + routerX(r);
}

unsigned
Noc::dimHops(unsigned a, unsigned b, unsigned size) const
{
    unsigned d = a > b ? a - b : b - a;
    if (wrapsDim(size))
        d = std::min(d, size - d);
    return d;
}

void
Noc::finalize()
{
    if (finalized_)
        return;
    if (NocConfigError e = validate(); e != NocConfigError::None)
        sim::panic("Noc: invalid configuration: %s",
                   nocConfigErrorName(e));
    finalized_ = true;

    unsigned cols = params_.meshCols;
    unsigned rows = params_.meshRows;
    unsigned n = cols * rows;

    // On the router lane plan a mesh link to a router on another lane
    // crosses through a LaneLink; declare the pair's lookahead (both
    // directions: packets out, credits back) before constructing it.
    auto declare_pair = [&](unsigned a, unsigned b) {
        sim::Tick cur = laneSched_->pairLookahead(a, b);
        if (cur == sim::LaneScheduler::kNoCrossing ||
            cur > laneLatency_)
            laneSched_->setPairLookahead(a, b, laneLatency_);
    };

    // Create mesh links between neighbours (orthogonal, plus the
    // wrap links of a torus in dimensions wider than 2).
    for (unsigned r = 0; r < n; r++) {
        unsigned x = routerX(r), y = routerY(r);
        auto link_to = [&](unsigned other) {
            std::size_t p = routers_[r]->addPort();
            if (routerPlan_ &&
                laneOfRouter_[r] != laneOfRouter_[other]) {
                unsigned a = laneOfRouter_[r];
                unsigned b = laneOfRouter_[other];
                declare_pair(a, b);
                declare_pair(b, a);
                auto ll = std::make_unique<LaneLink>(
                    *laneSched_, a, b, laneLatency_,
                    routers_[other].get(),
                    params_.portQueuePackets + 2);
                routers_[r]->port(p).connect(ll.get());
                routers_[r]->port(p).setLaunchEarly(laneLatency_);
                meshLinks_.push_back(std::move(ll));
            } else {
                routers_[r]->port(p).connect(routers_[other].get());
            }
            meshPort_[r][other] = p;
        };
        if (x + 1 < cols)
            link_to(r + 1);
        if (x > 0)
            link_to(r - 1);
        if (y + 1 < rows)
            link_to(r + cols);
        if (y > 0)
            link_to(r - cols);
        if (wrapsDim(cols)) {
            if (x == cols - 1)
                link_to(r - (cols - 1));
            if (x == 0)
                link_to(r + (cols - 1));
        }
        if (wrapsDim(rows)) {
            if (y == rows - 1)
                link_to(r - (rows - 1) * cols);
            if (y == 0)
                link_to(r + (rows - 1) * cols);
        }
    }

    // Routing: XY dimension-ordered between routers (shorter way
    // around per dimension on a torus), then the tile's exit port at
    // its home router.
    for (const auto &t : tiles_) {
        for (unsigned r = 0; r < n; r++) {
            if (r == t->router) {
                routers_[r]->setRoute(t->id, t->exitPortIdx);
                continue;
            }
            unsigned x = routerX(r), y = routerY(r);
            unsigned tx = routerX(t->router), ty = routerY(t->router);
            unsigned next;
            if (x != tx)
                next = stepRouter(r, true, travelDir(x, tx, cols));
            else
                next = stepRouter(r, false, travelDir(y, ty, rows));
            if (meshPort_[r][next] == SIZE_MAX)
                sim::panic("Noc: missing mesh link %u->%u", r, next);
            routers_[r]->setRoute(t->id, meshPort_[r][next]);
        }
    }
}

bool
Noc::inject(Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    if (!finalized_)
        sim::panic("Noc: inject before finalize");
    std::size_t idx =
        pkt.src < tileIndexOf_.size() ? tileIndexOf_[pkt.src] : SIZE_MAX;
    if (idx == SIZE_MAX)
        sim::panic("Noc: inject from unknown tile %u", pkt.src);
    TileAttachment &t = *tiles_[idx];
    if (!t.injectPort->hasSpace()) {
        t.injectPort->waitForSpace(std::move(on_space));
        return false;
    }
    t.injectPort->enqueue(std::move(pkt));
    return true;
}

std::uint64_t
Noc::delivered() const
{
    if (!laneSched_)
        return delivered_->value();
    std::uint64_t sum = 0;
    for (const auto &t : tiles_)
        sum += t->exit.delivered->value();
    return sum;
}

std::uint64_t
Noc::deliveredBytes() const
{
    if (!laneSched_)
        return deliveredBytes_->value();
    std::uint64_t sum = 0;
    for (const auto &t : tiles_)
        sum += t->exit.deliveredBytes->value();
    return sum;
}

std::uint64_t
Noc::portStalls() const
{
    std::uint64_t sum = 0;
    for (const auto &r : routers_)
        for (std::size_t p = 0; p < r->numPorts(); p++)
            sum += r->port(p).stalls();
    for (const auto &t : tiles_)
        if (t->injectPort)
            sum += t->injectPort->stalls();
    return sum;
}

void
Noc::registerInvariants(sim::Invariants &inv)
{
    inv.addCheck(
        name() + ".drained",
        [this](sim::Invariants &i) {
            for (const auto &r : routers_) {
                for (std::size_t p = 0; p < r->numPorts(); p++) {
                    if (!r->port(p).idle())
                        i.fail("%s port %zu not drained at "
                               "quiescence",
                               r->name().c_str(), p);
                }
            }
            for (const auto &t : tiles_) {
                if (t->injectPort && !t->injectPort->idle())
                    i.fail("tile %u inject port not drained at "
                           "quiescence",
                           t->id);
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

unsigned
Noc::routeStep(unsigned router, TileId dst) const
{
    if (!finalized_)
        sim::panic("Noc: routeStep before finalize");
    if (router >= routers_.size())
        sim::panic("Noc: router %u outside mesh", router);
    std::size_t p = routers_[router]->route(dst);
    if (p == SIZE_MAX)
        sim::panic("Noc: no route from router %u to tile %u", router,
                   dst);
    for (unsigned n = 0; n < routers_.size(); n++)
        if (meshPort_[router][n] == p)
            return n;
    return router; // the tile's exit port at its home router
}

unsigned
Noc::hopCount(TileId src, TileId dst) const
{
    unsigned rs = routerOf(src), rd = routerOf(dst);
    return dimHops(routerX(rs), routerX(rd), params_.meshCols) +
           dimHops(routerY(rs), routerY(rd), params_.meshRows);
}

} // namespace m3v::noc
