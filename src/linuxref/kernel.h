/**
 * @file
 * The Linux 5.11 reference model: a monolithic kernel on a single
 * tile (the paper's comparison baseline, section 6). Processes are
 * coroutine threads; system calls trap into the kernel, charge
 * path-specific costs plus instruction-cache pollution, and either
 * return or block (scheduler). tmpfs and a UDP stack over the shared
 * NIC model provide the file and network paths the paper measures.
 *
 * Linux runs on one tile only because the platform's tiles are not
 * cache-coherent (section 6).
 */

#ifndef M3VSIM_LINUXREF_KERNEL_H_
#define M3VSIM_LINUXREF_KERNEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "linuxref/costs.h"
#include "linuxref/tmpfs.h"
#include "services/nic.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "tile/cache_model.h"
#include "tile/core.h"

namespace m3v::linuxref {

using Bytes = std::vector<std::uint8_t>;

class LinuxKernel;

/** Simplified stat result. */
struct StatInfo
{
    bool exists = false;
    bool isDir = false;
    std::uint64_t size = 0;
};

/** A Linux process. */
class LinuxProcess
{
  public:
    enum class State
    {
        Init,
        Ready,
        Running,
        Blocked,
        Dead,
    };

    LinuxProcess(LinuxKernel &kernel, tile::Core &core, int pid,
                 std::string name, std::size_t footprint);

    int pid() const { return pid_; }
    const std::string &name() const { return name_; }
    tile::Thread &thread() { return thread_; }
    State state() const { return state_; }
    std::size_t footprint() const { return footprint_; }
    LinuxKernel &kernel() { return kernel_; }

    /** getrusage: user time. */
    sim::Tick userTicks() const { return thread_.userTicks(); }

    /** getrusage: system time (kernel time on this process' calls). */
    sim::Tick systemTicks() const { return systemTicks_; }

    std::function<void()> onExit;

  private:
    friend class LinuxKernel;

    struct FdEntry
    {
        enum class Kind
        {
            File,
            Socket,
        };
        Kind kind = Kind::File;
        Tmpfs::Ino ino = Tmpfs::kNoIno;
        std::uint64_t offset = 0;
        bool append = false;
        // Socket state.
        std::uint16_t port = 0;
        std::deque<Bytes> rxQueue;
    };

    LinuxKernel &kernel_;
    int pid_;
    std::string name_;
    std::size_t footprint_;
    State state_ = State::Init;
    tile::Thread thread_;
    int nextFd_ = 3;
    std::map<int, FdEntry> fds_;
    sim::Tick systemTicks_ = 0;
    /** Socket fd a blocked recvfrom is waiting on; -1 if none. */
    int waitingFd_ = -1;
};

/** Open flags for sysOpen. */
enum LinuxOpenFlags : std::uint32_t
{
    kORead = 1,
    kOWrite = 2,
    kOCreate = 4,
    kOTrunc = 8,
};

/** The kernel. */
class LinuxKernel : public sim::SimObject
{
  public:
    LinuxKernel(sim::EventQueue &eq, std::string name,
                tile::Core &core, LinuxCosts costs = {},
                services::Nic *nic = nullptr);

    tile::Core &core() { return core_; }
    Tmpfs &fs() { return fs_; }
    const LinuxCosts &costs() const { return costs_; }

    LinuxProcess *createProcess(const std::string &name,
                                std::size_t footprint = 12 * 1024);

    /** Install the body and make the process runnable. */
    void start(LinuxProcess *p, sim::Task body);

    //
    // System calls (awaited from process bodies).
    //

    sim::Task sysNoop(LinuxProcess &p);
    sim::Task sysYield(LinuxProcess &p);
    sim::Task sysExit(LinuxProcess &p);

    sim::Task sysOpen(LinuxProcess &p, const std::string &path,
                      std::uint32_t flags, int *fd);
    sim::Task sysRead(LinuxProcess &p, int fd, std::size_t want,
                      Bytes *out);
    sim::Task sysWrite(LinuxProcess &p, int fd, Bytes data,
                       std::size_t *written);
    sim::Task sysLseek(LinuxProcess &p, int fd, std::uint64_t off);
    sim::Task sysClose(LinuxProcess &p, int fd);
    sim::Task sysStat(LinuxProcess &p, const std::string &path,
                      StatInfo *out);
    sim::Task sysReaddir(LinuxProcess &p, const std::string &path,
                         std::size_t idx, std::string *name,
                         bool *ok);
    sim::Task sysUnlink(LinuxProcess &p, const std::string &path,
                        bool *ok);
    sim::Task sysMkdir(LinuxProcess &p, const std::string &path,
                       bool *ok);

    sim::Task sysSocket(LinuxProcess &p, std::uint16_t local_port,
                        int *fd);
    sim::Task sysSendTo(LinuxProcess &p, int fd, std::uint32_t dst_ip,
                        std::uint16_t dst_port, Bytes data);
    sim::Task sysRecvFrom(LinuxProcess &p, int fd, Bytes *out);

    // Statistics.
    std::uint64_t syscalls() const { return syscalls_->value(); }
    std::uint64_t ctxSwitches() const { return switches_->value(); }
    sim::Tick kernelTicks() { return core_.kernelTicks(); }

  private:
    /** Kernel-path cache regions. */
    enum : tile::RegionId
    {
        kRegNoop = 1,
        kRegSched = 2,
        kRegFile = 3,
        kRegNet = 4,
        kRegAppBase = 16,
    };

    /**
     * Common synchronous syscall: trap, charge entry + path cost +
     * cache effects, run @p apply (zero-time semantic action), return
     * to the caller.
     */
    /* apply is passed by reference: the argument temporary lives in
     * the awaiting caller's coroutine frame for the whole call (GCC
     * 12 miscompiles non-trivial by-value coroutine parameters). */
    sim::Task syscallSync(LinuxProcess &p, tile::RegionId reg,
                          std::size_t foot, sim::Cycles path_cost,
                          const std::function<void()> &apply);

    sim::Cycles touchKernel(tile::RegionId reg, std::size_t foot);
    sim::Cycles touchApp(LinuxProcess &p);
    void onIrq(tile::IrqKind kind);
    void onNicRx(Bytes frame);
    void deliverFrame(Bytes frame);
    void scheduleNext();
    void switchTo(LinuxProcess *next);
    LinuxProcess *pickNext();
    void enqueue(LinuxProcess *p);

    tile::Core &core_;
    LinuxCosts costs_;
    Tmpfs fs_;
    services::Nic *nic_;
    tile::CacheModel l1i_;
    std::uint32_t localIp_ = 0x0a000003;

    int nextPid_ = 1;
    std::vector<std::unique_ptr<LinuxProcess>> procs_;
    std::deque<LinuxProcess *> ready_;
    LinuxProcess *current_ = nullptr;
    std::map<std::uint16_t, std::pair<LinuxProcess *, int>> ports_;
    std::deque<Bytes> rxPending_;

    sim::Counter *syscalls_;
    sim::Counter *switches_;
};

} // namespace m3v::linuxref

#endif // M3VSIM_LINUXREF_KERNEL_H_
