/**
 * @file
 * The tmpfs model backing the Linux reference system: an in-memory
 * file system with real byte contents, hierarchical directories and
 * per-page allocation accounting (for the page-alloc/clear costs the
 * kernel charges on extending writes).
 */

#ifndef M3VSIM_LINUXREF_TMPFS_H_
#define M3VSIM_LINUXREF_TMPFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace m3v::linuxref {

/** The in-memory file store. */
class Tmpfs
{
  public:
    using Ino = std::uint32_t;
    static constexpr Ino kNoIno = ~0u;
    static constexpr std::size_t kPage = 4096;

    Tmpfs();

    Ino lookup(const std::string &path);
    Ino create(const std::string &path, bool dir);
    bool unlink(const std::string &path);

    bool isDir(Ino ino) const;
    std::uint64_t size(Ino ino) const;

    /** Number of path components (for lookup cost). */
    static std::size_t components(const std::string &path);

    /**
     * Read up to @p len bytes at @p off. Returns bytes read.
     */
    std::size_t read(Ino ino, std::uint64_t off, void *dst,
                     std::size_t len) const;

    /**
     * Write @p len bytes at @p off, extending the file. Returns the
     * number of *fresh pages* allocated (for cost accounting).
     */
    std::size_t write(Ino ino, std::uint64_t off, const void *src,
                      std::size_t len);

    void truncate(Ino ino);

    bool entryAt(Ino dir, std::size_t idx, std::string *name,
                 Ino *child) const;
    std::size_t entryCount(Ino dir) const;

  private:
    std::vector<std::string> split(const std::string &path) const;

    struct Node
    {
        bool dir = false;
        std::vector<std::uint8_t> data;
    };

    Ino nextIno_ = 1;
    std::map<Ino, Node> nodes_;
    std::map<Ino, std::map<std::string, Ino>> dirs_;
};

} // namespace m3v::linuxref

#endif // M3VSIM_LINUXREF_TMPFS_H_
