/**
 * @file
 * Cost parameters of the Linux 5.11 reference model.
 *
 * The paper compares M3v against Linux running bare-metal on a single
 * BOOM tile (section 6). We model the paths its benchmarks exercise:
 * no-op system calls, sched_yield, tmpfs read/write, and UDP sockets.
 * Each syscall type carries an instruction-cache footprint; on the
 * 16 KiB L1I of the platform, the large kernel paths evict the
 * application's working set on every call — the effect the paper uses
 * to explain the scan anomaly of Figure 10.
 */

#ifndef M3VSIM_LINUXREF_COSTS_H_
#define M3VSIM_LINUXREF_COSTS_H_

#include <cstdint>

#include "sim/types.h"

namespace m3v::linuxref {

/** Linux kernel path costs (cycles on the tile's core). */
struct LinuxCosts
{
    /** Trap entry bookkeeping beyond the hardware trap cost. */
    sim::Cycles syscallEntry = 220;

    /** Return path (restore, seccomp/audit stubs). */
    sim::Cycles syscallExit = 180;

    /** scheduler: pick_next_task + switch_to for sched_yield. */
    sim::Cycles schedPick = 500;

    /** Full process context switch (registers, mm, TLB flush). */
    sim::Cycles ctxSwitch = 900;

    /** tmpfs path lookup per component. */
    sim::Cycles vfsLookup = 350;

    /** read() path base cost (vfs + tmpfs + fdget). */
    sim::Cycles readBase = 600;

    /** write() path base cost. */
    sim::Cycles writeBase = 900;

    /** Allocate + clear one fresh tmpfs page. */
    sim::Cycles pageAlloc = 1200;

    /** copy_to_user / copy_from_user bandwidth. */
    std::size_t copyBytesPerCycle = 8;

    /** memset (page clearing) bandwidth. */
    std::size_t clearBytesPerCycle = 8;

    /** UDP transmit path (headers, checksum base, queueing). */
    sim::Cycles udpTxBase = 1800;

    /** UDP receive path (softirq, demux, queueing). */
    sim::Cycles udpRxBase = 2100;

    /** Checksum/copy bandwidth in the network stack. */
    std::size_t netBytesPerCycle = 4;

    /** I-cache footprints of kernel paths (bytes). */
    std::size_t footNoop = 2 * 1024;
    std::size_t footSched = 5 * 1024;
    std::size_t footFile = 10 * 1024;
    std::size_t footNet = 14 * 1024;

    /** Scheduler time slice. */
    sim::Tick timeSlice = 4 * sim::kTicksPerMs;
};

} // namespace m3v::linuxref

#endif // M3VSIM_LINUXREF_COSTS_H_
