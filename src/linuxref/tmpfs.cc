#include "linuxref/tmpfs.h"

#include <algorithm>
#include <cstring>

namespace m3v::linuxref {

Tmpfs::Tmpfs()
{
    Node root;
    root.dir = true;
    nodes_.emplace(0, root);
    dirs_.emplace(0, std::map<std::string, Ino>());
}

std::vector<std::string>
Tmpfs::split(const std::string &path) const
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

std::size_t
Tmpfs::components(const std::string &path)
{
    std::size_t n = 0;
    bool in = false;
    for (char c : path) {
        if (c == '/') {
            in = false;
        } else if (!in) {
            in = true;
            n++;
        }
    }
    return n;
}

Tmpfs::Ino
Tmpfs::lookup(const std::string &path)
{
    Ino cur = 0;
    for (const auto &part : split(path)) {
        auto dit = dirs_.find(cur);
        if (dit == dirs_.end())
            return kNoIno;
        auto it = dit->second.find(part);
        if (it == dit->second.end())
            return kNoIno;
        cur = it->second;
    }
    return cur;
}

Tmpfs::Ino
Tmpfs::create(const std::string &path, bool dir)
{
    auto parts = split(path);
    if (parts.empty())
        return kNoIno;
    std::string leaf = parts.back();
    parts.pop_back();
    Ino parent = 0;
    for (const auto &part : parts) {
        auto dit = dirs_.find(parent);
        if (dit == dirs_.end())
            return kNoIno;
        auto it = dit->second.find(part);
        if (it == dit->second.end())
            return kNoIno;
        parent = it->second;
    }
    auto &pdir = dirs_[parent];
    if (pdir.count(leaf))
        return kNoIno;
    Ino ino = nextIno_++;
    Node node;
    node.dir = dir;
    nodes_.emplace(ino, std::move(node));
    if (dir)
        dirs_.emplace(ino, std::map<std::string, Ino>());
    pdir[leaf] = ino;
    return ino;
}

bool
Tmpfs::unlink(const std::string &path)
{
    auto parts = split(path);
    if (parts.empty())
        return false;
    std::string leaf = parts.back();
    parts.pop_back();
    Ino parent = 0;
    for (const auto &part : parts) {
        auto it = dirs_[parent].find(part);
        if (it == dirs_[parent].end())
            return false;
        parent = it->second;
    }
    auto it = dirs_[parent].find(leaf);
    if (it == dirs_[parent].end())
        return false;
    Ino victim = it->second;
    if (nodes_[victim].dir && !dirs_[victim].empty())
        return false;
    dirs_[parent].erase(it);
    dirs_.erase(victim);
    nodes_.erase(victim);
    return true;
}

bool
Tmpfs::isDir(Ino ino) const
{
    auto it = nodes_.find(ino);
    return it != nodes_.end() && it->second.dir;
}

std::uint64_t
Tmpfs::size(Ino ino) const
{
    auto it = nodes_.find(ino);
    return it == nodes_.end() ? 0 : it->second.data.size();
}

std::size_t
Tmpfs::read(Ino ino, std::uint64_t off, void *dst,
            std::size_t len) const
{
    auto it = nodes_.find(ino);
    if (it == nodes_.end() || it->second.dir)
        return 0;
    const auto &data = it->second.data;
    if (off >= data.size())
        return 0;
    std::size_t n = std::min<std::size_t>(len, data.size() - off);
    std::memcpy(dst, data.data() + off, n);
    return n;
}

std::size_t
Tmpfs::write(Ino ino, std::uint64_t off, const void *src,
             std::size_t len)
{
    auto it = nodes_.find(ino);
    if (it == nodes_.end() || it->second.dir)
        return 0;
    auto &data = it->second.data;
    std::size_t pages_before = (data.size() + kPage - 1) / kPage;
    if (off + len > data.size())
        data.resize(off + len, 0);
    std::memcpy(data.data() + off, src, len);
    std::size_t pages_after = (data.size() + kPage - 1) / kPage;
    return pages_after - pages_before;
}

void
Tmpfs::truncate(Ino ino)
{
    auto it = nodes_.find(ino);
    if (it != nodes_.end())
        it->second.data.clear();
}

bool
Tmpfs::entryAt(Ino dir, std::size_t idx, std::string *name,
               Ino *child) const
{
    auto dit = dirs_.find(dir);
    if (dit == dirs_.end() || idx >= dit->second.size())
        return false;
    auto it = dit->second.begin();
    std::advance(it, static_cast<long>(idx));
    *name = it->first;
    *child = it->second;
    return true;
}

std::size_t
Tmpfs::entryCount(Ino dir) const
{
    auto dit = dirs_.find(dir);
    return dit == dirs_.end() ? 0 : dit->second.size();
}

} // namespace m3v::linuxref
