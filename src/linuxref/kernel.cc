#include "linuxref/kernel.h"

#include <algorithm>
#include <utility>

#include "sim/log.h"

namespace m3v::linuxref {

LinuxProcess::LinuxProcess(LinuxKernel &kernel, tile::Core &core,
                           int pid, std::string name,
                           std::size_t footprint)
    : kernel_(kernel), pid_(pid), name_(std::move(name)),
      footprint_(footprint),
      thread_(core, name_ + ".thread", static_cast<std::uint64_t>(pid))
{
}

LinuxKernel::LinuxKernel(sim::EventQueue &eq, std::string name,
                         tile::Core &core, LinuxCosts costs,
                         services::Nic *nic)
    : SimObject(eq, std::move(name)), core_(core), costs_(costs),
      nic_(nic),
      l1i_(core.model().l1iBytes, 64, core.model().lineFillCycles)
{
    syscalls_ = statCounter("syscalls");
    switches_ = statCounter("ctx_switches");
    core_.setIrqHandler([this](tile::IrqKind k) { onIrq(k); });
    if (nic_) {
        nic_->setRxHandler(
            [this](os::Bytes frame) { onNicRx(std::move(frame)); });
    }
}

LinuxProcess *
LinuxKernel::createProcess(const std::string &name,
                           std::size_t footprint)
{
    int pid = nextPid_++;
    procs_.push_back(std::make_unique<LinuxProcess>(
        *this, core_, pid, name, footprint));
    return procs_.back().get();
}

void
LinuxKernel::start(LinuxProcess *p, sim::Task body)
{
    p->thread_.start(std::move(body));
    p->state_ = LinuxProcess::State::Ready;
    enqueue(p);
    if (core_.current() && !core_.timerArmed())
        core_.setTimer(costs_.timeSlice);
    if (!core_.inKernel() && !core_.current()) {
        core_.kernelEnter(costs_.schedPick,
                          [this]() { scheduleNext(); });
    }
}

void
LinuxKernel::enqueue(LinuxProcess *p)
{
    ready_.push_back(p);
}

sim::Cycles
LinuxKernel::touchKernel(tile::RegionId reg, std::size_t foot)
{
    return l1i_.touch(reg, foot);
}

sim::Cycles
LinuxKernel::touchApp(LinuxProcess &p)
{
    return l1i_.touch(kRegAppBase +
                          static_cast<tile::RegionId>(p.pid()),
                      p.footprint());
}

LinuxProcess *
LinuxKernel::pickNext()
{
    while (!ready_.empty()) {
        LinuxProcess *p = ready_.front();
        ready_.pop_front();
        if (p->state_ == LinuxProcess::State::Ready)
            return p;
    }
    return nullptr;
}

void
LinuxKernel::scheduleNext()
{
    core_.kernelWork(costs_.schedPick, [this]() {
        LinuxProcess *next = pickNext();
        if (!next) {
            current_ = nullptr;
            core_.cancelTimer();
            core_.kernelExitIdle();
            return;
        }
        switchTo(next);
    });
}

void
LinuxKernel::switchTo(LinuxProcess *next)
{
    sim::Cycles cost = 0;
    if (next != current_) {
        cost = costs_.ctxSwitch + touchApp(*next);
        switches_->inc();
    }
    core_.kernelWork(cost, [this, next]() {
        current_ = next;
        next->state_ = LinuxProcess::State::Running;
        if (!ready_.empty())
            core_.setTimer(costs_.timeSlice);
        else
            core_.cancelTimer();
        core_.kernelExitTo(&next->thread_);
    });
}

void
LinuxKernel::onIrq(tile::IrqKind kind)
{
    if (current_ &&
        current_->state_ == LinuxProcess::State::Running) {
        current_->state_ = LinuxProcess::State::Ready;
        if (kind == tile::IrqKind::Timer)
            ready_.push_back(current_);
        else
            ready_.push_front(current_);
        current_ = nullptr;
    }
    switch (kind) {
      case tile::IrqKind::Timer:
        core_.kernelWork(touchKernel(kRegSched, costs_.footSched),
                         [this]() { scheduleNext(); });
        break;
      case tile::IrqKind::Device: {
        // NIC rx softirq: demux pending frames to sockets and wake
        // blocked receivers.
        sim::Cycles cost = touchKernel(kRegNet, costs_.footNet);
        for (const Bytes &f : rxPending_)
            cost += costs_.udpRxBase +
                    f.size() / costs_.netBytesPerCycle;
        core_.kernelWork(cost, [this]() {
            auto frames = std::move(rxPending_);
            rxPending_.clear();
            for (Bytes &frame : frames)
                deliverFrame(std::move(frame));
            scheduleNext();
        });
        break;
      }
      case tile::IrqKind::CoreRequest:
        sim::panic("%s: core request on a Linux tile?",
                   name().c_str());
    }
}

void
LinuxKernel::onNicRx(Bytes frame)
{
    rxPending_.push_back(std::move(frame));
    core_.raiseIrq(tile::IrqKind::Device);
}

void
LinuxKernel::deliverFrame(Bytes frame)
{
    Bytes payload;
    services::UdpFrameHdr hdr = services::parseFrame(frame, &payload);
    auto it = ports_.find(hdr.dstPort);
    if (it == ports_.end())
        return; // no listener: dropped
    LinuxProcess *p = it->second.first;
    int fd = it->second.second;
    auto fit = p->fds_.find(fd);
    if (fit == p->fds_.end())
        return;
    fit->second.rxQueue.push_back(std::move(payload));
    if (p->state_ == LinuxProcess::State::Blocked &&
        p->waitingFd_ == fd) {
        p->state_ = LinuxProcess::State::Ready;
        p->waitingFd_ = -1;
        ready_.push_front(p);
    }
}

sim::Task
LinuxKernel::syscallSync(LinuxProcess &p, tile::RegionId reg,
                         std::size_t foot, sim::Cycles path_cost,
                         const std::function<void()> &apply)
{
    syscalls_->inc();
    // The referenced closure lives in the awaiting caller's frame, so
    // capturing the reference is safe until this coroutine completes.
    const std::function<void()> *fn = &apply;
    co_await p.thread().trapCall([this, &p, reg, foot, path_cost,
                                  fn]() {
        sim::Cycles c1 = costs_.syscallEntry +
                         touchKernel(reg, foot) + path_cost;
        core_.kernelWork(c1, [this, &p, c1, fn]() {
            if (*fn)
                (*fn)();
            sim::Cycles c2 = costs_.syscallExit + touchApp(p);
            core_.kernelWork(c2, [this, &p, c1, c2]() {
                const auto &m = core_.model();
                p.systemTicks_ += core_.cyclesToTicks(
                    m.trapEnterCycles + c1 + c2 + m.trapExitCycles);
                p.state_ = LinuxProcess::State::Running;
                core_.kernelExitTo(&p.thread_);
            });
        });
    });
}

sim::Task
LinuxKernel::sysNoop(LinuxProcess &p)
{
    co_await syscallSync(p, kRegNoop, costs_.footNoop, 60, nullptr);
}

sim::Task
LinuxKernel::sysYield(LinuxProcess &p)
{
    syscalls_->inc();
    co_await p.thread().trapCall([this, &p]() {
        sim::Cycles c = costs_.syscallEntry +
                        touchKernel(kRegSched, costs_.footSched) +
                        costs_.schedPick;
        core_.kernelWork(c, [this, &p, c]() {
            p.systemTicks_ += core_.cyclesToTicks(c);
            p.state_ = LinuxProcess::State::Ready;
            ready_.push_back(&p);
            current_ = nullptr;
            scheduleNext();
        });
    });
}

sim::Task
LinuxKernel::sysExit(LinuxProcess &p)
{
    syscalls_->inc();
    co_await p.thread().trapCall([this, &p]() {
        core_.kernelWork(costs_.syscallEntry, [this, &p]() {
            p.state_ = LinuxProcess::State::Dead;
            current_ = nullptr;
            if (p.onExit)
                eq_.schedule(0, [&p]() { p.onExit(); });
            scheduleNext();
        });
    });
    sim::panic("%s: exited process resumed", p.name().c_str());
}

sim::Task
LinuxKernel::sysOpen(LinuxProcess &p, const std::string &path,
                     std::uint32_t flags, int *fd)
{
    sim::Cycles cost =
        costs_.vfsLookup *
        static_cast<sim::Cycles>(Tmpfs::components(path) + 1);
    co_await syscallSync(p, kRegFile, costs_.footFile, cost, [&]() {
        Tmpfs::Ino ino = fs_.lookup(path);
        if (ino == Tmpfs::kNoIno && (flags & kOCreate))
            ino = fs_.create(path, false);
        if (ino == Tmpfs::kNoIno || fs_.isDir(ino)) {
            *fd = -1;
            return;
        }
        if (flags & kOTrunc)
            fs_.truncate(ino);
        LinuxProcess::FdEntry e;
        e.kind = LinuxProcess::FdEntry::Kind::File;
        e.ino = ino;
        e.offset = 0;
        *fd = p.nextFd_++;
        p.fds_[*fd] = e;
    });
}

sim::Task
LinuxKernel::sysRead(LinuxProcess &p, int fd, std::size_t want,
                     Bytes *out)
{
    auto it = p.fds_.find(fd);
    if (it == p.fds_.end()) {
        out->clear();
        co_return;
    }
    // The copy size is known to the kernel before the copy.
    std::uint64_t size = fs_.size(it->second.ino);
    std::size_t n =
        it->second.offset >= size
            ? 0
            : std::min<std::size_t>(want, size - it->second.offset);
    sim::Cycles cost =
        costs_.readBase +
        static_cast<sim::Cycles>(n / costs_.copyBytesPerCycle);
    co_await syscallSync(p, kRegFile, costs_.footFile, cost, [&]() {
        out->resize(n);
        std::size_t got = fs_.read(it->second.ino,
                                   it->second.offset, out->data(), n);
        out->resize(got);
        it->second.offset += got;
    });
}

sim::Task
LinuxKernel::sysWrite(LinuxProcess &p, int fd, Bytes data,
                      std::size_t *written)
{
    auto it = p.fds_.find(fd);
    if (it == p.fds_.end()) {
        if (written)
            *written = 0;
        co_return;
    }
    std::uint64_t off = it->second.offset;
    std::uint64_t old_size = fs_.size(it->second.ino);
    std::uint64_t new_end = off + data.size();
    std::size_t fresh_pages =
        new_end > old_size
            ? (new_end + Tmpfs::kPage - 1) / Tmpfs::kPage -
                  (old_size + Tmpfs::kPage - 1) / Tmpfs::kPage
            : 0;
    sim::Cycles cost =
        costs_.writeBase +
        static_cast<sim::Cycles>(data.size() /
                                 costs_.copyBytesPerCycle) +
        static_cast<sim::Cycles>(
            fresh_pages *
            (costs_.pageAlloc +
             Tmpfs::kPage / costs_.clearBytesPerCycle));
    co_await syscallSync(p, kRegFile, costs_.footFile, cost, [&]() {
        fs_.write(it->second.ino, off, data.data(), data.size());
        it->second.offset += data.size();
        if (written)
            *written = data.size();
    });
}

sim::Task
LinuxKernel::sysLseek(LinuxProcess &p, int fd, std::uint64_t off)
{
    co_await syscallSync(p, kRegNoop, costs_.footNoop, 80, [&]() {
        auto it = p.fds_.find(fd);
        if (it != p.fds_.end())
            it->second.offset = off;
    });
}

sim::Task
LinuxKernel::sysClose(LinuxProcess &p, int fd)
{
    co_await syscallSync(p, kRegFile, costs_.footFile, 200, [&]() {
        auto it = p.fds_.find(fd);
        if (it == p.fds_.end())
            return;
        if (it->second.kind == LinuxProcess::FdEntry::Kind::Socket)
            ports_.erase(it->second.port);
        p.fds_.erase(it);
    });
}

sim::Task
LinuxKernel::sysStat(LinuxProcess &p, const std::string &path,
                     StatInfo *out)
{
    sim::Cycles cost =
        costs_.vfsLookup *
        static_cast<sim::Cycles>(Tmpfs::components(path) + 1);
    co_await syscallSync(p, kRegFile, costs_.footFile, cost, [&]() {
        Tmpfs::Ino ino = fs_.lookup(path);
        out->exists = ino != Tmpfs::kNoIno;
        if (out->exists) {
            out->isDir = fs_.isDir(ino);
            out->size = fs_.size(ino);
        }
    });
}

sim::Task
LinuxKernel::sysReaddir(LinuxProcess &p, const std::string &path,
                        std::size_t idx, std::string *name_out,
                        bool *ok)
{
    sim::Cycles cost =
        costs_.vfsLookup + 40 + static_cast<sim::Cycles>(idx / 4);
    co_await syscallSync(p, kRegFile, costs_.footFile, cost, [&]() {
        Tmpfs::Ino dir = fs_.lookup(path);
        Tmpfs::Ino child;
        *ok = dir != Tmpfs::kNoIno &&
              fs_.entryAt(dir, idx, name_out, &child);
    });
}

sim::Task
LinuxKernel::sysUnlink(LinuxProcess &p, const std::string &path,
                       bool *ok)
{
    sim::Cycles cost =
        costs_.vfsLookup *
        static_cast<sim::Cycles>(Tmpfs::components(path) + 1);
    co_await syscallSync(p, kRegFile, costs_.footFile, cost,
                         [&]() { *ok = fs_.unlink(path); });
}

sim::Task
LinuxKernel::sysMkdir(LinuxProcess &p, const std::string &path,
                      bool *ok)
{
    co_await syscallSync(p, kRegFile, costs_.footFile,
                         costs_.vfsLookup * 2, [&]() {
                             *ok = fs_.create(path, true) !=
                                   Tmpfs::kNoIno;
                         });
}

sim::Task
LinuxKernel::sysSocket(LinuxProcess &p, std::uint16_t local_port,
                       int *fd)
{
    co_await syscallSync(p, kRegNet, costs_.footNet, 600, [&]() {
        LinuxProcess::FdEntry e;
        e.kind = LinuxProcess::FdEntry::Kind::Socket;
        e.port = local_port;
        *fd = p.nextFd_++;
        p.fds_[*fd] = e;
        if (local_port)
            ports_[local_port] = {&p, *fd};
    });
}

sim::Task
LinuxKernel::sysSendTo(LinuxProcess &p, int fd, std::uint32_t dst_ip,
                       std::uint16_t dst_port, Bytes data)
{
    auto it = p.fds_.find(fd);
    sim::Cycles cost =
        costs_.udpTxBase +
        static_cast<sim::Cycles>(data.size() /
                                 costs_.netBytesPerCycle);
    co_await syscallSync(p, kRegNet, costs_.footNet, cost, [&]() {
        if (it == p.fds_.end() || !nic_)
            return;
        services::UdpFrameHdr hdr;
        hdr.srcIp = localIp_;
        hdr.dstIp = dst_ip;
        hdr.srcPort = it->second.port;
        hdr.dstPort = dst_port;
        nic_->transmit(services::makeFrame(hdr, data));
    });
}

sim::Task
LinuxKernel::sysRecvFrom(LinuxProcess &p, int fd, Bytes *out)
{
    for (;;) {
        bool got = false;
        syscalls_->inc();
        co_await p.thread().trapCall([this, &p, fd, out, &got]() {
            sim::Cycles c = costs_.syscallEntry +
                            touchKernel(kRegNet, costs_.footNet) +
                            400;
            core_.kernelWork(c, [this, &p, fd, out, &got, c]() {
                auto it = p.fds_.find(fd);
                if (it != p.fds_.end() &&
                    !it->second.rxQueue.empty()) {
                    *out = std::move(it->second.rxQueue.front());
                    it->second.rxQueue.pop_front();
                    got = true;
                    sim::Cycles c2 =
                        costs_.syscallExit + touchApp(p) +
                        static_cast<sim::Cycles>(
                            out->size() / costs_.netBytesPerCycle);
                    core_.kernelWork(c2, [this, &p, c, c2]() {
                        p.systemTicks_ +=
                            core_.cyclesToTicks(c + c2);
                        p.state_ = LinuxProcess::State::Running;
                        core_.kernelExitTo(&p.thread_);
                    });
                    return;
                }
                // Block until a datagram arrives.
                p.systemTicks_ += core_.cyclesToTicks(c);
                p.state_ = LinuxProcess::State::Blocked;
                p.waitingFd_ = fd;
                current_ = nullptr;
                scheduleNext();
            });
        });
        if (got)
            co_return;
    }
}

} // namespace m3v::linuxref
