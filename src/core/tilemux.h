/**
 * @file
 * TileMux — the tile-local multiplexer of M3v (paper sections 3.3 and
 * 4.2), the software half of the contribution.
 *
 * TileMux runs in the core's privileged mode on every multiplexed
 * general-purpose tile. It:
 *  - schedules the tile-local activities round-robin with time slices
 *    (timer interrupts preempt; interrupts are disabled while TileMux
 *    itself runs);
 *  - handles TMCalls (ecall traps) from activities: wait-for-message,
 *    yield, exit, and transl (vDTU TLB refill);
 *  - handles core-request interrupts from the vDTU when messages
 *    arrive for non-running activities, and switches to the recipient
 *    ("as soon as a non-running activity received a message and has
 *    time left to execute, TileMux switches to that activity");
 *  - switches activities through the vDTU's atomic exchange command
 *    and re-checks the old CUR_ACT message count so that no wake-up
 *    is lost (section 3.7);
 *  - performs page-table manipulation on behalf of the controller
 *    (section 4.3) — TileMux has no control beyond its own tile;
 *  - processes sidecalls from the controller, which arrive as regular
 *    messages on TileMux's own receive endpoint (TileMux has its own
 *    activity id and briefly switches to it, section 4.2).
 *
 * Waiting strategy (section 3.7): before blocking, an activity checks
 * via shared memory whether other activities are ready. If none are,
 * it polls the vDTU for new messages instead of blocking, avoiding
 * the kernel entirely (the common case on dedicated tiles).
 */

#ifndef M3VSIM_CORE_TILEMUX_H_
#define M3VSIM_CORE_TILEMUX_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/addrspace.h"
#include "core/vdtu.h"
#include "sim/stats.h"
#include "sim/task.h"
#include "tile/cache_model.h"
#include "tile/core.h"

namespace m3v::core {

class TileMux;

/** TileMux tuning parameters. */
struct TileMuxParams
{
    /** Round-robin time slice (a fresh slice per dispatch). */
    sim::Tick timeSlice = sim::kTicksPerMs;

    /** Handler prologue cost after trap entry. */
    sim::Cycles entryCost = 200;

    /** Scheduling decision cost. */
    sim::Cycles schedCost = 100;

    /** Page-table walk on a transl TMCall. */
    sim::Cycles translCost = 90;

    /** Fixed cost of processing one controller sidecall. */
    sim::Cycles sidecallCost = 150;

    /** TileMux's own instruction footprint (cache model). */
    std::size_t muxFootprint = 5 * 1024;

    /**
     * Fraction of an activity's footprint its dispatch touches
     * (immediate hot path); the rest refills lazily during later
     * compute and is not charged to the switch.
     */
    std::size_t switchTouchDivisor = 3;

    /** Switch to a message's recipient immediately (section 3.9). */
    bool switchOnMsg = true;

    /** Activity id representing the idle loop in CUR_ACT. */
    dtu::ActId idleAct = 0xfffd;

    /**
     * Watchdog: an activity that burns this many *consecutive* full
     * time slices without a single TMCall is declared hung and
     * killed (the crash handler then notifies the controller, which
     * reaps the activity's resources). 0 disables the watchdog —
     * the default, so the fast path is unchanged.
     */
    unsigned watchdogSlices = 0;
};

/**
 * An activity on a multiplexed tile: an execution context with its
 * own address space, scheduled by TileMux.
 */
class Activity
{
  public:
    enum class State
    {
        Init,       ///< created, body not started
        Ready,      ///< runnable
        Running,    ///< currently dispatched
        BlockedMsg, ///< blocked in a wait TMCall
        Dead,       ///< exited
    };

    Activity(TileMux &mux, tile::Core &core, dtu::ActId id,
             std::string name, std::size_t footprint);

    dtu::ActId id() const { return id_; }
    const std::string &name() const { return name_; }
    State state() const { return state_; }
    tile::Thread &thread() { return thread_; }
    AddrSpace &addrSpace() { return as_; }
    std::size_t footprint() const { return footprint_; }
    TileMux &mux() { return mux_; }

    /** Completion hook (app exit, used by benchmarks). */
    sim::UniqueFunction<void()> onExit;

  private:
    friend class TileMux;

    TileMux &mux_;
    dtu::ActId id_;
    std::string name_;
    std::size_t footprint_;
    State state_ = State::Init;
    /** Consecutive full slices burned without a TMCall (watchdog). */
    unsigned hogSlices_ = 0;
    /**
     * Unconsumed part of the time slice, banked when a core-request
     * (or device) interrupt preempts the activity mid-slice. The next
     * dispatch arms this remnant instead of a fresh slice; voluntary
     * preemption (yield/wait/exit) and slice expiry clear it.
     */
    sim::Tick sliceLeft_ = 0;
    /** EP filter of the wait TMCall; meaningful while BlockedMsg
     *  (kInvalidEp: any endpoint). */
    dtu::EpId waitEp_ = dtu::kInvalidEp;
    tile::Thread thread_;
    AddrSpace as_;
};

/** The tile-local multiplexer. */
class TileMux : public sim::SimObject
{
  public:
    /** Resolves a page fault during a transl TMCall (set by the OS
     *  layer; models the pager interaction, see DESIGN.md). Returns
     *  false if the address is truly unmapped (activity is killed). */
    using PageFaultHandler = std::function<bool(
        Activity &, dtu::VirtAddr, dtu::PhysAddr &, std::uint8_t &,
        sim::Cycles &)>;

    /**
     * Handles a controller sidecall message (set by the OS layer).
     * The handler receives the message and its receive-buffer slot
     * and must reply (or acknowledge) the slot itself.
     */
    using SidecallHandler =
        std::function<void(const dtu::Message &, int slot)>;

    TileMux(sim::EventQueue &eq, std::string name, tile::Core &core,
            VDtu &vdtu, TileMuxParams params = {});

    tile::Core &core() { return core_; }
    VDtu &vdtu() { return vdtu_; }
    const TileMuxParams &params() const { return params_; }

    //
    // Activity management (driven by the OS layer / controller).
    //

    /** Create an activity record. The body starts via startActivity. */
    Activity *createActivity(dtu::ActId id, std::string name,
                             std::size_t footprint = 8 * 1024);

    /** Install the body and make the activity runnable. */
    void startActivity(Activity *act, sim::Task body);

    /** Forcefully terminate an activity (controller kill sidecall). */
    void killActivity(dtu::ActId id);

    /**
     * Fault-injection entry point: the activity crashes as if it hit
     * an unrecoverable exception. Local cleanup is identical to
     * killActivity, and the crash handler (if set) is invoked so the
     * controller can reap the activity's global resources.
     */
    void crashActivity(dtu::ActId id);

    /**
     * Install the crash/watchdog upcall. Invoked (from a fresh event,
     * never inside the kernel path) with the dead activity's id after
     * a watchdog kill or injected crash.
     */
    void
    setCrashHandler(std::function<void(dtu::ActId)> h)
    {
        crashHandler_ = std::move(h);
    }

    Activity *activity(dtu::ActId id);

    /** Install a page-table mapping (controller map sidecall). */
    void mapPage(dtu::ActId id, dtu::VirtAddr va, dtu::PhysAddr pa,
                 std::uint8_t perms);

    void setPageFaultHandler(PageFaultHandler h);

    /**
     * Register the endpoint on which controller sidecalls arrive and
     * the handler processing them.
     */
    void setSidecallEp(dtu::EpId rep, SidecallHandler h);

    //
    // TMCall awaitables (used by the libm3 layer from activity
    // coroutines; all must be awaited by the activity's own thread).
    //

    /**
     * Wait until this activity has an unread message — on @p ep if
     * given, on any of its endpoints otherwise (the TMCall's EP
     * filter). Blocks via TMCall if other activities are ready;
     * polls the vDTU otherwise. The in-kernel check against the
     * vDTU's counters is atomic with the blocking decision
     * (section 3.7's lost-wake-up protection).
     */
    sim::Task waitForMsg(Activity &act,
                         dtu::EpId ep = dtu::kInvalidEp);

    /** Refill the vDTU TLB for @p va (transl TMCall). */
    sim::Task translCall(Activity &act, dtu::VirtAddr va, bool write);

    /** Give up the rest of the time slice. */
    sim::Task yieldCall(Activity &act);

    /** Voluntary exit; never returns to the activity. */
    sim::Task exitCall(Activity &act);

    /** Shared-memory flag: are other activities ready? (section 3.7) */
    bool othersReady(const Activity &act) const;

    /**
     * Register this multiplexer's scheduler laws with @p inv (tests
     * only): the ready queue holds no duplicates, no Running activity
     * and never the current one; outside the kernel the current
     * activity is Running and matches CUR_ACT; pollers are never
     * dead (every boundary). At quiescence: no activity is still
     * Ready (scheduler stall), and no activity is blocked in a wait
     * TMCall with an unread message on its waited endpoint (lost
     * wakeup, paper section 3.7).
     */
    void registerInvariants(sim::Invariants &inv);

    // Statistics for the evaluation (registry-backed).
    std::uint64_t ctxSwitches() const { return switches_->value(); }
    std::uint64_t coreReqIrqs() const
    {
        return coreReqIrqs_->value();
    }
    std::uint64_t timerIrqs() const { return timerIrqs_->value(); }
    std::uint64_t tmCalls() const { return tmCalls_->value(); }
    std::uint64_t watchdogKills() const
    {
        return watchdogKills_->value();
    }
    std::uint64_t crashes() const { return crashes_->value(); }

  private:
    void onIrq(tile::IrqKind kind);
    /** Kill a hung/crashed activity and schedule the crash upcall;
     *  @p why names the trace/fault event ("watchdog", "crash"). */
    void reapLocal(Activity &act, sim::Counter &reason,
                   const char *why);
    void handleCoreRequest();
    void handleSidecall();
    /** Pick next and switch (kernel context). */
    void scheduleNext();
    void switchTo(Activity *next);
    Activity *pickNext();
    void requeueCurrent();
    void kickScheduler();
    void registerPoller(Activity &act);
    sim::Cycles touchMux();
    /** Arm the slice timer and record its absolute deadline. */
    void armSlice(sim::Tick slice);

    tile::Core &core_;
    VDtu &vdtu_;
    TileMuxParams params_;
    tile::CacheModel l1i_;

    std::unordered_map<dtu::ActId, std::unique_ptr<Activity>> acts_;
    std::deque<Activity *> ready_;
    Activity *current_ = nullptr;
    Activity *hint_ = nullptr;
    /** Absolute deadline of the armed slice timer (valid while the
     *  core's timer is armed; see armSlice()). */
    sim::Tick sliceEnd_ = 0;
    std::unordered_map<dtu::ActId, Activity *> pollers_;

    PageFaultHandler pageFault_;
    SidecallHandler sidecall_;
    dtu::EpId sidecallEp_ = dtu::kInvalidEp;
    std::function<void(dtu::ActId)> crashHandler_;

    sim::Counter *switches_;
    sim::Counter *coreReqIrqs_;
    sim::Counter *timerIrqs_;
    sim::Counter *tmCalls_;
    sim::Counter *watchdogKills_;
    sim::Counter *crashes_;

    /** Timeline tracer and this tile's trace pid (= NoC tile id). */
    sim::Tracer *trc_;
    std::uint32_t pid_;
};

} // namespace m3v::core

#endif // M3VSIM_CORE_TILEMUX_H_
