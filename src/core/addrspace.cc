#include "core/addrspace.h"

#include "sim/log.h"

namespace m3v::core {

dtu::VirtAddr
AddrSpace::allocPages(std::size_t pages)
{
    dtu::VirtAddr base = next_;
    next_ += pages * dtu::kPageSize;
    return base;
}

void
AddrSpace::map(dtu::VirtAddr va, dtu::PhysAddr pa, std::uint8_t perms)
{
    table_[pageOf(va)] =
        PageMapping{pa & ~static_cast<dtu::PhysAddr>(dtu::kPageSize - 1),
                    perms};
}

void
AddrSpace::unmap(dtu::VirtAddr va)
{
    table_.erase(pageOf(va));
}

const PageMapping *
AddrSpace::lookup(dtu::VirtAddr va) const
{
    auto it = table_.find(pageOf(va));
    return it == table_.end() ? nullptr : &it->second;
}

} // namespace m3v::core
