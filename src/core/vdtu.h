/**
 * @file
 * The virtualized DTU (vDTU) — the hardware half of M3v's
 * contribution (paper sections 3.4-3.8 and 4.1).
 *
 * The vDTU extends the plain DTU with a *privileged interface* that
 * only TileMux may use, enabling multiple activities to share the
 * DTU without saving/restoring its state:
 *
 *  - Every endpoint is tagged with the owning activity; using another
 *    activity's endpoint yields "unknown endpoint" (ForeignEp).
 *  - The CUR_ACT register holds the current activity id plus its
 *    number of unread messages. An atomic exchange command switches
 *    the activity and returns the old register value, so TileMux can
 *    block an activity without losing wake-ups (section 3.7).
 *  - A software-loaded TLB translates buffer addresses; commands are
 *    restricted to a single page and fail with TlbMiss instead of
 *    injecting an interrupt (section 3.6). TileMux refills the TLB
 *    through the privileged interface.
 *  - Physical-memory protection (PMP): translated addresses are
 *    checked against the first four (memory) endpoints; the PMP
 *    endpoint is selected by the upper two bits of the physical
 *    address (section 4.1).
 *  - Messages for *non-running* activities are always deliverable
 *    (fast path); the vDTU then enqueues a *core request* and injects
 *    an interrupt. The queue is small; when full, incoming messages
 *    are backpressured through the NoC's packet flow control
 *    (section 3.8).
 */

#ifndef M3VSIM_CORE_VDTU_H_
#define M3VSIM_CORE_VDTU_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "dtu/dtu.h"
#include "sim/ring_deque.h"

namespace m3v::core {

/** The CUR_ACT register: current activity and its unread messages. */
struct CurAct
{
    dtu::ActId act = dtu::kInvalidAct;
    std::uint16_t msgCount = 0;
};

/**
 * A core request: one or more messages arrived for a non-running
 * activity. Stores for an activity that already has a queued request
 * are coalesced into it (count goes up, no new queue slot, no new
 * IRQ) — TileMux wakes the activity once and it drains all unread
 * messages when it runs, so one request per activity is sufficient.
 */
struct CoreReq
{
    dtu::ActId act = dtu::kInvalidAct;
    /** Messages aggregated into this request. */
    std::uint32_t count = 1;
};

/** A software-loaded TLB entry. */
struct TlbEntry
{
    dtu::ActId act = dtu::kInvalidAct;
    dtu::VirtAddr page = 0;
    dtu::PhysAddr phys = 0;
    std::uint8_t perms = 0;
    std::uint64_t lastUse = 0;
};

/** vDTU-specific parameters. */
struct VDtuParams
{
    /** TLB capacity (entries). */
    std::size_t tlbEntries = 32;

    /** Core-request queue depth (small, section 3.8). */
    std::size_t coreReqQueue = 4;
};

/** The virtualized data transfer unit. */
class VDtu : public dtu::Dtu
{
  public:
    VDtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
         noc::TileId tile, std::uint64_t freq_hz,
         VDtuParams params = {}, dtu::DtuTiming timing = {});

    //
    // Privileged interface (TileMux only).
    //

    /** Read CUR_ACT. */
    CurAct curAct() const { return cur_; }

    /**
     * Atomically switch to @p next and return the old CUR_ACT. The
     * atomicity guarantees no message notification can interleave
     * with the switch (paper section 3.7).
     */
    CurAct xchgAct(dtu::ActId next);

    /** Insert a TLB entry (after a transl TMCall). */
    void tlbInsert(dtu::ActId act, dtu::VirtAddr virt,
                   dtu::PhysAddr phys, std::uint8_t perms);

    /** Remove all translations of an activity (activity teardown). */
    void tlbFlushAct(dtu::ActId act);

    /**
     * Full per-activity state teardown (activity kill/exit): flush
     * the TLB, forget the unread-message count, and purge queued core
     * requests for @p act. Without this a reused ActId inherits
     * phantom unread messages and dead activities keep raising
     * core-request IRQs. Purging may free core-request queue space,
     * so NoC backpressure waiters are notified.
     */
    void resetAct(dtu::ActId act);

    /** Number of valid TLB entries (for tests/ablations). */
    std::size_t tlbFill() const;

    /** True if a core request is pending. */
    bool coreReqPending() const { return !coreReqs_.empty(); }

    /** Read the head core request (privileged register read). */
    CoreReq coreReqGet() const;

    /**
     * Acknowledge the head core request. If more are queued, the
     * interrupt is raised again.
     */
    void coreReqAck();

    /**
     * Install the interrupt injection hook (TileMux wires this to
     * Core::raiseIrq(IrqKind::CoreRequest)).
     */
    void
    setCoreReqIrq(std::function<void()> cb)
    {
        coreReqIrq_ = std::move(cb);
    }

    /** Unread-message count of an arbitrary activity (priv. read). */
    std::size_t unreadOf(dtu::ActId act) const;

    // Statistics for the evaluation (registry-backed).
    std::uint64_t tlbMisses() const { return tlbMisses_->value(); }
    std::uint64_t tlbHits() const { return tlbHits_->value(); }
    std::uint64_t coreReqs() const { return coreReqCount_->value(); }
    /** Message stores absorbed into an already-queued request. */
    std::uint64_t coreReqsCoalesced() const
    {
        return coreReqsCoalesced_->value();
    }
    std::uint64_t foreignEpDenials() const
    {
        return foreignDenials_->value();
    }

    // noc::HopTarget override: backpressure when the core-request
    // queue is full and the incoming message would need a new one.
    bool acceptPacket(noc::Packet &pkt,
                      sim::UniqueFunction<void()> on_space) override;

    /**
     * Register this vDTU's state-machine laws with @p inv (tests
     * only): CUR_ACT's message count equals the current activity's
     * queued unread messages, the unread_ bookkeeping matches the
     * receive-endpoint slots, backpressure waiters exist only while
     * the core-request queue is full (every boundary); and at
     * quiescence the core-request queue has drained.
     */
    void registerInvariants(sim::Invariants &inv);

  protected:
    dtu::Error checkEpAccess(dtu::ActId act,
                             const dtu::Endpoint &ep) const override;
    dtu::Error translate(dtu::ActId act, dtu::VirtAddr buf, bool write,
                         dtu::PhysAddr &phys) override;
    void onMessageStored(dtu::EpId ep_id, dtu::ActId owner) override;
    void onMessageFetched(dtu::EpId ep_id, dtu::ActId owner) override;

  private:
    TlbEntry *tlbLookup(dtu::ActId act, dtu::VirtAddr page);
    dtu::Error pmpCheck(dtu::PhysAddr phys, bool write) const;
    void notifySpaceWaiters();
    /** Queued request for @p act, or nullptr. */
    CoreReq *findCoreReq(dtu::ActId act);

    VDtuParams params_;
    CurAct cur_;
    std::vector<TlbEntry> tlb_;
    std::uint64_t tlbClock_ = 0;
    sim::RingDeque<CoreReq> coreReqs_;
    std::function<void()> coreReqIrq_;
    std::unordered_map<dtu::ActId, std::size_t> unread_;
    std::vector<sim::UniqueFunction<void()>> spaceWaiters_;

    sim::Counter *tlbMisses_;
    sim::Counter *tlbHits_;
    sim::Counter *coreReqCount_;
    sim::Counter *coreReqsCoalesced_;
    sim::Counter *foreignDenials_;
};

} // namespace m3v::core

#endif // M3VSIM_CORE_VDTU_H_
