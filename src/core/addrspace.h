/**
 * @file
 * Per-activity address spaces: a page-table model plus a simple
 * virtual-address allocator. TileMux manipulates page-table entries
 * on behalf of the controller/pager (paper section 4.3); the vDTU's
 * software-loaded TLB is refilled from here on transl TMCalls.
 */

#ifndef M3VSIM_CORE_ADDRSPACE_H_
#define M3VSIM_CORE_ADDRSPACE_H_

#include <cstdint>
#include <unordered_map>

#include "dtu/types.h"

namespace m3v::core {

/** A page-table entry. */
struct PageMapping
{
    dtu::PhysAddr phys = 0;
    std::uint8_t perms = 0;
};

/** An activity's address space. */
class AddrSpace
{
  public:
    AddrSpace() = default;

    /**
     * Allocate @p pages of contiguous virtual address space (no
     * mappings are created). Returns the base address.
     */
    dtu::VirtAddr allocPages(std::size_t pages);

    /** Install or replace a mapping for the page containing @p va. */
    void map(dtu::VirtAddr va, dtu::PhysAddr pa, std::uint8_t perms);

    /** Remove the mapping of the page containing @p va. */
    void unmap(dtu::VirtAddr va);

    /**
     * Look up the page containing @p va. Returns nullptr if unmapped
     * (a page fault).
     */
    const PageMapping *lookup(dtu::VirtAddr va) const;

    std::size_t mappedPages() const { return table_.size(); }

  private:
    static dtu::VirtAddr
    pageOf(dtu::VirtAddr va)
    {
        return va & ~(dtu::kPageSize - 1);
    }

    /** Start user VAs above the null-guard/text area. */
    dtu::VirtAddr next_ = 0x100000;
    std::unordered_map<dtu::VirtAddr, PageMapping> table_;
};

} // namespace m3v::core

#endif // M3VSIM_CORE_ADDRSPACE_H_
