#include "core/vdtu.h"

#include <algorithm>
#include <utility>

#include "sim/invariants.h"
#include "sim/log.h"

namespace m3v::core {

using dtu::ActId;
using dtu::EpId;
using dtu::Error;

VDtu::VDtu(sim::EventQueue &eq, std::string name, noc::Noc &noc,
           noc::TileId tile, std::uint64_t freq_hz, VDtuParams params,
           dtu::DtuTiming timing)
    : Dtu(eq, std::move(name), noc, tile, freq_hz, timing),
      params_(params), tlb_(params.tlbEntries)
{
    tlbMisses_ = statCounter("tlb.misses");
    tlbHits_ = statCounter("tlb.hits");
    coreReqCount_ = statCounter("core_reqs");
    coreReqsCoalesced_ = statCounter("core_reqs_coalesced");
    foreignDenials_ = statCounter("foreign_denials");
}

CurAct
VDtu::xchgAct(ActId next)
{
    CurAct old = cur_;
    old.msgCount = static_cast<std::uint16_t>(unreadOf(old.act));
    cur_.act = next;
    cur_.msgCount = static_cast<std::uint16_t>(unreadOf(next));
    return old;
}

void
VDtu::tlbInsert(ActId act, dtu::VirtAddr virt, dtu::PhysAddr phys,
                std::uint8_t perms)
{
    dtu::VirtAddr page = virt & ~(dtu::kPageSize - 1);
    // Replace an existing entry for the same (act, page) if present.
    TlbEntry *victim = nullptr;
    for (auto &e : tlb_) {
        if (e.act == act && e.page == page) {
            victim = &e;
            break;
        }
        if (e.act == dtu::kInvalidAct && !victim)
            victim = &e;
    }
    if (!victim) {
        // Evict the least-recently-used entry.
        victim = &tlb_[0];
        for (auto &e : tlb_)
            if (e.lastUse < victim->lastUse)
                victim = &e;
    }
    victim->act = act;
    victim->page = page;
    victim->phys = phys & ~(dtu::kPageSize - 1);
    victim->perms = perms;
    victim->lastUse = ++tlbClock_;
}

void
VDtu::tlbFlushAct(ActId act)
{
    for (auto &e : tlb_)
        if (e.act == act)
            e = TlbEntry();
}

void
VDtu::resetAct(ActId act)
{
    tlbFlushAct(act);
    // Drop buffered messages of the dead activity's receive
    // endpoints, returning flow-control credits to surviving senders.
    // Without this the endpoint slots and the unread_ bookkeeping
    // disagree, and a later fetch under a reused activity id panics.
    for (EpId i = 0; i < dtu::kNumEps; i++) {
        const dtu::Endpoint &e = ep(i);
        if (e.kind == dtu::EpKind::Receive && e.act == act)
            reclaimCredits(i);
    }
    unread_.erase(act);
    // Purge queued core requests of the dead activity (pop every
    // entry, push the survivors back in order). Freed slots lift the
    // section 3.8 backpressure, so wake any NoC waiters.
    std::size_t before = coreReqs_.size();
    for (std::size_t i = 0; i < before; i++) {
        CoreReq r = std::move(coreReqs_.front());
        coreReqs_.pop_front();
        if (r.act != act)
            coreReqs_.push_back(std::move(r));
    }
    if (coreReqs_.size() != before)
        notifySpaceWaiters();
    if (cur_.act == act)
        cur_.msgCount = 0;
}

std::size_t
VDtu::tlbFill() const
{
    std::size_t n = 0;
    for (const auto &e : tlb_)
        n += e.act != dtu::kInvalidAct ? 1 : 0;
    return n;
}

TlbEntry *
VDtu::tlbLookup(ActId act, dtu::VirtAddr page)
{
    for (auto &e : tlb_)
        if (e.act == act && e.page == page)
            return &e;
    return nullptr;
}

CoreReq
VDtu::coreReqGet() const
{
    if (coreReqs_.empty())
        sim::panic("%s: coreReqGet on empty queue", name().c_str());
    return coreReqs_.front();
}

void
VDtu::coreReqAck()
{
    if (coreReqs_.empty())
        sim::panic("%s: coreReqAck on empty queue", name().c_str());
    coreReqs_.pop_front();
    notifySpaceWaiters();
    if (!coreReqs_.empty() && coreReqIrq_)
        coreReqIrq_();
}

std::size_t
VDtu::unreadOf(ActId act) const
{
    auto it = unread_.find(act);
    return it == unread_.end() ? 0 : it->second;
}

CoreReq *
VDtu::findCoreReq(ActId act)
{
    for (std::size_t i = 0; i < coreReqs_.size(); i++)
        if (coreReqs_[i].act == act)
            return &coreReqs_[i];
    return nullptr;
}

bool
VDtu::acceptPacket(noc::Packet &pkt, sim::UniqueFunction<void()> on_space)
{
    // Corrupted packets are discarded by the base DTU; never exert
    // backpressure for something that will not be stored.
    if (pkt.corrupted)
        return Dtu::acceptPacket(pkt, std::move(on_space));
    // Backpressure: a message that will require a *new* core request
    // cannot be accepted while the core-request queue is full. The
    // NoC's packet-level flow control holds it at the last hop
    // (section 3.8). A message for an activity that already has a
    // queued request coalesces into it and needs no queue slot.
    auto *wd = dynamic_cast<dtu::WireData *>(pkt.data.get());
    if (wd && wd->kind == dtu::WireKind::MsgXfer &&
        coreReqs_.size() >= params_.coreReqQueue &&
        wd->dstEp < dtu::kNumEps) {
        const dtu::Endpoint &rep = ep(wd->dstEp);
        if (rep.kind == dtu::EpKind::Receive && rep.act != cur_.act &&
            findCoreReq(rep.act) == nullptr) {
            spaceWaiters_.push_back(std::move(on_space));
            return false;
        }
    }
    return Dtu::acceptPacket(pkt, std::move(on_space));
}

void
VDtu::notifySpaceWaiters()
{
    if (spaceWaiters_.empty())
        return;
    auto waiters = std::move(spaceWaiters_);
    spaceWaiters_.clear();
    for (auto &cb : waiters)
        cb();
}

Error
VDtu::checkEpAccess(ActId act, const dtu::Endpoint &ep) const
{
    if (ep.act != act) {
        // Report "unknown endpoint" (section 3.5): an activity must
        // not learn about endpoints it does not own. The registry
        // handle is mutable by design, so the const query path needs
        // no const_cast.
        foreignDenials_->inc();
        return Error::ForeignEp;
    }
    return Error::None;
}

Error
VDtu::translate(ActId act, dtu::VirtAddr buf, bool write,
                dtu::PhysAddr &phys)
{
    // TileMux runs with physical addressing (it owns the first PMP
    // region); its commands bypass the TLB.
    if (act == dtu::kTileMuxAct) {
        phys = buf;
        return pmpCheck(phys, write);
    }
    dtu::VirtAddr page = buf & ~(dtu::kPageSize - 1);
    TlbEntry *e = tlbLookup(act, page);
    if (!e) {
        tlbMisses_->inc();
        return Error::TlbMiss;
    }
    std::uint8_t need = write ? dtu::kPermW : dtu::kPermR;
    if (!(e->perms & need)) {
        tlbMisses_->inc();
        return Error::TlbMiss;
    }
    e->lastUse = ++tlbClock_;
    tlbHits_->inc();
    phys = e->phys | (buf & (dtu::kPageSize - 1));
    return pmpCheck(phys, write);
}

Error
VDtu::pmpCheck(dtu::PhysAddr phys, bool write) const
{
    // The PMP endpoint is selected by the upper two bits of the
    // physical address (section 4.1).
    EpId pmp_ep = static_cast<EpId>(phys >> 62);
    dtu::PhysAddr offset = phys & ((1ULL << 62) - 1);
    const dtu::Endpoint &mep = ep(pmp_ep);
    if (mep.kind != dtu::EpKind::Memory)
        return Error::PmpFault;
    if (offset >= mep.mem.size)
        return Error::PmpFault;
    std::uint8_t need = write ? dtu::kPermW : dtu::kPermR;
    if (!(mep.mem.perms & need))
        return Error::PmpFault;
    return Error::None;
}

void
VDtu::onMessageStored(EpId, ActId owner)
{
    unread_[owner]++;
    if (owner == cur_.act) {
        cur_.msgCount++;
        return;
    }
    // Message for a non-running activity: enqueue a core request and
    // inject an interrupt if the queue was empty (section 3.8). A
    // request for this activity already in the queue absorbs the
    // store — one wakeup drains any number of messages, so a burst
    // raises one IRQ instead of one per message.
    if (CoreReq *queued = findCoreReq(owner)) {
        queued->count++;
        coreReqsCoalesced_->inc();
        return;
    }
    bool was_empty = coreReqs_.empty();
    coreReqs_.push_back(CoreReq{owner, 1});
    coreReqCount_->inc();
    if (was_empty && coreReqIrq_)
        coreReqIrq_();
}

void
VDtu::registerInvariants(sim::Invariants &inv)
{
    inv.addCheck(name() + ".cur_act", [this](sim::Invariants &v) {
        if (cur_.msgCount != unreadOf(cur_.act))
            v.fail("%s: CUR_ACT msgCount %u != unread %zu of act %u",
                   name().c_str(), cur_.msgCount, unreadOf(cur_.act),
                   cur_.act);
    });

    inv.addCheck(name() + ".unread_bookkeeping",
                 [this](sim::Invariants &v) {
        // The unread_ map must agree with the slot-level truth: per
        // activity, the sum of unread slots over its receive EPs.
        std::unordered_map<ActId, std::size_t> per_act;
        for (EpId i = 0; i < dtu::kNumEps; i++) {
            const dtu::Endpoint &e = ep(i);
            if (e.kind == dtu::EpKind::Receive)
                per_act[e.act] += e.recv.unreadCount();
        }
        for (const auto &[act, n] : per_act)
            if (n != unreadOf(act))
                v.fail("%s: act %u has %zu unread slots but "
                       "unread_ says %zu",
                       name().c_str(), act, n, unreadOf(act));
        for (const auto &[act, n] : unread_) {
            auto it = per_act.find(act);
            std::size_t slots = it == per_act.end() ? 0 : it->second;
            if (n != slots)
                v.fail("%s: unread_ says %zu for act %u but slots "
                       "hold %zu",
                       name().c_str(), n, act, slots);
        }
    });

    inv.addCheck(name() + ".backpressure",
                 [this](sim::Invariants &v) {
        if (!spaceWaiters_.empty() &&
            coreReqs_.size() < params_.coreReqQueue)
            v.fail("%s: %zu NoC waiters parked but core-req queue "
                   "has space (%zu/%zu)",
                   name().c_str(), spaceWaiters_.size(),
                   coreReqs_.size(), params_.coreReqQueue);
    });

    inv.addCheck(
        name() + ".core_reqs_drained",
        [this](sim::Invariants &v) {
            if (!coreReqs_.empty())
                v.fail("%s: %zu core requests never drained",
                       name().c_str(), coreReqs_.size());
            if (!spaceWaiters_.empty())
                v.fail("%s: %zu NoC space waiters never released",
                       name().c_str(), spaceWaiters_.size());
        },
        sim::Invariants::When::QuiescentOnly);
}

void
VDtu::onMessageFetched(EpId, ActId owner)
{
    auto it = unread_.find(owner);
    if (it == unread_.end() || it->second == 0)
        sim::panic("%s: fetch with zero unread count", name().c_str());
    it->second--;
    if (owner == cur_.act && cur_.msgCount > 0)
        cur_.msgCount--;
}

} // namespace m3v::core
