#include "core/tilemux.h"

#include <utility>

#include "sim/invariants.h"
#include "sim/log.h"

namespace m3v::core {

using dtu::ActId;
using dtu::kInvalidAct;
using dtu::kTileMuxAct;

Activity::Activity(TileMux &mux, tile::Core &core, ActId id,
                   std::string name, std::size_t footprint)
    : mux_(mux), id_(id), name_(name), footprint_(footprint),
      thread_(core, name + ".thread", id)
{
}

TileMux::TileMux(sim::EventQueue &eq, std::string name,
                 tile::Core &core, VDtu &vdtu, TileMuxParams params)
    : SimObject(eq, std::move(name)), core_(core), vdtu_(vdtu),
      params_(params),
      l1i_(core.model().l1iBytes, 64, core.model().lineFillCycles)
{
    switches_ = statCounter("switches");
    coreReqIrqs_ = statCounter("core_req_irqs");
    timerIrqs_ = statCounter("timer_irqs");
    tmCalls_ = statCounter("tmcalls");
    watchdogKills_ = statCounter("watchdog_kills");
    crashes_ = statCounter("crashes");
    trc_ = &eq.tracer();
    pid_ = vdtu.tileId();
    if (trc_->anyEnabled()) {
        trc_->setProcessName(pid_,
                             "tile" + std::to_string(pid_));
        trc_->setThreadName(pid_, sim::kTraceTidMux, "tilemux");
        trc_->setThreadName(pid_, sim::kTraceTidDtu, "vdtu");
    }
    core_.setIrqHandler([this](tile::IrqKind k) { onIrq(k); });
    vdtu_.setCoreReqIrq(
        [this]() { core_.raiseIrq(tile::IrqKind::CoreRequest); });
    vdtu_.setMsgNotify([this](dtu::EpId, ActId owner) {
        auto it = pollers_.find(owner);
        if (it != pollers_.end()) {
            Activity *a = it->second;
            pollers_.erase(it);
            a->thread().wake();
        }
    });
    // Start in the idle state.
    vdtu_.xchgAct(params_.idleAct);
}

sim::Cycles
TileMux::touchMux()
{
    return l1i_.touch(0, params_.muxFootprint);
}

Activity *
TileMux::createActivity(ActId id, std::string name,
                        std::size_t footprint)
{
    if (acts_.count(id))
        sim::panic("%s: duplicate activity id %u", this->name().c_str(),
                   id);
    auto act = std::make_unique<Activity>(*this, core_, id,
                                          std::move(name), footprint);
    Activity *ptr = act.get();
    acts_.emplace(id, std::move(act));
    return ptr;
}

void
TileMux::startActivity(Activity *act, sim::Task body)
{
    // Only a freshly created activity may be started: restarting one
    // that is already Ready (or still queued after a yield) would
    // start a second thread body and enqueue a duplicate ready_
    // entry, so the activity runs "twice".
    if (act->state_ != Activity::State::Init) {
        sim::warn("%s: startActivity on %s in non-Init state; ignored",
                  name().c_str(), act->name().c_str());
        return;
    }
    if (trc_->anyEnabled())
        trc_->setThreadName(pid_, act->id(), act->name());
    act->thread_.start(std::move(body));
    act->state_ = Activity::State::Ready;
    ready_.push_back(act);
    // If another activity is on the core without a slice timer (it
    // was running alone), arm one now so the newcomer gets its turn.
    if (core_.current() && !core_.timerArmed())
        armSlice(params_.timeSlice);
    kickScheduler();
}

void
TileMux::killActivity(ActId id)
{
    Activity *act = activity(id);
    if (!act || act->state_ == Activity::State::Dead)
        return;
    act->state_ = Activity::State::Dead;
    if (current_ == act)
        current_ = nullptr;
    if (hint_ == act)
        hint_ = nullptr;
    pollers_.erase(id);
    vdtu_.resetAct(id);
    if (act->onExit)
        eq_.schedule(0, [act]() { act->onExit(); });
}

void
TileMux::crashActivity(ActId id)
{
    Activity *act = activity(id);
    if (!act || act->state_ == Activity::State::Dead)
        return;
    if (core_.current() == &act->thread_) {
        // The victim is on the core right now: yank its thread off
        // before the kill (the trap a real crash would take), or the
        // in-flight compute/wait would resume the coroutine past its
        // own death.
        core_.preemptCurrent();
        current_ = nullptr;
        reapLocal(*act, *crashes_, "crash");
        kickScheduler();
        return;
    }
    reapLocal(*act, *crashes_, "crash");
}

void
TileMux::reapLocal(Activity &act, sim::Counter &reason,
                   const char *why)
{
    reason.inc();
    trc_->instant(sim::TraceCat::Fault, pid_, act.id(), why);
    ActId id = act.id();
    killActivity(id);
    if (crashHandler_) {
        // Upcall outside the kernel path: the controller reaps the
        // activity's endpoints, capabilities, and credits.
        eq_.schedule(0, [this, id]() { crashHandler_(id); });
    }
}

Activity *
TileMux::activity(ActId id)
{
    auto it = acts_.find(id);
    return it == acts_.end() ? nullptr : it->second.get();
}

void
TileMux::mapPage(ActId id, dtu::VirtAddr va, dtu::PhysAddr pa,
                 std::uint8_t perms)
{
    Activity *act = activity(id);
    if (!act)
        sim::panic("%s: mapPage for unknown activity %u",
                   name().c_str(), id);
    act->as_.map(va, pa, perms);
}

void
TileMux::setPageFaultHandler(PageFaultHandler h)
{
    pageFault_ = std::move(h);
}

void
TileMux::setSidecallEp(dtu::EpId rep, SidecallHandler h)
{
    sidecallEp_ = rep;
    sidecall_ = std::move(h);
}

bool
TileMux::othersReady(const Activity &act) const
{
    for (const Activity *a : ready_)
        if (a != &act && a->state() == Activity::State::Ready)
            return true;
    if (hint_ && hint_ != &act &&
        hint_->state() == Activity::State::Ready)
        return true;
    return false;
}

void
TileMux::registerPoller(Activity &act)
{
    pollers_[act.id()] = &act;
}

//
// TMCall awaitables.
//

sim::Task
TileMux::waitForMsg(Activity &act, dtu::EpId ep)
{
    act.hogSlices_ = 0;
    act.waitEp_ = ep; // consulted only while BlockedMsg
    // Check the shared-memory "others ready" flag (a couple of loads).
    co_await act.thread().compute(4);

    auto has_msg = [this, &act, ep]() {
        if (ep != dtu::kInvalidEp)
            return vdtu_.unread(act.id(), ep) > 0;
        return vdtu_.unreadOf(act.id()) > 0;
    };

    if (has_msg())
        co_return;

    if (!othersReady(act)) {
        // Nobody else wants the core: poll the vDTU (section 3.7's
        // "current implementation polls if no other activities are
        // ready"). The wake comes straight from the vDTU.
        registerPoller(act);
        co_await act.thread().externalWait();
        co_return;
    }

    // Others are ready: block via TMCall so they can run.
    tmCalls_->inc();
    trc_->begin(sim::TraceCat::TmCall, pid_, act.id(), "tmcall:wait");
    co_await act.thread().trapCall([this, &act, has_msg]() {
        core_.kernelWork(params_.entryCost + touchMux(), [this, &act,
                                                          has_msg]() {
            if (has_msg()) {
                // The message raced with the TMCall; return at once.
                act.state_ = Activity::State::Running;
                core_.kernelExitTo(&act.thread_);
                return;
            }
            act.state_ = Activity::State::BlockedMsg;
            current_ = nullptr;
            scheduleNext();
        });
    });
    trc_->end(sim::TraceCat::TmCall, pid_, act.id());
}

sim::Task
TileMux::translCall(Activity &act, dtu::VirtAddr va, bool write)
{
    act.hogSlices_ = 0;
    tmCalls_->inc();
    trc_->begin(sim::TraceCat::TmCall, pid_, act.id(),
                "tmcall:transl");
    co_await act.thread().trapCall([this, &act, va, write]() {
        sim::Cycles cost =
            params_.entryCost + params_.translCost + touchMux();
        core_.kernelWork(cost, [this, &act, va, write]() {
            const PageMapping *pm = act.as_.lookup(va);
            sim::Cycles extra = 0;
            dtu::PhysAddr pa = 0;
            std::uint8_t perms = 0;
            if (pm) {
                pa = pm->phys;
                perms = pm->perms;
            } else if (pageFault_ &&
                       pageFault_(act, va, pa, perms, extra)) {
                act.as_.map(va, pa, perms);
            } else {
                sim::panic("%s: unresolvable page fault for %s at "
                           "0x%llx",
                           name().c_str(), act.name().c_str(),
                           static_cast<unsigned long long>(va));
            }
            (void)write;
            core_.kernelWork(extra, [this, &act, va, pa, perms]() {
                vdtu_.tlbInsert(act.id(), va, pa, perms);
                act.state_ = Activity::State::Running;
                core_.kernelExitTo(&act.thread_);
            });
        });
    });
    trc_->end(sim::TraceCat::TmCall, pid_, act.id());
}

sim::Task
TileMux::yieldCall(Activity &act)
{
    act.hogSlices_ = 0;
    tmCalls_->inc();
    trc_->begin(sim::TraceCat::TmCall, pid_, act.id(),
                "tmcall:yield");
    co_await act.thread().trapCall([this, &act]() {
        core_.kernelWork(params_.entryCost + touchMux(), [this,
                                                          &act]() {
            act.state_ = Activity::State::Ready;
            ready_.push_back(&act);
            current_ = nullptr;
            scheduleNext();
        });
    });
    trc_->end(sim::TraceCat::TmCall, pid_, act.id());
}

sim::Task
TileMux::exitCall(Activity &act)
{
    act.hogSlices_ = 0;
    tmCalls_->inc();
    trc_->instant(sim::TraceCat::TmCall, pid_, act.id(),
                  "tmcall:exit");
    co_await act.thread().trapCall([this, &act]() {
        core_.kernelWork(params_.entryCost + touchMux(), [this,
                                                          &act]() {
            act.state_ = Activity::State::Dead;
            current_ = nullptr;
            pollers_.erase(act.id());
            vdtu_.resetAct(act.id());
            if (act.onExit) {
                // Run the harness hook outside the kernel path.
                eq_.schedule(0, [&act]() { act.onExit(); });
            }
            scheduleNext();
        });
    });
    sim::panic("%s: exited activity resumed", act.name().c_str());
}

//
// Interrupts and scheduling.
//

void
TileMux::onIrq(tile::IrqKind kind)
{
    // The core preempted the current thread; reconcile our state.
    if (current_ && current_->state_ == Activity::State::Running) {
        auto pit = pollers_.find(current_->id());
        if (pit != pollers_.end() &&
            vdtu_.unreadOf(current_->id()) == 0 &&
            !current_->thread().wakePending()) {
            // An idle poller (section 3.7's poll-instead-of-block
            // only holds while nobody else wants the core): demote
            // it to blocked; a message for it raises a core request
            // like any blocked activity.
            pollers_.erase(pit);
            current_->state_ = Activity::State::BlockedMsg;
        } else {
            current_->state_ = Activity::State::Ready;
            if (kind == tile::IrqKind::Timer) {
                if (current_->thread().inExternalWait()) {
                    // Blocked on the DTU (e.g. a command sitting in
                    // retransmission backoff), not hogging the core:
                    // a wait slice is not a hog slice.
                    current_->hogSlices_ = 0;
                } else {
                    current_->hogSlices_++;
                }
                if (params_.watchdogSlices > 0 &&
                    current_->hogSlices_ >= params_.watchdogSlices) {
                    // Hung: N consecutive full slices without one
                    // TMCall. Kill it here instead of requeueing so
                    // the other activities keep the core.
                    reapLocal(*current_, *watchdogKills_, "watchdog");
                } else {
                    ready_.push_back(current_); // slice over: go last
                }
            } else {
                // A core-request/device interrupt is not a slice
                // expiry: bank the unconsumed remnant so the next
                // dispatch resumes it. Re-arming a fresh slice here
                // would let a compute-bound activity under steady
                // message traffic keep the core forever.
                if (core_.timerArmed() && sliceEnd_ > eq_.now())
                    current_->sliceLeft_ = sliceEnd_ - eq_.now();
                ready_.push_front(current_); // keep its turn
            }
        }
        current_ = nullptr;
    }

    core_.kernelWork(params_.entryCost + touchMux(), [this, kind]() {
        switch (kind) {
          case tile::IrqKind::Timer:
            timerIrqs_->inc();
            trc_->instant(sim::TraceCat::Irq, pid_,
                          sim::kTraceTidMux, "timer_irq");
            scheduleNext();
            break;
          case tile::IrqKind::CoreRequest:
            coreReqIrqs_->inc();
            trc_->instant(sim::TraceCat::Irq, pid_,
                          sim::kTraceTidMux, "core_req_irq");
            handleCoreRequest();
            break;
          case tile::IrqKind::Device:
            // Tile-local device interrupts wake the driver activity,
            // which registered itself as a message poller for its
            // own id via waitForMsg-like blocking. Drivers in this
            // simulator use message-based wakeups instead; a raw
            // device IRQ just reschedules.
            scheduleNext();
            break;
        }
    });
}

void
TileMux::handleCoreRequest()
{
    if (!vdtu_.coreReqPending()) {
        // The request may have been consumed by an earlier handler
        // invocation (IRQ was already pended).
        scheduleNext();
        return;
    }
    CoreReq req = vdtu_.coreReqGet();
    vdtu_.coreReqAck();

    if (req.act == kTileMuxAct) {
        handleSidecall();
        return;
    }

    Activity *act = activity(req.act);
    if (act && act->state_ == Activity::State::BlockedMsg) {
        act->state_ = Activity::State::Ready;
        ready_.push_back(act);
    }
    if (params_.switchOnMsg && act &&
        act->state_ == Activity::State::Ready) {
        // "As soon as a non-running activity received a message and
        // has time left to execute, TileMux switches to it."
        hint_ = act;
    }
    scheduleNext();
}

void
TileMux::handleSidecall()
{
    // TileMux must briefly switch to its own activity id to use its
    // endpoints (section 4.2): model the two exchanges plus handler.
    const auto &m = core_.model();
    sim::Cycles cost = params_.sidecallCost +
                       2 * (m.mmioReadCycles + m.mmioWriteCycles);
    core_.kernelWork(cost, [this]() {
        if (sidecallEp_ != dtu::kInvalidEp && sidecall_) {
            for (;;) {
                int slot = vdtu_.fetch(kTileMuxAct, sidecallEp_);
                if (slot < 0)
                    break;
                dtu::Message msg = vdtu_.slotMsg(sidecallEp_, slot);
                // The handler replies (or acks) the slot itself.
                sidecall_(msg, slot);
            }
        }
        scheduleNext();
    });
}

void
TileMux::kickScheduler()
{
    if (core_.inKernel() || core_.current())
        return;
    core_.kernelEnter(params_.entryCost + touchMux(),
                      [this]() { scheduleNext(); });
}

Activity *
TileMux::pickNext()
{
    if (hint_ && hint_->state_ == Activity::State::Ready) {
        Activity *h = hint_;
        hint_ = nullptr;
        // Drop it from the ready queue if it is queued there.
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            if (*it == h) {
                ready_.erase(it);
                break;
            }
        }
        return h;
    }
    hint_ = nullptr;
    while (!ready_.empty()) {
        Activity *a = ready_.front();
        ready_.pop_front();
        if (a->state_ == Activity::State::Ready)
            return a;
    }
    return nullptr;
}

void
TileMux::scheduleNext()
{
    core_.kernelWork(params_.schedCost, [this]() {
        Activity *next = pickNext();
        if (next) {
            switchTo(next);
            return;
        }
        // Nothing to run: become idle, but re-check the activity we
        // are switching away from for lost wake-ups (section 3.7).
        CurAct old = vdtu_.xchgAct(params_.idleAct);
        if (old.act != params_.idleAct && old.msgCount > 0) {
            Activity *oa = activity(old.act);
            if (oa && oa->state_ == Activity::State::BlockedMsg) {
                oa->state_ = Activity::State::Ready;
                switchTo(oa);
                return;
            }
        }
        current_ = nullptr;
        core_.cancelTimer();
        core_.kernelExitIdle();
    });
}

void
TileMux::switchTo(Activity *next)
{
    const auto &m = core_.model();
    CurAct old = vdtu_.xchgAct(next->id());

    // Lost-wakeup check for the activity we switched away from.
    if (old.act != next->id() && old.msgCount > 0) {
        Activity *oa = activity(old.act);
        if (oa && oa->state_ == Activity::State::BlockedMsg) {
            oa->state_ = Activity::State::Ready;
            ready_.push_back(oa);
        }
    }

    sim::Cycles cost =
        2 * (m.mmioReadCycles + m.mmioWriteCycles); // CUR_ACT xchg
    if (old.act != next->id()) {
        // Full switch: register contexts, address space, cache
        // competition with the incoming activity's footprint.
        cost += 2 * m.regContextCycles + m.addrSpaceSwitchCycles;
        cost += l1i_.touch(
            static_cast<tile::RegionId>(next->id()) + 1,
            next->footprint_ /
                std::max<std::size_t>(1,
                                      params_.switchTouchDivisor));
        switches_->inc();
        trc_->instant(sim::TraceCat::Sched, pid_, next->id(),
                      "switch");
    }

    core_.kernelWork(cost, [this, next]() {
        current_ = next;
        next->state_ = Activity::State::Running;
        // If messages arrived while the activity was switched out
        // (e.g. it was demoted from a poll-wait), latch a wake so a
        // thread parked in externalWait re-checks its endpoints.
        if (vdtu_.unreadOf(next->id()) > 0)
            next->thread().wake();
        // Tickless: only arm the slice timer when someone else is
        // waiting for the core (keeps idle phases event-free). With
        // the watchdog enabled the timer stays armed even for a lone
        // activity — a hog on an otherwise-blocked tile would never
        // be preempted, and the watchdog would never see it.
        if (!ready_.empty() || params_.watchdogSlices > 0)
            armSlice(next->sliceLeft_ > 0 ? next->sliceLeft_
                                          : params_.timeSlice);
        else
            core_.cancelTimer();
        next->sliceLeft_ = 0;
        core_.kernelExitTo(&next->thread_);
    });
}

void
TileMux::armSlice(sim::Tick slice)
{
    sliceEnd_ = eq_.now() + slice;
    core_.setTimer(slice);
}

void
TileMux::registerInvariants(sim::Invariants &inv)
{
    inv.addCheck(name() + ".sched_state", [this](sim::Invariants &v) {
        for (std::size_t i = 0; i < ready_.size(); i++) {
            Activity *a = ready_[i];
            if (a == current_)
                v.fail("%s: current activity %s also queued ready",
                       name().c_str(), a->name().c_str());
            if (a->state_ == Activity::State::Running)
                v.fail("%s: Running activity %s in ready queue",
                       name().c_str(), a->name().c_str());
            for (std::size_t j = i + 1; j < ready_.size(); j++)
                if (ready_[j] == a)
                    v.fail("%s: activity %s queued ready twice",
                           name().c_str(), a->name().c_str());
        }
        // Outside the kernel the dispatched activity must be Running
        // and CUR_ACT must name it (kernelExitTo restores both
        // atomically; deliverIrq re-enters the kernel synchronously).
        if (current_ && !core_.inKernel()) {
            if (current_->state_ != Activity::State::Running)
                v.fail("%s: dispatched activity %s not Running",
                       name().c_str(), current_->name().c_str());
            if (vdtu_.curAct().act != current_->id())
                v.fail("%s: CUR_ACT %u != dispatched activity %u",
                       name().c_str(), vdtu_.curAct().act,
                       current_->id());
        }
        for (const auto &[id, a] : pollers_)
            if (a->state_ == Activity::State::Dead)
                v.fail("%s: dead activity %s registered as poller",
                       name().c_str(), a->name().c_str());
    });

    inv.addCheck(
        name() + ".progress",
        [this](sim::Invariants &v) {
            for (const auto &[id, up] : acts_) {
                Activity *a = up.get();
                if (a->state_ == Activity::State::Ready)
                    v.fail("%s: activity %s still Ready at quiescence "
                           "(scheduler stall)",
                           name().c_str(), a->name().c_str());
                if (a->state_ != Activity::State::BlockedMsg)
                    continue;
                bool unread =
                    a->waitEp_ != dtu::kInvalidEp
                        ? vdtu_.unread(a->id(), a->waitEp_) > 0
                        : vdtu_.unreadOf(a->id()) > 0;
                if (unread)
                    v.fail("%s: activity %s blocked with an unread "
                           "message on its waited EP (lost wakeup)",
                           name().c_str(), a->name().c_str());
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

} // namespace m3v::core
