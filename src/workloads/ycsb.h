/**
 * @file
 * The Yahoo! Cloud Serving Benchmark workload generator as configured
 * in the paper (section 6.5.2): 200 records created first, then 200
 * operations drawn from a Zipfian distribution with the given
 * read/insert/update/scan proportions.
 */

#ifndef M3VSIM_WORKLOADS_YCSB_H_
#define M3VSIM_WORKLOADS_YCSB_H_

#include <string>
#include <vector>

#include "sim/rng.h"
#include "workloads/zipf.h"

namespace m3v::workloads {

/** One YCSB operation. */
struct YcsbOp
{
    enum class Kind
    {
        Read,
        Insert,
        Update,
        Scan,
    };

    Kind kind = Kind::Read;
    std::string key;
    std::string value;  ///< for Insert/Update
    unsigned scanLen = 0; ///< records to scan
};

/** Operation mix in percent. */
struct YcsbMix
{
    unsigned read = 0;
    unsigned insert = 0;
    unsigned update = 0;
    unsigned scan = 0;

    /** The paper's mixes (section 6.5.2). */
    static YcsbMix readHeavy() { return {80, 10, 10, 0}; }
    static YcsbMix insertHeavy() { return {10, 80, 10, 0}; }
    static YcsbMix updateHeavy() { return {10, 10, 80, 0}; }
    static YcsbMix scanHeavy() { return {10, 10, 0, 80}; }
    static YcsbMix mixed() { return {50, 10, 30, 10}; }
};

/** Generator configuration. */
struct YcsbConfig
{
    unsigned records = 200;
    unsigned operations = 200;
    /** YCSB default record size: 10 fields x 100 bytes. */
    std::size_t valueBytes = 1000;
    unsigned scanLen = 20;
    double zipfTheta = 0.99;
    std::uint64_t seed = 42;
};

/** A generated workload: load phase + run phase. */
struct YcsbWorkload
{
    std::vector<YcsbOp> load; ///< initial inserts
    std::vector<YcsbOp> run;  ///< measured operations
};

/** Key of record @p i ("user0000.."). */
std::string ycsbKey(std::uint64_t i);

/** Generate a workload for the given mix. */
YcsbWorkload ycsbGenerate(const YcsbConfig &cfg, const YcsbMix &mix);

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_YCSB_H_
