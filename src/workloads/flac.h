/**
 * @file
 * flac-lite: a real lossless audio codec standing in for libFLAC in
 * the voice-assistant scenario (paper section 6.5.1). Like FLAC it
 * encodes fixed-blocksize frames with fixed linear predictors
 * (orders 0-4, chosen per frame by residual magnitude) and Rice-codes
 * the residuals; decoding restores the exact samples.
 *
 * The codec does real work on real samples, so compressed sizes and
 * the simulated compute (cycles scale with encoded bits) track the
 * input's compressibility like the paper's compressor.
 */

#ifndef M3VSIM_WORKLOADS_FLAC_H_
#define M3VSIM_WORKLOADS_FLAC_H_

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace m3v::workloads {

using Samples = std::vector<std::int16_t>;

/** Encoded frame. */
struct FlacFrame
{
    std::uint16_t blockSize = 0;
    std::uint8_t order = 0;       ///< chosen predictor order
    std::uint8_t riceK = 0;       ///< Rice parameter
    std::vector<std::uint8_t> bits;
};

/** Encode one frame of samples (any length up to 65535). */
FlacFrame flacEncodeFrame(const std::int16_t *samples,
                          std::size_t n);

/** Decode a frame back to samples (exact reconstruction). */
Samples flacDecodeFrame(const FlacFrame &frame);

/** Encode a whole buffer in fixed-size blocks. */
std::vector<FlacFrame> flacEncode(const Samples &samples,
                                  std::size_t block_size = 4096);

/** Decode a sequence of frames. */
Samples flacDecode(const std::vector<FlacFrame> &frames);

/** Total encoded payload bytes (for transmission). */
std::size_t flacBytes(const std::vector<FlacFrame> &frames);

/**
 * Modelled encode cost in cycles for a frame: predictor search plus
 * per-bit entropy coding (used by the compressor activity).
 */
sim::Cycles flacEncodeCost(const FlacFrame &frame);

//
// Synthetic audio for the voice assistant.
//

/** Audio generator parameters. */
struct AudioParams
{
    unsigned sampleRate = 16000;
    /** Base pitch of the synthetic voice band. */
    double baseHz = 220.0;
    /** Background noise amplitude (0..1). */
    double noise = 0.02;
    std::uint64_t seed = 7;
};

/**
 * Generate @p n samples of voice-like audio (harmonics + noise).
 * If @p with_trigger, a distinctive high-energy chirp is embedded in
 * the middle third of the buffer.
 */
Samples generateAudio(std::size_t n, const AudioParams &params,
                      bool with_trigger);

/**
 * The trigger-word scanner: sliding-window energy + chirp-band
 * detection. Returns true if the trigger is present.
 */
bool scanForTrigger(const Samples &samples, unsigned sample_rate);

/** Modelled scan cost in cycles (linear in the input). */
sim::Cycles scanCost(std::size_t samples);

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_FLAC_H_
