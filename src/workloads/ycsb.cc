#include "workloads/ycsb.h"

#include "sim/log.h"

namespace m3v::workloads {

std::string
ycsbKey(std::uint64_t i)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "user%08llu",
                  static_cast<unsigned long long>(i));
    return buf;
}

namespace {

std::string
randomValue(sim::Rng &rng, std::size_t len)
{
    std::string v(len, '\0');
    for (std::size_t i = 0; i < len; i++)
        v[i] = static_cast<char>('a' + rng.nextBounded(26));
    return v;
}

} // namespace

YcsbWorkload
ycsbGenerate(const YcsbConfig &cfg, const YcsbMix &mix)
{
    if (mix.read + mix.insert + mix.update + mix.scan != 100)
        sim::fatal("ycsb: mix must sum to 100");

    sim::Rng rng(cfg.seed);
    YcsbWorkload w;

    // Load phase: create the records.
    for (unsigned i = 0; i < cfg.records; i++) {
        YcsbOp op;
        op.kind = YcsbOp::Kind::Insert;
        op.key = ycsbKey(i);
        op.value = randomValue(rng, cfg.valueBytes);
        w.load.push_back(std::move(op));
    }

    // Run phase.
    Zipfian zipf(cfg.records, cfg.zipfTheta);
    std::uint64_t next_insert = cfg.records;
    for (unsigned i = 0; i < cfg.operations; i++) {
        auto roll = static_cast<unsigned>(rng.nextBounded(100));
        YcsbOp op;
        if (roll < mix.read) {
            op.kind = YcsbOp::Kind::Read;
            op.key = ycsbKey(zipf.next(rng));
        } else if (roll < mix.read + mix.insert) {
            op.kind = YcsbOp::Kind::Insert;
            op.key = ycsbKey(next_insert++);
            op.value = randomValue(rng, cfg.valueBytes);
        } else if (roll < mix.read + mix.insert + mix.update) {
            op.kind = YcsbOp::Kind::Update;
            op.key = ycsbKey(zipf.next(rng));
            op.value = randomValue(rng, cfg.valueBytes);
        } else {
            op.kind = YcsbOp::Kind::Scan;
            op.key = ycsbKey(zipf.next(rng));
            op.scanLen = cfg.scanLen;
        }
        w.run.push_back(std::move(op));
    }
    return w;
}

} // namespace m3v::workloads
