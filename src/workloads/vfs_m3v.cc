#include "workloads/vfs_m3v.h"

#include "sim/log.h"

namespace m3v::workloads {

using dtu::Error;

namespace {

std::uint32_t
toFsFlags(std::uint32_t flags)
{
    std::uint32_t f = 0;
    if (flags & kVfsR)
        f |= services::kOpenR;
    if (flags & kVfsW)
        f |= services::kOpenW;
    if (flags & kVfsCreate)
        f |= services::kOpenCreate;
    if (flags & kVfsTrunc)
        f |= services::kOpenTrunc;
    return f;
}

} // namespace

/** An open m3fs file bound to one EP-pool slot. */
class M3vVfsFile : public VfsFile
{
  public:
    M3vVfsFile(M3vVfs &vfs, os::Env &env,
               const services::M3fs::Client &client, int slot)
        : vfs_(vfs), slot_(slot),
          session_(env, client, static_cast<unsigned>(slot))
    {
    }

    ~M3vVfsFile() override
    {
        vfs_.putEpSlot(slot_);
    }

    services::FileSession &session() { return session_; }

    sim::Task
    read(std::size_t want, Bytes *out, bool *ok) override
    {
        Error err = Error::None;
        co_await session_.read(want, out, &err);
        *ok = err == Error::None;
    }

    sim::Task
    write(Bytes data, bool *ok) override
    {
        Error err = Error::None;
        co_await session_.write(std::move(data), &err);
        *ok = err == Error::None;
    }

    sim::Task
    seek(std::uint64_t off) override
    {
        session_.seek(off);
        co_return;
    }

    sim::Task
    close() override
    {
        vfs_.extentRpcs_ += session_.extentRpcs();
        Error err = Error::None;
        co_await session_.close(&err);
    }

    std::uint64_t size() const override { return session_.size(); }

  private:
    M3vVfs &vfs_;
    int slot_;
    services::FileSession session_;
};

M3vVfs::M3vVfs(os::Env &env, services::M3fs::Client client)
    : env_(env), client_(std::move(client)), pathOps_(env, client_, 0),
      epBusy_(client_.fileEps.size(), false)
{
    epBusy_.at(0) = true; // slot 0 is reserved for path operations
}

int
M3vVfs::takeEpSlot()
{
    for (std::size_t i = 1; i < epBusy_.size(); i++) {
        if (!epBusy_[i]) {
            epBusy_[i] = true;
            return static_cast<int>(i);
        }
    }
    sim::fatal("M3vVfs: out of file endpoints (too many open files)");
}

void
M3vVfs::putEpSlot(int idx)
{
    epBusy_.at(static_cast<std::size_t>(idx)) = false;
}

sim::Task
M3vVfs::open(const std::string &path, std::uint32_t flags,
             std::unique_ptr<VfsFile> *out, bool *ok)
{
    int slot = takeEpSlot();
    auto file =
        std::make_unique<M3vVfsFile>(*this, env_, client_, slot);
    Error err = Error::None;
    co_await file->session().open(path, toFsFlags(flags), &err);
    if (err != Error::None) {
        *ok = false;
        co_return;
    }
    *out = std::move(file);
    *ok = true;
}

sim::Task
M3vVfs::stat(const std::string &path, VfsStat *out)
{
    services::FsResp resp;
    co_await pathOps_.stat(path, &resp);
    out->exists = resp.err == Error::None;
    out->isDir = resp.isDir != 0;
    out->size = resp.size;
}

sim::Task
M3vVfs::readdir(const std::string &path, std::uint64_t idx,
                std::string *name, bool *ok)
{
    // Serve from the cached batch when possible (getdents-style).
    if (path == dirCachePath_ && idx >= dirCacheStart_ &&
        idx < dirCacheStart_ + dirCache_.size()) {
        *name = dirCache_[idx - dirCacheStart_];
        *ok = true;
        co_return;
    }
    if (path == dirCachePath_ &&
        idx == dirCacheStart_ + dirCache_.size() && !dirCacheMore_) {
        *ok = false;
        co_return;
    }
    services::FsResp resp;
    co_await pathOps_.readdir(path, idx, &resp);
    if (resp.err != Error::None || resp.count == 0) {
        *ok = false;
        co_return;
    }
    dirCachePath_ = path;
    dirCacheStart_ = idx;
    dirCache_ = services::FileSession::readdirNames(resp);
    dirCacheMore_ = resp.more != 0;
    *name = dirCache_.front();
    *ok = true;
}

sim::Task
M3vVfs::unlink(const std::string &path, bool *ok)
{
    Error err = Error::None;
    co_await pathOps_.unlink(path, &err);
    *ok = err == Error::None;
}

sim::Task
M3vVfs::mkdir(const std::string &path, bool *ok)
{
    Error err = Error::None;
    co_await pathOps_.mkdir(path, &err);
    *ok = err == Error::None;
}

} // namespace m3v::workloads
