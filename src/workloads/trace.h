/**
 * @file
 * System-call traces and the trace player (the Figure 9 workload).
 *
 * The paper replays Linux system-call traces of "find" (a search over
 * 24 directories with 40 files each) and "SQLite" (32 inserts and
 * selects) against an in-memory file system on each tile. We generate
 * structurally equivalent traces programmatically: the same operation
 * mix, counts and per-operation application compute.
 */

#ifndef M3VSIM_WORKLOADS_TRACE_H_
#define M3VSIM_WORKLOADS_TRACE_H_

#include <string>
#include <vector>

#include "workloads/vfs.h"

namespace m3v::workloads {

/** One traced operation. */
struct TraceOp
{
    enum class Kind
    {
        Open,    ///< open (path, flags); result bound to the slot
        Close,   ///< close the open slot
        Read,    ///< read size bytes from the open slot
        Write,   ///< write size bytes to the open slot
        Stat,    ///< stat(path)
        Readdir, ///< enumerate all entries of path
        Unlink,  ///< unlink(path)
        Mkdir,   ///< mkdir(path)
        Compute, ///< application compute between calls
    };

    Kind kind = Kind::Compute;
    std::string path;
    std::uint32_t flags = 0;
    std::uint32_t size = 0;
    sim::Cycles cycles = 0;
};

/** A full trace plus the tree it expects to exist. */
struct Trace
{
    std::string name;
    /** Directories to create before the first run. */
    std::vector<std::string> setupDirs;
    /** Files (path, bytes) to create before the first run. */
    std::vector<std::pair<std::string, std::uint32_t>> setupFiles;
    /** The replayed operations (one application "run"). */
    std::vector<TraceOp> ops;
};

/**
 * The "find" trace: walk @p dirs directories of @p files_per_dir
 * files, readdir + stat everything (paper: 24 x 40).
 */
Trace makeFindTrace(unsigned dirs = 24, unsigned files_per_dir = 40,
                    sim::Cycles per_entry_compute = 350);

/**
 * The "SQLite" trace: @p inserts database inserts and as many
 * selects, with journal-file churn per transaction (paper: 32).
 */
Trace makeSqliteTrace(unsigned inserts = 32,
                      sim::Cycles per_txn_compute = 2200);

/** Result of one trace replay. */
struct TraceStats
{
    std::uint64_t fsOps = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
};

/** Create the trace's directory tree and files through @p vfs. */
sim::Task traceSetup(Vfs &vfs, const Trace &trace);

/** Replay the trace's operations once. */
sim::Task tracePlay(Vfs &vfs, const Trace &trace, TraceStats *stats);

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_TRACE_H_
