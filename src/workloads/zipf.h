/**
 * @file
 * Zipfian distribution generator (Gray et al.'s method, as used by
 * YCSB): item 0 is the most popular; popularity decays with rank.
 */

#ifndef M3VSIM_WORKLOADS_ZIPF_H_
#define M3VSIM_WORKLOADS_ZIPF_H_

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace m3v::workloads {

/** Draws ranks from a Zipfian distribution over [0, n). */
class Zipfian
{
  public:
    /**
     * @param n     number of items
     * @param theta skew (YCSB default 0.99)
     */
    explicit Zipfian(std::uint64_t n, double theta = 0.99);

    /** Draw the next rank using @p rng. */
    std::uint64_t next(sim::Rng &rng);

    std::uint64_t items() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_ZIPF_H_
