#include "workloads/kv.h"

#include <cstring>

#include "sim/log.h"

namespace m3v::workloads {

namespace {

void
put16(Bytes &b, std::uint16_t v)
{
    b.push_back(static_cast<std::uint8_t>(v & 0xff));
    b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put32(Bytes &b, std::uint32_t v)
{
    put16(b, static_cast<std::uint16_t>(v & 0xffff));
    put16(b, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t
get16(const Bytes &b, std::size_t off)
{
    return static_cast<std::uint16_t>(b.at(off) |
                                      (b.at(off + 1) << 8));
}

std::uint32_t
get32(const Bytes &b, std::size_t off)
{
    return static_cast<std::uint32_t>(get16(b, off)) |
           (static_cast<std::uint32_t>(get16(b, off + 2)) << 16);
}

void
putRecord(Bytes &b, const std::string &key, const std::string &val)
{
    put16(b, static_cast<std::uint16_t>(key.size()));
    put16(b, static_cast<std::uint16_t>(val.size()));
    b.insert(b.end(), key.begin(), key.end());
    b.insert(b.end(), val.begin(), val.end());
}

/** Parse one record at @p off; returns the next offset. */
std::size_t
getRecord(const Bytes &b, std::size_t off, std::string *key,
          std::string *val)
{
    std::uint16_t klen = get16(b, off);
    std::uint16_t vlen = get16(b, off + 2);
    off += 4;
    key->assign(b.begin() + static_cast<long>(off),
                b.begin() + static_cast<long>(off + klen));
    off += klen;
    val->assign(b.begin() + static_cast<long>(off),
                b.begin() + static_cast<long>(off + vlen));
    return off + vlen;
}

/** Read the whole file through the Vfs in page-size chunks. */
sim::Task
readAll(VfsFile &f, Bytes *out)
{
    out->clear();
    co_await f.seek(0);
    for (;;) {
        Bytes chunk;
        bool ok = false;
        co_await f.read(4096, &chunk, &ok);
        if (!ok || chunk.empty())
            break;
        out->insert(out->end(), chunk.begin(), chunk.end());
    }
}

} // namespace

KvStore::KvStore(Vfs &vfs, KvParams params)
    : vfs_(vfs), params_(std::move(params))
{
}

sim::Task
KvStore::open()
{
    bool ok = false;
    co_await vfs_.mkdir(params_.dir, &ok);
    co_await vfs_.open(params_.dir + "/wal",
                       kVfsW | kVfsCreate | kVfsTrunc, &wal_, &ok);
    if (!ok)
        sim::panic("kv: cannot create WAL");
}

sim::Task
KvStore::walAppend(const std::string &key, const std::string &value)
{
    Bytes rec;
    putRecord(rec, key, value);
    co_await vfs_.thread().compute(params_.codecCost);
    bool ok = false;
    co_await wal_->write(std::move(rec), &ok);
    if (!ok)
        sim::panic("kv: WAL append failed");
}

sim::Task
KvStore::put(std::string key, std::string value)
{
    stats_.puts++;
    co_await walAppend(key, value);
    // Memtable insert: ~log2(n) comparisons.
    std::size_t n = memtable_.size() + 1;
    sim::Cycles cmp = params_.cmpCost;
    sim::Cycles cost = cmp;
    while (n > 1) {
        cost += cmp;
        n >>= 1;
    }
    co_await vfs_.thread().compute(cost);
    memBytes_ += key.size() + value.size() + 8;
    memtable_[std::move(key)] = std::move(value);
    if (memBytes_ >= params_.memtableLimit) {
        co_await flushMemtable();
        co_await maybeCompact();
    }
}

sim::Task
KvStore::get(const std::string &key, std::string *value, bool *found)
{
    stats_.gets++;
    std::size_t n = memtable_.size() + 1;
    sim::Cycles cost = params_.cmpCost;
    while (n > 1) {
        cost += params_.cmpCost;
        n >>= 1;
    }
    co_await vfs_.thread().compute(cost);
    auto it = memtable_.find(key);
    if (it != memtable_.end()) {
        *value = it->second;
        *found = true;
        co_return;
    }
    // Newest table first.
    for (auto rit = ssts_.rbegin(); rit != ssts_.rend(); ++rit) {
        bool hit = false;
        co_await sstGet(*rit, key, value, &hit);
        if (hit) {
            *found = true;
            co_return;
        }
    }
    *found = false;
}

sim::Task
KvStore::scan(const std::string &start, unsigned count,
              std::vector<std::pair<std::string, std::string>> *out)
{
    stats_.scans++;
    // Merge the memtable with every table: scans walk through large
    // parts of the data (section 6.5.2).
    Map merged;
    for (const std::string &path : ssts_)
        co_await sstScanAll(path, &merged, start);
    for (auto it = memtable_.lower_bound(start);
         it != memtable_.end(); ++it)
        merged[it->first] = it->second;

    co_await vfs_.thread().compute(
        static_cast<sim::Cycles>(merged.size()) * params_.cmpCost);
    out->clear();
    for (auto &kv : merged) {
        if (out->size() >= count)
            break;
        out->emplace_back(kv.first, kv.second);
    }
}

sim::Task
KvStore::flushMemtable()
{
    if (memtable_.empty())
        co_return;
    stats_.flushes++;
    std::string path =
        params_.dir + "/sst" + std::to_string(nextSst_++);
    co_await writeSst(memtable_, path);
    ssts_.push_back(path);
    memtable_.clear();
    memBytes_ = 0;

    // Reset the WAL.
    co_await wal_->close();
    bool ok = false;
    co_await vfs_.open(params_.dir + "/wal",
                       kVfsW | kVfsCreate | kVfsTrunc, &wal_, &ok);
}

sim::Task
KvStore::maybeCompact()
{
    if (ssts_.size() < params_.compactionTrigger)
        co_return;
    stats_.compactions++;
    // Merge all L0 tables into one (oldest-to-newest so newer values
    // win).
    Map merged;
    for (const std::string &path : ssts_)
        co_await sstScanAll(path, &merged, "");
    std::string path =
        params_.dir + "/sst" + std::to_string(nextSst_++);
    co_await writeSst(merged, path);
    bool ok = false;
    for (const std::string &old : ssts_)
        co_await vfs_.unlink(old, &ok);
    ssts_.clear();
    ssts_.push_back(path);
}

sim::Task
KvStore::writeSst(const Map &records, const std::string &path)
{
    // Layout: records | index (key16 -> offset) | footer
    // footer: [u32 index_off][u32 index_entries][u32 record_count]
    Bytes data;
    std::vector<std::pair<std::string, std::uint32_t>> index;
    unsigned i = 0;
    for (const auto &[key, val] : records) {
        if (i % params_.indexInterval == 0)
            index.emplace_back(
                key, static_cast<std::uint32_t>(data.size()));
        putRecord(data, key, val);
        i++;
    }
    auto index_off = static_cast<std::uint32_t>(data.size());
    for (const auto &[key, off] : index) {
        put16(data, static_cast<std::uint16_t>(key.size()));
        data.insert(data.end(), key.begin(), key.end());
        put32(data, off);
    }
    put32(data, index_off);
    put32(data, static_cast<std::uint32_t>(index.size()));
    put32(data, static_cast<std::uint32_t>(records.size()));

    co_await vfs_.thread().compute(
        static_cast<sim::Cycles>(records.size()) *
        params_.codecCost);

    std::unique_ptr<VfsFile> f;
    bool ok = false;
    co_await vfs_.open(path, kVfsW | kVfsCreate | kVfsTrunc, &f,
                       &ok);
    if (!ok)
        sim::panic("kv: cannot create %s", path.c_str());
    for (std::size_t off = 0; off < data.size(); off += 4096) {
        std::size_t n = std::min<std::size_t>(4096,
                                              data.size() - off);
        co_await f->write(
            Bytes(data.begin() + static_cast<long>(off),
                  data.begin() + static_cast<long>(off + n)),
            &ok);
    }
    co_await f->close();
}

sim::Task
KvStore::sstGet(const std::string &path, const std::string &key,
                std::string *value, bool *found)
{
    stats_.sstReads++;
    *found = false;
    std::unique_ptr<VfsFile> f;
    bool ok = false;
    co_await vfs_.open(path, kVfsR, &f, &ok);
    if (!ok)
        sim::panic("kv: cannot open %s", path.c_str());

    VfsStat st;
    co_await vfs_.stat(path, &st);
    if (st.size < 12) {
        co_await f->close();
        co_return;
    }

    // Footer.
    co_await f->seek(st.size - 12);
    Bytes footer;
    co_await f->read(12, &footer, &ok);
    std::uint32_t index_off = get32(footer, 0);
    std::uint32_t index_entries = get32(footer, 4);

    // Index region.
    co_await f->seek(index_off);
    Bytes index;
    std::size_t index_len =
        static_cast<std::size_t>(st.size - 12 - index_off);
    while (index.size() < index_len) {
        Bytes chunk;
        co_await f->read(
            std::min<std::size_t>(4096, index_len - index.size()),
            &chunk, &ok);
        if (chunk.empty())
            break;
        index.insert(index.end(), chunk.begin(), chunk.end());
    }

    // Find the last index key <= key (linear over the sparse index).
    std::uint32_t block_off = 0;
    bool any = false;
    std::size_t pos = 0;
    for (std::uint32_t e = 0; e < index_entries; e++) {
        std::uint16_t klen = get16(index, pos);
        std::string ikey(
            index.begin() + static_cast<long>(pos + 2),
            index.begin() + static_cast<long>(pos + 2 + klen));
        std::uint32_t off = get32(index, pos + 2 + klen);
        pos += 2 + klen + 4;
        co_await vfs_.thread().compute(params_.cmpCost);
        if (ikey <= key) {
            block_off = off;
            any = true;
        } else {
            break;
        }
    }
    if (!any) {
        co_await f->close();
        co_return;
    }

    // Read one index block's worth of records and search.
    co_await f->seek(block_off);
    Bytes block;
    co_await f->read(4096, &block, &ok);
    std::size_t off = 0;
    for (unsigned r = 0;
         r < params_.indexInterval && off + 4 <= block.size(); r++) {
        std::string k, v;
        std::size_t next = off;
        std::uint16_t klen = get16(block, off);
        std::uint16_t vlen = get16(block, off + 2);
        if (off + 4 + klen + vlen > block.size())
            break;
        next = getRecord(block, off, &k, &v);
        co_await vfs_.thread().compute(params_.cmpCost +
                                       params_.codecCost);
        if (k == key) {
            *value = std::move(v);
            *found = true;
            break;
        }
        if (k > key)
            break;
        // Stop before running into the index region.
        if (block_off + next >= index_off)
            break;
        off = next;
    }
    co_await f->close();
}

sim::Task
KvStore::sstScanAll(const std::string &path, Map *out,
                    const std::string &start)
{
    stats_.sstReads++;
    std::unique_ptr<VfsFile> f;
    bool ok = false;
    co_await vfs_.open(path, kVfsR, &f, &ok);
    if (!ok)
        sim::panic("kv: cannot open %s", path.c_str());
    Bytes data;
    co_await readAll(*f, &data);
    co_await f->close();
    if (data.size() < 12)
        co_return;
    std::uint32_t index_off = get32(data, data.size() - 12);
    std::uint32_t records = get32(data, data.size() - 4);

    co_await vfs_.thread().compute(
        static_cast<sim::Cycles>(records) *
        (params_.codecCost + params_.cmpCost));
    std::size_t off = 0;
    for (std::uint32_t r = 0; r < records && off < index_off; r++) {
        std::string k, v;
        off = getRecord(data, off, &k, &v);
        if (k >= start)
            (*out)[std::move(k)] = std::move(v);
    }
}

sim::Task
KvStore::close()
{
    co_await flushMemtable();
    if (wal_) {
        co_await wal_->close();
        wal_.reset();
    }
}

} // namespace m3v::workloads
