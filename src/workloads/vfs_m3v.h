/**
 * @file
 * Vfs adapter over m3fs sessions (the M3v substrate).
 */

#ifndef M3VSIM_WORKLOADS_VFS_M3V_H_
#define M3VSIM_WORKLOADS_VFS_M3V_H_

#include <memory>

#include "services/file_client.h"
#include "workloads/vfs.h"

namespace m3v::workloads {

/** m3fs-backed Vfs for an app activity. */
class M3vVfs : public Vfs
{
  public:
    M3vVfs(os::Env &env, services::M3fs::Client client);

    tile::Thread &thread() override { return env_.thread(); }

    sim::Task open(const std::string &path, std::uint32_t flags,
                   std::unique_ptr<VfsFile> *out, bool *ok) override;
    sim::Task stat(const std::string &path, VfsStat *out) override;
    sim::Task readdir(const std::string &path, std::uint64_t idx,
                      std::string *name, bool *ok) override;
    sim::Task unlink(const std::string &path, bool *ok) override;
    sim::Task mkdir(const std::string &path, bool *ok) override;

    /** Total extent RPCs across all closed files (stats). */
    std::uint64_t extentRpcs() const { return extentRpcs_; }

  private:
    friend class M3vVfsFile;

    /** Borrow/return file-EP pool slots. */
    int takeEpSlot();
    void putEpSlot(int idx);

    os::Env &env_;
    services::M3fs::Client client_;
    services::FileSession pathOps_; ///< for stateless path ops
    std::vector<bool> epBusy_;
    std::uint64_t extentRpcs_ = 0;

    /** Cached readdir batch (getdents-style). */
    std::string dirCachePath_;
    std::uint64_t dirCacheStart_ = 0;
    std::vector<std::string> dirCache_;
    bool dirCacheMore_ = false;
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_VFS_M3V_H_
