#include "workloads/flac.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"
#include "workloads/bitio.h"

namespace m3v::workloads {

namespace {

/** Fixed-predictor residual at index i for a given order. */
std::int64_t
residualAt(const std::int16_t *s, std::size_t i, unsigned order)
{
    std::int64_t x0 = s[i];
    switch (order) {
      case 0:
        return x0;
      case 1:
        return x0 - s[i - 1];
      case 2:
        return x0 - 2 * s[i - 1] + s[i - 2];
      case 3:
        return x0 - 3 * s[i - 1] + 3 * s[i - 2] - s[i - 3];
      case 4:
        return x0 - 4 * s[i - 1] + 6 * s[i - 2] - 4 * s[i - 3] +
               s[i - 4];
    }
    sim::panic("flac: bad predictor order %u", order);
}

/** Zig-zag mapping to unsigned. */
std::uint64_t
zigzag(std::int64_t v)
{
    return static_cast<std::uint64_t>((v << 1) ^ (v >> 63));
}

std::int64_t
unzigzag(std::uint64_t u)
{
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
}

/** Optimal-ish Rice parameter for a mean residual magnitude. */
std::uint8_t
riceParam(std::uint64_t sum, std::size_t n)
{
    if (n == 0)
        return 0;
    std::uint64_t mean = sum / n;
    std::uint8_t k = 0;
    while ((1ULL << (k + 1)) < mean + 1 && k < 30)
        k++;
    return k;
}

} // namespace

FlacFrame
flacEncodeFrame(const std::int16_t *samples, std::size_t n)
{
    if (n == 0 || n > 65535)
        sim::panic("flac: bad frame size %zu", n);

    // Pick the fixed predictor with the smallest residual magnitude.
    unsigned best_order = 0;
    std::uint64_t best_sum = ~0ULL;
    unsigned max_order = static_cast<unsigned>(std::min<std::size_t>(
        4, n > 0 ? n - 1 : 0));
    for (unsigned order = 0; order <= max_order; order++) {
        std::uint64_t sum = 0;
        for (std::size_t i = order; i < n; i++)
            sum += zigzag(residualAt(samples, i, order));
        if (sum < best_sum) {
            best_sum = sum;
            best_order = order;
        }
    }

    FlacFrame frame;
    frame.blockSize = static_cast<std::uint16_t>(n);
    frame.order = static_cast<std::uint8_t>(best_order);
    frame.riceK = riceParam(best_sum, n - best_order);

    BitWriter bw;
    // Warm-up samples verbatim.
    for (std::size_t i = 0; i < best_order; i++)
        bw.put(static_cast<std::uint16_t>(samples[i]), 16);
    // Rice-coded residuals.
    unsigned k = frame.riceK;
    for (std::size_t i = best_order; i < n; i++) {
        std::uint64_t u = zigzag(residualAt(samples, i, best_order));
        auto q = static_cast<std::uint32_t>(u >> k);
        bw.putUnary(q);
        if (k > 0)
            bw.put(static_cast<std::uint32_t>(u & ((1ULL << k) - 1)),
                   k);
    }
    frame.bits = bw.finish();
    return frame;
}

Samples
flacDecodeFrame(const FlacFrame &frame)
{
    Samples out(frame.blockSize);
    BitReader br(frame.bits);
    unsigned order = frame.order;
    for (std::size_t i = 0; i < order; i++)
        out[i] = static_cast<std::int16_t>(br.get(16));
    unsigned k = frame.riceK;
    for (std::size_t i = order; i < frame.blockSize; i++) {
        std::uint64_t q = br.getUnary();
        std::uint64_t u = (q << k) | (k > 0 ? br.get(k) : 0);
        std::int64_t res = unzigzag(u);
        std::int64_t x = res;
        switch (order) {
          case 0:
            break;
          case 1:
            x += out[i - 1];
            break;
          case 2:
            x += 2 * out[i - 1] - out[i - 2];
            break;
          case 3:
            x += 3 * out[i - 1] - 3 * out[i - 2] + out[i - 3];
            break;
          case 4:
            x += 4 * out[i - 1] - 6 * out[i - 2] + 4 * out[i - 3] -
                 out[i - 4];
            break;
        }
        out[i] = static_cast<std::int16_t>(x);
    }
    return out;
}

std::vector<FlacFrame>
flacEncode(const Samples &samples, std::size_t block_size)
{
    std::vector<FlacFrame> frames;
    for (std::size_t off = 0; off < samples.size();
         off += block_size) {
        std::size_t n =
            std::min(block_size, samples.size() - off);
        frames.push_back(flacEncodeFrame(samples.data() + off, n));
    }
    return frames;
}

Samples
flacDecode(const std::vector<FlacFrame> &frames)
{
    Samples out;
    for (const auto &f : frames) {
        Samples block = flacDecodeFrame(f);
        out.insert(out.end(), block.begin(), block.end());
    }
    return out;
}

std::size_t
flacBytes(const std::vector<FlacFrame> &frames)
{
    std::size_t total = 0;
    for (const auto &f : frames)
        total += f.bits.size() + 6; // header: size, order, k
    return total;
}

sim::Cycles
flacEncodeCost(const FlacFrame &frame)
{
    // Predictor search (five residual passes), Rice parameter
    // estimation and bit-serial entropy coding on a small in-order
    // pipeline: roughly a hundred cycles per sample plus a few
    // cycles per output byte.
    return static_cast<sim::Cycles>(frame.blockSize) * 100 +
           static_cast<sim::Cycles>(frame.bits.size()) * 6;
}

Samples
generateAudio(std::size_t n, const AudioParams &params,
              bool with_trigger)
{
    sim::Rng rng(params.seed);
    Samples out(n);
    double sr = params.sampleRate;
    std::size_t trig_start = n / 3;
    std::size_t trig_end = with_trigger ? 2 * n / 3 : trig_start;

    for (std::size_t i = 0; i < n; i++) {
        double t = static_cast<double>(i) / sr;
        // Voice-ish: fundamental plus two harmonics with vibrato.
        double v = 0.30 * std::sin(2 * M_PI * params.baseHz * t) +
                   0.18 * std::sin(2 * M_PI * 2 * params.baseHz * t) +
                   0.08 * std::sin(2 * M_PI * 3 * params.baseHz * t);
        v *= 0.8 + 0.2 * std::sin(2 * M_PI * 5.0 * t);
        v += params.noise * (rng.nextDouble() * 2 - 1);
        if (i >= trig_start && i < trig_end) {
            // The trigger chirp: strong rising tone at 2-4 kHz.
            double u = static_cast<double>(i - trig_start) /
                       static_cast<double>(n / 3);
            double f = 2000.0 + 2000.0 * u;
            v += 0.55 * std::sin(2 * M_PI * f * t);
        }
        out[i] = static_cast<std::int16_t>(
            std::clamp(v, -0.99, 0.99) * 32767);
    }
    return out;
}

bool
scanForTrigger(const Samples &samples, unsigned sample_rate)
{
    // Sliding 32 ms windows: detect sustained high-band energy by
    // first-differencing (a crude high-pass) and comparing to the
    // total energy.
    std::size_t win = sample_rate / 32;
    if (win == 0 || samples.size() < 2 * win)
        return false;
    unsigned hot = 0;
    for (std::size_t off = 0; off + win < samples.size();
         off += win / 2) {
        double hi = 0, total = 0;
        for (std::size_t i = off + 1; i < off + win; i++) {
            double d = static_cast<double>(samples[i]) -
                       static_cast<double>(samples[i - 1]);
            hi += d * d;
            total += static_cast<double>(samples[i]) *
                     static_cast<double>(samples[i]);
        }
        if (total > 1e3 && hi > 0.35 * total) {
            if (++hot >= 4)
                return true;
        } else {
            hot = 0;
        }
    }
    return false;
}

sim::Cycles
scanCost(std::size_t samples)
{
    // ~6 cycles per sample: difference, two MACs, compare.
    return static_cast<sim::Cycles>(samples) * 6;
}

} // namespace m3v::workloads
