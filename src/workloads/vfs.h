/**
 * @file
 * The POSIX-flavoured file abstraction workloads run against. The
 * same application code (trace player, leveldb-lite) runs on every
 * substrate the paper compares:
 *  - M3vVfs: m3fs sessions over the extent/capability protocol;
 *  - LinuxVfs: the Linux reference model's system calls;
 *  - (Figure 9's M3x runs use a per-op RPC target defined with the
 *    benchmark, since M3x has no shared libm3 layer.)
 */

#ifndef M3VSIM_WORKLOADS_VFS_H_
#define M3VSIM_WORKLOADS_VFS_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/task.h"
#include "tile/core.h"

namespace m3v::workloads {

using Bytes = std::vector<std::uint8_t>;

/** Open flags (match services::FsOpenFlags semantics). */
enum VfsFlags : std::uint32_t
{
    kVfsR = 1,
    kVfsW = 2,
    kVfsCreate = 4,
    kVfsTrunc = 8,
};

/** Stat result. */
struct VfsStat
{
    bool exists = false;
    bool isDir = false;
    std::uint64_t size = 0;
};

/** One open file. */
class VfsFile
{
  public:
    virtual ~VfsFile() = default;

    /** Read up to @p want bytes at the current offset (EOF: empty). */
    virtual sim::Task read(std::size_t want, Bytes *out,
                           bool *ok) = 0;

    /** Append/write at the current offset. */
    virtual sim::Task write(Bytes data, bool *ok) = 0;

    /** Reposition (reads only on some substrates). */
    virtual sim::Task seek(std::uint64_t off) = 0;

    virtual sim::Task close() = 0;

    virtual std::uint64_t size() const = 0;
};

/** The file-system interface. */
class Vfs
{
  public:
    virtual ~Vfs() = default;

    /** The thread application compute is charged to. */
    virtual tile::Thread &thread() = 0;

    virtual sim::Task open(const std::string &path,
                           std::uint32_t flags,
                           std::unique_ptr<VfsFile> *out,
                           bool *ok) = 0;

    virtual sim::Task stat(const std::string &path, VfsStat *out) = 0;

    /** Directory entry by index; ok=false past the end. */
    virtual sim::Task readdir(const std::string &path,
                              std::uint64_t idx, std::string *name,
                              bool *ok) = 0;

    virtual sim::Task unlink(const std::string &path, bool *ok) = 0;
    virtual sim::Task mkdir(const std::string &path, bool *ok) = 0;
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_VFS_H_
