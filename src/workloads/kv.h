/**
 * @file
 * leveldb-lite: an LSM-tree key-value store standing in for LevelDB
 * in the cloud-service scenario (paper section 6.5.2). Like LevelDB
 * it has a write-ahead log, an in-memory memtable that flushes to
 * sorted string tables (SSTs) with a sparse index, newest-first read
 * resolution, simple L0 compaction, and range scans that merge the
 * memtable with all tables.
 *
 * All I/O goes through the Vfs abstraction, so the same store runs
 * on m3fs (extent capabilities) and on the Linux model (tmpfs
 * syscalls) — exactly the comparison Figure 10 makes.
 */

#ifndef M3VSIM_WORKLOADS_KV_H_
#define M3VSIM_WORKLOADS_KV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "workloads/vfs.h"

namespace m3v::workloads {

/** Store configuration. */
struct KvParams
{
    std::string dir = "/db";

    /** Memtable size limit before a flush. */
    std::size_t memtableLimit = 16 * 1024;

    /** Number of L0 tables that triggers a compaction. */
    unsigned compactionTrigger = 4;

    /** Sparse-index interval (records per index entry). */
    unsigned indexInterval = 16;

    /** Per-key-comparison cost (cycles). */
    sim::Cycles cmpCost = 14;

    /** Per-record encode/decode cost (cycles). */
    sim::Cycles codecCost = 60;
};

/** Store statistics. */
struct KvStats
{
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t scans = 0;
    std::uint64_t flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t sstReads = 0;
};

/** The LSM key-value store. */
class KvStore
{
  public:
    explicit KvStore(Vfs &vfs, KvParams params = {});

    /** Create the directory and the write-ahead log. */
    sim::Task open();

    /** Insert or update a key. */
    sim::Task put(std::string key, std::string value);

    /** Look up a key (memtable, then SSTs newest-first). */
    sim::Task get(const std::string &key, std::string *value,
                  bool *found);

    /**
     * Range scan: up to @p count records with key >= @p start,
     * merged across the memtable and all tables.
     */
    sim::Task scan(const std::string &start, unsigned count,
                   std::vector<std::pair<std::string, std::string>>
                       *out);

    /** Flush and release the WAL. */
    sim::Task close();

    const KvStats &stats() const { return stats_; }
    std::size_t memtableBytes() const { return memBytes_; }
    unsigned tableCount() const
    {
        return static_cast<unsigned>(ssts_.size());
    }

  private:
    using Map = std::map<std::string, std::string>;

    sim::Task walAppend(const std::string &key,
                        const std::string &value);
    sim::Task flushMemtable();
    sim::Task maybeCompact();
    sim::Task writeSst(const Map &records, const std::string &path);
    sim::Task sstGet(const std::string &path, const std::string &key,
                     std::string *value, bool *found);
    sim::Task sstScanAll(const std::string &path, Map *out,
                         const std::string &start);

    Vfs &vfs_;
    KvParams params_;
    Map memtable_;
    std::size_t memBytes_ = 0;
    std::unique_ptr<VfsFile> wal_;
    std::vector<std::string> ssts_; ///< oldest first
    unsigned nextSst_ = 0;
    KvStats stats_;
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_KV_H_
