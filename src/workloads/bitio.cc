#include "workloads/bitio.h"

#include "sim/log.h"

namespace m3v::workloads {

void
BitWriter::drain()
{
    while (accBits_ >= 8) {
        buf_.push_back(
            static_cast<std::uint8_t>(acc_ >> (accBits_ - 8)));
        accBits_ -= 8;
        acc_ &= (1ULL << accBits_) - 1;
    }
}

void
BitWriter::put(std::uint32_t value, unsigned bits)
{
    if (bits == 0)
        return;
    if (bits > 32)
        sim::panic("BitWriter: too many bits (%u)", bits);
    std::uint64_t mask =
        bits == 32 ? 0xffffffffULL : ((1ULL << bits) - 1);
    acc_ = (acc_ << bits) | (value & mask);
    accBits_ += bits;
    bits_ += bits;
    drain();
}

void
BitWriter::putUnary(std::uint32_t q)
{
    while (q >= 32) {
        put(0, 32);
        q -= 32;
    }
    // q zeros followed by a one.
    put(1, q + 1);
}

std::vector<std::uint8_t>
BitWriter::finish()
{
    if (accBits_ > 0) {
        buf_.push_back(static_cast<std::uint8_t>(
            acc_ << (8 - accBits_)));
        acc_ = 0;
        accBits_ = 0;
    }
    return std::move(buf_);
}

std::uint32_t
BitReader::get(unsigned bits)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bits; i++) {
        std::size_t byte = pos_ >> 3;
        unsigned bit = 7 - (pos_ & 7);
        if (byte >= data_.size())
            sim::panic("BitReader: read past end");
        v = (v << 1) |
            ((data_[byte] >> bit) & 1u);
        pos_++;
    }
    return v;
}

std::uint32_t
BitReader::getUnary()
{
    std::uint32_t q = 0;
    while (get(1) == 0)
        q++;
    return q;
}

bool
BitReader::exhausted() const
{
    return pos_ >= data_.size() * 8;
}

} // namespace m3v::workloads
