/**
 * @file
 * Vfs adapter over the Linux reference model's system calls.
 */

#ifndef M3VSIM_WORKLOADS_VFS_LINUX_H_
#define M3VSIM_WORKLOADS_VFS_LINUX_H_

#include "linuxref/kernel.h"
#include "workloads/vfs.h"

namespace m3v::workloads {

/** Linux-syscall-backed Vfs for one process. */
class LinuxVfs : public Vfs
{
  public:
    LinuxVfs(linuxref::LinuxKernel &kernel, linuxref::LinuxProcess &p)
        : kernel_(kernel), proc_(p)
    {
    }

    tile::Thread &thread() override { return proc_.thread(); }

    sim::Task open(const std::string &path, std::uint32_t flags,
                   std::unique_ptr<VfsFile> *out, bool *ok) override;
    sim::Task stat(const std::string &path, VfsStat *out) override;
    sim::Task readdir(const std::string &path, std::uint64_t idx,
                      std::string *name, bool *ok) override;
    sim::Task unlink(const std::string &path, bool *ok) override;
    sim::Task mkdir(const std::string &path, bool *ok) override;

  private:
    friend class LinuxVfsFile;

    linuxref::LinuxKernel &kernel_;
    linuxref::LinuxProcess &proc_;
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_VFS_LINUX_H_
