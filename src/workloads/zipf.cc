#include "workloads/zipf.h"

#include <cmath>

namespace m3v::workloads {

namespace {

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

Zipfian::Zipfian(std::uint64_t n, double theta)
    : n_(n), theta_(theta), zetan_(zeta(n, theta))
{
    alpha_ = 1.0 / (1.0 - theta_);
    double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
Zipfian::next(sim::Rng &rng)
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

} // namespace m3v::workloads
