/**
 * @file
 * Bit-level I/O for the flac-lite codec.
 */

#ifndef M3VSIM_WORKLOADS_BITIO_H_
#define M3VSIM_WORKLOADS_BITIO_H_

#include <cstdint>
#include <vector>

namespace m3v::workloads {

/** MSB-first bit writer. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value. */
    void put(std::uint32_t value, unsigned bits);

    /** Append a unary-coded quotient (q zeros, then a one). */
    void putUnary(std::uint32_t q);

    /** Flush to a byte boundary and take the buffer. */
    std::vector<std::uint8_t> finish();

    std::size_t bitCount() const { return bits_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::uint64_t acc_ = 0;
    unsigned accBits_ = 0;
    std::size_t bits_ = 0;

    void drain();
};

/** MSB-first bit reader. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &data)
        : data_(data)
    {
    }

    /** Read @p bits (up to 32). */
    std::uint32_t get(unsigned bits);

    /** Read a unary-coded value. */
    std::uint32_t getUnary();

    bool exhausted() const;

  private:
    const std::vector<std::uint8_t> &data_;
    std::size_t pos_ = 0; // bit position
};

} // namespace m3v::workloads

#endif // M3VSIM_WORKLOADS_BITIO_H_
