#include "workloads/vfs_linux.h"

namespace m3v::workloads {

namespace {

std::uint32_t
toLinuxFlags(std::uint32_t flags)
{
    std::uint32_t f = 0;
    if (flags & kVfsR)
        f |= linuxref::kORead;
    if (flags & kVfsW)
        f |= linuxref::kOWrite;
    if (flags & kVfsCreate)
        f |= linuxref::kOCreate;
    if (flags & kVfsTrunc)
        f |= linuxref::kOTrunc;
    return f;
}

} // namespace

/** An open tmpfs file. */
class LinuxVfsFile : public VfsFile
{
  public:
    LinuxVfsFile(LinuxVfs &vfs, int fd) : vfs_(vfs), fd_(fd) {}

    sim::Task
    read(std::size_t want, Bytes *out, bool *ok) override
    {
        co_await vfs_.kernel_.sysRead(vfs_.proc_, fd_, want, out);
        *ok = true;
    }

    sim::Task
    write(Bytes data, bool *ok) override
    {
        std::size_t written = 0;
        co_await vfs_.kernel_.sysWrite(vfs_.proc_, fd_,
                                       std::move(data), &written);
        *ok = written > 0;
    }

    sim::Task
    seek(std::uint64_t off) override
    {
        co_await vfs_.kernel_.sysLseek(vfs_.proc_, fd_, off);
    }

    sim::Task
    close() override
    {
        co_await vfs_.kernel_.sysClose(vfs_.proc_, fd_);
    }

    std::uint64_t
    size() const override
    {
        // tmpfs files are only sized via stat in this adapter.
        return 0;
    }

  private:
    LinuxVfs &vfs_;
    int fd_;
};

sim::Task
LinuxVfs::open(const std::string &path, std::uint32_t flags,
               std::unique_ptr<VfsFile> *out, bool *ok)
{
    int fd = -1;
    co_await kernel_.sysOpen(proc_, path, toLinuxFlags(flags), &fd);
    if (fd < 0) {
        *ok = false;
        co_return;
    }
    *out = std::make_unique<LinuxVfsFile>(*this, fd);
    *ok = true;
}

sim::Task
LinuxVfs::stat(const std::string &path, VfsStat *out)
{
    linuxref::StatInfo st;
    co_await kernel_.sysStat(proc_, path, &st);
    out->exists = st.exists;
    out->isDir = st.isDir;
    out->size = st.size;
}

sim::Task
LinuxVfs::readdir(const std::string &path, std::uint64_t idx,
                  std::string *name, bool *ok)
{
    co_await kernel_.sysReaddir(proc_, path, idx, name, ok);
}

sim::Task
LinuxVfs::unlink(const std::string &path, bool *ok)
{
    co_await kernel_.sysUnlink(proc_, path, ok);
}

sim::Task
LinuxVfs::mkdir(const std::string &path, bool *ok)
{
    co_await kernel_.sysMkdir(proc_, path, ok);
}

} // namespace m3v::workloads
