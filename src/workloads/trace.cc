#include "workloads/trace.h"

#include "sim/log.h"

namespace m3v::workloads {

Trace
makeFindTrace(unsigned dirs, unsigned files_per_dir,
              sim::Cycles per_entry_compute)
{
    Trace t;
    t.name = "find";
    t.setupDirs.push_back("/find");
    for (unsigned d = 0; d < dirs; d++) {
        std::string dir = "/find/d" + std::to_string(d);
        t.setupDirs.push_back(dir);
        for (unsigned f = 0; f < files_per_dir; f++) {
            t.setupFiles.emplace_back(
                dir + "/f" + std::to_string(f), 256);
        }
    }

    // find(1): stat the root, then per directory: open+readdir, stat
    // every entry, with a little evaluation compute per entry.
    t.ops.push_back({TraceOp::Kind::Stat, "/find", 0, 0, 0});
    for (unsigned d = 0; d < dirs; d++) {
        std::string dir = "/find/d" + std::to_string(d);
        t.ops.push_back({TraceOp::Kind::Stat, dir, 0, 0, 0});
        t.ops.push_back({TraceOp::Kind::Readdir, dir, 0, 0, 0});
        for (unsigned f = 0; f < files_per_dir; f++) {
            t.ops.push_back({TraceOp::Kind::Stat,
                             dir + "/f" + std::to_string(f), 0, 0,
                             0});
            t.ops.push_back({TraceOp::Kind::Compute, "", 0, 0,
                             per_entry_compute});
        }
    }
    return t;
}

Trace
makeSqliteTrace(unsigned inserts, sim::Cycles per_txn_compute)
{
    Trace t;
    t.name = "sqlite";
    t.setupFiles.emplace_back("/test.db", 16 * 1024);

    // Per insert transaction (journal mode): read the db header and
    // the target page, write the rollback journal, write the page,
    // delete the journal. Parsing/plan compute in between.
    for (unsigned i = 0; i < inserts; i++) {
        t.ops.push_back({TraceOp::Kind::Compute, "", 0, 0,
                         per_txn_compute});
        t.ops.push_back({TraceOp::Kind::Open, "/test.db",
                         kVfsR | kVfsW, 0, 0});
        t.ops.push_back({TraceOp::Kind::Read, "", 0, 1024, 0});
        t.ops.push_back({TraceOp::Kind::Open, "/test.db-journal",
                         kVfsW | kVfsCreate, 0, 0});
        t.ops.push_back({TraceOp::Kind::Write, "", 0, 1536, 0});
        t.ops.push_back({TraceOp::Kind::Close, "", 0, 0, 0});
        t.ops.push_back({TraceOp::Kind::Write, "", 0, 1024, 0});
        t.ops.push_back({TraceOp::Kind::Close, "", 0, 0, 0});
        t.ops.push_back({TraceOp::Kind::Unlink, "/test.db-journal",
                         0, 0, 0});
    }
    // Per select: open, read header + two pages, evaluate, close.
    for (unsigned i = 0; i < inserts; i++) {
        t.ops.push_back({TraceOp::Kind::Compute, "", 0, 0,
                         per_txn_compute * 4 / 5});
        t.ops.push_back({TraceOp::Kind::Open, "/test.db", kVfsR, 0,
                         0});
        t.ops.push_back({TraceOp::Kind::Read, "", 0, 1024, 0});
        t.ops.push_back({TraceOp::Kind::Read, "", 0, 2048, 0});
        t.ops.push_back({TraceOp::Kind::Close, "", 0, 0, 0});
    }
    return t;
}

sim::Task
traceSetup(Vfs &vfs, const Trace &trace)
{
    bool ok = false;
    for (const auto &dir : trace.setupDirs) {
        co_await vfs.mkdir(dir, &ok);
    }
    for (const auto &[path, size] : trace.setupFiles) {
        std::unique_ptr<VfsFile> f;
        co_await vfs.open(path, kVfsW | kVfsCreate | kVfsTrunc, &f,
                          &ok);
        if (!ok)
            sim::panic("traceSetup: cannot create %s", path.c_str());
        std::uint32_t left = size;
        while (left > 0) {
            std::uint32_t n = std::min<std::uint32_t>(left, 4096);
            co_await f->write(Bytes(n, 0x5a), &ok);
            left -= n;
        }
        co_await f->close();
    }
}

sim::Task
tracePlay(Vfs &vfs, const Trace &trace, TraceStats *stats)
{
    std::unique_ptr<VfsFile> slot;   // single open-file slot
    std::unique_ptr<VfsFile> slot2;  // secondary (journal)
    bool ok = false;

    for (const TraceOp &op : trace.ops) {
        switch (op.kind) {
          case TraceOp::Kind::Compute:
            co_await vfs.thread().compute(op.cycles);
            break;

          case TraceOp::Kind::Open: {
            std::unique_ptr<VfsFile> f;
            co_await vfs.open(op.path, op.flags, &f, &ok);
            if (!ok)
                sim::panic("tracePlay: open %s failed",
                           op.path.c_str());
            if (!slot) {
                slot = std::move(f);
            } else {
                slot2 = std::move(f);
            }
            if (stats)
                stats->fsOps++;
            break;
          }

          case TraceOp::Kind::Close: {
            // Close the most recently opened slot.
            auto &target = slot2 ? slot2 : slot;
            if (target) {
                co_await target->close();
                target.reset();
            }
            if (stats)
                stats->fsOps++;
            break;
          }

          case TraceOp::Kind::Read: {
            auto &target = slot2 ? slot2 : slot;
            if (!target)
                sim::panic("tracePlay: read with no open file");
            Bytes data;
            co_await target->read(op.size, &data, &ok);
            if (stats) {
                stats->fsOps++;
                stats->bytesRead += data.size();
            }
            break;
          }

          case TraceOp::Kind::Write: {
            auto &target = slot2 ? slot2 : slot;
            if (!target)
                sim::panic("tracePlay: write with no open file");
            co_await target->write(Bytes(op.size, 0x77), &ok);
            if (stats) {
                stats->fsOps++;
                stats->bytesWritten += op.size;
            }
            break;
          }

          case TraceOp::Kind::Stat: {
            VfsStat st;
            co_await vfs.stat(op.path, &st);
            if (stats)
                stats->fsOps++;
            break;
          }

          case TraceOp::Kind::Readdir: {
            std::string name;
            for (std::uint64_t i = 0;; i++) {
                bool more = false;
                co_await vfs.readdir(op.path, i, &name, &more);
                if (stats)
                    stats->fsOps++;
                if (!more)
                    break;
            }
            break;
          }

          case TraceOp::Kind::Unlink:
            co_await vfs.unlink(op.path, &ok);
            if (stats)
                stats->fsOps++;
            break;

          case TraceOp::Kind::Mkdir:
            co_await vfs.mkdir(op.path, &ok);
            if (stats)
                stats->fsOps++;
            break;
        }
    }
    // Leak-proof: close any file the trace left open.
    if (slot2)
        co_await slot2->close();
    if (slot)
        co_await slot->close();
}

} // namespace m3v::workloads
