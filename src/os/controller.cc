#include "os/controller.h"

#include <utility>

#include "sim/log.h"

namespace m3v::os {

using dtu::ActId;
using dtu::EpId;
using dtu::Error;

Controller::Controller(BareEnv &env, CapMgr &caps, DtuLocator locate,
                       ControllerParams params)
    : env_(&env), caps_(&caps), locate_(std::move(locate)),
      params_(params), admission_(params.admission)
{
    sim::MetricsRegistry &m = env.dtu().eventQueue().metrics();
    syscalls_ = m.counter("ctrl.kernel.syscalls");
    reaps_ = m.counter("ctrl.kernel.reaps");
    reclaimed_ = m.counter("ctrl.kernel.credits_reclaimed");
    env.addRecvEp(params_.syscallRep);
}

CapSel
Controller::grantMem(ActId act, MemObj mem)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::MemGate;
    obj->mem = mem;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

CapSel
Controller::grantActivity(ActId holder, ActObj a)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::Activity;
    obj->act = a;
    return caps_->tableOf(holder).insertRoot(std::move(obj));
}

CapSel
Controller::grantRgate(ActId act, RgateObj r)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::RecvGate;
    obj->rgate = r;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

CapSel
Controller::grantSgate(ActId act, SgateObj s)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::SendGate;
    obj->sgate = s;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

void
Controller::registerActivity(ActId id, noc::TileId tile)
{
    actTiles_[id] = tile;
}

void
Controller::reapActivity(ActId id)
{
    reaps_->inc();

    // Endpoint sweep on the activity's home tile: reclaim the credits
    // of messages parked in its receive endpoints (the senders paid
    // them and would otherwise be wedged forever), then invalidate.
    auto at = actTiles_.find(id);
    if (at != actTiles_.end()) {
        if (dtu::Dtu *d = locate_(at->second)) {
            for (EpId i = 0; i < dtu::kNumEps; i++) {
                if (d->ep(i).act != id)
                    continue;
                reclaimed_->inc(d->reclaimCredits(i));
                d->invalidateEp(i);
            }
        }
        actTiles_.erase(at);
    }

    // Revoke the whole capability table. The derivation tree may
    // reach into other activities' tables (children of the victim's
    // caps die with it); invalidate whatever they were activated
    // into, wherever that is.
    if (caps_->hasTable(id)) {
        caps_->dropTable(id, [this](Capability &cap) {
            if (!cap.activated)
                return;
            if (dtu::Dtu *d = locate_(cap.actTile)) {
                reclaimed_->inc(d->reclaimCredits(cap.actEp));
                d->invalidateEp(cap.actEp);
            }
        });
    }
}

void
Controller::setSidecallChannel(noc::TileId tile, EpId sep)
{
    sidecallSeps_[tile] = sep;
}

void
Controller::setSidecallReplyEp(EpId rep)
{
    sidecallRep_ = rep;
    env_->addRecvEp(rep);
}

sim::Task
Controller::sidecall(noc::TileId tile, SidecallReq req,
                     SidecallResp *resp)
{
    auto it = sidecallSeps_.find(tile);
    if (it == sidecallSeps_.end() ||
        sidecallRep_ == dtu::kInvalidEp)
        sim::panic("controller: no sidecall channel to tile %u",
                   tile);
    Bytes respb;
    Error err = Error::Aborted;
    co_await env_->call(it->second, sidecallRep_, podBytes(req),
                        &respb, &err);
    if (err != Error::None)
        sim::panic("controller: sidecall to tile %u failed: %s", tile,
                   dtu::errorName(err));
    *resp = podFrom<SidecallResp>(respb);
}

dtu::Endpoint
Controller::endpointFor(const KObject &obj, ActId owner)
{
    switch (obj.kind) {
      case CapKind::MemGate:
        return dtu::Endpoint::makeMem(owner, obj.mem.tile,
                                      obj.mem.addr, obj.mem.size,
                                      obj.mem.perms);
      case CapKind::SendGate:
        return dtu::Endpoint::makeSend(
            owner, obj.sgate.target.tile, obj.sgate.target.ep,
            obj.sgate.label, obj.sgate.credits);
      case CapKind::RecvGate:
        return dtu::Endpoint::makeRecv(owner, obj.rgate.slotSize,
                                       obj.rgate.slots);
      case CapKind::Activity:
        break;
    }
    sim::panic("Controller: cannot activate this capability kind");
}

sim::Task
Controller::configRemoteEp(noc::TileId tile, EpId ep,
                           dtu::Endpoint ndep, Error *err)
{
    auto &thread = env_->thread();
    co_await thread.compute(
        thread.core().model().mmioWriteCycles * 4);
    if (tile == env_->tileId()) {
        env_->dtu().configEp(ep, std::move(ndep));
        if (err)
            *err = Error::None;
        co_return;
    }
    bool done = false;
    thread.clearWake();
    std::vector<dtu::Endpoint> eps;
    eps.push_back(std::move(ndep));
    env_->dtu().extRequest(tile, dtu::ExtOp::SetEp, ep,
                           std::move(eps), 1,
                           [&](Error e, std::vector<dtu::Endpoint>) {
                               if (err)
                                   *err = e;
                               done = true;
                               thread.wake();
                           });
    while (!done)
        co_await thread.externalWait();
}

sim::Task
Controller::invalidateRemoteEp(noc::TileId tile, EpId ep)
{
    auto &thread = env_->thread();
    co_await thread.compute(
        thread.core().model().mmioWriteCycles * 2);
    if (tile == env_->tileId()) {
        env_->dtu().invalidateEp(ep);
        co_return;
    }
    bool done = false;
    thread.clearWake();
    env_->dtu().extRequest(tile, dtu::ExtOp::InvEp, ep, {}, 1,
                           [&](Error, std::vector<dtu::Endpoint>) {
                               done = true;
                               thread.wake();
                           });
    while (!done)
        co_await thread.externalWait();
}

sim::Task
Controller::run()
{
    auto &thread = env_->thread();
    EpId rep = params_.syscallRep;
    while (running_) {
        int slot = -1;
        co_await env_->recvOn(rep, &slot);
        const dtu::Message &m = env_->msgAt(rep, slot);
        auto caller = static_cast<ActId>(m.label);
        SyscallReq req = podFrom<SyscallReq>(m.payload);
        syscalls_->inc();

        // Admission control over the bounded syscall ring: reject
        // aged or over-occupancy syscalls early with a typed error
        // instead of executing them. The rejection travels the normal
        // vDTU reply path, so service RPCs that embed syscalls (e.g.
        // m3fs extent grants) surface it typed to their clients.
        if (admission_.enabled()) {
            std::size_t occ =
                env_->dtu().unread(env_->actId(), rep) + 1;
            if (!admission_.admit(env_->dtu().now(), m.arrival, occ)) {
                co_await thread.compute(
                    admission_.params().shedCost);
                SyscallResp shed;
                shed.err = Error::Overloaded;
                Error serr = Error::None;
                co_await env_->reply(rep, slot, podBytes(shed),
                                     &serr);
                continue;
            }
        }

        co_await thread.compute(params_.dispatchCost);
        SyscallResp resp;
        co_await handle(caller, req, &resp);

        Error rerr = Error::None;
        co_await env_->reply(rep, slot, podBytes(resp), &rerr);
        if (rerr != Error::None)
            sim::warn("controller: reply to %u failed: %s", caller,
                      dtu::errorName(rerr));
    }
}

sim::Task
Controller::handle(ActId caller, const SyscallReq &req,
                   SyscallResp *resp)
{
    auto &thread = env_->thread();
    CapTable &table = caps_->tableOf(caller);
    resp->err = Error::None;
    resp->val = 0;

    switch (req.op) {
      case SyscallReq::Op::Noop:
        break;

      case SyscallReq::Op::DeriveMem: {
        co_await thread.compute(params_.capCost);
        Capability *parent =
            table.get(static_cast<CapSel>(req.arg0));
        if (!parent || parent->obj().kind != CapKind::MemGate) {
            resp->err = Error::InvalidEp;
            break;
        }
        std::uint64_t off = req.arg1;
        std::uint64_t size = req.arg2;
        auto perms = static_cast<std::uint8_t>(req.arg3);
        const MemObj &pm = parent->obj().mem;
        if (off + size > pm.size || (perms & ~pm.perms) != 0) {
            resp->err = Error::OutOfBounds;
            break;
        }
        auto obj = std::make_shared<KObject>();
        obj->kind = CapKind::MemGate;
        obj->mem = MemObj{pm.tile, pm.addr + off, size, perms};
        resp->val = table.insertChild(std::move(obj), *parent);
        break;
      }

      case SyscallReq::Op::Activate: {
        co_await thread.compute(params_.capCost);
        Capability *cap = table.get(static_cast<CapSel>(req.arg0));
        auto ep = static_cast<EpId>(req.arg1);
        if (!cap) {
            resp->err = Error::InvalidEp;
            break;
        }
        auto it = actTiles_.find(caller);
        if (it == actTiles_.end()) {
            resp->err = Error::InvalidEp;
            break;
        }
        if (cap->obj().kind == CapKind::RecvGate) {
            cap->obj().rgate.tile = it->second;
            cap->obj().rgate.act = caller;
            cap->obj().rgate.ep = ep;
        }
        co_await configRemoteEp(it->second, ep,
                                endpointFor(cap->obj(), caller),
                                &resp->err);
        cap->activated = true;
        cap->actTile = it->second;
        cap->actEp = ep;
        break;
      }

      case SyscallReq::Op::ActivateFor: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        Capability *cap = table.get(static_cast<CapSel>(req.arg2));
        auto ep = static_cast<EpId>(req.arg1);
        if (!actcap || actcap->obj().kind != CapKind::Activity ||
            !cap) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId target = actcap->obj().act.id;
        noc::TileId tile = actcap->obj().act.tile;
        if (cap->obj().kind == CapKind::RecvGate) {
            cap->obj().rgate.tile = tile;
            cap->obj().rgate.act = target;
            cap->obj().rgate.ep = ep;
        }
        co_await configRemoteEp(tile, ep,
                                endpointFor(cap->obj(), target),
                                &resp->err);
        cap->activated = true;
        cap->actTile = tile;
        cap->actEp = ep;
        break;
      }

      case SyscallReq::Op::Delegate: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        Capability *cap = table.get(static_cast<CapSel>(req.arg1));
        if (!actcap || actcap->obj().kind != CapKind::Activity ||
            !cap) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId target = actcap->obj().act.id;
        resp->val = caps_->tableOf(target).insertChild(cap->objPtr(),
                                                       *cap);
        break;
      }

      case SyscallReq::Op::Revoke: {
        // Revocation cost scales with the subtree; collect activated
        // EPs first, then invalidate them over the NoC.
        std::vector<std::pair<noc::TileId, EpId>> inv;
        std::size_t removed = caps_->revoke(
            caller, static_cast<CapSel>(req.arg0),
            [&](Capability &c) {
                if (c.activated)
                    inv.emplace_back(c.actTile, c.actEp);
            },
            req.arg1 != 0);
        co_await thread.compute(params_.capCost *
                                std::max<std::size_t>(1, removed));
        for (auto &[tile, ep] : inv)
            co_await invalidateRemoteEp(tile, ep);
        resp->val = removed;
        break;
      }

      case SyscallReq::Op::MapFor: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        if (!actcap || actcap->obj().kind != CapKind::Activity) {
            resp->err = Error::InvalidEp;
            break;
        }
        SidecallReq side;
        side.op = SidecallReq::Op::MapPage;
        side.act = actcap->obj().act.id;
        side.virt = req.arg1;
        side.phys = req.arg2;
        side.perms = static_cast<std::uint32_t>(req.arg3);
        SidecallResp sresp;
        co_await sidecall(actcap->obj().act.tile, side, &sresp);
        resp->err = sresp.err;
        break;
      }

      case SyscallReq::Op::CreateSgate: {
        co_await thread.compute(params_.capCost);
        Capability *rcap = table.get(static_cast<CapSel>(req.arg0));
        if (!rcap || rcap->obj().kind != CapKind::RecvGate) {
            resp->err = Error::InvalidEp;
            break;
        }
        auto obj = std::make_shared<KObject>();
        obj->kind = CapKind::SendGate;
        obj->sgate.target = rcap->obj().rgate;
        obj->sgate.label = req.arg1;
        obj->sgate.credits = static_cast<std::uint32_t>(req.arg2);
        resp->val = table.insertChild(std::move(obj), *rcap);
        break;
      }
    }
    co_return;
}

} // namespace m3v::os
