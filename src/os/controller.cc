#include "os/controller.h"

#include <algorithm>
#include <utility>

#include "sim/log.h"

namespace m3v::os {

using dtu::ActId;
using dtu::EpId;
using dtu::Error;

namespace {

/** Bound on the stash of out-of-order replies / dedup memory. */
constexpr std::size_t kStashCap = 64;

} // namespace

Controller::Controller(BareEnv &env, CapMgr &caps, const DtuMap &dtus,
                       ControllerParams params, ShardMap shard_map,
                       unsigned shard)
    : env_(&env), caps_(&caps), dtus_(&dtus), params_(params),
      shardMap_(shard_map), shard_(shard), admission_(params.admission)
{
    sim::MetricsRegistry &m = env.dtu().eventQueue().metrics();
    const std::string p = env.name() + ".kernel.";
    syscalls_ = m.counter(p + "syscalls");
    reaps_ = m.counter(p + "reaps");
    reclaimed_ = m.counter(p + "credits_reclaimed");
    env.addRecvEp(params_.syscallRep);
    // Cross-shard machinery (EPs, counters) exists only on sharded
    // platforms; single-controller configs keep the exact pre-shard
    // metric set and EP poll list.
    if (shardMap_.shards > 1) {
        xsent_ = m.counter(p + "xshard_sent");
        xacked_ = m.counter(p + "xshard_acked");
        xtimeouts_ = m.counter(p + "xshard_timeouts");
        xhandled_ = m.counter(p + "xshard_handled");
        xonewaySent_ = m.counter(p + "oneway_sent");
        xonewayHandled_ = m.counter(p + "oneway_handled");
        xonewayDropped_ = m.counter(p + "oneway_dropped");
        env.addRecvEp(params_.ctrlReqRep);
        env.addRecvEp(params_.ctrlReplyRep);
    }
}

CapSel
Controller::grantMem(ActId act, MemObj mem)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::MemGate;
    obj->mem = mem;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

CapSel
Controller::grantActivity(ActId holder, ActObj a)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::Activity;
    obj->act = a;
    return caps_->tableOf(holder).insertRoot(std::move(obj));
}

CapSel
Controller::grantRgate(ActId act, RgateObj r)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::RecvGate;
    obj->rgate = r;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

CapSel
Controller::grantSgate(ActId act, SgateObj s)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::SendGate;
    obj->sgate = s;
    return caps_->tableOf(act).insertRoot(std::move(obj));
}

void
Controller::registerActivity(ActId id, noc::TileId tile)
{
    if (id >= actTiles_.size())
        actTiles_.resize(id + 1, kNoTile);
    actTiles_[id] = tile;
}

noc::TileId
Controller::actTile(ActId id) const
{
    return id < actTiles_.size() ? actTiles_[id] : kNoTile;
}

ActId
Controller::allocActId()
{
    if (!freeActs_.empty()) {
        ActId id = freeActs_.back();
        freeActs_.pop_back();
        return id;
    }
    unsigned shards = std::max(1u, shardMap_.shards);
    std::uint32_t id = kStormActBase + nextLocalAct_ * shards + shard_;
    nextLocalAct_++;
    if (id >= dtu::kTileMuxAct)
        sim::panic("controller %u: out of activity ids", shard_);
    return static_cast<ActId>(id);
}

void
Controller::reapActivity(ActId id)
{
    reaps_->inc();

    // Endpoint sweep on the activity's home tile: reclaim the credits
    // of messages parked in its receive endpoints (the senders paid
    // them and would otherwise be wedged forever), then invalidate.
    noc::TileId tile = actTile(id);
    if (tile != kNoTile) {
        if (dtu::Dtu *d = dtus_->get(tile)) {
            for (EpId i = 0; i < dtu::kNumEps; i++) {
                if (d->ep(i).act != id)
                    continue;
                reclaimed_->inc(d->reclaimCredits(i));
                d->invalidateEp(i);
            }
        }
        actTiles_[id] = kNoTile;
    }

    // Obtains still in flight on behalf of this activity must not
    // materialize into a recreated table: kill them.
    for (PendingObtain &p : pendingObtains_)
        if (p.act == id)
            p.killed = true;

    // Revoke the whole capability table. The derivation tree may
    // reach into other activities' tables (children of the victim's
    // caps die with it); invalidate whatever they were activated
    // into, wherever that is. Cross-shard edges are severed with
    // one-way notifications: peers revoke remote children and drop
    // the share records our caps held on their parents.
    if (caps_->hasTable(id)) {
        std::vector<RemoteRef> rchildren;
        std::vector<std::pair<RemoteRef, RemoteRef>> rparents;
        caps_->dropTable(id, [&](Capability &cap) {
            if (cap.activated) {
                if (dtu::Dtu *d = dtus_->get(cap.actTile)) {
                    reclaimed_->inc(d->reclaimCredits(cap.actEp));
                    d->invalidateEp(cap.actEp);
                }
            }
            for (const RemoteRef &r : cap.remoteChildren)
                rchildren.push_back(r);
            if (cap.hasRemoteParent)
                rparents.emplace_back(
                    cap.remoteParent,
                    RemoteRef{static_cast<std::uint8_t>(shard_),
                              cap.owner(), cap.sel()});
        });
        for (const RemoteRef &r : rchildren) {
            CtrlReq req;
            req.op = CtrlReq::Op::Revoke;
            req.act = r.act;
            req.sel = r.sel;
            ctrlOneway(r.shard, req);
        }
        for (auto &[parent, child] : rparents) {
            CtrlReq req;
            req.op = CtrlReq::Op::DropShare;
            req.act = parent.act;
            req.sel = parent.sel;
            req.act2 = child.act;
            req.sel2 = child.sel;
            ctrlOneway(parent.shard, req);
        }
    }

    // Return storm-allocated ids of this shard to the free list once
    // the table is fully gone (a concurrent revoke plan may still own
    // marked caps in it, in which case the id stays burned).
    if (id >= kStormActBase && !caps_->hasTable(id) &&
        (static_cast<unsigned>(id - kStormActBase) %
         std::max(1u, shardMap_.shards)) == shard_)
        freeActs_.push_back(id);
}

void
Controller::setSidecallChannel(noc::TileId tile, EpId sep)
{
    if (tile >= sidecallSeps_.size())
        sidecallSeps_.resize(tile + 1, dtu::kInvalidEp);
    sidecallSeps_[tile] = sep;
}

void
Controller::setSidecallReplyEp(EpId rep)
{
    sidecallRep_ = rep;
    env_->addRecvEp(rep);
}

void
Controller::setPeerChannel(unsigned shard, EpId sep)
{
    if (shard >= peerSeps_.size())
        peerSeps_.resize(shard + 1, dtu::kInvalidEp);
    peerSeps_[shard] = sep;
}

sim::Task
Controller::sidecall(noc::TileId tile, SidecallReq req,
                     SidecallResp *resp)
{
    EpId sep = tile < sidecallSeps_.size() ? sidecallSeps_[tile]
                                           : dtu::kInvalidEp;
    if (sep == dtu::kInvalidEp || sidecallRep_ == dtu::kInvalidEp)
        sim::panic("controller: no sidecall channel to tile %u",
                   tile);
    Bytes respb;
    Error err = Error::Aborted;
    co_await env_->call(sep, sidecallRep_, podBytes(req), &respb,
                        &err);
    if (err != Error::None)
        sim::panic("controller: sidecall to tile %u failed: %s", tile,
                   dtu::errorName(err));
    *resp = podFrom<SidecallResp>(respb);
}

dtu::Endpoint
Controller::endpointFor(const KObject &obj, ActId owner)
{
    switch (obj.kind) {
      case CapKind::MemGate:
        return dtu::Endpoint::makeMem(owner, obj.mem.tile,
                                      obj.mem.addr, obj.mem.size,
                                      obj.mem.perms);
      case CapKind::SendGate:
        return dtu::Endpoint::makeSend(
            owner, obj.sgate.target.tile, obj.sgate.target.ep,
            obj.sgate.label, obj.sgate.credits);
      case CapKind::RecvGate:
        return dtu::Endpoint::makeRecv(owner, obj.rgate.slotSize,
                                       obj.rgate.slots);
      case CapKind::Activity:
        break;
    }
    sim::panic("Controller: cannot activate this capability kind");
}

sim::Task
Controller::configRemoteEp(noc::TileId tile, EpId ep,
                           dtu::Endpoint ndep, Error *err)
{
    auto &thread = env_->thread();
    co_await thread.compute(
        thread.core().model().mmioWriteCycles * 4);
    if (tile == env_->tileId()) {
        env_->dtu().configEp(ep, std::move(ndep));
        if (err)
            *err = Error::None;
        co_return;
    }
    bool done = false;
    thread.clearWake();
    std::vector<dtu::Endpoint> eps;
    eps.push_back(std::move(ndep));
    env_->dtu().extRequest(tile, dtu::ExtOp::SetEp, ep,
                           std::move(eps), 1,
                           [&](Error e, std::vector<dtu::Endpoint>) {
                               if (err)
                                   *err = e;
                               done = true;
                               thread.wake();
                           });
    while (!done)
        co_await thread.externalWait();
}

sim::Task
Controller::invalidateRemoteEp(noc::TileId tile, EpId ep)
{
    auto &thread = env_->thread();
    co_await thread.compute(
        thread.core().model().mmioWriteCycles * 2);
    if (tile == env_->tileId()) {
        env_->dtu().invalidateEp(ep);
        co_return;
    }
    bool done = false;
    thread.clearWake();
    env_->dtu().extRequest(tile, dtu::ExtOp::InvEp, ep, {}, 1,
                           [&](Error, std::vector<dtu::Endpoint>) {
                               done = true;
                               thread.wake();
                           });
    while (!done)
        co_await thread.externalWait();
}

//
// Cross-shard protocol plumbing.
//

std::uint64_t
Controller::makeNonce()
{
    return (static_cast<std::uint64_t>(shard_ + 1) << 48) |
           ++nonceCtr_;
}

bool
Controller::takeStash(std::uint64_t nonce, CtrlResp *resp)
{
    for (std::size_t i = 0; i < replyStash_.size(); i++) {
        if (replyStash_[i].first == nonce) {
            *resp = podFrom<CtrlResp>(replyStash_[i].second);
            replyStash_.erase(replyStash_.begin() + i);
            return true;
        }
    }
    return false;
}

void
Controller::remember(std::uint64_t nonce, const CtrlResp &resp)
{
    recent_.emplace_back(nonce, resp);
    if (recent_.size() > kStashCap)
        recent_.erase(recent_.begin());
}

const CtrlResp *
Controller::recallDup(std::uint64_t nonce) const
{
    for (const auto &[n, resp] : recent_)
        if (n == nonce)
            return &resp;
    return nullptr;
}

Controller::PendingObtain
Controller::takePendingObtain(ActId act, CapSel sel)
{
    for (std::size_t i = 0; i < pendingObtains_.size(); i++) {
        if (pendingObtains_[i].act == act &&
            pendingObtains_[i].sel == sel) {
            PendingObtain p = pendingObtains_[i];
            pendingObtains_.erase(pendingObtains_.begin() + i);
            return p;
        }
    }
    return PendingObtain{};
}

void
Controller::ctrlOneway(unsigned shard, CtrlReq req)
{
    EpId sep = shard < peerSeps_.size() ? peerSeps_[shard]
                                        : dtu::kInvalidEp;
    if (sep == dtu::kInvalidEp)
        sim::panic("controller %u: no channel to shard %u", shard_,
                   shard);
    req.srcShard = shard_;
    req.nonce = makeNonce();
    sim::Counter *sent = xonewaySent_;
    sim::Counter *dropped = xonewayDropped_;
    env_->dtu().cmdSend(env_->actId(), sep, env_->msgBuf(),
                        podBytes(req), dtu::kInvalidEp,
                        [sent, dropped](Error e) {
                            if (e == Error::None)
                                sent->inc();
                            else
                                dropped->inc();
                        },
                        req.nonce);
}

sim::Task
Controller::ctrlCall(unsigned shard, CtrlReq req, CtrlResp *resp,
                     bool *ok)
{
    *ok = false;
    EpId sep = shard < peerSeps_.size() ? peerSeps_[shard]
                                        : dtu::kInvalidEp;
    if (sep == dtu::kInvalidEp)
        sim::panic("controller %u: no channel to shard %u", shard_,
                   shard);
    req.srcShard = shard_;
    req.flags |= CtrlReq::kWantReply;
    req.nonce = makeNonce();
    xsent_->inc();

    auto &thread = env_->thread();
    sim::EventQueue &eq = env_->dtu().eventQueue();
    const EpId reply_rep = params_.ctrlReplyRep;
    const EpId req_rep = params_.ctrlReqRep;
    const std::vector<EpId> wait_eps{reply_rep, req_rep};

    for (unsigned attempt = 0; attempt < params_.xshardRetries;
         attempt++) {
        Error serr = Error::Aborted;
        co_await env_->send(sep, podBytes(req), reply_rep, &serr,
                            req.nonce);
        if (serr != Error::None) {
            // Out of credits (peer overloaded): back off and retry —
            // the same nonce keeps the retransmission idempotent.
            co_await thread.compute(params_.dispatchCost);
            continue;
        }
        sim::Tick deadline = eq.now() + params_.xshardTimeout;
        for (;;) {
            // A nested service loop may have drained our reply while
            // this call was suspended.
            if (takeStash(req.nonce, resp)) {
                xacked_->inc();
                *ok = true;
                co_return;
            }
            co_await thread.compute(
                thread.core().model().mmioReadCycles * 2);
            int rslot = env_->dtu().fetch(env_->actId(), reply_rep);
            if (rslot >= 0) {
                const dtu::Message &m = env_->msgAt(reply_rep, rslot);
                if (m.nonce == req.nonce) {
                    *resp = podFrom<CtrlResp>(m.payload);
                    co_await env_->ackMsg(reply_rep, rslot);
                    xacked_->inc();
                    *ok = true;
                    co_return;
                }
                // Another outstanding call's reply (ours is nested
                // below it): stash it for its owner and keep polling.
                replyStash_.emplace_back(m.nonce, m.payload);
                if (replyStash_.size() > kStashCap)
                    replyStash_.erase(replyStash_.begin());
                co_await env_->ackMsg(reply_rep, rslot);
                continue;
            }
            // Service incoming peer requests while waiting: two
            // shards calling into each other must not deadlock.
            int qslot = env_->dtu().fetch(env_->actId(), req_rep);
            if (qslot >= 0) {
                co_await handleCtrlReq(qslot);
                continue;
            }
            if (eq.now() >= deadline)
                break;
            co_await env_->waitEpsUntil(wait_eps, deadline);
        }
    }
    xtimeouts_->inc();
}

sim::Task
Controller::handleCtrlReq(int slot)
{
    auto &thread = env_->thread();
    const EpId rep = params_.ctrlReqRep;
    const dtu::Message &m = env_->msgAt(rep, slot);
    CtrlReq req = podFrom<CtrlReq>(m.payload);
    const bool want_reply = (req.flags & CtrlReq::kWantReply) != 0;

    if (want_reply) {
        // Retransmission of a request we already executed: replay the
        // remembered reply without re-executing (idempotence on retx).
        if (const CtrlResp *dup = recallDup(req.nonce)) {
            xhandled_->inc();
            Error rerr = Error::None;
            co_await env_->reply(rep, slot, podBytes(*dup), &rerr);
            co_return;
        }
    }

    co_await thread.compute(params_.dispatchCost);
    CtrlResp resp;
    switch (req.op) {
      case CtrlReq::Op::Delegate: {
        co_await thread.compute(params_.capCost);
        CapTable &t = caps_->tableOf(req.act);
        CapSel sel = t.insertRoot(std::make_shared<KObject>(req.obj));
        Capability *c = t.get(sel);
        c->hasRemoteParent = true;
        c->remoteParent =
            RemoteRef{static_cast<std::uint8_t>(req.srcShard),
                      req.act2, req.sel2};
        resp.val = sel;
        break;
      }

      case CtrlReq::Op::Obtain: {
        co_await thread.compute(params_.capCost);
        CapTable *t = caps_->tableIfExists(req.act);
        Capability *c = t ? t->get(req.sel) : nullptr;
        if (!c || c->revoking) {
            resp.err = Error::InvalidEp;
            break;
        }
        c->remoteChildren.push_back(
            RemoteRef{static_cast<std::uint8_t>(req.srcShard),
                      req.act2, req.sel2});
        resp.obj = c->obj();
        resp.val = 1;
        break;
      }

      case CtrlReq::Op::Revoke: {
        std::size_t removed = 0;
        co_await revokeTree(
            req.act, req.sel, (req.flags & CtrlReq::kKeepRoot) != 0,
            RemoteRef{static_cast<std::uint8_t>(req.srcShard),
                      req.act2, req.sel2},
            &removed);
        resp.val = removed;
        break;
      }

      case CtrlReq::Op::CreateAct: {
        co_await thread.compute(params_.capCost);
        ActId id = allocActId();
        registerActivity(id, static_cast<noc::TileId>(req.tile));
        caps_->tableOf(id);
        resp.val = id;
        break;
      }

      case CtrlReq::Op::DropShare: {
        co_await thread.compute(params_.capCost);
        CapTable *t = caps_->tableIfExists(req.act);
        if (Capability *c = t ? t->get(req.sel) : nullptr)
            c->dropRemoteChild(
                RemoteRef{static_cast<std::uint8_t>(req.srcShard),
                          req.act2, req.sel2});
        break;
      }

      case CtrlReq::Op::DropTable: {
        co_await thread.compute(params_.capCost);
        reapActivity(req.act);
        resp.val = 1;
        break;
      }

      case CtrlReq::Op::MapFor: {
        co_await thread.compute(params_.capCost);
        noc::TileId tile = actTile(req.act);
        if (tile == kNoTile) {
            resp.err = Error::InvalidEp;
            break;
        }
        SidecallReq side;
        side.op = SidecallReq::Op::MapPage;
        side.act = req.act;
        side.virt = req.a;
        side.phys = req.b;
        side.perms = static_cast<std::uint32_t>(req.c);
        SidecallResp sresp;
        co_await sidecall(tile, side, &sresp);
        resp.err = sresp.err;
        break;
      }
    }

    if (want_reply) {
        remember(req.nonce, resp);
        xhandled_->inc();
        Error rerr = Error::None;
        co_await env_->reply(rep, slot, podBytes(resp), &rerr);
        if (rerr != Error::None)
            sim::warn("controller %u: ctrl reply to shard %u failed: "
                      "%s",
                      shard_, req.srcShard, dtu::errorName(rerr));
    } else {
        xonewayHandled_->inc();
        co_await env_->ackMsg(rep, slot);
    }
}

sim::Task
Controller::revokeTree(ActId act, CapSel sel, bool keep_root,
                       const RemoteRef &requester,
                       std::size_t *removed)
{
    auto &thread = env_->thread();

    // A revoke can target the reserved destination of an obtain whose
    // cap is still in flight from the source shard: kill the pending
    // obtain so the cap is never inserted, instead of missing it.
    for (PendingObtain &p : pendingObtains_) {
        if (p.act == act && p.sel == sel && !p.killed) {
            p.killed = true;
            *removed += 1;
            co_await thread.compute(params_.capCost);
            co_return;
        }
    }

    // Phase one: mark the local subtree (new delegations from it now
    // fail) and snapshot its cross-shard edges.
    RevokePlan plan;
    if (!caps_->planRevoke(act, sel, keep_root, &plan)) {
        // Nothing to do (already revoked / double revoke / retx).
        co_await thread.compute(params_.capCost);
        co_return;
    }

    // Snapshot remote children before any suspension: DropShare
    // notifications arriving while we wait may mutate the vectors.
    struct RemoteChild
    {
        RemoteRef ref;
        ActId parentAct;
        CapSel parentSel;
        Capability *parent;
    };
    std::vector<RemoteChild> rc;
    auto collect = [&](Capability *cap) {
        for (const RemoteRef &r : cap->remoteChildren)
            rc.push_back({r, cap->owner(), cap->sel(), cap});
    };
    if (plan.keepRoot && plan.root)
        collect(plan.root);
    for (Capability *cap : plan.caps)
        collect(cap);

    // Revoke remote children over the wire. Marked caps cannot be
    // reaped by anyone else (exactly one plan owns them), so the
    // snapshot stays valid across these suspensions.
    for (const RemoteChild &r : rc) {
        CtrlReq creq;
        creq.op = CtrlReq::Op::Revoke;
        creq.act = r.ref.act;
        creq.sel = r.ref.sel;
        creq.act2 = r.parentAct;
        creq.sel2 = r.parentSel;
        CtrlResp cresp;
        bool ok = false;
        co_await ctrlCall(r.ref.shard, creq, &cresp, &ok);
        if (ok)
            *removed += cresp.val;
        // A kept root survives the reap: release its share records
        // for the children we just revoked (the reaped caps' records
        // die with them).
        if (plan.keepRoot && r.parent == plan.root)
            plan.root->dropRemoteChild(r.ref);
    }

    // Phase two: reap the marked subtree, leaves first, invalidating
    // activated endpoints and releasing the share record at the
    // root's remote parent — unless the requester *is* that parent
    // (it is reaping its own side already).
    std::vector<std::pair<noc::TileId, EpId>> inv;
    std::vector<std::pair<RemoteRef, RemoteRef>> rparents;
    std::size_t local = caps_->executeRevoke(plan, [&](Capability &c) {
        if (c.activated)
            inv.emplace_back(c.actTile, c.actEp);
        if (c.hasRemoteParent)
            rparents.emplace_back(
                c.remoteParent,
                RemoteRef{static_cast<std::uint8_t>(shard_),
                          c.owner(), c.sel()});
    });
    co_await thread.compute(params_.capCost *
                            std::max<std::size_t>(1, local));
    for (auto &[tile, ep] : inv)
        co_await invalidateRemoteEp(tile, ep);
    for (auto &[parent, child] : rparents) {
        if (requester.act != dtu::kInvalidAct && parent == requester)
            continue;
        CtrlReq dreq;
        dreq.op = CtrlReq::Op::DropShare;
        dreq.act = parent.act;
        dreq.sel = parent.sel;
        dreq.act2 = child.act;
        dreq.sel2 = child.sel;
        ctrlOneway(parent.shard, dreq);
    }
    *removed += local;
}

//
// Main loop and syscalls.
//

sim::Task
Controller::run()
{
    auto &thread = env_->thread();
    EpId rep = params_.syscallRep;
    if (shardMap_.shards <= 1) {
        // Single-controller platforms keep the pre-shard loop (and
        // its exact event sequence) verbatim: the syscall body is
        // inlined rather than co_await'ed through serviceSyscall(),
        // because every extra coroutine nesting level costs one
        // scheduled event per syscall.
        while (running_) {
            int slot = -1;
            co_await env_->recvOn(rep, &slot);
            const dtu::Message &m = env_->msgAt(rep, slot);
            auto caller = static_cast<ActId>(m.label);
            SyscallReq req = podFrom<SyscallReq>(m.payload);
            syscalls_->inc();

            if (admission_.enabled()) {
                std::size_t occ =
                    env_->dtu().unread(env_->actId(), rep) + 1;
                if (!admission_.admit(env_->dtu().now(), m.arrival,
                                      occ)) {
                    co_await thread.compute(
                        admission_.params().shedCost);
                    SyscallResp shed;
                    shed.err = Error::Overloaded;
                    Error serr = Error::None;
                    co_await env_->reply(rep, slot, podBytes(shed),
                                         &serr);
                    continue;
                }
            }

            co_await thread.compute(params_.dispatchCost);
            SyscallResp resp;
            co_await handle(caller, req, &resp);

            Error rerr = Error::None;
            co_await env_->reply(rep, slot, podBytes(resp), &rerr);
            if (rerr != Error::None)
                sim::warn("controller: reply to %u failed: %s",
                          caller, dtu::errorName(rerr));
        }
        co_return;
    }
    // Priority order: cross-shard replies complete a peer's blocked
    // call, cross-shard requests complete OUR callers' in-flight
    // syscalls — both beat admitting new syscalls. recvAny() polls in
    // list order, so under syscall saturation this keeps the peer
    // protocol's RTT bounded by one service time instead of the whole
    // syscall backlog.
    std::vector<EpId> reps = {params_.ctrlReplyRep,
                              params_.ctrlReqRep, rep};
    while (running_) {
        EpId which = dtu::kInvalidEp;
        int slot = -1;
        co_await env_->recvAny(reps, &which, &slot);
        if (which == params_.ctrlReplyRep) {
            // Late reply of a timed-out cross-shard call: drop it so
            // it cannot wedge the poll loop.
            co_await env_->ackMsg(which, slot);
            continue;
        }
        if (which == params_.ctrlReqRep) {
            co_await handleCtrlReq(slot);
            continue;
        }
        co_await serviceSyscall(slot);
    }
}

sim::Task
Controller::serviceSyscall(int slot)
{
    auto &thread = env_->thread();
    EpId rep = params_.syscallRep;
    const dtu::Message &m = env_->msgAt(rep, slot);
    auto caller = static_cast<ActId>(m.label);
    SyscallReq req = podFrom<SyscallReq>(m.payload);
    syscalls_->inc();

    // Admission control over the bounded syscall ring: reject
    // aged or over-occupancy syscalls early with a typed error
    // instead of executing them. The rejection travels the normal
    // vDTU reply path, so service RPCs that embed syscalls (e.g.
    // m3fs extent grants) surface it typed to their clients.
    if (admission_.enabled()) {
        std::size_t occ =
            env_->dtu().unread(env_->actId(), rep) + 1;
        if (!admission_.admit(env_->dtu().now(), m.arrival, occ)) {
            co_await thread.compute(
                admission_.params().shedCost);
            SyscallResp shed;
            shed.err = Error::Overloaded;
            Error serr = Error::None;
            co_await env_->reply(rep, slot, podBytes(shed),
                                 &serr);
            co_return;
        }
    }

    co_await thread.compute(params_.dispatchCost);
    SyscallResp resp;
    co_await handle(caller, req, &resp);

    Error rerr = Error::None;
    co_await env_->reply(rep, slot, podBytes(resp), &rerr);
    if (rerr != Error::None)
        sim::warn("controller: reply to %u failed: %s", caller,
                  dtu::errorName(rerr));
}

sim::Task
Controller::handle(ActId caller, const SyscallReq &req,
                   SyscallResp *resp)
{
    auto &thread = env_->thread();
    CapTable &table = caps_->tableOf(caller);
    resp->err = Error::None;
    resp->val = 0;

    switch (req.op) {
      case SyscallReq::Op::Noop:
        break;

      case SyscallReq::Op::DeriveMem: {
        co_await thread.compute(params_.capCost);
        Capability *parent =
            table.get(static_cast<CapSel>(req.arg0));
        if (!parent || parent->obj().kind != CapKind::MemGate ||
            parent->revoking) {
            resp->err = Error::InvalidEp;
            break;
        }
        std::uint64_t off = req.arg1;
        std::uint64_t size = req.arg2;
        auto perms = static_cast<std::uint8_t>(req.arg3);
        const MemObj &pm = parent->obj().mem;
        if (off + size > pm.size || (perms & ~pm.perms) != 0) {
            resp->err = Error::OutOfBounds;
            break;
        }
        auto obj = std::make_shared<KObject>();
        obj->kind = CapKind::MemGate;
        obj->mem = MemObj{pm.tile, pm.addr + off, size, perms};
        resp->val = table.insertChild(std::move(obj), *parent);
        break;
      }

      case SyscallReq::Op::Activate: {
        co_await thread.compute(params_.capCost);
        Capability *cap = table.get(static_cast<CapSel>(req.arg0));
        auto ep = static_cast<EpId>(req.arg1);
        if (!cap) {
            resp->err = Error::InvalidEp;
            break;
        }
        noc::TileId tile = actTile(caller);
        if (tile == kNoTile) {
            resp->err = Error::InvalidEp;
            break;
        }
        if (cap->obj().kind == CapKind::RecvGate) {
            cap->obj().rgate.tile = tile;
            cap->obj().rgate.act = caller;
            cap->obj().rgate.ep = ep;
        }
        co_await configRemoteEp(tile, ep,
                                endpointFor(cap->obj(), caller),
                                &resp->err);
        cap->activated = true;
        cap->actTile = tile;
        cap->actEp = ep;
        break;
      }

      case SyscallReq::Op::ActivateFor: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        Capability *cap = table.get(static_cast<CapSel>(req.arg2));
        auto ep = static_cast<EpId>(req.arg1);
        if (!actcap || actcap->obj().kind != CapKind::Activity ||
            !cap) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId target = actcap->obj().act.id;
        noc::TileId tile = actcap->obj().act.tile;
        if (cap->obj().kind == CapKind::RecvGate) {
            cap->obj().rgate.tile = tile;
            cap->obj().rgate.act = target;
            cap->obj().rgate.ep = ep;
        }
        co_await configRemoteEp(tile, ep,
                                endpointFor(cap->obj(), target),
                                &resp->err);
        cap->activated = true;
        cap->actTile = tile;
        cap->actEp = ep;
        break;
      }

      case SyscallReq::Op::Delegate: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        Capability *cap = table.get(static_cast<CapSel>(req.arg1));
        if (!actcap || actcap->obj().kind != CapKind::Activity ||
            !cap || cap->revoking) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId target = actcap->obj().act.id;
        unsigned tshard =
            shardMap_.shardOfTile(actcap->obj().act.tile);
        if (tshard == shard_) {
            resp->val = caps_->tableOf(target).insertChild(
                cap->objPtr(), *cap);
            break;
        }
        CtrlReq creq;
        creq.op = CtrlReq::Op::Delegate;
        creq.act = target;
        creq.act2 = caller;
        creq.sel2 = cap->sel();
        creq.obj = cap->obj();
        CtrlResp cresp;
        bool ok = false;
        co_await ctrlCall(tshard, creq, &cresp, &ok);
        if (!ok) {
            resp->err = Error::Timeout;
            break;
        }
        if (cresp.err != Error::None) {
            resp->err = cresp.err;
            break;
        }
        // Re-resolve after the suspension: a concurrent revoke (or a
        // reap of the caller) may have claimed or removed the source
        // cap. If so, compensate by revoking the child we just
        // created on the peer — the revoke already owns this subtree,
        // so resurrecting the record here would leak the child.
        CapTable *ct = caps_->tableIfExists(caller);
        Capability *cap2 =
            ct ? ct->get(static_cast<CapSel>(req.arg1)) : nullptr;
        if (!cap2 || cap2->revoking) {
            CtrlReq undo;
            undo.op = CtrlReq::Op::Revoke;
            undo.act = target;
            undo.sel = static_cast<CapSel>(cresp.val);
            ctrlOneway(tshard, undo);
            resp->err = Error::InvalidEp;
            break;
        }
        cap2->remoteChildren.push_back(
            RemoteRef{static_cast<std::uint8_t>(tshard), target,
                      static_cast<CapSel>(cresp.val)});
        resp->val = cresp.val;
        break;
      }

      case SyscallReq::Op::Obtain: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        if (!actcap || actcap->obj().kind != CapKind::Activity) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId src = actcap->obj().act.id;
        auto src_sel = static_cast<CapSel>(req.arg1);
        unsigned sshard =
            shardMap_.shardOfTile(actcap->obj().act.tile);
        if (sshard == shard_) {
            CapTable *st = caps_->tableIfExists(src);
            Capability *scap = st ? st->get(src_sel) : nullptr;
            if (!scap || scap->revoking) {
                resp->err = Error::InvalidEp;
                break;
            }
            resp->val = table.insertChild(scap->objPtr(), *scap);
            break;
        }
        // Cross-shard: reserve the destination selector, ship it to
        // the source shard (which records the share), and insert the
        // returned object copy — unless a revoke raced us and killed
        // the pending obtain.
        CapSel dst = table.reserveSel();
        pendingObtains_.push_back(PendingObtain{caller, dst, false});
        CtrlReq creq;
        creq.op = CtrlReq::Op::Obtain;
        creq.act = src;
        creq.sel = src_sel;
        creq.act2 = caller;
        creq.sel2 = dst;
        CtrlResp cresp;
        bool ok = false;
        co_await ctrlCall(sshard, creq, &cresp, &ok);
        PendingObtain pend = takePendingObtain(caller, dst);
        if (!ok || cresp.err != Error::None || pend.killed ||
            !caps_->tableIfExists(caller)) {
            // The share record may exist on the source side (reply
            // lost, caller reaped): release it. DropShare is
            // idempotent, so over-notifying is safe.
            if (ok && cresp.err == Error::None && !pend.killed) {
                CtrlReq undo;
                undo.op = CtrlReq::Op::DropShare;
                undo.act = src;
                undo.sel = src_sel;
                undo.act2 = caller;
                undo.sel2 = dst;
                ctrlOneway(sshard, undo);
            }
            resp->err = !ok ? Error::Timeout : Error::InvalidEp;
            if (ok && cresp.err != Error::None)
                resp->err = cresp.err;
            break;
        }
        Capability &c = caps_->tableIfExists(caller)->insertReserved(
            dst, std::make_shared<KObject>(cresp.obj));
        c.hasRemoteParent = true;
        c.remoteParent =
            RemoteRef{static_cast<std::uint8_t>(sshard), src,
                      src_sel};
        resp->val = dst;
        break;
      }

      case SyscallReq::Op::Revoke: {
        if (shardMap_.shards <= 1) {
            // Pre-shard fast path, inline (no nested coroutine, no
            // pending-obtain scan): revocation cost scales with the
            // subtree; collect activated EPs first, then invalidate
            // them over the NoC.
            std::vector<std::pair<noc::TileId, EpId>> inv;
            std::size_t removed = caps_->revoke(
                caller, static_cast<CapSel>(req.arg0),
                [&](Capability &c) {
                    if (c.activated)
                        inv.emplace_back(c.actTile, c.actEp);
                },
                req.arg1 != 0);
            co_await thread.compute(params_.capCost *
                                    std::max<std::size_t>(1,
                                                          removed));
            for (auto &[tile, ep] : inv)
                co_await invalidateRemoteEp(tile, ep);
            resp->val = removed;
            break;
        }
        std::size_t removed = 0;
        co_await revokeTree(caller, static_cast<CapSel>(req.arg0),
                            req.arg1 != 0, RemoteRef{}, &removed);
        resp->val = removed;
        break;
      }

      case SyscallReq::Op::CreateAct: {
        co_await thread.compute(params_.capCost);
        auto tile = static_cast<noc::TileId>(req.arg0);
        if (tile >= shardMap_.userTiles) {
            resp->err = Error::OutOfBounds;
            break;
        }
        unsigned tshard = shardMap_.shardOfTile(tile);
        ActId id = dtu::kInvalidAct;
        if (tshard == shard_) {
            id = allocActId();
            registerActivity(id, tile);
            caps_->tableOf(id);
        } else {
            CtrlReq creq;
            creq.op = CtrlReq::Op::CreateAct;
            creq.tile = tile;
            CtrlResp cresp;
            bool ok = false;
            co_await ctrlCall(tshard, creq, &cresp, &ok);
            if (!ok) {
                resp->err = Error::Timeout;
                break;
            }
            if (cresp.err != Error::None) {
                resp->err = cresp.err;
                break;
            }
            id = static_cast<ActId>(cresp.val);
        }
        CapTable *ct = caps_->tableIfExists(caller);
        if (!ct) {
            resp->err = Error::InvalidEp;
            break;
        }
        auto obj = std::make_shared<KObject>();
        obj->kind = CapKind::Activity;
        obj->act = ActObj{id, tile};
        CapSel sel = ct->insertRoot(std::move(obj));
        resp->val = (static_cast<std::uint64_t>(sel) << 32) | id;
        break;
      }

      case SyscallReq::Op::DestroyAct: {
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        if (!actcap || actcap->obj().kind != CapKind::Activity) {
            resp->err = Error::InvalidEp;
            break;
        }
        ActId id = actcap->obj().act.id;
        unsigned hshard =
            shardMap_.shardOfTile(actcap->obj().act.tile);
        std::size_t removed = 0;
        co_await revokeTree(caller, static_cast<CapSel>(req.arg0),
                            false, RemoteRef{}, &removed);
        if (hshard == shard_) {
            reapActivity(id);
        } else {
            CtrlReq creq;
            creq.op = CtrlReq::Op::DropTable;
            creq.act = id;
            CtrlResp cresp;
            bool ok = false;
            co_await ctrlCall(hshard, creq, &cresp, &ok);
            if (!ok) {
                resp->err = Error::Timeout;
                break;
            }
        }
        resp->val = removed;
        break;
      }

      case SyscallReq::Op::MapFor: {
        co_await thread.compute(params_.capCost);
        Capability *actcap =
            table.get(static_cast<CapSel>(req.arg0));
        if (!actcap || actcap->obj().kind != CapKind::Activity) {
            resp->err = Error::InvalidEp;
            break;
        }
        unsigned tshard =
            shardMap_.shardOfTile(actcap->obj().act.tile);
        if (tshard != shard_) {
            // The sidecall channel to that TileMux belongs to its
            // home quadrant's controller: forward.
            CtrlReq creq;
            creq.op = CtrlReq::Op::MapFor;
            creq.act = actcap->obj().act.id;
            creq.a = req.arg1;
            creq.b = req.arg2;
            creq.c = req.arg3;
            CtrlResp cresp;
            bool ok = false;
            co_await ctrlCall(tshard, creq, &cresp, &ok);
            resp->err = ok ? cresp.err : Error::Timeout;
            break;
        }
        SidecallReq side;
        side.op = SidecallReq::Op::MapPage;
        side.act = actcap->obj().act.id;
        side.virt = req.arg1;
        side.phys = req.arg2;
        side.perms = static_cast<std::uint32_t>(req.arg3);
        SidecallResp sresp;
        co_await sidecall(actcap->obj().act.tile, side, &sresp);
        resp->err = sresp.err;
        break;
      }

      case SyscallReq::Op::CreateSgate: {
        co_await thread.compute(params_.capCost);
        Capability *rcap = table.get(static_cast<CapSel>(req.arg0));
        if (!rcap || rcap->obj().kind != CapKind::RecvGate ||
            rcap->revoking) {
            resp->err = Error::InvalidEp;
            break;
        }
        auto obj = std::make_shared<KObject>();
        obj->kind = CapKind::SendGate;
        obj->sgate.target = rcap->obj().rgate;
        obj->sgate.label = req.arg1;
        obj->sgate.credits = static_cast<std::uint32_t>(req.arg2);
        resp->val = table.insertChild(std::move(obj), *rcap);
        break;
      }
    }
    co_return;
}

} // namespace m3v::os
