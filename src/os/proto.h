/**
 * @file
 * Wire formats of the M3v software protocols: system calls from
 * activities to the controller, sidecalls from the controller to
 * TileMux instances, and POD serialization helpers.
 */

#ifndef M3VSIM_OS_PROTO_H_
#define M3VSIM_OS_PROTO_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "dtu/types.h"
#include "sim/log.h"

namespace m3v::os {

/** Raw message payload bytes. */
using Bytes = std::vector<std::uint8_t>;

/** Serialize a trivially-copyable struct into payload bytes. */
template <typename T>
Bytes
podBytes(const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes b(sizeof(T));
    std::memcpy(b.data(), &v, sizeof(T));
    return b;
}

/** Deserialize payload bytes into a trivially-copyable struct. */
template <typename T>
T
podFrom(const Bytes &b)
{
    static_assert(std::is_trivially_copyable_v<T>);
    if (b.size() < sizeof(T))
        sim::panic("podFrom: message too short (%zu < %zu)", b.size(),
                   sizeof(T));
    T v;
    std::memcpy(&v, b.data(), sizeof(T));
    return v;
}

/**
 * Capability selector within an activity's capability table.
 *
 * The selector space is partitioned per controller shard (Corey-style
 * explicit partitioning): the top byte carries the id of the shard
 * whose tables allocated the selector, the low 24 bits are the
 * shard-local value. Shard 0 selectors are numerically identical to
 * the pre-sharding scheme, so single-controller configurations (every
 * paper-sized platform) produce byte-identical selector streams.
 */
using CapSel = std::uint32_t;
constexpr CapSel kInvalidSel = ~0u;

/** Bit position of the shard id inside a CapSel. */
constexpr unsigned kCapSelShardShift = 24;
/** Mask of the shard-local part of a CapSel. */
constexpr CapSel kCapSelLocalMask = (1u << kCapSelShardShift) - 1;

/** Shard that allocated @p sel (owner of the backing table). */
constexpr unsigned
selShard(CapSel sel)
{
    return sel >> kCapSelShardShift;
}

/** Compose a selector from shard id and shard-local value. */
constexpr CapSel
makeSel(unsigned shard, CapSel local)
{
    return (static_cast<CapSel>(shard) << kCapSelShardShift) |
           (local & kCapSelLocalMask);
}

/** System calls handled by the controller (paper section 3.3). */
struct SyscallReq
{
    enum class Op : std::uint32_t
    {
        Noop,        ///< round-trip measurement
        DeriveMem,   ///< derive a sub-range memory capability
        Activate,    ///< install an own capability into an own EP
        ActivateFor, ///< install a cap into another activity's EP
                     ///< (requires holding that activity's cap)
        Delegate,    ///< copy a capability to another activity
        Revoke,      ///< recursively revoke a capability subtree
        CreateSgate, ///< create a send gate for an own recv gate
        MapFor,      ///< install a page mapping for another activity
                     ///< (controller forwards it to that TileMux as a
                     ///< sidecall, paper section 4.3)
        CreateAct,   ///< create a controller-side activity record on a
                     ///< tile (arg0); the caller receives its activity
                     ///< capability. Used by control-plane storms: the
                     ///< activity owns a capability table but no
                     ///< execution context.
        Obtain,      ///< pull a copy of a capability out of another
                     ///< activity's table (arg0 = that activity's cap,
                     ///< arg1 = source selector) into the caller's
        DestroyAct,  ///< revoke an activity capability (arg0) and drop
                     ///< the activity's whole capability table
    };

    Op op = Op::Noop;
    /** Operation arguments (selector/ep/addr/size/perm fields). */
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
    std::uint64_t arg3 = 0;
    std::uint64_t arg4 = 0;
};

/** System-call response. */
struct SyscallResp
{
    dtu::Error err = dtu::Error::None;
    /** Result value (e.g. the new capability selector). */
    std::uint64_t val = 0;
};

/** Sidecalls from the controller to a TileMux instance. */
struct SidecallReq
{
    enum class Op : std::uint32_t
    {
        MapPage, ///< install a page-table entry for an activity
        KillAct, ///< forcefully terminate an activity
    };

    Op op = Op::MapPage;
    dtu::ActId act = dtu::kInvalidAct;
    std::uint64_t virt = 0;
    std::uint64_t phys = 0;
    std::uint32_t perms = 0;
};

/** Sidecall response. */
struct SidecallResp
{
    dtu::Error err = dtu::Error::None;
};

} // namespace m3v::os

#endif // M3VSIM_OS_PROTO_H_
