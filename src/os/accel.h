/**
 * @file
 * Accelerator tiles: fixed-function units behind a plain DTU, as in
 * M³/M³x (paper sections 2.2 and 8). Accelerators run autonomously:
 * once the controller wires their channels, jobs flow from stage to
 * stage without any general-purpose core in the loop — the paper's
 * "decode | fft | mul | ifft" shell pipeline (Figure 2).
 *
 * M³v does not multiplex accelerator tiles (section 8); each tile
 * works on one context and uses the non-virtualized DTU.
 *
 * Job protocol (endpoints configured by the controller/harness):
 *   ep 4: command receive endpoint (AccelJob messages)
 *   ep 5: forward send endpoint (to the next stage or the app)
 *   ep 6: input memory endpoint
 *   ep 7: output memory endpoint
 * A job names an input window and an output window; the accelerator
 * reads the input, applies its transform (real bytes, modelled
 * cycles), writes the output, and forwards the job descriptor.
 */

#ifndef M3VSIM_OS_ACCEL_H_
#define M3VSIM_OS_ACCEL_H_

#include <functional>
#include <memory>
#include <string>

#include "os/env.h"

namespace m3v::os {

/** The job descriptor accelerators pass along. */
struct AccelJob
{
    std::uint64_t inOff = 0;
    std::uint32_t len = 0;
    std::uint64_t outOff = 0;
    /** Opaque tag travelling with the job (e.g. frame number). */
    std::uint64_t tag = 0;
};

/** Accelerator timing parameters. */
struct AccelParams
{
    /** Accelerator clock. */
    std::uint64_t freqHz = 200'000'000;

    /** Per-job setup cost (cycles). */
    sim::Cycles fixedCost = 400;

    /** Processing bandwidth (bytes per cycle). */
    std::size_t bytesPerCycle = 8;
};

/** Well-known endpoints of the accelerator job protocol. */
constexpr dtu::EpId kAccelCmdRep = 4;
constexpr dtu::EpId kAccelFwdSep = 5;
constexpr dtu::EpId kAccelInMep = 6;
constexpr dtu::EpId kAccelOutMep = 7;

/** A fixed-function accelerator tile. */
class AccelTile
{
  public:
    /** The accelerator's function on real data. */
    using Transform = std::function<Bytes(const Bytes &)>;

    AccelTile(sim::EventQueue &eq, std::string name, noc::Noc &noc,
              noc::TileId tile, AccelParams params = {});
    ~AccelTile();

    AccelTile(const AccelTile &) = delete;
    AccelTile &operator=(const AccelTile &) = delete;

    const std::string &name() const { return name_; }
    noc::TileId tileId() const { return tile_; }
    dtu::Dtu &dtu() { return *dtu_; }

    /** Install the fixed function (before startDriver). */
    void setTransform(Transform fn) { transform_ = std::move(fn); }

    /** Start the autonomous job loop. */
    void startDriver();

    std::uint64_t jobsProcessed() const { return jobs_; }

  private:
    sim::Task driver();

    std::string name_;
    noc::TileId tile_;
    AccelParams params_;
    std::unique_ptr<tile::Core> core_;
    std::unique_ptr<dtu::Dtu> dtu_;
    std::unique_ptr<tile::Thread> thread_;
    std::unique_ptr<BareEnv> env_;
    Transform transform_;
    std::uint64_t jobs_ = 0;
};

} // namespace m3v::os

#endif // M3VSIM_OS_ACCEL_H_
