#include "os/env.h"

#include <utility>

#include "sim/log.h"

namespace m3v::os {

using dtu::Error;

Env::Env(std::string name, tile::Thread &thread, dtu::Dtu &dtu,
         dtu::ActId act)
    : name_(std::move(name)), thread_(&thread), dtu_(&dtu), act_(act)
{
}

sim::Cycles
Env::mmioR(unsigned n) const
{
    return n * thread_->core().model().mmioReadCycles;
}

sim::Cycles
Env::mmioW(unsigned n) const
{
    return n * thread_->core().model().mmioWriteCycles;
}

sim::Task
Env::send(dtu::EpId sep, Bytes msg, dtu::EpId reply_ep, Error *err,
          std::uint64_t nonce)
{
    for (;;) {
        // Program EP id, buffer address, size, reply EP; start; poll.
        co_await thread_->compute(mmioW(5) + mmioR(1));
        Error e = Error::Aborted;
        bool done = false;
        thread_->clearWake();
        dtu_->cmdSend(act_, sep, msgBuf_, msg, reply_ep,
                      [&](Error res) {
                          e = res;
                          done = true;
                          thread_->wake();
                      },
                      nonce);
        while (!done)
            co_await thread_->externalWait();
        co_await thread_->compute(mmioR(1)); // final status read
        if (e == Error::TlbMiss) {
            co_await translFix(msgBuf_, false);
            continue;
        }
        if (err)
            *err = e;
        co_return;
    }
}

sim::Task
Env::reply(dtu::EpId rep, int slot, Bytes msg, Error *err)
{
    for (;;) {
        co_await thread_->compute(mmioW(5) + mmioR(1));
        Error e = Error::Aborted;
        bool done = false;
        thread_->clearWake();
        dtu_->cmdReply(act_, rep, slot, msgBuf_, msg, [&](Error res) {
            e = res;
            done = true;
            thread_->wake();
        });
        while (!done)
            co_await thread_->externalWait();
        co_await thread_->compute(mmioR(1)); // final status read
        if (e == Error::TlbMiss) {
            co_await translFix(msgBuf_, false);
            continue;
        }
        if (err)
            *err = e;
        co_return;
    }
}

sim::Task
Env::waitMsg()
{
    co_await waitImpl(dtu::kInvalidEp);
}

sim::Task
Env::recvOn(dtu::EpId rep, int *slot)
{
    int spurious = 0;
    for (;;) {
        // FETCH via MMIO.
        co_await thread_->compute(mmioW(1) + mmioR(1));
        int s = dtu_->fetch(act_, rep);
        if (s >= 0) {
            *slot = s;
            co_return;
        }
        if (++spurious > 10000) {
            sim::panic("%s: livelock in recvOn(ep %u): unread message "
                       "on an unexpected EP?",
                       name_.c_str(), rep);
        }
        co_await waitImpl(rep);
    }
}

sim::Task
Env::recvAny(std::vector<dtu::EpId> reps, dtu::EpId *which, int *slot)
{
    for (;;) {
        for (dtu::EpId rep : reps) {
            co_await thread_->compute(mmioW(1) + mmioR(1));
            int s = dtu_->fetch(act_, rep);
            if (s >= 0) {
                *which = rep;
                *slot = s;
                co_return;
            }
        }
        co_await waitImpl(dtu::kInvalidEp);
    }
}

const dtu::Message &
Env::msgAt(dtu::EpId rep, int slot) const
{
    return dtu_->slotMsg(rep, slot);
}

sim::Task
Env::ackMsg(dtu::EpId rep, int slot)
{
    co_await thread_->compute(mmioW(1));
    dtu_->ack(act_, rep, slot);
}

sim::Task
Env::call(dtu::EpId sep, dtu::EpId rep, Bytes req, Bytes *resp,
          Error *err)
{
    Error e = Error::Aborted;
    co_await send(sep, std::move(req), rep, &e);
    if (e != Error::None) {
        if (err)
            *err = e;
        co_return;
    }
    int slot = -1;
    co_await recvOn(rep, &slot);
    // Copy the payload out of the receive buffer (word loads).
    const dtu::Message &m = dtu_->slotMsg(rep, slot);
    co_await thread_->compute(
        static_cast<sim::Cycles>(m.payload.size() / 8 + 2));
    if (resp)
        *resp = m.payload;
    co_await ackMsg(rep, slot);
    if (err)
        *err = Error::None;
}

sim::Task
Env::callTimed(dtu::EpId sep, dtu::EpId rep, Bytes req, Bytes *resp,
               Error *err, sim::Tick reply_deadline)
{
    if (reply_deadline == 0) {
        co_await call(sep, rep, std::move(req), resp, err);
        co_return;
    }
    // Drain late replies of earlier timed-out calls on this EP so
    // the ring cannot fill up with them (and the next fetch is ours).
    for (;;) {
        co_await thread_->compute(mmioW(1) + mmioR(1));
        int stale = dtu_->fetch(act_, rep);
        if (stale < 0)
            break;
        staleDrops_++;
        co_await ackMsg(rep, stale);
    }

    // A fresh correlation nonce for this call: the reply echoes it,
    // so a late reply of an earlier, timed-out call that slips in
    // after the drain above cannot be misattributed to this call.
    const std::uint64_t nonce = ++callNonce_;
    Error e = Error::Aborted;
    co_await send(sep, std::move(req), rep, &e, nonce);
    if (e != Error::None) {
        if (err)
            *err = e;
        co_return;
    }

    // Poll for the reply (section 3.7 style), yielding the core
    // between probes, until the deadline passes.
    sim::EventQueue &eq = dtu_->eventQueue();
    sim::Tick deadline = eq.now() + reply_deadline;
    for (;;) {
        co_await thread_->compute(mmioW(1) + mmioR(1));
        int slot = dtu_->fetch(act_, rep);
        if (slot >= 0) {
            const dtu::Message &m = dtu_->slotMsg(rep, slot);
            if (m.nonce != nonce) {
                // Stale reply to a previous timed-out call on this
                // EP: ack-and-discard it and keep polling for ours.
                staleDrops_++;
                co_await ackMsg(rep, slot);
                continue;
            }
            co_await thread_->compute(
                static_cast<sim::Cycles>(m.payload.size() / 8 + 2));
            if (resp)
                *resp = m.payload;
            co_await ackMsg(rep, slot);
            if (err)
                *err = Error::None;
            co_return;
        }
        if (eq.now() >= deadline) {
            if (err)
                *err = Error::Timeout;
            co_return;
        }
        co_await yield();
    }
}

sim::Task
Env::readMem(dtu::EpId mep, std::uint64_t off, std::size_t size,
             Bytes *out, Error *err)
{
    for (;;) {
        co_await thread_->compute(mmioW(4) + mmioR(1));
        Error e = Error::Aborted;
        bool done = false;
        thread_->clearWake();
        dtu_->cmdRead(act_, mep, off, size, msgBuf_,
                      [&](Error res, Bytes data) {
                          e = res;
                          if (out)
                              *out = std::move(data);
                          done = true;
                          thread_->wake();
                      });
        while (!done)
            co_await thread_->externalWait();
        if (e == Error::TlbMiss) {
            co_await translFix(msgBuf_, true);
            continue;
        }
        if (err)
            *err = e;
        co_return;
    }
}

sim::Task
Env::writeMem(dtu::EpId mep, std::uint64_t off, Bytes data, Error *err)
{
    for (;;) {
        co_await thread_->compute(mmioW(4) + mmioR(1));
        Error e = Error::Aborted;
        bool done = false;
        thread_->clearWake();
        dtu_->cmdWrite(act_, mep, off, data, msgBuf_, [&](Error res) {
            e = res;
            done = true;
            thread_->wake();
        });
        while (!done)
            co_await thread_->externalWait();
        if (e == Error::TlbMiss) {
            co_await translFix(msgBuf_, false);
            continue;
        }
        if (err)
            *err = e;
        co_return;
    }
}

sim::Task
Env::syscall(SyscallReq req, SyscallResp *resp)
{
    if (syscSep_ == dtu::kInvalidEp)
        sim::panic("%s: syscall without syscall gates", name_.c_str());
    Bytes respb;
    Error e = Error::Aborted;
    co_await call(syscSep_, syscRep_, podBytes(req), &respb, &e);
    if (e != Error::None)
        sim::panic("%s: syscall transport failed: %s", name_.c_str(),
                   dtu::errorName(e));
    *resp = podFrom<SyscallResp>(respb);
}

sim::Task
Env::trySyscall(SyscallReq req, SyscallResp *resp, dtu::Error *err)
{
    if (syscSep_ == dtu::kInvalidEp)
        sim::panic("%s: syscall without syscall gates", name_.c_str());
    Bytes respb;
    Error e = Error::Aborted;
    co_await call(syscSep_, syscRep_, podBytes(req), &respb, &e);
    *err = e;
    if (e == Error::None)
        *resp = podFrom<SyscallResp>(respb);
}

//
// MuxEnv
//

MuxEnv::MuxEnv(std::string name, core::Activity &act, core::VDtu &vdtu)
    : Env(std::move(name), act.thread(), vdtu, act.id()), act_(&act)
{
}

sim::Task
MuxEnv::waitImpl(dtu::EpId ep)
{
    co_await mux().waitForMsg(*act_, ep);
}

sim::Task
MuxEnv::translFix(dtu::VirtAddr va, bool write)
{
    co_await mux().translCall(*act_, va, write);
}

sim::Task
MuxEnv::yield()
{
    co_await mux().yieldCall(*act_);
}

sim::Task
MuxEnv::exit()
{
    co_await mux().exitCall(*act_);
}

//
// BareEnv
//

BareEnv::BareEnv(std::string name, tile::Thread &thread, dtu::Dtu &dtu,
                 dtu::ActId act)
    : Env(std::move(name), thread, dtu, act)
{
    dtu.setMsgNotify([this](dtu::EpId, dtu::ActId) {
        if (waiting_) {
            waiting_ = false;
            thread_->wake();
        }
    });
}

bool
BareEnv::anyUnread() const
{
    for (dtu::EpId ep : reps_)
        if (dtu_->unread(act_, ep) > 0)
            return true;
    return false;
}

sim::Task
BareEnv::waitImpl(dtu::EpId ep)
{
    if (ep != dtu::kInvalidEp) {
        if (dtu_->unread(act_, ep) > 0)
            co_return;
    } else if (anyUnread()) {
        co_return;
    }
    waiting_ = true;
    co_await thread_->externalWait();
}

sim::Task
BareEnv::waitEpsUntil(const std::vector<dtu::EpId> &eps,
                      sim::Tick deadline)
{
    sim::EventQueue &eq = dtu_->eventQueue();
    for (dtu::EpId ep : eps)
        if (dtu_->unread(act_, ep) > 0)
            co_return;
    if (eq.now() >= deadline)
        co_return;
    waiting_ = true;
    // Timeout alarm: wakes the thread at the deadline unless a
    // message notification got there first (the handle is inert after
    // it fires, and a stale alarm is just a spurious wakeup).
    eq.schedule(deadline - eq.now(), [this] {
        if (waiting_) {
            waiting_ = false;
            thread_->wake();
        }
    });
    co_await thread_->externalWait();
}

sim::Task
BareEnv::translFix(dtu::VirtAddr, bool)
{
    sim::panic("%s: TLB miss on a bare tile?", name_.c_str());
}

sim::Task
BareEnv::yield()
{
    // Bare tiles run a single context: yielding is a no-op.
    co_await thread_->compute(1);
}

sim::Task
BareEnv::exit()
{
    // The thread simply finishes after the body returns.
    co_return;
}

} // namespace m3v::os
