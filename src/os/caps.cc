#include "os/caps.h"

#include <algorithm>

#include "sim/log.h"

namespace m3v::os {

CapSel
CapTable::insertRoot(std::shared_ptr<KObject> obj)
{
    CapSel sel = next_++;
    caps_.emplace(sel, std::make_unique<Capability>(sel, owner_,
                                                    std::move(obj)));
    return sel;
}

CapSel
CapTable::insertChild(std::shared_ptr<KObject> obj, Capability &parent)
{
    CapSel sel = next_++;
    auto cap = std::make_unique<Capability>(sel, owner_,
                                            std::move(obj));
    cap->parent = &parent;
    parent.children.push_back(cap.get());
    caps_.emplace(sel, std::move(cap));
    return sel;
}

Capability &
CapTable::insertReserved(CapSel sel, std::shared_ptr<KObject> obj)
{
    auto cap = std::make_unique<Capability>(sel, owner_,
                                            std::move(obj));
    Capability &ref = *cap;
    if (!caps_.emplace(sel, std::move(cap)).second)
        sim::panic("CapTable: reserved selector %u already in use",
                   sel);
    return ref;
}

Capability *
CapTable::get(CapSel sel)
{
    auto it = caps_.find(sel);
    return it == caps_.end() ? nullptr : it->second.get();
}

const Capability *
CapTable::get(CapSel sel) const
{
    auto it = caps_.find(sel);
    return it == caps_.end() ? nullptr : it->second.get();
}

std::size_t
CapTable::revoke(CapSel sel,
                 const std::function<void(Capability &)> &on_revoke,
                 bool keep_root)
{
    // Delegated children can live in other tables; this convenience
    // entry only works for single-table use (tests). CapMgr::revoke
    // is the full implementation.
    Capability *root = get(sel);
    if (!root)
        return 0;
    std::vector<Capability *> subtree;
    CapMgr::collectSubtree(*root, subtree);
    std::size_t removed = 0;
    for (auto it = subtree.rbegin(); it != subtree.rend(); ++it) {
        Capability *cap = *it;
        if (keep_root && cap == root)
            continue;
        if (cap->owner() != owner_)
            sim::panic("CapTable::revoke: cross-table child; use "
                       "CapMgr::revoke");
        on_revoke(*cap);
        if (cap->parent) {
            auto &sib = cap->parent->children;
            sib.erase(std::remove(sib.begin(), sib.end(), cap),
                      sib.end());
        }
        caps_.erase(cap->sel());
        removed++;
    }
    if (keep_root)
        root->children.clear();
    return removed;
}

CapTable &
CapMgr::tableOf(dtu::ActId act)
{
    if (act >= tables_.size())
        tables_.resize(act + 1);
    if (!tables_[act])
        tables_[act] = std::make_unique<CapTable>(act, shard_);
    return *tables_[act];
}

CapTable *
CapMgr::tableIfExists(dtu::ActId act)
{
    return act < tables_.size() ? tables_[act].get() : nullptr;
}

bool
CapMgr::hasTable(dtu::ActId act) const
{
    return act < tables_.size() && tables_[act] != nullptr;
}

void
CapMgr::collectSubtree(Capability &cap, std::vector<Capability *> &out)
{
    out.push_back(&cap);
    for (Capability *child : cap.children)
        collectSubtree(*child, out);
}

bool
CapMgr::planRevoke(dtu::ActId act, CapSel sel, bool keep_root,
                   RevokePlan *plan)
{
    CapTable *table = tableIfExists(act);
    if (!table)
        return false;
    Capability *root = table->get(sel);
    // Idempotence: a missing root (already revoked, double revoke, a
    // retransmitted revoke request) and a root another in-progress
    // revoke owns are both "nothing left for this plan to do".
    if (!root || (root->revoking && !keep_root))
        return false;

    plan->root = root;
    plan->keepRoot = keep_root;

    // Mark the local subtree pre-order, skipping subtrees an earlier
    // plan already owns (it reaps them; marking twice would make two
    // plans free the same caps).
    std::vector<Capability *> stack;
    if (keep_root) {
        for (Capability *c : root->children)
            stack.push_back(c);
    } else {
        stack.push_back(root);
    }
    // Children are pushed in reverse so they pop in sibling order:
    // plan->caps is the exact recursive pre-order (root, first child's
    // subtree, ...), which keeps the EP-invalidation sequence of a
    // single-shard revoke identical to the pre-sharding walk.
    std::reverse(stack.begin(), stack.end());
    while (!stack.empty()) {
        Capability *cap = stack.back();
        stack.pop_back();
        if (cap->revoking)
            continue;
        cap->revoking = true;
        plan->caps.push_back(cap);
        for (const RemoteRef &r : cap->remoteChildren)
            plan->remoteChildren.push_back(r);
        if (cap->hasRemoteParent)
            plan->remoteParents.emplace_back(
                cap->remoteParent,
                RemoteRef{static_cast<std::uint8_t>(shard_),
                          cap->owner(), cap->sel()});
        for (auto it = cap->children.rbegin();
             it != cap->children.rend(); ++it)
            stack.push_back(*it);
    }
    // A kept root with no local children can still have delegated
    // copies on other shards: the plan is then empty locally but the
    // caller must still sever the root's remote children.
    return !plan->caps.empty() ||
           (keep_root && !root->remoteChildren.empty());
}

std::size_t
CapMgr::executeRevoke(
    const RevokePlan &plan,
    const std::function<void(Capability &)> &on_revoke)
{
    std::size_t removed = 0;
    // Reverse plan order: every cap precedes its (unskipped) children,
    // so reaping back-to-front frees leaves first.
    for (auto it = plan.caps.rbegin(); it != plan.caps.rend(); ++it) {
        Capability *cap = *it;
        on_revoke(*cap);
        if (cap->parent) {
            auto &sib = cap->parent->children;
            sib.erase(std::remove(sib.begin(), sib.end(), cap),
                      sib.end());
        }
        // Children skipped at plan time (another revoke owns them)
        // are still linked: detach them so their own plan's reap does
        // not chase a dangling parent pointer.
        for (Capability *child : cap->children)
            child->parent = nullptr;
        CapTable *t = tableIfExists(cap->owner());
        if (!t)
            sim::panic("CapMgr: revoked cap of act %u without table",
                       cap->owner());
        t->caps_.erase(cap->sel());
        removed++;
    }
    return removed;
}

std::size_t
CapMgr::revoke(dtu::ActId act, CapSel sel,
               const std::function<void(Capability &)> &on_revoke,
               bool keep_root)
{
    RevokePlan plan;
    if (!planRevoke(act, sel, keep_root, &plan))
        return 0;
    return executeRevoke(plan, on_revoke);
}

void
CapMgr::dropTable(dtu::ActId act,
                  const std::function<void(Capability &)> &on_revoke)
{
    CapTable *table = tableIfExists(act);
    if (!table)
        return;
    // Revoke every root (and thereby all delegated descendants).
    std::vector<CapSel> roots;
    for (auto &[sel, cap] : table->caps_)
        if (!cap->parent && !cap->revoking)
            roots.push_back(sel);
    for (CapSel sel : roots)
        revoke(act, sel, on_revoke, false);
    // Caps derived from other tables (delegated *to* this activity)
    // or detached by a concurrent plan may remain; they are reaped by
    // revoking their local parents, which dropTable must not wait
    // for — remove them now, bottom-up.
    for (;;) {
        Capability *leaf = nullptr;
        for (auto &[sel, cap] : table->caps_) {
            if (!cap->revoking) {
                leaf = cap.get();
                break;
            }
        }
        if (!leaf)
            break;
        revoke(act, leaf->sel(), on_revoke, false);
    }
    if (table->caps_.empty())
        tables_[act].reset();
}

} // namespace m3v::os
