#include "os/caps.h"

#include <algorithm>

#include "sim/log.h"

namespace m3v::os {

CapSel
CapTable::insertRoot(std::shared_ptr<KObject> obj)
{
    CapSel sel = next_++;
    caps_.emplace(sel, std::make_unique<Capability>(sel, owner_,
                                                    std::move(obj)));
    return sel;
}

CapSel
CapTable::insertChild(std::shared_ptr<KObject> obj, Capability &parent)
{
    CapSel sel = next_++;
    auto cap = std::make_unique<Capability>(sel, owner_,
                                            std::move(obj));
    cap->parent = &parent;
    parent.children.push_back(cap.get());
    caps_.emplace(sel, std::move(cap));
    return sel;
}

Capability *
CapTable::get(CapSel sel)
{
    auto it = caps_.find(sel);
    return it == caps_.end() ? nullptr : it->second.get();
}

const Capability *
CapTable::get(CapSel sel) const
{
    auto it = caps_.find(sel);
    return it == caps_.end() ? nullptr : it->second.get();
}

std::size_t
CapTable::revoke(CapSel sel,
                 const std::function<void(Capability &)> &on_revoke,
                 bool keep_root)
{
    // Delegated children can live in other tables; this convenience
    // entry only works for single-table use (tests). CapMgr::revoke
    // is the full implementation.
    Capability *root = get(sel);
    if (!root)
        return 0;
    std::vector<Capability *> subtree;
    CapMgr::collectSubtree(*root, subtree);
    std::size_t removed = 0;
    for (auto it = subtree.rbegin(); it != subtree.rend(); ++it) {
        Capability *cap = *it;
        if (keep_root && cap == root)
            continue;
        if (cap->owner() != owner_)
            sim::panic("CapTable::revoke: cross-table child; use "
                       "CapMgr::revoke");
        on_revoke(*cap);
        if (cap->parent) {
            auto &sib = cap->parent->children;
            sib.erase(std::remove(sib.begin(), sib.end(), cap),
                      sib.end());
        }
        caps_.erase(cap->sel());
        removed++;
    }
    if (keep_root)
        root->children.clear();
    return removed;
}

CapTable &
CapMgr::tableOf(dtu::ActId act)
{
    auto it = tables_.find(act);
    if (it == tables_.end()) {
        it = tables_.emplace(act, std::make_unique<CapTable>(act))
                 .first;
    }
    return *it->second;
}

bool
CapMgr::hasTable(dtu::ActId act) const
{
    return tables_.count(act) > 0;
}

void
CapMgr::collectSubtree(Capability &cap, std::vector<Capability *> &out)
{
    out.push_back(&cap);
    for (Capability *child : cap.children)
        collectSubtree(*child, out);
}

std::size_t
CapMgr::revoke(dtu::ActId act, CapSel sel,
               const std::function<void(Capability &)> &on_revoke,
               bool keep_root)
{
    CapTable &table = tableOf(act);
    Capability *root = table.get(sel);
    if (!root)
        return 0;
    std::vector<Capability *> subtree;
    collectSubtree(*root, subtree);
    std::size_t removed = 0;
    // Leaves first so parent/child links stay valid while walking.
    for (auto it = subtree.rbegin(); it != subtree.rend(); ++it) {
        Capability *cap = *it;
        if (keep_root && cap == root)
            continue;
        on_revoke(*cap);
        if (cap->parent) {
            auto &sib = cap->parent->children;
            sib.erase(std::remove(sib.begin(), sib.end(), cap),
                      sib.end());
        }
        tableOf(cap->owner()).caps_.erase(cap->sel());
        removed++;
    }
    if (keep_root)
        root->children.clear();
    return removed;
}

void
CapMgr::dropTable(dtu::ActId act,
                  const std::function<void(Capability &)> &on_revoke)
{
    auto it = tables_.find(act);
    if (it == tables_.end())
        return;
    // Revoke every root (and thereby all delegated descendants).
    std::vector<CapSel> roots;
    for (auto &[sel, cap] : it->second->caps_)
        if (!cap->parent)
            roots.push_back(sel);
    for (CapSel sel : roots)
        revoke(act, sel, on_revoke, false);
    tables_.erase(act);
}

} // namespace m3v::os
