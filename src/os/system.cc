#include "os/system.h"

#include <cstdlib>
#include <set>
#include <utility>

#include "sim/log.h"

namespace m3v::os {

using dtu::ActId;
using dtu::Endpoint;
using dtu::EpId;
using dtu::kPermRW;

namespace {

constexpr ActId kCtrlAct = 1;

/** First endpoint available to applications (0-3 PMP, 4 TileMux
 *  sidecall, 5 reserved). */
constexpr EpId kFirstUserEp = 6;

sim::Task
appWrapper(MuxEnv *env, std::function<sim::Task(MuxEnv &)> body)
{
    co_await body(*env);
    if (env->activity().state() != core::Activity::State::Dead)
        co_await env->exit();
}

} // namespace

System::System(sim::EventQueue &eq, SystemParams params)
    : eq_(eq), params_(std::move(params))
{
    // Resolve the controller shard count first: it adds tiles to the
    // platform. Explicit param > M3V_CTRL_SHARDS env > automatic.
    unsigned shards = params_.ctrlShards;
    if (shards == 0) {
        if (const char *e = std::getenv("M3V_CTRL_SHARDS")) {
            int v = std::atoi(e);
            if (v > 0)
                shards = static_cast<unsigned>(v);
        }
    }
    if (shards == 0)
        shards = autoCtrlShards(params_.userTiles);
    shards = std::min(std::max(1u, shards), params_.userTiles);
    shardMap_ = ShardMap{shards, params_.userTiles};

    // Platform bring-up sizes the fabric before building it: when the
    // full tile complement would over-subscribe the configured mesh,
    // grow it to the forTiles() geometry (timing parameters kept)
    // rather than hit the typed config error at finalize().
    unsigned total = params_.userTiles + 1 + params_.memTiles +
                     params_.accelTiles + (shards - 1);
    std::size_t cap =
        static_cast<std::size_t>(params_.noc.meshCols) *
        params_.noc.meshRows * params_.noc.maxTilesPerRouter;
    if (params_.autoMesh && total > cap) {
        noc::NocParams grown = noc::NocParams::forTiles(total);
        grown.freqHz = params_.noc.freqHz;
        grown.linkBytesPerCycle = params_.noc.linkBytesPerCycle;
        grown.pipelineCycles = params_.noc.pipelineCycles;
        grown.portQueuePackets = params_.noc.portQueuePackets;
        grown.headerBytes = params_.noc.headerBytes;
        grown.wraparound = params_.noc.wraparound;
        grown.maxTilesPerRouter = params_.noc.maxTilesPerRouter;
        grown.faults = params_.noc.faults;
        params_.noc = grown;
    }
    noc_ = std::make_unique<noc::Noc>(eq, params_.noc);

    // User tiles: core + vDTU + TileMux.
    for (unsigned i = 0; i < params_.userTiles; i++) {
        auto tname = "tile" + std::to_string(i);
        auto mit = params_.tileModels.find(i);
        const tile::CoreModel &model = mit != params_.tileModels.end()
                                           ? mit->second
                                           : params_.userModel;
        cores_.push_back(std::make_unique<tile::Core>(
            eq, tname + ".core", model, userTile(i)));
        vdtus_.push_back(std::make_unique<core::VDtu>(
            eq, tname + ".vdtu", *noc_, userTile(i),
            model.freqHz, params_.vdtu, params_.dtuTiming));
        muxes_.push_back(std::make_unique<core::TileMux>(
            eq, tname + ".tilemux", *cores_[i], *vdtus_[i], params_.mux));
    }

    // Controller tile: bare core + plain DTU.
    ctrlCore_ = std::make_unique<tile::Core>(
        eq, "ctrl.core", params_.ctrlModel, ctrlTile());
    ctrlDtu_ = std::make_unique<dtu::Dtu>(eq, "ctrl.dtu", *noc_,
                                          ctrlTile(),
                                          params_.ctrlModel.freqHz,
                                          params_.dtuTiming);

    // Memory tiles.
    for (unsigned i = 0; i < params_.memTiles; i++) {
        memTiles_.push_back(std::make_unique<dtu::MemoryTile>(
            eq, "mem" + std::to_string(i), *noc_, memTileId(i),
            params_.dram));
    }

    // Accelerator tiles (not multiplexed; plain DTUs).
    for (unsigned i = 0; i < params_.accelTiles; i++) {
        accels_.push_back(std::make_unique<AccelTile>(
            eq, "accel" + std::to_string(i), *noc_, accelTileId(i),
            params_.accel));
    }

    // Extra controller tiles for shards 1..n-1 (appended after the
    // accelerators so every pre-shard tile id is unchanged).
    for (unsigned s = 1; s < shards; s++) {
        auto cname = "ctrl" + std::to_string(s);
        xCores_.push_back(std::make_unique<tile::Core>(
            eq, cname + ".core", params_.ctrlModel, ctrlTileOf(s)));
        xDtus_.push_back(std::make_unique<dtu::Dtu>(
            eq, cname + ".dtu", *noc_, ctrlTileOf(s),
            params_.ctrlModel.freqHz, params_.dtuTiming));
    }

    noc_->finalize();

    // The shared tile-to-DTU table every controller shard uses for
    // privileged cleanup (endpoint sweeps, credit reclaim).
    for (unsigned i = 0; i < params_.userTiles; i++)
        dtuMap_.set(userTile(i), vdtus_[i].get());
    dtuMap_.set(ctrlTile(), ctrlDtu_.get());
    for (unsigned s = 1; s < shards; s++)
        dtuMap_.set(ctrlTileOf(s), xDtus_[s - 1].get());

    // Per-tile PMP windows out of memory tile 0 (section 4.3: the
    // first endpoint is a per-tile region, set up by the controller).
    nextEp_.assign(params_.userTiles, kFirstUserEp);
    pmpBump_.assign(params_.userTiles, 0);
    for (unsigned i = 0; i < params_.userTiles; i++) {
        dtu::PhysAddr base =
            memTiles_[0]->alloc(params_.perTilePmp, dtu::kPageSize);
        vdtus_[i]->configEp(
            0, Endpoint::makeMem(dtu::kTileMuxAct, memTileId(0), base,
                                 params_.perTilePmp, kPermRW));
    }

    // Controllers: per shard a syscall receive EP + bare environment
    // + main loop. Shard 0 keeps the pre-shard names ("ctrl.core",
    // "ctrl", metric prefix "ctrl.kernel.") so single-controller
    // platforms are byte-identical to the unsharded system.
    ctrlThread_ = std::make_unique<tile::Thread>(*ctrlCore_,
                                                 "ctrl.thread", 0);
    ctrlEnv_ = std::make_unique<BareEnv>("ctrl", *ctrlThread_,
                                         *ctrlDtu_, kCtrlAct);
    ctrlDtu_->configEp(params_.ctrl.syscallRep,
                       Endpoint::makeRecv(kCtrlAct, 128, 64));
    controller_ = std::make_unique<Controller>(
        *ctrlEnv_, caps_, dtuMap_, params_.ctrl, shardMap_, 0);
    for (unsigned s = 1; s < shards; s++) {
        auto cname = "ctrl" + std::to_string(s);
        xThreads_.push_back(std::make_unique<tile::Thread>(
            *xCores_[s - 1], cname + ".thread", 0));
        xEnvs_.push_back(std::make_unique<BareEnv>(
            cname, *xThreads_[s - 1], *xDtus_[s - 1], kCtrlAct));
        xDtus_[s - 1]->configEp(params_.ctrl.syscallRep,
                                Endpoint::makeRecv(kCtrlAct, 128,
                                                   64));
        xCaps_.push_back(std::make_unique<CapMgr>(s));
        xCtrls_.push_back(std::make_unique<Controller>(
            *xEnvs_[s - 1], *xCaps_[s - 1], dtuMap_, params_.ctrl,
            shardMap_, s));
    }

    // Sidecall channels: each quadrant's controller -> its TileMux
    // instances (EP 4 on the user tile) with replies on controller
    // EP 5. The per-tile send EP index restarts at each quadrant, so
    // the single-shard layout is exactly the pre-shard one.
    constexpr EpId kSidecallRep = 4;   // on user tiles
    constexpr EpId kCtrlSideReply = 5; // on the controller tiles
    constexpr EpId kCtrlFirstSideSep = 8;
    for (unsigned s = 0; s < shards; s++) {
        dtu::Dtu *d = s == 0 ? ctrlDtu_.get() : xDtus_[s - 1].get();
        d->configEp(kCtrlSideReply,
                    Endpoint::makeRecv(kCtrlAct, 64, 8));
        controllerOf(s).setSidecallReplyEp(kCtrlSideReply);
    }
    for (unsigned i = 0; i < params_.userTiles; i++) {
        unsigned s = shardMap_.shardOfTile(userTile(i));
        dtu::Dtu *d = s == 0 ? ctrlDtu_.get() : xDtus_[s - 1].get();
        EpId sep = static_cast<EpId>(
            kCtrlFirstSideSep + (i - shardMap_.quadrantBegin(s)));
        vdtus_[i]->configEp(kSidecallRep,
                            Endpoint::makeRecv(dtu::kTileMuxAct, 64,
                                               4));
        d->configEp(sep, Endpoint::makeSend(kCtrlAct, userTile(i),
                                            kSidecallRep, i, 2));
        controllerOf(s).setSidecallChannel(userTile(i), sep);

        core::TileMux *mux = muxes_[i].get();
        core::VDtu *vd = vdtus_[i].get();
        Controller *ctl = &controllerOf(s);
        // Watchdog/crash upcall: the tile's owning controller shard
        // reaps the dead activity's endpoints, caps, and credits.
        mux->setCrashHandler([ctl](ActId id) {
            ctl->reapActivity(id);
        });
        mux->setSidecallEp(
            kSidecallRep,
            [mux, vd](const dtu::Message &msg, int slot) {
                SidecallReq req = podFrom<SidecallReq>(msg.payload);
                SidecallResp resp;
                switch (req.op) {
                  case SidecallReq::Op::MapPage:
                    mux->mapPage(req.act, req.virt, req.phys,
                                 static_cast<std::uint8_t>(
                                     req.perms));
                    break;
                  case SidecallReq::Op::KillAct:
                    mux->killActivity(req.act);
                    break;
                }
                vd->cmdReply(dtu::kTileMuxAct, 4, slot, 0,
                             podBytes(resp), [](dtu::Error) {});
            });
    }

    // Controller-to-controller channels (sharded platforms only):
    // per shard a request ring (EP 6), a reply ring (EP 7), and one
    // send EP per peer after the sidecall send EPs. Peer credits are
    // sized so all senders together cannot overrun the ring.
    if (shards > 1) {
        const EpId req_rep = params_.ctrl.ctrlReqRep;
        const EpId rep_rep = params_.ctrl.ctrlReplyRep;
        unsigned pcred = std::min<unsigned>(
            8, std::max<unsigned>(2, 64 / (shards - 1)));
        for (unsigned s = 0; s < shards; s++) {
            dtu::Dtu *d =
                s == 0 ? ctrlDtu_.get() : xDtus_[s - 1].get();
            d->configEp(req_rep,
                        Endpoint::makeRecv(kCtrlAct, 512, 64));
            d->configEp(rep_rep,
                        Endpoint::makeRecv(kCtrlAct, 512, 16));
        }
        for (unsigned s = 0; s < shards; s++) {
            dtu::Dtu *d =
                s == 0 ? ctrlDtu_.get() : xDtus_[s - 1].get();
            unsigned quad = shardMap_.quadrantEnd(s) -
                            shardMap_.quadrantBegin(s);
            for (unsigned p = 0; p < shards; p++) {
                if (p == s)
                    continue;
                EpId sep = static_cast<EpId>(kCtrlFirstSideSep +
                                             quad + p);
                if (sep >= dtu::kNumEps)
                    sim::fatal("System: controller %u out of "
                               "endpoints for peer channels",
                               s);
                d->configEp(sep,
                            Endpoint::makeSend(kCtrlAct,
                                               ctrlTileOf(p),
                                               req_rep, s, pcred,
                                               512));
                controllerOf(s).setPeerChannel(p, sep);
            }
        }
    }

    ctrlThread_->start(controller_->run());
    ctrlCore_->dispatch(ctrlThread_.get());
    for (unsigned s = 1; s < shards; s++) {
        xThreads_[s - 1]->start(xCtrls_[s - 1]->run());
        xCores_[s - 1]->dispatch(xThreads_[s - 1].get());
    }
}

System::~System() = default;

System::App *
System::createApp(unsigned tile_idx, const std::string &name,
                  std::size_t footprint)
{
    if (tile_idx >= params_.userTiles)
        sim::fatal("System: tile %u out of range", tile_idx);
    ActId id = nextAct_++;
    auto app = std::make_unique<App>();
    app->tileIdx = tile_idx;
    app->act = muxes_[tile_idx]->createActivity(id, name, footprint);
    app->env = std::make_unique<MuxEnv>(name, *app->act,
                                        *vdtus_[tile_idx]);

    // Message buffer page.
    app->env->setMsgBuf(mapPages(app.get(), 1, kPermRW));

    // Syscall channel: send gate to the tile's owning controller
    // shard + reply EP.
    unsigned shard = shardMap_.shardOfTile(userTile(tile_idx));
    EpId sep = allocEp(tile_idx);
    EpId rep = allocEp(tile_idx);
    vdtus_[tile_idx]->configEp(
        sep, Endpoint::makeSend(id, ctrlTileOf(shard),
                                params_.ctrl.syscallRep, id, 1));
    vdtus_[tile_idx]->configEp(rep, Endpoint::makeRecv(id, 128, 2));
    app->env->setSyscallGates(sep, rep);

    controllerOf(shard).registerActivity(id, userTile(tile_idx));

    App *ptr = app.get();
    apps_.push_back(std::move(app));
    return ptr;
}

void
System::start(App *app, std::function<sim::Task(MuxEnv &)> body)
{
    muxes_[app->tileIdx]->startActivity(
        app->act, appWrapper(app->env.get(), std::move(body)));
}

EpId
System::allocEp(unsigned tile_idx)
{
    EpId ep = nextEp_.at(tile_idx)++;
    if (ep >= dtu::kNumEps)
        sim::fatal("System: tile %u out of endpoints", tile_idx);
    return ep;
}

System::RgateHandle
System::makeRgate(App *app, std::size_t slot_size, std::size_t slots)
{
    RgateHandle h;
    h.ep = allocEp(app->tileIdx);
    vdtus_[app->tileIdx]->configEp(
        h.ep,
        Endpoint::makeRecv(app->act->id(), slot_size, slots));
    RgateObj r;
    r.tile = userTile(app->tileIdx);
    r.act = app->act->id();
    r.ep = h.ep;
    r.slotSize = slot_size;
    r.slots = slots;
    unsigned s = shardMap_.shardOfTile(userTile(app->tileIdx));
    h.sel = controllerOf(s).grantRgate(app->act->id(), r);
    if (Capability *cap =
            capsOf(s).tableOf(app->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(app->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

System::SgateHandle
System::makeSgate(App *sender, App *recv_owner, EpId rep,
                  std::uint64_t label, std::uint32_t credits,
                  std::size_t max_msg)
{
    SgateHandle h;
    h.ep = allocEp(sender->tileIdx);
    vdtus_[sender->tileIdx]->configEp(
        h.ep, Endpoint::makeSend(sender->act->id(),
                                 userTile(recv_owner->tileIdx), rep,
                                 label, credits, max_msg));
    SgateObj s;
    s.target.tile = userTile(recv_owner->tileIdx);
    s.target.act = recv_owner->act->id();
    s.target.ep = rep;
    s.label = label;
    s.credits = credits;
    unsigned sh = shardMap_.shardOfTile(userTile(sender->tileIdx));
    h.sel = controllerOf(sh).grantSgate(sender->act->id(), s);
    if (Capability *cap =
            capsOf(sh).tableOf(sender->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(sender->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

System::MgateHandle
System::makeMgate(App *app, std::size_t size, std::uint8_t perms,
                  unsigned mem_idx)
{
    MgateHandle h;
    h.addr = memTiles_.at(mem_idx)->alloc(size, dtu::kPageSize);
    h.size = size;
    h.memIdx = mem_idx;
    h.ep = allocEp(app->tileIdx);
    vdtus_[app->tileIdx]->configEp(
        h.ep, Endpoint::makeMem(app->act->id(), memTileId(mem_idx),
                                h.addr, size, perms));
    unsigned s = shardMap_.shardOfTile(userTile(app->tileIdx));
    h.sel = controllerOf(s).grantMem(
        app->act->id(),
        MemObj{memTileId(mem_idx), h.addr, size, perms});
    if (Capability *cap =
            capsOf(s).tableOf(app->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(app->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

CapSel
System::grantActCap(App *holder, App *target)
{
    unsigned s = shardMap_.shardOfTile(userTile(holder->tileIdx));
    return controllerOf(s).grantActivity(
        holder->act->id(),
        ActObj{target->act->id(), userTile(target->tileIdx)});
}

dtu::PhysAddr
System::allocTilePhys(unsigned tile_idx, std::size_t pages)
{
    dtu::PhysAddr pa = pmpBump_.at(tile_idx);
    pmpBump_[tile_idx] += pages * dtu::kPageSize;
    if (pmpBump_[tile_idx] > params_.perTilePmp)
        sim::fatal("System: tile %u PMP window exhausted", tile_idx);
    return pa;
}

void
registerControllerInvariants(sim::Invariants &inv, System &sys)
{
    // Selector disjointness: shard s only mints selectors carrying s
    // in the shard byte, and an activity's table lives on exactly one
    // shard (its home quadrant's).
    inv.addCheck(
        "ctrl.shard.selectors",
        [&sys](sim::Invariants &iv) {
            std::set<dtu::ActId> seen;
            for (unsigned s = 0; s < sys.ctrlShards(); s++) {
                sys.capsOf(s).forEachTable([&](CapTable &t) {
                    if (!seen.insert(t.owner()).second) {
                        iv.fail("activity %u owns capability tables "
                                "on two controller shards",
                                t.owner());
                    }
                    t.forEachCap([&](Capability &c) {
                        if (selShard(c.sel()) != s) {
                            iv.fail("shard %u holds cap sel 0x%x "
                                    "(shard byte %u)",
                                    s, c.sel(), selShard(c.sel()));
                        }
                    });
                });
            }
        },
        sim::Invariants::When::QuiescentOnly);

    // Cross-shard message conservation: at quiescence every RPC was
    // acked or charged to a timeout, every one-way notification that
    // left a controller was handled by its peer, and no obtain is
    // still waiting for its capability.
    inv.addCheck(
        "ctrl.shard.messages",
        [&sys](sim::Invariants &iv) {
            std::uint64_t oneway_sent = 0, oneway_handled = 0;
            for (unsigned s = 0; s < sys.ctrlShards(); s++) {
                Controller &c = sys.controllerOf(s);
                if (c.xshardSent() !=
                    c.xshardAcked() + c.xshardTimeouts()) {
                    iv.fail("shard %u: %llu cross-shard calls sent "
                            "but %llu acked + %llu timed out",
                            s,
                            static_cast<unsigned long long>(
                                c.xshardSent()),
                            static_cast<unsigned long long>(
                                c.xshardAcked()),
                            static_cast<unsigned long long>(
                                c.xshardTimeouts()));
                }
                if (c.pendingObtains() != 0) {
                    iv.fail("shard %u: %zu obtains still pending at "
                            "quiescence",
                            s, c.pendingObtains());
                }
                oneway_sent += c.onewaySent();
                oneway_handled += c.onewayHandled();
            }
            if (oneway_sent != oneway_handled) {
                iv.fail("%llu one-way notifications sent but %llu "
                        "handled",
                        static_cast<unsigned long long>(oneway_sent),
                        static_cast<unsigned long long>(
                            oneway_handled));
            }
        },
        sim::Invariants::When::QuiescentOnly);

    // Share-record pairing: a capability is reachable from another
    // shard only through a matched (remoteChildren, remoteParent)
    // record pair. An abandoned call (timeout) or dropped one-way
    // legitimately orphans one side, so the check stands down when
    // any shard saw either.
    inv.addCheck(
        "ctrl.shard.shares",
        [&sys](sim::Invariants &iv) {
            for (unsigned s = 0; s < sys.ctrlShards(); s++) {
                Controller &c = sys.controllerOf(s);
                if (c.xshardTimeouts() != 0 ||
                    c.onewayDropped() != 0)
                    return;
            }
            for (unsigned s = 0; s < sys.ctrlShards(); s++) {
                sys.capsOf(s).forEachTable([&](CapTable &t) {
                    t.forEachCap([&](Capability &c) {
                        for (const RemoteRef &r : c.remoteChildren) {
                            CapTable *pt = sys.capsOf(r.shard)
                                               .tableIfExists(r.act);
                            Capability *rc =
                                pt ? pt->get(r.sel) : nullptr;
                            RemoteRef back{
                                static_cast<std::uint8_t>(s),
                                t.owner(), c.sel()};
                            if (!rc || !rc->hasRemoteParent ||
                                !(rc->remoteParent == back)) {
                                iv.fail(
                                    "shard %u cap (%u, 0x%x) has a "
                                    "remote child record for shard "
                                    "%u (%u, 0x%x) with no matching "
                                    "remote parent",
                                    s, t.owner(), c.sel(), r.shard,
                                    r.act, r.sel);
                            }
                        }
                        if (c.hasRemoteParent) {
                            const RemoteRef &p = c.remoteParent;
                            CapTable *pt = sys.capsOf(p.shard)
                                               .tableIfExists(p.act);
                            Capability *pc =
                                pt ? pt->get(p.sel) : nullptr;
                            RemoteRef self{
                                static_cast<std::uint8_t>(s),
                                t.owner(), c.sel()};
                            bool linked = false;
                            if (pc) {
                                for (const RemoteRef &r :
                                     pc->remoteChildren)
                                    if (r == self)
                                        linked = true;
                            }
                            if (!linked) {
                                iv.fail(
                                    "shard %u cap (%u, 0x%x) claims "
                                    "a remote parent on shard %u "
                                    "(%u, 0x%x) that does not record "
                                    "it",
                                    s, t.owner(), c.sel(), p.shard,
                                    p.act, p.sel);
                            }
                        }
                    });
                });
            }
        },
        sim::Invariants::When::QuiescentOnly);
}

dtu::VirtAddr
System::mapPages(App *app, std::size_t n, std::uint8_t perms)
{
    dtu::VirtAddr va = app->act->addrSpace().allocPages(n);
    for (std::size_t i = 0; i < n; i++) {
        dtu::PhysAddr pa = allocTilePhys(app->tileIdx, 1);
        muxes_[app->tileIdx]->mapPage(app->act->id(),
                                      va + i * dtu::kPageSize, pa,
                                      perms);
    }
    return va;
}

} // namespace m3v::os
