#include "os/system.h"

#include <utility>

#include "sim/log.h"

namespace m3v::os {

using dtu::ActId;
using dtu::Endpoint;
using dtu::EpId;
using dtu::kPermRW;

namespace {

constexpr ActId kCtrlAct = 1;

/** First endpoint available to applications (0-3 PMP, 4 TileMux
 *  sidecall, 5 reserved). */
constexpr EpId kFirstUserEp = 6;

sim::Task
appWrapper(MuxEnv *env, std::function<sim::Task(MuxEnv &)> body)
{
    co_await body(*env);
    if (env->activity().state() != core::Activity::State::Dead)
        co_await env->exit();
}

} // namespace

System::System(sim::EventQueue &eq, SystemParams params)
    : eq_(eq), params_(std::move(params))
{
    // Platform bring-up sizes the fabric before building it: when the
    // full tile complement would over-subscribe the configured mesh,
    // grow it to the forTiles() geometry (timing parameters kept)
    // rather than hit the typed config error at finalize().
    unsigned total = params_.userTiles + 1 + params_.memTiles +
                     params_.accelTiles;
    std::size_t cap =
        static_cast<std::size_t>(params_.noc.meshCols) *
        params_.noc.meshRows * params_.noc.maxTilesPerRouter;
    if (params_.autoMesh && total > cap) {
        noc::NocParams grown = noc::NocParams::forTiles(total);
        grown.freqHz = params_.noc.freqHz;
        grown.linkBytesPerCycle = params_.noc.linkBytesPerCycle;
        grown.pipelineCycles = params_.noc.pipelineCycles;
        grown.portQueuePackets = params_.noc.portQueuePackets;
        grown.headerBytes = params_.noc.headerBytes;
        grown.wraparound = params_.noc.wraparound;
        grown.maxTilesPerRouter = params_.noc.maxTilesPerRouter;
        grown.faults = params_.noc.faults;
        params_.noc = grown;
    }
    noc_ = std::make_unique<noc::Noc>(eq, params_.noc);

    // User tiles: core + vDTU + TileMux.
    for (unsigned i = 0; i < params_.userTiles; i++) {
        auto tname = "tile" + std::to_string(i);
        auto mit = params_.tileModels.find(i);
        const tile::CoreModel &model = mit != params_.tileModels.end()
                                           ? mit->second
                                           : params_.userModel;
        cores_.push_back(std::make_unique<tile::Core>(
            eq, tname + ".core", model, userTile(i)));
        vdtus_.push_back(std::make_unique<core::VDtu>(
            eq, tname + ".vdtu", *noc_, userTile(i),
            model.freqHz, params_.vdtu, params_.dtuTiming));
        muxes_.push_back(std::make_unique<core::TileMux>(
            eq, tname + ".tilemux", *cores_[i], *vdtus_[i], params_.mux));
    }

    // Controller tile: bare core + plain DTU.
    ctrlCore_ = std::make_unique<tile::Core>(
        eq, "ctrl.core", params_.ctrlModel, ctrlTile());
    ctrlDtu_ = std::make_unique<dtu::Dtu>(eq, "ctrl.dtu", *noc_,
                                          ctrlTile(),
                                          params_.ctrlModel.freqHz,
                                          params_.dtuTiming);

    // Memory tiles.
    for (unsigned i = 0; i < params_.memTiles; i++) {
        memTiles_.push_back(std::make_unique<dtu::MemoryTile>(
            eq, "mem" + std::to_string(i), *noc_, memTileId(i),
            params_.dram));
    }

    // Accelerator tiles (not multiplexed; plain DTUs).
    for (unsigned i = 0; i < params_.accelTiles; i++) {
        accels_.push_back(std::make_unique<AccelTile>(
            eq, "accel" + std::to_string(i), *noc_, accelTileId(i),
            params_.accel));
    }

    noc_->finalize();

    // Per-tile PMP windows out of memory tile 0 (section 4.3: the
    // first endpoint is a per-tile region, set up by the controller).
    nextEp_.assign(params_.userTiles, kFirstUserEp);
    pmpBump_.assign(params_.userTiles, 0);
    for (unsigned i = 0; i < params_.userTiles; i++) {
        dtu::PhysAddr base =
            memTiles_[0]->alloc(params_.perTilePmp, dtu::kPageSize);
        vdtus_[i]->configEp(
            0, Endpoint::makeMem(dtu::kTileMuxAct, memTileId(0), base,
                                 params_.perTilePmp, kPermRW));
    }

    // Controller: syscall receive EP + bare environment + main loop.
    ctrlThread_ = std::make_unique<tile::Thread>(*ctrlCore_,
                                                 "ctrl.thread", 0);
    ctrlEnv_ = std::make_unique<BareEnv>("ctrl", *ctrlThread_,
                                         *ctrlDtu_, kCtrlAct);
    ctrlDtu_->configEp(params_.ctrl.syscallRep,
                       Endpoint::makeRecv(kCtrlAct, 128, 64));
    controller_ = std::make_unique<Controller>(
        *ctrlEnv_, caps_,
        [this](noc::TileId t) -> dtu::Dtu * {
            if (t < params_.userTiles)
                return vdtus_[t].get();
            if (t == ctrlTile())
                return ctrlDtu_.get();
            return nullptr;
        },
        params_.ctrl);
    // Sidecall channels: controller -> each TileMux (EP 4 on the user
    // tile) with replies on controller EP 5.
    constexpr EpId kSidecallRep = 4;   // on user tiles
    constexpr EpId kCtrlSideReply = 5; // on the controller tile
    constexpr EpId kCtrlFirstSideSep = 8;
    ctrlDtu_->configEp(kCtrlSideReply,
                       Endpoint::makeRecv(kCtrlAct, 64, 8));
    controller_->setSidecallReplyEp(kCtrlSideReply);
    for (unsigned i = 0; i < params_.userTiles; i++) {
        EpId sep = static_cast<EpId>(kCtrlFirstSideSep + i);
        vdtus_[i]->configEp(kSidecallRep,
                            Endpoint::makeRecv(dtu::kTileMuxAct, 64,
                                               4));
        ctrlDtu_->configEp(
            sep, Endpoint::makeSend(kCtrlAct, userTile(i),
                                    kSidecallRep, i, 2));
        controller_->setSidecallChannel(userTile(i), sep);

        core::TileMux *mux = muxes_[i].get();
        core::VDtu *vd = vdtus_[i].get();
        // Watchdog/crash upcall: the controller reaps the dead
        // activity's endpoints, capabilities, and credits.
        mux->setCrashHandler([this](ActId id) {
            controller_->reapActivity(id);
        });
        mux->setSidecallEp(
            kSidecallRep,
            [mux, vd](const dtu::Message &msg, int slot) {
                SidecallReq req = podFrom<SidecallReq>(msg.payload);
                SidecallResp resp;
                switch (req.op) {
                  case SidecallReq::Op::MapPage:
                    mux->mapPage(req.act, req.virt, req.phys,
                                 static_cast<std::uint8_t>(
                                     req.perms));
                    break;
                  case SidecallReq::Op::KillAct:
                    mux->killActivity(req.act);
                    break;
                }
                vd->cmdReply(dtu::kTileMuxAct, 4, slot, 0,
                             podBytes(resp), [](dtu::Error) {});
            });
    }

    ctrlThread_->start(controller_->run());
    ctrlCore_->dispatch(ctrlThread_.get());
}

System::~System() = default;

System::App *
System::createApp(unsigned tile_idx, const std::string &name,
                  std::size_t footprint)
{
    if (tile_idx >= params_.userTiles)
        sim::fatal("System: tile %u out of range", tile_idx);
    ActId id = nextAct_++;
    auto app = std::make_unique<App>();
    app->tileIdx = tile_idx;
    app->act = muxes_[tile_idx]->createActivity(id, name, footprint);
    app->env = std::make_unique<MuxEnv>(name, *app->act,
                                        *vdtus_[tile_idx]);

    // Message buffer page.
    app->env->setMsgBuf(mapPages(app.get(), 1, kPermRW));

    // Syscall channel: send gate to the controller + reply EP.
    EpId sep = allocEp(tile_idx);
    EpId rep = allocEp(tile_idx);
    vdtus_[tile_idx]->configEp(
        sep, Endpoint::makeSend(id, ctrlTile(),
                                params_.ctrl.syscallRep, id, 1));
    vdtus_[tile_idx]->configEp(rep, Endpoint::makeRecv(id, 128, 2));
    app->env->setSyscallGates(sep, rep);

    controller_->registerActivity(id, userTile(tile_idx));

    App *ptr = app.get();
    apps_.push_back(std::move(app));
    return ptr;
}

void
System::start(App *app, std::function<sim::Task(MuxEnv &)> body)
{
    muxes_[app->tileIdx]->startActivity(
        app->act, appWrapper(app->env.get(), std::move(body)));
}

EpId
System::allocEp(unsigned tile_idx)
{
    EpId ep = nextEp_.at(tile_idx)++;
    if (ep >= dtu::kNumEps)
        sim::fatal("System: tile %u out of endpoints", tile_idx);
    return ep;
}

System::RgateHandle
System::makeRgate(App *app, std::size_t slot_size, std::size_t slots)
{
    RgateHandle h;
    h.ep = allocEp(app->tileIdx);
    vdtus_[app->tileIdx]->configEp(
        h.ep,
        Endpoint::makeRecv(app->act->id(), slot_size, slots));
    RgateObj r;
    r.tile = userTile(app->tileIdx);
    r.act = app->act->id();
    r.ep = h.ep;
    r.slotSize = slot_size;
    r.slots = slots;
    h.sel = controller_->grantRgate(app->act->id(), r);
    if (Capability *cap = caps_.tableOf(app->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(app->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

System::SgateHandle
System::makeSgate(App *sender, App *recv_owner, EpId rep,
                  std::uint64_t label, std::uint32_t credits,
                  std::size_t max_msg)
{
    SgateHandle h;
    h.ep = allocEp(sender->tileIdx);
    vdtus_[sender->tileIdx]->configEp(
        h.ep, Endpoint::makeSend(sender->act->id(),
                                 userTile(recv_owner->tileIdx), rep,
                                 label, credits, max_msg));
    SgateObj s;
    s.target.tile = userTile(recv_owner->tileIdx);
    s.target.act = recv_owner->act->id();
    s.target.ep = rep;
    s.label = label;
    s.credits = credits;
    h.sel = controller_->grantSgate(sender->act->id(), s);
    if (Capability *cap =
            caps_.tableOf(sender->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(sender->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

System::MgateHandle
System::makeMgate(App *app, std::size_t size, std::uint8_t perms,
                  unsigned mem_idx)
{
    MgateHandle h;
    h.addr = memTiles_.at(mem_idx)->alloc(size, dtu::kPageSize);
    h.size = size;
    h.memIdx = mem_idx;
    h.ep = allocEp(app->tileIdx);
    vdtus_[app->tileIdx]->configEp(
        h.ep, Endpoint::makeMem(app->act->id(), memTileId(mem_idx),
                                h.addr, size, perms));
    h.sel = controller_->grantMem(
        app->act->id(),
        MemObj{memTileId(mem_idx), h.addr, size, perms});
    if (Capability *cap = caps_.tableOf(app->act->id()).get(h.sel)) {
        cap->activated = true;
        cap->actTile = userTile(app->tileIdx);
        cap->actEp = h.ep;
    }
    return h;
}

CapSel
System::grantActCap(App *holder, App *target)
{
    return controller_->grantActivity(
        holder->act->id(),
        ActObj{target->act->id(), userTile(target->tileIdx)});
}

dtu::PhysAddr
System::allocTilePhys(unsigned tile_idx, std::size_t pages)
{
    dtu::PhysAddr pa = pmpBump_.at(tile_idx);
    pmpBump_[tile_idx] += pages * dtu::kPageSize;
    if (pmpBump_[tile_idx] > params_.perTilePmp)
        sim::fatal("System: tile %u PMP window exhausted", tile_idx);
    return pa;
}

dtu::VirtAddr
System::mapPages(App *app, std::size_t n, std::uint8_t perms)
{
    dtu::VirtAddr va = app->act->addrSpace().allocPages(n);
    for (std::size_t i = 0; i < n; i++) {
        dtu::PhysAddr pa = allocTilePhys(app->tileIdx, 1);
        muxes_[app->tileIdx]->mapPage(app->act->id(),
                                      va + i * dtu::kPageSize, pa,
                                      perms);
    }
    return va;
}

} // namespace m3v::os
