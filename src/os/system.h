/**
 * @file
 * The M3v system builder: assembles the platform of Figure 4 (user
 * tiles with cores + vDTUs + TileMux, a controller tile, memory
 * tiles, all connected by the star-mesh NoC) and provides boot-time
 * setup of activities, capabilities, and communication channels.
 *
 * Boot-time setup (activity creation, initial channels) is untimed —
 * the paper's benchmarks all measure warm systems after setup. All
 * *runtime* interactions (system calls, sidecalls, endpoint changes)
 * go through the simulated protocols with real costs.
 */

#ifndef M3VSIM_OS_SYSTEM_H_
#define M3VSIM_OS_SYSTEM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/tilemux.h"
#include "core/vdtu.h"
#include "dtu/memory_tile.h"
#include "noc/noc.h"
#include "os/accel.h"
#include "os/controller.h"
#include "os/env.h"
#include "sim/invariants.h"
#include "tile/core.h"

namespace m3v::os {

/** Platform configuration. */
struct SystemParams
{
    /** Number of multiplexed general-purpose tiles. */
    unsigned userTiles = 8;

    tile::CoreModel userModel = tile::CoreModel::boom();
    tile::CoreModel ctrlModel = tile::CoreModel::rocket();

    /** Per-tile overrides of userModel (e.g. a Rocket scanner tile
     *  next to BOOM tiles, section 6.5.1). */
    std::map<unsigned, tile::CoreModel> tileModels;

    unsigned memTiles = 2;

    /** Fixed-function accelerator tiles (sections 2.2/8). */
    unsigned accelTiles = 0;
    AccelParams accel{};

    noc::NocParams noc{};

    /**
     * Controller shard count (DESIGN.md section 4i): 0 = automatic —
     * the M3V_CTRL_SHARDS environment variable if set, otherwise
     * autoCtrlShards() (1 below 64 user tiles, so every paper-sized
     * config keeps the single controller and its byte-identical
     * behavior; 4–16 for 64–1024 tiles). Shards 1..n-1 run on extra
     * controller tiles appended after the accelerator tiles.
     */
    unsigned ctrlShards = 0;

    /**
     * Grow the mesh automatically when the platform's total tile
     * count (user + controller + memory + accelerator) would exceed
     * the configured mesh's capacity (routers * maxTilesPerRouter):
     * the mesh is replaced by NocParams::forTiles(total), keeping
     * every timing parameter. Platforms that fit the configured mesh
     * are untouched, so the paper-sized configs keep their 2x2
     * star-mesh. Disable to make an over-subscribed mesh a hard
     * config error at Noc::finalize() instead.
     */
    bool autoMesh = true;

    tile::DramParams dram{};
    core::TileMuxParams mux{};
    core::VDtuParams vdtu{};
    /** DTU cost/protocol knobs (applied to every tile's DTU). */
    dtu::DtuTiming dtuTiming{};
    ControllerParams ctrl{};

    /** Per-user-tile PMP window (local memory) in bytes. */
    std::size_t perTilePmp = 4 << 20;
};

/** The assembled M3v platform. */
class System
{
  public:
    /** An application/service activity created at boot. */
    struct App
    {
        unsigned tileIdx = 0;
        core::Activity *act = nullptr;
        std::unique_ptr<MuxEnv> env;
    };

    /** A boot-created receive gate. */
    struct RgateHandle
    {
        dtu::EpId ep = dtu::kInvalidEp;
        CapSel sel = kInvalidSel;
    };

    /** A boot-created send gate. */
    struct SgateHandle
    {
        dtu::EpId ep = dtu::kInvalidEp;
        CapSel sel = kInvalidSel;
    };

    /** A boot-created memory gate with its backing region. */
    struct MgateHandle
    {
        dtu::EpId ep = dtu::kInvalidEp;
        CapSel sel = kInvalidSel;
        dtu::PhysAddr addr = 0;
        std::size_t size = 0;
        unsigned memIdx = 0;
    };

    System(sim::EventQueue &eq, SystemParams params = {});
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    //
    // Topology.
    //

    const SystemParams &params() const { return params_; }
    noc::TileId userTile(unsigned i) const { return i; }
    noc::TileId ctrlTile() const { return params_.userTiles; }
    noc::TileId
    memTileId(unsigned i) const
    {
        return params_.userTiles + 1 + i;
    }
    noc::TileId
    accelTileId(unsigned i) const
    {
        return params_.userTiles + 1 + params_.memTiles + i;
    }

    /** Number of controller shards (resolved at construction). */
    unsigned ctrlShards() const { return shardMap_.shards; }
    const ShardMap &shardMap() const { return shardMap_; }

    /** Tile of controller shard @p s (shard 0 is ctrlTile()). */
    noc::TileId
    ctrlTileOf(unsigned s) const
    {
        if (s == 0)
            return ctrlTile();
        return params_.userTiles + 1 + params_.memTiles +
               params_.accelTiles + (s - 1);
    }

    noc::Noc &fabric() { return *noc_; }
    tile::Core &core(unsigned i) { return *cores_[i]; }
    core::VDtu &vdtu(unsigned i) { return *vdtus_[i]; }
    core::TileMux &mux(unsigned i) { return *muxes_[i]; }
    dtu::MemoryTile &memory(unsigned i) { return *memTiles_[i]; }
    AccelTile &accel(unsigned i) { return *accels_[i]; }
    tile::Core &ctrlCore() { return *ctrlCore_; }
    Controller &controller() { return *controller_; }
    CapMgr &caps() { return caps_; }
    sim::EventQueue &eventQueue() { return eq_; }

    /** Controller shard @p s (0 is controller()). */
    Controller &
    controllerOf(unsigned s)
    {
        return s == 0 ? *controller_ : *xCtrls_.at(s - 1);
    }

    /** Capability manager of shard @p s (0 is caps()). */
    CapMgr &
    capsOf(unsigned s)
    {
        return s == 0 ? caps_ : *xCaps_.at(s - 1);
    }

    //
    // Boot-time setup.
    //

    /** Create an app/service activity on user tile @p tile_idx. */
    App *createApp(unsigned tile_idx, const std::string &name,
                   std::size_t footprint = 8 * 1024);

    /** Start an app: the body coroutine runs on its activity. */
    void start(App *app, std::function<sim::Task(MuxEnv &)> body);

    /** Allocate a free endpoint on a user tile. */
    dtu::EpId allocEp(unsigned tile_idx);

    /** Create + activate a receive gate owned by @p app. */
    RgateHandle makeRgate(App *app, std::size_t slot_size = 256,
                          std::size_t slots = 8);

    /** Create + activate a send gate from @p sender to @p rep. */
    SgateHandle makeSgate(App *sender, App *recv_owner, dtu::EpId rep,
                          std::uint64_t label, std::uint32_t credits,
                          std::size_t max_msg = 512);

    /**
     * Allocate a DRAM region and create + activate a memory gate for
     * @p app over it.
     */
    MgateHandle makeMgate(App *app, std::size_t size,
                          std::uint8_t perms, unsigned mem_idx = 0);

    /** Grant @p holder a capability for @p target's activity. */
    CapSel grantActCap(App *holder, App *target);

    /**
     * Map @p n fresh pages into the app's address space (backed by
     * the tile's PMP window); returns the base VA.
     */
    dtu::VirtAddr mapPages(App *app, std::size_t n,
                           std::uint8_t perms);

    /**
     * Allocate physical pages from a tile's PMP window (used by the
     * pager to back heap allocations). Returns the base address.
     */
    dtu::PhysAddr allocTilePhys(unsigned tile_idx, std::size_t pages);

    /** Number of messages the controllers have processed (summed
     *  over all shards; equals the single controller's count on
     *  paper-sized configs). */
    std::uint64_t
    syscalls() const
    {
        std::uint64_t n = controller_->syscallsHandled();
        for (const auto &c : xCtrls_)
            n += c->syscallsHandled();
        return n;
    }

  private:
    sim::EventQueue &eq_;
    SystemParams params_;
    std::unique_ptr<noc::Noc> noc_;
    std::vector<std::unique_ptr<tile::Core>> cores_;
    std::vector<std::unique_ptr<core::VDtu>> vdtus_;
    std::vector<std::unique_ptr<core::TileMux>> muxes_;
    std::vector<std::unique_ptr<dtu::MemoryTile>> memTiles_;
    std::vector<std::unique_ptr<AccelTile>> accels_;

    /** Resolved shard layout and the shared tile-to-DTU table (must
     *  outlive the controllers, which keep a pointer into it). */
    ShardMap shardMap_;
    DtuMap dtuMap_;

    std::unique_ptr<tile::Core> ctrlCore_;
    std::unique_ptr<dtu::Dtu> ctrlDtu_;
    std::unique_ptr<tile::Thread> ctrlThread_;
    std::unique_ptr<BareEnv> ctrlEnv_;
    std::unique_ptr<Controller> controller_;
    CapMgr caps_;

    /** Controller shards 1..n-1 (their tiles, DTUs, managers). */
    std::vector<std::unique_ptr<tile::Core>> xCores_;
    std::vector<std::unique_ptr<dtu::Dtu>> xDtus_;
    std::vector<std::unique_ptr<tile::Thread>> xThreads_;
    std::vector<std::unique_ptr<BareEnv>> xEnvs_;
    std::vector<std::unique_ptr<CapMgr>> xCaps_;
    std::vector<std::unique_ptr<Controller>> xCtrls_;

    dtu::ActId nextAct_ = 2; // 1 is the controller
    std::vector<dtu::EpId> nextEp_;
    /** Per-tile bump pointer inside the PMP window. */
    std::vector<dtu::PhysAddr> pmpBump_;
    std::vector<std::unique_ptr<App>> apps_;
};

/**
 * Register the sharded-controller conservation laws on @p inv
 * (DESIGN.md section 4i), evaluated at quiescence:
 *  - selector disjointness: every capability held by shard s carries
 *    s in its selector's shard byte, and no activity owns tables on
 *    two shards;
 *  - message conservation: every cross-shard request was acked or
 *    timed out, every one-way notification that left a controller was
 *    handled by its peer, and no obtain is left pending;
 *  - share-record pairing: a capability is reachable from another
 *    shard only through a matched (remoteChildren, remoteParent)
 *    record pair (skipped when timeouts/drops occurred — an abandoned
 *    call legitimately orphans one side).
 */
void registerControllerInvariants(sim::Invariants &inv, System &sys);

} // namespace m3v::os

#endif // M3VSIM_OS_SYSTEM_H_
