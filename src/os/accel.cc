#include "os/accel.h"

#include "sim/log.h"

namespace m3v::os {

namespace {

/** A lean timing model for the accelerator's control processor. */
tile::CoreModel
accelCoreModel(std::uint64_t freq_hz)
{
    tile::CoreModel m;
    m.name = "accel";
    m.freqHz = freq_hz;
    m.mmioReadCycles = 2;
    m.mmioWriteCycles = 2;
    m.trapEnterCycles = 1;
    m.trapExitCycles = 1;
    m.irqOverheadCycles = 1;
    m.ipc = 1.0;
    return m;
}

} // namespace

AccelTile::AccelTile(sim::EventQueue &eq, std::string name,
                     noc::Noc &noc, noc::TileId tile,
                     AccelParams params)
    : name_(std::move(name)), tile_(tile), params_(params)
{
    core_ = std::make_unique<tile::Core>(
        eq, name_ + ".ctrl", accelCoreModel(params.freqHz), tile);
    dtu_ = std::make_unique<dtu::Dtu>(eq, name_ + ".dtu", noc, tile,
                                      params.freqHz);
    thread_ = std::make_unique<tile::Thread>(*core_,
                                             name_ + ".driver", 0);
    env_ = std::make_unique<BareEnv>(name_, *thread_, *dtu_, 0);
    env_->addRecvEp(kAccelCmdRep);
}

AccelTile::~AccelTile() = default;

void
AccelTile::startDriver()
{
    if (!transform_)
        sim::fatal("%s: no transform installed", name_.c_str());
    thread_->start(driver());
    core_->dispatch(thread_.get());
}

sim::Task
AccelTile::driver()
{
    for (;;) {
        int slot = -1;
        co_await env_->recvOn(kAccelCmdRep, &slot);
        AccelJob job = podFrom<AccelJob>(
            env_->msgAt(kAccelCmdRep, slot).payload);
        co_await env_->ackMsg(kAccelCmdRep, slot);

        // Stream the input window in.
        Bytes input;
        dtu::Error err = dtu::Error::None;
        for (std::uint32_t off = 0; off < job.len;
             off += dtu::kPageSize) {
            Bytes page;
            co_await env_->readMem(
                kAccelInMep, job.inOff + off,
                std::min<std::size_t>(dtu::kPageSize, job.len - off),
                &page, &err);
            if (err != dtu::Error::None)
                sim::panic("%s: input read failed: %s",
                           name_.c_str(), dtu::errorName(err));
            input.insert(input.end(), page.begin(), page.end());
        }

        // The fixed-function unit: real data transform, modelled
        // pipeline time.
        co_await thread_->compute(
            params_.fixedCost +
            input.size() / params_.bytesPerCycle);
        Bytes output = transform_(input);

        // Stream the output window out.
        for (std::size_t off = 0; off < output.size();
             off += dtu::kPageSize) {
            std::size_t n = std::min<std::size_t>(
                dtu::kPageSize, output.size() - off);
            co_await env_->writeMem(
                kAccelOutMep, job.outOff + off,
                Bytes(output.begin() + static_cast<long>(off),
                      output.begin() + static_cast<long>(off + n)),
                &err);
            if (err != dtu::Error::None)
                sim::panic("%s: output write failed: %s",
                           name_.c_str(), dtu::errorName(err));
        }

        // Forward the job descriptor to the next stage: this stage's
        // output window becomes the next stage's input window.
        AccelJob next;
        next.inOff = job.outOff;
        next.len = static_cast<std::uint32_t>(output.size());
        next.outOff = job.outOff;
        next.tag = job.tag;
        co_await env_->send(kAccelFwdSep, podBytes(next),
                            dtu::kInvalidEp, &err);
        if (err != dtu::Error::None)
            sim::panic("%s: forward failed: %s", name_.c_str(),
                       dtu::errorName(err));
        jobs_++;
    }
}

} // namespace m3v::os
