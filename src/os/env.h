/**
 * @file
 * The libm3 layer: the environment application code runs against.
 *
 * An Env binds an execution context (a tile::Thread) to its DTU and
 * offers coroutine operations with realistic software costs (MMIO
 * register accesses, command polling) and the TLB-miss retry protocol
 * of section 3.6: a failed command triggers a transl TMCall to
 * TileMux, which refills the vDTU TLB, and the command is retried.
 *
 * Two flavours exist:
 *  - MuxEnv: an activity on a multiplexed user tile (TileMux+vDTU);
 *    blocking waits go through TileMux (or poll, section 3.7).
 *  - BareEnv: a bare-metal context on a dedicated tile (the
 *    controller tile); waits poll the DTU directly.
 */

#ifndef M3VSIM_OS_ENV_H_
#define M3VSIM_OS_ENV_H_

#include <functional>
#include <string>
#include <vector>

#include "core/tilemux.h"
#include "core/vdtu.h"
#include "dtu/dtu.h"
#include "os/proto.h"
#include "sim/task.h"
#include "tile/core.h"

namespace m3v::os {

/** Base application environment. */
class Env
{
  public:
    Env(std::string name, tile::Thread &thread, dtu::Dtu &dtu,
        dtu::ActId act);
    virtual ~Env() = default;

    Env(const Env &) = delete;
    Env &operator=(const Env &) = delete;

    const std::string &name() const { return name_; }
    tile::Thread &thread() { return *thread_; }
    dtu::Dtu &dtu() { return *dtu_; }
    dtu::ActId actId() const { return act_; }
    noc::TileId tileId() const { return dtu_->tileId(); }

    /** Virtual address of the activity's message buffer page. */
    dtu::VirtAddr msgBuf() const { return msgBuf_; }
    void setMsgBuf(dtu::VirtAddr va) { msgBuf_ = va; }

    /** Install the syscall channel (send to controller + reply EP). */
    void
    setSyscallGates(dtu::EpId sep, dtu::EpId rep)
    {
        syscSep_ = sep;
        syscRep_ = rep;
    }

    //
    // Messaging (all with MMIO costs and TLB-miss retry).
    //

    /** Send @p msg through send EP @p sep; replies arrive at
     *  @p reply_ep (kInvalidEp for one-way messages). @p nonce is
     *  echoed back in the reply (see dtu::Message::nonce); 0 means
     *  "unused". */
    sim::Task send(dtu::EpId sep, Bytes msg, dtu::EpId reply_ep,
                   dtu::Error *err, std::uint64_t nonce = 0);

    /** Reply to the message in @p slot of @p rep. */
    sim::Task reply(dtu::EpId rep, int slot, Bytes msg,
                    dtu::Error *err);

    /** Block/poll until this context has any unread message. */
    sim::Task waitMsg();

    /** Wait for and fetch the next message on @p rep. */
    sim::Task recvOn(dtu::EpId rep, int *slot);

    /**
     * Wait for a message on any of @p reps; returns the EP and slot.
     * This is the workloop primitive services use.
     */
    sim::Task recvAny(std::vector<dtu::EpId> reps, dtu::EpId *which,
                      int *slot);

    /** Copy out a fetched message's payload. */
    const dtu::Message &msgAt(dtu::EpId rep, int slot) const;

    /** Acknowledge (free) a fetched message. */
    sim::Task ackMsg(dtu::EpId rep, int slot);

    /** Full RPC: send, await the reply, copy it out, acknowledge. */
    sim::Task call(dtu::EpId sep, dtu::EpId rep, Bytes req,
                   Bytes *resp, dtu::Error *err);

    /**
     * Like call(), but give up on the reply after @p reply_deadline
     * ticks and surface a typed dtu::Error::Timeout — without this,
     * a reply whose retransmissions the wire exhausted leaves the
     * caller blocked in recvOn() forever. 0 falls back to call().
     *
     * The reply EP must be used by one caller at a time (as with
     * call()). Each timed call carries a fresh correlation nonce that
     * the server's REPLY echoes back (dtu::Message::nonce): before
     * sending, any unread message on the EP is drained, and while
     * polling, a fetched reply whose nonce does not match the current
     * call is acknowledged and discarded as a stale drop. Without the
     * nonce check, the late reply of an earlier, timed-out call that
     * arrives *after* the pre-send drain would be misattributed to
     * the current call.
     */
    sim::Task callTimed(dtu::EpId sep, dtu::EpId rep, Bytes req,
                        Bytes *resp, dtu::Error *err,
                        sim::Tick reply_deadline);

    /** Late replies of timed-out calls dropped by callTimed(). */
    std::uint64_t staleRepliesDropped() const { return staleDrops_; }

    //
    // Memory gates.
    //

    sim::Task readMem(dtu::EpId mep, std::uint64_t off,
                      std::size_t size, Bytes *out, dtu::Error *err);

    sim::Task writeMem(dtu::EpId mep, std::uint64_t off, Bytes data,
                       dtu::Error *err);

    //
    // System calls.
    //

    sim::Task syscall(SyscallReq req, SyscallResp *resp);

    /**
     * Like syscall(), but a transport failure (e.g. the caller's
     * endpoints were reset because it was killed mid-call) surfaces
     * as @p err instead of a panic. For code that must survive its
     * own activity's crash, such as fault-injection tests.
     */
    sim::Task trySyscall(SyscallReq req, SyscallResp *resp,
                         dtu::Error *err);

    //
    // Scheduling.
    //

    /** Voluntarily yield the core. */
    virtual sim::Task yield() = 0;

    /** Terminate this context (never returns on mux tiles). */
    virtual sim::Task exit() = 0;

  protected:
    /**
     * Block/poll until an unread message exists for this context —
     * on @p ep if given, on any endpoint otherwise.
     */
    virtual sim::Task waitImpl(dtu::EpId ep) = 0;

    /** Resolve a TLB miss for @p va (no-op on bare tiles). */
    virtual sim::Task translFix(dtu::VirtAddr va, bool write) = 0;

    /** MMIO cost shorthands (cycles from the core model). */
    sim::Cycles mmioR(unsigned n = 1) const;
    sim::Cycles mmioW(unsigned n = 1) const;

    std::string name_;
    tile::Thread *thread_;
    dtu::Dtu *dtu_;
    dtu::ActId act_;
    dtu::VirtAddr msgBuf_ = 0;
    dtu::EpId syscSep_ = dtu::kInvalidEp;
    dtu::EpId syscRep_ = dtu::kInvalidEp;
    std::uint64_t staleDrops_ = 0;
    /** Correlation nonce of the last timed call (0 = none yet). */
    std::uint64_t callNonce_ = 0;
};

/** Environment of an activity on a multiplexed tile. */
class MuxEnv : public Env
{
  public:
    MuxEnv(std::string name, core::Activity &act, core::VDtu &vdtu);

    core::Activity &activity() { return *act_; }
    core::TileMux &mux() { return act_->mux(); }

    sim::Task yield() override;
    sim::Task exit() override;

  protected:
    sim::Task waitImpl(dtu::EpId ep) override;
    sim::Task translFix(dtu::VirtAddr va, bool write) override;

  private:
    core::Activity *act_;
};

/** Environment of a bare-metal context on a dedicated tile. */
class BareEnv : public Env
{
  public:
    BareEnv(std::string name, tile::Thread &thread, dtu::Dtu &dtu,
            dtu::ActId act);

    /** EPs this context receives on (for the poll check). */
    void addRecvEp(dtu::EpId ep) { reps_.push_back(ep); }

    /**
     * Block until one of @p eps has an unread message or the simulated
     * clock reaches @p deadline, whichever happens first. Wakeups may
     * be spurious (a message on another EP); callers re-check state.
     * The cross-shard controller call loop uses this to bound its
     * reply wait while staying responsive to incoming peer requests.
     */
    sim::Task waitEpsUntil(const std::vector<dtu::EpId> &eps,
                           sim::Tick deadline);

    sim::Task yield() override;
    sim::Task exit() override;

  protected:
    sim::Task waitImpl(dtu::EpId ep) override;
    sim::Task translFix(dtu::VirtAddr va, bool write) override;

  private:
    bool anyUnread() const;

    std::vector<dtu::EpId> reps_;
    bool waiting_ = false;
};

} // namespace m3v::os

#endif // M3VSIM_OS_ENV_H_
