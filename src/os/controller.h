/**
 * @file
 * The M3v communication controller (paper section 3.3): a single
 * software component on a dedicated tile that knows all activities,
 * owns the capability system, and is the only entity allowed to
 * establish communication channels (by configuring DTU endpoints
 * through the external interface).
 *
 * Activities reach it via system calls — ordinary DTU messages on the
 * controller's syscall receive endpoint; the message label identifies
 * the calling activity. The controller is single-threaded and handles
 * system calls strictly in order, which is precisely why the remote
 * multiplexing of M3x (which funnels *every* context switch through
 * it) does not scale, and why M3v (which only needs it for channel
 * setup) does.
 */

#ifndef M3VSIM_OS_CONTROLLER_H_
#define M3VSIM_OS_CONTROLLER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "os/caps.h"
#include "os/env.h"
#include "os/proto.h"
#include "sim/overload.h"
#include "sim/stats.h"

namespace m3v::os {

/** Locates the DTU of a tile (installed by the system builder). */
using DtuLocator = std::function<dtu::Dtu *(noc::TileId)>;

/** Controller cost parameters (cycles on the controller core). */
struct ControllerParams
{
    /** Fixed syscall decode/dispatch cost. */
    sim::Cycles dispatchCost = 120;

    /** Capability-table manipulation cost per touched cap. */
    sim::Cycles capCost = 150;

    /** The controller's syscall receive endpoint. */
    dtu::EpId syscallRep = 4;

    /** Admission control over the syscall ring (default off). */
    sim::AdmissionParams admission;
};

/** The communication controller. */
class Controller
{
  public:
    Controller(BareEnv &env, CapMgr &caps, DtuLocator locate,
               ControllerParams params = {});

    BareEnv &env() { return *env_; }
    CapMgr &caps() { return *caps_; }
    const ControllerParams &params() const { return params_; }

    //
    // Boot-time (untimed) capability grants, used by the system
    // builder to set up the initial environment — analogous to the
    // boot modules the real M3 controller starts with.
    //

    CapSel grantMem(dtu::ActId act, MemObj mem);
    CapSel grantActivity(dtu::ActId holder, ActObj obj);
    CapSel grantRgate(dtu::ActId act, RgateObj obj);
    CapSel grantSgate(dtu::ActId act, SgateObj obj);

    /** Record an activity so syscalls can resolve it. */
    void registerActivity(dtu::ActId id, noc::TileId tile);

    /** Register the send EP used for sidecalls to @p tile. */
    void setSidecallChannel(noc::TileId tile, dtu::EpId sep);

    /** Register the EP sidecall replies arrive on. */
    void setSidecallReplyEp(dtu::EpId rep);

    /** The controller's main loop (runs as the bare tile's thread). */
    sim::Task run();

    /** Stop the main loop after the current syscall. */
    void stop() { running_ = false; }

    /**
     * Reap a crashed or watchdog-killed activity (the TileMux crash
     * upcall lands here): invalidate every endpoint the activity owns
     * on its tile — reclaiming the flow-control credits of messages
     * stuck in its receive endpoints so surviving senders are not
     * wedged — and revoke its whole capability table, invalidating
     * any endpoints those capabilities were activated into elsewhere.
     * Modelled as privileged cleanup outside the syscall loop; the
     * credit-return packets it triggers travel the NoC as usual.
     */
    void reapActivity(dtu::ActId id);

    std::uint64_t syscallsHandled() const
    {
        return syscalls_->value();
    }
    std::uint64_t activitiesReaped() const { return reaps_->value(); }
    std::uint64_t creditsReclaimed() const
    {
        return reclaimed_->value();
    }

    /** Admission decision state (shed/admit counters). */
    const sim::Admission &admission() const { return admission_; }

  private:
    sim::Task handle(dtu::ActId caller, const SyscallReq &req,
                     SyscallResp *resp);
    sim::Task configRemoteEp(noc::TileId tile, dtu::EpId ep,
                             dtu::Endpoint ndep, dtu::Error *err);
    sim::Task invalidateRemoteEp(noc::TileId tile, dtu::EpId ep);
    dtu::Endpoint endpointFor(const KObject &obj, dtu::ActId owner);

    BareEnv *env_;
    CapMgr *caps_;
    DtuLocator locate_;
    ControllerParams params_;
    sim::Task sidecall(noc::TileId tile, SidecallReq req,
                       SidecallResp *resp);

    bool running_ = true;
    std::map<dtu::ActId, noc::TileId> actTiles_;
    std::map<noc::TileId, dtu::EpId> sidecallSeps_;
    dtu::EpId sidecallRep_ = dtu::kInvalidEp;
    sim::Counter *syscalls_;
    sim::Counter *reaps_;
    sim::Counter *reclaimed_;
    sim::Admission admission_;
};

} // namespace m3v::os

#endif // M3VSIM_OS_CONTROLLER_H_
