/**
 * @file
 * The M3v communication controller (paper section 3.3): the software
 * component that knows all activities, owns the capability system,
 * and is the only entity allowed to establish communication channels
 * (by configuring DTU endpoints through the external interface).
 *
 * Activities reach it via system calls — ordinary DTU messages on the
 * controller's syscall receive endpoint; the message label identifies
 * the calling activity. Each controller instance is single-threaded
 * and handles system calls strictly in order, which is precisely why
 * the remote multiplexing of M3x (which funnels *every* context
 * switch through it) does not scale, and why M3v (which only needs it
 * for channel setup) does.
 *
 * For large platforms the controller itself is sharded (DESIGN.md
 * section 4i): one instance per tile quadrant, each owning the
 * capability tables of the activities homed in its quadrant. A
 * syscall whose operands live on another shard is forwarded over the
 * cross-shard controller protocol (shard.h) — ordinary DTU messages
 * between controller tiles with the PR 6 retry/timeout discipline.
 * While a controller waits for a peer's reply it keeps servicing
 * incoming peer requests, so two shards calling into each other
 * cannot deadlock.
 */

#ifndef M3VSIM_OS_CONTROLLER_H_
#define M3VSIM_OS_CONTROLLER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "os/caps.h"
#include "os/env.h"
#include "os/proto.h"
#include "os/shard.h"
#include "sim/overload.h"
#include "sim/stats.h"

namespace m3v::os {

/** "No tile" sentinel in the flat activity registry. */
constexpr noc::TileId kNoTile = ~0u;

/**
 * First ActId handed out by CreateAct (controller-side activity
 * records without an execution context, used by control-plane
 * storms). Kept far above the ids the system builder allocates.
 */
constexpr dtu::ActId kStormActBase = 8192;

/** Controller cost parameters (cycles on the controller core). */
struct ControllerParams
{
    /** Fixed syscall decode/dispatch cost. */
    sim::Cycles dispatchCost = 120;

    /** Capability-table manipulation cost per touched cap. */
    sim::Cycles capCost = 150;

    /** The controller's syscall receive endpoint. */
    dtu::EpId syscallRep = 4;

    /** Receive EP for requests from peer controller shards. */
    dtu::EpId ctrlReqRep = 6;

    /** Receive EP for replies to this shard's own peer requests. */
    dtu::EpId ctrlReplyRep = 7;

    /** Reply deadline per cross-shard call attempt. */
    sim::Tick xshardTimeout = 200 * sim::kTicksPerUs;

    /** Send attempts per cross-shard call before giving up. */
    unsigned xshardRetries = 3;

    /** Admission control over the syscall ring (default off). */
    sim::AdmissionParams admission;
};

/** One communication controller shard. */
class Controller
{
  public:
    Controller(BareEnv &env, CapMgr &caps, const DtuMap &dtus,
               ControllerParams params = {}, ShardMap shard_map = {},
               unsigned shard = 0);

    BareEnv &env() { return *env_; }
    CapMgr &caps() { return *caps_; }
    const ControllerParams &params() const { return params_; }
    unsigned shard() const { return shard_; }
    const ShardMap &shardMap() const { return shardMap_; }

    //
    // Boot-time (untimed) capability grants, used by the system
    // builder to set up the initial environment — analogous to the
    // boot modules the real M3 controller starts with.
    //

    CapSel grantMem(dtu::ActId act, MemObj mem);
    CapSel grantActivity(dtu::ActId holder, ActObj obj);
    CapSel grantRgate(dtu::ActId act, RgateObj obj);
    CapSel grantSgate(dtu::ActId act, SgateObj obj);

    /** Record an activity so syscalls can resolve it. */
    void registerActivity(dtu::ActId id, noc::TileId tile);

    /** Register the send EP used for sidecalls to @p tile. */
    void setSidecallChannel(noc::TileId tile, dtu::EpId sep);

    /** Register the EP sidecall replies arrive on. */
    void setSidecallReplyEp(dtu::EpId rep);

    /** Register the send EP used to reach peer shard @p shard. */
    void setPeerChannel(unsigned shard, dtu::EpId sep);

    /** The controller's main loop (runs as the bare tile's thread). */
    sim::Task run();

    /** Stop the main loop after the current syscall. */
    void stop() { running_ = false; }

    /**
     * Reap a crashed or watchdog-killed activity (the TileMux crash
     * upcall lands here): invalidate every endpoint the activity owns
     * on its tile — reclaiming the flow-control credits of messages
     * stuck in its receive endpoints so surviving senders are not
     * wedged — and revoke its whole capability table, invalidating
     * any endpoints those capabilities were activated into elsewhere.
     * Cross-shard derivation edges of the dropped caps are severed
     * with one-way notifications (the peer revokes its side on
     * receipt). Modelled as privileged cleanup outside the syscall
     * loop; the credit-return packets it triggers travel the NoC as
     * usual.
     */
    void reapActivity(dtu::ActId id);

    std::uint64_t syscallsHandled() const
    {
        return syscalls_->value();
    }
    std::uint64_t activitiesReaped() const { return reaps_->value(); }
    std::uint64_t creditsReclaimed() const
    {
        return reclaimed_->value();
    }

    //
    // Cross-shard protocol accounting (conservation invariants).
    //

    std::uint64_t xshardSent() const
    {
        return xsent_ ? xsent_->value() : 0;
    }
    std::uint64_t xshardAcked() const
    {
        return xacked_ ? xacked_->value() : 0;
    }
    std::uint64_t xshardTimeouts() const
    {
        return xtimeouts_ ? xtimeouts_->value() : 0;
    }
    std::uint64_t xshardHandled() const
    {
        return xhandled_ ? xhandled_->value() : 0;
    }
    std::uint64_t onewaySent() const
    {
        return xonewaySent_ ? xonewaySent_->value() : 0;
    }
    std::uint64_t onewayHandled() const
    {
        return xonewayHandled_ ? xonewayHandled_->value() : 0;
    }
    std::uint64_t onewayDropped() const
    {
        return xonewayDropped_ ? xonewayDropped_->value() : 0;
    }
    std::size_t pendingObtains() const
    {
        return pendingObtains_.size();
    }

    /** Admission decision state (shed/admit counters). */
    const sim::Admission &admission() const { return admission_; }

  private:
    /** An obtain whose destination selector is reserved but whose cap
     *  is still in flight from the source shard; a concurrent revoke
     *  kills it by setting @p killed. */
    struct PendingObtain
    {
        dtu::ActId act = dtu::kInvalidAct;
        CapSel sel = kInvalidSel;
        bool killed = false;
    };

    sim::Task serviceSyscall(int slot);
    sim::Task handle(dtu::ActId caller, const SyscallReq &req,
                     SyscallResp *resp);
    sim::Task configRemoteEp(noc::TileId tile, dtu::EpId ep,
                             dtu::Endpoint ndep, dtu::Error *err);
    sim::Task invalidateRemoteEp(noc::TileId tile, dtu::EpId ep);
    dtu::Endpoint endpointFor(const KObject &obj, dtu::ActId owner);
    sim::Task sidecall(noc::TileId tile, SidecallReq req,
                       SidecallResp *resp);

    //
    // Cross-shard protocol.
    //

    /**
     * RPC to a peer shard: send with a fresh nonce, poll for the
     * matching reply, service incoming peer requests while waiting
     * (deadlock avoidance), retransmit on timeout (the receiver
     * dedups by nonce). Sets *ok=false when every attempt timed out.
     */
    sim::Task ctrlCall(unsigned shard, CtrlReq req, CtrlResp *resp,
                       bool *ok);

    /** Fire-and-forget notification to a peer shard. */
    void ctrlOneway(unsigned shard, CtrlReq req);

    /** Service one request from the peer-request EP. */
    sim::Task handleCtrlReq(int slot);

    /**
     * Two-phase revoke of the subtree rooted at (act, sel): mark the
     * local part, revoke remote children over the wire, reap the
     * marked caps (invalidating activated EPs), and release the share
     * record at the root's remote parent — unless that parent is
     * @p requester (the caller is reaping it already).
     */
    sim::Task revokeTree(dtu::ActId act, CapSel sel, bool keep_root,
                         const RemoteRef &requester,
                         std::size_t *removed);

    std::uint64_t makeNonce();
    bool takeStash(std::uint64_t nonce, CtrlResp *resp);
    void remember(std::uint64_t nonce, const CtrlResp &resp);
    const CtrlResp *recallDup(std::uint64_t nonce) const;
    noc::TileId actTile(dtu::ActId id) const;
    dtu::ActId allocActId();
    PendingObtain takePendingObtain(dtu::ActId act, CapSel sel);

    BareEnv *env_;
    CapMgr *caps_;
    const DtuMap *dtus_;
    ControllerParams params_;
    ShardMap shardMap_;
    unsigned shard_ = 0;

    bool running_ = true;
    /** Activity home tiles, ActId-indexed (kNoTile = unregistered). */
    std::vector<noc::TileId> actTiles_;
    /** Sidecall send EPs, TileId-indexed (kInvalidEp = none). */
    std::vector<dtu::EpId> sidecallSeps_;
    dtu::EpId sidecallRep_ = dtu::kInvalidEp;
    /** Peer-shard send EPs, shard-indexed (kInvalidEp = none). */
    std::vector<dtu::EpId> peerSeps_;

    /** Replies fetched while polling for a different nonce (a nested
     *  service loop drained them); consumed by their own call. */
    std::vector<std::pair<std::uint64_t, Bytes>> replyStash_;
    /** Recent (nonce, reply) pairs for request dedup on retx. */
    std::vector<std::pair<std::uint64_t, CtrlResp>> recent_;
    std::vector<PendingObtain> pendingObtains_;
    std::uint64_t nonceCtr_ = 0;

    /** CreateAct id allocation (interleaved across shards). */
    dtu::ActId nextLocalAct_ = 0;
    std::vector<dtu::ActId> freeActs_;

    sim::Counter *syscalls_;
    sim::Counter *reaps_;
    sim::Counter *reclaimed_;
    /** Null on single-controller platforms (metric set unchanged). */
    sim::Counter *xsent_ = nullptr;
    sim::Counter *xacked_ = nullptr;
    sim::Counter *xtimeouts_ = nullptr;
    sim::Counter *xhandled_ = nullptr;
    sim::Counter *xonewaySent_ = nullptr;
    sim::Counter *xonewayHandled_ = nullptr;
    sim::Counter *xonewayDropped_ = nullptr;
    sim::Admission admission_;
};

} // namespace m3v::os

#endif // M3VSIM_OS_CONTROLLER_H_
