/**
 * @file
 * The controller's capability system (paper section 3.3): activities
 * obtain, exchange and revoke capabilities through system calls; only
 * the controller establishes communication channels from them.
 *
 * Capabilities form a derivation tree: delegating or deriving creates
 * children, and revocation removes a whole subtree, invalidating any
 * DTU endpoints the revoked capabilities were activated into.
 */

#ifndef M3VSIM_OS_CAPS_H_
#define M3VSIM_OS_CAPS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtu/types.h"
#include "noc/packet.h"
#include "os/proto.h"

namespace m3v::os {

/** Kinds of kernel objects capabilities can refer to. */
enum class CapKind : std::uint8_t
{
    Activity,
    RecvGate,
    SendGate,
    MemGate,
};

/** A region of physical memory on some tile. */
struct MemObj
{
    noc::TileId tile = 0;
    dtu::PhysAddr addr = 0;
    std::size_t size = 0;
    std::uint8_t perms = 0;
};

/** A receive gate: a receive endpoint location. */
struct RgateObj
{
    noc::TileId tile = 0;
    dtu::ActId act = dtu::kInvalidAct;
    dtu::EpId ep = dtu::kInvalidEp;
    std::size_t slotSize = 256;
    std::size_t slots = 8;
};

/** A send gate targeting a receive gate. */
struct SgateObj
{
    RgateObj target;
    std::uint64_t label = 0;
    std::uint32_t credits = 1;
};

/** An activity reference. */
struct ActObj
{
    dtu::ActId id = dtu::kInvalidAct;
    noc::TileId tile = 0;
};

/** A kernel object, referenced by one or more capabilities. */
struct KObject
{
    CapKind kind;
    MemObj mem;
    RgateObj rgate;
    SgateObj sgate;
    ActObj act;
};

/** One capability in an activity's table. */
class Capability
{
  public:
    Capability(CapSel sel, dtu::ActId owner,
               std::shared_ptr<KObject> obj)
        : sel_(sel), owner_(owner), obj_(std::move(obj))
    {
    }

    CapSel sel() const { return sel_; }
    dtu::ActId owner() const { return owner_; }
    KObject &obj() { return *obj_; }
    const KObject &obj() const { return *obj_; }
    std::shared_ptr<KObject> objPtr() const { return obj_; }

    Capability *parent = nullptr;
    std::vector<Capability *> children;

    /** Where this cap is activated (tile, ep), if anywhere. */
    bool activated = false;
    noc::TileId actTile = 0;
    dtu::EpId actEp = dtu::kInvalidEp;

  private:
    CapSel sel_;
    dtu::ActId owner_;
    std::shared_ptr<KObject> obj_;
};

/** Per-activity capability table with derivation-tree maintenance. */
class CapTable
{
  public:
    explicit CapTable(dtu::ActId owner) : owner_(owner) {}

    CapTable(const CapTable &) = delete;
    CapTable &operator=(const CapTable &) = delete;

    dtu::ActId owner() const { return owner_; }

    /** Insert a root capability; returns its selector. */
    CapSel insertRoot(std::shared_ptr<KObject> obj);

    /**
     * Insert a capability derived from @p parent (possibly in another
     * table); returns the new selector.
     */
    CapSel insertChild(std::shared_ptr<KObject> obj,
                       Capability &parent);

    Capability *get(CapSel sel);
    const Capability *get(CapSel sel) const;

    /**
     * Revoke the subtree rooted at @p sel. @p on_revoke is invoked
     * for every removed capability (to invalidate activated EPs).
     * If @p keep_root, only the children are revoked.
     */
    std::size_t revoke(CapSel sel,
                       const std::function<void(Capability &)> &on_revoke,
                       bool keep_root = false);

    std::size_t size() const { return caps_.size(); }

  private:
    friend class CapMgr;

    dtu::ActId owner_;
    CapSel next_ = 1;
    std::map<CapSel, std::unique_ptr<Capability>> caps_;
};

/**
 * The controller's view over all capability tables, with cross-table
 * revocation.
 */
class CapMgr
{
  public:
    /** Create (or fetch) the table of an activity. */
    CapTable &tableOf(dtu::ActId act);

    bool hasTable(dtu::ActId act) const;

    /**
     * Revoke subtree rooted at (act, sel), across tables.
     * Returns the number of removed capabilities.
     */
    std::size_t revoke(dtu::ActId act, CapSel sel,
                       const std::function<void(Capability &)> &on_revoke,
                       bool keep_root = false);

    /** Remove an entire activity's table (activity exit). */
    void dropTable(dtu::ActId act,
                   const std::function<void(Capability &)> &on_revoke);

  private:
    friend class CapTable;

    static void collectSubtree(Capability &cap,
                               std::vector<Capability *> &out);

    std::map<dtu::ActId, std::unique_ptr<CapTable>> tables_;
};

} // namespace m3v::os

#endif // M3VSIM_OS_CAPS_H_
