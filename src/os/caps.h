/**
 * @file
 * The controller's capability system (paper section 3.3): activities
 * obtain, exchange and revoke capabilities through system calls; only
 * the controller establishes communication channels from them.
 *
 * Capabilities form a derivation tree: delegating or deriving creates
 * children, and revocation removes a whole subtree, invalidating any
 * DTU endpoints the revoked capabilities were activated into.
 *
 * The tree is partitioned per controller shard (DESIGN.md section 4i):
 * each shard owns the tables of the activities homed in its tile
 * quadrant, and selectors carry the shard id in their top byte.
 * Derivation edges within a shard are ordinary parent/child pointers;
 * edges that cross shards are explicit share records (RemoteRef) kept
 * on both sides, maintained by the cross-shard controller protocol.
 * Revocation is two-phase: the local subtree is first *marked*
 * (revoking = true, which fails new delegations from it), the remote
 * children are revoked over the wire, and only then is the marked
 * subtree reaped — so an in-flight delegation can never resurrect a
 * capability that a concurrent revoke already decided to kill.
 */

#ifndef M3VSIM_OS_CAPS_H_
#define M3VSIM_OS_CAPS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtu/types.h"
#include "noc/packet.h"
#include "os/proto.h"

namespace m3v::os {

/** Kinds of kernel objects capabilities can refer to. */
enum class CapKind : std::uint8_t
{
    Activity,
    RecvGate,
    SendGate,
    MemGate,
};

/** A region of physical memory on some tile. */
struct MemObj
{
    noc::TileId tile = 0;
    dtu::PhysAddr addr = 0;
    std::size_t size = 0;
    std::uint8_t perms = 0;
};

/** A receive gate: a receive endpoint location. */
struct RgateObj
{
    noc::TileId tile = 0;
    dtu::ActId act = dtu::kInvalidAct;
    dtu::EpId ep = dtu::kInvalidEp;
    std::size_t slotSize = 256;
    std::size_t slots = 8;
};

/** A send gate targeting a receive gate. */
struct SgateObj
{
    RgateObj target;
    std::uint64_t label = 0;
    std::uint32_t credits = 1;
};

/** An activity reference. */
struct ActObj
{
    dtu::ActId id = dtu::kInvalidAct;
    noc::TileId tile = 0;
};

/** A kernel object, referenced by one or more capabilities. */
struct KObject
{
    CapKind kind;
    MemObj mem;
    RgateObj rgate;
    SgateObj sgate;
    ActObj act;
};

/**
 * One end of a cross-shard derivation edge: (shard, activity,
 * selector) of the capability on the other side. Kernel objects are
 * *copied* across shards (Corey explicit-share semantics); only these
 * records tie the two copies into one derivation tree.
 */
struct RemoteRef
{
    std::uint8_t shard = 0;
    dtu::ActId act = dtu::kInvalidAct;
    CapSel sel = kInvalidSel;

    bool
    operator==(const RemoteRef &o) const
    {
        return shard == o.shard && act == o.act && sel == o.sel;
    }
};

/** One capability in an activity's table. */
class Capability
{
  public:
    Capability(CapSel sel, dtu::ActId owner,
               std::shared_ptr<KObject> obj)
        : sel_(sel), owner_(owner), obj_(std::move(obj))
    {
    }

    CapSel sel() const { return sel_; }
    dtu::ActId owner() const { return owner_; }
    KObject &obj() { return *obj_; }
    const KObject &obj() const { return *obj_; }
    std::shared_ptr<KObject> objPtr() const { return obj_; }

    Capability *parent = nullptr;
    std::vector<Capability *> children;

    /** Where this cap is activated (tile, ep), if anywhere. */
    bool activated = false;
    noc::TileId actTile = 0;
    dtu::EpId actEp = dtu::kInvalidEp;

    /**
     * Marked for removal by an in-progress two-phase revoke: the cap
     * still resolves (idempotent re-revokes see it) but refuses to be
     * a delegation/derivation source, and exactly one revoke plan owns
     * its eventual reaping.
     */
    bool revoking = false;

    /** Derived from a capability on another shard. */
    bool hasRemoteParent = false;
    RemoteRef remoteParent{};

    /** Children delegated/obtained into other shards. */
    std::vector<RemoteRef> remoteChildren;

    /** Remove the share record matching @p ref (idempotent). */
    void
    dropRemoteChild(const RemoteRef &ref)
    {
        for (std::size_t i = 0; i < remoteChildren.size(); i++) {
            if (remoteChildren[i] == ref) {
                remoteChildren.erase(remoteChildren.begin() + i);
                return;
            }
        }
    }

  private:
    CapSel sel_;
    dtu::ActId owner_;
    std::shared_ptr<KObject> obj_;
};

/** Per-activity capability table with derivation-tree maintenance. */
class CapTable
{
  public:
    explicit CapTable(dtu::ActId owner, unsigned shard = 0)
        : owner_(owner), next_(makeSel(shard, 1))
    {
    }

    CapTable(const CapTable &) = delete;
    CapTable &operator=(const CapTable &) = delete;

    dtu::ActId owner() const { return owner_; }

    /** Insert a root capability; returns its selector. */
    CapSel insertRoot(std::shared_ptr<KObject> obj);

    /**
     * Insert a capability derived from @p parent (possibly in another
     * table); returns the new selector.
     */
    CapSel insertChild(std::shared_ptr<KObject> obj,
                       Capability &parent);

    /**
     * Reserve a selector without inserting (cross-shard obtain: the
     * destination selector must be on the wire before the cap
     * exists). Pair with insertReserved().
     */
    CapSel reserveSel() { return next_++; }

    /** Insert a capability under a previously reserved selector. */
    Capability &insertReserved(CapSel sel,
                               std::shared_ptr<KObject> obj);

    Capability *get(CapSel sel);
    const Capability *get(CapSel sel) const;

    /**
     * Revoke the subtree rooted at @p sel. @p on_revoke is invoked
     * for every removed capability (to invalidate activated EPs).
     * If @p keep_root, only the children are revoked.
     */
    std::size_t revoke(CapSel sel,
                       const std::function<void(Capability &)> &on_revoke,
                       bool keep_root = false);

    std::size_t size() const { return caps_.size(); }

    /** Visit every capability in this table. */
    void
    forEachCap(const std::function<void(Capability &)> &fn)
    {
        for (auto &[sel, cap] : caps_)
            fn(*cap);
    }

  private:
    friend class CapMgr;

    dtu::ActId owner_;
    CapSel next_;
    std::map<CapSel, std::unique_ptr<Capability>> caps_;
};

/**
 * A marked revocation: the local part of the subtree, pre-order, with
 * every member's revoking flag set, plus the cross-shard edges that
 * must be severed before the local caps may be reaped.
 */
struct RevokePlan
{
    Capability *root = nullptr;
    bool keepRoot = false;
    /** Local subtree, pre-order (root first); excludes subtrees that
     *  were already marked by another in-progress revoke. */
    std::vector<Capability *> caps;
    /** Children of marked caps living on other shards. */
    std::vector<RemoteRef> remoteChildren;
    /** Remote parents of marked caps (share records to release). The
     *  paired entry records which local cap held the reference. */
    std::vector<std::pair<RemoteRef, RemoteRef>> remoteParents;
};

/**
 * One shard's view over the capability tables of the activities it
 * owns, with cross-table (same-shard) revocation. A default-built
 * CapMgr is shard 0, which behaves exactly like the pre-sharding
 * global manager.
 */
class CapMgr
{
  public:
    explicit CapMgr(unsigned shard = 0) : shard_(shard) {}

    unsigned shard() const { return shard_; }

    /** Create (or fetch) the table of an activity. */
    CapTable &tableOf(dtu::ActId act);

    /** The table of @p act, or nullptr (never creates). */
    CapTable *tableIfExists(dtu::ActId act);

    bool hasTable(dtu::ActId act) const;

    /**
     * Revoke subtree rooted at (act, sel), across tables.
     * Returns the number of removed capabilities.
     */
    std::size_t revoke(dtu::ActId act, CapSel sel,
                       const std::function<void(Capability &)> &on_revoke,
                       bool keep_root = false);

    /** Remove an entire activity's table (activity exit). */
    void dropTable(dtu::ActId act,
                   const std::function<void(Capability &)> &on_revoke);

    /**
     * Phase one of a two-phase revoke: mark the local subtree rooted
     * at (act, sel) and collect its cross-shard edges into @p plan.
     * Returns false when there is nothing to do — the root does not
     * exist or is already owned by another in-progress revoke (both
     * make re-revocation idempotent). Subtrees already marked by
     * another plan are skipped: that plan reaps them.
     */
    bool planRevoke(dtu::ActId act, CapSel sel, bool keep_root,
                    RevokePlan *plan);

    /**
     * Phase two: reap the marked caps (leaves first), invoking
     * @p on_revoke for each removed capability. Children that another
     * plan owns are detached (parent pointer cleared) instead of
     * freed. Returns the number removed.
     */
    std::size_t
    executeRevoke(const RevokePlan &plan,
                  const std::function<void(Capability &)> &on_revoke);

    /** Visit every live table (invariant checks, fuzz oracles). */
    void
    forEachTable(const std::function<void(CapTable &)> &fn)
    {
        for (auto &t : tables_)
            if (t)
                fn(*t);
    }

  private:
    friend class CapTable;

    static void collectSubtree(Capability &cap,
                               std::vector<Capability *> &out);

    unsigned shard_ = 0;
    /** Flat, ActId-indexed (hot path: every syscall resolves the
     *  caller's table; dtu::ActId is 16-bit so the spine stays small). */
    std::vector<std::unique_ptr<CapTable>> tables_;
};

} // namespace m3v::os

#endif // M3VSIM_OS_CAPS_H_
