/**
 * @file
 * Controller sharding support (DESIGN.md section 4i): the static
 * tile-quadrant-to-shard map, the direct tile-to-DTU table the
 * controllers use for privileged cleanup, and the wire format of the
 * cross-shard controller protocol (delegate/obtain/revoke between
 * per-quadrant controllers, carried over ordinary DTU messages).
 */

#ifndef M3VSIM_OS_SHARD_H_
#define M3VSIM_OS_SHARD_H_

#include <cstdint>
#include <vector>

#include "os/caps.h"

namespace m3v::os {

/**
 * Default controller shard count for a platform: 1 for paper-sized
 * configs (single controller, byte-identical to the unsharded
 * system), growing with the user tile count the way the PR 8 mesh
 * grows — 4 shards at 64 tiles, 8 at 256, 16 at 1024.
 */
inline unsigned
autoCtrlShards(unsigned user_tiles)
{
    if (user_tiles >= 1024)
        return 16;
    if (user_tiles >= 256)
        return 8;
    if (user_tiles >= 64)
        return 4;
    return 1;
}

/**
 * The static partition of user tiles into controller quadrants:
 * contiguous blocks of tiles, shard s owning tiles
 * [s*U/S, (s+1)*U/S). Activities are homed with their tile; their
 * capability tables live on their tile's shard.
 */
struct ShardMap
{
    unsigned shards = 1;
    unsigned userTiles = 8;

    unsigned
    shardOfTile(noc::TileId tile) const
    {
        if (shards <= 1 || tile >= userTiles)
            return 0;
        return static_cast<unsigned>(
            static_cast<std::uint64_t>(tile) * shards / userTiles);
    }

    /** First user tile of @p shard's quadrant. */
    noc::TileId
    quadrantBegin(unsigned shard) const
    {
        return static_cast<noc::TileId>(
            static_cast<std::uint64_t>(shard) * userTiles / shards);
    }

    /** One past the last user tile of @p shard's quadrant. */
    noc::TileId
    quadrantEnd(unsigned shard) const
    {
        return static_cast<noc::TileId>(
            static_cast<std::uint64_t>(shard + 1) * userTiles /
            shards);
    }
};

/**
 * Direct tile-to-DTU table (replaces the std::function DtuLocator):
 * one flat pointer array indexed by TileId, shared by every
 * controller shard. Tiles without an accessible DTU (memory tiles)
 * stay null.
 */
class DtuMap
{
  public:
    void
    set(noc::TileId tile, dtu::Dtu *d)
    {
        if (tile >= dtus_.size())
            dtus_.resize(tile + 1, nullptr);
        dtus_[tile] = d;
    }

    dtu::Dtu *
    get(noc::TileId tile) const
    {
        return tile < dtus_.size() ? dtus_[tile] : nullptr;
    }

  private:
    std::vector<dtu::Dtu *> dtus_;
};

/**
 * A cross-shard controller request. Requests carry an origin-unique
 * nonce: the reply echoes it (correlation under the PR 6 timed-call
 * discipline), and the receiver dedups retransmitted requests by it,
 * making every operation idempotent on retry.
 */
struct CtrlReq
{
    enum class Op : std::uint32_t
    {
        /** Insert a copy of a capability into a table of this shard,
         *  as the remote child of (srcShard, act2, sel2). */
        Delegate,
        /** Record a remote child on (act, sel) and return a copy of
         *  its object for insertion at (act2, sel2) on the origin. */
        Obtain,
        /** Two-phase revoke of the subtree rooted at (act, sel);
         *  flags bit 1 set = keep the root. */
        Revoke,
        /** Allocate an activity record homed on tile @p tile; returns
         *  the new ActId. */
        CreateAct,
        /** Release the share record on (act, sel) naming the remote
         *  child (srcShard, act2, sel2) — that child died. */
        DropShare,
        /** Drop the whole capability table of @p act (activity
         *  destroyed from another shard). */
        DropTable,
        /** Forward a MapFor page mapping to @p act's TileMux (the
         *  sidecall channel belongs to the home quadrant). */
        MapFor,
    };

    Op op = Op::Revoke;
    /** Bit 0: a reply is expected. Bit 1: op-specific (see Op). */
    std::uint32_t flags = 0;
    /** Origin-unique correlation/idempotence key. */
    std::uint64_t nonce = 0;
    /** Shard this request originates from. */
    std::uint32_t srcShard = 0;

    dtu::ActId act = dtu::kInvalidAct;
    CapSel sel = kInvalidSel;
    dtu::ActId act2 = dtu::kInvalidAct;
    CapSel sel2 = kInvalidSel;
    std::uint32_t tile = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;

    /** Object payload (Delegate). KObjects are POD and copied across
     *  shards — shards share no pointers (Corey explicit shares). */
    KObject obj{};

    static constexpr std::uint32_t kWantReply = 1u << 0;
    static constexpr std::uint32_t kKeepRoot = 1u << 1;
};

/** Reply to a cross-shard controller request. */
struct CtrlResp
{
    dtu::Error err = dtu::Error::None;
    std::uint64_t val = 0;
    /** Object payload (Obtain). */
    KObject obj{};
};

} // namespace m3v::os

#endif // M3VSIM_OS_SHARD_H_
