#include "tile/core.h"

#include <utility>

#include "sim/log.h"

namespace m3v::tile {

//
// Thread
//

Thread::Thread(Core &core, std::string name, std::uint64_t id)
    : core_(core), name_(std::move(name)), id_(id)
{
}

Thread::~Thread() = default;

void
Thread::start(sim::Task body)
{
    if (started_ || body_.valid())
        sim::panic("%s: started twice", name_.c_str());
    body_ = std::move(body);
    body_.setOnDone([this]() { bodyFinished(); });
    state_ = State::Ready;
}

void
Thread::beginCompute(std::coroutine_handle<> h, sim::Cycles cycles)
{
    if (core_.current() != this || state_ != State::Running)
        sim::panic("%s: compute while not running", name_.c_str());
    resumePoint_ = h;
    waitMode_ = WaitMode::Compute;
    computeLeftTicks_ = core_.cyclesToTicks(cycles);
    scheduleComputeEnd();
}

void
Thread::scheduleComputeEnd()
{
    computeEndTick_ = core_.now() + computeLeftTicks_;
    computeEvent_ = core_.eventQueue().schedule(
        computeLeftTicks_, [this]() {
            waitMode_ = WaitMode::None;
            computeLeftTicks_ = 0;
            auto h = resumePoint_;
            resumePoint_ = {};
            h.resume();
        });
}

void
Thread::beginExternalWait(std::coroutine_handle<> h)
{
    if (core_.current() != this || state_ != State::Running)
        sim::panic("%s: externalWait while not running", name_.c_str());
    resumePoint_ = h;
    waitMode_ = WaitMode::External;
    inWait_ = true;
    waitBegin_ = core_.now();
}

void
Thread::beginKernelCall(std::coroutine_handle<> h)
{
    if (core_.current() != this || state_ != State::Running)
        sim::panic("%s: trapCall while not running", name_.c_str());
    resumePoint_ = h;
    // WaitMode::None: the next dispatch resumes the coroutine right
    // after the trap awaitable (the "sret to user" point).
    waitMode_ = WaitMode::None;
}

void
Thread::enterTrap(std::coroutine_handle<> h,
                  sim::UniqueFunction<void()> handler)
{
    beginKernelCall(h);
    core_.trapFromThread(std::move(handler));
}

void
Thread::wake()
{
    wakePending_ = true;
    if (state_ == State::Running && core_.current() == this &&
        waitMode_ == WaitMode::External) {
        resumeNow();
    }
}

void
Thread::resumeNow()
{
    // Resume through the event queue so wake()/dispatch() callers are
    // never re-entered; guard against preemption in between.
    core_.eventQueue().schedule(0, [this]() {
        if (state_ != State::Running || core_.current() != this)
            return; // preempted before the resume fired; redelivered
                    // on the next dispatch
        if (!resumePoint_)
            return; // already resumed
        if (inWait_) {
            waitTicks_ += core_.now() - waitBegin_;
            inWait_ = false;
        }
        waitMode_ = WaitMode::None;
        auto h = resumePoint_;
        resumePoint_ = {};
        h.resume();
    });
}

void
Thread::onDispatched()
{
    state_ = State::Running;
    if (!started_) {
        started_ = true;
        // Start the body through the event queue for the same
        // reentrancy reasons as resumeNow().
        core_.eventQueue().schedule(0, [this]() {
            if (state_ == State::Running && core_.current() == this) {
                body_.kick();
            } else {
                // Preempted before the body could start (e.g. by an
                // interrupt pending at dispatch): retry on the next
                // dispatch.
                started_ = false;
            }
        });
        return;
    }
    switch (waitMode_) {
      case WaitMode::Compute:
        scheduleComputeEnd();
        break;
      case WaitMode::External:
        if (wakePending_) {
            resumeNow();
        } else {
            inWait_ = true;
            waitBegin_ = core_.now();
        }
        break;
      case WaitMode::None:
        resumeNow();
        break;
    }
}

void
Thread::onPreempted()
{
    if (waitMode_ == WaitMode::Compute && computeEvent_.pending()) {
        // Bank the remaining compute time for the next dispatch.
        computeEvent_.cancel();
        computeLeftTicks_ = computeEndTick_ - core_.now();
    }
    if (inWait_) {
        waitTicks_ += core_.now() - waitBegin_;
        inWait_ = false;
    }
    state_ = State::Ready;
}

void
Thread::bodyFinished()
{
    state_ = State::Finished;
    core_.threadFinished(*this);
}

void
Thread::setOnFinished(std::function<void(Thread &)> cb)
{
    onFinished_ = std::move(cb);
}

//
// Core
//

Core::Core(sim::EventQueue &eq, std::string name, CoreModel model,
           noc::TileId tile_id)
    : SimObject(eq, std::move(name)), model_(std::move(model)),
      clk_(model_.freqHz), tileId_(tile_id)
{
}

void
Core::accountTo(Owner o)
{
    sim::Tick elapsed = now() - ownerSince_;
    switch (owner_) {
      case Owner::Idle:
        idleTicks_ += elapsed;
        break;
      case Owner::Kernel:
        kernelTicks_ += elapsed;
        break;
      case Owner::User:
        if (current_)
            current_->userTicks_ += elapsed;
        break;
    }
    owner_ = o;
    ownerSince_ = now();
}

void
Core::dispatch(Thread *t)
{
    if (current_)
        sim::panic("%s: dispatch with thread %s current",
                   name().c_str(), current_->name().c_str());
    if (inKernel_)
        sim::panic("%s: dispatch from kernel mode (use kernelExitTo)",
                   name().c_str());
    if (!t || t->finished())
        sim::panic("%s: dispatching invalid thread", name().c_str());
    accountTo(Owner::User);
    current_ = t;
    t->onDispatched();
}

Thread *
Core::preemptCurrent()
{
    if (!current_)
        sim::panic("%s: preempt with no current thread",
                   name().c_str());
    accountTo(Owner::Idle);
    Thread *t = current_;
    current_ = nullptr;
    t->onPreempted();
    return t;
}

void
Core::trapFromThread(Continuation handler)
{
    if (!current_)
        sim::panic("%s: trap with no current thread", name().c_str());
    if (inKernel_)
        sim::panic("%s: nested trap", name().c_str());
    accountTo(Owner::Kernel);
    Thread *t = current_;
    current_ = nullptr;
    t->state_ = Thread::State::Blocked;
    inKernel_ = true;
    eq_.schedule(cyclesToTicks(model_.trapEnterCycles),
                 std::move(handler));
}

void
Core::kernelEnter(sim::Cycles extra, Continuation then)
{
    if (inKernel_)
        sim::panic("%s: kernelEnter while in kernel", name().c_str());
    if (current_)
        sim::panic("%s: kernelEnter with a current thread",
                   name().c_str());
    accountTo(Owner::Kernel);
    inKernel_ = true;
    eq_.schedule(cyclesToTicks(model_.trapEnterCycles + extra),
                 std::move(then));
}

void
Core::kernelWork(sim::Cycles cost, Continuation then)
{
    if (!inKernel_)
        sim::panic("%s: kernelWork outside kernel", name().c_str());
    eq_.schedule(cyclesToTicks(cost), std::move(then));
}

void
Core::kernelExitTo(Thread *t)
{
    if (!inKernel_)
        sim::panic("%s: kernelExitTo outside kernel", name().c_str());
    eq_.schedule(cyclesToTicks(model_.trapExitCycles), [this, t]() {
        inKernel_ = false;
        accountTo(Owner::Idle);
        dispatch(t);
        drainPendingIrqs();
    });
}

void
Core::kernelExitIdle()
{
    if (!inKernel_)
        sim::panic("%s: kernelExitIdle outside kernel", name().c_str());
    eq_.schedule(cyclesToTicks(model_.trapExitCycles), [this]() {
        inKernel_ = false;
        accountTo(Owner::Idle);
        drainPendingIrqs();
    });
}

void
Core::raiseIrq(IrqKind kind)
{
    if (inKernel_) {
        pendingIrqs_.push_back(kind);
        return;
    }
    deliverIrq(kind);
}

void
Core::deliverIrq(IrqKind kind)
{
    if (!irqHandler_)
        sim::panic("%s: IRQ %d with no handler installed",
                   name().c_str(), static_cast<int>(kind));
    if (current_)
        preemptCurrent();
    accountTo(Owner::Kernel);
    inKernel_ = true;
    sim::Cycles cost =
        model_.irqOverheadCycles + model_.trapEnterCycles;
    eq_.schedule(cyclesToTicks(cost),
                 [this, kind]() { irqHandler_(kind); });
}

void
Core::drainPendingIrqs()
{
    if (inKernel_ || pendingIrqs_.empty())
        return;
    IrqKind kind = pendingIrqs_.front();
    pendingIrqs_.pop_front();
    deliverIrq(kind);
}

void
Core::setTimer(sim::Tick delay)
{
    timerEvent_.cancel();
    timerEvent_ = eq_.schedule(delay,
                               [this]() { raiseIrq(IrqKind::Timer); });
}

void
Core::cancelTimer()
{
    timerEvent_.cancel();
}

void
Core::threadFinished(Thread &t)
{
    if (current_ == &t) {
        accountTo(Owner::Idle);
        current_ = nullptr;
    }
    if (t.onFinished_)
        t.onFinished_(t);
}

sim::Tick
Core::kernelTicks()
{
    accountTo(owner_);
    return kernelTicks_;
}

sim::Tick
Core::idleTicks()
{
    accountTo(owner_);
    return idleTicks_;
}

void
Core::resetAccounting()
{
    accountTo(owner_);
    kernelTicks_ = 0;
    idleTicks_ = 0;
}

} // namespace m3v::tile
