/**
 * @file
 * A footprint-based instruction/data cache model.
 *
 * We do not simulate individual lines; instead each software component
 * (application, kernel path, OS service) is a "region" with a code/data
 * footprint. Touching a region brings its footprint into the cache,
 * evicting the least-recently-used other regions, and costs one line
 * fill per evicted-then-reloaded 64-byte line.
 *
 * This reproduces the effect the paper uses to explain Figure 10's
 * scan anomaly: Linux' large kernel footprint on a 16 KiB L1I evicts
 * most of the application on every system call, while M3v's small
 * components keep their working sets resident.
 */

#ifndef M3VSIM_TILE_CACHE_MODEL_H_
#define M3VSIM_TILE_CACHE_MODEL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/types.h"

namespace m3v::tile {

/** Identifier for a cached software region. */
using RegionId = std::uint32_t;

/** LRU footprint cache model. */
class CacheModel
{
  public:
    /**
     * @param capacity_bytes cache capacity
     * @param line_bytes     line size (refill granularity)
     * @param fill_cycles    cycles per line refill
     */
    CacheModel(std::size_t capacity_bytes, std::size_t line_bytes,
               sim::Cycles fill_cycles);

    /**
     * Touch @p region with working-set size @p footprint_bytes.
     * Returns the refill cost in cycles for the portion of the
     * footprint that is not resident. Updates LRU order.
     */
    sim::Cycles touch(RegionId region, std::size_t footprint_bytes);

    /** Bytes of @p region currently resident. */
    std::size_t resident(RegionId region) const;

    /** Drop all contents (e.g. address-space switch with ASID flush). */
    void flush();

    /** Total refill cycles charged so far. */
    std::uint64_t totalFillCycles() const { return totalFill_; }

  private:
    void evictFor(std::size_t need_bytes, RegionId except);

    std::size_t capacity_;
    std::size_t lineBytes_;
    sim::Cycles fillCycles_;
    std::size_t used_ = 0;
    /** LRU list: front = most recent. */
    std::list<RegionId> lru_;
    std::unordered_map<RegionId,
                       std::pair<std::size_t, std::list<RegionId>::iterator>>
        regions_;
    std::uint64_t totalFill_ = 0;
};

} // namespace m3v::tile

#endif // M3VSIM_TILE_CACHE_MODEL_H_
