/**
 * @file
 * The core execution engine: software threads as preemptible
 * coroutines on a simulated CPU core.
 *
 * A Core runs at most one Thread at a time in user mode. Threads
 * co_await compute phases (which can be preempted by interrupts, with
 * remaining cycles banked) and external waits (DTU command completion,
 * blocking in the multiplexer). Kernel-mode work (TileMux, the Linux
 * kernel model) is event-driven: it enters through traps/interrupts,
 * charges explicit cycle costs with interrupts masked, and exits by
 * dispatching a thread or idling the core.
 *
 * The core keeps per-owner time accounting (user per thread, kernel,
 * idle) which feeds the getrusage-style user/system split of the
 * cloud-service evaluation (Figure 10).
 */

#ifndef M3VSIM_TILE_CORE_H_
#define M3VSIM_TILE_CORE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "noc/packet.h"
#include "sim/clock.h"
#include "sim/sim_object.h"
#include "sim/task.h"
#include "tile/core_model.h"

namespace m3v::tile {

class Core;

/** Interrupt sources a core distinguishes. */
enum class IrqKind
{
    Timer,       ///< TileMux preemption timer
    CoreRequest, ///< vDTU: message arrived for a non-running activity
    Device,      ///< tile-local device (e.g. the NIC)
};

/**
 * A software execution context (one activity's thread, the idle loop,
 * a bare-metal program). The body is a sim::Task coroutine that
 * co_awaits the awaitables below.
 */
class Thread
{
  public:
    enum class State
    {
        Created,  ///< body not started yet
        Ready,    ///< runnable, not current
        Running,  ///< current on the core
        Blocked,  ///< descheduled, waiting for a wake by software
        Finished, ///< body returned
    };

    Thread(Core &core, std::string name, std::uint64_t id);
    ~Thread();

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    const std::string &name() const { return name_; }
    std::uint64_t id() const { return id_; }
    State state() const { return state_; }
    Core &core() const { return core_; }
    bool finished() const { return state_ == State::Finished; }

    /** Install the body; it starts on the first dispatch. */
    void start(sim::Task body);

    /**
     * Awaitable: execute for @p cycles of core time. Preemptible;
     * remaining cycles are banked and resumed on redispatch.
     */
    auto
    compute(sim::Cycles cycles)
    {
        struct Awaiter
        {
            Thread &t;
            sim::Cycles cycles;

            bool await_ready() const noexcept { return cycles == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                t.beginCompute(h, cycles);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, cycles};
    }

    /** Awaitable: execute @p insts instructions (scaled by IPC). */
    auto computeInsts(std::uint64_t insts);

    /**
     * Awaitable: wait for an external wake() while notionally
     * occupying the core (models polling an MMIO status register).
     * If the thread is preempted meanwhile, the wake is latched and
     * consumed on redispatch.
     */
    auto
    externalWait()
    {
        struct Awaiter
        {
            Thread &t;

            bool
            await_ready() const noexcept
            {
                return t.wakePending_;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                t.beginExternalWait(h);
            }

            void
            await_resume() const noexcept
            {
                t.wakePending_ = false;
            }
        };
        return Awaiter{*this};
    }

    /**
     * Awaitable: trap into kernel mode (ecall). The thread suspends
     * and becomes Blocked; @p handler runs in kernel context after the
     * trap-entry cost and must eventually redispatch this thread (or
     * another) via Core::kernelExitTo(). The await completes when the
     * thread is dispatched again.
     */
    auto
    trapCall(sim::UniqueFunction<void()> handler)
    {
        // The handler is stashed on the thread rather than in the
        // awaiter: GCC 12 duplicates awaiter temporaries bitwise in
        // the coroutine frame, so awaiters must be trivially
        // destructible (no owning members).
        pendingTrap_ = std::move(handler);
        struct Awaiter
        {
            Thread &t;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                t.enterTrap(h, std::move(t.pendingTrap_));
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Wake a thread suspended in externalWait(). */
    void wake();

    /** True if a wake() is latched but not yet consumed. */
    bool wakePending() const { return wakePending_; }

    /**
     * True while the thread is suspended in externalWait() — blocked
     * on hardware (e.g. a DTU command), not computing. Holds across
     * preemption until the wake arrives.
     */
    bool
    inExternalWait() const
    {
        return waitMode_ == WaitMode::External;
    }

    /**
     * Drop a latched wake. Call right before starting an operation
     * whose completion is signalled via wake()+externalWait(): stale
     * latches from earlier notifications (e.g. message-arrival hooks
     * firing while the thread computed) would otherwise complete the
     * wait before the operation finished. Only safe when every
     * wait-for-message path re-checks its condition before waiting
     * (fetch-before-wait), which all layers here do.
     */
    void clearWake() { wakePending_ = false; }

    /** Total user-mode core time consumed by this thread. */
    sim::Tick userTicks() const { return userTicks_; }

    /**
     * Core time spent polling in externalWait() while dispatched.
     * busyTicks() = userTicks() - waitTicks() approximates the
     * getrusage-style "really computing" time.
     */
    sim::Tick waitTicks() const { return waitTicks_; }
    sim::Tick
    busyTicks() const
    {
        return userTicks_ > waitTicks_ ? userTicks_ - waitTicks_ : 0;
    }

    /** Hook invoked (once) when the body finishes. */
    void setOnFinished(std::function<void(Thread &)> cb);

  private:
    friend class Core;

    enum class WaitMode
    {
        None,     ///< next dispatch resumes the coroutine directly
        Compute,  ///< mid-compute; computeLeft_ cycles outstanding
        External, ///< waiting for wake()
    };

    void beginCompute(std::coroutine_handle<> h, sim::Cycles cycles);
    void beginExternalWait(std::coroutine_handle<> h);
    void beginKernelCall(std::coroutine_handle<> h);
    void enterTrap(std::coroutine_handle<> h,
                   sim::UniqueFunction<void()> handler);
    void scheduleComputeEnd();
    void resumeNow();
    void onDispatched();
    void onPreempted();
    void bodyFinished();

    Core &core_;
    std::string name_;
    std::uint64_t id_;
    State state_ = State::Created;
    WaitMode waitMode_ = WaitMode::None;
    std::coroutine_handle<> resumePoint_{};
    /** Outstanding compute time (banked across preemptions). */
    sim::Tick computeLeftTicks_ = 0;
    /** Absolute end of the in-flight compute phase. */
    sim::Tick computeEndTick_ = 0;
    sim::EventHandle computeEvent_;
    bool wakePending_ = false;
    bool started_ = false;
    sim::Tick userTicks_ = 0;
    sim::Tick waitTicks_ = 0;
    /** Start of the current on-core externalWait stretch (or 0). */
    sim::Tick waitBegin_ = 0;
    bool inWait_ = false;
    sim::Task body_;
    std::function<void(Thread &)> onFinished_;
    /** Handler in flight between trapCall() and its await_suspend. */
    sim::UniqueFunction<void()> pendingTrap_;
};

/**
 * A simulated CPU core: runs one thread at a time, takes interrupts,
 * and executes kernel-mode work with explicit cycle costs.
 */
class Core : public sim::SimObject
{
  public:
    using IrqHandler = std::function<void(IrqKind)>;
    /** Kernel-work continuations go straight into the event queue;
     *  the move-only wrapper keeps small captures allocation-free. */
    using Continuation = sim::UniqueFunction<void()>;

    Core(sim::EventQueue &eq, std::string name, CoreModel model,
         noc::TileId tile_id);

    const CoreModel &model() const { return model_; }
    const sim::Clock &clock() const { return clk_; }
    noc::TileId tileId() const { return tileId_; }

    /** Currently dispatched thread (may be mid-wait), or null. */
    Thread *current() const { return current_; }

    bool inKernel() const { return inKernel_; }

    /**
     * Make @p t the current thread and continue its execution.
     * Requires that no thread is current. Usually called from kernel
     * context via kernelExitTo().
     */
    void dispatch(Thread *t);

    /**
     * Remove the current thread from the core mid-execution, banking
     * any outstanding compute. Returns the thread (now Ready).
     */
    Thread *preemptCurrent();

    /**
     * Synchronous kernel entry from the current thread (trap/ecall).
     * The thread stops running (stays current_ == nullptr afterwards,
     * in state Blocked) and @p handler runs after the trap-entry cost.
     * The handler must eventually kernelExitTo()/kernelExitIdle().
     */
    void trapFromThread(Continuation handler);

    /**
     * Enter kernel mode from idle (no thread current), e.g. when the
     * multiplexer needs to schedule after a thread finished. Charges
     * trap-entry plus @p extra cycles before running @p then.
     */
    void kernelEnter(sim::Cycles extra, Continuation then);

    /** Charge additional kernel cycles, then continue. */
    void kernelWork(sim::Cycles cost, Continuation then);

    /** Leave kernel mode and dispatch @p t (charges trap-exit cost). */
    void kernelExitTo(Thread *t);

    /** Leave kernel mode with nothing to run. */
    void kernelExitIdle();

    /** Install the interrupt handler (the multiplexer / kernel). */
    void setIrqHandler(IrqHandler h) { irqHandler_ = std::move(h); }

    /**
     * Raise an interrupt. Delivered immediately when in user mode or
     * idle; pended while in kernel mode (interrupts are disabled while
     * TileMux runs, paper section 4.2).
     */
    void raiseIrq(IrqKind kind);

    /** Arm the one-shot preemption timer. */
    void setTimer(sim::Tick delay);

    /** Disarm the preemption timer. */
    void cancelTimer();

    /** True while the one-shot preemption timer is armed. */
    bool timerArmed() const { return timerEvent_.pending(); }

    sim::Tick cyclesToTicks(sim::Cycles c) const
    {
        return clk_.cyclesToTicks(c);
    }

    /** Cumulative kernel-mode time. */
    sim::Tick kernelTicks();

    /** Cumulative idle time. */
    sim::Tick idleTicks();

    /** Reset the user/kernel/idle accounting clocks. */
    void resetAccounting();

  private:
    friend class Thread;

    enum class Owner
    {
        Idle,
        User,
        Kernel,
    };

    void accountTo(Owner o);
    void deliverIrq(IrqKind kind);
    void drainPendingIrqs();
    void threadFinished(Thread &t);

    CoreModel model_;
    sim::Clock clk_;
    noc::TileId tileId_;

    Thread *current_ = nullptr;
    bool inKernel_ = false;
    IrqHandler irqHandler_;
    std::deque<IrqKind> pendingIrqs_;
    sim::EventHandle timerEvent_;

    Owner owner_ = Owner::Idle;
    sim::Tick ownerSince_ = 0;
    sim::Tick kernelTicks_ = 0;
    sim::Tick idleTicks_ = 0;
};

inline auto
Thread::computeInsts(std::uint64_t insts)
{
    return compute(core_.model().instsToCycles(insts));
}

} // namespace m3v::tile

#endif // M3VSIM_TILE_CORE_H_
