#include "tile/dram.h"

#include <cstring>
#include <utility>

#include "sim/log.h"

namespace m3v::tile {

Dram::Dram(sim::EventQueue &eq, std::string name, DramParams params)
    : SimObject(eq, std::move(name)), params_(params),
      clk_(params.freqHz), store_(params.capacityBytes, 0)
{
    requests_ = statCounter("requests");
    bytes_ = statCounter("bytes");
}

void
Dram::access(std::size_t addr, std::size_t bytes,
             std::function<void()> done)
{
    if (addr + bytes > store_.size())
        sim::panic("%s: access beyond capacity (0x%zx + %zu)",
                   name().c_str(), addr, bytes);
    requests_->inc();
    bytes_->inc(bytes);
    queue_.push_back(Request{bytes, std::move(done)});
    if (!busy_)
        startNext();
}

void
Dram::startNext()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Request &req = queue_.front();
    sim::Cycles xfer =
        (req.bytes + params_.bytesPerCycle - 1) / params_.bytesPerCycle;
    sim::Tick dur = clk_.cyclesToTicks(params_.accessCycles + xfer);
    eq_.schedule(dur, [this]() {
        auto done = std::move(queue_.front().done);
        queue_.pop_front();
        done();
        startNext();
    });
}

void
Dram::read(std::size_t addr, void *dst, std::size_t bytes) const
{
    if (addr + bytes > store_.size())
        sim::panic("%s: read beyond capacity", name().c_str());
    std::memcpy(dst, store_.data() + addr, bytes);
}

void
Dram::write(std::size_t addr, const void *src, std::size_t bytes)
{
    if (addr + bytes > store_.size())
        sim::panic("%s: write beyond capacity", name().c_str());
    std::memcpy(store_.data() + addr, src, bytes);
}

void
Dram::fill(std::size_t addr, std::uint8_t value, std::size_t bytes)
{
    if (addr + bytes > store_.size())
        sim::panic("%s: fill beyond capacity", name().c_str());
    std::memset(store_.data() + addr, value, bytes);
}

} // namespace m3v::tile
