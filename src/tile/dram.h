/**
 * @file
 * Timing model of a memory tile's DDR4 interface: fixed access
 * latency plus bandwidth-limited transfer, with a single request
 * queue (requests are serviced in order, one at a time).
 */

#ifndef M3VSIM_TILE_DRAM_H_
#define M3VSIM_TILE_DRAM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/clock.h"
#include "sim/sim_object.h"
#include "sim/stats.h"

namespace m3v::tile {

/** DDR4 interface timing parameters. */
struct DramParams
{
    /** Memory controller clock. */
    std::uint64_t freqHz = 200'000'000;

    /** Fixed access latency (activate + CAS) in controller cycles. */
    sim::Cycles accessCycles = 30;

    /** Transfer bandwidth in bytes per controller cycle. */
    std::size_t bytesPerCycle = 16;

    /** Backing-store capacity. */
    std::size_t capacityBytes = 64 * 1024 * 1024;
};

/**
 * A memory tile's DRAM: byte-addressable backing store plus an
 * in-order request queue with latency/bandwidth timing.
 */
class Dram : public sim::SimObject
{
  public:
    Dram(sim::EventQueue &eq, std::string name, DramParams params);

    const DramParams &params() const { return params_; }
    std::size_t capacity() const { return store_.size(); }

    /**
     * Queue an access of @p bytes at @p addr; @p done fires when the
     * data has been transferred. The data itself is moved through
     * read()/write() by the caller at completion time (timing and
     * content are decoupled for simplicity).
     */
    void access(std::size_t addr, std::size_t bytes,
                std::function<void()> done);

    /** Copy bytes out of the backing store (no timing). */
    void read(std::size_t addr, void *dst, std::size_t bytes) const;

    /** Copy bytes into the backing store (no timing). */
    void write(std::size_t addr, const void *src, std::size_t bytes);

    /** Fill a range with a byte value (no timing). */
    void fill(std::size_t addr, std::uint8_t value, std::size_t bytes);

    std::uint64_t requests() const { return requests_->value(); }
    std::uint64_t bytesTransferred() const { return bytes_->value(); }

  private:
    void startNext();

    DramParams params_;
    sim::Clock clk_;
    std::vector<std::uint8_t> store_;
    struct Request
    {
        std::size_t bytes;
        std::function<void()> done;
    };
    std::deque<Request> queue_;
    bool busy_ = false;
    sim::Counter *requests_;
    sim::Counter *bytes_;
};

} // namespace m3v::tile

#endif // M3VSIM_TILE_DRAM_H_
