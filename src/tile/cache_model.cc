#include "tile/cache_model.h"

#include <algorithm>

#include "sim/log.h"

namespace m3v::tile {

CacheModel::CacheModel(std::size_t capacity_bytes,
                       std::size_t line_bytes, sim::Cycles fill_cycles)
    : capacity_(capacity_bytes), lineBytes_(line_bytes),
      fillCycles_(fill_cycles)
{
    if (capacity_bytes == 0 || line_bytes == 0)
        sim::panic("CacheModel: zero capacity or line size");
}

sim::Cycles
CacheModel::touch(RegionId region, std::size_t footprint_bytes)
{
    // A footprint larger than the cache can at most fill the cache;
    // the excess misses every time.
    std::size_t cacheable = std::min(footprint_bytes, capacity_);
    std::size_t uncacheable = footprint_bytes - cacheable;

    std::size_t res = 0;
    auto it = regions_.find(region);
    if (it != regions_.end()) {
        res = it->second.first;
        lru_.erase(it->second.second);
        used_ -= res;
        regions_.erase(it);
    }

    std::size_t miss = cacheable > res ? cacheable - res : 0;
    evictFor(cacheable, region);

    lru_.push_front(region);
    regions_.emplace(region, std::make_pair(cacheable, lru_.begin()));
    used_ += cacheable;

    std::size_t miss_bytes = miss + uncacheable;
    sim::Cycles cost =
        (miss_bytes + lineBytes_ - 1) / lineBytes_ * fillCycles_;
    totalFill_ += cost;
    return cost;
}

std::size_t
CacheModel::resident(RegionId region) const
{
    auto it = regions_.find(region);
    return it == regions_.end() ? 0 : it->second.first;
}

void
CacheModel::flush()
{
    lru_.clear();
    regions_.clear();
    used_ = 0;
}

void
CacheModel::evictFor(std::size_t need_bytes, RegionId except)
{
    while (used_ + need_bytes > capacity_ && !lru_.empty()) {
        RegionId victim = lru_.back();
        if (victim == except)
            sim::panic("CacheModel: evicting the touched region");
        auto it = regions_.find(victim);
        // Partial eviction: shrink the LRU region first.
        std::size_t overflow = used_ + need_bytes - capacity_;
        if (it->second.first > overflow) {
            it->second.first -= overflow;
            used_ -= overflow;
            return;
        }
        used_ -= it->second.first;
        lru_.pop_back();
        regions_.erase(it);
    }
}

} // namespace m3v::tile
