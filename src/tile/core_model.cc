#include "tile/core_model.h"

namespace m3v::tile {

CoreModel
CoreModel::rocket()
{
    CoreModel m;
    m.name = "rocket";
    m.freqHz = 100'000'000;
    m.mmioReadCycles = 10;
    m.mmioWriteCycles = 7;
    m.trapEnterCycles = 120;
    m.trapExitCycles = 90;
    m.irqOverheadCycles = 50;
    m.addrSpaceSwitchCycles = 120;
    m.regContextCycles = 64;
    m.ipc = 0.7;
    m.lineFillCycles = 20;
    return m;
}

CoreModel
CoreModel::boom()
{
    CoreModel m;
    m.name = "boom";
    m.freqHz = 80'000'000;
    m.mmioReadCycles = 14;
    m.mmioWriteCycles = 9;
    m.trapEnterCycles = 180;   // deeper pipeline to flush
    m.trapExitCycles = 130;
    m.irqOverheadCycles = 90;
    m.addrSpaceSwitchCycles = 200;
    m.regContextCycles = 180;
    m.ipc = 1.6;
    m.lineFillCycles = 28;
    return m;
}

CoreModel
CoreModel::x86Ooo()
{
    CoreModel m;
    m.name = "x86-ooo";
    m.freqHz = 3'000'000'000ULL;
    m.mmioReadCycles = 60;
    m.mmioWriteCycles = 40;
    m.trapEnterCycles = 500;
    m.trapExitCycles = 400;
    m.irqOverheadCycles = 300;
    m.addrSpaceSwitchCycles = 600;
    m.regContextCycles = 200;
    m.ipc = 2.5;
    m.l1iBytes = 32 * 1024;
    m.l1dBytes = 32 * 1024;
    m.l2Bytes = 1024 * 1024;
    m.lineFillCycles = 40;
    return m;
}

} // namespace m3v::tile
