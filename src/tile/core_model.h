/**
 * @file
 * Cost models for the cores of the M3v platform.
 *
 * The paper's FPGA prototype uses Rocket (in-order, 100 MHz) and BOOM
 * (out-of-order, 80 MHz) RISC-V cores with 16 KiB L1I/L1D and 512 KiB
 * L2; the M3x comparison (Figure 9) runs on gem5's 3 GHz out-of-order
 * x86-64 model. Each model bundles the microarchitectural costs the
 * simulator charges for traps, interrupts, MMIO and cache refills.
 */

#ifndef M3VSIM_TILE_CORE_MODEL_H_
#define M3VSIM_TILE_CORE_MODEL_H_

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace m3v::tile {

/** Microarchitectural cost parameters of a core. */
struct CoreModel
{
    std::string name;

    /** Core clock frequency. */
    std::uint64_t freqHz = 100'000'000;

    /** Cycles for one uncached MMIO register read (e.g. vDTU regs). */
    sim::Cycles mmioReadCycles = 12;

    /** Cycles for one uncached MMIO register write. */
    sim::Cycles mmioWriteCycles = 8;

    /** Trap entry: pipeline flush + mode switch + vector fetch. */
    sim::Cycles trapEnterCycles = 150;

    /** Trap exit (sret/iret) back to user mode. */
    sim::Cycles trapExitCycles = 110;

    /** Extra cost of an asynchronous external interrupt. */
    sim::Cycles irqOverheadCycles = 80;

    /** Address-space switch (satp/CR3 write + TLB shootdown). */
    sim::Cycles addrSpaceSwitchCycles = 140;

    /** Save or restore one general-purpose register context. */
    sim::Cycles regContextCycles = 70;

    /**
     * Relative throughput on plain compute: instructions per cycle.
     * Workload "work units" are instructions; cycles = insts / ipc.
     */
    double ipc = 1.0;

    /** Cache geometry (footprint model, see CacheModel). */
    std::size_t l1iBytes = 16 * 1024;
    std::size_t l1dBytes = 16 * 1024;
    std::size_t l2Bytes = 512 * 1024;

    /** Refill cost per 64-byte line from the next level. */
    sim::Cycles lineFillCycles = 24;

    /** Convert an instruction count to cycles via the IPC. */
    sim::Cycles
    instsToCycles(std::uint64_t insts) const
    {
        return static_cast<sim::Cycles>(
            static_cast<double>(insts) / ipc + 0.5);
    }

    /** Rocket: 64-bit in-order RISC-V @ 100 MHz (paper section 4.1). */
    static CoreModel rocket();

    /** BOOM: out-of-order variant of Rocket @ 80 MHz. */
    static CoreModel boom();

    /** gem5-style 3 GHz out-of-order x86-64 (Figure 9 setting). */
    static CoreModel x86Ooo();
};

} // namespace m3v::tile

#endif // M3VSIM_TILE_CORE_MODEL_H_
