/**
 * @file
 * Open-loop multi-tenant fleet under overload and chaos: per-tile
 * driver activities multiplex thousands of Zipfian-weighted tenants
 * into m3fs/net/pager requests whose arrivals are scheduled by the
 * clock (open loop: when the system slows down, work keeps coming).
 * A diurnal wave plus an explicit burst window push the services past
 * saturation, where the admission layer sheds typed Error::Overloaded
 * rejections and the client discipline (retry budgets, jittered
 * backoff, circuit breakers) keeps retries from amplifying the storm.
 *
 * With --chaos a second cell additionally runs a fault drill: two
 * driver tiles are killed mid-burst and the NoC is degraded for a
 * window, and the SloReport measures the goodput floor during the
 * drill plus the time until p99 recovers to the pre-fault baseline.
 *
 * Cells are independent simulations executed via runCells, so the
 * summary is byte-identical for any --jobs value.
 *
 * Flags (on top of the common --jobs/--summary-out/--metrics-out/
 * --perf-out): --tenants=N, --rate=R (aggregate request rate per
 * simulated second), --burst=M (burst rate multiplier), --slo-ms=S
 * (latency SLO), --chaos (run the drill cell).
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "slo_report.h"
#include "services/m3fs.h"
#include "services/file_client.h"
#include "services/net.h"
#include "services/pager.h"
#include "sim/fault.h"
#include "sim/invariants.h"
#include "sim/lane.h"
#include "sim/open_loop.h"
#include "sim/overload.h"
#include "workloads/zipf.h"

namespace {

using namespace m3v;

/** Platform layout: services on tiles 0-2, drivers on the rest. */
constexpr unsigned kUserTiles = 10;
constexpr unsigned kFsTile = 0;
constexpr unsigned kNetTile = 1;
constexpr unsigned kPagerTile = 2;
constexpr unsigned kFirstDriverTile = 3;
constexpr unsigned kDrivers = kUserTiles - kFirstDriverTile;

/** Timeline (all simulated time). */
constexpr sim::Tick kMeasureStart = 2 * sim::kTicksPerMs;
constexpr sim::Tick kHorizon = 40 * sim::kTicksPerMs;
constexpr sim::Tick kBurstStart = 10 * sim::kTicksPerMs;
constexpr sim::Tick kBurstEnd = 25 * sim::kTicksPerMs;
constexpr sim::Tick kFaultStart = 14 * sim::kTicksPerMs;
constexpr sim::Tick kFaultEnd = 18 * sim::kTicksPerMs;
constexpr sim::Tick kSloWindow = sim::kTicksPerMs;

/** The two driver tiles the chaos drill kills mid-burst. */
constexpr unsigned kKillTiles[] = {8, 9};

struct FleetOptions
{
    std::uint64_t tenants = 2000;
    double rate = 10500.0; ///< aggregate arrivals/s over all drivers
    double burst = 3.0;    ///< burst-window rate multiplier
    double sloMs = 1.0;
    bool chaos = false;
};

FleetOptions
parseFleetArgs(int argc, char **argv)
{
    FleetOptions o;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        const std::string kTenants = "--tenants=";
        const std::string kRate = "--rate=";
        const std::string kBurst = "--burst=";
        const std::string kSlo = "--slo-ms=";
        if (arg.rfind(kTenants, 0) == 0)
            o.tenants = std::strtoull(
                arg.c_str() + kTenants.size(), nullptr, 10);
        else if (arg.rfind(kRate, 0) == 0)
            o.rate = std::atof(arg.c_str() + kRate.size());
        else if (arg.rfind(kBurst, 0) == 0)
            o.burst = std::atof(arg.c_str() + kBurst.size());
        else if (arg.rfind(kSlo, 0) == 0)
            o.sloMs = std::atof(arg.c_str() + kSlo.size());
        else if (arg == "--chaos")
            o.chaos = true;
    }
    if (o.tenants < 100)
        o.tenants = 100;
    return o;
}

/** Mutable per-driver counters that outlive a killed driver. */
struct DriverStats
{
    std::uint64_t clientShed = 0;
    std::uint64_t churn = 0;
    std::uint64_t setupRetries = 0;
    std::uint64_t fsRetries = 0;
    std::uint64_t netRetries = 0;
    std::uint64_t overloadedSeen = 0;
    std::uint64_t staleDrops = 0;
};

/** Everything one cell reports (all derived from simulated state). */
struct CellOut
{
    std::uint64_t events = 0;
    std::uint64_t invariantViolations = 0;
    std::uint64_t fsRequests = 0;
    std::uint64_t fsShedAge = 0;
    std::uint64_t fsShedOcc = 0;
    std::uint64_t netShed = 0;
    std::uint64_t pagerShed = 0;
    std::uint64_t ctrlShed = 0;
    std::uint64_t clientShed = 0;
    std::uint64_t retries = 0;
    std::uint64_t overloadedSeen = 0;
    std::uint64_t staleDrops = 0;
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerShortCircuits = 0;
    std::uint64_t budgetSpent = 0;
    std::uint64_t budgetDenied = 0;
    std::uint64_t churn = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t reaps = 0;
    std::uint64_t creditsReclaimed = 0;
    double classP[3][3] = {}; ///< [gold,silver,bronze][p50,p99,p999]
    std::unique_ptr<bench::SloReport> slo;
    bench::MetricsDump dump;
};

/** Exact open-loop sleep: one scheduled wake, no core burn. */
sim::Task
sleepUntil(sim::EventQueue &eq, os::MuxEnv &env, sim::Tick at)
{
    tile::Thread &t = env.thread();
    t.clearWake();
    eq.scheduleAt(at, [&t]() { t.wake(); });
    co_await t.externalWait();
}

/** Tenant class by Zipf rank: 0 = gold, 1 = silver, 2 = bronze. */
int
tenantClass(std::uint64_t rank)
{
    return rank < 10 ? 0 : rank < 100 ? 1 : 2;
}

const char *kClassNames[] = {"gold", "silver", "bronze"};

void
runFleet(const FleetOptions &opts, bool chaos, std::uint64_t seed,
         CellOut *out)
{
    const auto sloTicks =
        static_cast<sim::Tick>(opts.sloMs * sim::kTicksPerMs);

    sim::EventQueue eq;
    sim::FaultPlan plan(seed ^ 0xFA17);
    os::SystemParams params;
    params.userTiles = kUserTiles;
    params.dram.capacityBytes = 256 << 20;
    // Controller protection: shed syscalls that aged in the ring.
    params.ctrl.admission.maxQueueDelay = sloTicks / 2;
    if (chaos) {
        // NoC degradation across the drill window (the fault plan
        // also switches the DTUs to the reliable wire protocol).
        plan.addDelay("noc", 0.6, 6000, kFaultStart, kFaultEnd);
        params.noc.faults = &plan;
    }
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);

    // Services with bounded admission queues: the recv ring is the
    // queue (fixed slots, nacked at the wire when full); on top of it
    // deadline-aware age shedding plus an occupancy high-water mark.
    services::M3fsParams fsp;
    fsp.storageBytes = 64 << 20;
    fsp.slots = 32;
    fsp.opBaseCost = 4000; // fleet ops model auth + serialization
    fsp.admission.maxQueueDelay = 300 * sim::kTicksPerUs;
    fsp.admission.highWater = 24;
    fsp.admission.shedCost = 400;
    services::M3fs fs(sys, kFsTile, fsp);

    services::NetParams np;
    np.reqSlots = 32;
    np.admission.maxQueueDelay = 300 * sim::kTicksPerUs;
    np.admission.highWater = 24;
    services::NetService net(sys, kNetTile, nic, np);

    sim::AdmissionParams padm;
    padm.maxQueueDelay = 400 * sim::kTicksPerUs;
    padm.highWater = 12;
    services::PagerService pager(sys, kPagerTile, 6 * 1024, padm, 16);

    // Per-driver wiring, guards, and stats (owned here so they
    // survive a killed driver).
    std::vector<services::M3fs::Client> fsClients;
    std::vector<services::NetService::Client> netClients;
    std::vector<services::PagerService::Client> pagerClients;
    std::vector<os::System::App *> apps;
    std::vector<std::unique_ptr<sim::OverloadGuard>> fsGuards;
    std::vector<std::unique_ptr<sim::OverloadGuard>> netGuards;
    std::vector<DriverStats> stats(kDrivers);

    sim::OverloadGuard::Params gp;
    gp.replyDeadline = sloTicks;
    gp.backoff.base = 4096;
    gp.backoff.cap = 1 << 16;

    for (unsigned d = 0; d < kDrivers; d++) {
        auto *app = sys.createApp(kFirstDriverTile + d, "drv", 8192);
        apps.push_back(app);
        fsClients.push_back(fs.addClient(app));
        netClients.push_back(net.addClient(app));
        pagerClients.push_back(pager.addClient(app));
        fsGuards.push_back(std::make_unique<sim::OverloadGuard>(
            seed ^ (0xB0FF + d), gp));
        netGuards.push_back(std::make_unique<sim::OverloadGuard>(
            seed ^ (0x5EED + d), gp));
    }
    fs.startService();
    net.startService();
    pager.startService();

    // Per-tenant-class latency histograms in the metrics registry.
    sim::Histogram *classHist[3];
    for (int c = 0; c < 3; c++)
        classHist[c] = eq.metrics().histogram(
            std::string("fleet.lat.") + kClassNames[c] + "_us", 0,
            5000, 2000);

    bench::SloReport slo(kMeasureStart, kHorizon, kSloWindow,
                         sloTicks);
    slo.setBaselineEnd(kBurstStart);
    if (chaos)
        slo.setFaultWindow(kFaultStart, kFaultEnd);

    const double perDriverRate = opts.rate / kDrivers;

    for (unsigned d = 0; d < kDrivers; d++) {
        sys.start(apps[d], [&, d](os::MuxEnv &env) -> sim::Task {
            DriverStats &st = stats[d];
            sim::OverloadGuard *fsg = fsGuards[d].get();
            sim::OverloadGuard *netg = netGuards[d].get();

            // Staggered setup: map heap pages (budgeted retry — the
            // pager itself may shed the boot burst), create this
            // driver's file, open a socket.
            co_await env.thread().compute(2000 + 977 * d);
            dtu::VirtAddr va = 0;
            for (int a = 0; a < 8; a++) {
                dtu::Error perr = dtu::Error::None;
                co_await services::pagerAllocMap(
                    env, pagerClients[d], 4, &va, &perr);
                if (perr == dtu::Error::None)
                    break;
                st.setupRetries++;
                co_await env.thread().compute(
                    static_cast<sim::Cycles>(4096) << (a < 4 ? a : 4));
            }
            services::FileSession fsess(env, fsClients[d], 0, fsg);
            services::UdpSocket sock(env, netClients[d], netg);
            std::string myPath = "/d" + std::to_string(d);
            dtu::Error err = dtu::Error::None;
            co_await fsess.open(myPath,
                                services::kOpenCreate |
                                    services::kOpenW,
                                &err);
            co_await fsess.write(os::Bytes(256, 0x5a), &err);
            co_await fsess.close(&err);
            auto port = static_cast<std::uint16_t>(7000 + d);
            co_await sock.create(port, &err);

            // Open-loop arrival schedule: diurnal wave + burst.
            sim::OpenLoopSource src(seed ^ (0xA221 + d),
                                    perDriverRate, kMeasureStart);
            src.setDiurnal(0.25, 20 * sim::kTicksPerMs);
            src.addBurst(kBurstStart, kBurstEnd, opts.burst);
            sim::Rng opRng(seed ^ (0x09D1 + d));
            workloads::Zipfian zipf(opts.tenants);
            std::uint64_t netOps = 0, pagerOps = 0;

            for (;;) {
                sim::Tick at = src.next();
                if (at >= kHorizon)
                    break;
                if (eq.now() < at) {
                    co_await sleepUntil(eq, env, at);
                } else if (eq.now() > at + sloTicks) {
                    // Hopelessly behind schedule: shed client-side
                    // instead of building an unbounded backlog.
                    slo.shed(at);
                    st.clientShed++;
                    continue;
                }

                std::uint64_t rank = zipf.next(opRng);
                int cls = tenantClass(rank);
                std::uint64_t pick = opRng.nextBounded(100);
                bool ok = true;
                if (pick < 70) {
                    // Metadata lookup on the tenant's home shard.
                    services::FsResp resp;
                    co_await fsess.stat(
                        "/d" + std::to_string(rank % kDrivers),
                        &resp);
                    ok = resp.err == dtu::Error::None;
                } else if (pick < 90) {
                    // Tenant egress; periodic connection churn.
                    if (++netOps % 16 == 0) {
                        dtu::Error cerr = dtu::Error::None;
                        co_await sock.close(&cerr);
                        co_await sock.create(port, &cerr);
                        st.churn++;
                    }
                    dtu::Error serr = dtu::Error::None;
                    co_await sock.sendTo(0x0a000001, 9,
                                         os::Bytes(96, 0x42),
                                         &serr);
                    ok = serr == dtu::Error::None;
                } else if (pick < 92) {
                    // Write path: append to the driver's own file.
                    dtu::Error werr = dtu::Error::None;
                    co_await fsess.open(myPath, services::kOpenW,
                                        &werr);
                    ok = werr == dtu::Error::None;
                    if (ok) {
                        co_await fsess.write(os::Bytes(128, 0x11),
                                             &werr);
                        ok = werr == dtu::Error::None;
                        dtu::Error clerr = dtu::Error::None;
                        co_await fsess.close(&clerr);
                        ok = ok && clerr == dtu::Error::None;
                    }
                } else if (pagerOps < 48) {
                    // Heap growth through the pager.
                    pagerOps++;
                    dtu::VirtAddr pva = 0;
                    dtu::Error perr = dtu::Error::None;
                    co_await services::pagerAllocMap(
                        env, pagerClients[d], 1, &pva, &perr);
                    ok = perr == dtu::Error::None;
                } else {
                    services::FsResp resp;
                    co_await fsess.stat(myPath, &resp);
                    ok = resp.err == dtu::Error::None;
                }

                sim::Tick lat = eq.now() - at;
                slo.feed(at, lat, ok);
                if (ok)
                    classHist[cls]->add(
                        static_cast<double>(lat) /
                        sim::kTicksPerUs);

                // Snapshot session counters (frames die with a
                // killed driver; these outlive it).
                st.fsRetries = fsess.rpcRetries();
                st.netRetries = sock.rpcRetries();
                st.overloadedSeen =
                    fsess.rpcOverloaded() + sock.rpcOverloaded();
                st.staleDrops = env.staleRepliesDropped();
            }
        });
    }

    // The chaos drill: mid-burst, kill every driver activity on the
    // victim tiles (TileMux crash upcall -> controller reap).
    if (chaos) {
        for (unsigned tile : kKillTiles) {
            for (unsigned d = 0; d < kDrivers; d++) {
                if (kFirstDriverTile + d != tile)
                    continue;
                core::TileMux *mux = &sys.mux(tile);
                dtu::ActId id = apps[d]->act->id();
                eq.scheduleAt(kFaultStart, [mux, id]() {
                    mux->crashActivity(id);
                });
            }
        }
    }

    // Conservation laws checked while the fleet runs and again at
    // quiescence (credits, ring occupancy, drained engines).
    sim::Invariants inv;
    std::vector<const dtu::Dtu *> dtus;
    for (unsigned i = 0; i < kUserTiles; i++)
        dtus.push_back(&sys.vdtu(i));
    dtus.push_back(&sys.controller().env().dtu());
    dtu::registerDtuInvariants(inv, std::move(dtus));
    inv.attach(eq, 256);

    eq.run();
    inv.runAll(true);

    out->events = eq.executed();
    out->invariantViolations = inv.violationCount();
    out->fsRequests = fs.requests();
    out->fsShedAge = fs.admission().shedByAge();
    out->fsShedOcc = fs.admission().shedByOccupancy();
    out->netShed = net.admission().shed();
    out->pagerShed = pager.admission().shed();
    out->ctrlShed = sys.controller().admission().shed();
    for (const DriverStats &st : stats) {
        out->clientShed += st.clientShed;
        out->retries += st.fsRetries + st.netRetries +
                        st.setupRetries;
        out->overloadedSeen += st.overloadedSeen;
        out->staleDrops += st.staleDrops;
        out->churn += st.churn;
    }
    for (unsigned d = 0; d < kDrivers; d++) {
        out->breakerTrips += fsGuards[d]->breaker().trips() +
                             netGuards[d]->breaker().trips();
        out->breakerShortCircuits +=
            fsGuards[d]->breaker().shortCircuits() +
            netGuards[d]->breaker().shortCircuits();
        out->budgetSpent += fsGuards[d]->budget().spent() +
                            netGuards[d]->budget().spent();
        out->budgetDenied += fsGuards[d]->budget().denied() +
                             netGuards[d]->budget().denied();
    }
    out->drops = plan.drops().value();
    out->delays = plan.delays().value();
    for (unsigned i = 0; i < kUserTiles; i++)
        out->retransmits += sys.vdtu(i).retransmits();
    out->reaps = sys.controller().activitiesReaped();
    // Credits come back on two paths: the TileMux sweeps the dead
    // activity's receive rings locally at crash time (counted on the
    // tile's DTU), and the controller's reap sweep catches whatever
    // the tile missed (remote activations).
    out->creditsReclaimed = sys.controller().creditsReclaimed();
    for (unsigned i = 0; i < kUserTiles; i++)
        out->creditsReclaimed += sys.vdtu(i).creditsReclaimed();
    for (int c = 0; c < 3; c++) {
        out->classP[c][0] = classHist[c]->percentile(0.50);
        out->classP[c][1] = classHist[c]->percentile(0.99);
        out->classP[c][2] = classHist[c]->percentile(0.999);
    }
    out->slo = std::make_unique<bench::SloReport>(slo);
    out->dump.addSection(chaos ? "chaos" : "steady", eq.metrics());
}

void
addCell(bench::Summary &s, const std::string &prefix,
        const CellOut &o, bool chaos)
{
    o.slo->addTo(s, prefix);
    s.addU64(prefix + "client_shed", o.clientShed);
    s.addU64(prefix + "fs_requests", o.fsRequests);
    s.addU64(prefix + "fs_shed_age", o.fsShedAge);
    s.addU64(prefix + "fs_shed_occupancy", o.fsShedOcc);
    s.addU64(prefix + "net_shed", o.netShed);
    s.addU64(prefix + "pager_shed", o.pagerShed);
    s.addU64(prefix + "ctrl_shed", o.ctrlShed);
    s.addU64(prefix + "retries", o.retries);
    s.addU64(prefix + "overloaded_seen", o.overloadedSeen);
    s.addU64(prefix + "breaker_trips", o.breakerTrips);
    s.addU64(prefix + "breaker_short_circuits",
             o.breakerShortCircuits);
    s.addU64(prefix + "budget_spent", o.budgetSpent);
    s.addU64(prefix + "budget_denied", o.budgetDenied);
    s.addU64(prefix + "stale_reply_drops", o.staleDrops);
    s.addU64(prefix + "conn_churn", o.churn);
    for (int c = 0; c < 3; c++) {
        std::string base = prefix + kClassNames[c];
        s.add(base + "_p50_us", o.classP[c][0], 2);
        s.add(base + "_p99_us", o.classP[c][1], 2);
        s.add(base + "_p999_us", o.classP[c][2], 2);
    }
    if (chaos) {
        s.addU64(prefix + "noc_delays", o.delays);
        s.addU64(prefix + "retransmits", o.retransmits);
        s.addU64(prefix + "activities_reaped", o.reaps);
        s.addU64(prefix + "credits_reclaimed", o.creditsReclaimed);
    }
    s.addU64(prefix + "invariant_violations",
             o.invariantViolations);
    s.addU64(prefix + "events", o.events);
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::banner;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    FleetOptions fo = parseFleetArgs(argc, argv);

    banner("Fleet",
           "Open-loop multi-tenant overload + chaos drill (" +
               std::to_string(fo.tenants) + " tenants, " +
               std::to_string(kDrivers) + " drivers)");

    double t0 = m3v::bench::wallMs();
    CellOut steady, chaos;
    std::vector<sim::UniqueFunction<void()>> cells;
    cells.push_back([&]() {
        runFleet(fo, false, 0x51EAD5EED, &steady);
    });
    if (fo.chaos)
        cells.push_back([&]() {
            runFleet(fo, true, 0xC4A05BA11, &chaos);
        });
    sim::runCells(obs.jobs, std::move(cells));
    double wall = m3v::bench::wallMs() - t0;

    m3v::bench::Summary s;
    s.addU64("tenants", fo.tenants);
    s.addU64("drivers", kDrivers);
    s.add("rate_per_s", fo.rate, 1);
    s.add("burst", fo.burst, 2);
    s.add("slo_ms", fo.sloMs, 3);
    addCell(s, "steady_", steady, false);
    if (fo.chaos)
        addCell(s, "chaos_", chaos, true);

    std::printf("\n  steady: issued %llu goodput %llu shed %llu "
                "(client %llu) p99[gold] %.1f us\n",
                static_cast<unsigned long long>(
                    steady.slo->issued()),
                static_cast<unsigned long long>(
                    steady.slo->goodput()),
                static_cast<unsigned long long>(
                    steady.slo->shedTotal()),
                static_cast<unsigned long long>(steady.clientShed),
                steady.classP[0][1]);
    if (fo.chaos) {
        long long rec = chaos.slo->recoveryTicks();
        std::printf("  chaos:  issued %llu goodput %llu floor %llu "
                    "reaped %llu recovery %.3f ms violations %llu\n",
                    static_cast<unsigned long long>(
                        chaos.slo->issued()),
                    static_cast<unsigned long long>(
                        chaos.slo->goodput()),
                    static_cast<unsigned long long>(
                        chaos.slo->goodputFloor()),
                    static_cast<unsigned long long>(chaos.reaps),
                    rec >= 0 ? static_cast<double>(rec) /
                                   sim::kTicksPerMs
                             : -1.0,
                    static_cast<unsigned long long>(
                        chaos.invariantViolations));
    }

    s.write(obs.summaryOut);
    m3v::bench::MetricsDump dump;
    dump.absorb(steady.dump);
    if (fo.chaos)
        dump.absorb(chaos.dump);
    dump.write(obs.metricsOut);
    m3v::bench::writePerfJson(obs.perfOut, obs.jobs, wall,
                              steady.events + chaos.events);
    return 0;
}
