/**
 * @file
 * Figure 7: file read/write throughput, POSIX read/write API on
 * 2 MiB files with 4 KiB buffers; m3fs with 64-block extents vs
 * Linux tmpfs. M3v is measured with all involved components (pager,
 * file system, benchmark) sharing one BOOM core ("shared") and on
 * separate cores ("isolated"); 10 runs after 4 warmup runs.
 *
 * Expected shape: reads much faster than writes on both systems
 * (writes allocate + clear blocks); M3v above Linux (per-extent
 * direct access vs per-call kernel entry); shared below isolated.
 */

#include <cstdio>

#include "bench_util.h"
#include "linuxref/kernel.h"
#include "services/m3fs.h"
#include "sim/lane.h"
#include "services/pager.h"
#include "workloads/vfs_linux.h"
#include "workloads/vfs_m3v.h"

namespace {

using namespace m3v;
using workloads::Bytes;

constexpr std::size_t kFileSize = 2 << 20;
constexpr std::size_t kBuf = 4096;
constexpr int kWarmup = 4;
constexpr int kRuns = 10;

struct Result
{
    double readMibs = 0;
    double writeMibs = 0;
};

/** One measured pass: write the file, then read it back. */
sim::Task
fsPass(workloads::Vfs &vfs, const std::string &path, bool measure,
       sim::EventQueue &eq, sim::Sampler *wr, sim::Sampler *rd)
{
    bool ok = false;
    std::unique_ptr<workloads::VfsFile> f;

    sim::Tick t0 = eq.now();
    co_await vfs.open(path, workloads::kVfsW | workloads::kVfsCreate |
                                workloads::kVfsTrunc,
                      &f, &ok);
    Bytes chunk(kBuf, 0x42);
    for (std::size_t off = 0; off < kFileSize; off += kBuf)
        co_await f->write(chunk, &ok);
    co_await f->close();
    if (measure && wr) {
        double secs = sim::ticksToSec(eq.now() - t0);
        wr->add(static_cast<double>(kFileSize) / (1 << 20) / secs);
    }

    t0 = eq.now();
    co_await vfs.open(path, workloads::kVfsR, &f, &ok);
    std::size_t total = 0;
    for (;;) {
        Bytes data;
        co_await f->read(kBuf, &data, &ok);
        if (data.empty())
            break;
        total += data.size();
    }
    co_await f->close();
    if (measure && rd) {
        double secs = sim::ticksToSec(eq.now() - t0);
        rd->add(static_cast<double>(total) / (1 << 20) / secs);
    }
}

/** M3v: app (+ pager) on tile A, m3fs on tile B (B==A for shared). */
Result
m3vFs(bool shared, bench::MetricsDump *dump,
      const std::string &trace_out)
{
    sim::EventQueue eq;
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = 3;
    params.dram.capacityBytes = 256 << 20;
    os::System sys(eq, params);

    unsigned app_tile = 0;
    unsigned fs_tile = shared ? 0 : 1;
    unsigned pager_tile = shared ? 0 : 2;

    services::M3fsParams fsp;
    fsp.storageBytes = 64 << 20;
    services::M3fs fs(sys, fs_tile, fsp);
    services::PagerService pager(sys, pager_tile);
    auto *app = sys.createApp(app_tile, "bench", 8 * 1024);
    auto fs_client = fs.addClient(app);
    auto pager_client = pager.addClient(app);
    fs.startService();
    pager.startService();

    sim::Sampler wr, rd;
    sys.start(app, [&, fs_client,
                    pager_client](os::MuxEnv &env) -> sim::Task {
        // Touch the pager once (heap setup), as the real app would.
        dtu::VirtAddr va = 0;
        dtu::Error perr = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 4, &va,
                                         &perr);
        workloads::M3vVfs vfs(env, fs_client);
        for (int i = 0; i < kWarmup; i++)
            co_await fsPass(vfs, "/bench" + std::to_string(i), false,
                            eq, nullptr, nullptr);
        for (int i = 0; i < kRuns; i++)
            co_await fsPass(vfs, "/run" + std::to_string(i), true,
                            eq, &wr, &rd);
    });
    eq.run();
    if (dump)
        dump->addSection(shared ? "m3v_shared" : "m3v_isolated",
                         eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    return Result{rd.mean(), wr.mean()};
}

/** Linux: everything on one core, tmpfs. */
Result
linuxFs()
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    linuxref::LinuxKernel kernel(eq, "k", core);
    auto *p = kernel.createProcess("bench", 8 * 1024);
    sim::Sampler wr, rd;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        workloads::LinuxVfs vfs(kernel, *p);
        for (int i = 0; i < kWarmup; i++)
            co_await fsPass(vfs, "/bench" + std::to_string(i), false,
                            eq, nullptr, nullptr);
        for (int i = 0; i < kRuns; i++)
            co_await fsPass(vfs, "/run" + std::to_string(i), true,
                            eq, &wr, &rd);
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    return Result{rd.mean(), wr.mean()};
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::Bar;
    using m3v::bench::banner;
    using m3v::bench::printBars;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;

    banner("Figure 7",
           "File read/write throughput (2 MiB files, 4 KiB buffers, "
           "64-block extents)");

    // The three measurements are independent cells run on --jobs
    // threads; output order is fixed after the join.
    Result lin, shared, isolated;
    m3v::bench::MetricsDump dshared, disolated;
    std::string trace = obs.traceOut;
    std::vector<sim::UniqueFunction<void()>> cells;
    cells.push_back([&lin]() { lin = linuxFs(); });
    cells.push_back([&shared, &dshared]() {
        shared = m3vFs(true, &dshared, "");
    });
    cells.push_back([&isolated, &disolated, trace]() {
        isolated = m3vFs(false, &disolated, trace);
    });
    sim::runCells(obs.jobs, std::move(cells));
    dump.absorb(dshared);
    dump.absorb(disolated);

    std::vector<Bar> bars = {
        {"Linux write", lin.writeMibs, 0},
        {"Linux read", lin.readMibs, 0},
        {"M3v write (shared)", shared.writeMibs, 0},
        {"M3v write (isolated)", isolated.writeMibs, 0},
        {"M3v read (shared)", shared.readMibs, 0},
        {"M3v read (isolated)", isolated.readMibs, 0},
    };
    printBars(bars, "MiB/s");
    std::printf("\nNote: as in the paper, the isolated results use "
                "multiple tiles and\ncannot be compared to "
                "single-tile Linux directly.\n");
    dump.write(obs.metricsOut);
    return 0;
}
