/**
 * @file
 * Ablations of M3v design choices the paper calls out:
 *
 *  1. Mediated vDTU access (section 3.5): the rejected first design
 *     where TileMux mediates every vDTU operation — reproduced by
 *     inserting a no-op TMCall before each DTU command; the paper
 *     reports an order-of-magnitude degradation.
 *  2. vDTU TLB capacity (section 3.6): miss rate and RPC throughput
 *     with interleaved buffers across TLB sizes.
 *  3. TileMux time-slice length (section 4.2): throughput of
 *     compute-heavy co-located activities vs RPC latency.
 *  4. Fast-path vs slow-path (sections 3.8/3.9): what Figure 9's
 *     gap is made of — per-RPC cost with always-deliverable messages
 *     (M3v) vs kernel-forwarded messages (M3x), on one tile pair.
 */

#include <cstdio>

#include "bench_util.h"
#include "m3x/system.h"
#include "os/system.h"

namespace {

using namespace m3v;
using os::Bytes;

constexpr int kRounds = 200;

/** Local RPC with optionally a mediation TMCall around every DTU
 *  command (the abandoned first design of section 3.5). */
sim::Tick
rpcWithMediation(bool mediated, bool local)
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 2;
    os::System sys(eq, params);

    auto *client = sys.createApp(0, "client", 6 * 1024);
    auto *server = sys.createApp(local ? 0 : 1, "server", 6 * 1024);
    auto srv_rep = sys.makeRgate(server);
    auto sg = sys.makeSgate(client, server, srv_rep.ep, 1, 4);
    auto cli_rep = sys.makeRgate(client);

    // A no-op TMCall models TileMux mediating one vDTU access.
    auto mediate = [mediated](os::MuxEnv &env) -> sim::Task {
        if (mediated) {
            co_await env.mux().translCall(env.activity(),
                                          env.msgBuf(), false);
        }
    };

    sys.start(server, [&, srv_rep](os::MuxEnv &env) -> sim::Task {
        for (;;) {
            int slot = -1;
            co_await mediate(env);
            co_await env.recvOn(srv_rep.ep, &slot);
            dtu::Error err = dtu::Error::None;
            co_await mediate(env);
            co_await env.reply(srv_rep.ep, slot, Bytes{}, &err);
        }
    });

    sim::Tick total = 0;
    sys.start(client, [&, sg, cli_rep](os::MuxEnv &env) -> sim::Task {
        for (int i = 0; i < 20; i++) { // warmup
            Bytes resp;
            dtu::Error err = dtu::Error::None;
            co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                              &err);
        }
        sim::Tick t0 = eq.now();
        for (int i = 0; i < kRounds; i++) {
            Bytes resp;
            dtu::Error err = dtu::Error::None;
            co_await mediate(env);
            co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                              &err);
        }
        total = eq.now() - t0;
    });
    eq.run();
    return total / kRounds;
}

/** TLB-capacity sweep: a client streams reads from many distinct
 *  buffer pages; small TLBs thrash. */
void
tlbSweep()
{
    std::printf("\nAblation 2: vDTU TLB capacity (16 interleaved "
                "4 KiB buffers, memory reads)\n");
    sim::TablePrinter t({"TLB entries", "misses", "hit rate",
                         "avg read us"});
    for (std::size_t entries : {2ul, 4ul, 8ul, 16ul, 32ul}) {
        sim::EventQueue eq;
        os::SystemParams params;
        params.userTiles = 1;
        params.vdtu.tlbEntries = entries;
        os::System sys(eq, params);
        auto *app = sys.createApp(0, "app", 6 * 1024);
        auto mg = sys.makeMgate(app, 1 << 20, dtu::kPermRW);

        sim::Tick total = 0;
        constexpr int kReads = 400;
        sys.start(app, [&, mg](os::MuxEnv &env) -> sim::Task {
            // 16 distinct buffer pages used round-robin.
            dtu::VirtAddr bufs = sys.mapPages(app, 16, dtu::kPermRW);
            sim::Tick t0 = eq.now();
            for (int i = 0; i < kReads; i++) {
                env.setMsgBuf(bufs +
                              (i % 16) * dtu::kPageSize);
                Bytes data;
                dtu::Error err = dtu::Error::None;
                co_await env.readMem(mg.ep, 0, 1024, &data, &err);
            }
            total = eq.now() - t0;
        });
        eq.run();
        auto &v = sys.vdtu(0);
        double hits = static_cast<double>(v.tlbHits());
        double hr = hits / (hits + static_cast<double>(
                                       v.tlbMisses()));
        t.addRow({std::to_string(entries),
                  std::to_string(v.tlbMisses()),
                  sim::fmtDouble(hr * 100, 1) + "%",
                  sim::fmtDouble(sim::ticksToUs(total / kReads),
                                 1)});
    }
    t.print();
}

/** Time-slice sweep: two compute-heavy activities plus an RPC pair
 *  sharing a tile; shorter slices help latency, cost throughput. */
void
sliceSweep()
{
    std::printf("\nAblation 3: TileMux time slice (2 compute hogs + "
                "RPC pair on one tile)\n");
    sim::TablePrinter t({"slice", "compute ms", "RPC us",
                         "switches"});
    for (sim::Tick slice_us : {100ul, 500ul, 1000ul, 4000ul}) {
        sim::EventQueue eq;
        os::SystemParams params;
        params.userTiles = 2;
        params.mux.timeSlice = slice_us * sim::kTicksPerUs;
        os::System sys(eq, params);

        auto *hog1 = sys.createApp(0, "hog1", 6 * 1024);
        auto *hog2 = sys.createApp(0, "hog2", 6 * 1024);
        auto *server = sys.createApp(0, "server", 6 * 1024);
        auto *client = sys.createApp(1, "client", 6 * 1024);
        auto srv_rep = sys.makeRgate(server);
        auto sg = sys.makeSgate(client, server, srv_rep.ep, 1, 4);
        auto cli_rep = sys.makeRgate(client);

        sim::Tick hog_done = 0;
        int hogs_left = 2;
        auto hog_body = [&](os::MuxEnv &env) -> sim::Task {
            co_await env.thread().compute(2'000'000); // 25 ms
            if (--hogs_left == 0)
                hog_done = eq.now();
        };
        sys.start(hog1, hog_body);
        sys.start(hog2, hog_body);

        sys.start(server, [&, srv_rep](os::MuxEnv &env) -> sim::Task {
            for (;;) {
                int slot = -1;
                co_await env.recvOn(srv_rep.ep, &slot);
                dtu::Error err = dtu::Error::None;
                co_await env.reply(srv_rep.ep, slot, Bytes{}, &err);
            }
        });

        sim::Sampler rpc_us;
        sys.start(client, [&, sg,
                           cli_rep](os::MuxEnv &env) -> sim::Task {
            for (int i = 0; i < 50; i++) {
                sim::Tick t0 = eq.now();
                Bytes resp;
                dtu::Error err = dtu::Error::None;
                co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                                  &err);
                rpc_us.add(sim::ticksToUs(eq.now() - t0));
                co_await sim::Delay{eq, sim::kTicksPerMs};
            }
        });
        eq.run();
        t.addRow({std::to_string(slice_us) + " us",
                  sim::fmtDouble(sim::ticksToMs(hog_done), 1),
                  sim::fmtDouble(rpc_us.mean(), 1),
                  std::to_string(sys.mux(0).ctxSwitches())});
    }
    t.print();
}

/** Fast vs slow path on one co-located pair. */
void
fastVsSlow()
{
    std::printf("\nAblation 4: fast path (M3v, always deliverable) "
                "vs slow path (M3x, kernel forward)\n");

    // M3v local RPC (3 GHz model to match M3x).
    sim::Tick m3v_local = 0;
    {
        sim::EventQueue eq;
        os::SystemParams params;
        params.userTiles = 2;
        params.userModel = tile::CoreModel::x86Ooo();
        params.ctrlModel = tile::CoreModel::x86Ooo();
        os::System sys(eq, params);
        auto *client = sys.createApp(0, "client", 6 * 1024);
        auto *server = sys.createApp(0, "server", 6 * 1024);
        auto srv_rep = sys.makeRgate(server);
        auto sg = sys.makeSgate(client, server, srv_rep.ep, 1, 4);
        auto cli_rep = sys.makeRgate(client);
        sys.start(server, [&, srv_rep](os::MuxEnv &env) -> sim::Task {
            for (;;) {
                int slot = -1;
                co_await env.recvOn(srv_rep.ep, &slot);
                dtu::Error err = dtu::Error::None;
                co_await env.reply(srv_rep.ep, slot, Bytes{}, &err);
            }
        });
        sys.start(client, [&, sg,
                           cli_rep](os::MuxEnv &env) -> sim::Task {
            for (int i = 0; i < 20; i++) {
                Bytes resp;
                dtu::Error err = dtu::Error::None;
                co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                                  &err);
            }
            sim::Tick t0 = eq.now();
            for (int i = 0; i < kRounds; i++) {
                Bytes resp;
                dtu::Error err = dtu::Error::None;
                co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                                  &err);
            }
            m3v_local = (eq.now() - t0) / kRounds;
        });
        eq.run();
    }

    // M3x local RPC.
    sim::Tick m3x_local = 0;
    std::uint64_t m3x_switches = 0;
    {
        sim::EventQueue eq;
        m3x::M3xParams params;
        params.userTiles = 2;
        m3x::M3xSystem sys(eq, params);
        auto *client = sys.createAct(0, "client");
        auto *server = sys.createAct(0, "server");
        m3x::M3xChan chan = sys.makeChannel(server);
        dtu::EpId sep = sys.addSender(chan, client);
        sys.start(server, sim::invoke([&sys, server,
                                       chan]() -> sim::Task {
            for (;;) {
                Bytes req;
                m3x::MsgHdr rt;
                co_await sys.serveNext(*server, chan, &req, &rt);
                co_await sys.replyTo(*server, rt, Bytes{});
            }
        }));
        sys.start(client, sim::invoke([&, sep]() -> sim::Task {
            for (int i = 0; i < 20; i++) {
                Bytes resp;
                co_await sys.rpc(*client, chan, sep, Bytes{}, &resp);
            }
            sim::Tick t0 = eq.now();
            for (int i = 0; i < kRounds; i++) {
                Bytes resp;
                co_await sys.rpc(*client, chan, sep, Bytes{}, &resp);
            }
            m3x_local = (eq.now() - t0) / kRounds;
            co_await sys.exit(*client);
        }));
        eq.run();
        m3x_switches = sys.switches();
    }

    std::printf("  M3v fast path: %6.2f us per co-located RPC\n",
                sim::ticksToUs(m3v_local));
    std::printf("  M3x slow path: %6.2f us per co-located RPC "
                "(%.1fx, %llu remote switches)\n",
                sim::ticksToUs(m3x_local),
                static_cast<double>(m3x_local) /
                    static_cast<double>(m3v_local),
                static_cast<unsigned long long>(m3x_switches));
}

} // namespace

int
main()
{
    using m3v::bench::banner;

    banner("Ablations", "Design-choice studies from DESIGN.md");

    std::printf("\nAblation 1: TileMux-mediated vDTU access "
                "(abandoned first design, section 3.5)\n");
    sim::Tick direct_r = rpcWithMediation(false, false);
    sim::Tick mediated_r = rpcWithMediation(true, false);
    std::printf("  remote RPC: direct %.2f us, mediated %.2f us "
                "(%.1fx slower)\n",
                sim::ticksToUs(direct_r), sim::ticksToUs(mediated_r),
                static_cast<double>(mediated_r) /
                    static_cast<double>(direct_r));
    sim::Tick direct_l = rpcWithMediation(false, true);
    sim::Tick mediated_l = rpcWithMediation(true, true);
    std::printf("  local RPC:  direct %.2f us, mediated %.2f us "
                "(%.1fx slower)\n",
                sim::ticksToUs(direct_l), sim::ticksToUs(mediated_l),
                static_cast<double>(mediated_l) /
                    static_cast<double>(direct_l));

    tlbSweep();
    sliceSweep();
    fastVsSlow();
    return 0;
}
