/**
 * @file
 * Table 1: FPGA area consumption of the platform components, plus
 * the derived claims of section 6.1 (vDTU vs core sizes, the cost of
 * virtualizing the DTU) and the software-complexity figures.
 */

#include <cstdio>

#include "area/area.h"
#include "bench_util.h"
#include "sim/stats.h"

namespace {

using namespace m3v;

void
addRows(sim::TablePrinter &t, const area::Component &c, int depth)
{
    area::AreaNumbers n = c.total();
    std::string name(static_cast<std::size_t>(depth) * 2, ' ');
    name += c.name();
    t.addRow({name, sim::fmtDouble(n.lutsK, 1),
              sim::fmtDouble(n.ffsK, 1), sim::fmtDouble(n.brams, 1)});
    for (const auto &child : c.children())
        addRows(t, *child, depth + 1);
}

} // namespace

int
main()
{
    using m3v::bench::banner;

    banner("Table 1",
           "FPGA area consumption: LUTs, flip-flops, 36 kbit BRAMs");

    sim::TablePrinter t({"Component", "LUTs [k]", "FFs [k]",
                         "BRAMs"});
    addRows(t, area::boomCore(), 0);
    addRows(t, area::rocketCore(), 0);
    addRows(t, area::nocRouter(), 0);
    addRows(t, area::dtu(true), 0);
    t.print();

    std::printf("\nDerived (section 6.1):\n");
    std::printf("  vDTU vs BOOM LUTs:   %.1f%% (paper: 10.6%%)\n",
                area::vdtuVsCorePct(area::boomCore()));
    std::printf("  vDTU vs Rocket LUTs: %.1f%% (paper: 32.6%%)\n",
                area::vdtuVsCorePct(area::rocketCore()));
    std::printf("  Virtualization (privileged interface) adds "
                "%.1f%% logic (paper: ~6%%)\n",
                area::virtualizationOverheadPct());
    std::printf("\nNote: the paper prints 3.3k FFs for the control "
                "unit, inconsistent with its\nchildren (1.5k + 2.8k) "
                "and the vDTU total (5.8k); this model reports the\n"
                "consistent aggregate (4.3k).\n");

    std::printf("\nSoftware complexity (section 6.1, paper-reported "
                "SLOC):\n");
    std::printf("  M3v controller: 11.5k SLOC Rust (900 unsafe)\n");
    std::printf("  TileMux:         1.7k SLOC Rust (50 unsafe)\n");
    std::printf("  (NOVA microkernel reference: ~9k SLOC C++)\n");
    return 0;
}
