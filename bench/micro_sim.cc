/**
 * @file
 * google-benchmark microbenchmarks of the simulator core itself:
 * event-queue throughput, coroutine task overhead, NoC packet cost,
 * codec speed. These measure *host* performance (how fast the
 * simulator runs), complementing the figure benches, which report
 * *simulated* time.
 */

#include <benchmark/benchmark.h>

#include "noc/noc.h"
#include "sim/task.h"
#include "workloads/flac.h"
#include "workloads/zipf.h"

namespace {

using namespace m3v;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < state.range(0); i++)
            eq.schedule(static_cast<sim::Tick>(i % 97),
                        [&sink]() { sink++; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

/**
 * Steady-state schedule/fire on a long-lived queue: one event in, one
 * event out per iteration. This is the allocation-free hot path — the
 * closure fits the inline buffer and the event record comes from the
 * slab freelist.
 */
void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    sim::EventQueue eq;
    int sink = 0;
    for (auto _ : state) {
        eq.schedule(100, [&sink]() { sink++; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleFire);

/**
 * Schedule-then-cancel, the retransmission-timer pattern: most timers
 * are cancelled long before they fire. A small live event per
 * iteration keeps time advancing so tombstones are swept.
 */
void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    sim::EventQueue eq;
    int sink = 0;
    for (auto _ : state) {
        sim::EventHandle h =
            eq.schedule(50 * sim::kTicksPerNs, [&sink]() { sink++; });
        h.cancel();
        eq.schedule(sim::kTicksPerNs, [&sink]() { sink++; });
        eq.runOne();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleCancel);

/**
 * Steady-state pop+push with a large standing backlog and a mix of
 * near-future (wheel), same-tick (FIFO), and far-future (overflow
 * heap) delays — the fig09-style many-tile profile. range(0) is the
 * number of pending events held in the queue throughout.
 */
void
BM_EventQueueMixedHorizon(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::Rng rng(12345);
    int sink = 0;
    auto mixed_delay = [&rng]() -> sim::Tick {
        std::uint64_t r = rng.next() % 100;
        if (r < 60) // short: NoC hops, DMA, core cycles
            return 1 + rng.next() % (200 * sim::kTicksPerNs);
        if (r < 95) // medium: traps, slices (still mostly in-wheel)
            return 1 + rng.next() % (2 * sim::kTicksPerUs);
        // far: retx timeouts, watchdog periods (overflow heap)
        return 1 + rng.next() % (500 * sim::kTicksPerUs);
    };
    const int backlog = static_cast<int>(state.range(0));
    for (int i = 0; i < backlog; i++)
        eq.schedule(mixed_delay(), [&sink]() { sink++; });
    for (auto _ : state) {
        eq.runOne();
        eq.schedule(mixed_delay(), [&sink]() { sink++; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
    state.counters["pending"] =
        static_cast<double>(eq.pending());
}
BENCHMARK(BM_EventQueueMixedHorizon)->Arg(1000)->Arg(100000);

sim::Task
chainTask(sim::EventQueue &eq, int depth)
{
    if (depth > 0)
        co_await chainTask(eq, depth - 1);
    co_await sim::Delay{eq, 1};
}

void
BM_TaskChain(benchmark::State &state)
{
    // The queue and pool live across iterations: this measures
    // coroutine task overhead, not queue construction.
    sim::EventQueue eq;
    sim::TaskPool pool(eq);
    for (auto _ : state) {
        pool.spawn(chainTask(eq, static_cast<int>(state.range(0))));
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaskChain)->Arg(16)->Arg(128);

struct NullSink : noc::HopTarget
{
    bool
    acceptPacket(noc::Packet &pkt, sim::UniqueFunction<void()>) override
    {
        noc::Packet consumed = std::move(pkt);
        return true;
    }
};

void
BM_NocPacket(benchmark::State &state)
{
    sim::EventQueue eq;
    noc::Noc fabric(eq, noc::NocParams{});
    NullSink sinks[4];
    for (unsigned i = 0; i < 4; i++)
        fabric.attachTile(i, &sinks[i]);
    fabric.finalize();
    for (auto _ : state) {
        noc::Packet pkt;
        pkt.src = 0;
        pkt.dst = 3;
        pkt.bytes = 64;
        fabric.inject(pkt, []() {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocPacket);

void
BM_FlacEncode(benchmark::State &state)
{
    workloads::AudioParams params;
    workloads::Samples audio = workloads::generateAudio(
        static_cast<std::size_t>(state.range(0)), params, true);
    for (auto _ : state) {
        auto frames = workloads::flacEncode(audio);
        benchmark::DoNotOptimize(frames);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_FlacEncode)->Arg(16000);

void
BM_Zipfian(benchmark::State &state)
{
    sim::Rng rng(7);
    workloads::Zipfian z(1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.next(rng));
}
BENCHMARK(BM_Zipfian);

} // namespace

BENCHMARK_MAIN();
