/**
 * @file
 * bench/fanin: host-side microbenchmark of the zero-copy message
 * path. K producer DTUs blast messages at one consumer receive
 * endpoint (K in {1, 4, 16, 64}); each configuration runs twice, once
 * on the refcounted slab path (the default) and once with
 * Dtu::setCopyBaseline(true), which deep-copies the payload at every
 * ownership hand-off the way a copying implementation would.
 *
 * Simulated time is identical between the two modes — wire sizes and
 * DMA costs depend only on payload length — so the comparison
 * isolates host work: msgs/sec and ns/msg measured on the wall clock.
 * The numbers are host-dependent and deliberately NOT part of the
 * golden summaries; BENCH_msgpath.json is a perf report, not a
 * regression anchor.
 *
 * Producers send from a long-lived extent via cmdSendRef — each
 * message is a refcount bump on the zero-copy path and two full
 * payload memcpys (wire creation + receive-slot store) on the
 * baseline. Pool statistics printed per run confirm the copy counts
 * (zero on the slab path in steady state).
 *
 * Usage: fanin [--msgs=N] [--payload=BYTES] [--out=FILE]
 *   --msgs      total messages per configuration (default 20000)
 *   --payload   payload bytes per message (default 32768)
 *   --out       JSON report path (default BENCH_msgpath.json,
 *               empty string disables)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dtu/dtu.h"
#include "sim/slab_pool.h"

namespace {

using namespace m3v;

constexpr dtu::EpId kSendEp = 4;
constexpr dtu::EpId kRecvEp = 4;
constexpr std::uint32_t kCreditsPerProducer = 4;

struct RunResult
{
    double msgsPerSec = 0;
    double nsPerMsg = 0;
    std::uint64_t byteCopies = 0;
    std::uint64_t copiedBytes = 0;
    std::uint64_t received = 0;
};

/** One fan-in cell: K producers -> 1 consumer, `msgs` total sends. */
RunResult
runFanIn(unsigned k, std::uint64_t msgs, std::size_t payload_bytes,
         bool copy_baseline)
{
    sim::EventQueue eq;
    noc::NocParams np;
    // Fan-in deliberately piles K producers onto the paper's 2x2
    // star-mesh (the topology is incidental here — the bench measures
    // the DTU message path); opt in to the density so the K=64 cell
    // keeps its timing instead of tripping the over-subscription
    // check.
    np.maxTilesPerRouter = k + 1;
    noc::Noc noc(eq, np);

    dtu::Dtu consumer(eq, "consumer", noc, 0, 100'000'000);
    std::vector<std::unique_ptr<dtu::Dtu>> producers;
    for (unsigned i = 0; i < k; i++)
        producers.push_back(std::make_unique<dtu::Dtu>(
            eq, "prod" + std::to_string(i), noc,
            static_cast<noc::TileId>(i + 1), 100'000'000));
    noc.finalize();

    consumer.setCopyBaseline(copy_baseline);
    for (auto &p : producers)
        p->setCopyBaseline(copy_baseline);

    // One shared receive endpoint with enough slots for every
    // producer's full credit window.
    consumer.configEp(kRecvEp,
                      dtu::Endpoint::makeRecv(
                          0, payload_bytes,
                          static_cast<std::size_t>(k) *
                              kCreditsPerProducer));
    for (unsigned i = 0; i < k; i++)
        producers[i]->configEp(
            kSendEp,
            dtu::Endpoint::makeSend(0, 0, kRecvEp, i,
                                    kCreditsPerProducer,
                                    payload_bytes));

    // The consumer drains on the doorbell: fetch everything unread,
    // touch one payload byte (the "consume"), ack the slot.
    std::uint64_t received = 0;
    std::uint64_t consumed_bytes = 0;
    consumer.setMsgNotify([&](dtu::EpId ep, dtu::ActId) {
        for (;;) {
            int slot = consumer.fetch(0, ep);
            if (slot < 0)
                break;
            const dtu::Message &m = consumer.slotMsg(ep, slot);
            const std::vector<std::uint8_t> &bytes = m.payload;
            if (!bytes.empty())
                consumed_bytes += bytes[0];
            received++;
            consumer.ack(0, ep, slot);
        }
    });

    // Each producer owns one long-lived extent and sends refcounted
    // views of it; NoCredits (acks still in flight) backs off briefly.
    struct Producer
    {
        dtu::Dtu *d = nullptr;
        sim::PayloadRef extent;
        std::uint64_t remaining = 0;
    };
    std::vector<Producer> state(k);
    std::uint64_t base = msgs / k, extra = msgs % k;
    for (unsigned i = 0; i < k; i++) {
        state[i].d = producers[i].get();
        state[i].extent = noc.payloadPool().make(payload_bytes);
        auto &bytes = state[i].extent.mutableBytes();
        std::memset(bytes.data(), static_cast<int>(i + 1),
                    bytes.size());
        state[i].remaining = base + (i < extra ? 1 : 0);
    }

    std::function<void(Producer &)> pump = [&](Producer &p) {
        if (p.remaining == 0)
            return;
        p.d->cmdSendRef(0, kSendEp, 0x1000, p.extent, dtu::kInvalidEp,
                        [&](dtu::Error e) {
                            if (e == dtu::Error::None) {
                                p.remaining--;
                                pump(p);
                            } else if (e == dtu::Error::NoCredits) {
                                eq.schedule(2000,
                                            [&]() { pump(p); });
                            } else {
                                sim::fatal("fanin: send failed: %s",
                                           dtu::errorName(e));
                            }
                        });
    };
    for (auto &p : state)
        pump(p);

    sim::SlabPool::Stats before = noc.payloadPool().stats();
    auto t0 = std::chrono::steady_clock::now();
    eq.run();
    auto t1 = std::chrono::steady_clock::now();
    sim::SlabPool::Stats after = noc.payloadPool().stats();

    if (received != msgs)
        sim::fatal("fanin: received %llu of %llu messages",
                   static_cast<unsigned long long>(received),
                   static_cast<unsigned long long>(msgs));
    (void)consumed_bytes;

    double secs = std::chrono::duration<double>(t1 - t0).count();
    RunResult r;
    r.msgsPerSec = secs > 0 ? static_cast<double>(msgs) / secs : 0;
    r.nsPerMsg = msgs > 0 ? secs * 1e9 / static_cast<double>(msgs)
                          : 0;
    r.byteCopies = after.byteCopies - before.byteCopies;
    r.copiedBytes = after.copiedBytes - before.copiedBytes;
    r.received = received;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t msgs = 20'000;
    std::size_t payload = 32'768;
    std::string out = "BENCH_msgpath.json";
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--msgs=", 0) == 0)
            msgs = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--payload=", 0) == 0)
            payload = std::strtoull(arg.c_str() + 10, nullptr, 10);
        else if (arg.rfind("--out=", 0) == 0)
            out = arg.substr(6);
    }

    bench::banner("bench/fanin",
                  "MPSC fan-in: zero-copy slab path vs copying "
                  "baseline");
    std::printf("  %llu msgs/config, %zu-byte payloads\n\n",
                static_cast<unsigned long long>(msgs), payload);

    bench::Summary summary;
    summary.addU64("msgs_per_config", msgs);
    summary.addU64("payload_bytes", payload);

    const unsigned kKs[] = {1, 4, 16, 64};
    std::printf("  %-5s %15s %15s %10s %15s\n", "K",
                "zerocopy msg/s", "baseline msg/s", "speedup",
                "copies/msg");
    for (unsigned k : kKs) {
        RunResult zc = runFanIn(k, msgs, payload, false);
        RunResult cb = runFanIn(k, msgs, payload, true);
        double speedup =
            cb.msgsPerSec > 0 ? zc.msgsPerSec / cb.msgsPerSec : 0;
        std::printf("  %-5u %15.0f %15.0f %9.2fx %15.2f\n", k,
                    zc.msgsPerSec, cb.msgsPerSec, speedup,
                    static_cast<double>(cb.byteCopies) /
                        static_cast<double>(msgs));

        std::string p = "k" + std::to_string(k);
        summary.add(p + ".zero_copy.msgs_per_sec", zc.msgsPerSec, 0);
        summary.add(p + ".zero_copy.ns_per_msg", zc.nsPerMsg, 1);
        summary.addU64(p + ".zero_copy.byte_copies", zc.byteCopies);
        summary.add(p + ".copy_baseline.msgs_per_sec", cb.msgsPerSec,
                    0);
        summary.add(p + ".copy_baseline.ns_per_msg", cb.nsPerMsg, 1);
        summary.addU64(p + ".copy_baseline.byte_copies",
                       cb.byteCopies);
        summary.addU64(p + ".copy_baseline.copied_bytes",
                       cb.copiedBytes);
        summary.add(p + ".speedup", speedup, 3);
    }

    summary.write(out);
    if (!out.empty())
        std::printf("\n  report: %s\n", out.c_str());
    return 0;
}
