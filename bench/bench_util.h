/**
 * @file
 * Shared helpers for the benchmark binaries: paper-style headers,
 * tables with mean/stddev columns, and simple horizontal bars so the
 * "figures" are recognizable on a terminal.
 */

#ifndef M3VSIM_BENCH_BENCH_UTIL_H_
#define M3VSIM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace m3v::bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** One labelled series value with spread. */
struct Bar
{
    std::string label;
    double value = 0;
    double stddev = 0;
};

/** Render bars scaled to the maximum value. */
inline void
printBars(const std::vector<Bar> &bars, const std::string &unit,
          int decimals = 1)
{
    double max = 0;
    std::size_t label_w = 0;
    for (const auto &b : bars) {
        max = std::max(max, b.value);
        label_w = std::max(label_w, b.label.size());
    }
    if (max <= 0)
        max = 1;
    for (const auto &b : bars) {
        int width = static_cast<int>(b.value / max * 46);
        std::printf("  %-*s %s%s  %.*f", static_cast<int>(label_w),
                    b.label.c_str(), std::string(
                        static_cast<std::size_t>(width), '#')
                        .c_str(),
                    std::string(static_cast<std::size_t>(46 - width),
                                ' ')
                        .c_str(),
                    decimals, b.value);
        if (b.stddev > 0)
            std::printf(" +-%.*f", decimals, b.stddev);
        std::printf(" %s\n", unit.c_str());
    }
}

/** Observability output targets parsed from the command line. */
struct ObsOptions
{
    std::string metricsOut; ///< --metrics-out=<file> (empty: off)
    std::string traceOut;   ///< --trace-out=<file> (empty: off)
    std::string perfOut;    ///< --perf-out=<file> (empty: off)
    std::string summaryOut; ///< --summary-out=<file> (empty: off)
    unsigned jobs = 1;      ///< --jobs=<n> worker threads for cells
};

/**
 * Parse `--metrics-out=` / `--trace-out=` / `--perf-out=` /
 * `--summary-out=` / `--jobs=` from argv. Unknown arguments are
 * ignored so figure binaries stay forgiving about harness-added
 * flags.
 */
inline ObsOptions
parseObsArgs(int argc, char **argv)
{
    ObsOptions opts;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        const std::string kMetrics = "--metrics-out=";
        const std::string kTrace = "--trace-out=";
        const std::string kPerf = "--perf-out=";
        const std::string kSummary = "--summary-out=";
        const std::string kJobs = "--jobs=";
        if (arg.rfind(kMetrics, 0) == 0)
            opts.metricsOut = arg.substr(kMetrics.size());
        else if (arg.rfind(kTrace, 0) == 0)
            opts.traceOut = arg.substr(kTrace.size());
        else if (arg.rfind(kPerf, 0) == 0)
            opts.perfOut = arg.substr(kPerf.size());
        else if (arg.rfind(kSummary, 0) == 0)
            opts.summaryOut = arg.substr(kSummary.size());
        else if (arg.rfind(kJobs, 0) == 0) {
            int n = std::atoi(arg.c_str() + kJobs.size());
            opts.jobs = n > 0 ? static_cast<unsigned>(n) : 1;
        }
    }
    return opts;
}

/**
 * Deterministic figure summary (--summary-out): an ordered list of
 * key/value pairs holding the headline numbers of a figure, derived
 * purely from simulated time — byte-identical across runs, hosts and
 * --jobs values. The golden-trace regression tests (tests/golden/)
 * compare these files against committed references.
 */
class Summary
{
  public:
    void
    add(const std::string &key, double value, int decimals = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
        entries_.emplace_back(key, buf);
    }

    void
    addU64(const std::string &key, std::uint64_t value)
    {
        entries_.emplace_back(key, std::to_string(value));
    }

    std::string
    toJson() const
    {
        std::string out = "{";
        bool first = true;
        for (const auto &[key, val] : entries_) {
            if (!first)
                out += ",";
            first = false;
            out += "\n  \"" + sim::jsonEscape(key) + "\": " + val;
        }
        out += "\n}\n";
        return out;
    }

    /** Write the summary; no-op when @p path is empty. */
    void
    write(const std::string &path) const
    {
        if (path.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            sim::fatal("Summary: cannot open %s", path.c_str());
        std::string json = toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

/**
 * Collects metrics snapshots from several runs (each with its own
 * EventQueue/registry) into one JSON object keyed by section name.
 */
class MetricsDump
{
  public:
    /** Snapshot @p reg's current values under @p section. */
    void addSection(const std::string &section,
                    const sim::MetricsRegistry &reg)
    {
        sections_.emplace_back(section, reg.toJson());
    }

    /**
     * Append another dump's sections in their order. Parallel sweeps
     * give every cell its own MetricsDump and absorb them in
     * registration order after the join, so the combined file is
     * byte-identical for any --jobs.
     */
    void absorb(const MetricsDump &other)
    {
        sections_.insert(sections_.end(), other.sections_.begin(),
                         other.sections_.end());
    }

    std::string toJson() const
    {
        std::string out = "{";
        bool first = true;
        for (const auto &[name, json] : sections_) {
            if (!first)
                out += ",";
            first = false;
            out += "\n  \"" + sim::jsonEscape(name) + "\": " + json;
        }
        out += "\n}\n";
        return out;
    }

    /** Write the combined dump; no-op when @p path is empty. */
    void write(const std::string &path) const
    {
        if (path.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            sim::fatal("MetricsDump: cannot open %s", path.c_str());
        std::string json = toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }

  private:
    std::vector<std::pair<std::string, std::string>> sections_;
};

/** Monotonic wall-clock milliseconds (for host-side timing). */
inline double
wallMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Write a host-performance record for scaling smoke runs
 * (--perf-out): wall-clock, simulated events, and throughput at the
 * given worker count, plus the host's hardware concurrency so scaling
 * numbers can be judged against the machine that produced them.
 * No-op when @p path is empty.
 */
inline void
writePerfJson(const std::string &path, unsigned jobs, double wall_ms,
              std::uint64_t events)
{
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        sim::fatal("writePerfJson: cannot open %s", path.c_str());
    double eps = wall_ms > 0 ? static_cast<double>(events) /
                                   (wall_ms / 1000.0)
                             : 0.0;
    std::fprintf(f,
                 "{\n  \"jobs\": %u,\n  \"hw_concurrency\": %u,\n"
                 "  \"wall_ms\": %.1f,\n"
                 "  \"events\": %llu,\n  \"events_per_sec\": %.0f\n}\n",
                 jobs, std::thread::hardware_concurrency(), wall_ms,
                 static_cast<unsigned long long>(events), eps);
    std::fclose(f);
}

/** Cycles at @p freq_hz for a tick duration. */
inline double
ticksToCycles(sim::Tick t, std::uint64_t freq_hz)
{
    return static_cast<double>(t) / sim::kTicksPerSec *
           static_cast<double>(freq_hz);
}

} // namespace m3v::bench

#endif // M3VSIM_BENCH_BENCH_UTIL_H_
