/**
 * @file
 * Shared helpers for the benchmark binaries: paper-style headers,
 * tables with mean/stddev columns, and simple horizontal bars so the
 * "figures" are recognizable on a terminal.
 */

#ifndef M3VSIM_BENCH_BENCH_UTIL_H_
#define M3VSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace m3v::bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** One labelled series value with spread. */
struct Bar
{
    std::string label;
    double value = 0;
    double stddev = 0;
};

/** Render bars scaled to the maximum value. */
inline void
printBars(const std::vector<Bar> &bars, const std::string &unit,
          int decimals = 1)
{
    double max = 0;
    std::size_t label_w = 0;
    for (const auto &b : bars) {
        max = std::max(max, b.value);
        label_w = std::max(label_w, b.label.size());
    }
    if (max <= 0)
        max = 1;
    for (const auto &b : bars) {
        int width = static_cast<int>(b.value / max * 46);
        std::printf("  %-*s %s%s  %.*f", static_cast<int>(label_w),
                    b.label.c_str(), std::string(
                        static_cast<std::size_t>(width), '#')
                        .c_str(),
                    std::string(static_cast<std::size_t>(46 - width),
                                ' ')
                        .c_str(),
                    decimals, b.value);
        if (b.stddev > 0)
            std::printf(" +-%.*f", decimals, b.stddev);
        std::printf(" %s\n", unit.c_str());
    }
}

/** Cycles at @p freq_hz for a tick duration. */
inline double
ticksToCycles(sim::Tick t, std::uint64_t freq_hz)
{
    return static_cast<double>(t) / sim::kTicksPerSec *
           static_cast<double>(freq_hz);
}

} // namespace m3v::bench

#endif // M3VSIM_BENCH_BENCH_UTIL_H_
