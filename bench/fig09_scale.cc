/**
 * @file
 * Figure 9: scalability of context-switch-heavy applications with
 * tile multiplexing on M3x and M3v.
 *
 * Paper setup: gem5 with a 3 GHz out-of-order x86-64 core per tile;
 * Linux system-call traces of "find" (24 directories x 40 files) and
 * "SQLite" (32 inserts + selects) replayed by a trace player, with a
 * file-system instance *on the same tile* — every file-system call
 * needs a context switch there and back. One warmup run, then the
 * application runs per second across 1..12 tiles.
 *
 * Expected shape: M3v ~2x M3x at one tile (84 vs 45 find, 111 vs 49
 * SQLite) and near-linear up to 12 tiles; M3x barely improves (its
 * single-threaded kernel performs every switch for every tile).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "m3x/system.h"
#include "sim/lane.h"
#include "services/fs_proto.h"
#include "services/m3fs.h"
#include "sim/stats.h"
#include "workloads/trace.h"
#include "workloads/vfs_m3v.h"

namespace {

using namespace m3v;
using services::FsReq;
using services::FsResp;
using workloads::Bytes;
using workloads::Trace;

constexpr int kWarmupRuns = 1;
constexpr int kMeasuredRuns = 2;

/** Application compute per trace entry (x86 cycles; calibrated so a
 *  single M3v tile lands near the paper's 84 / 111 runs/s). */
constexpr sim::Cycles kFindEntryCompute = 26'000;
constexpr sim::Cycles kSqliteTxnCompute = 260'000;

Trace
benchTrace(bool find)
{
    return find ? workloads::makeFindTrace(24, 40, kFindEntryCompute)
                : workloads::makeSqliteTrace(32, kSqliteTxnCompute);
}

//
// M3v runner: per tile one trace player and one m3fs instance.
//

double
m3vRunsPerSec(unsigned tiles, bool find,
              bench::MetricsDump *dump = nullptr,
              const std::string &trace_out = {},
              std::uint64_t *events_out = nullptr)
{
    sim::EventQueue eq;
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = tiles;
    params.userModel = tile::CoreModel::x86Ooo();
    params.ctrlModel = tile::CoreModel::x86Ooo();
    params.dram.capacityBytes = (64u + tiles * 24u) << 20;
    os::System sys(eq, params);

    Trace trace = benchTrace(find);
    std::vector<std::unique_ptr<services::M3fs>> fss;
    std::vector<sim::Tick> warm_done(tiles, 0), all_done(tiles, 0);
    unsigned finished = 0;

    for (unsigned t = 0; t < tiles; t++) {
        services::M3fsParams fsp;
        fsp.storageBytes = 16 << 20;
        fss.push_back(
            std::make_unique<services::M3fs>(sys, t, fsp));
        auto *player = sys.createApp(t, "player" + std::to_string(t));
        auto client = fss.back()->addClient(player);
        fss.back()->startService();

        sys.start(player, [&eq, &trace, client, &warm_done,
                           &all_done, &finished,
                           t](os::MuxEnv &env) -> sim::Task {
            workloads::M3vVfs vfs(env, client);
            co_await workloads::traceSetup(vfs, trace);
            for (int r = 0; r < kWarmupRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            warm_done[t] = eq.now();
            for (int r = 0; r < kMeasuredRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            all_done[t] = eq.now();
            finished++;
        });
    }
    eq.run();
    if (events_out)
        *events_out = eq.executed();
    if (dump)
        dump->addSection((find ? "m3v_find_" : "m3v_sqlite_") +
                             std::to_string(tiles),
                         eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    if (finished != tiles)
        sim::panic("fig09: only %u/%u m3v players finished", finished,
                   tiles);

    sim::Tick start = 0, end = 0;
    for (unsigned t = 0; t < tiles; t++) {
        start = std::max(start, warm_done[t]);
        end = std::max(end, all_done[t]);
    }
    double secs = sim::ticksToSec(end - start);
    return tiles * kMeasuredRuns / secs;
}

//
// M3x runner: per tile one trace player and one FS-server activity;
// every operation is an RPC (and thus two context switches).
//

/** Vfs over the M3x RPC file protocol (data inline). */
class M3xVfs : public workloads::Vfs
{
  public:
    M3xVfs(m3x::M3xSystem &sys, m3x::M3xAct &self,
           const m3x::M3xChan &chan, dtu::EpId sep)
        : sys_(sys), self_(self), chan_(chan), sep_(sep)
    {
    }

    tile::Thread &thread() override { return self_.thread(); }

    sim::Task
    rpc(FsReq req, Bytes data, FsResp *resp, Bytes *data_out)
    {
        Bytes payload(sizeof(FsReq) + data.size());
        std::memcpy(payload.data(), &req, sizeof(FsReq));
        std::memcpy(payload.data() + sizeof(FsReq), data.data(),
                    data.size());
        Bytes respb;
        co_await sys_.rpc(self_, chan_, sep_, std::move(payload),
                          &respb);
        if (respb.size() < sizeof(FsResp))
            sim::panic("m3x vfs: short response");
        std::memcpy(resp, respb.data(), sizeof(FsResp));
        if (data_out)
            data_out->assign(
                respb.begin() + static_cast<long>(sizeof(FsResp)),
                respb.end());
    }

    sim::Task open(const std::string &path, std::uint32_t flags,
                   std::unique_ptr<workloads::VfsFile> *out,
                   bool *ok) override;

    sim::Task
    stat(const std::string &path, workloads::VfsStat *out) override
    {
        FsReq req;
        req.op = FsReq::Op::Stat;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        out->exists = resp.err == dtu::Error::None;
        out->isDir = resp.isDir != 0;
        out->size = resp.size;
    }

    sim::Task
    readdir(const std::string &path, std::uint64_t idx,
            std::string *name, bool *ok) override
    {
        if (path == cachePath_ && idx >= cacheStart_ &&
            idx < cacheStart_ + cache_.size()) {
            *name = cache_[idx - cacheStart_];
            *ok = true;
            co_return;
        }
        if (path == cachePath_ &&
            idx == cacheStart_ + cache_.size() && !cacheMore_) {
            *ok = false;
            co_return;
        }
        FsReq req;
        req.op = FsReq::Op::Readdir;
        req.arg = idx;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        if (resp.err != dtu::Error::None || resp.count == 0) {
            *ok = false;
            co_return;
        }
        cachePath_ = path;
        cacheStart_ = idx;
        cache_ = services::FileSession::readdirNames(resp);
        cacheMore_ = resp.more != 0;
        *name = cache_.front();
        *ok = true;
    }

    sim::Task
    unlink(const std::string &path, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::Unlink;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    mkdir(const std::string &path, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::Mkdir;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        *ok = resp.err == dtu::Error::None;
    }

  private:
    friend class M3xVfsFile;

    m3x::M3xSystem &sys_;
    m3x::M3xAct &self_;
    m3x::M3xChan chan_;
    dtu::EpId sep_;
    std::string cachePath_;
    std::uint64_t cacheStart_ = 0;
    std::vector<std::string> cache_;
    bool cacheMore_ = false;
};

class M3xVfsFile : public workloads::VfsFile
{
  public:
    M3xVfsFile(M3xVfs &vfs, std::uint32_t fd) : vfs_(vfs), fd_(fd) {}

    sim::Task
    read(std::size_t want, Bytes *out, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::ReadAt;
        req.fd = fd_;
        req.arg = off_;
        req.size = static_cast<std::uint32_t>(want);
        FsResp resp;
        co_await vfs_.rpc(req, {}, &resp, out);
        off_ += out->size();
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    write(Bytes data, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::WriteAt;
        req.fd = fd_;
        req.arg = off_;
        req.size = static_cast<std::uint32_t>(data.size());
        FsResp resp;
        std::size_t n = data.size();
        co_await vfs_.rpc(req, std::move(data), &resp, nullptr);
        off_ += n;
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    seek(std::uint64_t off) override
    {
        off_ = off;
        co_return;
    }

    sim::Task
    close() override
    {
        FsReq req;
        req.op = FsReq::Op::Close;
        req.fd = fd_;
        FsResp resp;
        co_await vfs_.rpc(req, {}, &resp, nullptr);
    }

    std::uint64_t size() const override { return 0; }

  private:
    M3xVfs &vfs_;
    std::uint32_t fd_;
    std::uint64_t off_ = 0;
};

sim::Task
M3xVfs::open(const std::string &path, std::uint32_t flags,
             std::unique_ptr<workloads::VfsFile> *out, bool *ok)
{
    FsReq req;
    req.op = FsReq::Op::Open;
    // Map VfsFlags to FsOpenFlags (identical values).
    req.flags = flags;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    FsResp resp;
    co_await rpc(req, {}, &resp, nullptr);
    if (resp.err != dtu::Error::None) {
        *ok = false;
        co_return;
    }
    *out = std::make_unique<M3xVfsFile>(*this, resp.fd);
    *ok = true;
}

/** The M3x per-tile file server: FsImage + inline data. */
sim::Task
m3xFsServer(m3x::M3xSystem &sys, m3x::M3xAct &self,
            m3x::M3xChan chan)
{
    services::FsImage img(4096); // 16 MiB worth of blocks
    std::map<std::uint32_t, std::pair<services::Ino, bool>> fds;
    std::map<services::Ino, Bytes> contents;
    std::uint32_t next_fd = 3;

    for (;;) {
        Bytes reqb;
        m3x::MsgHdr reply_to;
        co_await sys.serveNext(self, chan, &reqb, &reply_to);
        if (reqb.size() < sizeof(FsReq))
            sim::panic("m3x fs: short request");
        FsReq req;
        std::memcpy(&req, reqb.data(), sizeof(FsReq));
        Bytes data(reqb.begin() + static_cast<long>(sizeof(FsReq)),
                   reqb.end());
        req.path[sizeof(req.path) - 1] = '\0';
        std::string path(req.path);

        FsResp resp;
        Bytes resp_data;
        co_await self.thread().compute(250); // request decode

        switch (req.op) {
          case FsReq::Op::Open: {
            services::Ino ino = img.lookup(path);
            if (ino == services::kNoIno &&
                (req.flags & workloads::kVfsCreate))
                ino = img.create(path, false);
            if (ino == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            if (req.flags & workloads::kVfsTrunc)
                contents[ino].clear();
            fds[next_fd] = {ino,
                            (req.flags & workloads::kVfsW) != 0};
            resp.fd = next_fd++;
            resp.size = contents[ino].size();
            break;
          }
          case FsReq::Op::ReadAt: {
            auto it = fds.find(req.fd);
            if (it == fds.end()) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            Bytes &file = contents[it->second.first];
            std::uint64_t off = req.arg;
            if (off < file.size()) {
                std::size_t n = std::min<std::size_t>(
                    req.size, file.size() - off);
                resp_data.assign(
                    file.begin() + static_cast<long>(off),
                    file.begin() + static_cast<long>(off + n));
            }
            co_await self.thread().compute(400 +
                                           resp_data.size() / 8);
            break;
          }
          case FsReq::Op::WriteAt: {
            auto it = fds.find(req.fd);
            if (it == fds.end() || !it->second.second) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            Bytes &file = contents[it->second.first];
            std::uint64_t off = req.arg;
            if (off + data.size() > file.size())
                file.resize(off + data.size());
            std::memcpy(file.data() + off, data.data(), data.size());
            co_await self.thread().compute(600 + data.size() / 8);
            break;
          }
          case FsReq::Op::Close:
            fds.erase(req.fd);
            break;
          case FsReq::Op::Stat: {
            services::Ino ino = img.lookup(path);
            if (ino == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
            } else {
                resp.size = contents[ino].size();
                resp.isDir = img.inode(ino)->dir ? 1 : 0;
            }
            break;
          }
          case FsReq::Op::Readdir: {
            services::Ino dir = img.lookup(path);
            if (dir == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            std::size_t off = 0;
            std::uint64_t idx = req.arg;
            resp.count = 0;
            while (resp.count < services::kReaddirBatch) {
                std::string name;
                services::Ino child;
                if (!img.entryAt(dir, idx, &name, &child))
                    break;
                if (off + name.size() + 1 > sizeof(resp.name))
                    break;
                std::memcpy(resp.name + off, name.c_str(),
                            name.size() + 1);
                off += name.size() + 1;
                resp.count++;
                idx++;
            }
            resp.more = idx < img.entryCount(dir) ? 1 : 0;
            break;
          }
          case FsReq::Op::Unlink: {
            services::Ino ino = img.lookup(path);
            if (img.unlink(path)) {
                contents.erase(ino);
            } else {
                resp.err = dtu::Error::InvalidEp;
            }
            break;
          }
          case FsReq::Op::Mkdir:
            resp.err = img.create(path, true) != services::kNoIno
                           ? dtu::Error::None
                           : dtu::Error::InvalidEp;
            break;
          default:
            resp.err = dtu::Error::InvalidEp;
            break;
        }
        co_await self.thread().compute(img.takeOpCost());

        Bytes respb(sizeof(FsResp) + resp_data.size());
        std::memcpy(respb.data(), &resp, sizeof(FsResp));
        std::memcpy(respb.data() + sizeof(FsResp), resp_data.data(),
                    resp_data.size());
        co_await sys.replyTo(self, reply_to, std::move(respb));
    }
}

double
m3xRunsPerSec(unsigned tiles, bool find,
              bench::MetricsDump *dump = nullptr,
              std::uint64_t *events_out = nullptr)
{
    sim::EventQueue eq;
    m3x::M3xParams params;
    params.userTiles = tiles;
    m3x::M3xSystem sys(eq, params);

    Trace trace = benchTrace(find);
    std::vector<sim::Tick> warm_done(tiles, 0), all_done(tiles, 0);
    unsigned finished = 0;

    for (unsigned t = 0; t < tiles; t++) {
        m3x::M3xAct *player =
            sys.createAct(t, "player" + std::to_string(t));
        m3x::M3xAct *server =
            sys.createAct(t, "fs" + std::to_string(t));
        m3x::M3xChan chan = sys.makeChannel(server, 4600, 8);
        dtu::EpId sep = sys.addSender(chan, player, 4);

        sys.start(server, sim::invoke([&sys, server,
                                       chan]() -> sim::Task {
            co_await m3xFsServer(sys, *server, chan);
        }));
        sys.start(player, sim::invoke([&eq, &sys, &trace, player,
                                       chan, sep, &warm_done,
                                       &all_done, &finished,
                                       t]() -> sim::Task {
            M3xVfs vfs(sys, *player, chan, sep);
            co_await workloads::traceSetup(vfs, trace);
            for (int r = 0; r < kWarmupRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            warm_done[t] = eq.now();
            for (int r = 0; r < kMeasuredRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            all_done[t] = eq.now();
            finished++;
            co_await sys.exit(*player);
        }));
    }
    eq.run();
    if (events_out)
        *events_out = eq.executed();
    if (dump)
        dump->addSection((find ? "m3x_find_" : "m3x_sqlite_") +
                             std::to_string(tiles),
                         eq.metrics());
    if (finished != tiles)
        sim::panic("fig09: only %u/%u m3x players finished", finished,
                   tiles);

    sim::Tick start = 0, end = 0;
    for (unsigned t = 0; t < tiles; t++) {
        start = std::max(start, warm_done[t]);
        end = std::max(end, all_done[t]);
    }
    double secs = sim::ticksToSec(end - start);
    return tiles * kMeasuredRuns / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::banner;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;

    banner("Figure 9",
           "Scalability of context-switch-heavy applications with "
           "tile multiplexing");
    std::printf("(3 GHz x86-style cores; traceplayer + file system "
                "per tile; runs/s)\n\n");

    // M3V_FIG09_TILES caps the tile sweep (CI smoke runs use a
    // reduced configuration; unset means the full figure).
    unsigned max_tiles = 12;
    if (const char *cap = std::getenv("M3V_FIG09_TILES"))
        max_tiles = static_cast<unsigned>(std::atoi(cap));

    // Every (tiles, system, workload) run is an independent cell:
    // its own EventQueue, its own metrics shard, its own result
    // slot. Cells run on --jobs threads; everything is printed and
    // merged in registration order after the join, so the output is
    // byte-identical for any --jobs value.
    std::vector<unsigned> ns;
    const unsigned counts[] = {1, 2, 4, 8, 12};
    for (unsigned n : counts)
        if (n <= max_tiles)
            ns.push_back(n);

    struct CellOut
    {
        double v = 0;
        m3v::bench::MetricsDump dump;
        std::uint64_t events = 0;
    };
    std::vector<CellOut> outs(ns.size() * 4);
    std::vector<m3v::sim::UniqueFunction<void()>> cells;
    for (std::size_t i = 0; i < ns.size(); i++) {
        unsigned n = ns[i];
        // Trace only the first m3v configuration (the file would be
        // huge otherwise).
        std::string trace = i == 0 ? obs.traceOut : std::string();
        CellOut *o = &outs[i * 4];
        cells.push_back([o, n]() {
            o[0].v = m3xRunsPerSec(n, true, &o[0].dump, &o[0].events);
        });
        cells.push_back([o, n, trace]() {
            o[1].v = m3vRunsPerSec(n, true, &o[1].dump, trace,
                                   &o[1].events);
        });
        cells.push_back([o, n]() {
            o[2].v = m3xRunsPerSec(n, false, &o[2].dump, &o[2].events);
        });
        cells.push_back([o, n]() {
            o[3].v = m3vRunsPerSec(n, false, &o[3].dump, {},
                                   &o[3].events);
        });
    }

    double t0 = m3v::bench::wallMs();
    m3v::sim::runCells(obs.jobs, std::move(cells));
    double wall = m3v::bench::wallMs() - t0;

    sim::TablePrinter table({"# tiles", "M3x find", "M3v find",
                             "M3x SQLite", "M3v SQLite"});
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < ns.size(); i++) {
        const CellOut *o = &outs[i * 4];
        table.addRow({std::to_string(ns[i]),
                      sim::fmtDouble(o[0].v, 0),
                      sim::fmtDouble(o[1].v, 0),
                      sim::fmtDouble(o[2].v, 0),
                      sim::fmtDouble(o[3].v, 0)});
        for (int k = 0; k < 4; k++) {
            dump.absorb(o[k].dump);
            events += o[k].events;
        }
    }
    table.print();
    std::printf("\nPaper reference: M3x find 45/49/94 runs/s at "
                "1/2/4 tiles; M3x SQLite 49/82/86/68 at 1/2/4/8;\n"
                "M3v 84 (find) and 111 (SQLite) at 1 tile, scaling "
                "almost linearly to 12 tiles.\n");
    dump.write(obs.metricsOut);
    m3v::bench::writePerfJson(obs.perfOut, obs.jobs, wall, events);

    m3v::bench::Summary summary;
    for (std::size_t i = 0; i < ns.size(); i++) {
        const CellOut *o = &outs[i * 4];
        std::string n = std::to_string(ns[i]);
        summary.add("m3x_find_" + n + "_runs_per_s", o[0].v, 1);
        summary.add("m3v_find_" + n + "_runs_per_s", o[1].v, 1);
        summary.add("m3x_sqlite_" + n + "_runs_per_s", o[2].v, 1);
        summary.add("m3v_sqlite_" + n + "_runs_per_s", o[3].v, 1);
    }
    summary.addU64("events", events);
    summary.write(obs.summaryOut);
    return 0;
}
