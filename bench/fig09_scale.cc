/**
 * @file
 * Figure 9: scalability of context-switch-heavy applications with
 * tile multiplexing on M3x and M3v.
 *
 * Paper setup: gem5 with a 3 GHz out-of-order x86-64 core per tile;
 * Linux system-call traces of "find" (24 directories x 40 files) and
 * "SQLite" (32 inserts + selects) replayed by a trace player, with a
 * file-system instance *on the same tile* — every file-system call
 * needs a context switch there and back. One warmup run, then the
 * application runs per second across 1..12 tiles.
 *
 * Expected shape: M3v ~2x M3x at one tile (84 vs 45 find, 111 vs 49
 * SQLite) and near-linear up to 12 tiles; M3x barely improves (its
 * single-threaded kernel performs every switch for every tile).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "m3x/system.h"
#include "noc/noc.h"
#include "sim/lane.h"
#include "services/fs_proto.h"
#include "services/m3fs.h"
#include "sim/stats.h"
#include "workloads/trace.h"
#include "workloads/vfs_m3v.h"

namespace {

using namespace m3v;
using services::FsReq;
using services::FsResp;
using workloads::Bytes;
using workloads::Trace;

constexpr int kWarmupRuns = 1;
constexpr int kMeasuredRuns = 2;

/** Application compute per trace entry (x86 cycles; calibrated so a
 *  single M3v tile lands near the paper's 84 / 111 runs/s). */
constexpr sim::Cycles kFindEntryCompute = 26'000;
constexpr sim::Cycles kSqliteTxnCompute = 260'000;

Trace
benchTrace(bool find)
{
    return find ? workloads::makeFindTrace(24, 40, kFindEntryCompute)
                : workloads::makeSqliteTrace(32, kSqliteTxnCompute);
}

//
// M3v runner: per tile one trace player and one m3fs instance.
//

double
m3vRunsPerSec(unsigned tiles, bool find,
              bench::MetricsDump *dump = nullptr,
              const std::string &trace_out = {},
              std::uint64_t *events_out = nullptr)
{
    sim::EventQueue eq;
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = tiles;
    params.userModel = tile::CoreModel::x86Ooo();
    params.ctrlModel = tile::CoreModel::x86Ooo();
    params.dram.capacityBytes = (64u + tiles * 24u) << 20;
    os::System sys(eq, params);

    Trace trace = benchTrace(find);
    std::vector<std::unique_ptr<services::M3fs>> fss;
    std::vector<sim::Tick> warm_done(tiles, 0), all_done(tiles, 0);
    unsigned finished = 0;

    for (unsigned t = 0; t < tiles; t++) {
        services::M3fsParams fsp;
        fsp.storageBytes = 16 << 20;
        fss.push_back(
            std::make_unique<services::M3fs>(sys, t, fsp));
        auto *player = sys.createApp(t, "player" + std::to_string(t));
        auto client = fss.back()->addClient(player);
        fss.back()->startService();

        sys.start(player, [&eq, &trace, client, &warm_done,
                           &all_done, &finished,
                           t](os::MuxEnv &env) -> sim::Task {
            workloads::M3vVfs vfs(env, client);
            co_await workloads::traceSetup(vfs, trace);
            for (int r = 0; r < kWarmupRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            warm_done[t] = eq.now();
            for (int r = 0; r < kMeasuredRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            all_done[t] = eq.now();
            finished++;
        });
    }
    eq.run();
    if (events_out)
        *events_out = eq.executed();
    if (dump)
        dump->addSection((find ? "m3v_find_" : "m3v_sqlite_") +
                             std::to_string(tiles),
                         eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    if (finished != tiles)
        sim::panic("fig09: only %u/%u m3v players finished", finished,
                   tiles);

    sim::Tick start = 0, end = 0;
    for (unsigned t = 0; t < tiles; t++) {
        start = std::max(start, warm_done[t]);
        end = std::max(end, all_done[t]);
    }
    double secs = sim::ticksToSec(end - start);
    return tiles * kMeasuredRuns / secs;
}

//
// M3x runner: per tile one trace player and one FS-server activity;
// every operation is an RPC (and thus two context switches).
//

/** Vfs over the M3x RPC file protocol (data inline). */
class M3xVfs : public workloads::Vfs
{
  public:
    M3xVfs(m3x::M3xSystem &sys, m3x::M3xAct &self,
           const m3x::M3xChan &chan, dtu::EpId sep)
        : sys_(sys), self_(self), chan_(chan), sep_(sep)
    {
    }

    tile::Thread &thread() override { return self_.thread(); }

    sim::Task
    rpc(FsReq req, Bytes data, FsResp *resp, Bytes *data_out)
    {
        Bytes payload(sizeof(FsReq) + data.size());
        std::memcpy(payload.data(), &req, sizeof(FsReq));
        std::memcpy(payload.data() + sizeof(FsReq), data.data(),
                    data.size());
        Bytes respb;
        co_await sys_.rpc(self_, chan_, sep_, std::move(payload),
                          &respb);
        if (respb.size() < sizeof(FsResp))
            sim::panic("m3x vfs: short response");
        std::memcpy(resp, respb.data(), sizeof(FsResp));
        if (data_out)
            data_out->assign(
                respb.begin() + static_cast<long>(sizeof(FsResp)),
                respb.end());
    }

    sim::Task open(const std::string &path, std::uint32_t flags,
                   std::unique_ptr<workloads::VfsFile> *out,
                   bool *ok) override;

    sim::Task
    stat(const std::string &path, workloads::VfsStat *out) override
    {
        FsReq req;
        req.op = FsReq::Op::Stat;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        out->exists = resp.err == dtu::Error::None;
        out->isDir = resp.isDir != 0;
        out->size = resp.size;
    }

    sim::Task
    readdir(const std::string &path, std::uint64_t idx,
            std::string *name, bool *ok) override
    {
        if (path == cachePath_ && idx >= cacheStart_ &&
            idx < cacheStart_ + cache_.size()) {
            *name = cache_[idx - cacheStart_];
            *ok = true;
            co_return;
        }
        if (path == cachePath_ &&
            idx == cacheStart_ + cache_.size() && !cacheMore_) {
            *ok = false;
            co_return;
        }
        FsReq req;
        req.op = FsReq::Op::Readdir;
        req.arg = idx;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        if (resp.err != dtu::Error::None || resp.count == 0) {
            *ok = false;
            co_return;
        }
        cachePath_ = path;
        cacheStart_ = idx;
        cache_ = services::FileSession::readdirNames(resp);
        cacheMore_ = resp.more != 0;
        *name = cache_.front();
        *ok = true;
    }

    sim::Task
    unlink(const std::string &path, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::Unlink;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    mkdir(const std::string &path, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::Mkdir;
        std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
        FsResp resp;
        co_await rpc(req, {}, &resp, nullptr);
        *ok = resp.err == dtu::Error::None;
    }

  private:
    friend class M3xVfsFile;

    m3x::M3xSystem &sys_;
    m3x::M3xAct &self_;
    m3x::M3xChan chan_;
    dtu::EpId sep_;
    std::string cachePath_;
    std::uint64_t cacheStart_ = 0;
    std::vector<std::string> cache_;
    bool cacheMore_ = false;
};

class M3xVfsFile : public workloads::VfsFile
{
  public:
    M3xVfsFile(M3xVfs &vfs, std::uint32_t fd) : vfs_(vfs), fd_(fd) {}

    sim::Task
    read(std::size_t want, Bytes *out, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::ReadAt;
        req.fd = fd_;
        req.arg = off_;
        req.size = static_cast<std::uint32_t>(want);
        FsResp resp;
        co_await vfs_.rpc(req, {}, &resp, out);
        off_ += out->size();
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    write(Bytes data, bool *ok) override
    {
        FsReq req;
        req.op = FsReq::Op::WriteAt;
        req.fd = fd_;
        req.arg = off_;
        req.size = static_cast<std::uint32_t>(data.size());
        FsResp resp;
        std::size_t n = data.size();
        co_await vfs_.rpc(req, std::move(data), &resp, nullptr);
        off_ += n;
        *ok = resp.err == dtu::Error::None;
    }

    sim::Task
    seek(std::uint64_t off) override
    {
        off_ = off;
        co_return;
    }

    sim::Task
    close() override
    {
        FsReq req;
        req.op = FsReq::Op::Close;
        req.fd = fd_;
        FsResp resp;
        co_await vfs_.rpc(req, {}, &resp, nullptr);
    }

    std::uint64_t size() const override { return 0; }

  private:
    M3xVfs &vfs_;
    std::uint32_t fd_;
    std::uint64_t off_ = 0;
};

sim::Task
M3xVfs::open(const std::string &path, std::uint32_t flags,
             std::unique_ptr<workloads::VfsFile> *out, bool *ok)
{
    FsReq req;
    req.op = FsReq::Op::Open;
    // Map VfsFlags to FsOpenFlags (identical values).
    req.flags = flags;
    std::strncpy(req.path, path.c_str(), sizeof(req.path) - 1);
    FsResp resp;
    co_await rpc(req, {}, &resp, nullptr);
    if (resp.err != dtu::Error::None) {
        *ok = false;
        co_return;
    }
    *out = std::make_unique<M3xVfsFile>(*this, resp.fd);
    *ok = true;
}

/** The M3x per-tile file server: FsImage + inline data. */
sim::Task
m3xFsServer(m3x::M3xSystem &sys, m3x::M3xAct &self,
            m3x::M3xChan chan)
{
    services::FsImage img(4096); // 16 MiB worth of blocks
    std::map<std::uint32_t, std::pair<services::Ino, bool>> fds;
    std::map<services::Ino, Bytes> contents;
    std::uint32_t next_fd = 3;

    for (;;) {
        Bytes reqb;
        m3x::MsgHdr reply_to;
        co_await sys.serveNext(self, chan, &reqb, &reply_to);
        if (reqb.size() < sizeof(FsReq))
            sim::panic("m3x fs: short request");
        FsReq req;
        std::memcpy(&req, reqb.data(), sizeof(FsReq));
        Bytes data(reqb.begin() + static_cast<long>(sizeof(FsReq)),
                   reqb.end());
        req.path[sizeof(req.path) - 1] = '\0';
        std::string path(req.path);

        FsResp resp;
        Bytes resp_data;
        co_await self.thread().compute(250); // request decode

        switch (req.op) {
          case FsReq::Op::Open: {
            services::Ino ino = img.lookup(path);
            if (ino == services::kNoIno &&
                (req.flags & workloads::kVfsCreate))
                ino = img.create(path, false);
            if (ino == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            if (req.flags & workloads::kVfsTrunc)
                contents[ino].clear();
            fds[next_fd] = {ino,
                            (req.flags & workloads::kVfsW) != 0};
            resp.fd = next_fd++;
            resp.size = contents[ino].size();
            break;
          }
          case FsReq::Op::ReadAt: {
            auto it = fds.find(req.fd);
            if (it == fds.end()) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            Bytes &file = contents[it->second.first];
            std::uint64_t off = req.arg;
            if (off < file.size()) {
                std::size_t n = std::min<std::size_t>(
                    req.size, file.size() - off);
                resp_data.assign(
                    file.begin() + static_cast<long>(off),
                    file.begin() + static_cast<long>(off + n));
            }
            co_await self.thread().compute(400 +
                                           resp_data.size() / 8);
            break;
          }
          case FsReq::Op::WriteAt: {
            auto it = fds.find(req.fd);
            if (it == fds.end() || !it->second.second) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            Bytes &file = contents[it->second.first];
            std::uint64_t off = req.arg;
            if (off + data.size() > file.size())
                file.resize(off + data.size());
            std::memcpy(file.data() + off, data.data(), data.size());
            co_await self.thread().compute(600 + data.size() / 8);
            break;
          }
          case FsReq::Op::Close:
            fds.erase(req.fd);
            break;
          case FsReq::Op::Stat: {
            services::Ino ino = img.lookup(path);
            if (ino == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
            } else {
                resp.size = contents[ino].size();
                resp.isDir = img.inode(ino)->dir ? 1 : 0;
            }
            break;
          }
          case FsReq::Op::Readdir: {
            services::Ino dir = img.lookup(path);
            if (dir == services::kNoIno) {
                resp.err = dtu::Error::InvalidEp;
                break;
            }
            std::size_t off = 0;
            std::uint64_t idx = req.arg;
            resp.count = 0;
            while (resp.count < services::kReaddirBatch) {
                std::string name;
                services::Ino child;
                if (!img.entryAt(dir, idx, &name, &child))
                    break;
                if (off + name.size() + 1 > sizeof(resp.name))
                    break;
                std::memcpy(resp.name + off, name.c_str(),
                            name.size() + 1);
                off += name.size() + 1;
                resp.count++;
                idx++;
            }
            resp.more = idx < img.entryCount(dir) ? 1 : 0;
            break;
          }
          case FsReq::Op::Unlink: {
            services::Ino ino = img.lookup(path);
            if (img.unlink(path)) {
                contents.erase(ino);
            } else {
                resp.err = dtu::Error::InvalidEp;
            }
            break;
          }
          case FsReq::Op::Mkdir:
            resp.err = img.create(path, true) != services::kNoIno
                           ? dtu::Error::None
                           : dtu::Error::InvalidEp;
            break;
          default:
            resp.err = dtu::Error::InvalidEp;
            break;
        }
        co_await self.thread().compute(img.takeOpCost());

        Bytes respb(sizeof(FsResp) + resp_data.size());
        std::memcpy(respb.data(), &resp, sizeof(FsResp));
        std::memcpy(respb.data() + sizeof(FsResp), resp_data.data(),
                    resp_data.size());
        co_await sys.replyTo(self, reply_to, std::move(respb));
    }
}

double
m3xRunsPerSec(unsigned tiles, bool find,
              bench::MetricsDump *dump = nullptr,
              std::uint64_t *events_out = nullptr)
{
    sim::EventQueue eq;
    m3x::M3xParams params;
    params.userTiles = tiles;
    m3x::M3xSystem sys(eq, params);

    Trace trace = benchTrace(find);
    std::vector<sim::Tick> warm_done(tiles, 0), all_done(tiles, 0);
    unsigned finished = 0;

    for (unsigned t = 0; t < tiles; t++) {
        m3x::M3xAct *player =
            sys.createAct(t, "player" + std::to_string(t));
        m3x::M3xAct *server =
            sys.createAct(t, "fs" + std::to_string(t));
        m3x::M3xChan chan = sys.makeChannel(server, 4600, 8);
        dtu::EpId sep = sys.addSender(chan, player, 4);

        sys.start(server, sim::invoke([&sys, server,
                                       chan]() -> sim::Task {
            co_await m3xFsServer(sys, *server, chan);
        }));
        sys.start(player, sim::invoke([&eq, &sys, &trace, player,
                                       chan, sep, &warm_done,
                                       &all_done, &finished,
                                       t]() -> sim::Task {
            M3xVfs vfs(sys, *player, chan, sep);
            co_await workloads::traceSetup(vfs, trace);
            for (int r = 0; r < kWarmupRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            warm_done[t] = eq.now();
            for (int r = 0; r < kMeasuredRuns; r++)
                co_await workloads::tracePlay(vfs, trace, nullptr);
            all_done[t] = eq.now();
            finished++;
            co_await sys.exit(*player);
        }));
    }
    eq.run();
    if (events_out)
        *events_out = eq.executed();
    if (dump)
        dump->addSection((find ? "m3x_find_" : "m3x_sqlite_") +
                             std::to_string(tiles),
                         eq.metrics());
    if (finished != tiles)
        sim::panic("fig09: only %u/%u m3x players finished", finished,
                   tiles);

    sim::Tick start = 0, end = 0;
    for (unsigned t = 0; t < tiles; t++) {
        start = std::max(start, warm_done[t]);
        end = std::max(end, all_done[t]);
    }
    double secs = sim::ticksToSec(end - start);
    return tiles * kMeasuredRuns / secs;
}

//
// Mesh tile-count sweep: the fabric itself, at 64/256/1024 tiles on a
// router-sharded LaneScheduler (one lane per mesh router, per-pair
// lookaheads from the link latencies, distant lanes windowed by the
// distance matrix). Deterministic synthetic traffic; every tile count
// runs at jobs = 1, 2, 4 and the runs must be digest-identical — the
// jobs=1-vs-N gate of the parallel fabric at scale. Simulated-time
// results go to stdout/summary; wall-clock throughput and speedup go
// to stderr and --scale-out (host-dependent numbers must not disturb
// the byte-identical-output contract).
//

constexpr unsigned kMeshShots = 48;
constexpr int kMeshSinkChain = 6;
constexpr sim::Cycles kMeshShotSpacing = 150;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Tile sink: digests every arrival (tick, source, size) in lane
 *  order, then models tile-side processing as a short lane-local
 *  event chain so every router lane carries real work. */
struct MeshSink : noc::HopTarget
{
    sim::EventQueue *eq = nullptr;
    const sim::Clock *clk = nullptr;
    std::uint64_t digest = 0;
    std::uint64_t received = 0;

    bool
    acceptPacket(noc::Packet &pkt,
                 sim::UniqueFunction<void()>) override
    {
        digest = digest * 0x100000001b3ull ^
                 mix64(eq->now() ^
                       (static_cast<std::uint64_t>(pkt.src) << 40) ^
                       (static_cast<std::uint64_t>(pkt.bytes) << 20));
        received++;
        step(kMeshSinkChain);
        return true;
    }

    void
    step(int left)
    {
        if (left == 0)
            return;
        eq->schedule(clk->cyclesToTicks(200), [this, left]() {
            digest = mix64(digest + static_cast<unsigned>(left));
            step(left - 1);
        });
    }
};

/** Per-tile traffic source: kMeshShots packets to pseudo-random
 *  destinations, rebuilt deterministically on every backpressure
 *  retry (inject leaves the packet untouched on false). */
struct MeshInjector
{
    noc::Noc *noc = nullptr;
    unsigned tiles = 0;
    noc::TileId src = 0;

    void
    fire(unsigned shot)
    {
        std::uint64_t h =
            mix64((static_cast<std::uint64_t>(src) << 20) ^ shot);
        noc::Packet p;
        p.src = src;
        p.dst = static_cast<noc::TileId>(
            (src + 1 + h % (tiles - 1)) % tiles);
        p.bytes = 16 + ((h >> 32) % 240);
        noc->inject(p, [this, shot]() { fire(shot); });
    }
};

struct MeshResult
{
    std::uint64_t digest = 0;
    std::uint64_t delivered = 0;
    std::uint64_t bytes = 0;
    std::uint64_t stalls = 0;
    std::uint64_t events = 0;
    sim::Tick finalTick = 0;
    double wallMs = 0;
};

MeshResult
runMeshOnce(unsigned tiles, unsigned jobs)
{
    noc::NocParams np = noc::NocParams::forTiles(tiles);
    unsigned routers = np.meshCols * np.meshRows;
    sim::Tick min_link = noc::Noc::minLinkLatency(np);
    // Small per-pair mailbox budget: in-flight per lane is bounded by
    // the adjacent LaneLinks' credits, and the rings are preallocated
    // (256 lanes * the default budget would be gigabytes).
    sim::LaneScheduler sched(routers, jobs, min_link,
                             /*mailbox_capacity=*/4);
    // Only adjacent router lanes ever post (declared by finalize());
    // everything else stays kNoCrossing so distant lanes earn
    // hop-proportional windows from the distance matrix.
    sched.fillPairLookaheads(sim::LaneScheduler::kNoCrossing);
    noc::Noc fabric(sched.lane(0), np);
    std::vector<unsigned> lane_of_router(routers);
    for (unsigned r = 0; r < routers; r++)
        lane_of_router[r] = r;
    fabric.setRouterLanePlan(sched, lane_of_router);

    std::vector<MeshSink> sinks(tiles);
    for (unsigned t = 0; t < tiles; t++) {
        unsigned r = fabric.nextRouter();
        sinks[t].eq = &sched.lane(r);
        sinks[t].clk = &fabric.clock();
        fabric.attachTile(t, &sinks[t]);
    }
    fabric.finalize();

    const sim::Clock &clk = fabric.clock();
    std::vector<MeshInjector> injectors(tiles);
    for (unsigned t = 0; t < tiles; t++) {
        injectors[t].noc = &fabric;
        injectors[t].tiles = tiles;
        injectors[t].src = t;
        MeshInjector *inj = &injectors[t];
        sim::EventQueue &home = sched.lane(t % routers);
        for (unsigned s = 0; s < kMeshShots; s++) {
            sim::Tick at =
                clk.cyclesToTicks(100 + s * kMeshShotSpacing) +
                mix64(t * 977u + s) % min_link;
            home.scheduleAt(at, [inj, s]() { inj->fire(s); });
        }
    }

    double t0 = m3v::bench::wallMs();
    sched.run();
    MeshResult res;
    res.wallMs = m3v::bench::wallMs() - t0;
    for (unsigned t = 0; t < tiles; t++)
        res.digest = res.digest * 0x100000001b3ull ^ sinks[t].digest;
    res.delivered = fabric.delivered();
    res.bytes = fabric.deliveredBytes();
    res.stalls = fabric.portStalls();
    res.events = sched.executed();
    for (unsigned r = 0; r < routers; r++)
        res.finalTick = std::max(res.finalTick, sched.lane(r).now());
    if (res.delivered !=
        static_cast<std::uint64_t>(tiles) * kMeshShots)
        sim::panic("fig09 mesh: %llu/%llu packets delivered",
                   static_cast<unsigned long long>(res.delivered),
                   static_cast<unsigned long long>(
                       static_cast<std::uint64_t>(tiles) *
                       kMeshShots));
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::banner;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;
    m3v::bench::Summary summary;

    // Sweep-local flags (parseObsArgs ignores what it doesn't know):
    // --mesh-only skips the trace-replay sweep (CI mesh smoke);
    // --scale-out=FILE records the host-side mesh throughput JSON.
    bool mesh_only = false;
    std::string scale_out;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--mesh-only"))
            mesh_only = true;
        else if (!std::strncmp(argv[i], "--scale-out=", 12))
            scale_out = argv[i] + 12;
    }

    banner("Figure 9",
           "Scalability of context-switch-heavy applications with "
           "tile multiplexing");
    std::printf("(3 GHz x86-style cores; traceplayer + file system "
                "per tile; runs/s)\n\n");

    // M3V_FIG09_TILES caps the tile sweep (CI smoke runs use a
    // reduced configuration; unset means the full figure). 64 and
    // beyond additionally enables the mesh fabric sweep.
    unsigned max_tiles = 12;
    if (const char *cap = std::getenv("M3V_FIG09_TILES"))
        max_tiles = static_cast<unsigned>(std::atoi(cap));

    if (!mesh_only) {
    // Every (tiles, system, workload) run is an independent cell:
    // its own EventQueue, its own metrics shard, its own result
    // slot. Cells run on --jobs threads; everything is printed and
    // merged in registration order after the join, so the output is
    // byte-identical for any --jobs value.
    std::vector<unsigned> ns;
    const unsigned counts[] = {1, 2, 4, 8, 12};
    for (unsigned n : counts)
        if (n <= max_tiles)
            ns.push_back(n);

    struct CellOut
    {
        double v = 0;
        m3v::bench::MetricsDump dump;
        std::uint64_t events = 0;
    };
    std::vector<CellOut> outs(ns.size() * 4);
    std::vector<m3v::sim::UniqueFunction<void()>> cells;
    for (std::size_t i = 0; i < ns.size(); i++) {
        unsigned n = ns[i];
        // Trace only the first m3v configuration (the file would be
        // huge otherwise).
        std::string trace = i == 0 ? obs.traceOut : std::string();
        CellOut *o = &outs[i * 4];
        cells.push_back([o, n]() {
            o[0].v = m3xRunsPerSec(n, true, &o[0].dump, &o[0].events);
        });
        cells.push_back([o, n, trace]() {
            o[1].v = m3vRunsPerSec(n, true, &o[1].dump, trace,
                                   &o[1].events);
        });
        cells.push_back([o, n]() {
            o[2].v = m3xRunsPerSec(n, false, &o[2].dump, &o[2].events);
        });
        cells.push_back([o, n]() {
            o[3].v = m3vRunsPerSec(n, false, &o[3].dump, {},
                                   &o[3].events);
        });
    }

    double t0 = m3v::bench::wallMs();
    m3v::sim::runCells(obs.jobs, std::move(cells));
    double wall = m3v::bench::wallMs() - t0;

    sim::TablePrinter table({"# tiles", "M3x find", "M3v find",
                             "M3x SQLite", "M3v SQLite"});
    std::uint64_t events = 0;
    for (std::size_t i = 0; i < ns.size(); i++) {
        const CellOut *o = &outs[i * 4];
        table.addRow({std::to_string(ns[i]),
                      sim::fmtDouble(o[0].v, 0),
                      sim::fmtDouble(o[1].v, 0),
                      sim::fmtDouble(o[2].v, 0),
                      sim::fmtDouble(o[3].v, 0)});
        for (int k = 0; k < 4; k++) {
            dump.absorb(o[k].dump);
            events += o[k].events;
        }
    }
    table.print();
    std::printf("\nPaper reference: M3x find 45/49/94 runs/s at "
                "1/2/4 tiles; M3x SQLite 49/82/86/68 at 1/2/4/8;\n"
                "M3v 84 (find) and 111 (SQLite) at 1 tile, scaling "
                "almost linearly to 12 tiles.\n");
    dump.write(obs.metricsOut);
    m3v::bench::writePerfJson(obs.perfOut, obs.jobs, wall, events);

    for (std::size_t i = 0; i < ns.size(); i++) {
        const CellOut *o = &outs[i * 4];
        std::string n = std::to_string(ns[i]);
        summary.add("m3x_find_" + n + "_runs_per_s", o[0].v, 1);
        summary.add("m3v_find_" + n + "_runs_per_s", o[1].v, 1);
        summary.add("m3x_sqlite_" + n + "_runs_per_s", o[2].v, 1);
        summary.add("m3v_sqlite_" + n + "_runs_per_s", o[3].v, 1);
    }
    summary.addU64("events", events);
    } // !mesh_only

    // Mesh fabric sweep (64+ tiles): only simulated-time results are
    // printed / summarized, so stdout stays byte-identical for any
    // --jobs; the internal jobs = {1, 2, 4} runs must agree exactly.
    std::vector<unsigned> mesh_ns;
    for (unsigned n : {64u, 256u, 1024u})
        if (n <= max_tiles)
            mesh_ns.push_back(n);
    if (!mesh_ns.empty()) {
        std::printf("\nMesh fabric sweep (k-ary 2D mesh, one lane "
                    "per router, jobs=1/2/4 digest-checked):\n\n");
        sim::TablePrinter mesh_table(
            {"# tiles", "mesh", "delivered", "stalls", "final us",
             "digest"});
        struct MeshRow
        {
            unsigned tiles = 0;
            noc::NocParams np;
            MeshResult r1, r2, r4;
        };
        std::vector<MeshRow> rows;
        for (unsigned n : mesh_ns) {
            MeshRow row;
            row.tiles = n;
            row.np = noc::NocParams::forTiles(n);
            row.r1 = runMeshOnce(n, 1);
            row.r2 = runMeshOnce(n, 2);
            row.r4 = runMeshOnce(n, 4);
            for (const MeshResult *r : {&row.r2, &row.r4}) {
                if (r->digest != row.r1.digest ||
                    r->delivered != row.r1.delivered ||
                    r->events != row.r1.events ||
                    r->finalTick != row.r1.finalTick)
                    sim::panic("fig09 mesh: %u-tile run diverges "
                               "across jobs (digest %016llx vs "
                               "%016llx)",
                               n,
                               static_cast<unsigned long long>(
                                   row.r1.digest),
                               static_cast<unsigned long long>(
                                   r->digest));
            }
            char digest_hex[32], mesh_dim[32];
            std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                          static_cast<unsigned long long>(
                              row.r1.digest));
            std::snprintf(mesh_dim, sizeof(mesh_dim), "%ux%u",
                          row.np.meshCols, row.np.meshRows);
            mesh_table.addRow(
                {std::to_string(n), mesh_dim,
                 std::to_string(row.r1.delivered),
                 std::to_string(row.r1.stalls),
                 sim::fmtDouble(
                     sim::ticksToSec(row.r1.finalTick) * 1e6, 2),
                 digest_hex});
            std::string key = "mesh_" + std::to_string(n);
            summary.addU64(key + "_delivered", row.r1.delivered);
            summary.addU64(key + "_bytes", row.r1.bytes);
            summary.addU64(key + "_stalls", row.r1.stalls);
            summary.addU64(key + "_final_tick", row.r1.finalTick);
            summary.addU64(key + "_digest", row.r1.digest);
            rows.push_back(row);
        }
        mesh_table.print();

        // Host-side throughput: stderr + --scale-out only (never
        // stdout — wall clock is not deterministic).
        unsigned hw = std::thread::hardware_concurrency();
        for (const MeshRow &row : rows) {
            std::fprintf(
                stderr,
                "mesh %u tiles: jobs1 %.1f ms (%.0f ev/s), jobs2 "
                "%.1f ms, jobs4 %.1f ms, speedup4 %.2f\n",
                row.tiles, row.r1.wallMs,
                row.r1.events / (row.r1.wallMs / 1000.0),
                row.r2.wallMs, row.r4.wallMs,
                row.r1.wallMs / row.r4.wallMs);
        }
        if (!scale_out.empty()) {
            FILE *f = std::fopen(scale_out.c_str(), "w");
            if (!f)
                sim::panic("fig09 mesh: cannot write %s",
                           scale_out.c_str());
            std::fprintf(f,
                         "{\n  \"bench\": \"fig09_scale mesh "
                         "sweep\",\n  \"hw_concurrency\": %u,\n"
                         "  \"mesh\": [\n",
                         hw);
            for (std::size_t i = 0; i < rows.size(); i++) {
                const MeshRow &row = rows[i];
                // Sampled per row: on shared CI runners the visible
                // core count can change between rows (cgroup
                // resizes), and a row's speedup is only meaningful
                // against the cores it actually had.
                unsigned row_hw =
                    std::thread::hardware_concurrency();
                bool valid = row_hw >= 4;
                std::fprintf(
                    f,
                    "    {\n      \"tiles\": %u,\n"
                    "      \"mesh\": \"%ux%u\",\n"
                    "      \"routers\": %u,\n"
                    "      \"events\": %llu,\n"
                    "      \"delivered\": %llu,\n"
                    "      \"stalls\": %llu,\n"
                    "      \"digest\": \"%016llx\",\n"
                    "      \"hw_concurrency\": %u,\n"
                    "      \"jobs1_wall_ms\": %.3f,\n"
                    "      \"jobs2_wall_ms\": %.3f,\n"
                    "      \"jobs4_wall_ms\": %.3f,\n"
                    "      \"events_per_sec_jobs1\": %.0f,\n"
                    "      \"events_per_sec_jobs2\": %.0f,\n"
                    "      \"events_per_sec_jobs4\": %.0f,\n"
                    "      \"speedup_valid\": %s",
                    row.tiles, row.np.meshCols, row.np.meshRows,
                    row.np.meshCols * row.np.meshRows,
                    static_cast<unsigned long long>(row.r1.events),
                    static_cast<unsigned long long>(
                        row.r1.delivered),
                    static_cast<unsigned long long>(row.r1.stalls),
                    static_cast<unsigned long long>(row.r1.digest),
                    row_hw, row.r1.wallMs, row.r2.wallMs,
                    row.r4.wallMs,
                    row.r1.events / (row.r1.wallMs / 1000.0),
                    row.r1.events / (row.r2.wallMs / 1000.0),
                    row.r1.events / (row.r4.wallMs / 1000.0),
                    valid ? "true" : "false");
                // The speedup keys are only present when the host
                // can actually run 4 workers (see ci/bench_smoke.sh:
                // absent beats a null that reads as 0 downstream).
                if (valid)
                    std::fprintf(
                        f,
                        ",\n      \"speedup2\": %.3f,\n"
                        "      \"speedup4\": %.3f",
                        row.r1.wallMs / row.r2.wallMs,
                        row.r1.wallMs / row.r4.wallMs);
                std::fprintf(f, "\n    }%s\n",
                             i + 1 < rows.size() ? "," : "");
            }
            std::fprintf(f, "  ]\n}\n");
            std::fclose(f);
        }
    }
    summary.write(obs.summaryOut);
    return 0;
}
