/**
 * @file
 * Figure 6: local/remote no-op RPC on M3v and similar primitives on
 * Linux, plus the section 6.2 M3x tile-local reference number.
 *
 * Paper setup: 1000 runs on a warm system; M3v on one or two BOOM
 * cores, Linux on a single BOOM core; M3x measured on gem5's 3 GHz
 * x86 model (27k cycles, vs ~5k for M3v).
 *
 * Expected shape: M3v remote ~ Linux syscall; M3v local ~ 2x Linux
 * yield ~ 5k cycles; M3x local ~5x M3v local (at 3 GHz).
 */

#include <cstdio>

#include "bench_util.h"
#include "linuxref/kernel.h"
#include "m3x/system.h"
#include "os/system.h"
#include "sim/lane.h"

namespace {

using namespace m3v;
using os::Bytes;

constexpr int kWarmup = 50;
constexpr int kRuns = 1000;

struct Meas
{
    double meanUs = 0;
    double stddevUs = 0;
};

/** M3v no-op RPC, local (same tile) or remote (two tiles). */
Meas
m3vRpc(bool local, bench::MetricsDump *dump,
       const std::string &trace_out)
{
    sim::EventQueue eq;
    // Must precede construction: subsystems emit their trace
    // metadata (process/thread names) only when tracing is on.
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = 2;
    os::System sys(eq, params);

    auto *client = sys.createApp(0, "client", 6 * 1024);
    auto *server = sys.createApp(local ? 0 : 1, "server", 6 * 1024);
    auto srv_rep = sys.makeRgate(server);
    auto sg = sys.makeSgate(client, server, srv_rep.ep, 1, 4);
    auto cli_rep = sys.makeRgate(client);

    sys.start(server, [srv_rep](os::MuxEnv &env) -> sim::Task {
        for (;;) {
            int slot = -1;
            co_await env.recvOn(srv_rep.ep, &slot);
            dtu::Error err = dtu::Error::None;
            co_await env.reply(srv_rep.ep, slot, Bytes{}, &err);
        }
    });

    sim::Sampler lat;
    sys.start(client, [&, sg, cli_rep](os::MuxEnv &env) -> sim::Task {
        for (int i = 0; i < kWarmup; i++) {
            Bytes resp;
            dtu::Error err = dtu::Error::None;
            co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                              &err);
        }
        for (int i = 0; i < kRuns; i++) {
            sim::Tick t0 = env.thread().core().now();
            Bytes resp;
            dtu::Error err = dtu::Error::None;
            co_await env.call(sg.ep, cli_rep.ep, Bytes{}, &resp,
                              &err);
            lat.add(sim::ticksToUs(env.thread().core().now() - t0));
        }
    });
    eq.run();
    if (dump)
        dump->addSection(local ? "m3v_local" : "m3v_remote",
                         eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    return Meas{lat.mean(), lat.stddev()};
}

/** Linux no-op system call. */
sim::Tick
linuxSyscall()
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    linuxref::LinuxKernel kernel(eq, "k", core);
    auto *p = kernel.createProcess("bench", 6 * 1024);
    sim::Tick total = 0;
    kernel.start(p, sim::invoke([&kernel, p, &total,
                                 &eq]() -> sim::Task {
        for (int i = 0; i < kWarmup; i++)
            co_await kernel.sysNoop(*p);
        sim::Tick t0 = eq.now();
        for (int i = 0; i < kRuns; i++)
            co_await kernel.sysNoop(*p);
        total = eq.now() - t0;
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    return total / kRuns;
}

/** Two Linux yields (two context switches between two processes). */
sim::Tick
linuxYield2x()
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    linuxref::LinuxKernel kernel(eq, "k", core);
    auto *a = kernel.createProcess("a", 6 * 1024);
    auto *b = kernel.createProcess("b", 6 * 1024);
    sim::Tick total = 0;
    bool stop = false;
    kernel.start(a, sim::invoke([&]() -> sim::Task {
        for (int i = 0; i < kWarmup; i++)
            co_await kernel.sysYield(*a);
        sim::Tick t0 = eq.now();
        for (int i = 0; i < kRuns; i++)
            co_await kernel.sysYield(*a);
        total = eq.now() - t0;
        stop = true;
        co_await kernel.sysExit(*a);
    }));
    kernel.start(b, sim::invoke([&]() -> sim::Task {
        while (!stop)
            co_await kernel.sysYield(*b);
        co_await kernel.sysExit(*b);
    }));
    eq.run();
    // One "a" yield round is two context switches (a->b->a).
    return total / kRuns;
}

/** M3x tile-local RPC at 3 GHz (section 6.2 reference). */
sim::Tick
m3xLocalRpc(bench::MetricsDump *dump)
{
    sim::EventQueue eq;
    m3x::M3xParams params;
    params.userTiles = 2;
    m3x::M3xSystem sys(eq, params);
    auto *client = sys.createAct(0, "client");
    auto *server = sys.createAct(0, "server");
    m3x::M3xChan chan = sys.makeChannel(server);
    dtu::EpId sep = sys.addSender(chan, client);

    sys.start(server, sim::invoke([&sys, server,
                                   chan]() -> sim::Task {
        for (;;) {
            Bytes req;
            m3x::MsgHdr rt;
            co_await sys.serveNext(*server, chan, &req, &rt);
            co_await sys.replyTo(*server, rt, Bytes{});
        }
    }));

    sim::Tick total = 0;
    constexpr int kM3xRuns = 100; // switches are slow; fewer reps
    sys.start(client, sim::invoke([&, sep]() -> sim::Task {
        for (int i = 0; i < 10; i++) {
            Bytes resp;
            co_await sys.rpc(*client, chan, sep, Bytes{}, &resp);
        }
        sim::Tick t0 = eq.now();
        for (int i = 0; i < kM3xRuns; i++) {
            Bytes resp;
            co_await sys.rpc(*client, chan, sep, Bytes{}, &resp);
        }
        total = eq.now() - t0;
        co_await sys.exit(*client);
    }));
    eq.run();
    if (dump)
        dump->addSection("m3x", eq.metrics());
    return total / kM3xRuns;
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::Bar;
    using m3v::bench::banner;
    using m3v::bench::printBars;
    using m3v::bench::ticksToCycles;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;

    banner("Figure 6",
           "Local/remote communication on M3v and similar "
           "primitives on Linux");

    // Each measurement is an independent cell (own EventQueue, own
    // metrics shard); cells run on --jobs threads and all output is
    // produced in registration order after the join.
    sim::Tick yield2 = 0, sysc = 0, m3x = 0;
    Meas local, remote;
    m3v::bench::MetricsDump dlocal, dremote, dm3x;
    std::string trace = obs.traceOut;
    std::vector<sim::UniqueFunction<void()>> cells;
    cells.push_back([&yield2]() { yield2 = linuxYield2x(); });
    cells.push_back([&sysc]() { sysc = linuxSyscall(); });
    cells.push_back(
        [&local, &dlocal]() { local = m3vRpc(true, &dlocal, ""); });
    // The remote run exercises the NoC and both tiles; it is the one
    // worth tracing.
    cells.push_back([&remote, &dremote, trace]() {
        remote = m3vRpc(false, &dremote, trace);
    });
    cells.push_back([&m3x, &dm3x]() { m3x = m3xLocalRpc(&dm3x); });
    sim::runCells(obs.jobs, std::move(cells));
    dump.absorb(dlocal);
    dump.absorb(dremote);
    dump.absorb(dm3x);

    constexpr std::uint64_t kBoom = 80'000'000;
    std::vector<Bar> us = {
        {"Linux yield (2x)", sim::ticksToUs(yield2), 0},
        {"Linux syscall", sim::ticksToUs(sysc), 0},
        {"M3v local", local.meanUs, local.stddevUs},
        {"M3v remote", remote.meanUs, remote.stddevUs},
    };
    printBars(us, "us");
    std::printf("\n");
    auto us_to_kcyc = [&](double us_val) {
        return us_val * 1e-6 * kBoom / 1000.0;
    };
    std::vector<Bar> cycles = {
        {"Linux yield (2x)", ticksToCycles(yield2, kBoom) / 1000, 0},
        {"Linux syscall", ticksToCycles(sysc, kBoom) / 1000, 0},
        {"M3v local", us_to_kcyc(local.meanUs), 0},
        {"M3v remote", us_to_kcyc(remote.meanUs), 0},
    };
    printBars(cycles, "Kcycles", 2);

    std::printf("\nSection 6.2 reference (gem5-style 3 GHz x86):\n");
    std::printf("  M3x tile-local RPC: %.1f us = %.1f Kcycles "
                "(paper: ~9 us / ~27 Kcycles)\n",
                sim::ticksToUs(m3x),
                ticksToCycles(m3x, 3'000'000'000ULL) / 1000);
    std::printf("  M3v tile-local RPC @80 MHz: %.1f Kcycles "
                "(paper: ~5 Kcycles)\n",
                us_to_kcyc(local.meanUs));
    dump.write(obs.metricsOut);

    m3v::bench::Summary summary;
    summary.add("linux_yield2x_us", sim::ticksToUs(yield2));
    summary.add("linux_syscall_us", sim::ticksToUs(sysc));
    summary.add("m3v_local_us", local.meanUs);
    summary.add("m3v_local_stddev_us", local.stddevUs);
    summary.add("m3v_remote_us", remote.meanUs);
    summary.add("m3v_remote_stddev_us", remote.stddevUs);
    summary.add("m3x_local_us", sim::ticksToUs(m3x));
    summary.write(obs.summaryOut);
    return 0;
}
