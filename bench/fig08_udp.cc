/**
 * @file
 * Figure 8: UDP round-trip latency between the platform and a
 * directly connected peer host (the paper's AMD Ryzen): 1-byte
 * packets, 50 repetitions after 5 warmup runs. M3v is measured with
 * the benchmark, net stack and pager sharing one BOOM core
 * ("shared") and on separate cores ("isolated"); Linux uses its
 * in-kernel UDP stack on one core.
 *
 * Expected shape: M3v (shared) competitive with Linux; isolated
 * lower (no context switches on the NIC tile's core).
 */

#include <cstdio>

#include "bench_util.h"
#include "linuxref/kernel.h"
#include "services/net.h"
#include "sim/lane.h"
#include "services/pager.h"

namespace {

using namespace m3v;
using os::Bytes;

constexpr int kWarmup = 5;
constexpr int kRuns = 50;

struct Result
{
    double meanUs = 0;
    double stddevUs = 0;
};

Result
m3vUdp(bool shared, bench::MetricsDump *dump,
       const std::string &trace_out)
{
    sim::EventQueue eq;
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = 3;
    os::System sys(eq, params);

    // The NIC is attached to the net tile's core (tile 0).
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);

    unsigned net_tile = 0;
    unsigned app_tile = shared ? 0 : 1;
    unsigned pager_tile = shared ? 0 : 2;

    services::NetService net(sys, net_tile, nic);
    services::PagerService pager(sys, pager_tile);
    auto *app = sys.createApp(app_tile, "bench", 8 * 1024);
    auto net_client = net.addClient(app);
    auto pager_client = pager.addClient(app);
    net.startService();
    pager.startService();

    sim::Sampler lat;
    sys.start(app, [&, net_client,
                    pager_client](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr va = 0;
        dtu::Error perr = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 2, &va,
                                         &perr);
        services::UdpSocket sock(env, net_client);
        dtu::Error err = dtu::Error::None;
        co_await sock.create(7000, &err);
        for (int i = 0; i < kWarmup + kRuns; i++) {
            sim::Tick t0 = eq.now();
            co_await sock.sendTo(0x0a000001, 9, Bytes(1, 0x55),
                                 &err);
            Bytes back;
            co_await sock.recv(&back, &err);
            if (i >= kWarmup)
                lat.add(sim::ticksToUs(eq.now() - t0));
        }
    });
    eq.run();
    if (dump)
        dump->addSection(shared ? "m3v_shared" : "m3v_isolated",
                         eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    return Result{lat.mean(), lat.stddev()};
}

Result
linuxUdp()
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);
    linuxref::LinuxKernel kernel(eq, "k", core, linuxref::LinuxCosts{},
                                 &nic);
    auto *p = kernel.createProcess("bench", 8 * 1024);
    sim::Sampler lat;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        int s = -1;
        co_await kernel.sysSocket(*p, 7000, &s);
        for (int i = 0; i < kWarmup + kRuns; i++) {
            sim::Tick t0 = eq.now();
            co_await kernel.sysSendTo(*p, s, 0x0a000001, 9,
                                      Bytes(1, 0x55));
            Bytes back;
            co_await kernel.sysRecvFrom(*p, s, &back);
            if (i >= kWarmup)
                lat.add(sim::ticksToUs(eq.now() - t0));
        }
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    return Result{lat.mean(), lat.stddev()};
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::Bar;
    using m3v::bench::banner;
    using m3v::bench::printBars;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;

    banner("Figure 8",
           "UDP round-trip latency to a directly connected host "
           "(1-byte packets)");

    // The three measurements are independent cells run on --jobs
    // threads; output order is fixed after the join.
    Result lin, shared, isolated;
    m3v::bench::MetricsDump dshared, disolated;
    std::string trace = obs.traceOut;
    std::vector<sim::UniqueFunction<void()>> cells;
    cells.push_back([&lin]() { lin = linuxUdp(); });
    cells.push_back([&shared, &dshared]() {
        shared = m3vUdp(true, &dshared, "");
    });
    cells.push_back([&isolated, &disolated, trace]() {
        isolated = m3vUdp(false, &disolated, trace);
    });
    sim::runCells(obs.jobs, std::move(cells));
    dump.absorb(dshared);
    dump.absorb(disolated);

    std::vector<Bar> bars = {
        {"Linux", lin.meanUs, lin.stddevUs},
        {"M3v (shared)", shared.meanUs, shared.stddevUs},
        {"M3v (isolated)", isolated.meanUs, isolated.stddevUs},
    };
    printBars(bars, "us");
    std::printf("\nNote: as in the paper, the isolated result uses "
                "multiple tiles and\ncannot be compared to "
                "single-tile Linux directly.\n");
    dump.write(obs.metricsOut);
    return 0;
}
