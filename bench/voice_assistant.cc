/**
 * @file
 * Section 6.5.1: the IoT voice assistant. Four components: a trigger
 * scanner on its own (simple, trustworthy) Rocket tile, and a
 * compressor (flac-lite), the net stack and the pager either all on
 * one BOOM tile ("shared") or on dedicated tiles ("isolated"). The
 * scanner delegates a memory capability for the detected audio to
 * the compressor, which compresses it and sends it via UDP to the
 * peer host (sink — the paper also fell back to UDP).
 *
 * Paper result: 384 ms isolated vs 398 ms shared over 16 repetitions
 * after warmup: a ~3.6% sharing overhead (context switches plus
 * competition for the shared core).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "os/system.h"
#include "services/net.h"
#include "services/pager.h"
#include "workloads/flac.h"

namespace {

using namespace m3v;
using os::Bytes;
using workloads::Samples;

constexpr int kWarmup = 2;
constexpr int kReps = 16;
/** One second of audio per repetition at 16 kHz. */
constexpr std::size_t kChunkSamples = 16000;

/** Scanner -> compressor request: audio is in the shared buffer. */
struct CompressReq
{
    std::uint32_t samples = 0;
    std::uint64_t seed = 0;
};

double
runVoice(bool shared)
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 4;
    // The scanner runs on a simple Rocket core to keep its trusted
    // computing base small (section 6.5.1).
    params.tileModels[3] = tile::CoreModel::rocket();
    params.dram.capacityBytes = 128 << 20;
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);

    unsigned scanner_tile = 3;
    unsigned comp_tile = 0;
    unsigned net_tile = 0; // the NIC hangs off tile 0's core
    unsigned pager_tile = shared ? 0 : 1;
    // Isolated: compressor gets its own tile (the NIC tile keeps the
    // net stack; the compressor moves off it).
    if (!shared)
        comp_tile = 2;

    services::NetService net(sys, net_tile, nic);
    services::PagerService pager(sys, pager_tile);
    auto *scanner = sys.createApp(scanner_tile, "scanner", 6 * 1024);
    auto *comp = sys.createApp(comp_tile, "compressor", 10 * 1024);
    auto net_client = net.addClient(comp);
    auto pager_client = pager.addClient(comp);

    // Shared audio buffer: the scanner owns it and delegates access
    // to the compressor (boot-granted here; the runtime delegation
    // cost is modelled by the per-chunk syscall below).
    auto audio_mg = sys.makeMgate(scanner, 256 * 1024, dtu::kPermRW);
    dtu::EpId comp_mep = sys.allocEp(comp_tile);
    os::CapSel comp_cap = sys.grantActCap(scanner, comp);

    // Scanner -> compressor request channel and the completion
    // notification back (so the scanner paces the pipeline).
    auto comp_rep = sys.makeRgate(comp, 64, 4);
    auto scan_sg = sys.makeSgate(scanner, comp, comp_rep.ep, 1, 2);
    auto scan_rep = sys.makeRgate(scanner, 64, 4);
    auto comp_sg = sys.makeSgate(comp, scanner, scan_rep.ep, 2, 2);

    net.startService();
    pager.startService();

    sim::Tick t_start = 0, t_end = 0;
    int done_reps = 0;

    // The compressor: receive a request, read the samples through
    // the delegated memory capability, compress, send via UDP.
    sys.start(comp, [&, net_client, pager_client, comp_rep,
                     comp_sg](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr heap = 0;
        dtu::Error perr = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 16, &heap,
                                         &perr);
        services::UdpSocket sock(env, net_client);
        dtu::Error err = dtu::Error::None;
        co_await sock.create(7000, &err);

        for (;;) {
            int slot = -1;
            co_await env.recvOn(comp_rep.ep, &slot);
            CompressReq req = os::podFrom<CompressReq>(
                env.msgAt(comp_rep.ep, slot).payload);
            co_await env.ackMsg(comp_rep.ep, slot);

            // Read the audio through the memory capability, page by
            // page, reassembling the sample buffer.
            Samples samples(req.samples);
            std::size_t bytes = req.samples * 2;
            Bytes raw;
            raw.reserve(bytes);
            for (std::size_t off = 0; off < bytes;
                 off += dtu::kPageSize) {
                Bytes page;
                co_await env.readMem(
                    comp_mep, off,
                    std::min<std::size_t>(dtu::kPageSize,
                                          bytes - off),
                    &page, &err);
                raw.insert(raw.end(), page.begin(), page.end());
            }
            std::memcpy(samples.data(), raw.data(),
                        std::min(raw.size(), bytes));

            // Compress for real, charging the modelled cycles.
            auto frames = workloads::flacEncode(samples);
            sim::Cycles cost = 0;
            for (const auto &f : frames)
                cost += workloads::flacEncodeCost(f);
            co_await env.thread().compute(cost);

            // Ship the compressed stream via UDP (1.2 KiB packets).
            std::size_t enc_bytes = workloads::flacBytes(frames);
            for (std::size_t off = 0; off < enc_bytes; off += 1200) {
                std::size_t n =
                    std::min<std::size_t>(1200, enc_bytes - off);
                co_await sock.sendTo(0x0a000001, 9, Bytes(n, 0xaa),
                                     &err);
            }
            done_reps++;
            dtu::Error derr = dtu::Error::None;
            co_await env.send(comp_sg.ep, Bytes(1, 1),
                              dtu::kInvalidEp, &derr);
        }
    });

    // The scanner: generate+scan audio windows; on trigger, write
    // the samples into the shared buffer, refresh the compressor's
    // capability (ActivateFor syscall = the delegation cost) and
    // notify it.
    sys.start(scanner, [&, scan_sg, scan_rep,
                        audio_mg](os::MuxEnv &env) -> sim::Task {
        workloads::AudioParams ap;
        for (int rep = 0; rep < kWarmup + kReps; rep++) {
            if (rep == kWarmup)
                t_start = eq.now();
            ap.seed = static_cast<std::uint64_t>(rep + 1);
            Samples audio = workloads::generateAudio(kChunkSamples,
                                                     ap, true);
            co_await env.thread().compute(
                workloads::scanCost(audio.size()));
            if (!workloads::scanForTrigger(audio, ap.sampleRate))
                sim::panic("voice: trigger not detected");

            // Store the samples into the shared buffer.
            Bytes raw(audio.size() * 2);
            std::memcpy(raw.data(), audio.data(), raw.size());
            dtu::Error err = dtu::Error::None;
            for (std::size_t off = 0; off < raw.size();
                 off += dtu::kPageSize) {
                std::size_t n = std::min<std::size_t>(
                    dtu::kPageSize, raw.size() - off);
                co_await env.writeMem(
                    audio_mg.ep, off,
                    Bytes(raw.begin() + static_cast<long>(off),
                          raw.begin() + static_cast<long>(off + n)),
                    &err);
            }

            // Delegate the buffer to the compressor (the memory
            // capability is activated into its endpoint).
            os::SyscallReq sc;
            os::SyscallResp sr;
            sc.op = os::SyscallReq::Op::ActivateFor;
            sc.arg0 = comp_cap;
            sc.arg1 = comp_mep;
            sc.arg2 = audio_mg.sel;
            co_await env.syscall(sc, &sr);

            CompressReq req;
            req.samples = kChunkSamples;
            req.seed = ap.seed;
            co_await env.send(scan_sg.ep, os::podBytes(req),
                              dtu::kInvalidEp, &err);

            // Wait for the compressor to finish this chunk (fixed
            // 16 repetitions, like the paper).
            int slot = -1;
            co_await env.recvOn(scan_rep.ep, &slot);
            co_await env.ackMsg(scan_rep.ep, slot);
        }
        t_end = eq.now();
    });

    eq.run();
    if (done_reps < kWarmup + kReps)
        sim::panic("voice: pipeline incomplete (%d reps)", done_reps);
    return sim::ticksToMs(t_end - t_start);
}

} // namespace

int
main()
{
    using m3v::bench::banner;

    banner("Section 6.5.1",
           "Voice assistant: trigger scan -> flac-lite compression "
           "-> UDP upload");

    double isolated = runVoice(false);
    double shared = runVoice(true);
    double overhead = (shared - isolated) / isolated * 100.0;

    std::printf("  isolated: %7.1f ms   (paper: 384 ms)\n", isolated);
    std::printf("  shared:   %7.1f ms   (paper: 398 ms)\n", shared);
    std::printf("  sharing overhead: %.1f%% (paper: 3.6%%)\n",
                overhead);
    return 0;
}
