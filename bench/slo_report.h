/**
 * @file
 * SLO accounting for the open-loop fleet benchmark: latencies are
 * bucketed into fixed wall-of-simulated-time windows keyed by the
 * request's *scheduled* arrival (coordinated-omission-free: a request
 * the client could not even issue on time still counts against the
 * window it belonged to). From the windows the report derives the
 * pre-fault p99 baseline, the goodput floor while a chaos drill is in
 * flight, and the time-to-SLO-recovery after the drill ends.
 *
 * Everything is integer tick math over simulated time, so the report
 * is byte-identical across hosts and --jobs values.
 */

#ifndef M3VSIM_BENCH_SLO_REPORT_H_
#define M3VSIM_BENCH_SLO_REPORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "sim/types.h"

namespace m3v::bench {

/** Windowed SLO statistics for one fleet cell. */
class SloReport
{
  public:
    /**
     * @param start   first tick of window 0
     * @param horizon end of the measured interval
     * @param window  window width in ticks
     * @param slo     latency SLO in ticks (goodput = within SLO)
     */
    SloReport(sim::Tick start, sim::Tick horizon, sim::Tick window,
              sim::Tick slo)
        : start_(start), window_(window), slo_(slo),
          wins_((horizon > start ? horizon - start : 0) / window + 1)
    {
    }

    /** A request completed: scheduled at @p sched, took @p latency. */
    void
    feed(sim::Tick sched, sim::Tick latency, bool ok)
    {
        Win &w = winFor(sched);
        w.issued++;
        w.completed++;
        if (ok) {
            w.lat.push_back(latency);
            if (latency <= slo_)
                w.goodput++;
        }
    }

    /** A request shed before completion (client- or server-side). */
    void
    shed(sim::Tick sched)
    {
        Win &w = winFor(sched);
        w.issued++;
        w.shedCount++;
    }

    /** Declare the chaos-drill interval [start, end). */
    void
    setFaultWindow(sim::Tick start, sim::Tick end)
    {
        faultStart_ = start;
        faultEnd_ = end;
    }

    /**
     * Cap the baseline interval (e.g. at the start of a planned
     * overload burst) so the recovery target reflects the healthy
     * system, not the saturated ramp right before the fault.
     */
    void
    setBaselineEnd(sim::Tick end)
    {
        baselineEnd_ = end;
    }

    std::uint64_t
    issued() const
    {
        std::uint64_t n = 0;
        for (const Win &w : wins_)
            n += w.issued;
        return n;
    }

    std::uint64_t
    goodput() const
    {
        std::uint64_t n = 0;
        for (const Win &w : wins_)
            n += w.goodput;
        return n;
    }

    std::uint64_t
    shedTotal() const
    {
        std::uint64_t n = 0;
        for (const Win &w : wins_)
            n += w.shedCount;
        return n;
    }

    /**
     * p99 pooled over the windows that end before the fault starts
     * (the whole run when no fault window is set). 0 with no samples.
     */
    sim::Tick
    baselineP99() const
    {
        sim::Tick end = faultEnd_ > 0 ? faultStart_
                                      : ~static_cast<sim::Tick>(0);
        if (baselineEnd_ > 0)
            end = std::min(end, baselineEnd_);
        std::vector<sim::Tick> lat;
        for (std::size_t i = 0; i < wins_.size(); i++) {
            if (start_ + (i + 1) * window_ > end)
                break;
            lat.insert(lat.end(), wins_[i].lat.begin(),
                       wins_[i].lat.end());
        }
        return percentile(lat, 99, 100);
    }

    /** Minimum per-window goodput among windows the fault overlaps. */
    std::uint64_t
    goodputFloor() const
    {
        std::uint64_t floor = ~static_cast<std::uint64_t>(0);
        for (std::size_t i = 0; i < wins_.size(); i++) {
            sim::Tick lo = start_ + i * window_;
            sim::Tick hi = lo + window_;
            if (hi <= faultStart_ || lo >= faultEnd_)
                continue;
            floor = std::min(floor, wins_[i].goodput);
        }
        return floor == ~static_cast<std::uint64_t>(0) ? 0 : floor;
    }

    /**
     * Ticks from the fault end to the start of the first of two
     * consecutive windows whose p99 is back within @p slackPct
     * percent of the pre-fault baseline (and that completed work at
     * all). Negative when the run never recovers.
     *
     * A degenerate baseline (no successful completions before the
     * fault, baselineP99() == 0) falls back to the SLO itself as the
     * recovery limit — "p99 back within SLO" — so such a run is not
     * misreported as never recovering against an impossible limit
     * of 0.
     */
    long long
    recoveryTicks(unsigned slack_pct = 10) const
    {
        sim::Tick base = baselineP99();
        sim::Tick limit =
            base > 0 ? base + base * slack_pct / 100 : slo_;
        for (std::size_t i = 0; i + 1 < wins_.size(); i++) {
            sim::Tick lo = start_ + i * window_;
            if (lo < faultEnd_)
                continue;
            if (recovered(wins_[i], limit) &&
                recovered(wins_[i + 1], limit))
                return static_cast<long long>(lo - faultEnd_);
        }
        return -1;
    }

    /** Append the report's headline numbers under @p prefix. */
    void
    addTo(Summary &s, const std::string &prefix) const
    {
        s.addU64(prefix + "issued", issued());
        s.addU64(prefix + "goodput", goodput());
        s.addU64(prefix + "shed", shedTotal());
        s.add(prefix + "baseline_p99_us",
              static_cast<double>(baselineP99()) / sim::kTicksPerUs,
              2);
        if (faultEnd_ > 0) {
            s.addU64(prefix + "goodput_floor", goodputFloor());
            long long rec = recoveryTicks();
            s.addU64(prefix + "recovered", rec >= 0 ? 1 : 0);
            s.add(prefix + "recovery_ms",
                  rec >= 0 ? static_cast<double>(rec) /
                                 sim::kTicksPerMs
                           : -1.0,
                  3);
        }
    }

  private:
    struct Win
    {
        std::uint64_t issued = 0;
        std::uint64_t completed = 0;
        std::uint64_t goodput = 0;
        std::uint64_t shedCount = 0;
        std::vector<sim::Tick> lat;
    };

    Win &
    winFor(sim::Tick sched)
    {
        std::size_t i =
            sched >= start_
                ? static_cast<std::size_t>((sched - start_) / window_)
                : 0;
        return wins_[std::min(i, wins_.size() - 1)];
    }

    static sim::Tick
    percentile(std::vector<sim::Tick> lat, std::uint64_t num,
               std::uint64_t den)
    {
        if (lat.empty())
            return 0;
        std::sort(lat.begin(), lat.end());
        std::size_t idx = static_cast<std::size_t>(
            (lat.size() * num + den - 1) / den);
        return lat[std::min(idx == 0 ? 0 : idx - 1,
                            lat.size() - 1)];
    }

    bool
    recovered(const Win &w, sim::Tick limit) const
    {
        if (w.completed == 0)
            return false;
        std::vector<sim::Tick> lat(w.lat);
        return percentile(std::move(lat), 99, 100) <= limit;
    }

    sim::Tick start_;
    sim::Tick window_;
    sim::Tick slo_;
    sim::Tick faultStart_ = 0;
    sim::Tick faultEnd_ = 0;
    sim::Tick baselineEnd_ = 0;
    std::vector<Win> wins_;
};

} // namespace m3v::bench

#endif // M3VSIM_BENCH_SLO_REPORT_H_
