# One binary per paper table/figure plus ablations; micro_sim uses
# google-benchmark for simulator-core host performance.
set(M3V_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

add_executable(fig06_micro ${M3V_BENCH_DIR}/fig06_micro.cc)
target_link_libraries(fig06_micro PRIVATE m3v_os m3v_m3x m3v_linuxref)
target_include_directories(fig06_micro PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fig06_micro PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fig07_fs ${M3V_BENCH_DIR}/fig07_fs.cc)
target_link_libraries(fig07_fs PRIVATE m3v_workloads)
target_include_directories(fig07_fs PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fig07_fs PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fig08_udp ${M3V_BENCH_DIR}/fig08_udp.cc)
target_link_libraries(fig08_udp PRIVATE m3v_workloads)
target_include_directories(fig08_udp PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fig08_udp PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fig09_scale ${M3V_BENCH_DIR}/fig09_scale.cc)
target_link_libraries(fig09_scale PRIVATE m3v_workloads m3v_m3x)
target_include_directories(fig09_scale PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fig09_scale PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fig10_cloud ${M3V_BENCH_DIR}/fig10_cloud.cc)
target_link_libraries(fig10_cloud PRIVATE m3v_workloads)
target_include_directories(fig10_cloud PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fig10_cloud PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fleet ${M3V_BENCH_DIR}/fleet.cc)
target_link_libraries(fleet PRIVATE m3v_workloads)
target_include_directories(fleet PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fleet PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(bench_voice_assistant ${M3V_BENCH_DIR}/voice_assistant.cc)
set_target_properties(bench_voice_assistant PROPERTIES OUTPUT_NAME voice_assistant)
target_link_libraries(bench_voice_assistant PRIVATE m3v_workloads)
target_include_directories(bench_voice_assistant PRIVATE ${M3V_BENCH_DIR})
set_target_properties(bench_voice_assistant PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(table1_area ${M3V_BENCH_DIR}/table1_area.cc)
target_link_libraries(table1_area PRIVATE m3v_area m3v_sim)
target_include_directories(table1_area PRIVATE ${M3V_BENCH_DIR})
set_target_properties(table1_area PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(ablations ${M3V_BENCH_DIR}/ablations.cc)
target_link_libraries(ablations PRIVATE m3v_workloads m3v_m3x)
target_include_directories(ablations PRIVATE ${M3V_BENCH_DIR})
set_target_properties(ablations PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(micro_sim ${M3V_BENCH_DIR}/micro_sim.cc)
target_link_libraries(micro_sim PRIVATE m3v_workloads benchmark::benchmark)
target_include_directories(micro_sim PRIVATE ${M3V_BENCH_DIR})
set_target_properties(micro_sim PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(ctrl_storm ${M3V_BENCH_DIR}/ctrl_storm.cc)
target_link_libraries(ctrl_storm PRIVATE m3v_os m3v_workloads)
target_include_directories(ctrl_storm PRIVATE ${M3V_BENCH_DIR})
set_target_properties(ctrl_storm PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

add_executable(fanin ${M3V_BENCH_DIR}/fanin.cc)
target_link_libraries(fanin PRIVATE m3v_dtu)
target_include_directories(fanin PRIVATE ${M3V_BENCH_DIR})
set_target_properties(fanin PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
